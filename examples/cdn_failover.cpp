// Example: control-plane failure drill (§3.8).
//
// Runs a live deployment, then kills connection nodes and database nodes in
// waves while downloads are in flight, narrating what the system does:
// peers reconnect with backoff, DNs are repopulated via RE-ADD, and when
// everything is down, downloads silently continue from the edge servers.
//
//   ./cdn_failover [peers] [seed]
#include <cstdio>
#include <cstdlib>

#include "analysis/measurement.hpp"
#include "common/format.hpp"
#include "core/simulation.hpp"

using namespace netsession;

namespace {
void status(Simulation& s, const char* label) {
    int connected = 0, running = 0;
    for (const auto& c : s.driver().clients()) {
        if (c->running()) ++running;
        if (c->connected()) ++connected;
    }
    std::size_t directory = 0;
    int live_dns = 0, live_cns = 0;
    for (const auto& dn : s.control_plane().dns()) {
        directory += dn->registration_count();
        live_dns += dn->up() ? 1 : 0;
    }
    for (const auto& cn : s.control_plane().cns()) live_cns += cn->up() ? 1 : 0;
    std::printf("[day %4.1f] %-28s cns=%2d dns=%2d online=%4d connected=%4d dir=%5zu "
                "edge=%s finished=%lld\n",
                s.simulator().now().days(), label, live_cns, live_dns, running, connected,
                directory, format_bytes(s.edges().total_bytes_served()).c_str(),
                static_cast<long long>(s.driver().downloads_finished()));
}
}  // namespace

int main(int argc, char** argv) {
    SimulationConfig config;
    config.peers = argc > 1 ? std::atoi(argv[1]) : 3000;
    config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 13;
    config.behavior.warmup = sim::days(2.0);
    config.behavior.window = sim::days(6.0);
    config.behavior.downloads_per_peer_per_month = 15.0;

    std::printf("cdn_failover: %d peers, failure drill over %0.f days\n\n", config.peers, 8.0);
    Simulation s(config);
    auto& plane = s.control_plane();
    auto& simulator = s.simulator();

    const auto at_day = [&](double day, const char* label, auto&& fn) {
        simulator.schedule_at(sim::SimTime{} + sim::days(day), [&s, label, fn] {
            status(s, label);
            fn();
        });
    };

    at_day(3.0, "baseline", [] {});
    at_day(4.0, ">> kill half the CNs", [&plane] {
        for (std::size_t i = 0; i < plane.cns().size(); i += 2)
            plane.fail_cn(plane.cns()[i]->id());
    });
    at_day(4.2, "   (peers re-homed)", [] {});
    at_day(4.5, ">> kill every DN", [&plane] {
        for (auto& dn : plane.dns()) plane.fail_dn(dn->id());
    });
    at_day(4.7, ">> restart everything", [&plane] {
        for (auto& cn : plane.cns()) plane.restart_cn(cn->id());
        for (auto& dn : plane.dns()) plane.restart_dn(dn->id());  // triggers RE-ADD
    });
    at_day(5.2, "   (RE-ADD repopulated)", [] {});
    at_day(6.0, ">> total control-plane outage", [&plane] {
        for (auto& cn : plane.cns()) plane.fail_cn(cn->id());
        for (auto& dn : plane.dns()) plane.fail_dn(dn->id());
    });
    at_day(7.0, "   (edge-only world)", [] {});
    at_day(7.5, ">> recovery", [&plane] {
        for (auto& cn : plane.cns()) plane.restart_cn(cn->id());
        for (auto& dn : plane.dns()) plane.restart_dn(dn->id());
    });
    at_day(7.9, "   (back to normal)", [] {});

    s.run();
    status(s, "end of window");

    const auto outcomes = analysis::outcome_stats(s.trace());
    std::printf("\ncompletion through the whole drill: %s of %s downloads"
                " (system failures: %s)\n",
                format_percent(outcomes.all.completed).c_str(),
                format_count(outcomes.all.n).c_str(),
                format_percent(outcomes.all.failed_system).c_str());
    std::printf("The §3.8 claims to observe: connected count dips and recovers after CN\n"
                "kills; the directory empties and refills via RE-ADD; downloads keep\n"
                "finishing (edge bytes keep growing) even with zero live CNs/DNs.\n");
    return 0;
}
