// Example: the §6.1 question from an ISP's chair — "is this hybrid CDN
// going to wreck my traffic balance?"
//
// A popular release is distributed to a population with a warm swarm (the
// regime where peer selection decides who talks to whom). For the AS with
// the most subscribers we report: how much p2p traffic stayed inside the AS,
// the inter-AS upload/download balance, and the same numbers under the
// random-selection counterfactual.
//
//   ./isp_traffic_study [peers] [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "accounting/accounting.hpp"
#include "common/format.hpp"
#include "control/control_plane.hpp"
#include "edge/edge_network.hpp"
#include "peer/netsession_client.hpp"
#include "workload/population.hpp"

using namespace netsession;

namespace {

struct IspView {
    std::uint32_t asn = 0;
    std::int64_t subscribers = 0;
    Bytes intra = 0;        // p2p bytes that never left the AS
    Bytes sent = 0;         // inter-AS p2p bytes uploaded by the AS
    Bytes received = 0;     // inter-AS p2p bytes downloaded into the AS
    double system_intra_share = 0;
};

IspView study(std::uint64_t seed, int n, control::SelectionPolicy::Strategy strategy) {
    sim::Simulator simulator;
    net::World world(simulator, net::AsGraph::generate(net::AsGraphConfig{}, Rng(seed)));
    edge::Catalog catalog;
    const ObjectId release{5, 5};
    {
        swarm::ContentObject object(release, CpCode{1000}, 1, 800_MB, 64);
        edge::ObjectPolicy policy;
        policy.p2p_enabled = true;
        catalog.publish(std::move(object), policy);
    }
    edge::EdgeNetwork edges(world, catalog, edge::EdgeNetworkConfig{});
    trace::TraceLog log;
    accounting::AccountingService accounting(log);
    control::ControlPlaneConfig cp_config;
    cp_config.selection.strategy = strategy;
    control::ControlPlane plane(world, edges.authority(), log, accounting, cp_config,
                                Rng(seed).child("cp"));
    peer::PeerRegistry registry;

    Rng rng(seed);
    workload::PopulationGenerator population(workload::PopulationConfig{}, world.as_graph(),
                                             rng.child("pop"));
    std::vector<std::unique_ptr<peer::NetSessionClient>> clients;
    for (int i = 0; i < n; ++i) {
        const auto spec = population.next();
        net::HostInfo info;
        info.attach.location = spec.location;
        info.attach.asn = spec.asn;
        info.attach.nat = spec.nat;
        info.up = spec.up;
        info.down = spec.down;
        peer::ClientConfig config;
        config.uploads_enabled = true;
        clients.push_back(std::make_unique<peer::NetSessionClient>(
            world, plane, edges, catalog, registry, Guid{rng.next(), rng.next()},
            world.create_host(info), config, rng.child("c" + std::to_string(i))));
        clients.back()->start();
    }
    simulator.run_until(sim::SimTime{} + sim::minutes(5.0));

    // A third of the installed base already has the release (steady state);
    // everyone else fetches it over two hours.
    for (int i = 0; i < n / 3; ++i) clients[static_cast<std::size_t>(i)]->begin_download(release);
    simulator.run_until(sim::SimTime{} + sim::hours(8.0));
    for (int i = n / 3; i < n; ++i) {
        peer::NetSessionClient* c = clients[static_cast<std::size_t>(i)].get();
        simulator.schedule_after(sim::minutes(rng.uniform(0.0, 120.0)),
                                 [c, release] { c->begin_download(release); });
    }
    simulator.run_until(sim::SimTime{} + sim::hours(24.0));

    // The "ISP" = the AS with the most subscribers in this population.
    std::unordered_map<std::uint32_t, std::int64_t> subs;
    for (const auto& c : clients) ++subs[world.host(c->host()).attach.asn.value];
    IspView v;
    for (const auto& [asn, count] : subs)
        if (count > v.subscribers) {
            v.asn = asn;
            v.subscribers = count;
        }

    Bytes total = 0, intra_total = 0;
    for (const auto& t : log.transfers()) {
        const auto from = world.geodb().lookup(t.from_ip);
        const auto to = world.geodb().lookup(t.to_ip);
        if (!from || !to) continue;
        total += t.bytes;
        if (from->asn == to->asn) intra_total += t.bytes;
        const bool from_isp = from->asn.value == v.asn;
        const bool to_isp = to->asn.value == v.asn;
        if (from_isp && to_isp)
            v.intra += t.bytes;
        else if (from_isp)
            v.sent += t.bytes;
        else if (to_isp)
            v.received += t.bytes;
    }
    v.system_intra_share =
        total == 0 ? 0.0 : static_cast<double>(intra_total) / static_cast<double>(total);
    return v;
}

void report(const char* label, const IspView& v) {
    std::printf("%s (asn %u, %lld subscribers):\n", label, v.asn,
                static_cast<long long>(v.subscribers));
    std::printf("  p2p bytes kept inside the AS:  %s\n", format_bytes(v.intra).c_str());
    std::printf("  uploaded to other ASes:        %s\n", format_bytes(v.sent).c_str());
    std::printf("  downloaded from other ASes:    %s\n", format_bytes(v.received).c_str());
    const double ratio = v.received == 0 ? 0.0
                                         : static_cast<double>(v.sent) /
                                               static_cast<double>(v.received);
    std::printf("  inter-AS up/down balance:      %.2f (1.0 = settlement-friendly)\n", ratio);
    std::printf("  system-wide intra-AS share:    %s\n\n",
                format_percent(v.system_intra_share).c_str());
}

}  // namespace

int main(int argc, char** argv) {
    const int peers = argc > 1 ? std::atoi(argv[1]) : 3000;
    const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 23;
    std::printf("isp_traffic_study: %d peers, one hot 800 MB release, seed %llu\n\n", peers,
                static_cast<unsigned long long>(seed));

    const IspView locality =
        study(seed, peers, control::SelectionPolicy::Strategy::locality_aware);
    report("Locality-aware selection (production §3.7)", locality);

    const IspView random = study(seed, peers, control::SelectionPolicy::Strategy::random);
    report("Random selection (tracker-style counterfactual)", random);

    std::printf("The §6.1/§7 takeaway: locality-aware peer selection keeps traffic inside\n"
                "the ISP and the residual inter-AS flows balanced — without it, the same\n"
                "downloads become long-haul inter-AS traffic.\n");
    return 0;
}
