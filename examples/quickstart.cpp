// Quickstart: run a small NetSession deployment for a simulated week and
// print the headline hybrid-CDN numbers (peer offload, efficiency, outcome
// rates).
//
//   ./quickstart [peers] [days] [seed]
#include <cstdio>
#include <cstdlib>

#include "analysis/measurement.hpp"
#include "common/format.hpp"
#include "core/simulation.hpp"

int main(int argc, char** argv) {
    using namespace netsession;

    SimulationConfig config;
    config.peers = argc > 1 ? std::atoi(argv[1]) : 3000;
    const double days = argc > 2 ? std::atof(argv[2]) : 7.0;
    config.seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;
    config.behavior.window = sim::days(days);
    // A small run needs a denser request stream to form swarms.
    config.behavior.downloads_per_peer_per_month = 6.0;

    std::printf("NetSession quickstart: %d peers, %.1f days, seed %llu\n", config.peers, days,
                static_cast<unsigned long long>(config.seed));

    Simulation sim(config);
    sim.run();

    const auto& log = sim.trace();
    std::printf("\nTrace: %zu log entries, %zu downloads, %zu logins, %zu transfers\n",
                log.total_entries(), log.downloads().size(), log.logins().size(),
                log.transfers().size());

    const auto headline = analysis::headline_offload(log);
    std::printf("\n--- Headline (paper §5.1) ---\n");
    std::printf("p2p-enabled files:        %s of files, %s of bytes (paper: 1.7%% / 57.4%%)\n",
                format_percent(headline.p2p_enabled_file_fraction).c_str(),
                format_percent(headline.p2p_enabled_byte_fraction).c_str());
    std::printf("mean peer efficiency:     %s (paper: 71.4%%)\n",
                format_percent(headline.mean_peer_efficiency).c_str());
    std::printf("byte offload to peers:    %s (paper: 70-80%%)\n",
                format_percent(headline.overall_offload).c_str());

    const auto outcomes = analysis::outcome_stats(log);
    std::printf("\n--- Outcomes (paper §5.2) ---\n");
    std::printf("infra-only:    %s completed, %s system-failed, %s aborted (n=%lld)\n",
                format_percent(outcomes.infra_only.completed).c_str(),
                format_percent(outcomes.infra_only.failed_system).c_str(),
                format_percent(outcomes.infra_only.aborted).c_str(),
                static_cast<long long>(outcomes.infra_only.n));
    std::printf("peer-assisted: %s completed, %s system-failed, %s aborted (n=%lld)\n",
                format_percent(outcomes.peer_assisted.completed).c_str(),
                format_percent(outcomes.peer_assisted.failed_system).c_str(),
                format_percent(outcomes.peer_assisted.aborted).c_str(),
                static_cast<long long>(outcomes.peer_assisted.n));

    std::printf("\nBytes served by edge servers: %s\n",
                format_bytes(sim.edges().total_bytes_served()).c_str());
    std::printf("Accounting: %lld reports accepted, %lld rejected\n",
                static_cast<long long>(sim.accounting().accepted()),
                static_cast<long long>(sim.accounting().rejected()));
    return 0;
}
