// Example: a game publisher ships a 2 GB patch to its installed base.
//
// The canonical NetSession use case (§3.3): a large object, a flash crowd,
// and the question every content provider asks — how much of the delivery do
// the peers absorb, and does anyone's download suffer?
//
//   ./software_release [clients] [object_gb] [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "accounting/accounting.hpp"
#include "common/format.hpp"
#include "control/control_plane.hpp"
#include "edge/edge_network.hpp"
#include "peer/netsession_client.hpp"
#include "workload/population.hpp"

using namespace netsession;

int main(int argc, char** argv) {
    const int n = argc > 1 ? std::atoi(argv[1]) : 800;
    const double gb = argc > 2 ? std::atof(argv[2]) : 2.0;
    const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

    std::printf("software_release: %d clients downloading a %.1f GB patch (seed %llu)\n\n", n,
                gb, static_cast<unsigned long long>(seed));

    // --- build the world ----------------------------------------------------
    sim::Simulator simulator;
    net::World world(simulator, net::AsGraph::generate(net::AsGraphConfig{}, Rng(seed)));

    edge::Catalog catalog;
    const ObjectId patch{1, 2026};
    {
        swarm::ContentObject object(patch, CpCode{1000}, 1, static_cast<Bytes>(gb * 1e9), 96);
        edge::ObjectPolicy policy;
        policy.p2p_enabled = true;  // the provider enables peer assist (§4.4)
        catalog.publish(std::move(object), policy);
    }
    edge::EdgeNetwork edges(world, catalog, edge::EdgeNetworkConfig{});
    trace::TraceLog log;
    accounting::AccountingService accounting(log);
    control::ControlPlane plane(world, edges.authority(), log, accounting,
                                control::ControlPlaneConfig{}, Rng(seed).child("cp"));
    peer::PeerRegistry registry;

    // --- the installed base --------------------------------------------------
    Rng rng(seed);
    workload::PopulationGenerator population(workload::PopulationConfig{}, world.as_graph(),
                                             rng.child("pop"));
    std::vector<std::unique_ptr<peer::NetSessionClient>> clients;
    for (int i = 0; i < n; ++i) {
        const auto spec = population.next();
        net::HostInfo info;
        info.attach.location = spec.location;
        info.attach.asn = spec.asn;
        info.attach.nat = spec.nat;
        info.up = spec.up;
        info.down = spec.down;
        peer::ClientConfig config;
        config.uploads_enabled = rng.chance(0.45);  // this publisher ships uploads on
        clients.push_back(std::make_unique<peer::NetSessionClient>(
            world, plane, edges, catalog, registry, Guid{rng.next(), rng.next()},
            world.create_host(info), config, rng.child("client" + std::to_string(i))));
        clients.back()->start();
    }
    simulator.run_until(sim::SimTime{} + sim::minutes(5.0));

    // --- the release goes live; everyone grabs it within 3 hours -------------
    std::vector<double> speed_mbps;
    std::vector<double> efficiency;
    int completed = 0;
    for (auto& client : clients) {
        const double at_min = 5.0 + rng.uniform(0.0, 180.0);
        peer::NetSessionClient* c = client.get();
        simulator.schedule_at(sim::SimTime{} + sim::minutes(at_min), [&, c] {
            c->begin_download(patch, [&](const trace::DownloadRecord& r) {
                if (r.outcome != trace::DownloadOutcome::completed) return;
                ++completed;
                speed_mbps.push_back(r.mean_speed() * 8 / 1e6);
                efficiency.push_back(r.peer_efficiency());
            });
        });
    }
    simulator.run_until(sim::SimTime{} + sim::hours(24.0));

    // --- the provider's report ------------------------------------------------
    std::printf("completed: %d/%d within 24h\n", completed, n);
    std::sort(speed_mbps.begin(), speed_mbps.end());
    std::sort(efficiency.begin(), efficiency.end());
    if (!speed_mbps.empty()) {
        std::printf("download speed: median %.1f Mbps, p10 %.1f, p90 %.1f\n",
                    speed_mbps[speed_mbps.size() / 2], speed_mbps[speed_mbps.size() / 10],
                    speed_mbps[speed_mbps.size() * 9 / 10]);
        std::printf("peer efficiency: median %s (late downloaders ride the swarm)\n",
                    format_percent(efficiency[efficiency.size() / 2]).c_str());
    }
    Bytes peer_bytes = 0, infra_bytes = 0;
    for (const auto& d : log.downloads()) {
        peer_bytes += d.bytes_from_peers;
        infra_bytes += d.bytes_from_infrastructure;
    }
    std::printf("delivered: %s by peers, %s by edge servers (%s offloaded)\n",
                format_bytes(peer_bytes).c_str(), format_bytes(infra_bytes).c_str(),
                format_percent(static_cast<double>(peer_bytes) /
                               std::max<double>(1.0, static_cast<double>(peer_bytes +
                                                                         infra_bytes)))
                    .c_str());
    std::printf("billing: %lld reports accepted, %lld rejected by the accounting filter\n",
                static_cast<long long>(accounting.accepted()),
                static_cast<long long>(accounting.rejected()));
    return 0;
}
