
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/connection_node.cpp" "src/control/CMakeFiles/ns_control.dir/connection_node.cpp.o" "gcc" "src/control/CMakeFiles/ns_control.dir/connection_node.cpp.o.d"
  "/root/repo/src/control/control_plane.cpp" "src/control/CMakeFiles/ns_control.dir/control_plane.cpp.o" "gcc" "src/control/CMakeFiles/ns_control.dir/control_plane.cpp.o.d"
  "/root/repo/src/control/database_node.cpp" "src/control/CMakeFiles/ns_control.dir/database_node.cpp.o" "gcc" "src/control/CMakeFiles/ns_control.dir/database_node.cpp.o.d"
  "/root/repo/src/control/directory.cpp" "src/control/CMakeFiles/ns_control.dir/directory.cpp.o" "gcc" "src/control/CMakeFiles/ns_control.dir/directory.cpp.o.d"
  "/root/repo/src/control/monitoring.cpp" "src/control/CMakeFiles/ns_control.dir/monitoring.cpp.o" "gcc" "src/control/CMakeFiles/ns_control.dir/monitoring.cpp.o.d"
  "/root/repo/src/control/stun.cpp" "src/control/CMakeFiles/ns_control.dir/stun.cpp.o" "gcc" "src/control/CMakeFiles/ns_control.dir/stun.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/ns_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/ns_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/swarm/CMakeFiles/ns_swarm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/edge/CMakeFiles/ns_edge.dir/DependInfo.cmake"
  "/root/repo/build-review/src/trace/CMakeFiles/ns_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/accounting/CMakeFiles/ns_accounting.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
