
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/swarm/content.cpp" "src/swarm/CMakeFiles/ns_swarm.dir/content.cpp.o" "gcc" "src/swarm/CMakeFiles/ns_swarm.dir/content.cpp.o.d"
  "/root/repo/src/swarm/picker.cpp" "src/swarm/CMakeFiles/ns_swarm.dir/picker.cpp.o" "gcc" "src/swarm/CMakeFiles/ns_swarm.dir/picker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
