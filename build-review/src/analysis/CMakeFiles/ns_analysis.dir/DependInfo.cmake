
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/export.cpp" "src/analysis/CMakeFiles/ns_analysis.dir/export.cpp.o" "gcc" "src/analysis/CMakeFiles/ns_analysis.dir/export.cpp.o.d"
  "/root/repo/src/analysis/guid_graph.cpp" "src/analysis/CMakeFiles/ns_analysis.dir/guid_graph.cpp.o" "gcc" "src/analysis/CMakeFiles/ns_analysis.dir/guid_graph.cpp.o.d"
  "/root/repo/src/analysis/login_index.cpp" "src/analysis/CMakeFiles/ns_analysis.dir/login_index.cpp.o" "gcc" "src/analysis/CMakeFiles/ns_analysis.dir/login_index.cpp.o.d"
  "/root/repo/src/analysis/measurement.cpp" "src/analysis/CMakeFiles/ns_analysis.dir/measurement.cpp.o" "gcc" "src/analysis/CMakeFiles/ns_analysis.dir/measurement.cpp.o.d"
  "/root/repo/src/analysis/stats.cpp" "src/analysis/CMakeFiles/ns_analysis.dir/stats.cpp.o" "gcc" "src/analysis/CMakeFiles/ns_analysis.dir/stats.cpp.o.d"
  "/root/repo/src/analysis/table.cpp" "src/analysis/CMakeFiles/ns_analysis.dir/table.cpp.o" "gcc" "src/analysis/CMakeFiles/ns_analysis.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/trace/CMakeFiles/ns_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/ns_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/ns_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
