
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/as_graph.cpp" "src/net/CMakeFiles/ns_net.dir/as_graph.cpp.o" "gcc" "src/net/CMakeFiles/ns_net.dir/as_graph.cpp.o.d"
  "/root/repo/src/net/flow.cpp" "src/net/CMakeFiles/ns_net.dir/flow.cpp.o" "gcc" "src/net/CMakeFiles/ns_net.dir/flow.cpp.o.d"
  "/root/repo/src/net/geo.cpp" "src/net/CMakeFiles/ns_net.dir/geo.cpp.o" "gcc" "src/net/CMakeFiles/ns_net.dir/geo.cpp.o.d"
  "/root/repo/src/net/nat.cpp" "src/net/CMakeFiles/ns_net.dir/nat.cpp.o" "gcc" "src/net/CMakeFiles/ns_net.dir/nat.cpp.o.d"
  "/root/repo/src/net/world.cpp" "src/net/CMakeFiles/ns_net.dir/world.cpp.o" "gcc" "src/net/CMakeFiles/ns_net.dir/world.cpp.o.d"
  "/root/repo/src/net/world_data.cpp" "src/net/CMakeFiles/ns_net.dir/world_data.cpp.o" "gcc" "src/net/CMakeFiles/ns_net.dir/world_data.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/ns_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
