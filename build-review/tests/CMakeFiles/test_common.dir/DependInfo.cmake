
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_format.cpp" "tests/CMakeFiles/test_common.dir/common/test_format.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_format.cpp.o.d"
  "/root/repo/tests/common/test_rng.cpp" "tests/CMakeFiles/test_common.dir/common/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_rng.cpp.o.d"
  "/root/repo/tests/common/test_sha256.cpp" "tests/CMakeFiles/test_common.dir/common/test_sha256.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_sha256.cpp.o.d"
  "/root/repo/tests/common/test_types.cpp" "tests/CMakeFiles/test_common.dir/common/test_types.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/ns_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/baseline/CMakeFiles/ns_baseline.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workload/CMakeFiles/ns_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/peer/CMakeFiles/ns_peer.dir/DependInfo.cmake"
  "/root/repo/build-review/src/control/CMakeFiles/ns_control.dir/DependInfo.cmake"
  "/root/repo/build-review/src/edge/CMakeFiles/ns_edge.dir/DependInfo.cmake"
  "/root/repo/build-review/src/accounting/CMakeFiles/ns_accounting.dir/DependInfo.cmake"
  "/root/repo/build-review/src/analysis/CMakeFiles/ns_analysis.dir/DependInfo.cmake"
  "/root/repo/build-review/src/trace/CMakeFiles/ns_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/ns_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/ns_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/swarm/CMakeFiles/ns_swarm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
