# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/test_common[1]_include.cmake")
include("/root/repo/build-review/tests/test_sim[1]_include.cmake")
include("/root/repo/build-review/tests/test_net[1]_include.cmake")
include("/root/repo/build-review/tests/test_swarm[1]_include.cmake")
include("/root/repo/build-review/tests/test_edge[1]_include.cmake")
include("/root/repo/build-review/tests/test_control[1]_include.cmake")
include("/root/repo/build-review/tests/test_peer[1]_include.cmake")
include("/root/repo/build-review/tests/test_accounting[1]_include.cmake")
include("/root/repo/build-review/tests/test_trace[1]_include.cmake")
include("/root/repo/build-review/tests/test_analysis[1]_include.cmake")
include("/root/repo/build-review/tests/test_workload[1]_include.cmake")
include("/root/repo/build-review/tests/test_baseline[1]_include.cmake")
include("/root/repo/build-review/tests/test_core[1]_include.cmake")
include("/root/repo/build-review/tests/test_integration[1]_include.cmake")
