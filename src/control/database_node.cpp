#include "control/database_node.hpp"

namespace netsession::control {

void DatabaseNode::register_copy(ObjectId object, const PeerDescriptor& peer, sim::SimTime now,
                                 bool readd) {
    if (!up_) return;
    directory_.add(object, peer);
    if (!readd) log_->add(trace::DnRegistrationRecord{object, peer.guid, now});
}

}  // namespace netsession::control
