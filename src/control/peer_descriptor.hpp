// The connectivity snapshot the control plane keeps per peer: everything the
// DN needs for locality-aware, NAT-compatible peer selection (paper §3.6-3.7).
#pragma once

#include "common/types.hpp"
#include "net/geo.hpp"
#include "net/ipv4.hpp"
#include "net/nat.hpp"
#include "net/world_data.hpp"

namespace netsession::control {

struct PeerDescriptor {
    Guid guid;
    HostId host;              // network address for the simulator
    net::IpAddr ip;           // public IP (defines the AS/geo sets)
    net::NatType nat = net::NatType::open;
    Asn asn;
    CountryId country;
    net::Continent continent = net::Continent::europe;
    RegionId region;
};

/// Interface the control plane uses to reach a peer's client software over
/// its persistent control connection. Implemented by peer::NetSessionClient.
class PeerEndpoint {
public:
    virtual ~PeerEndpoint() = default;

    [[nodiscard]] virtual Guid guid() const noexcept = 0;
    [[nodiscard]] virtual HostId host() const noexcept = 0;

    /// The CN this peer was connected to went away; reconnect elsewhere.
    virtual void on_disconnected() = 0;

    /// A DN lost its database; the peer should re-announce its cached
    /// objects (the RE-ADD protocol, paper §3.8).
    virtual void on_re_add_request() = 0;

    /// Another peer was told to download `object` from us; prepare to accept
    /// its connection (the CN "instructs both ... peers to initiate
    /// connections to each other", §3.7).
    virtual void on_introduction(const PeerDescriptor& downloader, ObjectId object) = 0;

    /// The control plane released a new client version; the client upgrades
    /// automatically in the background (§3.8: "most of the peer population
    /// can be upgraded to a new version within one hour").
    virtual void on_upgrade_available(std::uint32_t version) = 0;
};

}  // namespace netsession::control
