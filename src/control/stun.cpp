#include "control/stun.hpp"

namespace netsession::control {

void StunService::probe(HostId peer, std::function<void(ConnectivityReport)> on_done) {
    // Request travels peer -> STUN; the server observes the mapped address
    // and NAT behaviour; the classification comes back after a second round
    // trip (two binding tests are the minimum to detect mapping variance).
    // During a blackout (or across a partition) the probe is simply never
    // answered — the client's probe timeout decides what to do.
    if (!online_ || !world_->reachable(peer, host_)) {
        ++probes_lost_;
        return;
    }
    const sim::Duration rtt = world_->latency(peer, host_) + world_->latency(host_, peer);
    world_->simulator().schedule_after(rtt + rtt, [this, peer, done = std::move(on_done)] {
        if (!online_) {
            // Blackout hit mid-probe: the reply is lost.
            ++probes_lost_;
            return;
        }
        ++probes_;
        const auto& attach = world_->host(peer).attach;
        done(ConnectivityReport{attach.ip, attach.nat});
    });
}

}  // namespace netsession::control
