// STUN component.
//
// "Peers periodically communicate with STUN components over UDP and TCP to
// determine the details of their connectivity (which are then stored in the
// DN databases) and to enable NAT traversal. This involves a protocol with
// goals similar to [RFC 5389], but NetSession uses a custom implementation."
// (§3.6)
//
// In the simulation the probe is a message round trip that reports the
// peer's public address and classifies its NAT by comparing mappings across
// two server reflexive addresses, as a binding-discovery protocol would.
#pragma once

#include <functional>

#include "control/peer_descriptor.hpp"
#include "net/world.hpp"

namespace netsession::control {

/// Result of a connectivity probe, as stored in the DN database.
struct ConnectivityReport {
    net::IpAddr public_ip;
    net::NatType nat = net::NatType::open;
};

class StunService {
public:
    StunService(net::World& world, HostId host) : world_(&world), host_(host) {}

    [[nodiscard]] HostId host() const noexcept { return host_; }

    /// Runs a probe for `peer`; the report is delivered after two round
    /// trips (binding request + filtering test), as observed by the server.
    /// While offline (STUN blackout fault) or unreachable (partition) the
    /// probe is silently lost — `on_done` never fires and the client must
    /// fall back on a timeout.
    void probe(HostId peer, std::function<void(ConnectivityReport)> on_done);

    /// Fault injection: stops/resumes answering probes.
    void set_online(bool online) noexcept { online_ = online; }
    [[nodiscard]] bool online() const noexcept { return online_; }

    [[nodiscard]] std::int64_t probes_served() const noexcept { return probes_; }
    [[nodiscard]] std::int64_t probes_lost() const noexcept { return probes_lost_; }

private:
    net::World* world_;
    HostId host_;
    bool online_ = true;
    std::int64_t probes_ = 0;
    std::int64_t probes_lost_ = 0;
};

}  // namespace netsession::control
