// Connection node (CN).
//
// "The CNs are the endpoints of the persistent TCP connections that the
// peers open to the control plane when they are active. The CNs receive and
// collect the usage statistics that are uploaded by the peers, and they
// handle queries for objects the peers wish to download. These persistent
// TCP connections are also used to tell peers to connect to each other in
// order to facilitate sharing of content." (§3.6)
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "common/flat_hash.hpp"
#include "control/peer_descriptor.hpp"
#include "edge/auth.hpp"
#include "trace/records.hpp"

namespace netsession::control {

class ControlPlane;

/// What a peer sends when it opens its control connection.
struct LoginInfo {
    PeerDescriptor desc;
    std::uint32_t software_version = 0;
    bool uploads_enabled = false;
    std::array<SecondaryGuid, 5> secondary_guids{};
    /// Locally cached objects the peer is willing to upload (registered with
    /// the DN iff uploads are enabled).
    std::vector<ObjectId> cached_objects;
};

class ConnectionNode {
public:
    ConnectionNode(CnId id, RegionId region, HostId host, ControlPlane& plane)
        : id_(id), region_(region), host_(host), plane_(&plane) {}

    [[nodiscard]] CnId id() const noexcept { return id_; }
    [[nodiscard]] RegionId region() const noexcept { return region_; }
    [[nodiscard]] HostId host() const noexcept { return host_; }
    [[nodiscard]] bool up() const noexcept { return up_; }
    [[nodiscard]] std::size_t session_count() const noexcept { return sessions_.size(); }

    /// Opens a peer's persistent control connection: records the login,
    /// registers cached content with the local DN. Returns false when the
    /// CN is down or the login admission limiter defers the connection
    /// (§3.8 reconnection rate limiting) — the client backs off and retries.
    bool login(PeerEndpoint& endpoint, const LoginInfo& info);
    void logout(Guid guid);
    [[nodiscard]] bool has_session(Guid guid) const { return sessions_.contains(guid); }

    /// Peer query for download sources. Validates the edge-issued token,
    /// consults the local DN, arranges introductions on both sides, and
    /// replies to the requester after the appropriate message delays.
    void query(Guid requester, ObjectId object, const edge::AuthToken& token, int want,
               std::function<void(std::vector<PeerDescriptor>)> reply);

    /// Peer announces / withdraws a locally cached copy. `readd` marks
    /// RE-ADD repopulation traffic, which restores soft state without
    /// creating new DN log entries.
    void register_copy(Guid guid, ObjectId object, bool readd = false);
    void unregister_copy(Guid guid, ObjectId object);

    /// Usage statistics upload (billing, §3.6). Download reports pass
    /// through the accounting attack filter.
    void report_download(const trace::DownloadRecord& record);
    void report_transfer(const trace::TransferRecord& record);

    /// Failure injection: the CN dies; peers notice their TCP connection
    /// reset (asynchronously) and reconnect elsewhere.
    void fail();
    void restart() { up_ = true; }

    /// DN recovery: ask every connected peer to re-announce its cached
    /// files, rate-limited to keep the repopulation storm smooth (§3.8).
    void issue_re_add();

    /// Tells every connected peer to upgrade to `version` (§3.8).
    void push_upgrade(std::uint32_t version);

    [[nodiscard]] std::int64_t logins_deferred() const noexcept { return logins_deferred_; }

private:
    struct Session {
        PeerEndpoint* endpoint = nullptr;
        PeerDescriptor desc;
        bool uploads_enabled = false;
    };

    /// Token-bucket admission for logins; true if this login may proceed.
    bool admit_login();

    CnId id_;
    RegionId region_;
    HostId host_;
    ControlPlane* plane_;
    /// Insertion-ordered: iteration (failure fan-out, upgrade pushes,
    /// RE-ADD sweeps) follows login order deterministically on every
    /// platform (docs/SIMULATOR.md "Memory layout").
    FlatHashMap<Guid, Session> sessions_;
    /// Reused answer buffer for query(): DN selection draws into this, and
    /// only the final reply copies out of it.
    std::vector<PeerDescriptor> select_scratch_;
    bool up_ = true;
    double login_tokens_ = -1.0;  // lazily initialised to the burst depth
    sim::SimTime tokens_refilled_at_{};
    std::int64_t logins_deferred_ = 0;
};

}  // namespace netsession::control
