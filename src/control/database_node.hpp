// Database node (DN).
//
// "The DNs maintain a database of which objects are currently available on
// which peers, as well as details about the connectivity of these peers.
// Peers appear in the database only when a) uploads are explicitly enabled on
// the peer, and b) the peer currently has objects to share." (§3.6)
//
// The database is soft state: a crashed/restarted DN comes back empty and is
// repopulated through the CNs' RE-ADD protocol (§3.8).
#pragma once

#include "control/directory.hpp"
#include "trace/trace_log.hpp"

namespace netsession::control {

class DatabaseNode {
public:
    DatabaseNode(DnId id, RegionId region, HostId host, trace::TraceLog& log)
        : id_(id), region_(region), host_(host), log_(&log) {}

    [[nodiscard]] DnId id() const noexcept { return id_; }
    [[nodiscard]] RegionId region() const noexcept { return region_; }
    [[nodiscard]] HostId host() const noexcept { return host_; }
    [[nodiscard]] bool up() const noexcept { return up_; }

    /// Registers a copy of `object` on `peer` (only called for peers with
    /// uploads enabled). Appends to the DN registration log unless this is a
    /// RE-ADD repopulation (recovered state is not a new copy).
    void register_copy(ObjectId object, const PeerDescriptor& peer, sim::SimTime now,
                       bool readd = false);

    void unregister_copy(ObjectId object, Guid guid) { directory_.remove(object, guid); }
    void remove_peer(Guid guid) { directory_.remove_peer(guid); }

    [[nodiscard]] std::vector<PeerDescriptor> select(ObjectId object,
                                                     const PeerDescriptor& requester, int want,
                                                     const SelectionPolicy& policy,
                                                     Rng& rng) const {
        return directory_.select(object, requester, want, policy, rng);
    }

    /// Allocation-free variant: appends into the caller's reusable buffer.
    void select_into(ObjectId object, const PeerDescriptor& requester, int want,
                     const SelectionPolicy& policy, Rng& rng,
                     std::vector<PeerDescriptor>& out) const {
        directory_.select_into(object, requester, want, policy, rng, out);
    }

    /// Directory storage accounting for the mem.* gauges.
    [[nodiscard]] Directory::MemoryStats memory_stats() const noexcept {
        return directory_.memory_stats();
    }

    [[nodiscard]] int copies(ObjectId object) const { return directory_.copies(object); }
    [[nodiscard]] std::size_t registration_count() const noexcept {
        return directory_.registration_count();
    }

    /// Read-only directory access (audit layer).
    [[nodiscard]] const Directory& directory() const noexcept { return directory_; }

    /// Failure injection: the DN process dies, losing its soft state.
    void fail() {
        up_ = false;
        directory_.clear();
    }
    /// The DN process restarts empty; CNs will re-populate it via RE-ADD.
    void restart() { up_ = true; }

private:
    DnId id_;
    RegionId region_;
    HostId host_;
    trace::TraceLog* log_;
    Directory directory_;
    bool up_ = true;
};

}  // namespace netsession::control
