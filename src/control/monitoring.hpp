// Monitoring node.
//
// "Peers upload information about their operation and about problems, such
// as application crash reports, to these nodes. Processing their logs helps
// to monitor the network in real-time, to identify problems, and to
// troubleshoot specific user issues." (§3.6)  §3.8 adds that download and
// upload performance is constantly monitored with automated alerts.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string_view>

#include "common/types.hpp"

namespace netsession::control {

enum class ProblemKind : std::uint8_t {
    crash,
    update_failed,
    disk_full,
    piece_corruption,
    connect_failure,
};
inline constexpr int kProblemKinds = 5;

[[nodiscard]] constexpr std::string_view to_string(ProblemKind k) noexcept {
    switch (k) {
        case ProblemKind::crash: return "crash";
        case ProblemKind::update_failed: return "update_failed";
        case ProblemKind::disk_full: return "disk_full";
        case ProblemKind::piece_corruption: return "piece_corruption";
        case ProblemKind::connect_failure: return "connect_failure";
    }
    return "unknown";
}

class MonitoringNode {
public:
    /// Sliding success-rate alarm threshold for automated alerts (§3.8).
    explicit MonitoringNode(double alert_threshold = 0.5) : threshold_(alert_threshold) {}

    void report_problem(Guid, ProblemKind kind) {
        ++problems_[static_cast<std::size_t>(kind)];
    }

    /// Download-outcome telemetry; raises the alert callback when the
    /// success rate over the last window falls below the threshold.
    void report_download_outcome(bool success);

    void set_alert_handler(std::function<void()> fn) { on_alert_ = std::move(fn); }

    [[nodiscard]] std::int64_t problems(ProblemKind kind) const {
        return problems_[static_cast<std::size_t>(kind)];
    }
    [[nodiscard]] std::int64_t alerts_raised() const noexcept { return alerts_; }

private:
    double threshold_;
    std::array<std::int64_t, kProblemKinds> problems_{};
    std::function<void()> on_alert_;
    std::int64_t alerts_ = 0;
    int window_total_ = 0;
    int window_success_ = 0;
};

}  // namespace netsession::control
