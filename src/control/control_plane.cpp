#include "control/control_plane.hpp"

#include <cassert>
#include <limits>

namespace netsession::control {

ControlPlane::ControlPlane(net::World& world, const edge::TokenAuthority& authority,
                           trace::TraceLog& log, accounting::AccountingService& accounting,
                           ControlPlaneConfig config, Rng rng)
    : world_(&world),
      authority_(&authority),
      log_(&log),
      accounting_(&accounting),
      config_(config),
      rng_(rng) {
    // Control-plane servers are placed like edge servers: at each region's
    // heaviest country, inside its backbone AS.
    Rng placement = rng_.child("control-placement");
    dn_rr_.assign(net::regions().size(), 0);
    for (const auto& region : net::regions()) {
        const net::CountryInfo* anchor = nullptr;
        for (const auto& c : net::countries()) {
            if (c.region != region.id) continue;
            if (anchor == nullptr || c.peer_weight > anchor->peer_weight) anchor = &c;
        }
        if (anchor == nullptr) continue;

        const auto make_server_host = [&]() {
            net::HostInfo info;
            info.attach.location = net::Location{anchor->id, 0, anchor->center};
            info.attach.asn = world.as_graph().pick_for_country(anchor->id, placement);
            info.attach.nat = net::NatType::open;
            info.up = net::kUnlimited;
            info.down = net::kUnlimited;
            info.is_server = true;
            return world.create_host(info);
        };

        for (int k = 0; k < config_.cns_per_region; ++k) {
            const HostId host = make_server_host();
            const auto id = CnId{static_cast<std::uint16_t>(cns_.size())};
            cns_.push_back(std::make_unique<ConnectionNode>(id, region.id, host, *this));
            if (k == 0) stuns_.push_back(std::make_unique<StunService>(world, host));
        }
        for (int k = 0; k < config_.dns_per_region; ++k) {
            const HostId host = make_server_host();
            const auto id = DnId{static_cast<std::uint16_t>(dns_.size())};
            dns_.push_back(std::make_unique<DatabaseNode>(id, region.id, host, log));
        }
    }
    assert(!cns_.empty() && !dns_.empty());
}

ConnectionNode* ControlPlane::closest_cn(HostId client) {
    const auto client_point = world_->host(client).attach.location.point;
    ConnectionNode* best = nullptr;
    double best_km = std::numeric_limits<double>::infinity();
    for (const auto& cn : cns_) {
        // A CN behind a network partition is as unreachable as a downed one.
        if (!cn->up() || !world_->reachable(client, cn->host())) continue;
        const double km =
            net::haversine_km(client_point, world_->host(cn->host()).attach.location.point);
        if (km < best_km) {
            best_km = km;
            best = cn.get();
        }
    }
    return best;
}

DatabaseNode* ControlPlane::local_dn(RegionId region) {
    // Round-robin over the live DNs of the region.
    std::size_t live_in_region = 0;
    DatabaseNode* pick = nullptr;
    std::size_t& cursor = dn_rr_[region.value];
    std::vector<DatabaseNode*> candidates;
    for (const auto& dn : dns_)
        if (dn->region() == region && dn->up()) candidates.push_back(dn.get());
    live_in_region = candidates.size();
    if (live_in_region > 0) {
        pick = candidates[cursor % live_in_region];
        ++cursor;
        return pick;
    }
    if (config_.local_dns_only) return nullptr;
    // Cross-region fallback (the CN/DN system is interconnected, §3.7).
    for (const auto& dn : dns_)
        if (dn->up()) return dn.get();
    return nullptr;
}

PeerEndpoint* ControlPlane::find_endpoint(Guid guid) const {
    const auto it = endpoints_.find(guid);
    return it == endpoints_.end() ? nullptr : it->second;
}

void ControlPlane::note_session(Guid guid, PeerEndpoint* endpoint) { endpoints_[guid] = endpoint; }

void ControlPlane::drop_session(Guid guid) { endpoints_.erase(guid); }

void ControlPlane::release_client_version(std::uint32_t version) {
    client_version_ = version;
    for (const auto& cn : cns_) cn->push_upgrade(version);
}

void ControlPlane::fail_cn(CnId id) { cns_[id.value]->fail(); }

void ControlPlane::restart_cn(CnId id) { cns_[id.value]->restart(); }

void ControlPlane::fail_dn(DnId id) { dns_[id.value]->fail(); }

void ControlPlane::restart_dn(DnId id) {
    DatabaseNode* dn = dns_[id.value].get();
    dn->restart();
    // "If a DN goes down, the CNs connected to that DN send a RE-ADD message
    // to their peers, asking them to list the files that they are storing."
    for (const auto& cn : cns_)
        if (cn->region() == dn->region()) cn->issue_re_add();
}

int ControlPlane::fail_cn_region(int region) {
    int changed = 0;
    for (const auto& cn : cns_) {
        if (region >= 0 && cn->region().value != region) continue;
        if (!cn->up()) continue;
        cn->fail();
        ++changed;
    }
    return changed;
}

int ControlPlane::restart_cn_region(int region) {
    int changed = 0;
    for (const auto& cn : cns_) {
        if (region >= 0 && cn->region().value != region) continue;
        if (cn->up()) continue;
        cn->restart();
        ++changed;
    }
    return changed;
}

int ControlPlane::fail_dn_region(int region) {
    int changed = 0;
    for (const auto& dn : dns_) {
        if (region >= 0 && dn->region().value != region) continue;
        if (!dn->up()) continue;
        dn->fail();
        ++changed;
    }
    return changed;
}

int ControlPlane::restart_dn_region(int region) {
    int changed = 0;
    for (const auto& dn : dns_) {
        if (region >= 0 && dn->region().value != region) continue;
        if (dn->up()) continue;
        restart_dn(dn->id());  // includes the RE-ADD fan-out
        ++changed;
    }
    return changed;
}

void ControlPlane::set_stuns_online(bool online) {
    for (const auto& s : stuns_) s->set_online(online);
}

StunService& ControlPlane::closest_stun(HostId client) {
    const auto client_point = world_->host(client).attach.location.point;
    StunService* best = nullptr;
    double best_km = std::numeric_limits<double>::infinity();
    for (const auto& s : stuns_) {
        const double km =
            net::haversine_km(client_point, world_->host(s->host()).attach.location.point);
        if (km < best_km) {
            best_km = km;
            best = s.get();
        }
    }
    assert(best != nullptr);
    return *best;
}

void ControlPlane::register_metrics(obs::Registry& registry) {
    registry.add_counter("control.logins", &metrics_.logins);
    registry.add_counter("control.logins_deferred", &metrics_.logins_deferred);
    registry.add_counter("control.logins_refused", &metrics_.logins_refused);
    registry.add_counter("control.queries", &metrics_.queries);
    registry.add_counter("control.readds", &metrics_.readds);
    registry.add_counter("control.copies_registered", &metrics_.copies_registered);
    registry.add_counter("control.download_reports", &metrics_.download_reports);
    registry.add_counter("control.transfer_reports", &metrics_.transfer_reports);
    registry.add_histogram("control.peers_returned", &metrics_.peers_returned);
    registry.add_computed("control.sessions", [this] {
        std::size_t n = 0;
        for (const auto& cn : cns_) n += cn->session_count();
        return static_cast<double>(n);
    });
    registry.add_computed("control.dn_entries", [this] {
        std::size_t n = 0;
        for (const auto& dn : dns_) n += dn->registration_count();
        return static_cast<double>(n);
    });
    registry.add_computed("control.cns_up", [this] {
        int n = 0;
        for (const auto& cn : cns_) n += cn->up() ? 1 : 0;
        return static_cast<double>(n);
    });
    registry.add_computed("control.dns_up", [this] {
        int n = 0;
        for (const auto& dn : dns_) n += dn->up() ? 1 : 0;
        return static_cast<double>(n);
    });
}

}  // namespace netsession::control
