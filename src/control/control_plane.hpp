// The NetSession control plane: globally distributed CN/DN/STUN/monitoring
// servers (paper §3.6), DNS-style peer-to-CN mapping (§3.7), and failure
// injection for the robustness behaviours of §3.8.
#pragma once

#include <memory>
#include <vector>

#include "accounting/accounting.hpp"
#include "control/connection_node.hpp"
#include "control/database_node.hpp"
#include "control/monitoring.hpp"
#include "control/stun.hpp"
#include "edge/auth.hpp"
#include "net/world.hpp"
#include "obs/metrics.hpp"
#include "trace/trace_log.hpp"

namespace netsession::control {

/// Control-plane metrics, shared by every CN/DN of a ControlPlane (the plane
/// owns the block; see docs/OBSERVABILITY.md for the naming scheme).
struct ControlMetrics {
    obs::Counter logins;           ///< successful control-connection logins
    obs::Counter logins_deferred;  ///< deferred by the §3.8 admission limiter
    obs::Counter logins_refused;   ///< login hit a failed CN
    obs::Counter queries;          ///< peer-list queries received
    obs::Counter readds;           ///< RE-ADD repopulation registrations
    obs::Counter copies_registered;  ///< regular directory registrations
    obs::Counter download_reports;   ///< usage statistics uploads (downloads)
    obs::Counter transfer_reports;   ///< usage statistics uploads (transfers)
    obs::Histogram peers_returned;   ///< peers per answered query
};

struct ControlPlaneConfig {
    int cns_per_region = 1;
    int dns_per_region = 1;
    /// "By default, up to 40 peers are returned" (§3.7).
    int max_peers_returned = 40;
    SelectionPolicy selection;
    /// "using only local DNs in searches does not negatively impact
    /// performance" (§3.7) — the production setting; false enables the
    /// cross-region search ablation.
    bool local_dns_only = true;
    /// "The CN/DN system is interconnected across regions, so it is possible
    /// in principle to search for peers from any region" (§3.7). When the
    /// local DN returns fewer than this many candidates, the CN widens the
    /// search to the other regions' DNs. In production the local answer is
    /// almost always sufficient; at simulation scale (10^3 fewer peers) the
    /// fallback keeps swarm discovery working. Set to 0 to disable.
    int cross_region_threshold = 8;
    /// RE-ADD repopulation rate limit, requests per second per CN (§3.8).
    double readd_rate_per_s = 200.0;
    /// Login admission rate per CN, logins/second ("in the event of an
    /// unexpectedly large-scale failure, reconnections are rate-limited to
    /// ensure a smooth recovery", §3.8). 0 disables the limiter.
    double login_rate_per_s = 300.0;
    /// Burst depth of the login token bucket.
    double login_burst = 600.0;
};

class ControlPlane {
public:
    ControlPlane(net::World& world, const edge::TokenAuthority& authority, trace::TraceLog& log,
                 accounting::AccountingService& accounting, ControlPlaneConfig config, Rng rng);

    ControlPlane(const ControlPlane&) = delete;
    ControlPlane& operator=(const ControlPlane&) = delete;

    /// DNS mapping: the nearest *live* CN for a client; nullptr if the whole
    /// control plane is down (the peer then falls back to edge-only, §3.8).
    [[nodiscard]] ConnectionNode* closest_cn(HostId client);

    /// The live DN serving a region (round-robin if several); with
    /// local_dns_only=false, falls back to any live DN in the system.
    [[nodiscard]] DatabaseNode* local_dn(RegionId region);

    /// Locates the endpoint of a connected peer (for introductions).
    [[nodiscard]] PeerEndpoint* find_endpoint(Guid guid) const;

    /// Session registry hooks, used by ConnectionNode.
    void note_session(Guid guid, PeerEndpoint* endpoint);
    void drop_session(Guid guid);

    /// Releases a new client software version: every connected peer is told
    /// to upgrade over its control connection; offline peers get the notice
    /// at their next login (§3.8: centrally controlled client version).
    void release_client_version(std::uint32_t version);
    [[nodiscard]] std::uint32_t current_client_version() const noexcept {
        return client_version_;
    }

    // --- failure injection -------------------------------------------------
    void fail_cn(CnId id);
    void restart_cn(CnId id);
    void fail_dn(DnId id);
    /// Restarting a DN brings it back *empty* and triggers RE-ADD through
    /// the CNs of its region.
    void restart_dn(DnId id);
    /// Region-scoped variants for the fault engine (`region < 0`: all).
    /// Return the number of nodes whose state changed.
    int fail_cn_region(int region);
    int restart_cn_region(int region);
    int fail_dn_region(int region);
    int restart_dn_region(int region);
    /// STUN blackout: silences (or restores) every STUN component.
    void set_stuns_online(bool online);

    // --- accessors ---------------------------------------------------------
    [[nodiscard]] net::World& world() noexcept { return *world_; }
    [[nodiscard]] const edge::TokenAuthority& authority() const noexcept { return *authority_; }
    [[nodiscard]] trace::TraceLog& trace_log() noexcept { return *log_; }
    [[nodiscard]] accounting::AccountingService& accounting() noexcept { return *accounting_; }
    [[nodiscard]] MonitoringNode& monitoring() noexcept { return monitoring_; }
    [[nodiscard]] const ControlPlaneConfig& config() const noexcept { return config_; }
    [[nodiscard]] Rng& rng() noexcept { return rng_; }
    [[nodiscard]] std::vector<std::unique_ptr<ConnectionNode>>& cns() noexcept { return cns_; }
    [[nodiscard]] std::vector<std::unique_ptr<DatabaseNode>>& dns() noexcept { return dns_; }
    [[nodiscard]] std::vector<std::unique_ptr<StunService>>& stuns() noexcept { return stuns_; }
    [[nodiscard]] StunService& closest_stun(HostId client);

    /// Registers the plane's counters plus computed gauges for live state
    /// (session counts, directory depth, CN/DN availability).
    void register_metrics(obs::Registry& registry);
    [[nodiscard]] ControlMetrics& metrics() noexcept { return metrics_; }

private:
    net::World* world_;
    const edge::TokenAuthority* authority_;
    trace::TraceLog* log_;
    accounting::AccountingService* accounting_;
    MonitoringNode monitoring_;
    ControlPlaneConfig config_;
    Rng rng_;
    std::vector<std::unique_ptr<ConnectionNode>> cns_;
    std::vector<std::unique_ptr<DatabaseNode>> dns_;
    std::vector<std::unique_ptr<StunService>> stuns_;
    FlatHashMap<Guid, PeerEndpoint*> endpoints_;
    std::vector<std::size_t> dn_rr_;  // per-region round-robin cursor
    std::uint32_t client_version_ = 0;  // 0 = no centrally released version yet
    ControlMetrics metrics_;
};

}  // namespace netsession::control
