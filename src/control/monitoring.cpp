#include "control/monitoring.hpp"

namespace netsession::control {

void MonitoringNode::report_download_outcome(bool success) {
    ++window_total_;
    if (success) ++window_success_;
    constexpr int kWindow = 200;
    if (window_total_ < kWindow) return;
    const double rate = static_cast<double>(window_success_) / static_cast<double>(window_total_);
    if (rate < threshold_) {
        ++alerts_;
        if (on_alert_) on_alert_();
    }
    window_total_ = 0;
    window_success_ = 0;
}

}  // namespace netsession::control
