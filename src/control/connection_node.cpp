#include "control/connection_node.hpp"

#include <algorithm>

#include "control/control_plane.hpp"

namespace netsession::control {

bool ConnectionNode::admit_login() {
    const double rate = plane_->config().login_rate_per_s;
    if (rate <= 0.0) return true;
    const auto now = plane_->world().simulator().now();
    if (login_tokens_ < 0.0) {
        login_tokens_ = plane_->config().login_burst;
        tokens_refilled_at_ = now;
    }
    login_tokens_ = std::min(plane_->config().login_burst,
                             login_tokens_ + rate * (now - tokens_refilled_at_).seconds());
    tokens_refilled_at_ = now;
    if (login_tokens_ < 1.0) {
        ++logins_deferred_;
        NS_OBS_INC(plane_->metrics().logins_deferred);
        return false;
    }
    login_tokens_ -= 1.0;
    return true;
}

bool ConnectionNode::login(PeerEndpoint& endpoint, const LoginInfo& info) {
    if (!up_) {
        // Connection refused; the peer's retry logic handles it.
        NS_OBS_INC(plane_->metrics().logins_refused);
        return false;
    }
    if (!admit_login()) return false;  // smooth recovery after mass failures (§3.8)
    NS_OBS_INC(plane_->metrics().logins);
    sessions_[info.desc.guid] = Session{&endpoint, info.desc, info.uploads_enabled};
    plane_->note_session(info.desc.guid, &endpoint);

    trace::LoginRecord rec;
    rec.guid = info.desc.guid;
    rec.ip = info.desc.ip;
    rec.software_version = info.software_version;
    rec.uploads_enabled = info.uploads_enabled;
    rec.cn = id_;
    rec.time = plane_->world().simulator().now();
    rec.secondary_guids = info.secondary_guids;
    plane_->trace_log().add(rec);

    // A version released while this peer was offline is delivered right
    // after the connection comes up (§3.8).
    const std::uint32_t version = plane_->current_client_version();
    if (version != 0 && version != info.software_version) {
        PeerEndpoint* ep = &endpoint;
        plane_->world().send(host_, info.desc.host,
                             [ep, version] { ep->on_upgrade_available(version); });
    }

    // "Peers appear in the database only when a) uploads are explicitly
    // enabled on the peer, and b) the peer currently has objects to share."
    if (info.uploads_enabled) {
        if (DatabaseNode* dn = plane_->local_dn(region_)) {
            const auto now = plane_->world().simulator().now();
            for (const auto object : info.cached_objects)
                dn->register_copy(object, info.desc, now);
        }
    }
    return true;
}

void ConnectionNode::push_upgrade(std::uint32_t version) {
    if (!up_) return;
    auto& world = plane_->world();
    for (auto& [guid, session] : sessions_) {
        PeerEndpoint* ep = session.endpoint;
        world.send(host_, session.desc.host, [ep, version] { ep->on_upgrade_available(version); });
    }
}

void ConnectionNode::logout(Guid guid) {
    const auto it = sessions_.find(guid);
    if (it == sessions_.end()) return;
    // Withdraw the peer's directory entries: its content is unreachable
    // while it is offline.
    if (DatabaseNode* dn = plane_->local_dn(region_)) dn->remove_peer(guid);
    plane_->drop_session(guid);
    sessions_.erase(it);
}

void ConnectionNode::query(Guid requester, ObjectId object, const edge::AuthToken& token, int want,
                           std::function<void(std::vector<PeerDescriptor>)> reply) {
    auto& world = plane_->world();
    auto& sim = world.simulator();
    NS_OBS_INC(plane_->metrics().queries);

    const auto it = sessions_.find(requester);
    if (!up_ || it == sessions_.end()) {
        sim.schedule_after(sim::Duration{0}, [reply = std::move(reply)] { reply({}); });
        return;
    }
    const PeerDescriptor desc = it->second.desc;

    // Authorization: the token proves the requester may obtain this object
    // from the infrastructure (§3.5).
    if (!plane_->authority().validate(token, sim.now()) || token.guid != requester ||
        token.object != object) {
        world.send(host_, desc.host, [reply = std::move(reply)] { reply({}); });
        return;
    }

    DatabaseNode* dn = plane_->local_dn(region_);
    if (dn == nullptr) {
        // No live DN reachable: answer empty; the peer keeps downloading
        // from the edge servers (§3.8).
        world.send(host_, desc.host, [reply = std::move(reply)] { reply({}); });
        return;
    }

    const int capped = std::min(want, plane_->config().max_peers_returned);
    const sim::Duration dn_rtt = world.latency(host_, dn->host()) + world.latency(dn->host(), host_);
    sim.schedule_after(dn_rtt, [this, dn, object, desc, capped, reply = std::move(reply)]() mutable {
        // Selection draws into the CN's reusable scratch buffer (the DN
        // query path allocates nothing once the buffer is warm); only the
        // final reply owns a copy.
        select_scratch_.clear();
        dn->select_into(object, desc, capped, plane_->config().selection, plane_->rng(),
                        select_scratch_);
        // Cross-region widening: if the local DN cannot satisfy the query,
        // ask the other regions' DNs (the CN/DN system is interconnected
        // across regions, §3.7).
        const int threshold = std::min(capped, plane_->config().cross_region_threshold);
        if (static_cast<int>(select_scratch_.size()) < threshold) {
            for (const auto& other : plane_->dns()) {
                if (static_cast<int>(select_scratch_.size()) >= capped) break;
                if (other.get() == dn || !other->up()) continue;
                other->select_into(object, desc,
                                   capped - static_cast<int>(select_scratch_.size()),
                                   plane_->config().selection, plane_->rng(), select_scratch_);
            }
        }
        std::vector<PeerDescriptor> peers(select_scratch_.begin(), select_scratch_.end());
        NS_OBS_OBSERVE(plane_->metrics().peers_returned, peers.size());
        // Instruct the chosen peers to expect (and initiate) a connection
        // with the requester — this is what makes traversal work (§3.7).
        for (const auto& peer : peers) {
            if (PeerEndpoint* ep = plane_->find_endpoint(peer.guid))
                plane_->world().send(host_, peer.host,
                                     [ep, desc, object] { ep->on_introduction(desc, object); });
        }
        plane_->world().send(host_, desc.host,
                             [reply = std::move(reply), peers = std::move(peers)]() mutable {
                                 reply(std::move(peers));
                             });
    });
}

void ConnectionNode::register_copy(Guid guid, ObjectId object, bool readd) {
    if (!up_) return;
    const auto it = sessions_.find(guid);
    if (it == sessions_.end() || !it->second.uploads_enabled) return;
    if (readd)
        NS_OBS_INC(plane_->metrics().readds);
    else
        NS_OBS_INC(plane_->metrics().copies_registered);
    if (DatabaseNode* dn = plane_->local_dn(region_))
        dn->register_copy(object, it->second.desc, plane_->world().simulator().now(), readd);
}

void ConnectionNode::unregister_copy(Guid guid, ObjectId object) {
    if (!up_) return;
    if (DatabaseNode* dn = plane_->local_dn(region_)) dn->unregister_copy(object, guid);
}

void ConnectionNode::report_download(const trace::DownloadRecord& record) {
    if (!up_) return;
    NS_OBS_INC(plane_->metrics().download_reports);
    plane_->accounting().submit(record);
    plane_->monitoring().report_download_outcome(record.outcome ==
                                                 trace::DownloadOutcome::completed);
}

void ConnectionNode::report_transfer(const trace::TransferRecord& record) {
    if (!up_) return;
    NS_OBS_INC(plane_->metrics().transfer_reports);
    plane_->trace_log().add(record);
}

void ConnectionNode::fail() {
    up_ = false;
    auto& world = plane_->world();
    for (auto& [guid, session] : sessions_) {
        plane_->drop_session(guid);
        // Peers notice the broken TCP connection after a keepalive timeout.
        PeerEndpoint* ep = session.endpoint;
        world.simulator().schedule_after(sim::seconds(5.0 + plane_->rng().uniform() * 10.0),
                                         [ep] { ep->on_disconnected(); });
    }
    sessions_.clear();
    // A dead CN's peers scatter to other CNs; when this one comes back it
    // refills gradually, so release the peak-sized table now.
    sessions_.shrink_to_fit();
}

void ConnectionNode::issue_re_add() {
    if (!up_) return;
    auto& world = plane_->world();
    const double rate = plane_->config().readd_rate_per_s;
    double offset_s = 0.0;
    for (auto& [guid, session] : sessions_) {
        PeerEndpoint* ep = session.endpoint;
        world.simulator().schedule_after(
            sim::seconds(offset_s) + world.latency(host_, session.desc.host),
            [ep] { ep->on_re_add_request(); });
        offset_s += 1.0 / rate;  // smooth repopulation (§3.8 rate limiting)
    }
}

}  // namespace netsession::control
