// The DN's object→peer directory with hierarchical locality sets.
//
// "Each peer belongs to multiple sets, based on its public IP address and the
// Autonomous System (AS) it is located in. For example, a peer can
// simultaneously be in a universal World set, a subset for a large
// geographical region, a subset for a smaller region, and a subset for its
// specific AS. DN selection begins with peers from the most specific set that
// the querying peer belongs to, and proceeds to less specific sets until
// enough suitable peers are found. An additional mechanism adds diversity:
// Occasionally, peers are selected from a less specific set, with probability
// proportional to the specificity of the set. Also, when a peer is selected,
// it is placed at the end of a peer selection list for fairness."  (§3.7)
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "control/peer_descriptor.hpp"

namespace netsession::control {

/// Locality levels, most specific first.
enum class LocalityLevel : std::uint8_t { as_level, country, continent, world };
inline constexpr int kLocalityLevels = 4;

/// Tunables of the selection process ("the selection process can be modified
/// with a set of configurable policies", §3.7).
struct SelectionPolicy {
    enum class Strategy {
        locality_aware,  // the production algorithm
        random,          // ablation baseline: uniform over the world set
    };
    Strategy strategy = Strategy::locality_aware;

    /// Chance of drawing a slot from the next less-specific set, by level
    /// (index = LocalityLevel). Proportional to specificity per the paper.
    double diversity[kLocalityLevels] = {0.15, 0.10, 0.05, 0.0};

    /// Pre-filter candidates whose NAT type cannot traverse the requester's.
    bool nat_compatibility_filter = true;
};

/// Directory of which peers currently have which objects, per DN.
class Directory {
public:
    /// Registers a copy; replaces a previous registration by the same GUID.
    void add(ObjectId object, const PeerDescriptor& peer);

    /// Removes one peer's registration for one object.
    void remove(ObjectId object, Guid guid);

    /// Removes every registration of a peer (logout / upload-disable).
    void remove_peer(Guid guid);

    /// Selects up to `want` distinct suitable peers for the requester.
    [[nodiscard]] std::vector<PeerDescriptor> select(ObjectId object,
                                                     const PeerDescriptor& requester, int want,
                                                     const SelectionPolicy& policy, Rng& rng) const;

    /// Currently registered copies of an object.
    [[nodiscard]] int copies(ObjectId object) const;

    [[nodiscard]] std::size_t object_count() const noexcept { return swarms_.size(); }
    [[nodiscard]] std::size_t registration_count() const noexcept { return live_entries_; }

    /// Drops everything (simulates a DN crash losing its soft state).
    void clear();

private:
    struct Entry {
        PeerDescriptor peer;
        bool alive = true;
    };

    struct Bucket {
        std::vector<std::uint32_t> members;  // entry indices, append-only
        mutable std::size_t cursor = 0;      // round-robin fairness pointer
    };

    struct Swarm {
        std::vector<Entry> entries;
        std::unordered_map<Guid, std::uint32_t> by_guid;
        std::unordered_map<std::uint32_t, Bucket> by_as;         // Asn value
        std::unordered_map<std::uint16_t, Bucket> by_country;    // CountryId value
        std::unordered_map<std::uint8_t, Bucket> by_continent;   // Continent
        Bucket world;
        std::uint32_t dead = 0;

        void compact();
    };

    /// Walks a bucket round-robin and returns the next acceptable entry.
    template <typename Key>
    std::optional<std::uint32_t> next_in_bucket(
        const Swarm& swarm, const std::unordered_map<Key, Bucket>& buckets, Key key,
        const PeerDescriptor& requester, const SelectionPolicy& policy,
        const std::vector<Guid>& chosen) const;
    std::optional<std::uint32_t> next_in_world(const Swarm& swarm, const PeerDescriptor& requester,
                                               const SelectionPolicy& policy,
                                               const std::vector<Guid>& chosen) const;
    [[nodiscard]] bool acceptable(const Entry& e, const PeerDescriptor& requester,
                                  const SelectionPolicy& policy,
                                  const std::vector<Guid>& chosen) const;

    std::unordered_map<ObjectId, Swarm> swarms_;
    std::size_t live_entries_ = 0;
};

}  // namespace netsession::control
