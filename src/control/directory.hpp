// The DN's object→peer directory with hierarchical locality sets.
//
// "Each peer belongs to multiple sets, based on its public IP address and the
// Autonomous System (AS) it is located in. For example, a peer can
// simultaneously be in a universal World set, a subset for a large
// geographical region, a subset for a smaller region, and a subset for its
// specific AS. DN selection begins with peers from the most specific set that
// the querying peer belongs to, and proceeds to less specific sets until
// enough suitable peers are found. An additional mechanism adds diversity:
// Occasionally, peers are selected from a less specific set, with probability
// proportional to the specificity of the set. Also, when a peer is selected,
// it is placed at the end of a peer selection list for fairness."  (§3.7)
//
// Memory layout (docs/SIMULATOR.md): swarms live in an arena::Pool and are
// parked (capacity intact) when their last registration disappears, so a
// churning population reuses entry arrays and bucket tables instead of
// reallocating them; all lookup tables are insertion-ordered FlatHashMaps;
// a per-GUID postings list makes remove_peer O(objects the peer holds)
// instead of a scan over every swarm; and select() draws into caller-owned
// buffers — the query hot path performs no allocation at steady state.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/arena.hpp"
#include "common/flat_hash.hpp"
#include "common/rng.hpp"
#include "control/peer_descriptor.hpp"

namespace netsession::control {

/// Locality levels, most specific first.
enum class LocalityLevel : std::uint8_t { as_level, country, continent, world };
inline constexpr int kLocalityLevels = 4;

/// Tunables of the selection process ("the selection process can be modified
/// with a set of configurable policies", §3.7).
struct SelectionPolicy {
    enum class Strategy {
        locality_aware,  // the production algorithm
        random,          // ablation baseline: uniform over the world set
    };
    Strategy strategy = Strategy::locality_aware;

    /// Chance of drawing a slot from the next less-specific set, by level
    /// (index = LocalityLevel). Proportional to specificity per the paper.
    double diversity[kLocalityLevels] = {0.15, 0.10, 0.05, 0.0};

    /// Pre-filter candidates whose NAT type cannot traverse the requester's.
    bool nat_compatibility_filter = true;
};

/// Directory of which peers currently have which objects, per DN.
class Directory {
public:
    /// Registers a copy; replaces a previous registration by the same GUID.
    void add(ObjectId object, const PeerDescriptor& peer);

    /// Removes one peer's registration for one object.
    void remove(ObjectId object, Guid guid);

    /// Removes every registration of a peer (logout / upload-disable).
    /// O(number of objects this peer has registered) via the postings list.
    void remove_peer(Guid guid);

    /// Appends up to `want` distinct suitable peers for the requester to
    /// `out` (which the caller owns and typically reuses across queries —
    /// no allocation happens here once its capacity is warm).
    void select_into(ObjectId object, const PeerDescriptor& requester, int want,
                     const SelectionPolicy& policy, Rng& rng,
                     std::vector<PeerDescriptor>& out) const;

    /// Convenience wrapper over select_into for tests and one-off callers.
    [[nodiscard]] std::vector<PeerDescriptor> select(ObjectId object,
                                                     const PeerDescriptor& requester, int want,
                                                     const SelectionPolicy& policy,
                                                     Rng& rng) const {
        std::vector<PeerDescriptor> result;
        select_into(object, requester, want, policy, rng, result);
        return result;
    }

    /// Currently registered copies of an object.
    [[nodiscard]] int copies(ObjectId object) const;

    [[nodiscard]] std::size_t object_count() const noexcept { return swarms_.size(); }
    [[nodiscard]] std::size_t registration_count() const noexcept { return live_entries_; }

    /// Drops everything (simulates a DN crash losing its soft state).
    void clear();

    // --- audit hooks (src/audit/; read-only) --------------------------------
    /// Cross-checks the two internal indexes: every posting (guid, object)
    /// must resolve to a live swarm entry for that guid, and the live-entry
    /// counter must equal both the posting count and the live entries found
    /// by walking every swarm. Returns the number of inconsistencies (0 on a
    /// healthy directory, including mid-RE-ADD and right after clear()).
    [[nodiscard]] int audit_consistency() const;
    /// Visits every live (guid, object) registration.
    void for_each_registration(const std::function<void(Guid, ObjectId)>& fn) const;

    /// Storage accounting for the mem.* gauges.
    struct MemoryStats {
        std::size_t pool_bytes_reserved = 0;  ///< swarm arena chunk storage
        std::size_t pool_slots = 0;           ///< swarm slots (live + parked)
        std::size_t pool_live = 0;            ///< swarms currently indexed
        double table_load_factor = 0.0;       ///< swarms_ index occupancy
    };
    [[nodiscard]] MemoryStats memory_stats() const noexcept {
        MemoryStats m;
        m.pool_bytes_reserved = swarm_pool_.bytes_reserved();
        m.pool_slots = swarm_pool_.slot_count();
        m.pool_live = swarm_pool_.live();
        m.table_load_factor = swarms_.load_factor();
        return m;
    }

private:
    struct Entry {
        PeerDescriptor peer;
        bool alive = true;
    };

    struct Bucket {
        std::vector<std::uint32_t> members;  // entry indices, append-only
        mutable std::size_t cursor = 0;      // round-robin fairness pointer
    };

    struct Swarm {
        std::vector<Entry> entries;
        FlatHashMap<Guid, std::uint32_t> by_guid;
        FlatHashMap<std::uint32_t, Bucket> by_as;        // Asn value
        FlatHashMap<std::uint16_t, Bucket> by_country;   // CountryId value
        FlatHashMap<std::uint8_t, Bucket> by_continent;  // Continent
        Bucket world;
        /// The object this swarm indexes — lets a 4-byte posting handle
        /// resolve back to the 16-byte ObjectId without a map lookup.
        ObjectId object;
        std::uint32_t dead = 0;

        void compact();
        /// Logical reset on reuse from the pool; storage capacity survives.
        void reset();
    };
    using SwarmHandle = arena::PoolHandle<Swarm>;

    [[nodiscard]] Swarm* find_swarm(ObjectId object);
    [[nodiscard]] const Swarm* find_swarm(ObjectId object) const;
    /// Marks one registration dead; compacts/releases per the shared policy.
    void kill_registration(ObjectId object, Guid guid, bool drop_posting);
    /// Same, addressed by swarm handle (the remove_peer fast path).
    void kill_by_handle(SwarmHandle handle, Guid guid, bool drop_posting);

    /// Walks a bucket round-robin and returns the next acceptable entry.
    template <typename Key>
    std::optional<std::uint32_t> next_in_bucket(const Swarm& swarm,
                                                const FlatHashMap<Key, Bucket>& buckets, Key key,
                                                const PeerDescriptor& requester,
                                                const SelectionPolicy& policy) const;
    std::optional<std::uint32_t> next_in_world(const Swarm& swarm, const PeerDescriptor& requester,
                                               const SelectionPolicy& policy) const;
    [[nodiscard]] bool acceptable(const Entry& e, const PeerDescriptor& requester,
                                  const SelectionPolicy& policy) const;

    FlatHashMap<ObjectId, SwarmHandle> swarms_;
    arena::Pool<Swarm> swarm_pool_;
    /// guid → 32-bit handles of the swarms it is registered in (unordered
    /// within a guid). Handles instead of ObjectIds quarter the per-posting
    /// footprint (4 B vs 16 B) and skip the swarms_ lookup on removal; a
    /// posting handle stays valid exactly as long as the registration lives,
    /// because a swarm is only parked when its last registration goes.
    FlatHashMap<Guid, std::vector<SwarmHandle>> postings_;
    std::size_t live_entries_ = 0;

    std::vector<SwarmHandle> remove_scratch_;    // remove_peer working set
    mutable std::vector<Guid> chosen_scratch_;   // select_into dedup set
};

}  // namespace netsession::control
