#include "control/directory.hpp"

#include <algorithm>
#include <cassert>

namespace netsession::control {

void Directory::add(ObjectId object, const PeerDescriptor& peer) {
    auto [sit, fresh_swarm] = swarms_.try_emplace(object);
    if (fresh_swarm) {
        sit->second = swarm_pool_.acquire();
        swarm_pool_.get(sit->second).reset();
        swarm_pool_.get(sit->second).object = object;
    }
    const SwarmHandle handle = sit->second;
    Swarm& swarm = swarm_pool_.get(handle);

    bool had_guid = false;
    if (auto* idxp = swarm.by_guid.find_value(peer.guid)) {
        // Re-registration: refresh connectivity details in place. If the
        // peer moved (new AS/country), drop and re-add so buckets stay true.
        Entry& e = swarm.entries[*idxp];
        if (e.peer.asn == peer.asn && e.peer.country == peer.country) {
            e.peer = peer;
            return;
        }
        e.alive = false;
        ++swarm.dead;
        --live_entries_;
        swarm.by_guid.erase(peer.guid);
        had_guid = true;
    }
    const auto idx = static_cast<std::uint32_t>(swarm.entries.size());
    swarm.entries.push_back(Entry{peer, true});
    swarm.by_guid[peer.guid] = idx;
    swarm.by_as[peer.asn.value].members.push_back(idx);
    swarm.by_country[peer.country.value].members.push_back(idx);
    swarm.by_continent[static_cast<std::uint8_t>(peer.continent)].members.push_back(idx);
    swarm.world.members.push_back(idx);
    ++live_entries_;
    // The postings list tracks (guid → swarm handles); a moved peer was
    // already listed for this object's swarm.
    if (!had_guid) postings_[peer.guid].push_back(handle);
}

void Directory::kill_registration(ObjectId object, Guid guid, bool drop_posting) {
    const auto* handle = swarms_.find_value(object);
    if (handle == nullptr) return;
    kill_by_handle(*handle, guid, drop_posting);
}

void Directory::kill_by_handle(SwarmHandle handle, Guid guid, bool drop_posting) {
    Swarm& swarm = swarm_pool_.get(handle);
    const auto* idxp = swarm.by_guid.find_value(guid);
    if (idxp == nullptr) return;
    swarm.entries[*idxp].alive = false;
    ++swarm.dead;
    --live_entries_;
    swarm.by_guid.erase(guid);

    if (drop_posting) {
        if (auto* list = postings_.find_value(guid)) {
            const auto it = std::find(list->begin(), list->end(), handle);
            assert(it != list->end() && "postings list out of sync with by_guid");
            *it = list->back();  // unordered within a guid: swap-pop
            list->pop_back();
            if (list->empty()) postings_.erase(guid);
        }
    }

    if (swarm.by_guid.empty()) {
        // Last registration gone: park the swarm (entry arrays and bucket
        // tables keep their capacity for the next object that forms here).
        swarms_.erase(swarm.object);
        swarm_pool_.release(handle);
    } else if (swarm.dead > 64 && swarm.dead * 2 > swarm.entries.size()) {
        swarm.compact();
    }
}

void Directory::remove(ObjectId object, Guid guid) {
    kill_registration(object, guid, /*drop_posting=*/true);
}

void Directory::remove_peer(Guid guid) {
    const auto it = postings_.find(guid);
    if (it == postings_.end()) return;
    // Detach the peer's postings list into the reusable scratch buffer, then
    // walk it — O(objects this peer holds), no allocation, and safe against
    // the per-object removals mutating postings_.
    remove_scratch_.clear();
    remove_scratch_.swap(it->second);
    postings_.erase(guid);
    for (const SwarmHandle handle : remove_scratch_)
        kill_by_handle(handle, guid, /*drop_posting=*/false);
}

int Directory::copies(ObjectId object) const {
    const Swarm* swarm = find_swarm(object);
    return swarm == nullptr ? 0 : static_cast<int>(swarm->by_guid.size());
}

void Directory::clear() {
    // Park every swarm: a restarted DN refills from RE-ADDs into the same
    // storage instead of growing fresh tables.
    for (auto& [object, handle] : swarms_) swarm_pool_.release(handle);
    swarms_.clear();
    postings_.clear();
    // A restarted DN typically refills to a fraction of its pre-crash peak
    // (warm-up swarms are gone); drop the empty tables' storage too.
    swarms_.shrink_to_fit();
    postings_.shrink_to_fit();
    live_entries_ = 0;
}

int Directory::audit_consistency() const {
    int violations = 0;
    // Every posting must resolve to a live swarm entry for that GUID, and
    // the handle must agree with the swarms_ index for the swarm's object.
    std::size_t posted = 0;
    for (const auto& [guid, handles] : postings_) {
        for (const SwarmHandle handle : handles) {
            ++posted;
            if (!swarm_pool_.valid(handle)) {
                ++violations;
                continue;
            }
            const Swarm& swarm = swarm_pool_.get(handle);
            const SwarmHandle* indexed = swarms_.find_value(swarm.object);
            if (indexed == nullptr || !(*indexed == handle)) ++violations;
            const std::uint32_t* idx = swarm.by_guid.find_value(guid);
            if (idx == nullptr || !swarm.entries[*idx].alive) ++violations;
        }
    }
    // The counter, the postings, and a full swarm walk must agree.
    std::size_t live = 0;
    for (const auto& [object, handle] : swarms_) {
        const Swarm& swarm = swarm_pool_.get(handle);
        for (const Entry& e : swarm.entries)
            if (e.alive) ++live;
    }
    if (live != live_entries_) ++violations;
    if (posted != live_entries_) ++violations;
    return violations;
}

void Directory::for_each_registration(const std::function<void(Guid, ObjectId)>& fn) const {
    for (const auto& [guid, handles] : postings_)
        for (const SwarmHandle handle : handles) fn(guid, swarm_pool_.get(handle).object);
}

Directory::Swarm* Directory::find_swarm(ObjectId object) {
    auto* handle = swarms_.find_value(object);
    return handle == nullptr ? nullptr : &swarm_pool_.get(*handle);
}

const Directory::Swarm* Directory::find_swarm(ObjectId object) const {
    const auto* handle = swarms_.find_value(object);
    return handle == nullptr ? nullptr : &swarm_pool_.get(*handle);
}

void Directory::Swarm::compact() {
    std::vector<Entry> fresh;
    fresh.reserve(by_guid.size());
    by_guid.clear();
    by_as.clear();
    by_country.clear();
    by_continent.clear();
    world.members.clear();
    world.cursor = 0;
    for (const auto& e : entries) {
        if (!e.alive) continue;
        const auto idx = static_cast<std::uint32_t>(fresh.size());
        fresh.push_back(e);
        by_guid[e.peer.guid] = idx;
        by_as[e.peer.asn.value].members.push_back(idx);
        by_country[e.peer.country.value].members.push_back(idx);
        by_continent[static_cast<std::uint8_t>(e.peer.continent)].members.push_back(idx);
        world.members.push_back(idx);
    }
    entries = std::move(fresh);
    dead = 0;
}

void Directory::Swarm::reset() {
    entries.clear();
    by_guid.clear();
    by_as.clear();
    by_country.clear();
    by_continent.clear();
    world.members.clear();
    world.cursor = 0;
    dead = 0;
}

bool Directory::acceptable(const Entry& e, const PeerDescriptor& requester,
                           const SelectionPolicy& policy) const {
    if (!e.alive) return false;
    if (e.peer.guid == requester.guid) return false;
    if (policy.nat_compatibility_filter && !net::can_traverse(requester.nat, e.peer.nat))
        return false;
    return std::find(chosen_scratch_.begin(), chosen_scratch_.end(), e.peer.guid) ==
           chosen_scratch_.end();
}

template <typename Key>
std::optional<std::uint32_t> Directory::next_in_bucket(const Swarm& swarm,
                                                       const FlatHashMap<Key, Bucket>& buckets,
                                                       Key key, const PeerDescriptor& requester,
                                                       const SelectionPolicy& policy) const {
    const Bucket* b = buckets.find_value(key);
    if (b == nullptr) return std::nullopt;
    const std::size_t n = b->members.size();
    if (n == 0) return std::nullopt;
    for (std::size_t step = 0; step < n; ++step) {
        const std::size_t pos = (b->cursor + step) % n;
        const std::uint32_t idx = b->members[pos];
        if (acceptable(swarm.entries[idx], requester, policy)) {
            b->cursor = (pos + 1) % n;  // selected peers go to the end of the list
            return idx;
        }
    }
    return std::nullopt;
}

std::optional<std::uint32_t> Directory::next_in_world(const Swarm& swarm,
                                                      const PeerDescriptor& requester,
                                                      const SelectionPolicy& policy) const {
    const Bucket& b = swarm.world;
    const std::size_t n = b.members.size();
    for (std::size_t step = 0; step < n; ++step) {
        const std::size_t pos = (b.cursor + step) % n;
        const std::uint32_t idx = b.members[pos];
        if (acceptable(swarm.entries[idx], requester, policy)) {
            b.cursor = (pos + 1) % n;
            return idx;
        }
    }
    return std::nullopt;
}

void Directory::select_into(ObjectId object, const PeerDescriptor& requester, int want,
                            const SelectionPolicy& policy, Rng& rng,
                            std::vector<PeerDescriptor>& out) const {
    if (want <= 0) return;
    const Swarm* swarm_ptr = find_swarm(object);
    if (swarm_ptr == nullptr) return;
    const Swarm& swarm = *swarm_ptr;

    // `chosen_scratch_` dedups within this call only: cross-DN widening can
    // never produce duplicates because a peer registers with one DN.
    chosen_scratch_.clear();
    const auto selected = [&] { return static_cast<int>(chosen_scratch_.size()); };

    // Draws the next candidate from one specific locality level.
    const auto draw_at = [&](int level) -> std::optional<std::uint32_t> {
        switch (static_cast<LocalityLevel>(level)) {
            case LocalityLevel::as_level:
                return next_in_bucket(swarm, swarm.by_as, requester.asn.value, requester, policy);
            case LocalityLevel::country:
                return next_in_bucket(swarm, swarm.by_country, requester.country.value, requester,
                                      policy);
            case LocalityLevel::continent:
                return next_in_bucket(swarm, swarm.by_continent,
                                      static_cast<std::uint8_t>(requester.continent), requester,
                                      policy);
            case LocalityLevel::world:
                return next_in_world(swarm, requester, policy);
        }
        return std::nullopt;
    };

    const auto push = [&](std::uint32_t idx) {
        out.push_back(swarm.entries[idx].peer);
        chosen_scratch_.push_back(swarm.entries[idx].peer.guid);
    };

    if (policy.strategy == SelectionPolicy::Strategy::random) {
        // Ablation baseline: uniform over everyone, no locality. Start the
        // world cursor at a random position for unbiasedness.
        swarm.world.cursor = swarm.world.members.empty()
                                 ? 0
                                 : static_cast<std::size_t>(rng.below(swarm.world.members.size()));
        while (selected() < want) {
            const auto idx = next_in_world(swarm, requester, policy);
            if (!idx) break;
            push(*idx);
        }
        return;
    }

    for (int level = 0; level < kLocalityLevels && selected() < want; ++level) {
        while (selected() < want) {
            int use_level = level;
            // Diversity: occasionally draw from a less specific set, with
            // probability proportional to the specificity of the set.
            if (level + 1 < kLocalityLevels && rng.chance(policy.diversity[level]))
                use_level = level + 1;
            auto idx = draw_at(use_level);
            if (!idx && use_level != level) idx = draw_at(level);
            if (!idx) break;  // level exhausted; proceed to a less specific set
            push(*idx);
        }
    }
}

}  // namespace netsession::control
