#include "control/directory.hpp"

#include <algorithm>
#include <cassert>

namespace netsession::control {

void Directory::add(ObjectId object, const PeerDescriptor& peer) {
    Swarm& swarm = swarms_[object];
    if (const auto it = swarm.by_guid.find(peer.guid); it != swarm.by_guid.end()) {
        // Re-registration: refresh connectivity details in place. If the
        // peer moved (new AS/country), drop and re-add so buckets stay true.
        Entry& e = swarm.entries[it->second];
        if (e.peer.asn == peer.asn && e.peer.country == peer.country) {
            e.peer = peer;
            return;
        }
        e.alive = false;
        ++swarm.dead;
        --live_entries_;
        swarm.by_guid.erase(it);
    }
    const auto idx = static_cast<std::uint32_t>(swarm.entries.size());
    swarm.entries.push_back(Entry{peer, true});
    swarm.by_guid[peer.guid] = idx;
    swarm.by_as[peer.asn.value].members.push_back(idx);
    swarm.by_country[peer.country.value].members.push_back(idx);
    swarm.by_continent[static_cast<std::uint8_t>(peer.continent)].members.push_back(idx);
    swarm.world.members.push_back(idx);
    ++live_entries_;
}

void Directory::remove(ObjectId object, Guid guid) {
    const auto sit = swarms_.find(object);
    if (sit == swarms_.end()) return;
    Swarm& swarm = sit->second;
    const auto it = swarm.by_guid.find(guid);
    if (it == swarm.by_guid.end()) return;
    swarm.entries[it->second].alive = false;
    ++swarm.dead;
    --live_entries_;
    swarm.by_guid.erase(it);
    if (swarm.dead > 64 && swarm.dead * 2 > swarm.entries.size()) swarm.compact();
    if (swarm.by_guid.empty()) swarms_.erase(sit);
}

void Directory::remove_peer(Guid guid) {
    std::vector<ObjectId> emptied;
    for (auto& [object, swarm] : swarms_) {
        const auto it = swarm.by_guid.find(guid);
        if (it == swarm.by_guid.end()) continue;
        swarm.entries[it->second].alive = false;
        ++swarm.dead;
        --live_entries_;
        swarm.by_guid.erase(it);
        if (swarm.dead > 64 && swarm.dead * 2 > swarm.entries.size()) swarm.compact();
        if (swarm.by_guid.empty()) emptied.push_back(object);
    }
    for (const auto object : emptied) swarms_.erase(object);
}

int Directory::copies(ObjectId object) const {
    const auto it = swarms_.find(object);
    return it == swarms_.end() ? 0 : static_cast<int>(it->second.by_guid.size());
}

void Directory::clear() {
    swarms_.clear();
    live_entries_ = 0;
}

void Directory::Swarm::compact() {
    std::vector<Entry> fresh;
    fresh.reserve(by_guid.size());
    by_guid.clear();
    by_as.clear();
    by_country.clear();
    by_continent.clear();
    world = Bucket{};
    for (const auto& e : entries) {
        if (!e.alive) continue;
        const auto idx = static_cast<std::uint32_t>(fresh.size());
        fresh.push_back(e);
        by_guid[e.peer.guid] = idx;
        by_as[e.peer.asn.value].members.push_back(idx);
        by_country[e.peer.country.value].members.push_back(idx);
        by_continent[static_cast<std::uint8_t>(e.peer.continent)].members.push_back(idx);
        world.members.push_back(idx);
    }
    entries = std::move(fresh);
    dead = 0;
}

bool Directory::acceptable(const Entry& e, const PeerDescriptor& requester,
                           const SelectionPolicy& policy, const std::vector<Guid>& chosen) const {
    if (!e.alive) return false;
    if (e.peer.guid == requester.guid) return false;
    if (policy.nat_compatibility_filter && !net::can_traverse(requester.nat, e.peer.nat))
        return false;
    return std::find(chosen.begin(), chosen.end(), e.peer.guid) == chosen.end();
}

template <typename Key>
std::optional<std::uint32_t> Directory::next_in_bucket(
    const Swarm& swarm, const std::unordered_map<Key, Bucket>& buckets, Key key,
    const PeerDescriptor& requester, const SelectionPolicy& policy,
    const std::vector<Guid>& chosen) const {
    const auto it = buckets.find(key);
    if (it == buckets.end()) return std::nullopt;
    const Bucket& b = it->second;
    const std::size_t n = b.members.size();
    if (n == 0) return std::nullopt;
    for (std::size_t step = 0; step < n; ++step) {
        const std::size_t pos = (b.cursor + step) % n;
        const std::uint32_t idx = b.members[pos];
        if (acceptable(swarm.entries[idx], requester, policy, chosen)) {
            b.cursor = (pos + 1) % n;  // selected peers go to the end of the list
            return idx;
        }
    }
    return std::nullopt;
}

std::optional<std::uint32_t> Directory::next_in_world(const Swarm& swarm,
                                                      const PeerDescriptor& requester,
                                                      const SelectionPolicy& policy,
                                                      const std::vector<Guid>& chosen) const {
    const Bucket& b = swarm.world;
    const std::size_t n = b.members.size();
    for (std::size_t step = 0; step < n; ++step) {
        const std::size_t pos = (b.cursor + step) % n;
        const std::uint32_t idx = b.members[pos];
        if (acceptable(swarm.entries[idx], requester, policy, chosen)) {
            b.cursor = (pos + 1) % n;
            return idx;
        }
    }
    return std::nullopt;
}

std::vector<PeerDescriptor> Directory::select(ObjectId object, const PeerDescriptor& requester,
                                              int want, const SelectionPolicy& policy,
                                              Rng& rng) const {
    std::vector<PeerDescriptor> result;
    if (want <= 0) return result;
    const auto sit = swarms_.find(object);
    if (sit == swarms_.end()) return result;
    const Swarm& swarm = sit->second;

    std::vector<Guid> chosen;
    chosen.reserve(static_cast<std::size_t>(want));

    // Draws the next candidate from one specific locality level.
    const auto draw_at = [&](int level) -> std::optional<std::uint32_t> {
        switch (static_cast<LocalityLevel>(level)) {
            case LocalityLevel::as_level:
                return next_in_bucket(swarm, swarm.by_as, requester.asn.value, requester, policy,
                                      chosen);
            case LocalityLevel::country:
                return next_in_bucket(swarm, swarm.by_country, requester.country.value, requester,
                                      policy, chosen);
            case LocalityLevel::continent:
                return next_in_bucket(swarm, swarm.by_continent,
                                      static_cast<std::uint8_t>(requester.continent), requester,
                                      policy, chosen);
            case LocalityLevel::world:
                return next_in_world(swarm, requester, policy, chosen);
        }
        return std::nullopt;
    };

    const auto push = [&](std::uint32_t idx) {
        result.push_back(swarm.entries[idx].peer);
        chosen.push_back(swarm.entries[idx].peer.guid);
    };

    if (policy.strategy == SelectionPolicy::Strategy::random) {
        // Ablation baseline: uniform over everyone, no locality. Start the
        // world cursor at a random position for unbiasedness.
        swarm.world.cursor = swarm.world.members.empty()
                                 ? 0
                                 : static_cast<std::size_t>(rng.below(swarm.world.members.size()));
        while (static_cast<int>(result.size()) < want) {
            const auto idx = next_in_world(swarm, requester, policy, chosen);
            if (!idx) break;
            push(*idx);
        }
        return result;
    }

    for (int level = 0; level < kLocalityLevels && static_cast<int>(result.size()) < want;
         ++level) {
        while (static_cast<int>(result.size()) < want) {
            int use_level = level;
            // Diversity: occasionally draw from a less specific set, with
            // probability proportional to the specificity of the set.
            if (level + 1 < kLocalityLevels && rng.chance(policy.diversity[level]))
                use_level = level + 1;
            auto idx = draw_at(use_level);
            if (!idx && use_level != level) idx = draw_at(level);
            if (!idx) break;  // level exhausted; proceed to a less specific set
            push(*idx);
        }
    }
    return result;
}

}  // namespace netsession::control
