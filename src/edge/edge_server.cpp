#include "edge/edge_server.hpp"

#include <cassert>

namespace netsession::edge {

EdgeServer::EdgeServer(EdgeId id, net::World& world, const Catalog& catalog,
                       const TokenAuthority& authority, HostId host, Rate per_connection_cap)
    : id_(id),
      world_(&world),
      catalog_(&catalog),
      authority_(&authority),
      host_(host),
      per_connection_cap_(per_connection_cap) {}

AuthToken EdgeServer::authorize(Guid guid, ObjectId object) const {
    return authority_->issue(guid, object, world_->simulator().now() + sim::hours(1.0));
}

net::FlowId EdgeServer::serve_piece(HostId client, Guid client_guid,
                                    const swarm::ContentObject& object, swarm::PieceIndex piece,
                                    std::function<void(Digest256)> on_done) {
    assert(catalog_->find(object.id()) != nullptr && "cannot serve unpublished content");
    NS_OBS_INC_P(metrics_, requests);
    if (!online_) {
        NS_OBS_INC_P(metrics_, refusals);
        return net::FlowId{};  // request goes unanswered
    }
    const Bytes len = object.piece_length(piece);
    const DownloadKey key{client_guid, object.id()};
    const ObjectId oid = object.id();
    const Digest256 digest = object.correct_transfer_digest(piece);
    const net::FlowId id = world_->flows().start_flow(
        host_, client, len, per_connection_cap_,
        [this, key, len, digest, oid, done = std::move(on_done)](net::FlowId flow) {
            (void)oid;
            forget_flow(flow);
            ledger_[key] += len;
            total_served_ += len;
            NS_OBS_INC_P(metrics_, pieces_served);
            NS_OBS_ADD_P(metrics_, bytes_served, len);
            if (done) done(digest);
        });
    live_flows_.push_back(id);
    return id;
}

Bytes EdgeServer::abort(net::FlowId flow) {
    forget_flow(flow);
    return world_->flows().cancel_flow(flow);
}

void EdgeServer::fail() {
    online_ = false;
    // Cut in-flight deliveries without firing completions: from the client's
    // point of view the connection just dies.
    for (const net::FlowId flow : live_flows_) world_->flows().cancel_flow(flow);
    live_flows_.clear();
}

void EdgeServer::forget_flow(net::FlowId flow) {
    for (auto it = live_flows_.begin(); it != live_flows_.end(); ++it) {
        if (*it == flow) {
            live_flows_.erase(it);
            return;
        }
    }
}

Bytes EdgeServer::bytes_served(Guid guid, ObjectId object) const {
    const auto it = ledger_.find(DownloadKey{guid, object});
    return it == ledger_.end() ? 0 : it->second;
}

}  // namespace netsession::edge
