#include "edge/edge_server.hpp"

#include <cassert>

namespace netsession::edge {

EdgeServer::EdgeServer(EdgeId id, net::World& world, const Catalog& catalog,
                       const TokenAuthority& authority, HostId host, Rate per_connection_cap)
    : id_(id),
      world_(&world),
      catalog_(&catalog),
      authority_(&authority),
      host_(host),
      per_connection_cap_(per_connection_cap) {}

AuthToken EdgeServer::authorize(Guid guid, ObjectId object) const {
    return authority_->issue(guid, object, world_->simulator().now() + sim::hours(1.0));
}

net::FlowId EdgeServer::serve_piece(HostId client, Guid client_guid,
                                    const swarm::ContentObject& object, swarm::PieceIndex piece,
                                    std::function<void(Digest256)> on_done) {
    assert(catalog_->find(object.id()) != nullptr && "cannot serve unpublished content");
    const Bytes len = object.piece_length(piece);
    const DownloadKey key{client_guid, object.id()};
    const ObjectId oid = object.id();
    const Digest256 digest = object.correct_transfer_digest(piece);
    return world_->flows().start_flow(
        host_, client, len, per_connection_cap_,
        [this, key, len, digest, oid, done = std::move(on_done)](net::FlowId) {
            (void)oid;
            ledger_[key] += len;
            total_served_ += len;
            if (done) done(digest);
        });
}

Bytes EdgeServer::abort(net::FlowId flow) { return world_->flows().cancel_flow(flow); }

Bytes EdgeServer::bytes_served(Guid guid, ObjectId object) const {
    const auto it = ledger_.find(DownloadKey{guid, object});
    return it == ledger_.end() ? 0 : it->second;
}

}  // namespace netsession::edge
