#include "edge/edge_network.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <string>

#include "net/world_data.hpp"

namespace netsession::edge {

EdgeNetwork::EdgeNetwork(net::World& world, const Catalog& catalog,
                         const EdgeNetworkConfig& config)
    : world_(&world), authority_(config.shared_secret) {
    // For each region, find its heaviest country and host the region's edge
    // servers at that country's center, attached to the country's largest AS.
    Rng placement_rng(0xED6E5EEDULL);
    for (const auto& region : net::regions()) {
        const net::CountryInfo* anchor = nullptr;
        for (const auto& c : net::countries()) {
            if (c.region != region.id) continue;
            if (anchor == nullptr || c.peer_weight > anchor->peer_weight) anchor = &c;
        }
        if (anchor == nullptr) continue;  // region without modelled countries
        for (int k = 0; k < config.servers_per_region; ++k) {
            const Asn asn = world.as_graph().pick_for_country(anchor->id, placement_rng);
            net::HostInfo info;
            info.attach.location = net::Location{anchor->id, 0, anchor->center};
            info.attach.asn = asn;
            info.attach.nat = net::NatType::open;
            info.up = config.server_uplink;
            info.down = net::kUnlimited;
            info.is_server = true;
            const HostId host = world.create_host(info);
            const auto id = EdgeId{static_cast<std::uint16_t>(servers_.size())};
            servers_.push_back(std::make_unique<EdgeServer>(id, world, catalog, authority_, host,
                                                            config.per_connection_cap));
            servers_.back()->set_metrics(&metrics_);
        }
    }
    assert(!servers_.empty());
}

EdgeServer& EdgeNetwork::nearest(HostId client) {
    const auto client_point = world_->host(client).attach.location.point;
    EdgeServer* best = nullptr;       // nearest available server
    EdgeServer* best_any = nullptr;   // nearest server, availability ignored
    double best_km = std::numeric_limits<double>::infinity();
    double best_any_km = std::numeric_limits<double>::infinity();
    for (const auto& s : servers_) {
        const double km =
            net::haversine_km(client_point, world_->host(s->host()).attach.location.point);
        if (km < best_any_km) {
            best_any_km = km;
            best_any = s.get();
        }
        if (!s->online() || !world_->reachable(client, s->host())) continue;
        if (km < best_km) {
            best_km = km;
            best = s.get();
        }
    }
    assert(best_any != nullptr);
    return best != nullptr ? *best : *best_any;
}

int EdgeNetwork::fail_region(int region) {
    int changed = 0;
    for (const auto& s : servers_) {
        if (region >= 0 && world_->region_of(s->host()).value != region) continue;
        if (!s->online()) continue;
        s->fail();
        ++changed;
    }
    return changed;
}

int EdgeNetwork::restart_region(int region) {
    int changed = 0;
    for (const auto& s : servers_) {
        if (region >= 0 && world_->region_of(s->host()).value != region) continue;
        if (s->online()) continue;
        s->restart();
        ++changed;
    }
    return changed;
}

std::size_t EdgeNetwork::online_count() const {
    std::size_t n = 0;
    for (const auto& s : servers_) n += s->online() ? 1 : 0;
    return n;
}

Bytes EdgeNetwork::total_bytes_served() const {
    Bytes total = 0;
    for (const auto& s : servers_) total += s->total_bytes_served();
    return total;
}

void EdgeNetwork::register_metrics(obs::Registry& registry) {
    registry.add_counter("edge.requests", &metrics_.requests);
    registry.add_counter("edge.refusals", &metrics_.refusals);
    registry.add_counter("edge.pieces_served", &metrics_.pieces_served);
    registry.add_counter("edge.bytes_served", &metrics_.bytes_served);
    registry.add_computed("edge.online",
                          [this] { return static_cast<double>(online_count()); });
    // One availability gauge per region hosting servers, in first-seen server
    // order (stable: server placement is deterministic).
    std::vector<int> regions;
    for (const auto& s : servers_) {
        const int region = world_->region_of(s->host()).value;
        if (std::find(regions.begin(), regions.end(), region) != regions.end()) continue;
        regions.push_back(region);
        registry.add_computed("edge.region" + std::to_string(region) + ".available",
                              [this, region] {
                                  int online = 0;
                                  int total = 0;
                                  for (const auto& server : servers_) {
                                      if (world_->region_of(server->host()).value != region)
                                          continue;
                                      ++total;
                                      online += server->online() ? 1 : 0;
                                  }
                                  return total == 0 ? 0.0
                                                    : static_cast<double>(online) /
                                                          static_cast<double>(total);
                              });
    }
}

}  // namespace netsession::edge
