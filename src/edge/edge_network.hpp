// The edge-server deployment: a set of edge servers placed across network
// regions, with DNS-style nearest-server mapping (paper §3.2, §3.7: peers
// are "mapped to the closest available CN by Akamai's DNS system" — the same
// mechanism maps clients to edge servers).
#pragma once

#include <memory>
#include <vector>

#include "edge/edge_server.hpp"

namespace netsession::edge {

struct EdgeNetworkConfig {
    int servers_per_region = 1;
    Rate per_connection_cap = 50e6 / 8.0;  // 50 Mbps per client connection
    /// Aggregate uplink per edge server. Unlimited by default (Akamai's
    /// serving capacity is not the bottleneck of a client download); set a
    /// finite value to study an under-provisioned infrastructure — the
    /// regime where the peers' scalability benefit (§2.3) dominates.
    Rate server_uplink = net::kUnlimited;
    std::string shared_secret = "netsession-edge-secret";
};

class EdgeNetwork {
public:
    /// Creates one or more edge servers per region, hosted in the region's
    /// heaviest country's backbone AS.
    EdgeNetwork(net::World& world, const Catalog& catalog, const EdgeNetworkConfig& config);

    /// DNS mapping: the geographically nearest *available* edge server for
    /// the client — failed servers and servers behind a network partition are
    /// skipped, so an outage fails clients over to the next-nearest region.
    /// If no server is available at all, returns the geographically nearest
    /// regardless (DNS still answers; the connection then stalls and the
    /// client's watchdog keeps retrying).
    [[nodiscard]] EdgeServer& nearest(HostId client);

    /// Fault injection: fails/restarts every edge server in `region`
    /// (`region < 0`: all regions). Returns how many servers changed state.
    int fail_region(int region);
    int restart_region(int region);
    [[nodiscard]] std::size_t online_count() const;

    [[nodiscard]] const TokenAuthority& authority() const noexcept { return authority_; }
    [[nodiscard]] const std::vector<std::unique_ptr<EdgeServer>>& servers() const noexcept {
        return servers_;
    }
    [[nodiscard]] Bytes total_bytes_served() const;

    /// Registers the edge tier's metrics: the shared request/byte counters,
    /// an online-server gauge, and one availability gauge per region that
    /// hosts servers (`edge.region<r>.available`, the online fraction).
    void register_metrics(obs::Registry& registry);
    [[nodiscard]] EdgeMetrics& metrics() noexcept { return metrics_; }

private:
    net::World* world_;
    TokenAuthority authority_;
    std::vector<std::unique_ptr<EdgeServer>> servers_;
    EdgeMetrics metrics_;
};

}  // namespace netsession::edge
