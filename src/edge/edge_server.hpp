// A single Akamai edge server.
//
// Edge servers deliver content over HTTP(S), generate/maintain the secure
// object ids and piece hashes, authorize peers for p2p search, communicate
// policies, and provide the trusted byte counts used to detect accounting
// attacks (paper §3.5). In the simulation their uplink is unconstrained (the
// CDN's serving capacity is not the bottleneck of an individual client
// download) but each connection is capped, like a real per-client HTTP
// transfer.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "edge/auth.hpp"
#include "edge/catalog.hpp"
#include "net/world.hpp"
#include "obs/metrics.hpp"
#include "swarm/content.hpp"

namespace netsession::edge {

/// Edge-tier metrics, shared by every server of an EdgeNetwork (the network
/// owns the block and registers it; see docs/OBSERVABILITY.md). Per-server
/// detail stays in the trusted ledger — the metrics answer "how busy is the
/// infrastructure", not "who downloaded what".
struct EdgeMetrics {
    obs::Counter requests;       ///< serve_piece calls, accepted or not
    obs::Counter refusals;       ///< requests hitting an offline server
    obs::Counter pieces_served;  ///< deliveries that ran to completion
    obs::Counter bytes_served;   ///< bytes of completed deliveries
};

/// Key for the trusted per-download ledger.
struct DownloadKey {
    Guid guid;
    ObjectId object;
    friend constexpr auto operator<=>(const DownloadKey&, const DownloadKey&) = default;
};

struct DownloadKeyHash {
    std::size_t operator()(const DownloadKey& k) const noexcept {
        return std::hash<Guid>{}(k.guid) ^ (std::hash<ObjectId>{}(k.object) << 1);
    }
};

class EdgeServer {
public:
    EdgeServer(EdgeId id, net::World& world, const Catalog& catalog,
               const TokenAuthority& authority, HostId host, Rate per_connection_cap);

    [[nodiscard]] EdgeId id() const noexcept { return id_; }
    [[nodiscard]] HostId host() const noexcept { return host_; }

    /// HTTP authentication + token issue for p2p search (§3.5). Tokens are
    /// valid for one hour of simulated time.
    [[nodiscard]] AuthToken authorize(Guid guid, ObjectId object) const;

    /// Starts delivering one piece to `client`. `on_done` receives the digest
    /// of the delivered data (always authentic from the edge) once the last
    /// byte arrives. Returns the flow id so the client can abort. A failed
    /// (offline) server returns an invalid flow id and never calls `on_done`
    /// — like a connection attempt that times out; the client's stall
    /// watchdog is responsible for noticing.
    net::FlowId serve_piece(HostId client, Guid client_guid, const swarm::ContentObject& object,
                            swarm::PieceIndex piece, std::function<void(Digest256)> on_done);

    /// Aborts an in-progress delivery; returns bytes that had been moved.
    Bytes abort(net::FlowId flow);

    /// Fault injection: a failed server cuts every in-flight delivery (no
    /// completion fires) and refuses new ones until restarted. The trusted
    /// ledger survives the outage, like real accounting state.
    void fail();
    void restart() noexcept { online_ = true; }
    [[nodiscard]] bool online() const noexcept { return online_; }

    /// Trusted ground truth: bytes of completed pieces served per download.
    [[nodiscard]] Bytes bytes_served(Guid guid, ObjectId object) const;
    [[nodiscard]] Bytes total_bytes_served() const noexcept { return total_served_; }

    /// Points the server at the network-wide metrics block (may be null; the
    /// NS_OBS_*_P macros no-op on null). EdgeNetwork wires this at build time.
    void set_metrics(EdgeMetrics* metrics) noexcept { metrics_ = metrics; }

private:
    EdgeId id_;
    net::World* world_;
    const Catalog* catalog_;
    const TokenAuthority* authority_;
    HostId host_;
    void forget_flow(net::FlowId flow);

    Rate per_connection_cap_;
    bool online_ = true;
    std::vector<net::FlowId> live_flows_;  // in-flight deliveries, cut on fail()
    std::unordered_map<DownloadKey, Bytes, DownloadKeyHash> ledger_;
    Bytes total_served_ = 0;
    EdgeMetrics* metrics_ = nullptr;
};

}  // namespace netsession::edge
