// The content catalog: every object NetSession can deliver, with its piece
// table and per-object policy. Owned by the edge infrastructure; the control
// plane and peers reference objects by id.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "edge/policy.hpp"
#include "swarm/content.hpp"

namespace netsession::edge {

/// One published object: metadata plus delivery options.
struct CatalogEntry {
    swarm::ContentObject object;
    ObjectPolicy policy;
};

class Catalog {
public:
    /// Publishes an object. The id must be fresh.
    void publish(swarm::ContentObject object, ObjectPolicy policy);

    [[nodiscard]] const CatalogEntry* find(ObjectId id) const;
    [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

    /// Iteration support for workload generation and analysis.
    [[nodiscard]] const std::vector<std::unique_ptr<CatalogEntry>>& entries() const noexcept {
        return entries_;
    }

private:
    std::vector<std::unique_ptr<CatalogEntry>> entries_;
    std::unordered_map<ObjectId, const CatalogEntry*> by_id_;
};

}  // namespace netsession::edge
