#include "edge/auth.hpp"

namespace netsession::edge {

Digest256 TokenAuthority::compute_mac(Guid guid, ObjectId object, sim::SimTime expiry) const {
    const std::uint64_t msg[5] = {guid.hi, guid.lo, object.hi, object.lo,
                                  static_cast<std::uint64_t>(expiry.us)};
    return hmac_sha256(secret_,
                       std::string_view(reinterpret_cast<const char*>(msg), sizeof(msg)));
}

AuthToken TokenAuthority::issue(Guid guid, ObjectId object, sim::SimTime expiry) const {
    return AuthToken{guid, object, expiry, compute_mac(guid, object, expiry)};
}

bool TokenAuthority::validate(const AuthToken& token, sim::SimTime now) const {
    if (now > token.expiry) return false;
    // MAC comparison must not leak the matching prefix length through timing.
    return constant_time_equal(compute_mac(token.guid, token.object, token.expiry), token.mac);
}

}  // namespace netsession::edge
