// Content-provider delivery policies.
//
// "A policy defined by the content provider is used to decide whether a
// particular file may be downloaded and uploaded; in addition, various
// configurable options apply to each download and upload. These policies and
// options are securely communicated to the peers through the trusted
// edge-server infrastructure." (paper §3.5)
#pragma once

#include "common/types.hpp"

namespace netsession::edge {

/// Options a content provider configures for its account. The defaults
/// reflect the production behaviours the paper describes.
struct ProviderPolicy {
    CpCode provider{};

    /// Whether the NetSession binary this provider bundles ships with peer
    /// uploads initially enabled (paper §5.1, Tables 3/4: the initial setting
    /// is chosen by the content provider).
    bool uploads_enabled_by_default = false;

    /// Whether p2p delivery may be enabled on this provider's objects at all.
    bool allow_p2p = true;

    /// Fraction of this provider's *large* objects that have p2p enabled
    /// (content providers "tend to enable it on such objects", §4.4).
    double p2p_enabled_fraction_large = 0.9;

    /// Objects at or above this size count as large for the rule above.
    Bytes large_object_threshold = 100 * 1000 * 1000;
};

/// Per-object delivery options, derived from the provider policy when the
/// object is published.
struct ObjectPolicy {
    bool p2p_enabled = false;

    /// Globally configurable limit on upload connections per peer (§3.4).
    int max_upload_connections = 6;

    /// "peers upload each object at most a limited number of times" (§3.9).
    int max_uploads_per_object = 16;

    /// Upload rate cap per connection — uploads are intentionally limited
    /// (§3.9). Bytes/second.
    double upload_rate_cap = 1.5e6 / 8.0 * 8.0;  // ~1.5 MB/s
};

}  // namespace netsession::edge
