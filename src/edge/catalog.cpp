#include "edge/catalog.hpp"

#include <cassert>

namespace netsession::edge {

void Catalog::publish(swarm::ContentObject object, ObjectPolicy policy) {
    assert(by_id_.find(object.id()) == by_id_.end() && "object ids must be unique per version");
    auto entry = std::make_unique<CatalogEntry>(CatalogEntry{std::move(object), policy});
    by_id_[entry->object.id()] = entry.get();
    entries_.push_back(std::move(entry));
}

const CatalogEntry* Catalog::find(ObjectId id) const {
    const auto it = by_id_.find(id);
    return it == by_id_.end() ? nullptr : it->second;
}

}  // namespace netsession::edge
