// Peer authorization tokens.
//
// "Before a peer can receive content from other peers, it must authenticate
// to an edge server over the HTTP(S) connection; this yields an encrypted
// token that can be used to search for peers. This is done to prevent users
// from downloading files from peers that they are not authorized to obtain
// from the infrastructure." (paper §3.5)
//
// Tokens are HMAC-SHA256 over (guid, object id, expiry) under a key shared
// between the edge infrastructure and the control plane.
#pragma once

#include <cstdint>
#include <string>

#include "common/sha256.hpp"
#include "common/types.hpp"
#include "sim/time.hpp"

namespace netsession::edge {

struct AuthToken {
    Guid guid;
    ObjectId object;
    sim::SimTime expiry;
    Digest256 mac;
};

/// Issues and validates tokens under one shared secret.
class TokenAuthority {
public:
    explicit TokenAuthority(std::string secret) : secret_(std::move(secret)) {}

    [[nodiscard]] AuthToken issue(Guid guid, ObjectId object, sim::SimTime expiry) const;

    /// True iff the MAC is genuine and the token has not expired at `now`.
    [[nodiscard]] bool validate(const AuthToken& token, sim::SimTime now) const;

private:
    [[nodiscard]] Digest256 compute_mac(Guid guid, ObjectId object, sim::SimTime expiry) const;

    std::string secret_;
};

}  // namespace netsession::edge
