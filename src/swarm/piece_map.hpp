// Piece possession bitfield, exchanged between peers during swarming
// ("peers exchange information about which pieces of the file they have
// locally available", paper §3.4).
#pragma once

#include <cstdint>
#include <vector>

#include "swarm/content.hpp"

namespace netsession::swarm {

class PieceMap {
public:
    PieceMap() = default;
    explicit PieceMap(PieceIndex count) : bits_(count, false) {}

    /// A map with every piece present (a seed / completed download).
    static PieceMap full(PieceIndex count) {
        PieceMap m(count);
        m.bits_.assign(count, true);
        m.have_ = count;
        return m;
    }

    /// In-place re-initialisation (all pieces missing/present); reuses the
    /// existing bit storage, so pooled downloads do not reallocate.
    void reset(PieceIndex count) {
        bits_.assign(count, false);
        have_ = 0;
    }
    void reset_full(PieceIndex count) {
        bits_.assign(count, true);
        have_ = count;
    }

    [[nodiscard]] PieceIndex size() const noexcept { return static_cast<PieceIndex>(bits_.size()); }
    [[nodiscard]] PieceIndex have_count() const noexcept { return have_; }
    [[nodiscard]] bool complete() const noexcept { return have_ == size() && size() > 0; }
    [[nodiscard]] bool has(PieceIndex i) const { return bits_[i]; }

    /// Marks a piece present; returns false if it was already present.
    bool set(PieceIndex i) {
        if (bits_[i]) return false;
        bits_[i] = true;
        ++have_;
        return true;
    }

    /// Fraction of pieces present, in [0,1].
    [[nodiscard]] double completion() const noexcept {
        return size() == 0 ? 0.0 : static_cast<double>(have_) / static_cast<double>(size());
    }

private:
    std::vector<bool> bits_;
    PieceIndex have_ = 0;
};

}  // namespace netsession::swarm
