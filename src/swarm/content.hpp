// Content objects and their piece tables.
//
// As in BitTorrent, objects are broken into pieces that can be downloaded
// and hash-verified independently (paper §3.4); the edge servers generate and
// maintain the secure per-version object IDs and the per-piece hashes
// (paper §3.5). Since simulated transfers carry no real payload, a piece's
// "correct data" is represented by a deterministic digest derived from the
// object id and piece index; a corrupted transfer delivers a digest that does
// not verify.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/sha256.hpp"
#include "common/types.hpp"

namespace netsession::swarm {

using PieceIndex = std::uint32_t;

/// Immutable metadata of one version of one distributable object.
class ContentObject {
public:
    /// Builds the piece table for an object. The piece size is chosen so the
    /// object has at most `max_pieces` pieces but pieces are never smaller
    /// than `min_piece_size` (a documented coarsening of BitTorrent-style
    /// fixed-size pieces; see DESIGN.md §4.3).
    ContentObject(ObjectId id, CpCode provider, std::uint64_t url_hash, Bytes size,
                  std::uint32_t max_pieces = 128, Bytes min_piece_size = 256 * 1024);

    [[nodiscard]] ObjectId id() const noexcept { return id_; }
    [[nodiscard]] CpCode provider() const noexcept { return provider_; }
    /// Anonymised URL/file-name token (the paper's logs hash file names).
    [[nodiscard]] std::uint64_t url_hash() const noexcept { return url_hash_; }
    [[nodiscard]] Bytes size() const noexcept { return size_; }
    [[nodiscard]] Bytes piece_size() const noexcept { return piece_size_; }
    [[nodiscard]] PieceIndex piece_count() const noexcept {
        return static_cast<PieceIndex>(piece_hashes_.size());
    }
    /// Size of one specific piece (the last piece may be shorter).
    [[nodiscard]] Bytes piece_length(PieceIndex i) const noexcept;

    /// The authoritative hash of a piece, as published by the edge servers.
    [[nodiscard]] const Digest256& piece_hash(PieceIndex i) const { return piece_hashes_[i]; }

    /// The digest an uncorrupted transfer of piece `i` delivers.
    [[nodiscard]] Digest256 correct_transfer_digest(PieceIndex i) const;

    /// Verifies a received transfer digest against the piece table.
    [[nodiscard]] bool verify(PieceIndex i, const Digest256& received) const;

private:
    ObjectId id_;
    CpCode provider_;
    std::uint64_t url_hash_;
    Bytes size_;
    Bytes piece_size_;
    std::vector<Digest256> piece_hashes_;
};

}  // namespace netsession::swarm
