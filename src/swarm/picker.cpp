#include "swarm/picker.hpp"

#include <cassert>

namespace netsession::swarm {

void PiecePicker::add_source(const PieceMap& map) {
    assert(map.size() == size());
    for (PieceIndex i = 0; i < map.size(); ++i)
        if (map.has(i)) ++availability_[i];
}

void PiecePicker::remove_source(const PieceMap& map) {
    assert(map.size() == size());
    for (PieceIndex i = 0; i < map.size(); ++i)
        if (map.has(i)) {
            assert(availability_[i] > 0);
            --availability_[i];
        }
}

void PiecePicker::set_in_flight(PieceIndex i, bool v) {
    if (in_flight_.size() < availability_.size()) in_flight_.resize(availability_.size(), false);
    in_flight_[i] = v;
}

std::optional<PieceIndex> PiecePicker::pick_from_peer(const PieceMap& local, const PieceMap& remote,
                                                      Rng& rng) const {
    std::optional<PieceIndex> best;
    std::uint32_t best_avail = 0;
    std::uint32_t ties = 0;
    for (PieceIndex i = 0; i < size(); ++i) {
        if (local.has(i) || !remote.has(i) || in_flight(i)) continue;
        const std::uint32_t a = availability_[i];
        if (!best || a < best_avail) {
            best = i;
            best_avail = a;
            ties = 1;
        } else if (a == best_avail) {
            // Reservoir sampling over equally-rare pieces.
            ++ties;
            if (rng.below(ties) == 0) best = i;
        }
    }
    return best;
}

std::optional<PieceIndex> PiecePicker::pick_sequential(const PieceMap& local,
                                                       const PieceMap* remote,
                                                       int skip_urgent) const {
    int skipped = 0;
    for (PieceIndex i = 0; i < size(); ++i) {
        if (local.has(i)) continue;
        if (skipped < skip_urgent) {
            // Leave the earliest missing pieces (in flight or not) to the
            // urgent-window fetcher.
            ++skipped;
            continue;
        }
        if (in_flight(i)) continue;
        if (remote != nullptr && !remote->has(i)) continue;
        return i;
    }
    return std::nullopt;
}

std::optional<PieceIndex> PiecePicker::pick_from_edge(const PieceMap& local, Rng& rng) const {
    std::optional<PieceIndex> best;
    std::uint32_t best_avail = 0;
    std::uint32_t ties = 0;
    for (PieceIndex i = 0; i < size(); ++i) {
        if (local.has(i) || in_flight(i)) continue;
        const std::uint32_t a = availability_[i];
        if (!best || a < best_avail) {
            best = i;
            best_avail = a;
            ties = 1;
        } else if (a == best_avail) {
            ++ties;
            if (rng.below(ties) == 0) best = i;
        }
    }
    return best;
}

}  // namespace netsession::swarm
