// Piece selection for swarming downloads.
//
// Peers download rarest-first (like BitTorrent) so swarms spread pieces
// evenly; the always-present edge connection is steered towards the pieces
// the connected peers *cannot* provide, which is how the infrastructure
// "covers the difference" (paper §3.3).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "swarm/piece_map.hpp"

namespace netsession::swarm {

class PiecePicker {
public:
    PiecePicker() = default;
    explicit PiecePicker(PieceIndex piece_count) : availability_(piece_count, 0) {}

    [[nodiscard]] PieceIndex size() const noexcept {
        return static_cast<PieceIndex>(availability_.size());
    }

    /// In-place re-initialisation; reuses the existing arrays, so pooled
    /// downloads do not reallocate.
    void reset(PieceIndex piece_count) {
        availability_.assign(piece_count, 0);
        in_flight_.clear();
    }

    /// Tracks availability as sources come and go or announce new pieces.
    void add_source(const PieceMap& map);
    void remove_source(const PieceMap& map);
    void source_gained(PieceIndex i) { ++availability_[i]; }

    [[nodiscard]] std::uint32_t availability(PieceIndex i) const { return availability_[i]; }

    /// Marks a piece as requested / no longer requested from some source, so
    /// concurrent connections do not fetch duplicates.
    void set_in_flight(PieceIndex i, bool v);
    [[nodiscard]] bool in_flight(PieceIndex i) const { return in_flight_.size() > i && in_flight_[i]; }

    /// Chooses the rarest piece that `remote` has, `local` misses, and is not
    /// in flight. Ties are broken uniformly at random.
    [[nodiscard]] std::optional<PieceIndex> pick_from_peer(const PieceMap& local,
                                                           const PieceMap& remote, Rng& rng) const;

    /// Chooses the piece with the *lowest* peer availability that `local`
    /// misses and is not in flight — the edge connection fills the gaps the
    /// swarm cannot.
    [[nodiscard]] std::optional<PieceIndex> pick_from_edge(const PieceMap& local, Rng& rng) const;

    /// In-order selection for streaming delivery: the lowest-index missing
    /// piece that is not in flight (optionally only pieces `remote` has).
    /// `skip_urgent` skips that many of the earliest missing pieces — slow
    /// peer sources prefetch *ahead* of the play head while the edge
    /// connection covers the urgent window (avoids head-of-line blocking).
    [[nodiscard]] std::optional<PieceIndex> pick_sequential(const PieceMap& local,
                                                            const PieceMap* remote = nullptr,
                                                            int skip_urgent = 0) const;

private:
    std::vector<std::uint32_t> availability_;
    std::vector<bool> in_flight_;
};

}  // namespace netsession::swarm
