#include "swarm/content.hpp"

#include <cassert>

namespace netsession::swarm {

namespace {
Digest256 derive_piece_digest(ObjectId id, PieceIndex i) {
    Sha256 h;
    h.update("netsession-piece");
    const std::uint64_t parts[3] = {id.hi, id.lo, i};
    h.update(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(parts),
                                           sizeof(parts)));
    return h.finish();
}
}  // namespace

ContentObject::ContentObject(ObjectId id, CpCode provider, std::uint64_t url_hash, Bytes size,
                             std::uint32_t max_pieces, Bytes min_piece_size)
    : id_(id), provider_(provider), url_hash_(url_hash), size_(size) {
    assert(size > 0);
    assert(max_pieces > 0);
    piece_size_ = (size + max_pieces - 1) / max_pieces;
    if (piece_size_ < min_piece_size) piece_size_ = min_piece_size;
    const auto count = static_cast<PieceIndex>((size + piece_size_ - 1) / piece_size_);
    piece_hashes_.reserve(count);
    for (PieceIndex i = 0; i < count; ++i) piece_hashes_.push_back(derive_piece_digest(id_, i));
}

Bytes ContentObject::piece_length(PieceIndex i) const noexcept {
    assert(i < piece_count());
    if (i + 1 < piece_count()) return piece_size_;
    const Bytes tail = size_ - piece_size_ * (piece_count() - 1);
    return tail > 0 ? tail : piece_size_;
}

Digest256 ContentObject::correct_transfer_digest(PieceIndex i) const {
    // The piece table already holds this digest; recomputing the SHA here
    // was ~8% of a 40k-peer run (one hash per piece transfer).
    assert(i < piece_count());
    return piece_hashes_[i];
}

bool ContentObject::verify(PieceIndex i, const Digest256& received) const {
    if (i >= piece_count()) return false;
    return piece_hashes_[i] == received;
}

}  // namespace netsession::swarm
