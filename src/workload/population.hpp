// Synthetic global peer population.
//
// Peers are placed by country weight (shaped to the paper's Fig 2
// distribution), assigned to heavy-tailed ASes within the country, given a
// synthetic city-granularity location, an asymmetric broadband profile, and
// a NAT type. This substitutes for the production deployment's 26M real
// installations (see DESIGN.md §1).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "net/as_graph.hpp"
#include "net/nat.hpp"
#include "net/world_data.hpp"

namespace netsession::workload {

/// Everything needed to create one peer's host.
struct PeerSpec {
    net::Location location;
    Asn asn;
    net::NatType nat = net::NatType::port_restricted;
    Rate up = 0;
    Rate down = 0;
};

struct PopulationConfig {
    int peers = 10000;
    /// Synthetic cities generated per country, scaled by country weight.
    int min_cities_per_country = 3;
    int max_cities_per_country = 400;
};

class PopulationGenerator {
public:
    /// `as_graph` must outlive the generator; peers are assigned into it.
    PopulationGenerator(const PopulationConfig& config, net::AsGraph& as_graph, Rng rng);

    /// Generates one peer spec.
    [[nodiscard]] PeerSpec next();

    /// Generates a location within a given country (used for mobility: the
    /// "alternate" places a peer moves between).
    [[nodiscard]] net::Location location_in(CountryId country);
    /// A nearby location: same country, within ~`radius_km` of `base`.
    [[nodiscard]] net::Location location_near(const net::Location& base, double radius_km);

    [[nodiscard]] net::NatType sample_nat();

    /// Draw a broadband profile for a country (asymmetric up/down).
    [[nodiscard]] std::pair<Rate, Rate> sample_bandwidth(CountryId country);

    [[nodiscard]] CountryId sample_country();

private:
    net::AsGraph* as_graph_;
    Rng rng_;
    PopulationConfig config_;
    std::vector<double> country_cum_;
    std::vector<std::vector<net::GeoPoint>> cities_;  // per country
};

}  // namespace netsession::workload
