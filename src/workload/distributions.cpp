#include "workload/distributions.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace netsession::workload {

ZipfSampler::ZipfSampler(std::size_t n, double alpha) {
    assert(n > 0);
    cumulative_.reserve(n);
    double acc = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        acc += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
        cumulative_.push_back(acc);
    }
}

std::size_t ZipfSampler::sample(Rng& rng) const {
    const double x = rng.uniform(0.0, cumulative_.back());
    const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), x);
    return std::min(static_cast<std::size_t>(it - cumulative_.begin()), cumulative_.size() - 1);
}

double ZipfSampler::pmf(std::size_t rank) const {
    assert(rank < cumulative_.size());
    const double lo = rank == 0 ? 0.0 : cumulative_[rank - 1];
    return (cumulative_[rank] - lo) / cumulative_.back();
}

double diurnal_intensity(double local_hour) {
    // Hourly residential-traffic shape (deep 04:00 trough, evening peak near
    // 20:00), linearly interpolated; mean ~1 over the day.
    static constexpr double kByHour[24] = {0.55, 0.45, 0.38, 0.33, 0.30, 0.32, 0.40, 0.55,
                                           0.72, 0.85, 0.95, 1.05, 1.15, 1.18, 1.20, 1.22,
                                           1.30, 1.45, 1.60, 1.75, 1.80, 1.70, 1.30, 0.85};
    double h = std::fmod(local_hour, 24.0);
    if (h < 0) h += 24.0;
    const int lo = static_cast<int>(h) % 24;
    const int hi = (lo + 1) % 24;
    const double frac = h - std::floor(h);
    return kByHour[lo] * (1.0 - frac) + kByHour[hi] * frac;
}

double diurnal_peak() {
    // Pure constant; computed once. The thinning sampler calls this inside
    // its rejection loop, which made the 240-point scan a top-five profile
    // entry at 40k peers before it was cached.
    static const double peak = [] {
        double p = 0.0;
        for (int i = 0; i < 240; ++i) p = std::max(p, diurnal_intensity(i / 10.0));
        return p;
    }();
    return peak;
}

}  // namespace netsession::workload
