// Dense roster of the currently-running clients.
//
// At 1M peers only a small fraction of the population is online at any
// moment (diurnal sessions), and everything the driver does per tick or per
// fault event — the clients_running gauge, mass-churn crash sweeps, flash
// crowds — concerns exactly that fraction. Scanning the full creation-order
// client array for `running()` made those O(population); this struct-of-
// arrays slab keeps the running set dense (swap-remove), so scans touch
// contiguous memory proportional to the *online* peers only.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace netsession::peer {
class NetSessionClient;
}

namespace netsession::workload {

class HotRoster {
public:
    /// Registers a user as running. No-op if already present.
    void add(std::uint32_t user, peer::NetSessionClient* client) {
        if (user >= index_of_.size()) index_of_.resize(user + 1, kAbsent);
        if (index_of_[user] != kAbsent) return;
        index_of_[user] = static_cast<std::uint32_t>(creation_.size());
        creation_.push_back(user);
        client_.push_back(client);
    }

    /// Removes a user (swap-remove; order within the slab is not preserved).
    void remove(std::uint32_t user) {
        if (user >= index_of_.size() || index_of_[user] == kAbsent) return;
        const std::uint32_t slot = index_of_[user];
        const auto last = static_cast<std::uint32_t>(creation_.size() - 1);
        if (slot != last) {
            creation_[slot] = creation_[last];
            client_[slot] = client_[last];
            index_of_[creation_[slot]] = slot;
        }
        creation_.pop_back();
        client_.pop_back();
        index_of_[user] = kAbsent;
    }

    [[nodiscard]] std::size_t size() const noexcept { return creation_.size(); }

    /// Visits every running client in creation (user-index) order. Fault
    /// sweeps draw RNG per visited client, so the visit order must be
    /// independent of the swap-remove history — identical to what a scan of
    /// the full creation-order array used to produce. Safe against add/remove
    /// from inside `fn` (iterates a snapshot).
    template <typename Fn>
    void for_each_in_creation_order(Fn&& fn) const {
        order_scratch_.clear();
        order_scratch_.reserve(creation_.size());
        for (std::uint32_t slot = 0; slot < creation_.size(); ++slot)
            order_scratch_.push_back((static_cast<std::uint64_t>(creation_[slot]) << 32) | slot);
        std::sort(order_scratch_.begin(), order_scratch_.end());
        for (const std::uint64_t packed : order_scratch_) {
            const auto slot = static_cast<std::uint32_t>(packed & 0xFFFFFFFFu);
            fn(static_cast<std::uint32_t>(packed >> 32), client_[slot]);
        }
    }

private:
    static constexpr std::uint32_t kAbsent = 0xFFFFFFFFu;

    // SoA columns, indexed by dense hot slot.
    std::vector<std::uint32_t> creation_;            ///< user (creation) index
    std::vector<peer::NetSessionClient*> client_;    ///< paired client pointer
    std::vector<std::uint32_t> index_of_;            ///< user index -> hot slot
    mutable std::vector<std::uint64_t> order_scratch_;  ///< reusable sort buffer
};

}  // namespace netsession::workload
