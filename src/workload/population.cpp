#include "workload/population.hpp"

#include <algorithm>
#include <cmath>

namespace netsession::workload {

PopulationGenerator::PopulationGenerator(const PopulationConfig& config, net::AsGraph& as_graph,
                                         Rng rng)
    : as_graph_(&as_graph), rng_(rng), config_(config) {
    const auto world = net::countries();
    double acc = 0.0;
    country_cum_.reserve(world.size());
    double max_weight = 0.0;
    for (const auto& c : world) max_weight = std::max(max_weight, c.peer_weight);
    cities_.resize(world.size());
    for (std::size_t i = 0; i < world.size(); ++i) {
        acc += world[i].peer_weight;
        country_cum_.push_back(acc);
        // City count scales with the country's share of the population.
        const int n = std::clamp(
            static_cast<int>(world[i].peer_weight / max_weight * config_.max_cities_per_country),
            config_.min_cities_per_country, config_.max_cities_per_country);
        auto& cities = cities_[i];
        cities.reserve(static_cast<std::size_t>(n));
        for (int k = 0; k < n; ++k) {
            // Cities scatter around the country centre; density concentrates
            // towards it (normal rather than uniform offsets).
            const double dlat = rng_.normal(0.0, world[i].spread_deg / 2.0);
            const double dlon = rng_.normal(0.0, world[i].spread_deg / 1.5);
            cities.push_back(net::GeoPoint{world[i].center.lat + dlat, world[i].center.lon + dlon});
        }
    }
}

CountryId PopulationGenerator::sample_country() {
    const double x = rng_.uniform(0.0, country_cum_.back());
    const auto it = std::lower_bound(country_cum_.begin(), country_cum_.end(), x);
    const auto idx = std::min(static_cast<std::size_t>(it - country_cum_.begin()),
                              country_cum_.size() - 1);
    return CountryId{static_cast<std::uint16_t>(idx)};
}

net::Location PopulationGenerator::location_in(CountryId country) {
    const auto& cities = cities_[country.value];
    const auto city = static_cast<std::uint32_t>(rng_.below(cities.size()));
    return net::Location{country, city, cities[city]};
}

net::Location PopulationGenerator::location_near(const net::Location& base, double radius_km) {
    // A synthetic "suburb" point near the base city (not in the city list —
    // location identity is (country, city), so keep the same city id and
    // jitter the coordinates only).
    const double dlat = rng_.normal(0.0, radius_km / 111.0 / 2.0);
    const double dlon = rng_.normal(0.0, radius_km / 111.0 / 2.0);
    net::Location out = base;
    out.point.lat += dlat;
    out.point.lon += dlon;
    return out;
}

net::NatType PopulationGenerator::sample_nat() {
    const auto& mix = net::default_nat_mix();
    double x = rng_.uniform();
    for (int i = 0; i < net::kNatTypeCount; ++i) {
        x -= mix[static_cast<std::size_t>(i)];
        if (x <= 0.0) return static_cast<net::NatType>(i);
    }
    return net::NatType::port_restricted;
}

std::pair<Rate, Rate> PopulationGenerator::sample_bandwidth(CountryId country) {
    const auto& bb = net::country(country).broadband;
    // Log-normal around the country median with the configured spread,
    // clamped to a plausible broadband range.
    const double mu = std::log(bb.down_mbps_median);
    const double down_mbps = std::clamp(rng_.lognormal(mu, bb.down_sigma), 0.25, 1000.0);
    // Asymmetry varies by user too (different products of one ISP).
    const double asym = std::max(1.0, bb.asymmetry * rng_.lognormal(0.0, 0.25));
    const double up_mbps = std::max(0.1, down_mbps / asym);
    return {mbps(up_mbps), mbps(down_mbps)};
}

PeerSpec PopulationGenerator::next() {
    PeerSpec spec;
    const CountryId country = sample_country();
    spec.location = location_in(country);
    spec.asn = as_graph_->pick_for_country(country, rng_);
    spec.nat = sample_nat();
    std::tie(spec.up, spec.down) = sample_bandwidth(country);
    return spec;
}

}  // namespace netsession::workload
