#include "workload/providers.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace netsession::workload {

namespace {
/// Table 2 rows (percent; '-' entries are zero), columns: US East, US West,
/// Americas other, India, China, Asia other, Europe, Africa, Oceania.
constexpr std::array<std::array<double, kRegionColumns>, 10> kTable2 = {{
    /* A */ {0, 0, 12, 6, 6, 18, 51, 4, 3},
    /* B */ {2, 1, 1, 11, 0, 61, 6, 17, 1},
    /* C */ {13, 6, 15, 1, 0, 8, 55, 1, 2},
    /* D */ {22, 21, 6, 0, 0, 3, 45, 0, 3},
    /* E */ {5, 3, 8, 2, 1, 29, 48, 2, 3},
    /* F */ {0, 0, 0, 0, 0, 0, 100, 0, 0},
    /* G */ {8, 3, 12, 2, 8, 20, 45, 2, 2},
    /* H */ {6, 4, 7, 4, 2, 20, 53, 2, 2},
    /* I */ {5, 2, 18, 0, 0, 15, 57, 1, 1},
    /* J */ {42, 24, 14, 0, 0, 5, 11, 1, 3},
}};

/// Table 4: fraction of each customer's peers with uploads enabled.
constexpr std::array<double, 10> kTable4 = {0.005, 0.20, 0.02, 0.94, 0.02,
                                            0.45,  0.47, 0.005, 0.91, 0.005};

/// Global download weight of each major customer (they are "the ten largest
/// content providers"); shaped so the weighted column sums resemble the
/// paper's "All customers" row and the overall upload-enabled share is ~31%.
constexpr std::array<double, 10> kWeights = {0.12, 0.08, 0.07, 0.14, 0.09,
                                             0.05, 0.15, 0.07, 0.11, 0.12};
}  // namespace

std::vector<ProviderProfile> default_providers(int tail) {
    std::vector<ProviderProfile> out;
    out.reserve(10 + static_cast<std::size_t>(tail));
    for (int i = 0; i < 10; ++i) {
        ProviderProfile p;
        p.code = CpCode{static_cast<std::uint32_t>(1000 + i)};
        p.name = std::string("Customer ") + static_cast<char>('A' + i);
        p.download_weight = kWeights[static_cast<std::size_t>(i)];
        for (int r = 0; r < kRegionColumns; ++r)
            p.region_mix[static_cast<std::size_t>(r)] =
                kTable2[static_cast<std::size_t>(i)][static_cast<std::size_t>(r)] / 100.0;
        p.default_uploads_enabled = kTable4[static_cast<std::size_t>(i)];
        // Big game/software publishers have bigger catalogs and more large
        // objects than download-manager-only customers.
        p.objects = 250 + 60 * i;
        p.fraction_large = (i == 3 || i == 6 || i == 8) ? 0.10 : 0.04;
        out.push_back(std::move(p));
    }
    // A tail of minor customers: mostly small content, uploads disabled,
    // globally uniform-ish popularity.
    Rng mix_rng(0x7A11);
    for (int i = 0; i < tail; ++i) {
        ProviderProfile p;
        p.code = CpCode{static_cast<std::uint32_t>(2000 + i)};
        p.name = "Minor customer " + std::to_string(i);
        p.download_weight = 0.012;
        for (auto& m : p.region_mix) m = 0.5 + mix_rng.uniform();  // mild regional texture
        p.default_uploads_enabled = mix_rng.chance(0.2) ? 0.6 : 0.01;
        p.objects = 120;
        p.fraction_large = 0.02;
        p.allow_p2p = mix_rng.chance(0.5);
        out.push_back(std::move(p));
    }
    return out;
}

CatalogBundle::CatalogBundle(std::vector<ProviderProfile> profiles, edge::Catalog& catalog,
                             Rng rng, std::uint32_t max_pieces)
    : profiles_(std::move(profiles)), catalog_(&catalog) {
    objects_.resize(profiles_.size());
    std::uint64_t next_url = 1;
    for (std::size_t p = 0; p < profiles_.size(); ++p) {
        const ProviderProfile& prof = profiles_[p];
        auto& ids = objects_[p];
        ids.reserve(static_cast<std::size_t>(prof.objects));
        for (int k = 0; k < prof.objects; ++k) {
            // Popularity rank == catalog index. Flagship releases (games, OS
            // images) are both large and popular, so the large-object
            // probability is strongly boosted for the top ranks — this is
            // what makes 1-2% of files carry >50% of the bytes (§5.1) and
            // what gives p2p-enabled objects real swarms.
            const double large_prob = k < 3    ? std::max(0.7, prof.fraction_large)
                                      : k < 12 ? std::max(0.3, prof.fraction_large)
                                               : prof.fraction_large;
            const bool large = rng.chance(large_prob);
            // Log-normal sizes around the class median; clamp to sane ranges.
            const double size_bytes =
                large ? std::clamp(rng.lognormal(std::log(prof.large_median_gb * 1e9), 0.6), 3e8,
                                   2e10)
                      : std::clamp(rng.lognormal(std::log(prof.small_median_mb * 1e6), 1.0), 3e5,
                                   2.9e8);
            const ObjectId id{rng.next(), rng.next()};
            swarm::ContentObject object(id, prof.code, next_url++,
                                        static_cast<Bytes>(size_bytes), max_pieces);
            edge::ObjectPolicy policy;
            policy.p2p_enabled = prof.allow_p2p && large && k < prof.p2p_rank_cutoff &&
                                 rng.chance(prof.p2p_fraction_large);
            catalog_->publish(std::move(object), policy);
            ids.push_back(id);
        }
        popularity_.emplace_back(static_cast<std::size_t>(prof.objects), prof.zipf_alpha);
    }

    // Per-region provider sampling tables: P(provider | region) ∝
    // download_weight x region_mix[region].
    for (int r = 0; r < kRegionColumns; ++r) {
        auto& cum = provider_cum_[static_cast<std::size_t>(r)];
        cum.reserve(profiles_.size());
        double acc = 0.0;
        for (const auto& prof : profiles_) {
            acc += prof.download_weight * std::max(1e-6, prof.region_mix[static_cast<std::size_t>(r)]);
            cum.push_back(acc);
        }
    }
}

std::size_t CatalogBundle::sample_provider_index(int region, Rng& rng) const {
    assert(region >= 0 && region < kRegionColumns);
    const auto& cum = provider_cum_[static_cast<std::size_t>(region)];
    const double x = rng.uniform(0.0, cum.back());
    const auto it = std::lower_bound(cum.begin(), cum.end(), x);
    return std::min(static_cast<std::size_t>(it - cum.begin()), cum.size() - 1);
}

ObjectId CatalogBundle::sample_object(int region, Rng& rng) const {
    return sample_object_of(sample_provider_index(region, rng), rng);
}

ObjectId CatalogBundle::sample_object_of(std::size_t provider_index, Rng& rng) const {
    assert(provider_index < objects_.size());
    const std::size_t rank = popularity_[provider_index].sample(rng);
    return objects_[provider_index][rank];
}

const ProviderProfile& CatalogBundle::sample_install_provider(int region, Rng& rng) const {
    return profiles_[sample_provider_index(region, rng)];
}

}  // namespace netsession::workload
