// The user-behaviour model: sessions, download requests, pauses/aborts,
// setting toggles, mobility, user traffic, and install-state anomalies
// (clone / re-image / rollback). Drives a population of NetSessionClients
// through a measurement window and is the knob box every Table/Figure
// behaviour traces back to (see DESIGN.md §3).
#pragma once

#include <memory>
#include <vector>

#include "peer/netsession_client.hpp"
#include "workload/hot_roster.hpp"
#include "workload/population.hpp"
#include "workload/providers.hpp"

namespace netsession::workload {

struct BehaviorConfig {
    /// Measurement window (the paper's trace covers October 2012).
    sim::Duration window = sim::days(30.0);
    /// Warm-up before the window: the system runs and swarms form, then the
    /// trace is cleared. NetSession had been operating for five years when
    /// the paper's data was collected.
    sim::Duration warmup = sim::days(10.0);

    // Sessions: the NetSession Interface runs whenever the user is logged in
    // (§3.4); sessions follow a diurnal pattern in the peer's local time.
    double sessions_per_day = 1.4;
    double session_hours_median = 4.0;
    double session_hours_sigma = 0.9;
    /// Fraction of machines that stay logged in nearly around the clock
    /// (office desktops, always-on home machines). NetSession runs as a
    /// persistent background application whenever the user is logged in
    /// (§3.4), so these peers dominate instantaneous upload capacity.
    double frac_always_on = 0.25;
    double always_on_hours_median = 18.0;

    // Download demand.
    double downloads_per_peer_per_month = 2.5;
    /// Probability a download request goes to the user's install provider
    /// (brand affinity; sharpens Table 4's per-customer separation).
    double provider_loyalty = 0.85;
    /// Probability a paused download is resumed at the next session.
    double resume_probability = 0.8;

    // Abort model (§5.2/Fig 7): users give up on downloads that outlast
    // their patience, so long (large) downloads are terminated more often.
    double patience_median_s = 21600.0;
    double patience_sigma = 1.5;
    double immediate_abort_prob = 0.025;  // user changes mind right away
    double disk_full_prob = 0.004;        // "other" failure causes
    /// Fraction of peers whose cached data is silently corrupt; their
    /// uploads drive the "too many corrupted content blocks" failures
    /// (§5.2: 0.1% infra vs 0.2% p2p system-related failures).
    double corruptor_fraction = 0.0012;
    /// Baseline system-failure probability affecting any download.
    double system_failure_prob = 0.001;

    // Upload-setting toggles (Table 3): almost nobody changes the default.
    double toggle_prob_initially_disabled = 0.0004;
    double toggle_prob_initially_enabled = 0.019;
    double second_toggle_fraction = 0.05;

    /// Probability that a session starts on a fresh DHCP lease (new IP,
    /// same AS and location). Drives Table 1's 5.15 IPs per GUID.
    double dhcp_churn_prob = 0.1;

    // Mobility mix (§6.2); remainder of the population is stationary.
    double frac_dual_near = 0.03;   // second location <10 km, different AS
    double frac_dual_far = 0.14;    // second location far away, different AS
    double frac_traveler = 0.05;    // roams across countries / VPN exits
    double traveler_move_prob = 0.3;

    // Install-state anomalies (Fig 12). Fractions are shaped so trees are
    // ~0.6% of GUID graphs with the paper's pattern mix.
    double frac_update_failure = 0.0028;   // one-vertex rollback   (46% of trees)
    double frac_restored_backup = 0.0004;  // deep rollback         (6%)
    double frac_reimaged = 0.0014;         // golden-image restores (24%)
    double frac_irregular = 0.0014;        // config-file tampering (24%)

    // The user's own traffic (uploads back off, §3.9).
    double user_traffic_episodes_per_session = 0.6;
    double user_traffic_minutes = 40.0;

    // Compromised peers inflating their usage reports (§6.2 / [1]).
    double attacker_fraction = 0.0;
    double attacker_inflation = 5.0;
};

/// Owns the peer population and drives it through the window.
class UserDriver {
public:
    UserDriver(net::World& world, control::ControlPlane& plane, edge::EdgeNetwork& edges,
               const CatalogBundle& bundle, PopulationGenerator& population,
               peer::PeerRegistry& registry, BehaviorConfig behavior, peer::ClientConfig base,
               Rng rng);

    /// Creates `n` users and schedules their behaviour across the window.
    void create_users(int n);

    /// Runs the simulator to the end of the window and flushes unfinished
    /// downloads into the trace.
    void run();

    // --- fault hooks (driven by fault::FaultEngine) -------------------------
    /// Abruptly crashes each currently-running client with probability
    /// `fraction` (mass churn; no goodbyes — remote watchdogs must notice).
    /// Deterministic given `rng`; returns how many clients crashed.
    int crash_peers(double fraction, Rng& rng);
    /// Flash crowd: a `fraction` of the running clients request the same
    /// object within the next minute. Returns how many launches were queued.
    int flash_crowd(double fraction, Rng& rng);

    [[nodiscard]] std::vector<std::unique_ptr<peer::NetSessionClient>>& clients() noexcept {
        return clients_;
    }
    [[nodiscard]] std::int64_t downloads_requested() const noexcept { return downloads_requested_; }
    [[nodiscard]] std::int64_t downloads_finished() const noexcept { return downloads_finished_; }
    [[nodiscard]] std::int64_t sessions_started() const noexcept { return sessions_started_; }

    /// Registers the population-wide client metrics block (shared by every
    /// client this driver creates) plus driver-level behaviour gauges.
    void register_metrics(obs::Registry& registry);
    [[nodiscard]] peer::ClientMetrics& client_metrics() noexcept { return client_metrics_; }

    /// Maps a country to the paper's nine-column report region (used for
    /// provider affinity).
    [[nodiscard]] static int region_column(CountryId country);

private:
    enum class Mobility : std::uint8_t { stationary, dual_near, dual_far, traveler };
    enum class Anomaly : std::uint8_t { none, update_failure, restored_backup, reimaged, irregular };

    struct User {
        peer::NetSessionClient* client = nullptr;
        PeerSpec home;
        net::Location alt_location;
        Asn alt_asn{};
        Mobility mobility = Mobility::stationary;
        Anomaly anomaly = Anomaly::none;
        int region = 6;  // report-region column
        std::size_t preferred_provider = 0;
        bool always_on = false;
        Rng rng{0};
        int sessions = 0;
        bool at_alt = false;
        // Anomaly machinery.
        bool have_snapshot = false;
        peer::NetSessionClient::InstallState saved{};
        int anomaly_phase = 0;
        int anomaly_marker = 0;  // session count when the snapshot was taken
    };

    [[nodiscard]] double local_hour(const net::GeoPoint& p) const;
    [[nodiscard]] sim::SimTime next_session_time(User& u) const;
    void schedule_session(std::size_t idx);
    void start_session(std::size_t idx);
    void end_session(std::size_t idx);
    void launch_download(std::size_t idx);
    void apply_mobility(User& u);
    void apply_anomaly_pre(User& u);
    void apply_anomaly_post(User& u);

    net::World* world_;
    control::ControlPlane* plane_;
    edge::EdgeNetwork* edges_;
    const CatalogBundle* bundle_;
    PopulationGenerator* population_;
    peer::PeerRegistry* registry_;
    BehaviorConfig behavior_;
    peer::ClientConfig base_config_;
    Rng rng_;
    std::vector<std::unique_ptr<peer::NetSessionClient>> clients_;
    std::vector<User> users_;
    /// Dense SoA roster of the currently-running clients; the full clients_
    /// array is cold storage the per-tick/fault paths never scan.
    HotRoster roster_;
    std::int64_t downloads_requested_ = 0;
    std::int64_t downloads_finished_ = 0;
    std::int64_t sessions_started_ = 0;
    peer::ClientMetrics client_metrics_;
};

}  // namespace netsession::workload
