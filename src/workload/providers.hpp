// Content-provider profiles and catalog generation.
//
// Ten major customers (A..J) shaped to the paper's Table 2 (regional
// download mix) and Table 4 (fraction of peers with uploads enabled — the
// dominant factor is which default the provider's bundled binary ships
// with). NetSession's typical use case is the distribution of software
// installers, biased to large objects for p2p-enabled content (§4.4).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "edge/catalog.hpp"
#include "workload/distributions.hpp"

namespace netsession::workload {

/// The paper's nine report-region columns (same order as
/// analysis::ReportRegion; duplicated here to keep workload independent of
/// the analysis library).
inline constexpr int kRegionColumns = 9;

struct ProviderProfile {
    CpCode code;
    std::string name;
    /// Global share of downloads attributable to this provider.
    double download_weight = 0.1;
    /// Regional popularity (Table 2 row), columns: US East, US West,
    /// Americas other, India, China, Asia other, Europe, Africa, Oceania.
    std::array<double, kRegionColumns> region_mix{};
    /// Probability the bundled binary ships with uploads enabled (Table 4).
    double default_uploads_enabled = 0.0;
    /// Catalog shape.
    int objects = 400;
    double fraction_large = 0.05;   // large installers (GB scale)
    double small_median_mb = 35.0;  // log-normal median of small objects
    double large_median_gb = 1.5;
    double zipf_alpha = 1.1;        // within-provider popularity skew
    bool allow_p2p = true;
    double p2p_fraction_large = 0.9;  // §4.4: providers enable p2p on large files
    /// Providers enable p2p on the large objects they expect heavy demand
    /// for (their flagship releases) — only ranks below this cutoff qualify.
    int p2p_rank_cutoff = 16;
};

/// The ten named customers of Tables 2/4 plus `tail` minor providers.
[[nodiscard]] std::vector<ProviderProfile> default_providers(int tail = 10);

/// A generated catalog plus the sampling machinery the user model draws
/// download requests from.
class CatalogBundle {
public:
    /// Publishes every provider's objects into `catalog` (which must outlive
    /// the bundle). `max_pieces` bounds per-object piece counts (see
    /// DESIGN.md §4.3).
    CatalogBundle(std::vector<ProviderProfile> profiles, edge::Catalog& catalog, Rng rng,
                  std::uint32_t max_pieces = 64);

    /// Draws a download request for a user in report-region column `region`:
    /// provider by weight x regional affinity, object by Zipf popularity.
    [[nodiscard]] ObjectId sample_object(int region, Rng& rng) const;

    /// Draws an object from one specific provider (index into profiles()).
    [[nodiscard]] ObjectId sample_object_of(std::size_t provider_index, Rng& rng) const;

    /// Index of the provider a fresh install in `region` came from.
    [[nodiscard]] std::size_t sample_install_provider_index(int region, Rng& rng) const {
        return sample_provider_index(region, rng);
    }

    [[nodiscard]] const std::vector<ProviderProfile>& profiles() const noexcept {
        return profiles_;
    }
    [[nodiscard]] const std::vector<std::vector<ObjectId>>& objects() const noexcept {
        return objects_;
    }
    [[nodiscard]] const edge::Catalog& catalog() const noexcept { return *catalog_; }

    /// The provider profile that a fresh install in `region` most likely
    /// came from (used to attribute the binary's default upload setting):
    /// sampled with the same regional affinity as downloads.
    [[nodiscard]] const ProviderProfile& sample_install_provider(int region, Rng& rng) const;

private:
    [[nodiscard]] std::size_t sample_provider_index(int region, Rng& rng) const;

    std::vector<ProviderProfile> profiles_;
    edge::Catalog* catalog_;
    std::vector<std::vector<ObjectId>> objects_;
    std::vector<ZipfSampler> popularity_;
    /// Per region column: cumulative provider weights.
    std::array<std::vector<double>, kRegionColumns> provider_cum_;
};

}  // namespace netsession::workload
