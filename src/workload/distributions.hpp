// Workload distributions: Zipf popularity (Fig 3b's "nearly ubiquitous power
// law") and the diurnal activity pattern (Fig 3c).
#pragma once

#include <vector>

#include "common/rng.hpp"

namespace netsession::workload {

/// Samples ranks 0..n-1 with P(rank k) ∝ 1/(k+1)^alpha.
class ZipfSampler {
public:
    ZipfSampler(std::size_t n, double alpha);

    [[nodiscard]] std::size_t sample(Rng& rng) const;
    [[nodiscard]] std::size_t size() const noexcept { return cumulative_.size(); }
    /// Probability mass of one rank.
    [[nodiscard]] double pmf(std::size_t rank) const;

private:
    std::vector<double> cumulative_;
};

/// Relative activity intensity at a local hour of day, normalised to mean 1
/// over 24h: low at night, ramping through the day, peaking in the evening
/// (the usual residential traffic shape).
[[nodiscard]] double diurnal_intensity(double local_hour);

/// The maximum of diurnal_intensity over the day (for thinning samplers).
[[nodiscard]] double diurnal_peak();

}  // namespace netsession::workload
