#include "workload/behavior.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace netsession::workload {

UserDriver::UserDriver(net::World& world, control::ControlPlane& plane, edge::EdgeNetwork& edges,
                       const CatalogBundle& bundle, PopulationGenerator& population,
                       peer::PeerRegistry& registry, BehaviorConfig behavior,
                       peer::ClientConfig base, Rng rng)
    : world_(&world),
      plane_(&plane),
      edges_(&edges),
      bundle_(&bundle),
      population_(&population),
      registry_(&registry),
      behavior_(behavior),
      base_config_(base),
      rng_(rng) {
    // Escape hatch for the differential determinism suite: a build that never
    // demotes clients to the ColdStore must produce byte-identical traces.
    if (std::getenv("NS_NO_HIBERNATE") != nullptr) base_config_.hibernate_offline = false;
}

int UserDriver::region_column(CountryId country) {
    const net::CountryInfo& c = net::country(country);
    if (c.alpha2 == "US")
        return net::region(c.region).name == std::string_view("US-West") ? 1 : 0;
    if (c.alpha2 == "IN") return 3;
    if (c.alpha2 == "CN") return 4;
    switch (c.continent) {
        case net::Continent::north_america:
        case net::Continent::south_america: return 2;
        case net::Continent::asia: return 5;
        case net::Continent::europe: return 6;
        case net::Continent::africa: return 7;
        case net::Continent::oceania: return 8;
    }
    return 6;
}

void UserDriver::create_users(int n) {
    users_.reserve(users_.size() + static_cast<std::size_t>(n));
    clients_.reserve(clients_.size() + static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        User u;
        u.home = population_->next();
        u.rng = rng_.child("user-" + std::to_string(users_.size()));
        u.region = region_column(u.home.location.country);
        u.preferred_provider = bundle_->sample_install_provider_index(u.region, u.rng);
        u.always_on = u.rng.chance(behavior_.frac_always_on);

        // Mobility class.
        const double m = u.rng.uniform();
        // Dual-homed users attach through a *different* provider at the
        // second location; with the heavy-tailed AS sizes a fresh draw often
        // lands on the same dominant AS, so re-draw a few times.
        const auto different_asn = [&](Asn home) {
            Asn alt = home;
            for (int tries = 0; tries < 8 && alt == home; ++tries)
                alt = world_->as_graph().pick_for_country(u.home.location.country, u.rng);
            return alt;
        };
        if (m < behavior_.frac_dual_near) {
            u.mobility = Mobility::dual_near;
            u.alt_location = population_->location_near(u.home.location, 6.0);
            u.alt_asn = different_asn(u.home.asn);
        } else if (m < behavior_.frac_dual_near + behavior_.frac_dual_far) {
            u.mobility = Mobility::dual_far;
            u.alt_location = population_->location_in(u.home.location.country);
            u.alt_asn = different_asn(u.home.asn);
        } else if (m < behavior_.frac_dual_near + behavior_.frac_dual_far +
                           behavior_.frac_traveler) {
            u.mobility = Mobility::traveler;
        }

        // Install-state anomaly class.
        const double a = u.rng.uniform();
        if (a < behavior_.frac_update_failure)
            u.anomaly = Anomaly::update_failure;
        else if (a < behavior_.frac_update_failure + behavior_.frac_restored_backup)
            u.anomaly = Anomaly::restored_backup;
        else if (a < behavior_.frac_update_failure + behavior_.frac_restored_backup +
                         behavior_.frac_reimaged)
            u.anomaly = Anomaly::reimaged;
        else if (a < behavior_.frac_update_failure + behavior_.frac_restored_backup +
                         behavior_.frac_reimaged + behavior_.frac_irregular)
            u.anomaly = Anomaly::irregular;

        // Host + client.
        net::HostInfo info;
        info.attach.location = u.home.location;
        info.attach.asn = u.home.asn;
        info.attach.nat = u.home.nat;
        info.up = u.home.up;
        info.down = u.home.down;
        const HostId host = world_->create_host(info);

        peer::ClientConfig cfg = base_config_;
        cfg.uploads_enabled = u.rng.chance(
            bundle_->profiles()[u.preferred_provider].default_uploads_enabled);
        const Guid guid{u.rng.next(), u.rng.next()};
        auto client = std::make_unique<peer::NetSessionClient>(
            *world_, *plane_, *edges_, bundle_->catalog(), *registry_, guid, host, cfg,
            u.rng.child("client"));
        client->set_metrics(&client_metrics_);
        u.client = client.get();

        if (u.rng.chance(behavior_.corruptor_fraction)) u.client->set_corrupt_uploads(true);

        // Accounting attackers inflate the infrastructure byte counts in
        // their reports (to distort the provider's bill).
        if (behavior_.attacker_fraction > 0 && u.rng.chance(behavior_.attacker_fraction)) {
            const double inflation = behavior_.attacker_inflation;
            u.client->set_report_tamper([inflation](trace::DownloadRecord& r) {
                r.bytes_from_infrastructure = static_cast<Bytes>(
                    static_cast<double>(r.bytes_from_infrastructure + 1) * inflation);
            });
        }

        // Upload-setting toggles, scheduled independently of sessions.
        const bool initially_enabled = cfg.uploads_enabled;
        const double toggle_prob = initially_enabled ? behavior_.toggle_prob_initially_enabled
                                                     : behavior_.toggle_prob_initially_disabled;
        if (u.rng.chance(toggle_prob)) {
            peer::NetSessionClient* cl = u.client;
            // Toggles land inside the measurement window so Table 3 sees
            // them between logins.
            const auto t1 = behavior_.warmup +
                            sim::seconds(u.rng.uniform(0.1, 0.9) * behavior_.window.seconds());
            // schedule_for_at pins the toggle to the client's own shard so it
            // serialises with the client's session events (no-op at shards=1).
            world_->schedule_for_at(host, sim::SimTime{} + t1, [cl, initially_enabled] {
                cl->set_uploads_enabled(!initially_enabled);
            });
            if (u.rng.chance(behavior_.second_toggle_fraction)) {
                const auto t2 = t1 + sim::seconds(u.rng.uniform(0.05, 0.1) *
                                                  behavior_.window.seconds());
                world_->schedule_for_at(host, sim::SimTime{} + t2, [cl, initially_enabled] {
                    cl->set_uploads_enabled(initially_enabled);
                });
            }
        }

        clients_.push_back(std::move(client));
        users_.push_back(std::move(u));
        schedule_session(users_.size() - 1);
    }
}

double UserDriver::local_hour(const net::GeoPoint& p) const {
    const double gmt_h = world_->simulator().now().hours();
    const double offset = std::round(p.lon / 15.0);
    double h = std::fmod(gmt_h + offset, 24.0);
    if (h < 0) h += 24.0;
    return h;
}

sim::SimTime UserDriver::next_session_time(User& u) const {
    // Thinned inhomogeneous Poisson process with diurnal intensity in the
    // user's local time.
    const double lambda_max =
        behavior_.sessions_per_day / 24.0 / 3600.0 * diurnal_peak();  // per second
    double t = world_->simulator().now().seconds();
    for (int guard = 0; guard < 10000; ++guard) {
        t += u.rng.exponential(1.0 / lambda_max);
        const double gmt_h = t / 3600.0;
        const double offset = std::round(u.home.location.point.lon / 15.0);
        double lh = std::fmod(gmt_h + offset, 24.0);
        if (lh < 0) lh += 24.0;
        if (u.rng.uniform() * diurnal_peak() <= diurnal_intensity(lh))
            return sim::SimTime{static_cast<std::int64_t>(t * 1e6)};
    }
    return sim::SimTime{static_cast<std::int64_t>(t * 1e6)};
}

void UserDriver::schedule_session(std::size_t idx) {
    User& u = users_[idx];
    const sim::SimTime at = next_session_time(u);
    if (at.us >= (behavior_.warmup + behavior_.window).us) return;  // beyond the window
    // Session events run in the user's own shard; every schedule_after made
    // from inside a session event then inherits that lane automatically.
    world_->schedule_for_at(u.client->host(), at, [this, idx] { start_session(idx); });
}

void UserDriver::start_session(std::size_t idx) {
    User& u = users_[idx];
    if (u.client->running()) {  // overlapping schedule; just extend usage
        schedule_session(idx);
        return;
    }
    ++sessions_started_;
    ++u.sessions;
    apply_mobility(u);
    apply_anomaly_pre(u);
    u.client->start();
    roster_.add(static_cast<std::uint32_t>(idx), u.client);

    // Session length.
    const double median =
        u.always_on ? behavior_.always_on_hours_median : behavior_.session_hours_median;
    const double hours =
        std::clamp(u.rng.lognormal(std::log(median), behavior_.session_hours_sigma), 0.05, 72.0);
    world_->simulator().schedule_after(sim::hours(hours), [this, idx] { end_session(idx); });

    // Resume paused downloads (the DLM lets users continue, §3.3).
    for (const auto object : u.client->paused_downloads())
        if (u.rng.chance(behavior_.resume_probability)) u.client->resume_download(object);

    // Download demand this session.
    const double sessions_per_month = behavior_.sessions_per_day * 30.0;
    const double p = behavior_.downloads_per_peer_per_month / sessions_per_month;
    int launches = static_cast<int>(p);
    if (u.rng.chance(p - static_cast<double>(launches))) ++launches;
    for (int i = 0; i < launches; ++i) {
        const double at_h = u.rng.uniform() * hours * 0.8;
        world_->simulator().schedule_after(sim::hours(at_h), [this, idx] { launch_download(idx); });
    }

    // User-traffic episodes throttle uploads (§3.9).
    if (u.rng.chance(behavior_.user_traffic_episodes_per_session)) {
        const double at_h = u.rng.uniform() * hours;
        peer::NetSessionClient* cl = u.client;
        world_->simulator().schedule_after(sim::hours(at_h), [this, cl] {
            cl->set_user_traffic(true);
            world_->simulator().schedule_after(sim::minutes(behavior_.user_traffic_minutes),
                                               [cl] { cl->set_user_traffic(false); });
        });
    }
}

void UserDriver::end_session(std::size_t idx) {
    User& u = users_[idx];
    u.client->stop();
    roster_.remove(static_cast<std::uint32_t>(idx));
    // Anomalies snapshot/scramble install state while it is still resident;
    // only then is the now-offline client demoted to the ColdStore.
    apply_anomaly_post(u);
    u.client->hibernate();
    schedule_session(idx);
}

void UserDriver::launch_download(std::size_t idx) {
    User& u = users_[idx];
    if (!u.client->running()) return;  // session ended before the launch fired

    const ObjectId object = u.rng.chance(behavior_.provider_loyalty)
                                ? bundle_->sample_object_of(u.preferred_provider, u.rng)
                                : bundle_->sample_object(u.region, u.rng);
    if (u.client->download_active(object)) return;
    ++downloads_requested_;

    peer::NetSessionClient* cl = u.client;
    auto done = std::make_shared<bool>(false);
    cl->begin_download(object, [this, done](const trace::DownloadRecord&) {
        *done = true;
        ++downloads_finished_;
    });

    // The user's patience: if the download outlasts it, they terminate it —
    // which is why large files are aborted more often (Fig 7).
    const double patience_s = std::clamp(
        u.rng.lognormal(std::log(behavior_.patience_median_s), behavior_.patience_sigma), 30.0,
        30.0 * 86400.0);
    world_->simulator().schedule_after(sim::seconds(patience_s), [cl, object, done] {
        if (*done) return;
        cl->abort_download(object, trace::DownloadOutcome::aborted_by_user);
    });

    // Some users change their mind almost immediately.
    if (u.rng.chance(behavior_.immediate_abort_prob)) {
        const double at_s = u.rng.uniform(10.0, 120.0);
        world_->simulator().schedule_after(sim::seconds(at_s), [cl, object, done] {
            if (*done) return;
            cl->abort_download(object, trace::DownloadOutcome::aborted_by_user);
        });
    }
    // And some downloads die of non-system causes (disk full, ...).
    if (u.rng.chance(behavior_.disk_full_prob)) {
        const double at_s = u.rng.uniform(30.0, 900.0);
        world_->simulator().schedule_after(sim::seconds(at_s), [cl, object, done] {
            if (*done) return;
            cl->abort_download(object, trace::DownloadOutcome::failed_other);
        });
    }
    // Baseline system failures not tied to corrupt swarm data.
    if (u.rng.chance(behavior_.system_failure_prob)) {
        const double at_s = u.rng.uniform(30.0, 1800.0);
        world_->simulator().schedule_after(sim::seconds(at_s), [cl, object, done] {
            if (*done) return;
            cl->abort_download(object, trace::DownloadOutcome::failed_system);
        });
    }
}

void UserDriver::apply_mobility(User& u) {
    // Home routers renew DHCP leases; the peer comes up on a fresh IP in
    // the same network (the paper sees 5.15 distinct IPs per GUID).
    const bool dhcp = u.rng.chance(behavior_.dhcp_churn_prob);
    switch (u.mobility) {
        case Mobility::stationary:
            if (dhcp) u.client->move_to(u.home.location, u.home.asn, u.home.nat);
            return;
        case Mobility::dual_near:
        case Mobility::dual_far: {
            const bool go_alt = u.rng.chance(0.45);
            if (go_alt == u.at_alt) {
                if (dhcp)
                    u.client->move_to(u.at_alt ? u.alt_location : u.home.location,
                                      u.at_alt ? u.alt_asn : u.home.asn, u.home.nat);
                return;
            }
            u.at_alt = go_alt;
            if (go_alt)
                u.client->move_to(u.alt_location, u.alt_asn, u.home.nat);
            else
                u.client->move_to(u.home.location, u.home.asn, u.home.nat);
            return;
        }
        case Mobility::traveler: {
            if (u.rng.chance(behavior_.traveler_move_prob)) {
                const CountryId country = population_->sample_country();
                const net::Location loc = population_->location_in(country);
                const Asn asn = world_->as_graph().pick_for_country(country, u.rng);
                u.client->move_to(loc, asn, u.home.nat);
                u.at_alt = true;
            } else if (u.at_alt) {
                u.client->move_to(u.home.location, u.home.asn, u.home.nat);
                u.at_alt = false;
            }
            return;
        }
    }
}

void UserDriver::apply_anomaly_pre(User& u) {
    if (u.anomaly == Anomaly::reimaged && u.have_snapshot) {
        // Internet-cafe machine: restored to the golden image every time.
        u.client->restore_state(u.saved);
    }
}

void UserDriver::apply_anomaly_post(User& u) {
    // Rollbacks and tampering must happen *inside* the measurement window —
    // the warm-up trace is discarded, and a branch whose edges were only
    // ever reported during warm-up is invisible to the Fig 12 analysis
    // (exactly as a pre-trace rollback would be invisible to the paper).
    const bool in_window = world_->simulator().now() >= sim::SimTime{} + behavior_.warmup;
    switch (u.anomaly) {
        case Anomaly::none:
            return;
        case Anomaly::reimaged:
            // The golden image is made early; every later session is rolled
            // back to it (branches keep forming all through the window).
            if (!u.have_snapshot && u.sessions >= 1) {
                u.saved = u.client->snapshot_state();
                u.have_snapshot = true;
            }
            return;
        case Anomaly::update_failure:
            // Snapshot after a session in the window, roll back right after
            // the next one: the lost session's secondary GUID becomes a
            // one-vertex branch.
            if (u.anomaly_phase == 0 && in_window && u.sessions >= 2) {
                u.saved = u.client->snapshot_state();
                u.have_snapshot = true;
                u.anomaly_phase = 1;
            } else if (u.anomaly_phase == 1) {
                u.client->restore_state(u.saved);
                u.anomaly_phase = 2;  // done
            }
            return;
        case Anomaly::restored_backup:
            // Deep rollback: restore a snapshot several sessions old.
            if (u.anomaly_phase == 0 && in_window && u.sessions >= 2) {
                u.saved = u.client->snapshot_state();
                u.have_snapshot = true;
                u.anomaly_phase = 1;
                u.anomaly_marker = u.sessions;
            } else if (u.anomaly_phase == 1 && u.sessions >= u.anomaly_marker + 4) {
                u.client->restore_state(u.saved);
                u.anomaly_phase = 2;
            }
            return;
        case Anomaly::irregular:
            // "we have seen users experiment with manually modifying data in
            // configuration files" (§6.2) — repeatedly scramble the recent
            // chain, so successive login reports contradict each other.
            if (in_window && u.anomaly_phase < 3 && u.sessions >= 2) {
                auto state = u.client->snapshot_state();
                if (state.chain.size() >= 3) {
                    const std::size_t window =
                        std::min<std::size_t>(5, state.chain.size());
                    const std::size_t base = state.chain.size() - window;
                    const std::size_t i = base + u.rng.below(window);
                    const std::size_t j = base + u.rng.below(window);
                    std::swap(state.chain[i], state.chain[j]);
                    u.client->restore_state(std::move(state));
                    ++u.anomaly_phase;
                }
            }
            return;
    }
}

int UserDriver::crash_peers(double fraction, Rng& rng) {
    // Deterministic: the roster is visited in creation order (matching the
    // old full-array scan, which only drew for running clients) and the
    // draws come from the fault engine's dedicated stream.
    int crashed = 0;
    roster_.for_each_in_creation_order([&](std::uint32_t user, peer::NetSessionClient* client) {
        if (!rng.chance(fraction)) return;
        client->crash();
        roster_.remove(user);
        client->hibernate();
        ++crashed;
    });
    return crashed;
}

int UserDriver::flash_crowd(double fraction, Rng& rng) {
    // Everyone wants the same object at once (breaking news, patch release).
    const ObjectId object = bundle_->sample_object(/*region=*/6, rng);
    int launched = 0;
    roster_.for_each_in_creation_order([&](std::uint32_t, peer::NetSessionClient* cl) {
        if (!rng.chance(fraction)) return;
        if (cl->download_active(object)) return;
        ++launched;
        const double at_s = rng.uniform(0.0, 60.0);
        // Mass events fan out from the fault engine's lane; the per-client
        // launch must run in the client's shard.
        world_->schedule_for(cl->host(), sim::seconds(at_s), [this, cl, object] {
            if (!cl->running() || cl->download_active(object)) return;
            ++downloads_requested_;
            cl->begin_download(object,
                               [this](const trace::DownloadRecord&) { ++downloads_finished_; });
        });
    });
    return launched;
}

void UserDriver::register_metrics(obs::Registry& registry) {
    client_metrics_.register_with(registry);
    registry.add_computed("driver.downloads_requested",
                          [this] { return static_cast<double>(downloads_requested_); });
    registry.add_computed("driver.downloads_finished",
                          [this] { return static_cast<double>(downloads_finished_); });
    registry.add_computed("driver.sessions_started",
                          [this] { return static_cast<double>(sessions_started_); });
    registry.add_computed("driver.clients_running",
                          [this] { return static_cast<double>(roster_.size()); });
}

void UserDriver::run() {
    auto& simulator = world_->simulator();
    if (behavior_.warmup.us > 0) {
        // Let swarms form, then discard the warm-up trace: the measurement
        // window observes a system in steady state, like the paper's.
        simulator.run_until(sim::SimTime{} + behavior_.warmup);
        plane_->trace_log().clear();
    }
    simulator.run_until(sim::SimTime{} + behavior_.warmup + behavior_.window);
    for (auto& client : clients_) client->flush_unfinished();
}

}  // namespace netsession::workload
