// Pure peer-to-peer CDN baseline: a BitTorrent-style swarm with a central
// tracker, rarest-first piece selection, and tit-for-tat choking — the
// architecture NetSession is contrasted with throughout the paper (§2.1:
// "BitTorrent is an example of a peer-to-peer CDN"; §3.4: "A key difference
// to BitTorrent is the absence of an incentive mechanism").
//
// Used by the architecture-ablation bench and the incentive experiments: no
// edge backstop, no coordinated NAT traversal, reciprocation drives service.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "net/world.hpp"
#include "swarm/content.hpp"
#include "swarm/picker.hpp"

namespace netsession::baseline {

struct TorrentConfig {
    int unchoke_slots = 3;        // reciprocation unchokes per choke round
    int optimistic_slots = 1;     // optimistic unchoke (lets newcomers bootstrap)
    double choke_interval_s = 10.0;
    int max_connections = 20;
    /// Peers that finish and immediately leave instead of seeding.
    double selfish_leave_probability = 0.5;
    /// NAT traversal succeeds less often without control-plane coordination.
    double uncoordinated_nat_penalty = 0.6;
};

class TorrentPeer;

/// One content swarm: tracker + peers.
class Swarm {
public:
    Swarm(net::World& world, const swarm::ContentObject& object, TorrentConfig config, Rng rng);
    ~Swarm();

    Swarm(const Swarm&) = delete;
    Swarm& operator=(const Swarm&) = delete;

    /// Adds a peer. Seeds start with the complete object. Leechers start
    /// downloading immediately. `on_complete` fires when the last piece
    /// verifies.
    TorrentPeer& add_peer(HostId host, bool seed,
                          std::function<void(TorrentPeer&)> on_complete = {});

    /// Removes a peer (it departs the swarm; transfers it served break off).
    void remove_peer(TorrentPeer& peer);

    /// Tracker announce: a random subset of other swarm members.
    [[nodiscard]] std::vector<TorrentPeer*> announce(TorrentPeer& who, int want);

    [[nodiscard]] const swarm::ContentObject& object() const noexcept { return *object_; }
    [[nodiscard]] net::World& world() noexcept { return *world_; }
    [[nodiscard]] const TorrentConfig& config() const noexcept { return config_; }
    [[nodiscard]] Rng& rng() noexcept { return rng_; }

    [[nodiscard]] std::size_t peer_count() const noexcept { return peers_.size(); }
    [[nodiscard]] int seeds() const;

private:
    net::World* world_;
    const swarm::ContentObject* object_;
    TorrentConfig config_;
    Rng rng_;
    std::vector<std::unique_ptr<TorrentPeer>> peers_;
};

/// One BitTorrent-style client in a swarm.
class TorrentPeer {
public:
    TorrentPeer(Swarm& swarm, HostId host, bool seed,
                std::function<void(TorrentPeer&)> on_complete);
    ~TorrentPeer();

    [[nodiscard]] HostId host() const noexcept { return host_; }
    [[nodiscard]] bool complete() const noexcept { return have_.complete(); }
    [[nodiscard]] bool seeding() const noexcept { return seed_; }
    [[nodiscard]] Bytes downloaded() const noexcept { return downloaded_; }
    [[nodiscard]] Bytes uploaded() const noexcept { return uploaded_; }
    [[nodiscard]] sim::SimTime joined_at() const noexcept { return joined_at_; }
    [[nodiscard]] std::optional<sim::SimTime> finished_at() const noexcept { return finished_at_; }
    [[nodiscard]] int connection_count() const noexcept { return static_cast<int>(conns_.size()); }
    [[nodiscard]] const swarm::PieceMap& have() const noexcept { return have_; }

    /// Starts participation: tracker announce, connections, choke timer.
    void start();
    /// Departs: closes every connection.
    void depart();

    // --- protocol, called by other peers / the swarm ---------------------------
    bool accept_connection(TorrentPeer& remote);
    void close_connection(TorrentPeer& remote);
    void notify_have(TorrentPeer& remote, swarm::PieceIndex piece);
    void notify_choke(TorrentPeer& remote, bool choked);
    /// Whether we currently choke `remote` (no uploads to it).
    [[nodiscard]] bool is_choking(const TorrentPeer& remote) const;

private:
    struct Conn {
        TorrentPeer* remote = nullptr;
        bool am_choking = true;     // we refuse to upload to remote
        bool peer_choking = true;   // remote refuses to upload to us
        Bytes received_window = 0;  // bytes remote sent us since last choke round
        net::FlowId flow;           // in-flight piece transfer from remote
        swarm::PieceIndex piece = 0;
        bool transferring = false;
    };

    void connect_to_more();
    void choke_round();
    void request_pieces();
    void request_from(Conn& conn);
    void on_piece(TorrentPeer* from, swarm::PieceIndex piece);
    Conn* find_conn(const TorrentPeer& remote);
    [[nodiscard]] const Conn* find_conn(const TorrentPeer& remote) const;
    void cancel_transfer(Conn& conn);

    Swarm* swarm_;
    HostId host_;
    bool seed_;
    bool active_ = false;
    swarm::PieceMap have_;
    swarm::PiecePicker picker_;
    std::vector<Conn> conns_;
    Bytes downloaded_ = 0;
    Bytes uploaded_ = 0;
    sim::SimTime joined_at_{};
    std::optional<sim::SimTime> finished_at_;
    std::function<void(TorrentPeer&)> on_complete_;
    Rng rng_;
    std::uint32_t epoch_ = 0;  // invalidates scheduled choke rounds on depart
    // Pending choke-round timer. Must be cancelled when the peer departs or
    // is destroyed: the callback captures `this`, and a peer can be erased
    // from the swarm while its timer is still queued (even the `active_`
    // guard would read freed memory).
    sim::EventHandle choke_timer_;
};

}  // namespace netsession::baseline
