#include "baseline/pure_p2p.hpp"

#include <algorithm>
#include <cassert>

namespace netsession::baseline {

// --- Swarm --------------------------------------------------------------------

Swarm::Swarm(net::World& world, const swarm::ContentObject& object, TorrentConfig config, Rng rng)
    : world_(&world), object_(&object), config_(config), rng_(rng) {}

Swarm::~Swarm() = default;

TorrentPeer& Swarm::add_peer(HostId host, bool seed,
                             std::function<void(TorrentPeer&)> on_complete) {
    peers_.push_back(std::make_unique<TorrentPeer>(*this, host, seed, std::move(on_complete)));
    TorrentPeer& peer = *peers_.back();
    peer.start();
    return peer;
}

void Swarm::remove_peer(TorrentPeer& peer) {
    peer.depart();
    const auto it = std::find_if(peers_.begin(), peers_.end(),
                                 [&](const auto& p) { return p.get() == &peer; });
    if (it != peers_.end()) peers_.erase(it);
}

std::vector<TorrentPeer*> Swarm::announce(TorrentPeer& who, int want) {
    // The tracker returns a uniformly random subset — no locality, no NAT
    // pre-filtering (contrast with the DN's selection, §3.7).
    std::vector<TorrentPeer*> out;
    std::vector<TorrentPeer*> candidates;
    candidates.reserve(peers_.size());
    for (const auto& p : peers_)
        if (p.get() != &who) candidates.push_back(p.get());
    for (int i = 0; i < want && !candidates.empty(); ++i) {
        const auto k = rng_.below(candidates.size());
        out.push_back(candidates[k]);
        candidates[k] = candidates.back();
        candidates.pop_back();
    }
    return out;
}

int Swarm::seeds() const {
    int n = 0;
    for (const auto& p : peers_)
        if (p->complete()) ++n;
    return n;
}

// --- TorrentPeer --------------------------------------------------------------

TorrentPeer::TorrentPeer(Swarm& swarm, HostId host, bool seed,
                         std::function<void(TorrentPeer&)> on_complete)
    : swarm_(&swarm),
      host_(host),
      seed_(seed),
      have_(seed ? swarm::PieceMap::full(swarm.object().piece_count())
                 : swarm::PieceMap(swarm.object().piece_count())),
      picker_(swarm.object().piece_count()),
      on_complete_(std::move(on_complete)),
      rng_(swarm.rng().child("torrent-peer-" + std::to_string(host.value))) {}

TorrentPeer::~TorrentPeer() {
    // The choke timer captures `this`; it must not outlive the peer (a peer
    // can be erased from the swarm with its timer still queued).
    swarm_->world().simulator().cancel(choke_timer_);
}

void TorrentPeer::start() {
    active_ = true;
    joined_at_ = swarm_->world().simulator().now();
    connect_to_more();
    const std::uint32_t epoch = epoch_;
    choke_timer_ = swarm_->world().simulator().schedule_after(
        sim::seconds(swarm_->config().choke_interval_s), [this, epoch] {
            if (active_ && epoch_ == epoch) choke_round();
        });
}

void TorrentPeer::depart() {
    if (!active_) return;
    active_ = false;
    ++epoch_;
    swarm_->world().simulator().cancel(choke_timer_);
    choke_timer_ = sim::EventHandle{};
    for (auto& conn : conns_) {
        cancel_transfer(conn);
        conn.remote->close_connection(*this);
    }
    conns_.clear();
}

void TorrentPeer::connect_to_more() {
    if (!active_) return;
    const int want = swarm_->config().max_connections - static_cast<int>(conns_.size());
    if (want <= 0) return;
    for (TorrentPeer* candidate : swarm_->announce(*this, want)) {
        if (find_conn(*candidate) != nullptr) continue;
        // Uncoordinated NAT traversal: no rendezvous service, so punching
        // works less often than with NetSession's control plane.
        const auto& world = swarm_->world();
        const double p =
            net::traversal_success_probability(world.host(host_).attach.nat,
                                               world.host(candidate->host()).attach.nat) *
            swarm_->config().uncoordinated_nat_penalty;
        if (!rng_.chance(p)) continue;
        if (!candidate->accept_connection(*this)) continue;
        conns_.push_back(Conn{candidate, true, true, 0, {}, 0, false});
        picker_.add_source(candidate->have());
    }
    request_pieces();
}

bool TorrentPeer::accept_connection(TorrentPeer& remote) {
    if (!active_) return false;
    if (static_cast<int>(conns_.size()) >= swarm_->config().max_connections) return false;
    if (find_conn(remote) != nullptr) return false;
    conns_.push_back(Conn{&remote, true, true, 0, {}, 0, false});
    picker_.add_source(remote.have());
    return true;
}

void TorrentPeer::close_connection(TorrentPeer& remote) {
    const auto it = std::find_if(conns_.begin(), conns_.end(),
                                 [&](const Conn& c) { return c.remote == &remote; });
    if (it == conns_.end()) return;
    cancel_transfer(*it);
    picker_.remove_source(remote.have());
    conns_.erase(it);
}

void TorrentPeer::cancel_transfer(Conn& conn) {
    if (!conn.transferring) return;
    swarm_->world().flows().cancel_flow(conn.flow);
    picker_.set_in_flight(conn.piece, false);
    conn.transferring = false;
    conn.flow = net::FlowId{};
}

TorrentPeer::Conn* TorrentPeer::find_conn(const TorrentPeer& remote) {
    const auto it = std::find_if(conns_.begin(), conns_.end(),
                                 [&](const Conn& c) { return c.remote == &remote; });
    return it == conns_.end() ? nullptr : &*it;
}

const TorrentPeer::Conn* TorrentPeer::find_conn(const TorrentPeer& remote) const {
    const auto it = std::find_if(conns_.begin(), conns_.end(),
                                 [&](const Conn& c) { return c.remote == &remote; });
    return it == conns_.end() ? nullptr : &*it;
}

bool TorrentPeer::is_choking(const TorrentPeer& remote) const {
    const Conn* c = find_conn(remote);
    return c == nullptr || c->am_choking;
}

void TorrentPeer::notify_choke(TorrentPeer& remote, bool choked) {
    Conn* c = find_conn(remote);
    if (c == nullptr) return;
    c->peer_choking = choked;
    if (choked)
        cancel_transfer(*c);
    else
        request_from(*c);
}

void TorrentPeer::notify_have(TorrentPeer& remote, swarm::PieceIndex piece) {
    Conn* c = find_conn(remote);
    if (c == nullptr) return;
    picker_.source_gained(piece);
    if (!c->peer_choking && !c->transferring) request_from(*c);
}

void TorrentPeer::choke_round() {
    if (!active_) return;

    // Tit-for-tat: unchoke the peers that gave us the most since the last
    // round ("Incentives build robustness in BitTorrent", Cohen'03); seeds
    // rank by how much they served, to spread upload capacity.
    std::vector<Conn*> ranked;
    ranked.reserve(conns_.size());
    for (auto& c : conns_) ranked.push_back(&c);
    std::sort(ranked.begin(), ranked.end(), [](const Conn* a, const Conn* b) {
        return a->received_window > b->received_window;
    });

    const int slots = swarm_->config().unchoke_slots;
    std::vector<Conn*> unchoke(ranked.begin(),
                               ranked.begin() + std::min<std::size_t>(ranked.size(),
                                                                      static_cast<std::size_t>(slots)));
    // Optimistic unchoke: a random choked connection gets a chance, which is
    // how fresh peers with nothing to reciprocate bootstrap.
    std::vector<Conn*> choked_pool;
    for (auto& c : conns_)
        if (std::find(unchoke.begin(), unchoke.end(), &c) == unchoke.end())
            choked_pool.push_back(&c);
    for (int i = 0; i < swarm_->config().optimistic_slots && !choked_pool.empty(); ++i) {
        const auto k = rng_.below(choked_pool.size());
        unchoke.push_back(choked_pool[k]);
        choked_pool[k] = choked_pool.back();
        choked_pool.pop_back();
    }

    for (auto& c : conns_) {
        const bool keep_open = std::find(unchoke.begin(), unchoke.end(), &c) != unchoke.end();
        if (c.am_choking == !keep_open) {
            c.received_window = 0;
            continue;
        }
        c.am_choking = !keep_open;
        c.received_window = 0;
        c.remote->notify_choke(*this, c.am_choking);
    }

    connect_to_more();

    const std::uint32_t epoch = epoch_;
    choke_timer_ = swarm_->world().simulator().schedule_after(
        sim::seconds(swarm_->config().choke_interval_s), [this, epoch] {
            if (active_ && epoch_ == epoch) choke_round();
        });
}

void TorrentPeer::request_pieces() {
    for (auto& c : conns_)
        if (!c.peer_choking && !c.transferring) request_from(c);
}

void TorrentPeer::request_from(Conn& conn) {
    if (!active_ || have_.complete() || conn.transferring) return;
    if (conn.remote->is_choking(*this)) return;
    const auto piece = picker_.pick_from_peer(have_, conn.remote->have(), rng_);
    if (!piece) return;
    picker_.set_in_flight(*piece, true);
    conn.piece = *piece;
    conn.transferring = true;
    const Bytes len = swarm_->object().piece_length(*piece);
    TorrentPeer* from = conn.remote;
    conn.flow = swarm_->world().flows().start_flow(
        from->host(), host_, len, net::kUnlimited,
        [this, from, piece = *piece](net::FlowId) { on_piece(from, piece); });
}

void TorrentPeer::on_piece(TorrentPeer* from, swarm::PieceIndex piece) {
    Conn* c = find_conn(*from);
    if (c != nullptr) {
        c->transferring = false;
        c->flow = net::FlowId{};
        c->received_window += swarm_->object().piece_length(piece);
    }
    picker_.set_in_flight(piece, false);
    if (have_.has(piece)) return;
    have_.set(piece);
    const Bytes len = swarm_->object().piece_length(piece);
    downloaded_ += len;
    from->uploaded_ += len;

    for (auto& conn : conns_) conn.remote->notify_have(*this, piece);

    if (have_.complete()) {
        finished_at_ = swarm_->world().simulator().now();
        if (on_complete_) on_complete_(*this);
        return;
    }
    if (c != nullptr) request_from(*c);
    request_pieces();
}

}  // namespace netsession::baseline
