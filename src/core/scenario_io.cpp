#include "core/scenario_io.hpp"

#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>

namespace netsession {

namespace {

std::string trim(const std::string& s) {
    const auto begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos) return "";
    const auto end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

bool parse_bool(const std::string& v, bool& out) {
    if (v == "true" || v == "1" || v == "yes") {
        out = true;
        return true;
    }
    if (v == "false" || v == "0" || v == "no") {
        out = false;
        return true;
    }
    return false;
}

/// One settable knob: how to apply a value string, and how to print it.
struct Knob {
    std::function<bool(SimulationConfig&, const std::string&)> set;
    std::function<std::string(const SimulationConfig&)> get;
    const char* comment;
};

template <typename Get, typename Set>
Knob double_knob(Get get, Set set, const char* comment) {
    return Knob{[set](SimulationConfig& c, const std::string& v) {
                    try {
                        std::size_t used = 0;
                        const double d = std::stod(v, &used);
                        if (used != v.size()) return false;
                        set(c, d);
                        return true;
                    } catch (...) {
                        return false;
                    }
                },
                [get](const SimulationConfig& c) {
                    char buf[48];
                    std::snprintf(buf, sizeof(buf), "%g", get(c));
                    return std::string(buf);
                },
                comment};
}

template <typename Get, typename Set>
Knob bool_knob(Get get, Set set, const char* comment) {
    return Knob{[set](SimulationConfig& c, const std::string& v) {
                    bool b = false;
                    if (!parse_bool(v, b)) return false;
                    set(c, b);
                    return true;
                },
                [get](const SimulationConfig& c) {
                    return std::string(get(c) ? "true" : "false");
                },
                comment};
}

const std::map<std::string, Knob>& knobs() {
    static const std::map<std::string, Knob> table = {
        {"seed", double_knob([](const SimulationConfig& c) { return double(c.seed); },
                             [](SimulationConfig& c, double v) { c.seed = std::uint64_t(v); },
                             "master seed; every random stream derives from it")},
        {"peers", double_knob([](const SimulationConfig& c) { return double(c.peers); },
                              [](SimulationConfig& c, double v) { c.peers = int(v); },
                              "peer population size")},
        {"window_days",
         double_knob([](const SimulationConfig& c) { return c.behavior.window.seconds() / 86400; },
                     [](SimulationConfig& c, double v) { c.behavior.window = sim::days(v); },
                     "measurement window length")},
        {"warmup_days",
         double_knob([](const SimulationConfig& c) { return c.behavior.warmup.seconds() / 86400; },
                     [](SimulationConfig& c, double v) { c.behavior.warmup = sim::days(v); },
                     "warm-up before the trace window (swarms form, trace discarded)")},
        {"downloads_per_peer_per_month",
         double_knob(
             [](const SimulationConfig& c) { return c.behavior.downloads_per_peer_per_month; },
             [](SimulationConfig& c, double v) { c.behavior.downloads_per_peer_per_month = v; },
             "download demand intensity")},
        {"sessions_per_day",
         double_knob([](const SimulationConfig& c) { return c.behavior.sessions_per_day; },
                     [](SimulationConfig& c, double v) { c.behavior.sessions_per_day = v; },
                     "mean machine sessions per day")},
        {"frac_always_on",
         double_knob([](const SimulationConfig& c) { return c.behavior.frac_always_on; },
                     [](SimulationConfig& c, double v) { c.behavior.frac_always_on = v; },
                     "share of machines logged in ~around the clock")},
        {"attacker_fraction",
         double_knob([](const SimulationConfig& c) { return c.behavior.attacker_fraction; },
                     [](SimulationConfig& c, double v) { c.behavior.attacker_fraction = v; },
                     "share of peers submitting inflated usage reports")},
        {"total_ases",
         double_knob([](const SimulationConfig& c) { return double(c.as_graph.total_ases); },
                     [](SimulationConfig& c, double v) { c.as_graph.total_ases = int(v); },
                     "autonomous systems in the synthetic topology")},
        {"tail_providers",
         double_knob([](const SimulationConfig& c) { return double(c.tail_providers); },
                     [](SimulationConfig& c, double v) { c.tail_providers = int(v); },
                     "minor content providers beyond the ten majors")},
        {"max_pieces",
         double_knob([](const SimulationConfig& c) { return double(c.max_pieces); },
                     [](SimulationConfig& c, double v) { c.max_pieces = std::uint32_t(v); },
                     "piece-count cap per object (simulation granularity)")},
        {"max_peers_returned",
         double_knob(
             [](const SimulationConfig& c) { return double(c.control.max_peers_returned); },
             [](SimulationConfig& c, double v) { c.control.max_peers_returned = int(v); },
             "DN answer size cap (paper: 40)")},
        {"cross_region_threshold",
         double_knob(
             [](const SimulationConfig& c) { return double(c.control.cross_region_threshold); },
             [](SimulationConfig& c, double v) { c.control.cross_region_threshold = int(v); },
             "widen DN search below this local answer size (0 = strict local)")},
        {"max_peer_sources",
         double_knob([](const SimulationConfig& c) { return double(c.client.max_peer_sources); },
                     [](SimulationConfig& c, double v) { c.client.max_peer_sources = int(v); },
                     "concurrent p2p sources per download")},
        {"max_upload_connections",
         double_knob(
             [](const SimulationConfig& c) { return double(c.client.max_upload_connections); },
             [](SimulationConfig& c, double v) { c.client.max_upload_connections = int(v); },
             "concurrent upload connections per peer")},
        {"cache_retention_days",
         double_knob(
             [](const SimulationConfig& c) { return c.client.cache_retention.seconds() / 86400; },
             [](SimulationConfig& c, double v) { c.client.cache_retention = sim::days(v); },
             "how long completed downloads stay shareable")},
        {"threads",
         double_knob([](const SimulationConfig& c) { return double(c.threads); },
                     [](SimulationConfig& c, double v) { c.threads = int(v); },
                     "analysis thread count (0 = NS_THREADS/hardware default)")},
        {"shards",
         // Not a double_knob: a scenario that names a shard count must name a
         // *valid* one. 0 (the in-memory "unset, ask NS_SIM_SHARDS" sentinel)
         // is rejected here — a written scenario pins its engine explicitly,
         // so unset configs print as the single-queue default, 1.
         Knob{[](SimulationConfig& c, const std::string& v) {
                  try {
                      std::size_t used = 0;
                      const int s = std::stoi(v, &used);
                      if (used != v.size() || s < 1 || s > 64) return false;
                      c.shards = s;
                      return true;
                  } catch (...) {
                      return false;
                  }
              },
              [](const SimulationConfig& c) {
                  return std::to_string(c.shards <= 0 ? 1 : c.shards);
              },
              "region shards for the event engine (1 = legacy single queue; "
              "traces are byte-stable per shard count, docs/PARALLELISM.md)"}},
        {"disable_p2p", bool_knob([](const SimulationConfig& c) { return c.disable_p2p; },
                                  [](SimulationConfig& c, bool v) { c.disable_p2p = v; },
                                  "true = infrastructure-only baseline")},
        {"random_selection",
         bool_knob(
             [](const SimulationConfig& c) {
                 return c.control.selection.strategy ==
                        control::SelectionPolicy::Strategy::random;
             },
             [](SimulationConfig& c, bool v) {
                 c.control.selection.strategy = v ? control::SelectionPolicy::Strategy::random
                                                  : control::SelectionPolicy::Strategy::locality_aware;
             },
             "true = tracker-style random peer selection (ablation)")},
    };
    return table;
}

}  // namespace

Result<SimulationConfig> parse_scenario(const std::string& text) {
    SimulationConfig config;
    std::istringstream in(text);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos) line = line.substr(0, hash);
        line = trim(line);
        if (line.empty()) continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            return Error{Error::Code::invalid_argument,
                         "line " + std::to_string(line_no) + ": expected key = value"};
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key == "fault") {
            // Repeated key: each line appends one event to the fault plan.
            auto event = fault::parse_fault_event(value);
            if (!event)
                return Error{Error::Code::invalid_argument, "line " + std::to_string(line_no) +
                                                                ": " + event.error().message};
            config.faults.events.push_back(event.value());
            continue;
        }
        if (key == "campaign") {
            // Repeated key: each line declares one chaos campaign, expanded
            // deterministically into fault events when the run starts.
            auto spec = fault::parse_campaign(value);
            if (!spec)
                return Error{Error::Code::invalid_argument, "line " + std::to_string(line_no) +
                                                                ": " + spec.error().message};
            config.campaigns.push_back(spec.value());
            continue;
        }
        const auto it = knobs().find(key);
        if (it == knobs().end())
            return Error{Error::Code::invalid_argument,
                         "line " + std::to_string(line_no) + ": unknown key '" + key + "'"};
        if (!it->second.set(config, value))
            return Error{Error::Code::invalid_argument, "line " + std::to_string(line_no) +
                                                            ": bad value '" + value + "' for '" +
                                                            key + "'"};
    }
    return config;
}

Result<SimulationConfig> load_scenario(const std::string& path) {
    std::ifstream in(path);
    if (!in)
        return Error{Error::Code::not_found, "cannot open scenario file '" + path + "'"};
    std::ostringstream text;
    text << in.rdbuf();
    return parse_scenario(text.str());
}

std::string describe_scenario(const SimulationConfig& config) {
    std::string out = "# NetSession scenario\n";
    for (const auto& [key, knob] : knobs())
        out += key + " = " + knob.get(config) + "  # " + knob.comment + "\n";
    if (!config.faults.empty()) {
        out += "# fault timeline (docs/ROBUSTNESS.md); times in days from t=0\n";
        for (const auto& event : config.faults.events)
            out += "fault = " + fault::to_string(event) + "\n";
    }
    if (!config.campaigns.empty()) {
        out += "# chaos campaigns (docs/ROBUSTNESS.md); expanded from each seed at run start\n";
        for (const auto& spec : config.campaigns)
            out += "campaign = " + fault::to_string(spec) + "\n";
    }
    return out;
}

bool write_scenario_template(const std::string& path) {
    std::ofstream out(path);
    if (!out) return false;
    out << describe_scenario(SimulationConfig{});
    return static_cast<bool>(out);
}

}  // namespace netsession
