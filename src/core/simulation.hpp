// netsession::Simulation — the library's public entry point.
//
// Builds a complete synthetic NetSession deployment (internet model, edge
// servers, control plane, peer population), drives it through a measurement
// window with the configured user-behaviour model, and exposes the resulting
// control-plane trace plus the geo database, ready for the analysis pipeline
// that regenerates the paper's tables and figures.
//
// Typical use (see examples/quickstart.cpp):
//
//   netsession::SimulationConfig config;
//   config.peers = 5000;
//   config.behavior.window = netsession::sim::days(7.0);
//   netsession::Simulation sim(config);
//   sim.run();
//   const auto headline = netsession::analysis::headline_offload(sim.trace());
#pragma once

#include <memory>

#include "accounting/accounting.hpp"
#include "audit/auditor.hpp"
#include "control/control_plane.hpp"
#include "edge/edge_network.hpp"
#include "fault/campaign.hpp"
#include "fault/fault_engine.hpp"
#include "fault/fault_spec.hpp"
#include "net/world.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "peer/registry.hpp"
#include "sim/simulator.hpp"
#include "trace/trace_log.hpp"
#include "workload/behavior.hpp"

namespace netsession {

struct SimulationConfig {
    /// Master seed; every random stream in the deployment derives from it.
    std::uint64_t seed = 1;

    /// Peer population size. The paper's deployment has 26M installations;
    /// synthetic runs are ~10^3 smaller and EXPERIMENTS.md compares shapes
    /// and shares, not absolute totals.
    int peers = 10000;

    net::AsGraphConfig as_graph;
    edge::EdgeNetworkConfig edge;
    control::ControlPlaneConfig control;
    peer::ClientConfig client;
    workload::BehaviorConfig behavior;
    workload::PopulationConfig population;

    /// Minor content providers beyond the ten majors of Tables 2/4.
    int tail_providers = 10;
    /// Upper bound on pieces per object (coarsened swarming, DESIGN.md §4.3).
    std::uint32_t max_pieces = 64;

    /// Forces every object to infrastructure-only delivery — the
    /// "infrastructure CDN" baseline of the architecture ablation.
    bool disable_p2p = false;

    /// Deterministic fault timeline (empty = fault-free run). Applied by the
    /// FaultEngine before the user driver starts; part of the determinism
    /// contract (same seed + same plan ⇒ byte-identical traces).
    fault::FaultPlan faults;

    /// Chaos campaigns expanded (deterministically, from each campaign's own
    /// seed) into additional fault events on top of `faults`. The expansion
    /// happens in run(), against the topology-derived CampaignContext, so
    /// the armed plan is a pure function of the config.
    std::vector<fault::CampaignSpec> campaigns;

    /// Runtime invariant auditor cadence (src/audit/). Periodic sweeps run
    /// only in NS_AUDIT=ON builds; audit_now() works in every build. The
    /// auditor is read-only, so this cannot change trace bytes.
    audit::AuditConfig audit;

    /// Periodic metrics sampling into the trace (format v6). The sampler
    /// reads registered metrics only — it cannot perturb the rest of the
    /// trace. Builds with NS_METRICS=OFF never start it.
    obs::SamplerConfig metrics;

    /// Thread count for the *analysis* runtime (common/parallel.hpp) that
    /// post-run measurement passes use; 0 keeps the NS_THREADS/-hardware
    /// default. This knob cannot change trace bytes, only how fast the
    /// tables/figures are computed afterwards (docs/PARALLELISM.md). Event
    /// *execution* parallelism is the `shards` knob below, not this one.
    int threads = 0;

    /// Region shards for the simulation core (docs/PARALLELISM.md "The
    /// sharded simulation core"). 0 = unset: take NS_SIM_SHARDS from the
    /// environment, defaulting to 1. 1 is the legacy single-queue engine,
    /// byte-identical to pre-shard builds. Values > 1 window-batch the event
    /// loop and the flow solver per region shard: runs are byte-identical
    /// for a FIXED shard count, but traces differ ACROSS shard counts
    /// (measurements agree within documented tolerances).
    int shards = 0;
};

class Simulation {
public:
    explicit Simulation(SimulationConfig config);

    Simulation(const Simulation&) = delete;
    Simulation& operator=(const Simulation&) = delete;

    /// Creates the population and runs the full measurement window.
    void run();

    /// Hot-path counters from the event engine and the flow network
    /// (scheduled/dispatched/cancelled events, callback heap allocations,
    /// refills, sort-cache hits). Snapshot; cheap to copy. The bench harness
    /// folds these into BENCH_headline.json.
    struct PerfStats {
        sim::Simulator::Stats sim;
        net::FlowNetwork::Stats flows;
    };
    [[nodiscard]] PerfStats perf_stats() const noexcept {
        return PerfStats{sim_.stats(), world_->flows().stats()};
    }

    /// The observability registry: every subsystem's counters/gauges/
    /// histograms, registered at construction in a stable order (part of the
    /// determinism contract — registration order fixes the v6 metric ids).
    /// perf_stats() is folded in as `sim.*` / `flow.*` computed gauges, so
    /// `obs::to_json(sim.metrics())` is the complete runtime picture.
    [[nodiscard]] obs::Registry& metrics() noexcept { return metrics_registry_; }
    [[nodiscard]] const obs::Registry& metrics() const noexcept { return metrics_registry_; }
    /// The trace sampler (never null after construction; inert when the
    /// config disables it or the build compiled metrics out).
    [[nodiscard]] obs::Sampler& sampler() noexcept { return *sampler_; }
    /// The invariant auditor (never null after construction; periodic sweeps
    /// only run in NS_AUDIT=ON builds, but audit_now() works everywhere).
    [[nodiscard]] audit::Auditor& auditor() noexcept { return *auditor_; }

    // --- results -----------------------------------------------------------
    [[nodiscard]] const trace::TraceLog& trace() const noexcept { return trace_; }
    [[nodiscard]] trace::TraceLog& trace() noexcept { return trace_; }
    [[nodiscard]] const net::GeoDatabase& geodb() const noexcept { return world_->geodb(); }
    [[nodiscard]] const net::AsGraph& as_graph() const noexcept { return world_->as_graph(); }

    // --- live components (for examples, tests, failure injection) -----------
    [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
    [[nodiscard]] net::World& world() noexcept { return *world_; }
    [[nodiscard]] edge::EdgeNetwork& edges() noexcept { return *edges_; }
    [[nodiscard]] control::ControlPlane& control_plane() noexcept { return *plane_; }
    [[nodiscard]] accounting::AccountingService& accounting() noexcept { return accounting_; }
    [[nodiscard]] workload::UserDriver& driver() noexcept { return *driver_; }
    [[nodiscard]] peer::PeerRegistry& registry() noexcept { return registry_; }
    [[nodiscard]] fault::FaultEngine& faults() noexcept { return *fault_engine_; }
    [[nodiscard]] const workload::CatalogBundle& bundle() const noexcept { return *bundle_; }
    [[nodiscard]] const SimulationConfig& config() const noexcept { return config_; }

private:
    SimulationConfig config_;
    sim::Simulator sim_;
    std::unique_ptr<net::World> world_;
    edge::Catalog catalog_;
    std::unique_ptr<workload::CatalogBundle> bundle_;
    std::unique_ptr<edge::EdgeNetwork> edges_;
    trace::TraceLog trace_;
    accounting::AccountingService accounting_;
    std::unique_ptr<control::ControlPlane> plane_;
    peer::PeerRegistry registry_;
    std::unique_ptr<workload::PopulationGenerator> population_;
    std::unique_ptr<workload::UserDriver> driver_;
    std::unique_ptr<fault::FaultEngine> fault_engine_;
    std::unique_ptr<audit::Auditor> auditor_;
    obs::Registry metrics_registry_;
    std::unique_ptr<obs::Sampler> sampler_;

    void register_metrics();
    [[nodiscard]] fault::CampaignContext campaign_context() const;
};

}  // namespace netsession
