// Scenario files: run custom deployments without recompiling.
//
// A scenario is a flat key = value file (with # comments) covering the main
// SimulationConfig knobs. `netsession_sim template` writes a commented
// template; `netsession_sim run` executes one and saves the trace.
#pragma once

#include <string>

#include "common/result.hpp"
#include "core/simulation.hpp"

namespace netsession {

/// Parses a scenario file into a SimulationConfig (starting from defaults).
/// Unknown keys and malformed lines are errors — typos must not silently
/// fall back to defaults.
[[nodiscard]] Result<SimulationConfig> load_scenario(const std::string& path);

/// Parses scenario text (same format) — the file-free core of load_scenario.
[[nodiscard]] Result<SimulationConfig> parse_scenario(const std::string& text);

/// Renders a config as scenario text (loadable by parse_scenario).
[[nodiscard]] std::string describe_scenario(const SimulationConfig& config);

/// Writes a fully-commented template; returns false on I/O failure.
bool write_scenario_template(const std::string& path);

}  // namespace netsession
