#include "core/simulation.hpp"

namespace netsession {

Simulation::Simulation(SimulationConfig config)
    : config_(std::move(config)), accounting_(trace_) {
    Rng root(config_.seed);

    world_ = std::make_unique<net::World>(
        sim_, net::AsGraph::generate(config_.as_graph, root.child("as-graph")));

    auto profiles = workload::default_providers(config_.tail_providers);
    if (config_.disable_p2p)
        for (auto& p : profiles) p.allow_p2p = false;
    bundle_ = std::make_unique<workload::CatalogBundle>(std::move(profiles), catalog_,
                                                        root.child("catalog"), config_.max_pieces);

    edges_ = std::make_unique<edge::EdgeNetwork>(*world_, catalog_, config_.edge);

    // The accounting attack filter cross-checks reports against the trusted
    // edge ledger (§3.5).
    accounting_.set_ground_truth([this](Guid guid, ObjectId object) {
        Bytes total = 0;
        for (const auto& server : edges_->servers()) total += server->bytes_served(guid, object);
        return total;
    });

    plane_ = std::make_unique<control::ControlPlane>(*world_, edges_->authority(), trace_,
                                                     accounting_, config_.control,
                                                     root.child("control"));

    population_ = std::make_unique<workload::PopulationGenerator>(
        config_.population, world_->as_graph(), root.child("population"));

    driver_ = std::make_unique<workload::UserDriver>(
        *world_, *plane_, *edges_, *bundle_, *population_, registry_, config_.behavior,
        config_.client, root.child("behavior"));

    fault_engine_ = std::make_unique<fault::FaultEngine>(sim_, *world_, *edges_, *plane_,
                                                         *driver_, root.child("faults"));
}

void Simulation::run() {
    driver_->create_users(config_.peers);
    fault_engine_->arm(config_.faults);
    driver_->run();
}

}  // namespace netsession
