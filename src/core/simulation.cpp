#include "core/simulation.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "common/parallel.hpp"
#include "analysis/recovery.hpp"
#include "net/world_data.hpp"

namespace netsession {

// analysis/ cannot name fault::FaultKind (it sits below fault/ in the
// layering), so it mirrors the enum; core sees both and pins them together.
static_assert(static_cast<int>(analysis::TracedFaultKind::edge_outage) ==
                  static_cast<int>(fault::FaultKind::edge_outage) &&
              static_cast<int>(analysis::TracedFaultKind::region_partition) ==
                  static_cast<int>(fault::FaultKind::region_partition) &&
              static_cast<int>(analysis::TracedFaultKind::as_degradation) ==
                  static_cast<int>(fault::FaultKind::as_degradation) &&
              static_cast<int>(analysis::TracedFaultKind::stun_blackout) ==
                  static_cast<int>(fault::FaultKind::stun_blackout) &&
              static_cast<int>(analysis::TracedFaultKind::mass_churn) ==
                  static_cast<int>(fault::FaultKind::mass_churn) &&
              static_cast<int>(analysis::TracedFaultKind::cn_outage) ==
                  static_cast<int>(fault::FaultKind::cn_outage) &&
              static_cast<int>(analysis::TracedFaultKind::dn_outage) ==
                  static_cast<int>(fault::FaultKind::dn_outage) &&
              static_cast<int>(analysis::TracedFaultKind::flash_crowd) ==
                  static_cast<int>(fault::FaultKind::flash_crowd),
              "analysis::TracedFaultKind must mirror fault::FaultKind");

static int resolve_shards(int configured) {
    int s = configured;
    if (s <= 0) {
        s = 1;
        if (const char* env = std::getenv("NS_SIM_SHARDS")) {
            const long v = std::strtol(env, nullptr, 10);
            if (v >= 1 && v <= 64) s = static_cast<int>(v);
        }
    }
    return std::clamp(s, 1, 64);
}

Simulation::Simulation(SimulationConfig config)
    : config_(std::move(config)), accounting_(trace_) {
    // Sizes the analysis runtime for post-run measurement passes; the
    // simulation itself stays single-threaded regardless.
    if (config_.threads > 0) parallel::set_thread_count(config_.threads);

    // Region sharding: resolved before anything is scheduled or any host
    // exists; shards == 1 keeps every layer on its exact legacy path.
    const int shards = resolve_shards(config_.shards);
    if (shards > 1) sim_.configure_shards(shards, net::kLatencyFloor);

    Rng root(config_.seed);

    world_ = std::make_unique<net::World>(
        sim_, net::AsGraph::generate(config_.as_graph, root.child("as-graph")));
    if (shards > 1) {
        world_->configure_shards(shards);
        sim_.set_barrier_hook([this] { world_->flows().solve_barrier(); });
    }

    auto profiles = workload::default_providers(config_.tail_providers);
    if (config_.disable_p2p)
        for (auto& p : profiles) p.allow_p2p = false;
    bundle_ = std::make_unique<workload::CatalogBundle>(std::move(profiles), catalog_,
                                                        root.child("catalog"), config_.max_pieces);

    edges_ = std::make_unique<edge::EdgeNetwork>(*world_, catalog_, config_.edge);

    // The accounting attack filter cross-checks reports against the trusted
    // edge ledger (§3.5).
    accounting_.set_ground_truth([this](Guid guid, ObjectId object) {
        Bytes total = 0;
        for (const auto& server : edges_->servers()) total += server->bytes_served(guid, object);
        return total;
    });

    plane_ = std::make_unique<control::ControlPlane>(*world_, edges_->authority(), trace_,
                                                     accounting_, config_.control,
                                                     root.child("control"));

    population_ = std::make_unique<workload::PopulationGenerator>(
        config_.population, world_->as_graph(), root.child("population"));

    driver_ = std::make_unique<workload::UserDriver>(
        *world_, *plane_, *edges_, *bundle_, *population_, registry_, config_.behavior,
        config_.client, root.child("behavior"));

    fault_engine_ = std::make_unique<fault::FaultEngine>(sim_, *world_, *edges_, *plane_,
                                                         *driver_, trace_, root.child("faults"));

    auditor_ = std::make_unique<audit::Auditor>(sim_, *world_, *plane_, registry_, *driver_,
                                                config_.client, config_.audit);

    register_metrics();
    sampler_ = std::make_unique<obs::Sampler>(sim_, metrics_registry_, trace_, config_.metrics);
}

void Simulation::register_metrics() {
    // Stable registration order = stable v6 metric ids: control plane, edge
    // tier, client population, then the engine-level computed gauges.
    plane_->register_metrics(metrics_registry_);
    edges_->register_metrics(metrics_registry_);
    driver_->register_metrics(metrics_registry_);

    metrics_registry_.add_computed("flow.active", [this] {
        const auto s = world_->flows().stats();
        return static_cast<double>(s.flows_started - s.flows_completed - s.flows_cancelled);
    });
    metrics_registry_.add_computed("flow.started", [this] {
        return static_cast<double>(world_->flows().stats().flows_started);
    });
    metrics_registry_.add_computed("flow.completed", [this] {
        return static_cast<double>(world_->flows().stats().flows_completed);
    });
    metrics_registry_.add_computed("flow.cancelled", [this] {
        return static_cast<double>(world_->flows().stats().flows_cancelled);
    });
    metrics_registry_.add_computed("flow.refills", [this] {
        return static_cast<double>(world_->flows().stats().refills);
    });
    metrics_registry_.add_computed("flow.resort_hits", [this] {
        return static_cast<double>(world_->flows().stats().resort_hits);
    });
    metrics_registry_.add_computed("flow.resort_misses", [this] {
        return static_cast<double>(world_->flows().stats().resort_misses);
    });
    metrics_registry_.add_computed("sim.events_scheduled",
                           [this] { return static_cast<double>(sim_.stats().scheduled); });
    metrics_registry_.add_computed("sim.events_dispatched",
                           [this] { return static_cast<double>(sim_.stats().dispatched); });
    metrics_registry_.add_computed("sim.events_cancelled",
                           [this] { return static_cast<double>(sim_.stats().cancelled); });
    metrics_registry_.add_computed("sim.callback_heap_allocs", [this] {
        return static_cast<double>(sim_.stats().callback_heap_allocs);
    });
    // sim.shard.* exist only in sharded runs: the shards == 1 registry (and
    // therefore the golden v6 metric ids) is byte-identical to pre-shard
    // builds. Within a fixed shard count the ids are still deterministic —
    // the gauge set is a pure function of the shard count.
    if (sim_.shards() > 1) {
        metrics_registry_.add_computed("sim.shard.windows", [this] {
            return static_cast<double>(sim_.shard_stats().windows);
        });
        metrics_registry_.add_computed("sim.shard.window_stalls", [this] {
            return static_cast<double>(sim_.shard_stats().window_stalls);
        });
        metrics_registry_.add_computed("sim.shard.cross_messages", [this] {
            return static_cast<double>(sim_.shard_stats().cross_messages);
        });
        metrics_registry_.add_computed("sim.shard.cross_clamped", [this] {
            return static_cast<double>(sim_.shard_stats().cross_clamped);
        });
        for (int k = 0; k < sim_.shards(); ++k) {
            metrics_registry_.add_computed(
                "sim.shard." + std::to_string(k) + ".dispatched",
                [this, k] { return static_cast<double>(sim_.shard_dispatched(k)); });
        }
    }

    metrics_registry_.add_computed("fault.applied", [this] {
        return static_cast<double>(fault_engine_->faults_applied());
    });
    metrics_registry_.add_computed("fault.restored", [this] {
        return static_cast<double>(fault_engine_->faults_restored());
    });
    metrics_registry_.add_computed("fault.active", [this] {
        return static_cast<double>(fault_engine_->faults_applied() -
                                   fault_engine_->faults_restored());
    });

    // mem.* — storage accounting for the arena pools and flat-hash tables.
    // All values are pure functions of the simulation history (slot counts,
    // chunk counts, load factors), so they are safe to sample into the trace;
    // process RSS is *not* and lives in obs/process_memory.hpp instead.
    metrics_registry_.add_computed("mem.swarm_pool_bytes_reserved", [this] {
        std::size_t total = 0;
        for (const auto& dn : plane_->dns()) total += dn->memory_stats().pool_bytes_reserved;
        return static_cast<double>(total);
    });
    metrics_registry_.add_computed("mem.swarm_pool_live", [this] {
        std::size_t total = 0;
        for (const auto& dn : plane_->dns()) total += dn->memory_stats().pool_live;
        return static_cast<double>(total);
    });
    metrics_registry_.add_computed("mem.directory_table_load", [this] {
        double worst = 0.0;
        for (const auto& dn : plane_->dns())
            worst = std::max(worst, dn->memory_stats().table_load_factor);
        return worst;
    });
    metrics_registry_.add_computed("mem.download_pool_bytes_reserved", [this] {
        return static_cast<double>(registry_.downloads().bytes_reserved());
    });
    metrics_registry_.add_computed("mem.download_pool_live", [this] {
        return static_cast<double>(registry_.downloads().live());
    });
    metrics_registry_.add_computed("mem.flow_pool_bytes_reserved", [this] {
        return static_cast<double>(world_->flows().pool_stats().bytes_reserved);
    });
    metrics_registry_.add_computed("mem.flow_pool_live", [this] {
        return static_cast<double>(world_->flows().pool_stats().live);
    });
    metrics_registry_.add_computed("mem.client_table_load",
                                   [this] { return registry_.table_load_factor(); });
    // Hibernation accounting (PR 9): how much of the population is demoted to
    // the cold arena, and what it costs there.
    metrics_registry_.add_computed("mem.cold_bytes_reserved", [this] {
        return static_cast<double>(registry_.cold().bytes_reserved());
    });
    metrics_registry_.add_computed("mem.cold_bytes_live", [this] {
        return static_cast<double>(registry_.cold().bytes_live());
    });
    metrics_registry_.add_computed("mem.cold_records", [this] {
        return static_cast<double>(registry_.cold().records());
    });

#if NS_AUDIT_ENABLED
    // Registered last, and only in audit builds: default-build metric ids
    // stay byte-identical to audit-free binaries.
    auditor_->register_metrics(metrics_registry_);
#endif
}

void Simulation::run() {
    driver_->create_users(config_.peers);
    fault::FaultPlan plan = config_.faults;
    if (!config_.campaigns.empty())
        fault::append_campaigns(plan, config_.campaigns, campaign_context());
    fault_engine_->arm(plan);
    const sim::SimTime window_end =
        sim::SimTime{} + config_.behavior.warmup + config_.behavior.window;
#if NS_METRICS_ENABLED
    sampler_->start(window_end);
#endif
#if NS_AUDIT_ENABLED
    auditor_->start(window_end);
#endif
    driver_->run();
#if NS_METRICS_ENABLED
    sampler_->finish();
#endif
#if NS_AUDIT_ENABLED
    auditor_->finish();
#endif
}

fault::CampaignContext Simulation::campaign_context() const {
    // Pure function of the deterministic topology: region count from the
    // static region table, AS candidates from the generated AS graph — the
    // largest access (eyeball) networks, where degradations actually land.
    fault::CampaignContext ctx;
    ctx.regions = static_cast<int>(net::regions().size());
    std::vector<const net::AsInfo*> access;
    for (const net::AsInfo& info : world_->as_graph().all())
        if (info.tier == 3) access.push_back(&info);
    std::sort(access.begin(), access.end(), [](const net::AsInfo* a, const net::AsInfo* b) {
        if (a->size_weight != b->size_weight) return a->size_weight > b->size_weight;
        return a->asn.value < b->asn.value;
    });
    const std::size_t take = std::min<std::size_t>(access.size(), 64);
    ctx.asns.reserve(take);
    for (std::size_t i = 0; i < take; ++i) ctx.asns.push_back(access[i]->asn.value);
    return ctx;
}

}  // namespace netsession
