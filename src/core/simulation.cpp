#include "core/simulation.hpp"

#include <algorithm>

#include "common/parallel.hpp"

namespace netsession {

Simulation::Simulation(SimulationConfig config)
    : config_(std::move(config)), accounting_(trace_) {
    // Sizes the analysis runtime for post-run measurement passes; the
    // simulation itself stays single-threaded regardless.
    if (config_.threads > 0) parallel::set_thread_count(config_.threads);

    Rng root(config_.seed);

    world_ = std::make_unique<net::World>(
        sim_, net::AsGraph::generate(config_.as_graph, root.child("as-graph")));

    auto profiles = workload::default_providers(config_.tail_providers);
    if (config_.disable_p2p)
        for (auto& p : profiles) p.allow_p2p = false;
    bundle_ = std::make_unique<workload::CatalogBundle>(std::move(profiles), catalog_,
                                                        root.child("catalog"), config_.max_pieces);

    edges_ = std::make_unique<edge::EdgeNetwork>(*world_, catalog_, config_.edge);

    // The accounting attack filter cross-checks reports against the trusted
    // edge ledger (§3.5).
    accounting_.set_ground_truth([this](Guid guid, ObjectId object) {
        Bytes total = 0;
        for (const auto& server : edges_->servers()) total += server->bytes_served(guid, object);
        return total;
    });

    plane_ = std::make_unique<control::ControlPlane>(*world_, edges_->authority(), trace_,
                                                     accounting_, config_.control,
                                                     root.child("control"));

    population_ = std::make_unique<workload::PopulationGenerator>(
        config_.population, world_->as_graph(), root.child("population"));

    driver_ = std::make_unique<workload::UserDriver>(
        *world_, *plane_, *edges_, *bundle_, *population_, registry_, config_.behavior,
        config_.client, root.child("behavior"));

    fault_engine_ = std::make_unique<fault::FaultEngine>(sim_, *world_, *edges_, *plane_,
                                                         *driver_, root.child("faults"));

    register_metrics();
    sampler_ = std::make_unique<obs::Sampler>(sim_, metrics_registry_, trace_, config_.metrics);
}

void Simulation::register_metrics() {
    // Stable registration order = stable v6 metric ids: control plane, edge
    // tier, client population, then the engine-level computed gauges.
    plane_->register_metrics(metrics_registry_);
    edges_->register_metrics(metrics_registry_);
    driver_->register_metrics(metrics_registry_);

    metrics_registry_.add_computed("flow.active", [this] {
        const auto s = world_->flows().stats();
        return static_cast<double>(s.flows_started - s.flows_completed - s.flows_cancelled);
    });
    metrics_registry_.add_computed("flow.started", [this] {
        return static_cast<double>(world_->flows().stats().flows_started);
    });
    metrics_registry_.add_computed("flow.completed", [this] {
        return static_cast<double>(world_->flows().stats().flows_completed);
    });
    metrics_registry_.add_computed("flow.cancelled", [this] {
        return static_cast<double>(world_->flows().stats().flows_cancelled);
    });
    metrics_registry_.add_computed("flow.refills", [this] {
        return static_cast<double>(world_->flows().stats().refills);
    });
    metrics_registry_.add_computed("flow.resort_hits", [this] {
        return static_cast<double>(world_->flows().stats().resort_hits);
    });
    metrics_registry_.add_computed("flow.resort_misses", [this] {
        return static_cast<double>(world_->flows().stats().resort_misses);
    });
    metrics_registry_.add_computed("sim.events_scheduled",
                           [this] { return static_cast<double>(sim_.stats().scheduled); });
    metrics_registry_.add_computed("sim.events_dispatched",
                           [this] { return static_cast<double>(sim_.stats().dispatched); });
    metrics_registry_.add_computed("sim.events_cancelled",
                           [this] { return static_cast<double>(sim_.stats().cancelled); });
    metrics_registry_.add_computed("sim.callback_heap_allocs", [this] {
        return static_cast<double>(sim_.stats().callback_heap_allocs);
    });
    metrics_registry_.add_computed("fault.applied", [this] {
        return static_cast<double>(fault_engine_->faults_applied());
    });
    metrics_registry_.add_computed("fault.restored", [this] {
        return static_cast<double>(fault_engine_->faults_restored());
    });
    metrics_registry_.add_computed("fault.active", [this] {
        return static_cast<double>(fault_engine_->faults_applied() -
                                   fault_engine_->faults_restored());
    });

    // mem.* — storage accounting for the arena pools and flat-hash tables.
    // All values are pure functions of the simulation history (slot counts,
    // chunk counts, load factors), so they are safe to sample into the trace;
    // process RSS is *not* and lives in obs/process_memory.hpp instead.
    metrics_registry_.add_computed("mem.swarm_pool_bytes_reserved", [this] {
        std::size_t total = 0;
        for (const auto& dn : plane_->dns()) total += dn->memory_stats().pool_bytes_reserved;
        return static_cast<double>(total);
    });
    metrics_registry_.add_computed("mem.swarm_pool_live", [this] {
        std::size_t total = 0;
        for (const auto& dn : plane_->dns()) total += dn->memory_stats().pool_live;
        return static_cast<double>(total);
    });
    metrics_registry_.add_computed("mem.directory_table_load", [this] {
        double worst = 0.0;
        for (const auto& dn : plane_->dns())
            worst = std::max(worst, dn->memory_stats().table_load_factor);
        return worst;
    });
    metrics_registry_.add_computed("mem.download_pool_bytes_reserved", [this] {
        return static_cast<double>(registry_.downloads().bytes_reserved());
    });
    metrics_registry_.add_computed("mem.download_pool_live", [this] {
        return static_cast<double>(registry_.downloads().live());
    });
    metrics_registry_.add_computed("mem.flow_pool_bytes_reserved", [this] {
        return static_cast<double>(world_->flows().pool_stats().bytes_reserved);
    });
    metrics_registry_.add_computed("mem.flow_pool_live", [this] {
        return static_cast<double>(world_->flows().pool_stats().live);
    });
    metrics_registry_.add_computed("mem.client_table_load",
                                   [this] { return registry_.table_load_factor(); });
}

void Simulation::run() {
    driver_->create_users(config_.peers);
    fault_engine_->arm(config_.faults);
#if NS_METRICS_ENABLED
    sampler_->start(sim::SimTime{} + config_.behavior.warmup + config_.behavior.window);
#endif
    driver_->run();
#if NS_METRICS_ENABLED
    sampler_->finish();
#endif
}

}  // namespace netsession
