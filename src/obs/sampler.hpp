// The periodic metrics sampler: snapshots a Registry into the trace as
// MetricPointRecords (trace format v6) on a fixed simulated-time cadence.
//
// The sampler is deliberately passive with respect to the simulation: its
// tick reads registered metrics and appends trace records, touching no RNG
// stream and no simulation state, so enabling or disabling sampling cannot
// perturb the control-plane/download sections of the trace (the byte-
// identity contract of docs/SIMULATOR.md §3 extends to the metrics section:
// same seed + same cadence => byte-identical files).
#pragma once

#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "trace/trace_log.hpp"

namespace netsession::obs {

struct SamplerConfig {
    /// Whether the periodic sampler runs at all. With NS_METRICS=OFF builds
    /// the sampler never starts regardless (there is nothing to observe).
    bool enabled = true;
    /// Snapshot cadence in simulated time. One hour keeps a month-long
    /// standard scenario at ~720 points per series — detailed enough for
    /// `nstrace metrics`, negligible against millions of log records.
    sim::Duration interval = sim::hours(1.0);
};

class Sampler {
public:
    /// `sim`, `registry`, and `log` must outlive the sampler.
    Sampler(sim::Simulator& sim, const Registry& registry, trace::TraceLog& log,
            SamplerConfig config);

    Sampler(const Sampler&) = delete;
    Sampler& operator=(const Sampler&) = delete;

    /// Starts periodic sampling: one snapshot every `interval`, beginning
    /// one interval from now, until (and including a final snapshot at)
    /// `until`. Call once, after every metric is registered — series ids are
    /// interned in registry order on the first tick.
    void start(sim::SimTime until);

    /// Takes one snapshot immediately (also used for the final sample).
    void sample_now();

    /// Takes the closing snapshot, exactly once — idempotent, so a cadence
    /// that happens to land a tick on the window end does not duplicate it.
    /// Simulation::run() calls this after the driver finishes so every run
    /// ends with the final registry state in the trace even when the
    /// interval does not divide the window.
    void finish();

    [[nodiscard]] std::uint64_t samples_taken() const noexcept { return samples_taken_; }

private:
    void tick();
    void intern_ids();

    sim::Simulator* sim_;
    const Registry* registry_;
    trace::TraceLog* log_;
    SamplerConfig config_;
    sim::SimTime until_{};
    bool ids_interned_ = false;
    bool final_taken_ = false;
    std::uint64_t samples_taken_ = 0;
    /// Per-entry interned series ids; histograms use [count_id, sum_id].
    struct SeriesIds {
        std::uint32_t primary = 0;
        std::uint32_t sum = 0;
    };
    std::vector<SeriesIds> ids_;
};

}  // namespace netsession::obs
