// Runtime observability: named counters, gauges, and log-bucketed histograms
// behind a registry that the periodic sampler (obs/sampler.hpp) snapshots
// into the trace and the exporters (obs/export.hpp) render as JSON or
// Prometheus text.
//
// Design goals, in order:
//
//  1. *Zero overhead when compiled out.* Building with -DNS_METRICS=OFF
//     (CMake) defines NS_METRICS_ENABLED=0 and every NS_OBS_* macro expands
//     to nothing — no loads, no stores, no branches in the hot paths. The
//     types still exist so subsystem struct layouts and the registry API
//     stay identical in both flavours.
//
//  2. *Cheap when enabled.* An increment is a single add on a plain member —
//     no atomics (simulations are single-threaded by design, like the
//     simulator itself), no name lookups, no indirection. Subsystems own
//     their metric structs as ordinary members and register *pointers* with
//     the registry once at wiring time; naming cost is paid at registration
//     and sampling, never per increment.
//
//  3. *Deterministic.* Metrics are pure functions of the simulation: no
//     wall-clock, no addresses, no iteration over unordered containers.
//     Sampling them into the trace preserves the byte-identity contract
//     (same seed => same file, docs/SIMULATOR.md §3).
//
// Metric naming scheme (docs/OBSERVABILITY.md): dot-separated
// `<subsystem>.<noun>[_<unit>]`, e.g. `control.logins`, `edge.bytes_served`,
// `client.edge_stalls`, `flow.active`. Histograms expand into `<name>.count`
// and `<name>.sum` series when sampled.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/flat_hash.hpp"

#ifndef NS_METRICS_ENABLED
#define NS_METRICS_ENABLED 1
#endif

namespace netsession::obs {

/// Monotonically increasing event count. Wraps modulo 2^64 on overflow
/// (well-defined unsigned arithmetic; see tests/obs/test_metrics.cpp).
struct Counter {
    std::uint64_t value = 0;
    void inc(std::uint64_t n = 1) noexcept { value += n; }
    [[nodiscard]] std::uint64_t get() const noexcept { return value; }
};

/// A point-in-time level that can move both ways (queue depth, availability).
struct Gauge {
    double value = 0.0;
    void set(double v) noexcept { value = v; }
    void add(double d) noexcept { value += d; }
    [[nodiscard]] double get() const noexcept { return value; }
};

/// Log2-bucketed histogram of non-negative values. Bucket b holds values in
/// (2^(b-1), 2^b]; values <= 1 land in bucket 0; values beyond the last
/// boundary clamp into the last bucket. 64 buckets cover every uint64 byte
/// count and every sane duration in microseconds.
struct Histogram {
    static constexpr int kBuckets = 64;

    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t count = 0;
    double sum = 0.0;

    /// Bucket index for a value (clamped; negatives count as 0).
    [[nodiscard]] static int bucket_of(double v) noexcept {
        if (!(v > 1.0)) return 0;  // <=1, zero, negative, NaN
        const int b = static_cast<int>(std::ceil(std::log2(v)));
        return b >= kBuckets ? kBuckets - 1 : b;
    }
    /// Inclusive upper boundary of bucket b (2^b).
    [[nodiscard]] static double bucket_hi(int b) noexcept { return std::ldexp(1.0, b); }
    /// Exclusive lower boundary of bucket b (2^(b-1); bucket 0 starts at 0).
    [[nodiscard]] static double bucket_lo(int b) noexcept {
        return b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
    }

    void record(double v) noexcept {
        ++buckets[static_cast<std::size_t>(bucket_of(v))];
        ++count;
        sum += v;
    }
    [[nodiscard]] double mean() const noexcept {
        return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
};

/// What a registry entry measures.
enum class Kind : std::uint8_t { counter, gauge, histogram };

[[nodiscard]] constexpr std::string_view to_string(Kind k) noexcept {
    switch (k) {
        case Kind::counter: return "counter";
        case Kind::gauge: return "gauge";
        case Kind::histogram: return "histogram";
    }
    return "unknown";
}

/// The registry: a flat, registration-ordered list of named metrics. One per
/// Simulation; subsystems register their metric structs at wiring time and
/// the sampler/exporters walk the list. Registration order is part of the
/// determinism contract (it fixes metric ids in the trace), so register
/// everything before the run starts and in a stable order.
class Registry {
public:
    struct Entry {
        std::string name;
        Kind kind = Kind::counter;
        const Counter* counter = nullptr;
        const Gauge* gauge = nullptr;
        const Histogram* histogram = nullptr;
        std::function<double()> computed;  // computed gauges (queue depths, ...)
    };

    /// Registration. Names must be unique; duplicates are ignored (first
    /// registration wins) so re-wiring in tests is harmless.
    void add_counter(std::string name, const Counter* c);
    void add_gauge(std::string name, const Gauge* g);
    /// A gauge computed on demand (e.g. a queue depth derived from container
    /// sizes). The callback must be cheap and deterministic.
    void add_computed(std::string name, std::function<double()> fn);
    void add_histogram(std::string name, const Histogram* h);

    [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
    [[nodiscard]] const std::vector<Entry>& entries() const noexcept { return entries_; }

    /// Current scalar value of an entry: counter value, gauge level, or — for
    /// histograms — the observation count (the sampler additionally emits the
    /// sum as its own series).
    [[nodiscard]] static double scalar_value(const Entry& e);

    /// Looks an entry up by name; nullptr if absent. O(1) via a side index;
    /// iteration stays registration-ordered through entries().
    [[nodiscard]] const Entry* find(std::string_view name) const;

private:
    /// Transparent hasher so find(string_view) never materialises a string.
    struct NameHash {
        using is_transparent = void;
        [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
            return std::hash<std::string_view>{}(s);
        }
    };

    std::vector<Entry> entries_;
    /// name -> index into entries_. The index only serves lookups; iteration
    /// order (and thus metric ids in the trace) comes from entries_ alone.
    FlatHashMap<std::string, std::uint32_t, NameHash> index_;
};

}  // namespace netsession::obs

// --- increment macros (compiled out with NS_METRICS=OFF) ---------------------
//
// Direct forms operate on a metric struct lvalue; the *_P forms go through a
// possibly-null pointer to a shared metrics block (used by per-client code
// where thousands of instances share one block owned by the driver).
#if NS_METRICS_ENABLED
#define NS_OBS_INC(counter) ((counter).inc())
#define NS_OBS_ADD(counter, n) ((counter).inc(static_cast<std::uint64_t>(n)))
#define NS_OBS_SET(gauge, v) ((gauge).set(static_cast<double>(v)))
#define NS_OBS_OBSERVE(hist, v) ((hist).record(static_cast<double>(v)))
#define NS_OBS_INC_P(ptr, field) ((ptr) != nullptr ? (ptr)->field.inc() : void(0))
#define NS_OBS_ADD_P(ptr, field, n) \
    ((ptr) != nullptr ? (ptr)->field.inc(static_cast<std::uint64_t>(n)) : void(0))
#define NS_OBS_OBSERVE_P(ptr, field, v) \
    ((ptr) != nullptr ? (ptr)->field.record(static_cast<double>(v)) : void(0))
#else
#define NS_OBS_INC(counter) ((void)0)
#define NS_OBS_ADD(counter, n) ((void)0)
#define NS_OBS_SET(gauge, v) ((void)0)
#define NS_OBS_OBSERVE(hist, v) ((void)0)
#define NS_OBS_INC_P(ptr, field) ((void)0)
#define NS_OBS_ADD_P(ptr, field, n) ((void)0)
#define NS_OBS_OBSERVE_P(ptr, field, v) ((void)0)
#endif
