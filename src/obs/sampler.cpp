#include "obs/sampler.hpp"

namespace netsession::obs {

Sampler::Sampler(sim::Simulator& sim, const Registry& registry, trace::TraceLog& log,
                 SamplerConfig config)
    : sim_(&sim), registry_(&registry), log_(&log), config_(config) {}

void Sampler::start(sim::SimTime until) {
    if (!config_.enabled || config_.interval.us <= 0) return;
    until_ = until;
    sim_->schedule_after(config_.interval, [this] { tick(); });
}

void Sampler::intern_ids() {
    if (ids_interned_) return;
    ids_interned_ = true;
    ids_.reserve(registry_->size());
    for (const auto& e : registry_->entries()) {
        SeriesIds ids;
        if (e.kind == Kind::histogram) {
            ids.primary = log_->intern_metric(e.name + ".count");
            ids.sum = log_->intern_metric(e.name + ".sum");
        } else {
            ids.primary = log_->intern_metric(e.name);
        }
        ids_.push_back(ids);
    }
}

void Sampler::sample_now() {
    intern_ids();
    const sim::SimTime now = sim_->now();
    const auto& entries = registry_->entries();
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const auto& e = entries[i];
        trace::MetricPointRecord point;
        point.time = now;
        point.metric = ids_[i].primary;
        point.value = Registry::scalar_value(e);
        log_->add(point);
        if (e.kind == Kind::histogram) {
            trace::MetricPointRecord sum;
            sum.time = now;
            sum.metric = ids_[i].sum;
            sum.value = e.histogram->sum;
            log_->add(sum);
        }
    }
    ++samples_taken_;
}

void Sampler::finish() {
    if (!config_.enabled || final_taken_) return;
    final_taken_ = true;
    sample_now();
}

void Sampler::tick() {
    if (sim_->now() >= until_) {
        finish();
        return;
    }
    sample_now();
    sim_->schedule_after(config_.interval, [this] { tick(); });
}

}  // namespace netsession::obs
