#include "obs/parallel_metrics.hpp"

#include "common/parallel.hpp"

namespace netsession::obs {

void register_parallel_metrics(Registry& registry) {
    using parallel::stats;
    registry.add_computed("parallel.threads",
                          [] { return static_cast<double>(stats().threads); });
    registry.add_computed("parallel.jobs", [] { return static_cast<double>(stats().jobs); });
    registry.add_computed("parallel.inline_jobs",
                          [] { return static_cast<double>(stats().inline_jobs); });
    registry.add_computed("parallel.chunks", [] { return static_cast<double>(stats().chunks); });
    registry.add_computed("parallel.chunks_stolen",
                          [] { return static_cast<double>(stats().chunks_stolen); });
    registry.add_computed("parallel.merges", [] { return static_cast<double>(stats().merges); });
    registry.add_computed("parallel.merge_order_checks",
                          [] { return static_cast<double>(stats().merge_order_checks); });
}

}  // namespace netsession::obs
