#include "obs/process_memory.hpp"

#include <cstdio>
#include <cstring>

namespace netsession::obs {

namespace {

/// Parses "VmRSS:     123456 kB" style lines; returns bytes, 0 if absent.
std::size_t parse_kb_line(const char* line, const char* key) {
    const std::size_t key_len = std::strlen(key);
    if (std::strncmp(line, key, key_len) != 0) return 0;
    unsigned long long kb = 0;
    if (std::sscanf(line + key_len, " %llu", &kb) != 1) return 0;
    return static_cast<std::size_t>(kb) * 1024;
}

}  // namespace

ProcessMemory read_process_memory() {
    ProcessMemory m;
    std::FILE* f = std::fopen("/proc/self/status", "r");
    if (f == nullptr) return m;
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
        if (std::size_t v = parse_kb_line(line, "VmRSS:"); v != 0) m.rss_bytes = v;
        if (std::size_t v = parse_kb_line(line, "VmHWM:"); v != 0) m.peak_rss_bytes = v;
    }
    std::fclose(f);
    return m;
}

void register_process_memory_metrics(Registry& registry) {
    registry.add_computed("process.rss_bytes", [] {
        return static_cast<double>(read_process_memory().rss_bytes);
    });
    registry.add_computed("process.peak_rss_bytes", [] {
        return static_cast<double>(read_process_memory().peak_rss_bytes);
    });
}

}  // namespace netsession::obs
