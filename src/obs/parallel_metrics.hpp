// Computed gauges over the parallel runtime's process-wide counters
// (common/parallel.hpp): jobs, chunks, merge counts, configured threads.
// Deliberately NOT registered by Simulation — the sampled values depend on
// how much analysis has run in the process, which would put wall-clock-ish
// nondeterminism into the trace. Tools and benches that want the numbers in
// their own exports (e.g. the BENCH_headline "analysis" section) register
// them into a local registry instead.
#pragma once

#include "obs/metrics.hpp"

namespace netsession::obs {

/// Registers the `parallel.*` computed gauges into `registry`.
void register_parallel_metrics(Registry& registry);

}  // namespace netsession::obs
