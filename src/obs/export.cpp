#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>

namespace netsession::obs {

namespace {

/// Shortest decimal form that round-trips the double exactly — deterministic
/// across runs and standard-conforming printf implementations, and stable
/// enough for byte-exact golden files.
std::string fmt_double(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // Prefer the shorter %g form when it round-trips (keeps integers and
    // simple fractions human-readable in golden files).
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%g", v);
    double back = 0.0;
    std::sscanf(shorter, "%lf", &back);
    return back == v ? shorter : buf;
}

std::string fmt_u64(std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return buf;
}

std::string prometheus_name(const std::string& name) {
    std::string out = name;
    for (char& c : out)
        if (c == '.' || c == '-') c = '_';
    return out;
}

}  // namespace

std::string to_json(const Registry& registry, int indent) {
    const std::string pad(static_cast<std::size_t>(indent < 0 ? 0 : indent), ' ');
    const std::string pad2 = pad + pad;
    const std::string pad3 = pad2 + pad;
    std::string out = "{\n";
    const auto& entries = registry.entries();
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const auto& e = entries[i];
        out += pad + "\"" + e.name + "\": ";
        switch (e.kind) {
            case Kind::counter: out += fmt_u64(e.counter->value); break;
            case Kind::gauge: out += fmt_double(Registry::scalar_value(e)); break;
            case Kind::histogram: {
                const Histogram& h = *e.histogram;
                out += "{\n";
                out += pad2 + "\"count\": " + fmt_u64(h.count) + ",\n";
                out += pad2 + "\"sum\": " + fmt_double(h.sum) + ",\n";
                out += pad2 + "\"mean\": " + fmt_double(h.mean()) + ",\n";
                out += pad2 + "\"buckets\": [";
                bool first = true;
                for (int b = 0; b < Histogram::kBuckets; ++b) {
                    const std::uint64_t n = h.buckets[static_cast<std::size_t>(b)];
                    if (n == 0) continue;
                    out += first ? "\n" : ",\n";
                    first = false;
                    out += pad3 + "[" + fmt_double(Histogram::bucket_hi(b)) + ", " + fmt_u64(n) +
                           "]";
                }
                out += first ? "]" : "\n" + pad2 + "]";
                out += "\n" + pad + "}";
                break;
            }
        }
        out += i + 1 < entries.size() ? ",\n" : "\n";
    }
    out += "}\n";
    return out;
}

std::string to_prometheus(const Registry& registry) {
    std::string out;
    for (const auto& e : registry.entries()) {
        const std::string name = prometheus_name(e.name);
        switch (e.kind) {
            case Kind::counter:
                out += "# TYPE " + name + " counter\n";
                out += name + " " + fmt_u64(e.counter->value) + "\n";
                break;
            case Kind::gauge:
                out += "# TYPE " + name + " gauge\n";
                out += name + " " + fmt_double(Registry::scalar_value(e)) + "\n";
                break;
            case Kind::histogram: {
                const Histogram& h = *e.histogram;
                out += "# TYPE " + name + " histogram\n";
                std::uint64_t cumulative = 0;
                for (int b = 0; b < Histogram::kBuckets; ++b) {
                    const std::uint64_t n = h.buckets[static_cast<std::size_t>(b)];
                    cumulative += n;
                    if (n == 0) continue;  // sparse: only non-empty boundaries
                    out += name + "_bucket{le=\"" + fmt_double(Histogram::bucket_hi(b)) + "\"} " +
                           fmt_u64(cumulative) + "\n";
                }
                out += name + "_bucket{le=\"+Inf\"} " + fmt_u64(h.count) + "\n";
                out += name + "_sum " + fmt_double(h.sum) + "\n";
                out += name + "_count " + fmt_u64(h.count) + "\n";
                break;
            }
        }
    }
    return out;
}

}  // namespace netsession::obs
