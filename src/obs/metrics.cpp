#include "obs/metrics.hpp"

namespace netsession::obs {

namespace {
bool name_taken(const std::vector<Registry::Entry>& entries, std::string_view name) {
    for (const auto& e : entries)
        if (e.name == name) return true;
    return false;
}
}  // namespace

void Registry::add_counter(std::string name, const Counter* c) {
    if (c == nullptr || name_taken(entries_, name)) return;
    Entry e;
    e.name = std::move(name);
    e.kind = Kind::counter;
    e.counter = c;
    entries_.push_back(std::move(e));
}

void Registry::add_gauge(std::string name, const Gauge* g) {
    if (g == nullptr || name_taken(entries_, name)) return;
    Entry e;
    e.name = std::move(name);
    e.kind = Kind::gauge;
    e.gauge = g;
    entries_.push_back(std::move(e));
}

void Registry::add_computed(std::string name, std::function<double()> fn) {
    if (!fn || name_taken(entries_, name)) return;
    Entry e;
    e.name = std::move(name);
    e.kind = Kind::gauge;
    e.computed = std::move(fn);
    entries_.push_back(std::move(e));
}

void Registry::add_histogram(std::string name, const Histogram* h) {
    if (h == nullptr || name_taken(entries_, name)) return;
    Entry e;
    e.name = std::move(name);
    e.kind = Kind::histogram;
    e.histogram = h;
    entries_.push_back(std::move(e));
}

double Registry::scalar_value(const Entry& e) {
    switch (e.kind) {
        case Kind::counter: return static_cast<double>(e.counter->value);
        case Kind::gauge: return e.computed ? e.computed() : e.gauge->value;
        case Kind::histogram: return static_cast<double>(e.histogram->count);
    }
    return 0.0;
}

const Registry::Entry* Registry::find(std::string_view name) const {
    for (const auto& e : entries_)
        if (e.name == name) return &e;
    return nullptr;
}

}  // namespace netsession::obs
