#include "obs/metrics.hpp"

namespace netsession::obs {

void Registry::add_counter(std::string name, const Counter* c) {
    if (c == nullptr || index_.contains(std::string_view{name})) return;
    Entry e;
    e.name = std::move(name);
    e.kind = Kind::counter;
    e.counter = c;
    index_[e.name] = static_cast<std::uint32_t>(entries_.size());
    entries_.push_back(std::move(e));
}

void Registry::add_gauge(std::string name, const Gauge* g) {
    if (g == nullptr || index_.contains(std::string_view{name})) return;
    Entry e;
    e.name = std::move(name);
    e.kind = Kind::gauge;
    e.gauge = g;
    index_[e.name] = static_cast<std::uint32_t>(entries_.size());
    entries_.push_back(std::move(e));
}

void Registry::add_computed(std::string name, std::function<double()> fn) {
    if (!fn || index_.contains(std::string_view{name})) return;
    Entry e;
    e.name = std::move(name);
    e.kind = Kind::gauge;
    e.computed = std::move(fn);
    index_[e.name] = static_cast<std::uint32_t>(entries_.size());
    entries_.push_back(std::move(e));
}

void Registry::add_histogram(std::string name, const Histogram* h) {
    if (h == nullptr || index_.contains(std::string_view{name})) return;
    Entry e;
    e.name = std::move(name);
    e.kind = Kind::histogram;
    e.histogram = h;
    index_[e.name] = static_cast<std::uint32_t>(entries_.size());
    entries_.push_back(std::move(e));
}

double Registry::scalar_value(const Entry& e) {
    switch (e.kind) {
        case Kind::counter: return static_cast<double>(e.counter->value);
        case Kind::gauge: return e.computed ? e.computed() : e.gauge->value;
        case Kind::histogram: return static_cast<double>(e.histogram->count);
    }
    return 0.0;
}

const Registry::Entry* Registry::find(std::string_view name) const {
    const std::uint32_t* idx = index_.find_value(name);
    return idx == nullptr ? nullptr : &entries_[*idx];
}

}  // namespace netsession::obs
