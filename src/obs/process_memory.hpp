// Process-level memory readings (current and peak RSS) from
// /proc/self/status. Like the parallel.* gauges (obs/parallel_metrics.hpp),
// these are deliberately NOT registered by Simulation: RSS depends on the
// allocator, the platform, and whatever else ran in the process, so sampling
// it into the trace would break the byte-identity contract. Benches fold the
// readings into BENCH_headline.json and tools may register them locally.
#pragma once

#include <cstddef>

#include "obs/metrics.hpp"

namespace netsession::obs {

struct ProcessMemory {
    std::size_t rss_bytes = 0;       ///< VmRSS — resident set right now
    std::size_t peak_rss_bytes = 0;  ///< VmHWM — resident high-water mark
};

/// Reads /proc/self/status; all-zero on platforms without procfs.
[[nodiscard]] ProcessMemory read_process_memory();

/// Registers `process.rss_bytes` / `process.peak_rss_bytes` computed gauges
/// into `registry`. Never call this on a Simulation's sampled registry.
void register_process_memory_metrics(Registry& registry);

}  // namespace netsession::obs
