// Metric exporters: render a Registry's current state as JSON (machine-
// readable artefacts like BENCH_headline.json and the golden-metrics
// regression snapshot) or as Prometheus text-exposition format (future wire
// export; the format is stable and scrape-ready).
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace netsession::obs {

/// JSON object keyed by metric name. Counters/gauges render as scalars;
/// histograms as {"count", "sum", "mean", "buckets": [[hi, n], ...]} with
/// empty buckets omitted. Deterministic: registration order, fixed float
/// formatting (%.17g round-trips doubles exactly).
[[nodiscard]] std::string to_json(const Registry& registry, int indent = 2);

/// Prometheus text exposition (one `# TYPE` line plus samples per metric).
/// Dots in metric names become underscores; histograms emit cumulative
/// `_bucket{le="..."}` samples plus `_count` and `_sum`, as the format
/// requires.
[[nodiscard]] std::string to_prometheus(const Registry& registry);

}  // namespace netsession::obs
