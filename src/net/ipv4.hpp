// IPv4 address model. Addresses are allocated from per-AS blocks by the
// population generator; the geo database (EdgeScape substitute) resolves them
// back to location and AS.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace netsession::net {

/// An IPv4 address as a host-order 32-bit integer.
struct IpAddr {
    std::uint32_t value = 0;

    friend constexpr auto operator<=>(const IpAddr&, const IpAddr&) = default;

    [[nodiscard]] std::string to_string() const {
        return std::to_string((value >> 24) & 0xFF) + "." + std::to_string((value >> 16) & 0xFF) +
               "." + std::to_string((value >> 8) & 0xFF) + "." + std::to_string(value & 0xFF);
    }
};

/// A CIDR prefix.
struct Prefix {
    std::uint32_t base = 0;
    int length = 0;  // 0..32

    [[nodiscard]] constexpr bool contains(IpAddr a) const noexcept {
        if (length <= 0) return true;
        const std::uint32_t mask = length >= 32 ? ~0u : ~((1u << (32 - length)) - 1u);
        return (a.value & mask) == (base & mask);
    }
    [[nodiscard]] constexpr std::uint32_t size() const noexcept {
        return length >= 32 ? 1u : (1u << (32 - length));
    }
};

}  // namespace netsession::net

namespace std {
template <>
struct hash<netsession::net::IpAddr> {
    size_t operator()(const netsession::net::IpAddr& a) const noexcept {
        // Fibonacci hashing; IPs cluster in prefixes so identity hash is poor.
        return static_cast<size_t>(a.value * 0x9E3779B97F4A7C15ULL);
    }
};
}  // namespace std
