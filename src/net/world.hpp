// The simulated internet: hosts with network attachment (location, AS, IP,
// NAT), a latency model, message passing, and the flow-level data plane.
// Everything above this layer (edge servers, control plane, peers) addresses
// other parties by HostId and communicates through World.
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/as_graph.hpp"
#include "net/flow.hpp"
#include "net/geo.hpp"
#include "net/geodb.hpp"
#include "net/nat.hpp"
#include "net/world_data.hpp"
#include "sim/simulator.hpp"

namespace netsession::net {

/// Network attachment of a host at a point in time. Peers can re-attach
/// (mobility, §6.2); servers never do.
struct Attachment {
    Location location;
    Asn asn{};
    IpAddr ip;
    NatType nat = NatType::open;
};

/// Everything the network layer knows about a host.
struct HostInfo {
    Attachment attach;
    Rate up = kUnlimited;
    Rate down = kUnlimited;
    bool is_server = false;
};

class World {
public:
    World(sim::Simulator& sim, AsGraph as_graph)
        : sim_(&sim), flows_(sim), as_graph_(std::move(as_graph)) {}

    World(const World&) = delete;
    World& operator=(const World&) = delete;

    /// Creates a host; allocates an IP in the attachment's AS if none given
    /// and registers it with the geo database.
    HostId create_host(HostInfo info);

    /// Re-attaches a host elsewhere (user mobility / IP churn). A fresh IP is
    /// allocated from the new AS and registered with the geo database.
    void reattach(HostId h, Location location, Asn asn, NatType nat);

    [[nodiscard]] const HostInfo& host(HostId h) const { return hosts_[h.value]; }
    [[nodiscard]] std::size_t host_count() const noexcept { return hosts_.size(); }

    [[nodiscard]] RegionId region_of(HostId h) const {
        return country(hosts_[h.value].attach.location.country).region;
    }

    /// One-way control-message latency between two hosts: propagation from
    /// great-circle distance plus processing/queueing, with an inter-AS hop
    /// penalty. Deterministic; callers add jitter where it matters.
    [[nodiscard]] sim::Duration latency(HostId a, HostId b) const;

    /// Delivers `fn` at the destination after one-way latency. The caller is
    /// responsible for the destination object outliving delivery.
    void send(HostId from, HostId to, std::function<void()> fn);

    [[nodiscard]] sim::Simulator& simulator() noexcept { return *sim_; }
    [[nodiscard]] FlowNetwork& flows() noexcept { return flows_; }
    [[nodiscard]] const FlowNetwork& flows() const noexcept { return flows_; }
    [[nodiscard]] AsGraph& as_graph() noexcept { return as_graph_; }
    [[nodiscard]] const AsGraph& as_graph() const noexcept { return as_graph_; }
    [[nodiscard]] GeoDatabase& geodb() noexcept { return geodb_; }
    [[nodiscard]] const GeoDatabase& geodb() const noexcept { return geodb_; }

private:
    sim::Simulator* sim_;
    FlowNetwork flows_;
    AsGraph as_graph_;
    GeoDatabase geodb_;
    std::vector<HostInfo> hosts_;
};

}  // namespace netsession::net
