// The simulated internet: hosts with network attachment (location, AS, IP,
// NAT), a latency model, message passing, and the flow-level data plane.
// Everything above this layer (edge servers, control plane, peers) addresses
// other parties by HostId and communicates through World.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/as_graph.hpp"
#include "net/flow.hpp"
#include "net/geo.hpp"
#include "net/geodb.hpp"
#include "net/nat.hpp"
#include "net/world_data.hpp"
#include "sim/simulator.hpp"

namespace netsession::net {

/// Lower bound on World::latency() for any host pair: ~1 ms of processing
/// before distance, AS-hop penalties, and fault multipliers (all >= 1) are
/// added. This is the conservative lookahead the sharded simulator windows
/// are derived from (docs/PARALLELISM.md): no message sent inside a window
/// can arrive before the window ends.
inline constexpr sim::Duration kLatencyFloor = sim::milliseconds(1.0);

/// Network attachment of a host at a point in time. Peers can re-attach
/// (mobility, §6.2); servers never do.
struct Attachment {
    Location location;
    Asn asn{};
    IpAddr ip;
    NatType nat = NatType::open;
};

/// Everything the network layer knows about a host.
struct HostInfo {
    Attachment attach;
    Rate up = kUnlimited;
    Rate down = kUnlimited;
    bool is_server = false;
};

class World {
public:
    World(sim::Simulator& sim, AsGraph as_graph)
        : sim_(&sim), flows_(sim), as_graph_(std::move(as_graph)) {}

    World(const World&) = delete;
    World& operator=(const World&) = delete;

    /// Region-shards the world: each host is pinned, at creation, to shard
    /// `region % shards` (a pure function of the static region table, so the
    /// decomposition depends only on the shard count). Must be called before
    /// any host exists and match the simulator's configure_shards(). With
    /// shards == 1 (default) every path below is the legacy single-queue one.
    void configure_shards(int shards);
    [[nodiscard]] int shards() const noexcept { return shard_count_; }
    /// Shard a host is pinned to. Pinned at creation; reattach() (mobility)
    /// deliberately does NOT re-home the host — its event lane is part of
    /// its identity, and a lane change mid-flight would tear timers away
    /// from their events.
    [[nodiscard]] int host_shard(HostId h) const noexcept {
        return shard_count_ == 1 ? 0 : static_cast<int>(host_lane_[h.value]);
    }

    /// Schedules `fn` in `h`'s shard after `delay` — for setup code and
    /// fault/driver mass events that act on a host from outside its lane.
    /// From inside another shard's window this routes through the
    /// cross-shard outbox (inert handle); same-shard and setup contexts get
    /// a direct, cancellable push.
    sim::EventHandle schedule_for(HostId h, sim::Duration delay, sim::Simulator::Callback fn);
    /// Same, at an absolute time.
    sim::EventHandle schedule_for_at(HostId h, sim::SimTime at, sim::Simulator::Callback fn);

    /// Creates a host; allocates an IP in the attachment's AS if none given
    /// and registers it with the geo database.
    HostId create_host(HostInfo info);

    /// Re-attaches a host elsewhere (user mobility / IP churn). A fresh IP is
    /// allocated from the new AS and registered with the geo database.
    void reattach(HostId h, Location location, Asn asn, NatType nat);

    [[nodiscard]] const HostInfo& host(HostId h) const { return hosts_[h.value]; }
    [[nodiscard]] std::size_t host_count() const noexcept { return hosts_.size(); }

    [[nodiscard]] RegionId region_of(HostId h) const {
        return country(hosts_[h.value].attach.location.country).region;
    }

    /// One-way control-message latency between two hosts: propagation from
    /// great-circle distance plus processing/queueing, with an inter-AS hop
    /// penalty. Deterministic; callers add jitter where it matters.
    [[nodiscard]] sim::Duration latency(HostId a, HostId b) const;

    /// Delivers `fn` at the destination after one-way latency. The caller is
    /// responsible for the destination object outliving delivery. Messages
    /// crossing an active partition are dropped, as are messages that lose a
    /// Bernoulli draw against an endpoint AS's fault loss rate.
    void send(HostId from, HostId to, std::function<void()> fn);

    /// Changes a host's nominal link capacity. Prefer these over mutating
    /// `flows()` directly: the world remembers the nominal value and applies
    /// any active AS degradation factor on top, so fault restore does not
    /// clobber throttling (and vice versa).
    void set_host_up_capacity(HostId h, Rate up);
    void set_host_down_capacity(HostId h, Rate down);

    // --- Fault hooks (driven by fault::FaultEngine; no-cost when unused) ---

    /// Severs communication between two regions; `b < 0` cuts `a` off from
    /// every other region. Messages across the cut are dropped and active
    /// flows crossing it are cancelled (their completions never fire — the
    /// receiving side must detect the stall). Cuts nest: each call needs a
    /// matching heal_partition.
    void partition_regions(int a, int b);
    void heal_partition(int a, int b);
    /// True when `a` and `b` can currently exchange messages / move bytes.
    [[nodiscard]] bool reachable(HostId a, HostId b) const;
    [[nodiscard]] bool regions_reachable(RegionId a, RegionId b) const;

    /// Degrades one AS's links: one-way latency multiplier, link capacity
    /// multiplier applied to attached non-server hosts (clamped to >= 0.01 so
    /// flows slow to a crawl rather than freezing), and per-message loss
    /// probability. Degradations *stack*: each call pushes an independent
    /// layer and returns a token identifying it; overlapping faults compose
    /// (latency/rate multiply, losses combine as 1-Π(1-loss)). Removing a
    /// layer with restore_as(asn, token) recomputes the effective factors
    /// from the remaining layers in order, so restoring every layer lands on
    /// the exact pre-fault state (overlap-restore is byte-exact). Loss draws
    /// come from a dedicated constant-seeded stream and only happen while a
    /// loss fault is active, so fault-free runs are byte-identical to
    /// pre-fault builds.
    std::uint32_t degrade_as(Asn asn, double latency_factor, double rate_factor, double loss);
    void restore_as(Asn asn, std::uint32_t token);
    /// Removes every degradation layer on `asn` (manual injection / tests).
    void restore_as(Asn asn);
    /// Total degradation layers currently active across all ASes.
    [[nodiscard]] int active_as_degradations() const noexcept;

    /// Cancels every active flow touching `h` (host crash / server failure);
    /// completion callbacks are not invoked. Returns how many were cut.
    int drop_host_flows(HostId h);

    [[nodiscard]] sim::Simulator& simulator() noexcept { return *sim_; }
    [[nodiscard]] FlowNetwork& flows() noexcept { return flows_; }
    [[nodiscard]] const FlowNetwork& flows() const noexcept { return flows_; }
    [[nodiscard]] AsGraph& as_graph() noexcept { return as_graph_; }
    [[nodiscard]] const AsGraph& as_graph() const noexcept { return as_graph_; }
    [[nodiscard]] GeoDatabase& geodb() noexcept { return geodb_; }
    [[nodiscard]] const GeoDatabase& geodb() const noexcept { return geodb_; }

private:
    /// One active degradation layer on an AS.
    struct AsFaultLayer {
        std::uint32_t token = 0;
        double latency_factor = 1.0;
        double rate_factor = 1.0;
        double loss = 0.0;
    };
    /// All layers on one AS plus the cached effective factors the hot paths
    /// read. Effective values are recomputed as ordered products whenever a
    /// layer is added or removed — never by dividing a factor back out, which
    /// would not round-trip in floating point.
    struct AsFault {
        std::vector<AsFaultLayer> layers;
        double latency_factor = 1.0;
        double rate_factor = 1.0;
        double loss = 0.0;

        void recompute() noexcept;
    };

    /// Reapplies a host's effective capacities from its nominal values and
    /// the active degradation factor of its AS.
    void apply_capacity(HostId h);
    [[nodiscard]] double as_latency_factor(Asn asn) const;
    void change_partition(int a, int b, int delta);
    void cut_partitioned_flows();

    sim::Simulator* sim_;
    FlowNetwork flows_;
    AsGraph as_graph_;
    GeoDatabase geodb_;
    std::vector<HostInfo> hosts_;
    // Fault state. partition_count_ is a regions x regions nesting-count
    // matrix, sized lazily on first cut; lookups are O(1) and fault-free runs
    // take the active_partitions_ == 0 fast path.
    std::vector<std::uint16_t> partition_count_;
    int active_partitions_ = 0;
    std::unordered_map<std::uint32_t, AsFault> as_faults_;  // keyed by Asn::value
    std::uint32_t next_as_fault_token_ = 1;
    Rng fault_rng_{0xFA017FA017FA017ULL};  // loss draws only; constant seed
    // Sharded mode only: the shard of every host (pinned at creation) and a
    // loss stream per shard, so draws happen in each lane's own
    // deterministic execution order instead of the global event order
    // (which lane-major windowing permutes).
    int shard_count_ = 1;
    std::vector<std::uint16_t> host_lane_;
    std::vector<Rng> lane_loss_rngs_;
};

}  // namespace netsession::net
