// Geographic primitives: coordinates and great-circle distance.
#pragma once

#include "common/types.hpp"

namespace netsession::net {

/// A point on the globe, degrees.
struct GeoPoint {
    double lat = 0.0;
    double lon = 0.0;

    friend bool operator==(const GeoPoint&, const GeoPoint&) = default;
};

/// Great-circle distance in kilometres (haversine formula). Used for the
/// mobility analysis (§6.2: "77% remained within 10 km") and the latency
/// model.
[[nodiscard]] double haversine_km(GeoPoint a, GeoPoint b) noexcept;

/// A named place a peer can be located at: a country plus a synthetic
/// city-granularity location index with coordinates (EdgeScape resolves IPs
/// to roughly city granularity, paper §4.1).
struct Location {
    CountryId country;
    std::uint32_t city = 0;  // index of the synthetic city within the country
    GeoPoint point;

    friend bool operator==(const Location&, const Location&) = default;
};

}  // namespace netsession::net
