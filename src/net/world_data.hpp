// Static world data: continents, NetSession network regions, and a country
// table with geographic coordinates, population weights for the synthetic
// peer deployment, and broadband characteristics.
//
// The region list substitutes for NetSession's "fewer than 20 network
// regions" (paper §3.7); the country weights are shaped to the paper's
// observed peer distribution (Fig 2: ~27% North America, ~35% Europe,
// sizable South America and Asia, 239 countries/territories total — we model
// the ~60 largest, which carry almost all traffic).
#pragma once

#include <span>
#include <string_view>

#include "common/types.hpp"
#include "net/geo.hpp"

namespace netsession::net {

enum class Continent : std::uint8_t {
    north_america,
    south_america,
    europe,
    africa,
    asia,
    oceania,
};
inline constexpr int kContinentCount = 6;

[[nodiscard]] constexpr std::string_view to_string(Continent c) noexcept {
    switch (c) {
        case Continent::north_america: return "North America";
        case Continent::south_america: return "South America";
        case Continent::europe: return "Europe";
        case Continent::africa: return "Africa";
        case Continent::asia: return "Asia";
        case Continent::oceania: return "Oceania";
    }
    return "unknown";
}

/// One NetSession network region ("defined by proximity to particular groups
/// of servers", §3.7). The deployment has fewer than 20; we define 19.
struct RegionInfo {
    RegionId id;
    std::string_view name;
    Continent continent;
};

/// Broadband access profile of a country. Download/upload are medians of a
/// log-normal; asymmetry (down/up ratio) is what drives the Fig 4 gap in
/// fast networks.
struct BroadbandProfile {
    double down_mbps_median = 10.0;
    double down_sigma = 0.6;   // sigma of the underlying normal
    double asymmetry = 6.0;    // down/up ratio
};

/// Static per-country record.
struct CountryInfo {
    CountryId id;
    std::string_view alpha2;
    std::string_view name;
    Continent continent;
    RegionId region;
    GeoPoint center;
    double spread_deg;    // how widely cities scatter around the center
    double peer_weight;   // share of the global peer population
    BroadbandProfile broadband;
};

/// All regions, indexed by RegionId::value.
[[nodiscard]] std::span<const RegionInfo> regions() noexcept;

/// All countries, indexed by CountryId::value.
[[nodiscard]] std::span<const CountryInfo> countries() noexcept;

[[nodiscard]] const CountryInfo& country(CountryId id) noexcept;
[[nodiscard]] const RegionInfo& region(RegionId id) noexcept;

/// Looks up a country by its ISO alpha-2 code; returns nullptr if unknown.
[[nodiscard]] const CountryInfo* find_country(std::string_view alpha2) noexcept;

}  // namespace netsession::net
