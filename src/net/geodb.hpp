// Geolocation database — the EdgeScape substitute (paper §4.1).
//
// As client IPs are allocated, the deployment registers each address with the
// location and AS it belongs to; the analysis pipeline later resolves IPs
// from the (anonymised) logs exactly like the paper resolves them through
// Akamai's EdgeScape service.
#pragma once

#include <optional>
#include <unordered_map>

#include "common/types.hpp"
#include "net/geo.hpp"
#include "net/ipv4.hpp"

namespace netsession::net {

/// One geolocation record: what EdgeScape returns for an IP.
struct GeoRecord {
    Location location;
    Asn asn;
};

/// IP → geolocation registry.
class GeoDatabase {
public:
    /// Registers (or overwrites) the record for an address.
    void register_ip(IpAddr ip, const GeoRecord& record) { records_[ip] = record; }

    /// Pre-sizes the table for a known entry count (bulk deserialisation).
    void reserve(std::size_t n) { records_.reserve(n); }

    /// Resolves an address; empty if unknown.
    [[nodiscard]] std::optional<GeoRecord> lookup(IpAddr ip) const {
        const auto it = records_.find(ip);
        if (it == records_.end()) return std::nullopt;
        return it->second;
    }

    [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

    /// Visits every (ip, record) pair — used for serialisation.
    template <typename Fn>
    void for_each(Fn&& fn) const {
        for (const auto& [ip, record] : records_) fn(ip, record);
    }

private:
    std::unordered_map<IpAddr, GeoRecord> records_;
};

}  // namespace netsession::net
