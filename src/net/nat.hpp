// NAT and middlebox model.
//
// The paper (§3.7) notes that NAT hole punching is "a complex issue" and that
// the necessary code is a large fraction of the NetSession codebase; the DN
// "selects only peers that are likely to be able to establish a connection
// with each other, e.g., based on the type of their NAT or firewall". This
// module provides the NAT taxonomy, the pairwise traversal-compatibility
// matrix the DN filters with, and per-attempt success probabilities used when
// peers actually try to connect.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace netsession::net {

/// Classic STUN-style NAT classification (cf. RFC 5389 context; NetSession
/// uses a custom protocol with similar goals, paper §3.6).
enum class NatType : std::uint8_t {
    open,             // public IP, no NAT/firewall
    full_cone,
    restricted_cone,
    port_restricted,
    symmetric,
    udp_blocked,      // firewall drops unsolicited and UDP; inbound impossible
};

inline constexpr int kNatTypeCount = 6;

[[nodiscard]] constexpr std::string_view to_string(NatType t) noexcept {
    switch (t) {
        case NatType::open: return "open";
        case NatType::full_cone: return "full_cone";
        case NatType::restricted_cone: return "restricted_cone";
        case NatType::port_restricted: return "port_restricted";
        case NatType::symmetric: return "symmetric";
        case NatType::udp_blocked: return "udp_blocked";
    }
    return "unknown";
}

/// Whether a direct connection between two endpoints behind the given NAT
/// types is possible *in principle* with control-plane-coordinated hole
/// punching. This is the predicate the DN uses to pre-filter candidates.
[[nodiscard]] bool can_traverse(NatType a, NatType b) noexcept;

/// Probability that a coordinated connection attempt between two such
/// endpoints actually succeeds. Real-world punching is flaky even for
/// compatible pairs; incompatible pairs have probability 0.
[[nodiscard]] double traversal_success_probability(NatType a, NatType b) noexcept;

/// A realistic NAT-type mix for consumer broadband populations; index by
/// NatType cast to size_t. Sums to 1.
[[nodiscard]] const std::array<double, kNatTypeCount>& default_nat_mix() noexcept;

}  // namespace netsession::net
