// Synthetic autonomous-system topology.
//
// Substitutes for the Internet's AS-level structure (the paper uses CAIDA's
// AS topology for its §6.1 transit estimate). The generator produces a
// heavy-tailed AS size distribution per country (which yields Fig 9's
// light/heavy uploader split), a tier-1 clique, provider links, and regional
// peering edges (used by Fig 11's "directly connected heavy uploaders").
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/ipv4.hpp"
#include "net/world_data.hpp"

namespace netsession::net {

/// Static description of one autonomous system.
struct AsInfo {
    Asn asn;
    CountryId country;
    int tier = 3;          // 1 = global transit, 2 = national, 3 = access
    double size_weight;    // heavy-tailed; drives how many peers land here
    Prefix prefix;         // address block the AS allocates client IPs from
};

struct AsGraphConfig {
    int total_ases = 2000;       // ASes across all countries (>= #countries)
    int tier1_count = 10;        // global clique
    /// AS size distribution shape. Real ISP populations are extremely
    /// top-heavy (a handful of eyeball networks hold most subscribers);
    /// shape < 1 reproduces Fig 9's "2% of ASes carry 90% of the traffic".
    double pareto_shape = 0.55;
    double peering_mean = 2.0;   // mean # of same-continent peering links
};

/// The AS topology: membership, sizes, and adjacency.
class AsGraph {
public:
    /// Builds a synthetic topology. Deterministic given the rng stream.
    static AsGraph generate(const AsGraphConfig& config, Rng rng);

    [[nodiscard]] std::size_t size() const noexcept { return ases_.size(); }
    [[nodiscard]] const AsInfo& info(Asn asn) const;
    [[nodiscard]] const std::vector<AsInfo>& all() const noexcept { return ases_; }

    /// True if the two ASes share a direct (provider or peering) link.
    [[nodiscard]] bool directly_connected(Asn a, Asn b) const;

    /// Chooses an AS for a new peer in `country`, weighted by AS size.
    [[nodiscard]] Asn pick_for_country(CountryId country, Rng& rng) const;

    /// Allocates a fresh, never-used client IP within the AS's block.
    [[nodiscard]] IpAddr allocate_ip(Asn asn);

    /// Number of direct links in the graph (for tests/stats).
    [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }

private:
    [[nodiscard]] std::size_t index_of(Asn asn) const;
    void add_edge(std::size_t i, std::size_t j);

    std::vector<AsInfo> ases_;
    std::vector<std::uint32_t> next_host_;            // per-AS IP allocation cursor
    std::unordered_set<std::uint64_t> edges_;         // (min_idx << 32) | max_idx
    std::unordered_map<std::uint32_t, std::size_t> by_asn_;
    // Per-country: AS indices and cumulative size weights for fast sampling.
    std::vector<std::vector<std::size_t>> country_ases_;
    std::vector<std::vector<double>> country_cumweight_;
};

}  // namespace netsession::net
