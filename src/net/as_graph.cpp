#include "net/as_graph.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace netsession::net {

namespace {
constexpr std::uint32_t kFirstAsn = 1000;
// Each AS gets a /12 block: 2^20 client addresses, never reused, so every
// allocated IP is globally unique (Table 1 counts distinct IPs).
constexpr int kPrefixLen = 12;

std::uint64_t edge_key(std::size_t i, std::size_t j) noexcept {
    if (i > j) std::swap(i, j);
    return (static_cast<std::uint64_t>(i) << 32) | static_cast<std::uint64_t>(j);
}
}  // namespace

AsGraph AsGraph::generate(const AsGraphConfig& config, Rng rng) {
    AsGraph g;
    const auto world = countries();
    const auto n_countries = world.size();
    if (config.total_ases < static_cast<int>(n_countries))
        throw std::invalid_argument("AsGraphConfig.total_ases must cover every country");
    if (config.total_ases > (1 << kPrefixLen))
        throw std::invalid_argument("too many ASes for the /12 address plan");

    // Distribute AS counts over countries proportionally to peer weight,
    // with at least one AS per country.
    double total_weight = 0.0;
    for (const auto& c : world) total_weight += c.peer_weight;

    std::vector<int> per_country(n_countries, 1);
    int remaining = config.total_ases - static_cast<int>(n_countries);
    for (std::size_t i = 0; i < n_countries && remaining > 0; ++i) {
        const int extra = std::min(
            remaining, static_cast<int>(world[i].peer_weight / total_weight *
                                        static_cast<double>(config.total_ases - static_cast<int>(n_countries))));
        per_country[i] += extra;
        remaining -= extra;
    }
    // Round-off leftovers go to the heaviest countries.
    for (std::size_t i = 0; remaining > 0; i = (i + 1) % n_countries) {
        ++per_country[i];
        --remaining;
    }

    g.country_ases_.resize(n_countries);
    g.country_cumweight_.resize(n_countries);

    std::uint32_t next_asn = kFirstAsn;
    for (std::size_t ci = 0; ci < n_countries; ++ci) {
        for (int k = 0; k < per_country[ci]; ++k) {
            const std::size_t idx = g.ases_.size();
            AsInfo as;
            as.asn = Asn{next_asn++};
            as.country = CountryId{static_cast<std::uint16_t>(ci)};
            as.size_weight = rng.pareto(1.0, config.pareto_shape);
            as.prefix = Prefix{static_cast<std::uint32_t>(idx) << (32 - kPrefixLen), kPrefixLen};
            g.by_asn_[as.asn.value] = idx;
            g.country_ases_[ci].push_back(idx);
            g.ases_.push_back(as);
        }
    }
    g.next_host_.assign(g.ases_.size(), 1);  // skip .0 within each block

    // Tiering: the globally largest ASes form the tier-1 clique; the largest
    // AS within each country is (at least) tier 2.
    std::vector<std::size_t> by_size(g.ases_.size());
    for (std::size_t i = 0; i < by_size.size(); ++i) by_size[i] = i;
    std::sort(by_size.begin(), by_size.end(), [&](std::size_t a, std::size_t b) {
        return g.ases_[a].size_weight > g.ases_[b].size_weight;
    });
    const int t1 = std::min<int>(config.tier1_count, static_cast<int>(g.ases_.size()));
    for (int i = 0; i < t1; ++i) g.ases_[by_size[static_cast<std::size_t>(i)]].tier = 1;
    for (std::size_t ci = 0; ci < n_countries; ++ci) {
        const auto& members = g.country_ases_[ci];
        const auto biggest = *std::max_element(members.begin(), members.end(),
                                               [&](std::size_t a, std::size_t b) {
                                                   return g.ases_[a].size_weight < g.ases_[b].size_weight;
                                               });
        if (g.ases_[biggest].tier == 3) g.ases_[biggest].tier = 2;
    }

    // Tier-1 clique.
    for (int i = 0; i < t1; ++i)
        for (int j = i + 1; j < t1; ++j)
            g.add_edge(by_size[static_cast<std::size_t>(i)], by_size[static_cast<std::size_t>(j)]);

    // Provider links: every non-tier-1 AS connects to 1-3 providers — the
    // national tier-2 AS of its country and/or random tier-1s.
    for (std::size_t i = 0; i < g.ases_.size(); ++i) {
        AsInfo& as = g.ases_[i];
        if (as.tier == 1) continue;
        const auto& members = g.country_ases_[as.country.value];
        // Link to the country's largest AS (its national backbone).
        const auto backbone = *std::max_element(members.begin(), members.end(),
                                                [&](std::size_t a, std::size_t b) {
                                                    return g.ases_[a].size_weight < g.ases_[b].size_weight;
                                                });
        if (backbone != i) g.add_edge(i, backbone);
        // 1-2 upstream tier-1 providers.
        const int ups = static_cast<int>(1 + rng.below(2));
        for (int k = 0; k < ups; ++k)
            g.add_edge(i, by_size[rng.below(static_cast<std::uint64_t>(t1))]);
    }

    // Peering: same-continent edges, preferring large ASes.
    std::vector<std::vector<std::size_t>> by_continent(kContinentCount);
    for (std::size_t i = 0; i < g.ases_.size(); ++i)
        by_continent[static_cast<std::size_t>(country(g.ases_[i].country).continent)].push_back(i);
    for (std::size_t i = 0; i < g.ases_.size(); ++i) {
        const auto& pool =
            by_continent[static_cast<std::size_t>(country(g.ases_[i].country).continent)];
        if (pool.size() < 2) continue;
        const int links = static_cast<int>(rng.below(static_cast<std::uint64_t>(
            std::max(1.0, 2.0 * config.peering_mean))));
        for (int k = 0; k < links; ++k) {
            const std::size_t j = pool[rng.below(pool.size())];
            if (j != i) g.add_edge(i, j);
        }
    }

    // Per-country cumulative weights for peer placement sampling.
    for (std::size_t ci = 0; ci < n_countries; ++ci) {
        double acc = 0.0;
        for (const auto idx : g.country_ases_[ci]) {
            acc += g.ases_[idx].size_weight;
            g.country_cumweight_[ci].push_back(acc);
        }
    }
    return g;
}

void AsGraph::add_edge(std::size_t i, std::size_t j) {
    if (i == j) return;
    edges_.insert(edge_key(i, j));
}

std::size_t AsGraph::index_of(Asn asn) const {
    const auto it = by_asn_.find(asn.value);
    assert(it != by_asn_.end());
    return it->second;
}

const AsInfo& AsGraph::info(Asn asn) const { return ases_[index_of(asn)]; }

bool AsGraph::directly_connected(Asn a, Asn b) const {
    if (a == b) return true;
    const auto ia = by_asn_.find(a.value);
    const auto ib = by_asn_.find(b.value);
    if (ia == by_asn_.end() || ib == by_asn_.end()) return false;
    return edges_.contains(edge_key(ia->second, ib->second));
}

Asn AsGraph::pick_for_country(CountryId country_id, Rng& rng) const {
    const auto& members = country_ases_[country_id.value];
    const auto& cum = country_cumweight_[country_id.value];
    assert(!members.empty());
    const double x = rng.uniform(0.0, cum.back());
    const auto it = std::lower_bound(cum.begin(), cum.end(), x);
    const auto pos = static_cast<std::size_t>(it - cum.begin());
    return ases_[members[std::min(pos, members.size() - 1)]].asn;
}

IpAddr AsGraph::allocate_ip(Asn asn) {
    const std::size_t idx = index_of(asn);
    AsInfo& as = ases_[idx];
    const std::uint32_t host = next_host_[idx]++;
    assert(host < as.prefix.size());
    return IpAddr{as.prefix.base + host};
}

}  // namespace netsession::net
