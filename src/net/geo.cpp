#include "net/geo.hpp"

#include <cmath>
#include <numbers>

namespace netsession::net {

double haversine_km(GeoPoint a, GeoPoint b) noexcept {
    constexpr double kEarthRadiusKm = 6371.0;
    constexpr double deg = std::numbers::pi / 180.0;
    const double dlat = (b.lat - a.lat) * deg;
    const double dlon = (b.lon - a.lon) * deg;
    const double s = std::sin(dlat / 2) * std::sin(dlat / 2) +
                     std::cos(a.lat * deg) * std::cos(b.lat * deg) * std::sin(dlon / 2) *
                         std::sin(dlon / 2);
    return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(s)));
}

}  // namespace netsession::net
