#include "net/nat.hpp"

namespace netsession::net {

namespace {
constexpr std::size_t idx(NatType t) noexcept { return static_cast<std::size_t>(t); }

// success[a][b]: probability that coordinated hole punching succeeds between
// NAT types a and b. Zero means "incompatible in principle". The matrix is
// symmetric. Values reflect the usual punching folklore: cone NATs punch
// reliably; symmetric NATs only talk to cone types (port prediction), and
// symmetric<->port_restricted or symmetric<->symmetric fails; udp_blocked
// endpoints can only connect out to 'open' endpoints over TCP.
constexpr double kSuccess[kNatTypeCount][kNatTypeCount] = {
    //               open  fcone rcone prest symm  blocked
    /* open    */ {0.99, 0.98, 0.98, 0.97, 0.95, 0.90},
    /* fcone   */ {0.98, 0.96, 0.95, 0.94, 0.85, 0.00},
    /* rcone   */ {0.98, 0.95, 0.93, 0.92, 0.75, 0.00},
    /* prest   */ {0.97, 0.94, 0.92, 0.90, 0.00, 0.00},
    /* symm    */ {0.95, 0.85, 0.75, 0.00, 0.00, 0.00},
    /* blocked */ {0.90, 0.00, 0.00, 0.00, 0.00, 0.00},
};
}  // namespace

bool can_traverse(NatType a, NatType b) noexcept { return kSuccess[idx(a)][idx(b)] > 0.0; }

double traversal_success_probability(NatType a, NatType b) noexcept {
    return kSuccess[idx(a)][idx(b)];
}

const std::array<double, kNatTypeCount>& default_nat_mix() noexcept {
    // Roughly: ~12% public/open, the bulk behind cone-style home NATs, a
    // significant symmetric share (carrier-grade and enterprise NATs), and a
    // small strictly-firewalled share.
    static const std::array<double, kNatTypeCount> mix = {0.12, 0.22, 0.20, 0.28, 0.13, 0.05};
    return mix;
}

}  // namespace netsession::net
