#include "net/flow.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace netsession::net {

namespace {
// Rates are clamped to a large finite value so that `rate * dt` stays finite.
constexpr Rate kRateClamp = 1e15;
// Residual smaller than one byte counts as completed (fluid-model rounding).
constexpr double kResidual = 1.0;

double naive_share(Rate capacity, std::size_t degree) noexcept {
    if (capacity == kUnlimited) return kUnlimited;
    return capacity / static_cast<double>(std::max<std::size_t>(1, degree));
}
}  // namespace

HostId FlowNetwork::add_host(Rate up, Rate down) {
    hosts_.push_back(Host{up, down, {}, {}, false});
    return HostId{static_cast<std::uint32_t>(hosts_.size() - 1)};
}

const FlowNetwork::Flow* FlowNetwork::find(FlowId id) const {
    const auto slot = static_cast<std::uint32_t>(id.value & 0xFFFFFFFFu);
    const auto gen = static_cast<std::uint32_t>(id.value >> 32);
    if (slot >= flows_.size()) return nullptr;
    const Flow& f = flows_[slot];
    if (!f.active || f.generation != gen) return nullptr;
    return &f;
}

FlowNetwork::Flow* FlowNetwork::find(FlowId id) {
    return const_cast<Flow*>(static_cast<const FlowNetwork*>(this)->find(id));
}

FlowId FlowNetwork::start_flow(HostId src, HostId dst, Bytes size, Rate cap,
                               CompletionFn on_complete) {
    assert(src.value < hosts_.size() && dst.value < hosts_.size());
    assert(src != dst);
    assert(size > 0);

    std::uint32_t slot;
    if (!free_slots_.empty()) {
        slot = free_slots_.back();
        free_slots_.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(flows_.size());
        flows_.emplace_back();
    }
    Flow& f = flows_[slot];
    const std::uint32_t gen = f.generation;  // preserved across reuse
    f = Flow{};
    f.generation = gen;
    f.src = src;
    f.dst = dst;
    f.cap = cap;
    f.remaining = size;
    f.last_settle = sim_->now();
    f.on_complete = std::move(on_complete);
    f.active = true;

    hosts_[src.value].out.push_back(slot);
    hosts_[dst.value].in.push_back(slot);

    // Hosts whose water-fills involve the changed naive shares: the two
    // endpoints themselves, plus every host with a flow adjacent to them.
    mark_dirty(src);
    mark_dirty(dst);
    for (const auto s : hosts_[src.value].out) mark_dirty(flows_[s].dst);
    for (const auto s : hosts_[src.value].in) mark_dirty(flows_[s].src);
    for (const auto s : hosts_[dst.value].out) mark_dirty(flows_[s].dst);
    for (const auto s : hosts_[dst.value].in) mark_dirty(flows_[s].src);
    process_dirty();

    // If neither endpoint has a finite constraint the refills never touched
    // the flow; give it its cap.
    if (flows_[slot].active && flows_[slot].rate == 0.0) apply_rate(slot);
    return make_id(slot);
}

Bytes FlowNetwork::cancel_flow(FlowId id) {
    Flow* f = find(id);
    if (f == nullptr) return 0;
    const auto slot = static_cast<std::uint32_t>(id.value & 0xFFFFFFFFu);
    settle(slot);
    const auto moved = static_cast<Bytes>(std::llround(f->done));
    remove(slot);
    process_dirty();
    return moved;
}

bool FlowNetwork::active(FlowId id) const { return find(id) != nullptr; }

Bytes FlowNetwork::transferred(FlowId id) {
    Flow* f = find(id);
    if (f == nullptr) return 0;
    settle(static_cast<std::uint32_t>(id.value & 0xFFFFFFFFu));
    return static_cast<Bytes>(std::llround(f->done));
}

Rate FlowNetwork::current_rate(FlowId id) const {
    const Flow* f = find(id);
    return f == nullptr ? 0.0 : f->rate;
}

int FlowNetwork::out_degree(HostId h) const {
    return static_cast<int>(hosts_[h.value].out.size());
}
int FlowNetwork::in_degree(HostId h) const { return static_cast<int>(hosts_[h.value].in.size()); }

void FlowNetwork::set_up_capacity(HostId h, Rate up) {
    if (hosts_[h.value].up == up) return;
    hosts_[h.value].up = up;
    if (up == kUnlimited) {
        // mark_dirty skips unconstrained hosts, so lift the stale finite
        // allocations explicitly.
        for (const auto s : hosts_[h.value].out) {
            flows_[s].alloc_src = kUnlimited;
            apply_rate(s);
        }
    }
    mark_dirty(h);
    for (const auto s : hosts_[h.value].out) mark_dirty(flows_[s].dst);
    process_dirty();
}

void FlowNetwork::set_down_capacity(HostId h, Rate down) {
    if (hosts_[h.value].down == down) return;
    hosts_[h.value].down = down;
    if (down == kUnlimited) {
        for (const auto s : hosts_[h.value].in) {
            flows_[s].alloc_dst = kUnlimited;
            apply_rate(s);
        }
    }
    mark_dirty(h);
    for (const auto s : hosts_[h.value].in) mark_dirty(flows_[s].src);
    process_dirty();
}

void FlowNetwork::settle(std::uint32_t slot) {
    Flow& f = flows_[slot];
    const sim::SimTime now = sim_->now();
    const double dt = (now - f.last_settle).seconds();
    f.last_settle = now;
    if (dt <= 0.0 || f.rate <= 0.0) return;
    const double moved = std::min(f.remaining, f.rate * dt);
    f.remaining -= moved;
    f.done += moved;
    total_delivered_ += static_cast<Bytes>(std::llround(moved));
}

void FlowNetwork::reschedule(std::uint32_t slot) {
    Flow& f = flows_[slot];
    if (f.completion.valid()) {
        sim_->cancel(f.completion);
        f.completion = sim::EventHandle{};
    }
    if (!f.active) return;
    if (f.remaining <= kResidual) {
        f.completion = sim_->schedule_after(sim::Duration{0}, [this, slot] { complete(slot); });
        return;
    }
    if (f.rate <= 0.0) return;  // stalled; will be rescheduled on reallocation
    const double dt_s = f.remaining / f.rate;
    const auto dt_us = static_cast<std::int64_t>(std::ceil(dt_s * 1e6)) + 1;
    f.completion = sim_->schedule_after(sim::Duration{dt_us}, [this, slot] { complete(slot); });
}

void FlowNetwork::complete(std::uint32_t slot) {
    Flow& f = flows_[slot];
    if (!f.active) return;
    f.completion = sim::EventHandle{};
    settle(slot);
    if (f.remaining > kResidual) {
        // Rates dropped since this event was scheduled; keep going.
        reschedule(slot);
        return;
    }
    // Credit the sub-byte residual so byte totals match the flow size.
    f.done += f.remaining;
    total_delivered_ += static_cast<Bytes>(std::llround(f.remaining));
    f.remaining = 0.0;
    CompletionFn cb = std::move(f.on_complete);
    const FlowId id = make_id(slot);
    remove(slot);
    process_dirty();
    if (cb) cb(id);
}

void FlowNetwork::remove(std::uint32_t slot) {
    Flow& f = flows_[slot];
    assert(f.active);
    if (f.completion.valid()) {
        sim_->cancel(f.completion);
        f.completion = sim::EventHandle{};
    }
    auto erase_from = [slot](std::vector<std::uint32_t>& v) {
        v.erase(std::remove(v.begin(), v.end(), slot), v.end());
    };
    erase_from(hosts_[f.src.value].out);
    erase_from(hosts_[f.dst.value].in);

    mark_dirty(f.src);
    mark_dirty(f.dst);
    for (const auto s : hosts_[f.src.value].out) mark_dirty(flows_[s].dst);
    for (const auto s : hosts_[f.src.value].in) mark_dirty(flows_[s].src);
    for (const auto s : hosts_[f.dst.value].out) mark_dirty(flows_[s].dst);
    for (const auto s : hosts_[f.dst.value].in) mark_dirty(flows_[s].src);

    f.active = false;
    f.on_complete = nullptr;
    ++f.generation;
    free_slots_.push_back(slot);
}

void FlowNetwork::mark_dirty(HostId h) {
    Host& host = hosts_[h.value];
    // Hosts with no finite capacity never constrain anyone; skip them.
    if (host.up == kUnlimited && host.down == kUnlimited) return;
    if (host.queued) return;
    host.queued = true;
    dirty_.push_back(h);
}

void FlowNetwork::process_dirty() {
    if (processing_) return;  // the outermost mutator drains the queue
    processing_ = true;
    while (!dirty_.empty()) {
        const HostId h = dirty_.back();
        dirty_.pop_back();
        hosts_[h.value].queued = false;
        refill_host(h);
    }
    processing_ = false;
}

void FlowNetwork::refill_host(HostId h) {
    Host& host = hosts_[h.value];

    // Water-fills `capacity` over the given flows; bound of each flow is its
    // cap combined with the naive fair share at its other endpoint. Writes
    // the per-flow allocation and applies the resulting rates.
    const auto fill_side = [this](Rate capacity, const std::vector<std::uint32_t>& slots,
                                  bool side_is_up) {
        if (capacity == kUnlimited || slots.empty()) return;
        fill_scratch_.clear();
        for (const auto s : slots) {
            const Flow& f = flows_[s];
            const Host& other = side_is_up ? hosts_[f.dst.value] : hosts_[f.src.value];
            const double other_share = side_is_up ? naive_share(other.down, other.in.size())
                                                  : naive_share(other.up, other.out.size());
            fill_scratch_.emplace_back(std::min(f.cap, other_share), s);
        }
        std::sort(fill_scratch_.begin(), fill_scratch_.end());
        double remaining = capacity;
        std::size_t k = fill_scratch_.size();
        double level = 0.0;
        std::size_t i = 0;
        for (; i < fill_scratch_.size(); ++i) {
            const double share = remaining / static_cast<double>(k);
            if (fill_scratch_[i].first <= share) {
                const double a = fill_scratch_[i].first;
                Flow& f = flows_[fill_scratch_[i].second];
                (side_is_up ? f.alloc_src : f.alloc_dst) = a;
                remaining -= a;
                --k;
            } else {
                level = share;
                break;
            }
        }
        for (; i < fill_scratch_.size(); ++i) {
            Flow& f = flows_[fill_scratch_[i].second];
            (side_is_up ? f.alloc_src : f.alloc_dst) = level;
        }
        for (const auto s : slots) apply_rate(s);
    };

    fill_side(host.up, host.out, /*side_is_up=*/true);
    fill_side(host.down, host.in, /*side_is_up=*/false);
}

void FlowNetwork::apply_rate(std::uint32_t slot) {
    Flow& f = flows_[slot];
    if (!f.active) return;
    double r = std::min({f.cap, f.alloc_src, f.alloc_dst});
    r = std::min(r, kRateClamp);
    if (r < 0.0) r = 0.0;
    const double old = f.rate;
    const double diff = std::fabs(r - old);
    if (diff <= epsilon_ * std::max(old, r) && f.completion.valid()) return;
    settle(slot);
    f.rate = r;
    reschedule(slot);
}

}  // namespace netsession::net
