#include "net/flow.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/parallel.hpp"

namespace netsession::net {

namespace {
// Rates are clamped to a large finite value so that `rate * dt` stays finite.
constexpr Rate kRateClamp = 1e15;
// Residual smaller than one byte counts as completed (fluid-model rounding).
constexpr double kResidual = 1.0;

double naive_share(Rate capacity, std::size_t degree) noexcept {
    if (capacity == kUnlimited) return kUnlimited;
    return capacity / static_cast<double>(std::max<std::size_t>(1, degree));
}
}  // namespace

void FlowNetwork::configure_shards(int shards) {
    assert(shards >= 1);
    assert(hosts_.empty() && "shard layout must be fixed before hosts exist");
    lanes_.clear();
    lanes_.resize(static_cast<std::size_t>(shards));
}

void FlowNetwork::set_host_shard(HostId h, int shard) {
    assert(shard >= 0 && shard < shards());
    hosts_[h.value].lane = static_cast<std::uint32_t>(shard);
}

HostId FlowNetwork::add_host(Rate up, Rate down) {
    hosts_.push_back(Host{up, down, {}, {}, 0, false});
    return HostId{static_cast<std::uint32_t>(hosts_.size() - 1)};
}

const FlowNetwork::Flow* FlowNetwork::find(FlowId id) const {
    const std::uint32_t slot = id.slot();
    if (!id.valid() || slot >= flow_pool_.slot_count() || !flow_pool_.is_live(slot) ||
        flow_pool_.generation(slot) != id.generation())
        return nullptr;
    const Flow& f = flow_at(slot);
    return f.active ? &f : nullptr;
}

FlowNetwork::Flow* FlowNetwork::find(FlowId id) {
    return const_cast<Flow*>(static_cast<const FlowNetwork*>(this)->find(id));
}

void FlowNetwork::adj_push(AdjList& adj, std::uint32_t slot, std::uint32_t Flow::* pos_field) {
    flow_at(slot).*pos_field = static_cast<std::uint32_t>(adj.entries.size());
    adj.entries.push_back(slot);
    ++adj.epoch;
}

void FlowNetwork::adj_remove(AdjList& adj, std::uint32_t pos, std::uint32_t Flow::* pos_field) {
    assert(pos < adj.entries.size() && adj.entries[pos] != kDeadSlot);
    adj.entries[pos] = kDeadSlot;
    ++adj.dead;
    ++adj.epoch;
    // Amortised compaction once at most half the entries are live. Live
    // entries keep their relative order — the epsilon-gated relaxation is
    // order-sensitive, so removal must never permute the survivors (a
    // swap-with-back scheme would change which rate updates propagate and
    // thereby the whole downstream event schedule).
    if (adj.dead * 2 >= adj.entries.size()) {
        std::uint32_t w = 0;
        for (const auto s : adj.entries) {
            if (s == kDeadSlot) continue;
            flow_at(s).*pos_field = w;
            adj.entries[w++] = s;
        }
        adj.entries.resize(w);
        adj.dead = 0;
    }
}

FlowId FlowNetwork::start_flow(HostId src, HostId dst, Bytes size, Rate cap,
                               CompletionFn on_complete) {
    assert(src.value < hosts_.size() && dst.value < hosts_.size());
    assert(src != dst);
    assert(size > 0);

    // LIFO slot reuse with stable addresses; the generation lives in the
    // pool and is already bumped past any stale FlowId.
    const std::uint32_t slot = flow_pool_.acquire().slot();
    Flow& f = flow_at(slot);
    f = Flow{};
    f.src = src;
    f.dst = dst;
    f.cap = cap;
    f.remaining = size;
    f.last_settle = sim_->now();
    f.on_complete = std::move(on_complete);
    f.active = true;

    adj_push(hosts_[src.value].out, slot, &Flow::src_pos);
    adj_push(hosts_[dst.value].in, slot, &Flow::dst_pos);
    ++stats_.flows_started;

    // Hosts whose water-fills involve the changed naive shares: the two
    // endpoints themselves, plus every host with a flow adjacent to them.
    mark_dirty(src);
    mark_dirty(dst);
    for (const auto s : hosts_[src.value].out.entries)
        if (s != kDeadSlot) mark_dirty(flow_at(s).dst);
    for (const auto s : hosts_[src.value].in.entries)
        if (s != kDeadSlot) mark_dirty(flow_at(s).src);
    for (const auto s : hosts_[dst.value].out.entries)
        if (s != kDeadSlot) mark_dirty(flow_at(s).dst);
    for (const auto s : hosts_[dst.value].in.entries)
        if (s != kDeadSlot) mark_dirty(flow_at(s).src);
    process_dirty();

    if (deferred()) {
        // Window-batched: the barrier refills assign the rate; the pending
        // list covers flows between unconstrained hosts that no refill
        // will ever touch.
        pending_apply_.push_back(slot);
    } else if (flow_at(slot).active && flow_at(slot).rate == 0.0) {
        // If neither endpoint has a finite constraint the refills never
        // touched the flow; give it its cap.
        apply_rate(slot);
    }
    return make_id(slot);
}

Bytes FlowNetwork::cancel_flow(FlowId id) {
    Flow* f = find(id);
    if (f == nullptr) return 0;
    const std::uint32_t slot = id.slot();
    settle(slot);
    const auto moved = static_cast<Bytes>(std::llround(f->done));
    total_delivered_ += moved;
    ++stats_.flows_cancelled;
    remove(slot);
    process_dirty();
    return moved;
}

bool FlowNetwork::active(FlowId id) const { return find(id) != nullptr; }

Bytes FlowNetwork::transferred(FlowId id) {
    Flow* f = find(id);
    if (f == nullptr) return 0;
    settle(id.slot());
    return static_cast<Bytes>(std::llround(f->done));
}

Rate FlowNetwork::current_rate(FlowId id) const {
    const Flow* f = find(id);
    return f == nullptr ? 0.0 : f->rate;
}

arena::PoolStats FlowNetwork::pool_stats() const noexcept { return flow_pool_.stats(); }

FlowNetwork::Stats FlowNetwork::stats() const noexcept {
    Stats s = stats_;
    for (const LaneState& ls : lanes_) {
        s.refills += ls.refills;
        s.resort_hits += ls.resort_hits;
        s.resort_misses += ls.resort_misses;
    }
    return s;
}

int FlowNetwork::out_degree(HostId h) const {
    return static_cast<int>(hosts_[h.value].out.live());
}
int FlowNetwork::in_degree(HostId h) const { return static_cast<int>(hosts_[h.value].in.live()); }

void FlowNetwork::set_up_capacity(HostId h, Rate up) {
    if (hosts_[h.value].up == up) return;
    hosts_[h.value].up = up;
    if (up == kUnlimited) {
        // mark_dirty skips unconstrained hosts, so lift the stale finite
        // allocations explicitly.
        for (const auto s : hosts_[h.value].out.entries) {
            if (s == kDeadSlot) continue;
            flow_at(s).alloc_src = kUnlimited;
            defer_apply(s);
        }
    }
    mark_dirty(h);
    for (const auto s : hosts_[h.value].out.entries)
        if (s != kDeadSlot) mark_dirty(flow_at(s).dst);
    process_dirty();
}

void FlowNetwork::set_down_capacity(HostId h, Rate down) {
    if (hosts_[h.value].down == down) return;
    hosts_[h.value].down = down;
    if (down == kUnlimited) {
        for (const auto s : hosts_[h.value].in.entries) {
            if (s == kDeadSlot) continue;
            flow_at(s).alloc_dst = kUnlimited;
            defer_apply(s);
        }
    }
    mark_dirty(h);
    for (const auto s : hosts_[h.value].in.entries)
        if (s != kDeadSlot) mark_dirty(flow_at(s).src);
    process_dirty();
}

void FlowNetwork::settle(std::uint32_t slot) {
    Flow& f = flow_at(slot);
    const sim::SimTime now = sim_->now();
    const double dt = (now - f.last_settle).seconds();
    // dt < 0 happens only under the sharded engine, when a later shard's
    // in-window event (whose lane clock trails an earlier shard's) queries a
    // flow already settled further ahead; last_settle must never rewind or
    // the overlap would be double-counted at the next settle.
    if (dt <= 0.0) return;
    f.last_settle = now;
    if (f.rate <= 0.0) return;
    const double moved = std::min(f.remaining, f.rate * dt);
    f.remaining -= moved;
    f.done += moved;
    // total_delivered_ is credited once, at completion/cancel, from the exact
    // accumulated `done` — rounding every partial settle would let the global
    // counter drift from the sum of flow sizes by up to half a byte per
    // settle, and long flows settle thousands of times.
}

void FlowNetwork::reschedule(std::uint32_t slot) {
    Flow& f = flow_at(slot);
    if (f.completion.valid()) {
        sim_->cancel(f.completion);
        f.completion = sim::EventHandle{};
    }
    if (!f.active) return;
    sim::Duration dt{0};
    if (f.remaining > kResidual) {
        if (f.rate <= 0.0) return;  // stalled; will be rescheduled on reallocation
        const double dt_s = f.remaining / f.rate;
        dt = sim::Duration{static_cast<std::int64_t>(std::ceil(dt_s * 1e6)) + 1};
    }
    if (deferred()) {
        // Completion events are pinned to the destination host's shard.
        // reschedule only runs at barriers or from the flow's own completion
        // event (already in that shard), so this is always a direct push and
        // the handle stays cancellable.
        f.completion = sim_->schedule_in_shard(host_shard(f.dst), sim_->now() + dt,
                                               [this, slot] { complete(slot); });
    } else {
        f.completion = sim_->schedule_after(dt, [this, slot] { complete(slot); });
    }
}

void FlowNetwork::complete(std::uint32_t slot) {
    Flow& f = flow_at(slot);
    if (!f.active) return;
    f.completion = sim::EventHandle{};
    settle(slot);
    if (f.remaining > kResidual) {
        // Rates dropped since this event was scheduled; keep going.
        reschedule(slot);
        return;
    }
    // Credit the sub-byte residual so byte totals match the flow size.
    f.done += f.remaining;
    f.remaining = 0.0;
    total_delivered_ += static_cast<Bytes>(std::llround(f.done));
    ++stats_.flows_completed;
    CompletionFn cb = std::move(f.on_complete);
    const FlowId id = make_id(slot);
    remove(slot);
    process_dirty();
    if (cb) cb(id);
}

void FlowNetwork::remove(std::uint32_t slot) {
    Flow& f = flow_at(slot);
    assert(f.active);
    if (f.completion.valid()) {
        sim_->cancel(f.completion);
        f.completion = sim::EventHandle{};
    }
    adj_remove(hosts_[f.src.value].out, f.src_pos, &Flow::src_pos);
    adj_remove(hosts_[f.dst.value].in, f.dst_pos, &Flow::dst_pos);

    mark_dirty(f.src);
    mark_dirty(f.dst);
    for (const auto s : hosts_[f.src.value].out.entries)
        if (s != kDeadSlot) mark_dirty(flow_at(s).dst);
    for (const auto s : hosts_[f.src.value].in.entries)
        if (s != kDeadSlot) mark_dirty(flow_at(s).src);
    for (const auto s : hosts_[f.dst.value].out.entries)
        if (s != kDeadSlot) mark_dirty(flow_at(s).dst);
    for (const auto s : hosts_[f.dst.value].in.entries)
        if (s != kDeadSlot) mark_dirty(flow_at(s).src);

    f.active = false;
    f.on_complete = nullptr;
    // Park (never destroy): the slot stays constructed and its pool
    // generation advances, invalidating every outstanding FlowId.
    flow_pool_.release(flow_pool_.handle_at(slot));
}

void FlowNetwork::mark_dirty(HostId h) {
    Host& host = hosts_[h.value];
    // Hosts with no finite capacity never constrain anyone; skip them.
    if (host.up == kUnlimited && host.down == kUnlimited) return;
    if (host.queued) return;
    host.queued = true;
    lanes_[host.lane].dirty.push_back(h);
}

void FlowNetwork::process_dirty() {
    // Sharded solver: mutations only mark; solve_barrier() drains the
    // per-shard queues at the next window barrier.
    if (deferred()) return;
    if (processing_) return;  // the outermost mutator drains the queue
    processing_ = true;
    LaneState& ls = lanes_[0];
    while (!ls.dirty.empty()) {
        const HostId h = ls.dirty.back();
        ls.dirty.pop_back();
        hosts_[h.value].queued = false;
        refill_host(h, ls);
    }
    processing_ = false;
}

void FlowNetwork::defer_apply(std::uint32_t slot) {
    if (deferred()) {
        pending_apply_.push_back(slot);
    } else {
        apply_rate(slot);
    }
}

void FlowNetwork::solve_barrier() {
    if (!deferred()) return;
    bool any = !pending_apply_.empty();
    for (const LaneState& ls : lanes_)
        if (!ls.dirty.empty()) any = true;
    if (!any) return;
    // Parallel refill round: each shard drains its own dirty queue. A host
    // sits in exactly one queue (its own shard's), a refill writes only that
    // host's adjacency caches and its own side's flow allocations, and the
    // neighbour capacities/degrees it reads are frozen for the round — so
    // shards are write-disjoint and the round is order-independent.
    parallel::detail::run_tasks(
        lanes_.size(),
        [](void* p, std::size_t k) {
            auto* self = static_cast<FlowNetwork*>(p);
            LaneState& ls = self->lanes_[k];
            while (!ls.dirty.empty()) {
                const HostId h = ls.dirty.back();
                ls.dirty.pop_back();
                self->hosts_[h.value].queued = false;
                self->refill_host(h, ls);
            }
        },
        this);
    // Serial exchange, ascending shard order: cross-shard flows touched by
    // the round get their rate applied exactly once, in an order that is a
    // pure function of the queue contents (docs/PARALLELISM.md rule 3).
    exchange_applied_.clear();
    for (LaneState& ls : lanes_) {
        for (const auto s : ls.exchange) {
            Flow& f = flow_at(s);
            if (f.in_exchange) continue;
            f.in_exchange = true;
            exchange_applied_.push_back(s);
            apply_rate(s);
        }
        ls.exchange.clear();
    }
    for (const auto s : exchange_applied_) flow_at(s).in_exchange = false;
    // Unconditional applies: new flows (possibly between unconstrained hosts
    // no refill touches) and capacity lifts. Slot reuse within a window can
    // leave stale or duplicate entries; apply_rate no-ops on inactive flows
    // and re-applying an unchanged rate is epsilon-gated.
    for (const auto s : pending_apply_) {
        if (s < flow_pool_.slot_count() && flow_pool_.is_live(s)) apply_rate(s);
    }
    pending_apply_.clear();
}

void FlowNetwork::refill_host(HostId h, LaneState& ls) {
    Host& host = hosts_[h.value];
    ++ls.refills;
    fill_side(host.up, host.out, /*side_is_up=*/true, ls);
    fill_side(host.down, host.in, /*side_is_up=*/false, ls);
}

// Water-fills `capacity` over one side's flows; the bound of each flow is its
// cap combined with the naive fair share at its other endpoint. Writes the
// per-flow allocation and applies the resulting rates.
//
// The sorted order of (bound, slot) pairs is unique (slots are distinct), so
// whenever the side's flow SET is unchanged since the last fill, last time's
// order is a strong hint: recompute the bounds in the cached order and skip
// the O(d log d) sort entirely if they still come out sorted — the common
// case, since a neighbour's degree change shifts many bounds by the same
// factor. Either path yields the exact sequence a full sort would.
void FlowNetwork::fill_side(Rate capacity, AdjList& adj, bool side_is_up, LaneState& ls) {
    if (capacity == kUnlimited || adj.live() == 0) return;
    auto& scratch = ls.fill_scratch;
    scratch.clear();
    const auto bound_of = [&](std::uint32_t s) {
        const Flow& f = flow_at(s);
        const Host& other = side_is_up ? hosts_[f.dst.value] : hosts_[f.src.value];
        const double other_share = side_is_up ? naive_share(other.down, other.in.live())
                                              : naive_share(other.up, other.out.live());
        return std::min(f.cap, other_share);
    };
    if (adj.sorted_epoch == adj.epoch) {
        for (const auto s : adj.sorted) scratch.emplace_back(bound_of(s), s);
        if (std::is_sorted(scratch.begin(), scratch.end())) {
            ++ls.resort_hits;
        } else {
            std::sort(scratch.begin(), scratch.end());
            for (std::size_t i = 0; i < scratch.size(); ++i) adj.sorted[i] = scratch[i].second;
            ++ls.resort_misses;
        }
    } else {
        for (const auto s : adj.entries)
            if (s != kDeadSlot) scratch.emplace_back(bound_of(s), s);
        std::sort(scratch.begin(), scratch.end());
        adj.sorted.resize(scratch.size());
        for (std::size_t i = 0; i < scratch.size(); ++i) adj.sorted[i] = scratch[i].second;
        adj.sorted_epoch = adj.epoch;
        ++ls.resort_misses;
    }
    double remaining = capacity;
    std::size_t k = scratch.size();
    double level = 0.0;
    std::size_t i = 0;
    for (; i < scratch.size(); ++i) {
        const double share = remaining / static_cast<double>(k);
        if (scratch[i].first <= share) {
            const double a = scratch[i].first;
            Flow& f = flow_at(scratch[i].second);
            (side_is_up ? f.alloc_src : f.alloc_dst) = a;
            remaining -= a;
            --k;
        } else {
            level = share;
            break;
        }
    }
    for (; i < scratch.size(); ++i) {
        Flow& f = flow_at(scratch[i].second);
        (side_is_up ? f.alloc_src : f.alloc_dst) = level;
    }
    if (!deferred()) {
        for (const auto s : adj.entries)
            if (s != kDeadSlot) apply_rate(s);
        return;
    }
    // Batched round: apply intra-shard flows here (their whole state belongs
    // to this shard); queue cross-shard flows for the serial exchange — the
    // other endpoint's shard may still be filling its side's allocation.
    for (const auto s : adj.entries) {
        if (s == kDeadSlot) continue;
        const Flow& f = flow_at(s);
        if (hosts_[f.src.value].lane == hosts_[f.dst.value].lane) {
            apply_rate(s);
        } else {
            ls.exchange.push_back(s);
        }
    }
}

void FlowNetwork::apply_rate(std::uint32_t slot) {
    Flow& f = flow_at(slot);
    if (!f.active) return;
    double r = std::min({f.cap, f.alloc_src, f.alloc_dst});
    r = std::min(r, kRateClamp);
    if (r < 0.0) r = 0.0;
    const double old = f.rate;
    const double diff = std::fabs(r - old);
    if (diff <= epsilon_ * std::max(old, r) && f.completion.valid()) return;
    settle(slot);
    f.rate = r;
    reschedule(slot);
}

}  // namespace netsession::net
