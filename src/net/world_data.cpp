#include "net/world_data.hpp"

#include <array>
#include <cassert>

namespace netsession::net {

namespace {

constexpr RegionId R(std::uint16_t v) { return RegionId{v}; }
constexpr CountryId C(std::uint16_t v) { return CountryId{v}; }

// 19 network regions, consistent with "the current deployment has less than
// 20 network regions" (paper §3.7).
constexpr std::array<RegionInfo, 19> kRegions = {{
    {R(0), "US-East", Continent::north_america},
    {R(1), "US-Central", Continent::north_america},
    {R(2), "US-West", Continent::north_america},
    {R(3), "Canada", Continent::north_america},
    {R(4), "Mexico-CentralAm", Continent::north_america},
    {R(5), "SouthAm-North", Continent::south_america},
    {R(6), "Brazil-SouthCone", Continent::south_america},
    {R(7), "EU-West", Continent::europe},
    {R(8), "EU-North", Continent::europe},
    {R(9), "EU-East", Continent::europe},
    {R(10), "EU-South", Continent::europe},
    {R(11), "Russia-CIS", Continent::europe},
    {R(12), "MiddleEast", Continent::asia},
    {R(13), "India", Continent::asia},
    {R(14), "China", Continent::asia},
    {R(15), "Asia-SE", Continent::asia},
    {R(16), "Asia-NE", Continent::asia},
    {R(17), "Oceania", Continent::oceania},
    {R(18), "Africa", Continent::africa},
}};

// Broadband shorthands. The "fast" profiles pair high downstream medians with
// strong down/up asymmetry — this is what makes peer-assisted downloads lag
// edge-only ones most in the fastest networks (paper §5.2, Fig 4).
constexpr BroadbandProfile kFiberFast{55.0, 0.7, 10.0};
constexpr BroadbandProfile kCableFast{30.0, 0.7, 9.0};
constexpr BroadbandProfile kDslGood{16.0, 0.6, 6.0};
constexpr BroadbandProfile kDslMid{8.0, 0.6, 5.0};
constexpr BroadbandProfile kDslSlow{4.0, 0.6, 4.0};
constexpr BroadbandProfile kEmerging{2.0, 0.7, 3.0};

// Peer weights are proportional shares of the synthetic population, shaped to
// Fig 2 (≈27% North America, ≈35% Europe, sizable South America and Asia).
// They are normalised at use, so they need not sum to exactly 1.
// Note the United States appears as three entries (East/Central/West) so that
// region granularity matches Table 2's split; they share the alpha-2 code.
constexpr std::array<CountryInfo, 120> kCountries = {{
    // id, alpha2, name, continent, region, center{lat,lon}, spread, weight, broadband
    {C(0), "US", "United States (East)", Continent::north_america, R(0), {39.0, -77.5}, 6.0, 0.090, kCableFast},
    {C(1), "US", "United States (Central)", Continent::north_america, R(1), {41.0, -93.0}, 7.0, 0.050, kCableFast},
    {C(2), "US", "United States (West)", Continent::north_america, R(2), {37.5, -120.0}, 6.0, 0.070, kCableFast},
    {C(3), "CA", "Canada", Continent::north_america, R(3), {45.5, -75.0}, 8.0, 0.030, kCableFast},
    {C(4), "MX", "Mexico", Continent::north_america, R(4), {19.4, -99.1}, 5.0, 0.020, kDslMid},
    {C(5), "GT", "Guatemala", Continent::north_america, R(4), {14.6, -90.5}, 1.5, 0.002, kEmerging},
    {C(6), "CR", "Costa Rica", Continent::north_america, R(4), {9.9, -84.1}, 1.0, 0.0015, kDslSlow},
    {C(7), "PA", "Panama", Continent::north_america, R(4), {9.0, -79.5}, 1.0, 0.0015, kDslSlow},
    {C(8), "DO", "Dominican Republic", Continent::north_america, R(4), {18.5, -69.9}, 1.0, 0.002, kDslSlow},
    {C(9), "BR", "Brazil", Continent::south_america, R(6), {-15.8, -47.9}, 10.0, 0.045, kDslMid},
    {C(10), "AR", "Argentina", Continent::south_america, R(6), {-34.6, -58.4}, 6.0, 0.015, kDslMid},
    {C(11), "CL", "Chile", Continent::south_america, R(6), {-33.5, -70.7}, 5.0, 0.008, kDslMid},
    {C(12), "CO", "Colombia", Continent::south_america, R(5), {4.7, -74.1}, 4.0, 0.010, kDslSlow},
    {C(13), "PE", "Peru", Continent::south_america, R(5), {-12.0, -77.0}, 4.0, 0.006, kDslSlow},
    {C(14), "VE", "Venezuela", Continent::south_america, R(5), {10.5, -66.9}, 3.0, 0.005, kDslSlow},
    {C(15), "EC", "Ecuador", Continent::south_america, R(5), {-0.2, -78.5}, 2.0, 0.003, kDslSlow},
    {C(16), "UY", "Uruguay", Continent::south_america, R(6), {-34.9, -56.2}, 1.5, 0.002, kDslMid},
    {C(17), "DE", "Germany", Continent::europe, R(7), {51.0, 10.0}, 3.5, 0.050, kDslGood},
    {C(18), "FR", "France", Continent::europe, R(7), {46.6, 2.5}, 3.5, 0.040, kDslGood},
    {C(19), "GB", "United Kingdom", Continent::europe, R(7), {52.5, -1.5}, 3.0, 0.040, kDslGood},
    {C(20), "IT", "Italy", Continent::europe, R(10), {42.8, 12.5}, 3.5, 0.030, kDslMid},
    {C(21), "ES", "Spain", Continent::europe, R(10), {40.3, -3.7}, 3.5, 0.030, kDslMid},
    {C(22), "PL", "Poland", Continent::europe, R(9), {52.0, 19.3}, 3.0, 0.025, kDslMid},
    {C(23), "NL", "Netherlands", Continent::europe, R(7), {52.2, 5.3}, 1.2, 0.015, kFiberFast},
    {C(24), "SE", "Sweden", Continent::europe, R(8), {59.5, 16.5}, 3.5, 0.010, kFiberFast},
    {C(25), "NO", "Norway", Continent::europe, R(8), {60.5, 9.0}, 3.0, 0.006, kFiberFast},
    {C(26), "DK", "Denmark", Continent::europe, R(8), {55.9, 10.5}, 1.5, 0.006, kCableFast},
    {C(27), "FI", "Finland", Continent::europe, R(8), {61.5, 25.0}, 3.0, 0.005, kCableFast},
    {C(28), "BE", "Belgium", Continent::europe, R(7), {50.7, 4.6}, 1.2, 0.008, kCableFast},
    {C(29), "AT", "Austria", Continent::europe, R(7), {47.6, 14.1}, 1.5, 0.007, kDslGood},
    {C(30), "CH", "Switzerland", Continent::europe, R(7), {46.9, 8.2}, 1.2, 0.007, kCableFast},
    {C(31), "PT", "Portugal", Continent::europe, R(10), {39.6, -8.0}, 1.5, 0.008, kDslMid},
    {C(32), "GR", "Greece", Continent::europe, R(10), {38.5, 23.0}, 2.0, 0.007, kDslMid},
    {C(33), "CZ", "Czechia", Continent::europe, R(9), {49.8, 15.5}, 1.5, 0.008, kDslGood},
    {C(34), "RO", "Romania", Continent::europe, R(9), {45.9, 25.0}, 2.0, 0.010, kFiberFast},
    {C(35), "HU", "Hungary", Continent::europe, R(9), {47.2, 19.5}, 1.5, 0.006, kDslGood},
    {C(36), "UA", "Ukraine", Continent::europe, R(11), {49.0, 31.5}, 3.5, 0.010, kDslMid},
    {C(37), "RU", "Russia", Continent::europe, R(11), {55.8, 37.6}, 12.0, 0.025, kDslGood},
    {C(38), "TR", "Turkey", Continent::europe, R(12), {39.9, 32.9}, 4.0, 0.015, kDslMid},
    {C(39), "CN", "China", Continent::asia, R(14), {34.0, 108.9}, 10.0, 0.040, kDslMid},
    {C(40), "IN", "India", Continent::asia, R(13), {21.0, 78.0}, 9.0, 0.035, kEmerging},
    {C(41), "JP", "Japan", Continent::asia, R(16), {36.0, 138.0}, 4.0, 0.025, kFiberFast},
    {C(42), "KR", "South Korea", Continent::asia, R(16), {36.5, 127.8}, 2.0, 0.015, kFiberFast},
    {C(43), "TW", "Taiwan", Continent::asia, R(16), {23.8, 121.0}, 1.2, 0.010, kCableFast},
    {C(44), "TH", "Thailand", Continent::asia, R(15), {15.0, 101.0}, 4.0, 0.010, kDslMid},
    {C(45), "VN", "Vietnam", Continent::asia, R(15), {16.0, 107.8}, 4.0, 0.010, kDslSlow},
    {C(46), "ID", "Indonesia", Continent::asia, R(15), {-6.2, 106.8}, 6.0, 0.015, kEmerging},
    {C(47), "MY", "Malaysia", Continent::asia, R(15), {3.1, 101.7}, 3.0, 0.008, kDslMid},
    {C(48), "PH", "Philippines", Continent::asia, R(15), {14.6, 121.0}, 4.0, 0.010, kEmerging},
    {C(49), "SG", "Singapore", Continent::asia, R(15), {1.35, 103.8}, 0.3, 0.004, kFiberFast},
    {C(50), "HK", "Hong Kong", Continent::asia, R(14), {22.3, 114.2}, 0.3, 0.005, kFiberFast},
    {C(51), "SA", "Saudi Arabia", Continent::asia, R(12), {24.7, 46.7}, 4.0, 0.008, kDslMid},
    {C(52), "AE", "United Arab Emirates", Continent::asia, R(12), {24.5, 54.4}, 1.5, 0.004, kCableFast},
    {C(53), "IL", "Israel", Continent::asia, R(12), {32.0, 34.8}, 1.0, 0.005, kCableFast},
    {C(54), "PK", "Pakistan", Continent::asia, R(13), {31.5, 74.3}, 4.0, 0.005, kEmerging},
    {C(55), "AU", "Australia", Continent::oceania, R(17), {-33.9, 151.2}, 10.0, 0.020, kDslMid},
    {C(56), "NZ", "New Zealand", Continent::oceania, R(17), {-41.3, 174.8}, 3.0, 0.005, kDslMid},
    {C(57), "EG", "Egypt", Continent::africa, R(18), {30.0, 31.2}, 3.0, 0.008, kEmerging},
    {C(58), "ZA", "South Africa", Continent::africa, R(18), {-26.2, 28.0}, 5.0, 0.008, kDslSlow},
    {C(59), "NG", "Nigeria", Continent::africa, R(18), {6.5, 3.4}, 4.0, 0.005, kEmerging},
    {C(60), "MA", "Morocco", Continent::africa, R(18), {33.6, -7.6}, 3.0, 0.005, kEmerging},
    {C(61), "IE", "Ireland", Continent::europe, R(7), {53.3, -7.5}, 1.5, 0.004, kCableFast},
    {C(62), "HR", "Croatia", Continent::europe, R(10), {45.5, 16.0}, 1.5, 0.003, kDslMid},
    {C(63), "RS", "Serbia", Continent::europe, R(9), {44.3, 20.8}, 1.5, 0.004, kDslMid},
    {C(64), "BG", "Bulgaria", Continent::europe, R(9), {42.8, 25.2}, 1.5, 0.004, kFiberFast},
    {C(65), "SK", "Slovakia", Continent::europe, R(9), {48.7, 19.5}, 1.2, 0.003, kDslGood},
    {C(66), "SI", "Slovenia", Continent::europe, R(10), {46.1, 14.8}, 0.8, 0.002, kDslGood},
    {C(67), "LT", "Lithuania", Continent::europe, R(8), {55.2, 23.9}, 1.0, 0.002, kFiberFast},
    {C(68), "LV", "Latvia", Continent::europe, R(8), {56.9, 24.6}, 1.0, 0.0015, kFiberFast},
    {C(69), "EE", "Estonia", Continent::europe, R(8), {58.7, 25.5}, 1.0, 0.001, kFiberFast},
    {C(70), "IS", "Iceland", Continent::europe, R(8), {64.9, -19.0}, 1.0, 0.0004, kFiberFast},
    {C(71), "LU", "Luxembourg", Continent::europe, R(7), {49.7, 6.1}, 0.3, 0.0006, kCableFast},
    {C(72), "CY", "Cyprus", Continent::europe, R(10), {35.1, 33.2}, 0.5, 0.0008, kDslMid},
    {C(73), "MT", "Malta", Continent::europe, R(10), {35.9, 14.4}, 0.1, 0.0004, kCableFast},
    {C(74), "BY", "Belarus", Continent::europe, R(11), {53.6, 27.9}, 2.0, 0.003, kDslMid},
    {C(75), "MD", "Moldova", Continent::europe, R(11), {47.2, 28.5}, 1.0, 0.001, kFiberFast},
    {C(76), "AL", "Albania", Continent::europe, R(10), {41.2, 20.1}, 1.0, 0.001, kDslSlow},
    {C(77), "BA", "Bosnia and Herzegovina", Continent::europe, R(10), {44.2, 17.8}, 1.0, 0.0012, kDslMid},
    {C(78), "MK", "North Macedonia", Continent::europe, R(10), {41.6, 21.7}, 0.8, 0.0008, kDslMid},
    {C(79), "GE", "Georgia", Continent::europe, R(11), {42.0, 43.5}, 1.2, 0.001, kDslMid},
    {C(80), "AM", "Armenia", Continent::europe, R(11), {40.3, 44.9}, 0.8, 0.0008, kDslMid},
    {C(81), "AZ", "Azerbaijan", Continent::europe, R(11), {40.4, 47.8}, 1.2, 0.0012, kDslSlow},
    {C(82), "KZ", "Kazakhstan", Continent::asia, R(11), {48.2, 67.0}, 6.0, 0.002, kDslMid},
    {C(83), "UZ", "Uzbekistan", Continent::asia, R(11), {41.5, 64.5}, 3.0, 0.0012, kEmerging},
    {C(84), "BD", "Bangladesh", Continent::asia, R(13), {23.7, 90.4}, 2.5, 0.002, kEmerging},
    {C(85), "LK", "Sri Lanka", Continent::asia, R(13), {7.5, 80.7}, 1.2, 0.001, kEmerging},
    {C(86), "NP", "Nepal", Continent::asia, R(13), {28.2, 84.1}, 1.5, 0.0006, kEmerging},
    {C(87), "MM", "Myanmar", Continent::asia, R(15), {19.8, 96.1}, 3.0, 0.0006, kEmerging},
    {C(88), "KH", "Cambodia", Continent::asia, R(15), {11.6, 104.9}, 1.5, 0.0005, kEmerging},
    {C(89), "LA", "Laos", Continent::asia, R(15), {18.0, 103.0}, 1.5, 0.0003, kEmerging},
    {C(90), "MN", "Mongolia", Continent::asia, R(16), {47.9, 106.9}, 2.0, 0.0003, kDslSlow},
    {C(91), "JO", "Jordan", Continent::asia, R(12), {31.3, 36.4}, 1.0, 0.001, kDslSlow},
    {C(92), "LB", "Lebanon", Continent::asia, R(12), {33.9, 35.8}, 0.6, 0.0008, kDslSlow},
    {C(93), "KW", "Kuwait", Continent::asia, R(12), {29.3, 47.6}, 0.5, 0.0008, kDslMid},
    {C(94), "QA", "Qatar", Continent::asia, R(12), {25.3, 51.2}, 0.3, 0.0006, kCableFast},
    {C(95), "BH", "Bahrain", Continent::asia, R(12), {26.1, 50.6}, 0.2, 0.0004, kCableFast},
    {C(96), "OM", "Oman", Continent::asia, R(12), {21.0, 57.0}, 1.5, 0.0005, kDslMid},
    {C(97), "IQ", "Iraq", Continent::asia, R(12), {33.2, 43.7}, 2.0, 0.0008, kEmerging},
    {C(98), "BO", "Bolivia", Continent::south_america, R(5), {-16.5, -68.1}, 2.5, 0.0015, kEmerging},
    {C(99), "PY", "Paraguay", Continent::south_america, R(6), {-25.3, -57.6}, 1.5, 0.001, kEmerging},
    {C(100), "HN", "Honduras", Continent::north_america, R(4), {14.1, -87.2}, 1.2, 0.0006, kEmerging},
    {C(101), "SV", "El Salvador", Continent::north_america, R(4), {13.7, -89.2}, 0.8, 0.0006, kEmerging},
    {C(102), "NI", "Nicaragua", Continent::north_america, R(4), {12.1, -86.3}, 1.2, 0.0004, kEmerging},
    {C(103), "JM", "Jamaica", Continent::north_america, R(4), {18.0, -76.8}, 0.6, 0.0005, kDslSlow},
    {C(104), "TT", "Trinidad and Tobago", Continent::north_america, R(4), {10.7, -61.3}, 0.4, 0.0004, kDslMid},
    {C(105), "GH", "Ghana", Continent::africa, R(18), {6.7, -1.6}, 2.0, 0.0008, kEmerging},
    {C(106), "CI", "Ivory Coast", Continent::africa, R(18), {6.8, -5.3}, 2.0, 0.0006, kEmerging},
    {C(107), "SN", "Senegal", Continent::africa, R(18), {14.7, -17.4}, 1.5, 0.0005, kEmerging},
    {C(108), "CM", "Cameroon", Continent::africa, R(18), {4.6, 11.5}, 2.0, 0.0004, kEmerging},
    {C(109), "UG", "Uganda", Continent::africa, R(18), {0.3, 32.6}, 1.5, 0.0004, kEmerging},
    {C(110), "TZ", "Tanzania", Continent::africa, R(18), {-6.4, 35.0}, 2.5, 0.0004, kEmerging},
    {C(111), "ET", "Ethiopia", Continent::africa, R(18), {9.0, 38.8}, 2.5, 0.0003, kEmerging},
    {C(112), "ZM", "Zambia", Continent::africa, R(18), {-15.4, 28.3}, 2.0, 0.0003, kEmerging},
    {C(113), "MZ", "Mozambique", Continent::africa, R(18), {-25.9, 32.6}, 2.5, 0.0002, kEmerging},
    {C(114), "AO", "Angola", Continent::africa, R(18), {-8.8, 13.2}, 2.5, 0.0003, kEmerging},
    {C(115), "TN", "Tunisia", Continent::africa, R(18), {36.8, 10.2}, 1.5, 0.0012, kEmerging},
    {C(116), "DZ", "Algeria", Continent::africa, R(18), {36.7, 3.1}, 3.0, 0.0015, kEmerging},
    {C(117), "KE", "Kenya", Continent::africa, R(18), {-1.3, 36.8}, 2.0, 0.0008, kEmerging},
    {C(118), "FJ", "Fiji", Continent::oceania, R(17), {-18.1, 178.4}, 1.0, 0.0002, kDslSlow},
    {C(119), "PG", "Papua New Guinea", Continent::oceania, R(17), {-9.4, 147.2}, 2.0, 0.0002, kEmerging},
}};

}  // namespace

std::span<const RegionInfo> regions() noexcept { return kRegions; }
std::span<const CountryInfo> countries() noexcept { return kCountries; }

const CountryInfo& country(CountryId id) noexcept {
    assert(id.value < kCountries.size());
    return kCountries[id.value];
}

const RegionInfo& region(RegionId id) noexcept {
    assert(id.value < kRegions.size());
    return kRegions[id.value];
}

const CountryInfo* find_country(std::string_view alpha2) noexcept {
    for (const auto& c : kCountries)
        if (c.alpha2 == alpha2) return &c;
    return nullptr;
}

}  // namespace netsession::net
