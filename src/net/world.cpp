#include "net/world.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "net/world_data.hpp"

namespace netsession::net {

void World::configure_shards(int shards) {
    assert(shards >= 1);
    assert(hosts_.empty() && "shard layout must be fixed before hosts exist");
    shard_count_ = shards;
    flows_.configure_shards(shards);
    lane_loss_rngs_.clear();
    if (shards > 1) {
        lane_loss_rngs_.reserve(static_cast<std::size_t>(shards));
        Rng base{0xFA017FA017FA017ULL};
        for (int k = 0; k < shards; ++k)
            lane_loss_rngs_.push_back(base.child("loss-shard-" + std::to_string(k)));
    }
}

HostId World::create_host(HostInfo info) {
    if (info.attach.ip.value == 0) info.attach.ip = as_graph_.allocate_ip(info.attach.asn);
    geodb_.register_ip(info.attach.ip, GeoRecord{info.attach.location, info.attach.asn});
    const HostId h = flows_.add_host(info.up, info.down);
    if (shard_count_ > 1) {
        const RegionId region = country(info.attach.location.country).region;
        const auto lane = static_cast<std::uint16_t>(region.value % shard_count_);
        host_lane_.push_back(lane);
        flows_.set_host_shard(h, lane);
    }
    hosts_.push_back(std::move(info));
    if (!as_faults_.empty()) apply_capacity(h);
    return h;
}

sim::EventHandle World::schedule_for(HostId h, sim::Duration delay, sim::Simulator::Callback fn) {
    if (shard_count_ == 1) return sim_->schedule_after(delay, std::move(fn));
    return sim_->schedule_in_shard(host_shard(h), sim_->now() + delay, std::move(fn));
}

sim::EventHandle World::schedule_for_at(HostId h, sim::SimTime at, sim::Simulator::Callback fn) {
    if (shard_count_ == 1) return sim_->schedule_at(at, std::move(fn));
    return sim_->schedule_in_shard(host_shard(h), at, std::move(fn));
}

void World::reattach(HostId h, Location location, Asn asn, NatType nat) {
    HostInfo& info = hosts_[h.value];
    info.attach.location = location;
    info.attach.asn = asn;
    info.attach.nat = nat;
    info.attach.ip = as_graph_.allocate_ip(asn);
    geodb_.register_ip(info.attach.ip, GeoRecord{location, asn});
    // Moving in or out of a degraded AS changes the effective link speed.
    if (!as_faults_.empty()) apply_capacity(h);
}

double World::as_latency_factor(Asn asn) const {
    const auto it = as_faults_.find(asn.value);
    return it == as_faults_.end() ? 1.0 : it->second.latency_factor;
}

sim::Duration World::latency(HostId a, HostId b) const {
    const Attachment& aa = hosts_[a.value].attach;
    const Attachment& ab = hosts_[b.value].attach;
    const double km = haversine_km(aa.location.point, ab.location.point);
    // ~1 ms of processing, 0.01 ms/km propagation+routing (fibre detours),
    // and a few ms extra when crossing AS boundaries.
    double ms = 1.0 + km * 0.01;
    if (aa.asn != ab.asn) ms += 4.0;
    if (!as_faults_.empty())
        ms *= std::max(as_latency_factor(aa.asn), as_latency_factor(ab.asn));
    return sim::milliseconds(ms);
}

void World::send(HostId from, HostId to, std::function<void()> fn) {
    if (!reachable(from, to)) return;  // partitioned: the message is lost
    if (!as_faults_.empty()) {
        const auto loss_of = [&](Asn asn) {
            const auto it = as_faults_.find(asn.value);
            return it == as_faults_.end() ? 0.0 : it->second.loss;
        };
        const double loss = std::max(loss_of(hosts_[from.value].attach.asn),
                                     loss_of(hosts_[to.value].attach.asn));
        if (loss > 0.0) {
            // Sharded runs draw from the sending lane's own stream: lane
            // execution order is deterministic for a fixed shard count,
            // while the interleaved global order is not a stable concept
            // under lane-major windowing.
            Rng& rng = shard_count_ == 1 ? fault_rng_
                                         : lane_loss_rngs_[static_cast<std::size_t>(
                                               sim_->current_shard())];
            if (rng.chance(loss)) return;
        }
    }
    if (shard_count_ == 1) {
        sim_->schedule_after(latency(from, to), std::move(fn));
        return;
    }
    // Delivery runs in the destination's shard; latency() >= kLatencyFloor
    // (the window lookahead), so cross-shard messages always land at or
    // beyond the barrier — the conservative-window contract.
    sim_->schedule_in_shard(host_shard(to), sim_->now() + latency(from, to), std::move(fn));
}

void World::set_host_up_capacity(HostId h, Rate up) {
    hosts_[h.value].up = up;
    apply_capacity(h);
}

void World::set_host_down_capacity(HostId h, Rate down) {
    hosts_[h.value].down = down;
    apply_capacity(h);
}

void World::apply_capacity(HostId h) {
    const HostInfo& info = hosts_[h.value];
    double factor = 1.0;
    if (!info.is_server && !as_faults_.empty()) {
        const auto it = as_faults_.find(info.attach.asn.value);
        if (it != as_faults_.end()) factor = it->second.rate_factor;
    }
    flows_.set_up_capacity(h, info.up == kUnlimited ? info.up : info.up * factor);
    flows_.set_down_capacity(h, info.down == kUnlimited ? info.down : info.down * factor);
}

// --- partitions ---------------------------------------------------------------------------

void World::change_partition(int a, int b, int delta) {
    const int r = static_cast<int>(regions().size());
    if (a < 0) std::swap(a, b);
    if (a < 0 || a >= r || b >= r || a == b) return;
    if (partition_count_.empty()) partition_count_.assign(static_cast<std::size_t>(r) * r, 0);
    const auto bump = [&](int x, int y) {
        auto& fwd = partition_count_[static_cast<std::size_t>(x) * r + y];
        auto& rev = partition_count_[static_cast<std::size_t>(y) * r + x];
        if (delta < 0 && fwd == 0) return;  // unbalanced heal: ignore
        fwd = static_cast<std::uint16_t>(fwd + delta);
        rev = fwd;
        active_partitions_ += delta;
    };
    if (b < 0) {
        for (int other = 0; other < r; ++other)
            if (other != a) bump(a, other);
    } else {
        bump(a, b);
    }
}

void World::partition_regions(int a, int b) {
    change_partition(a, b, +1);
    cut_partitioned_flows();
}

void World::heal_partition(int a, int b) { change_partition(a, b, -1); }

bool World::regions_reachable(RegionId a, RegionId b) const {
    if (active_partitions_ == 0 || a == b) return true;
    const std::size_t r = regions().size();
    return partition_count_[a.value * r + b.value] == 0;
}

bool World::reachable(HostId a, HostId b) const {
    if (active_partitions_ == 0) return true;
    return regions_reachable(region_of(a), region_of(b));
}

void World::cut_partitioned_flows() {
    if (active_partitions_ == 0) return;
    std::vector<FlowId> cut;
    flows_.for_each_active([&](FlowId id, HostId src, HostId dst) {
        if (!reachable(src, dst)) cut.push_back(id);
    });
    for (const FlowId id : cut) flows_.cancel_flow(id);
}

// --- AS degradation & host failure --------------------------------------------------------

void World::AsFault::recompute() noexcept {
    latency_factor = 1.0;
    rate_factor = 1.0;
    double pass = 1.0;  // probability a message survives every layer
    for (const AsFaultLayer& l : layers) {
        latency_factor *= l.latency_factor;
        rate_factor *= l.rate_factor;
        pass *= 1.0 - l.loss;
    }
    rate_factor = std::clamp(rate_factor, 0.01, 1.0);
    loss = std::clamp(1.0 - pass, 0.0, 0.999);
}

std::uint32_t World::degrade_as(Asn asn, double latency_factor, double rate_factor, double loss) {
    AsFault& f = as_faults_[asn.value];
    AsFaultLayer layer;
    layer.token = next_as_fault_token_++;
    layer.latency_factor = std::max(latency_factor, 1.0);
    layer.rate_factor = std::clamp(rate_factor, 0.01, 1.0);
    layer.loss = std::clamp(loss, 0.0, 0.999);
    f.layers.push_back(layer);
    f.recompute();
    for (std::size_t i = 0; i < hosts_.size(); ++i)
        if (hosts_[i].attach.asn == asn)
            apply_capacity(HostId{static_cast<std::uint32_t>(i)});
    return layer.token;
}

void World::restore_as(Asn asn, std::uint32_t token) {
    const auto it = as_faults_.find(asn.value);
    if (it == as_faults_.end()) return;
    auto& layers = it->second.layers;
    const auto layer = std::find_if(layers.begin(), layers.end(),
                                    [token](const AsFaultLayer& l) { return l.token == token; });
    if (layer == layers.end()) return;
    layers.erase(layer);  // preserves order: remaining products stay exact
    if (layers.empty()) {
        as_faults_.erase(it);
    } else {
        it->second.recompute();
    }
    for (std::size_t i = 0; i < hosts_.size(); ++i)
        if (hosts_[i].attach.asn == asn)
            apply_capacity(HostId{static_cast<std::uint32_t>(i)});
}

void World::restore_as(Asn asn) {
    if (as_faults_.erase(asn.value) == 0) return;
    for (std::size_t i = 0; i < hosts_.size(); ++i)
        if (hosts_[i].attach.asn == asn)
            apply_capacity(HostId{static_cast<std::uint32_t>(i)});
}

int World::active_as_degradations() const noexcept {
    int n = 0;
    for (const auto& [asn, fault] : as_faults_) n += static_cast<int>(fault.layers.size());
    return n;
}

int World::drop_host_flows(HostId h) {
    std::vector<FlowId> cut;
    flows_.for_each_active([&](FlowId id, HostId src, HostId dst) {
        if (src == h || dst == h) cut.push_back(id);
    });
    for (const FlowId id : cut) flows_.cancel_flow(id);
    return static_cast<int>(cut.size());
}

}  // namespace netsession::net
