#include "net/world.hpp"

namespace netsession::net {

HostId World::create_host(HostInfo info) {
    if (info.attach.ip.value == 0) info.attach.ip = as_graph_.allocate_ip(info.attach.asn);
    geodb_.register_ip(info.attach.ip, GeoRecord{info.attach.location, info.attach.asn});
    const HostId h = flows_.add_host(info.up, info.down);
    hosts_.push_back(std::move(info));
    return h;
}

void World::reattach(HostId h, Location location, Asn asn, NatType nat) {
    HostInfo& info = hosts_[h.value];
    info.attach.location = location;
    info.attach.asn = asn;
    info.attach.nat = nat;
    info.attach.ip = as_graph_.allocate_ip(asn);
    geodb_.register_ip(info.attach.ip, GeoRecord{location, asn});
}

sim::Duration World::latency(HostId a, HostId b) const {
    const Attachment& aa = hosts_[a.value].attach;
    const Attachment& ab = hosts_[b.value].attach;
    const double km = haversine_km(aa.location.point, ab.location.point);
    // ~1 ms of processing, 0.01 ms/km propagation+routing (fibre detours),
    // and a few ms extra when crossing AS boundaries.
    double ms = 1.0 + km * 0.01;
    if (aa.asn != ab.asn) ms += 4.0;
    return sim::milliseconds(ms);
}

void World::send(HostId from, HostId to, std::function<void()> fn) {
    sim_->schedule_after(latency(from, to), std::move(fn));
}

}  // namespace netsession::net
