// Flow-level bandwidth sharing.
//
// Transfers are modelled as fluid flows between hosts. Each host has an
// uplink and a downlink capacity; the network assigns each flow a rate and
// recomputes affected rates when flows start, finish, or capacities change.
//
// Allocation model: per-host *water-filling*. For each host side, capacity is
// divided max-min-fairly among its flows, where each flow is bounded by its
// own cap and by the naive fair share it can get at its other endpoint. A
// flow's rate is the minimum of the allocations of its two endpoints (and its
// cap). Rate changes propagate to neighbouring hosts until they attenuate
// below a relative epsilon. This is the standard flow-level approximation of
// global max-min fairness: exact on single-bottleneck topologies (see tests)
// and within a few percent elsewhere, at per-event cost proportional to the
// degree of the affected hosts rather than to the number of flows in the
// system.
//
// Hot-path structure (see docs/SIMULATOR.md): flows live in a slot+generation
// slab; host adjacency lists support O(1) removal through per-flow stored
// positions and tombstones (compacted amortised, preserving live-entry
// order — the epsilon-gated relaxation is order-sensitive, so removal must
// not permute survivors); each host side caches its last water-fill order so
// refills whose flow set is unchanged can skip the sort when the cached
// order is still valid.
//
// Edge servers are modelled with unlimited uplinks plus a per-connection cap,
// which matches reality (Akamai's serving capacity is not the bottleneck of a
// client download) and keeps their degree from coupling thousands of flows.
//
// Region sharding (docs/PARALLELISM.md): with configure_shards(S > 1) the
// solver switches from immediate relaxation to *window-batched* solving.
// Mutations (start/cancel/complete/capacity changes) only mark hosts dirty;
// solve_barrier() — invoked from the simulator's window barrier — then runs
// one relaxation round with each shard draining its own dirty queue (in
// parallel on the pool when available: a host's refill writes only its own
// side's allocations, so shards are write-disjoint), followed by a serial
// cross-shard exchange in ascending shard order that applies the rates of
// flows spanning shards. Completion events are pinned to the destination
// host's shard. Rates are therefore updated at window granularity instead of
// per-mutation — deterministic for a fixed shard count, byte-identical to
// the legacy path at shards == 1.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "common/arena.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace netsession::net {

/// Capacity value meaning "not a constraint".
inline constexpr Rate kUnlimited = std::numeric_limits<double>::infinity();

/// Identifies a flow; stale ids (after completion/cancel) are safely ignored.
/// Packed 32-bit: pool slot in the low 20 bits, (generation + 1) in the high
/// 12 — the same diet as arena::PoolHandle, so structures that store flow ids
/// densely (peer sources, adjacency mirrors) stay compact. The all-zero value
/// remains the invalid sentinel because a live id always carries gen + 1 >= 1.
struct FlowId {
    static constexpr std::uint32_t kSlotBits = 20;
    static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;

    std::uint32_t value = 0;
    [[nodiscard]] bool valid() const noexcept { return value != 0; }
    [[nodiscard]] constexpr std::uint32_t slot() const noexcept { return value & kSlotMask; }
    [[nodiscard]] constexpr std::uint32_t generation() const noexcept {
        return (value >> kSlotBits) - 1;  // callers must check valid() first
    }
    friend constexpr auto operator<=>(const FlowId&, const FlowId&) = default;
};

class FlowNetwork {
public:
    using CompletionFn = std::function<void(FlowId)>;

    /// Lifetime counters for the perf surface (core/simulation, benches).
    struct Stats {
        std::uint64_t flows_started = 0;
        std::uint64_t flows_completed = 0;
        std::uint64_t flows_cancelled = 0;
        /// Host refills (water-fill recomputations) performed.
        std::uint64_t refills = 0;
        /// Side fills that reused the cached order without sorting.
        std::uint64_t resort_hits = 0;
        /// Side fills that had to (re)sort their flow bounds.
        std::uint64_t resort_misses = 0;
    };

    /// `sim` must outlive the network.
    explicit FlowNetwork(sim::Simulator& sim) : sim_(&sim) {}

    FlowNetwork(const FlowNetwork&) = delete;
    FlowNetwork& operator=(const FlowNetwork&) = delete;

    /// Switches to window-batched per-shard solving (see header comment).
    /// Must be called before any host is added; shards == 1 is the legacy
    /// immediate-relaxation solver, byte-for-byte.
    void configure_shards(int shards);
    [[nodiscard]] int shards() const noexcept { return static_cast<int>(lanes_.size()); }

    /// Tags a host with its shard (World pins it from the host's region).
    void set_host_shard(HostId h, int shard);
    [[nodiscard]] int host_shard(HostId h) const noexcept {
        return static_cast<int>(hosts_[h.value].lane);
    }

    /// Batched solve, called from the simulator's window barrier when
    /// sharded. No-op on the legacy solver or when nothing is dirty.
    void solve_barrier();

    /// Adds a host with the given link capacities; returns its index.
    HostId add_host(Rate up, Rate down);

    [[nodiscard]] std::size_t host_count() const noexcept { return hosts_.size(); }

    /// Changes a host's uplink capacity (used for upload throttling and
    /// user-traffic backoff) and reallocates affected flows.
    void set_up_capacity(HostId h, Rate up);
    void set_down_capacity(HostId h, Rate down);
    [[nodiscard]] Rate up_capacity(HostId h) const { return hosts_[h.value].up; }
    [[nodiscard]] Rate down_capacity(HostId h) const { return hosts_[h.value].down; }

    /// Starts a flow of `size` bytes from src to dst with a per-flow rate cap
    /// (kUnlimited for none). `on_complete` fires when the last byte arrives.
    FlowId start_flow(HostId src, HostId dst, Bytes size, Rate cap, CompletionFn on_complete);

    /// Cancels a flow; returns the bytes it transferred. No-op (returns 0)
    /// for stale ids.
    Bytes cancel_flow(FlowId id);

    /// True if the flow is still running.
    [[nodiscard]] bool active(FlowId id) const;
    /// Bytes moved so far (settled to the current instant).
    [[nodiscard]] Bytes transferred(FlowId id);
    /// The current allocated rate.
    [[nodiscard]] Rate current_rate(FlowId id) const;

    /// Concurrent flows on a host side (for tests and peer logic).
    [[nodiscard]] int out_degree(HostId h) const;
    [[nodiscard]] int in_degree(HostId h) const;

    /// Total bytes delivered by completed and cancelled flows. Accumulated in
    /// exact fluid bytes per flow and rounded once at each flow's end, so the
    /// sum cannot drift from the sum of flow sizes however many partial
    /// settles a flow goes through.
    [[nodiscard]] Bytes total_delivered() const noexcept { return total_delivered_; }

    /// Visits every active flow as (id, src, dst), in slot order (stable and
    /// deterministic for a given history). The callback must not start or
    /// cancel flows; collect ids and act after the sweep.
    template <typename Fn>
    void for_each_active(Fn&& fn) const {
        for (std::uint32_t slot = 0; slot < flow_pool_.slot_count(); ++slot) {
            if (!flow_pool_.is_live(slot)) continue;
            const Flow& f = flow_pool_.at_slot(slot);
            if (f.active) fn(make_id(slot), f.src, f.dst);
        }
    }

    /// Relative rate change below which updates do not propagate.
    void set_epsilon(double eps) noexcept { epsilon_ = eps; }

    /// Snapshot (refill/sort-cache counters are kept per shard and summed).
    [[nodiscard]] Stats stats() const noexcept;

    /// Flow-slab storage accounting for the mem.* gauges.
    [[nodiscard]] arena::PoolStats pool_stats() const noexcept;

private:
    struct LaneState;  // per-shard solver state, defined below

    /// Tombstone marker inside adjacency lists.
    static constexpr std::uint32_t kDeadSlot = 0xFFFFFFFFu;
    /// Sort-cache epoch meaning "no cached order".
    static constexpr std::uint64_t kNoEpoch = ~std::uint64_t{0};

    /// One side's adjacency: flow slots in insertion order, with O(1)
    /// tombstone removal (flows remember their position) and amortised
    /// compaction that preserves live-entry order. `epoch` advances on every
    /// membership change and validates the cached water-fill order.
    struct AdjList {
        std::vector<std::uint32_t> entries;
        std::uint32_t dead = 0;
        std::uint64_t epoch = 0;
        /// Slot order of the last sort, reusable while `sorted_epoch == epoch`
        /// and the recomputed bounds still come out sorted.
        std::vector<std::uint32_t> sorted;
        std::uint64_t sorted_epoch = kNoEpoch;

        [[nodiscard]] std::size_t live() const noexcept { return entries.size() - dead; }
    };

    struct Host {
        Rate up = kUnlimited;
        Rate down = kUnlimited;
        AdjList out;
        AdjList in;
        std::uint32_t lane = 0;  // shard the host is pinned to
        bool queued = false;     // already in its shard's dirty work queue
    };

    struct Flow {
        HostId src;
        HostId dst;
        Rate cap = kUnlimited;
        Rate rate = 0.0;
        Rate alloc_src = kUnlimited;  // last allocation from src's uplink fill
        Rate alloc_dst = kUnlimited;  // last allocation from dst's downlink fill
        double remaining = 0.0;  // fluid-model fractional bytes
        double done = 0.0;
        sim::SimTime last_settle{};
        sim::EventHandle completion;
        CompletionFn on_complete;
        std::uint32_t src_pos = 0;  // index in hosts_[src].out.entries
        std::uint32_t dst_pos = 0;  // index in hosts_[dst].in.entries
        bool active = false;
        /// Dedup mark used by the serial cross-shard exchange (set and
        /// cleared within one solve_barrier call; serial contexts only).
        bool in_exchange = false;
    };

    /// Slot generations live in the pool; FlowId packs (generation + 1) so
    /// the all-zero id stays the invalid sentinel for slot 0 / generation 0.
    [[nodiscard]] FlowId make_id(std::uint32_t slot) const {
        return FlowId{((flow_pool_.generation(slot) + 1u) << FlowId::kSlotBits) | slot};
    }
    [[nodiscard]] Flow& flow_at(std::uint32_t slot) { return flow_pool_.at_slot(slot); }
    [[nodiscard]] const Flow& flow_at(std::uint32_t slot) const {
        return flow_pool_.at_slot(slot);
    }
    [[nodiscard]] const Flow* find(FlowId id) const;
    [[nodiscard]] Flow* find(FlowId id);

    void settle(std::uint32_t slot);
    void reschedule(std::uint32_t slot);
    void complete(std::uint32_t slot);
    void remove(std::uint32_t slot);
    void mark_dirty(HostId h);
    void process_dirty();
    /// Recomputes one side's water-fill and applies new rates; marks
    /// neighbours whose allocation changed materially.
    void refill_host(HostId h, LaneState& ls);
    void apply_rate(std::uint32_t slot);
    /// Defers apply_rate(slot) to the next barrier (sharded solver only).
    void defer_apply(std::uint32_t slot);

    void adj_push(AdjList& adj, std::uint32_t slot, std::uint32_t Flow::* pos_field);
    void adj_remove(AdjList& adj, std::uint32_t pos, std::uint32_t Flow::* pos_field);
    /// Water-fills one host side; factored out of refill_host.
    void fill_side(Rate capacity, AdjList& adj, bool side_is_up, LaneState& ls);

    /// Per-shard solver state. A host is in at most one dirty queue (its own
    /// shard's, guarded by Host::queued); during the barrier's parallel
    /// refill round each shard touches only its own LaneState, its own
    /// hosts' adjacency caches, and its own side of cross-shard flows.
    struct LaneState {
        std::vector<HostId> dirty;
        /// Cross-shard flows touched by this shard's refills, awaiting the
        /// serial exchange (may hold duplicates; the exchange dedups).
        std::vector<std::uint32_t> exchange;
        // Scratch buffer for water-filling (avoid per-call allocation).
        std::vector<std::pair<double, std::uint32_t>> fill_scratch;
        std::uint64_t refills = 0;
        std::uint64_t resort_hits = 0;
        std::uint64_t resort_misses = 0;
    };

    [[nodiscard]] bool deferred() const noexcept { return lanes_.size() > 1; }

    sim::Simulator* sim_;
    std::vector<Host> hosts_;
    /// Flow slab: chunked stable-address storage, LIFO slot reuse, pool
    /// generations back the FlowId staleness check. Flows are *released*
    /// (parked), never destroyed, so every slot stays constructed.
    arena::Pool<Flow> flow_pool_;
    std::vector<LaneState> lanes_{1};
    /// Slots needing an apply_rate at the next barrier regardless of refills
    /// (new flows, capacity lifts). Serial contexts only; slot reuse within a
    /// window leaves stale entries, which apply_rate tolerates.
    std::vector<std::uint32_t> pending_apply_;
    std::vector<std::uint32_t> exchange_applied_;  // scratch for solve_barrier
    bool processing_ = false;
    double epsilon_ = 0.02;
    Bytes total_delivered_ = 0;
    Stats stats_;
};

}  // namespace netsession::net
