// Reliable client accounting.
//
// Content providers pay for NetSession's services and "expect detailed logs
// that show the amount and the quality of the services provided" (paper
// §3.1). Because peers are untrusted, compromised clients can attempt
// *accounting attacks* — misreporting the service they received or provided
// (§3.5, §6.2, citing Aditya et al., NSDI'12). NetSession cross-checks peer
// reports against data from the trusted edge servers and filters out
// implausible ones; this module implements that defence plus the per-provider
// billing rollups.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "trace/trace_log.hpp"

namespace netsession::accounting {

/// Why a report was rejected by the plausibility filter.
enum class RejectReason : std::uint8_t {
    none,
    negative_bytes,
    infra_bytes_exceed_ground_truth,  // claimed more than the edge served
    total_exceeds_plausible_size,     // claimed more than the object could need
};

/// Per-provider billing rollup.
struct ProviderUsage {
    Bytes infra_bytes = 0;
    Bytes peer_bytes = 0;
    std::int64_t downloads = 0;
    std::int64_t completed = 0;
};

class AccountingService {
public:
    /// `log` receives every accepted record; must outlive the service.
    explicit AccountingService(trace::TraceLog& log) : log_(&log) {}

    /// Installs the trusted byte counter (the edge ledger): given a GUID and
    /// object, how many bytes did the infrastructure actually serve it?
    void set_ground_truth(std::function<Bytes(Guid, ObjectId)> infra_bytes) {
        ground_truth_ = std::move(infra_bytes);
    }

    /// Multiplicative slack allowed over ground truth / object size before a
    /// report is declared an attack (re-sent pieces, rounding).
    void set_tolerance(double tolerance) noexcept { tolerance_ = tolerance; }

    /// Validates a peer-submitted download report; accepted reports are
    /// appended to the trace log and billed, rejected ones are only counted.
    RejectReason submit(const trace::DownloadRecord& reported);

    [[nodiscard]] std::int64_t accepted() const noexcept { return accepted_; }
    [[nodiscard]] std::int64_t rejected() const noexcept { return rejected_; }
    [[nodiscard]] const std::map<std::uint32_t, ProviderUsage>& billing() const noexcept {
        return billing_;
    }

private:
    trace::TraceLog* log_;
    std::function<Bytes(Guid, ObjectId)> ground_truth_;
    double tolerance_ = 1.05;
    std::int64_t accepted_ = 0;
    std::int64_t rejected_ = 0;
    std::map<std::uint32_t, ProviderUsage> billing_;  // keyed by CpCode value
};

}  // namespace netsession::accounting
