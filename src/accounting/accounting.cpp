#include "accounting/accounting.hpp"

namespace netsession::accounting {

RejectReason AccountingService::submit(const trace::DownloadRecord& reported) {
    RejectReason reason = RejectReason::none;

    if (reported.bytes_from_infrastructure < 0 || reported.bytes_from_peers < 0) {
        reason = RejectReason::negative_bytes;
    } else if (ground_truth_) {
        const Bytes truth = ground_truth_(reported.guid, reported.object);
        // A compromised peer can claim *more* infrastructure service than it
        // received to inflate the provider's bill; the trusted edge count
        // bounds the claim. (Claiming less only hurts the attacker.)
        const auto limit = static_cast<Bytes>(static_cast<double>(truth) * tolerance_) + 4096;
        if (reported.bytes_from_infrastructure > limit)
            reason = RejectReason::infra_bytes_exceed_ground_truth;
    }
    if (reason == RejectReason::none && reported.object_size > 0) {
        // No legitimate download needs much more than the object size in
        // total; allow some slack for re-fetched corrupt pieces.
        const auto plausible =
            static_cast<Bytes>(static_cast<double>(reported.object_size) * (tolerance_ + 0.25));
        if (reported.total_bytes() > plausible) reason = RejectReason::total_exceeds_plausible_size;
    }

    if (reason != RejectReason::none) {
        ++rejected_;
        return reason;
    }

    ++accepted_;
    log_->add(reported);
    ProviderUsage& usage = billing_[reported.cp_code.value];
    usage.infra_bytes += reported.bytes_from_infrastructure;
    usage.peer_bytes += reported.bytes_from_peers;
    ++usage.downloads;
    if (reported.outcome == trace::DownloadOutcome::completed) ++usage.completed;
    return RejectReason::none;
}

}  // namespace netsession::accounting
