// Trace anonymisation.
//
// "To protect the privacy of users and content providers, the data in our
// logs have been anonymized by hashing the file names, IP addresses, and
// GUIDs." (paper §4.1) The keyed permutation below preserves equality (so
// grouping analyses still work) while making original identifiers
// unrecoverable without the key.
#pragma once

#include <string_view>

#include "trace/trace_log.hpp"

namespace netsession::trace {

/// Keyed, equality-preserving identifier scrambler.
class Anonymizer {
public:
    explicit Anonymizer(std::string_view key) : key_(key) {}

    [[nodiscard]] Guid scramble(Guid g) const;
    [[nodiscard]] SecondaryGuid scramble(SecondaryGuid g) const;
    [[nodiscard]] net::IpAddr scramble(net::IpAddr ip) const;
    [[nodiscard]] std::uint64_t scramble_url(std::uint64_t url_hash) const;

    /// Rewrites every identifier in the log in place.
    void anonymize(TraceLog& log) const;

private:
    std::string key_;
};

}  // namespace netsession::trace
