// Binary (de)serialisation of a trace data set: the control-plane logs plus
// the geolocation database needed to analyse them. Lets one expensive
// scenario run feed every table/figure bench (and supports exporting traces
// for offline analysis).
//
// Format: little-endian host dump with a magic/version header; intended for
// same-machine round trips, not as an interchange format.
#pragma once

#include <string>

#include "net/geodb.hpp"
#include "trace/trace_log.hpp"

namespace netsession::trace {

/// Everything an analysis needs from one measurement run.
struct Dataset {
    TraceLog log;
    net::GeoDatabase geodb;
};

/// Writes the data set; returns false on I/O failure.
bool save_dataset(const Dataset& dataset, const std::string& path);

/// Reads a data set previously written by save_dataset; returns false on
/// I/O failure, bad magic, or version mismatch.
bool load_dataset(Dataset& dataset, const std::string& path);

}  // namespace netsession::trace
