// Binary (de)serialisation of a trace data set: the control-plane logs plus
// the geolocation database needed to analyse them. Lets one expensive
// scenario run feed every table/figure bench (and supports exporting traces
// for offline analysis).
//
// Format: little-endian host dump with a magic/version header; intended for
// same-machine round trips, not as an interchange format. Since v7 every POD
// record section starts on a 64-byte-aligned file offset, so load_dataset can
// memory-map the file and hand the record arrays to TraceLog as zero-copy
// views (NS_TRACE_NO_MMAP=1 forces the buffered fallback, same format).
#pragma once

#include <string>

#include "net/geodb.hpp"
#include "trace/trace_log.hpp"

namespace netsession::trace {

/// Everything an analysis needs from one measurement run.
struct Dataset {
    TraceLog log;
    net::GeoDatabase geodb;
};

/// Writes the data set atomically: the bytes go to `path + ".tmp"` and are
/// renamed over `path` only once every write (and the close) succeeded, so a
/// crash or full disk can never leave a truncated file under the real name.
/// Returns false on I/O failure (the temp file is removed).
bool save_dataset(const Dataset& dataset, const std::string& path);

/// Reads a data set previously written by save_dataset; returns false on
/// I/O failure, bad magic, version mismatch, or a truncated/corrupt file —
/// in which case `dataset` is left exactly as the caller passed it (the file
/// is parsed into a local Dataset and swapped in only on success).
bool load_dataset(Dataset& dataset, const std::string& path);

}  // namespace netsession::trace
