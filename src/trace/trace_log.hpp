// The trace store: append-only logs the simulated control plane writes and
// the analysis pipeline reads, mirroring the paper's one-month data set.
#pragma once

#include <vector>

#include "trace/records.hpp"

namespace netsession::trace {

class TraceLog {
public:
    void add(DownloadRecord r) { downloads_.push_back(r); }
    void add(const LoginRecord& r) { logins_.push_back(r); }
    void add(const TransferRecord& r) { transfers_.push_back(r); }
    void add(const DnRegistrationRecord& r) { registrations_.push_back(r); }
    void add(const DegradationRecord& r) { degradations_.push_back(r); }

    [[nodiscard]] const std::vector<DownloadRecord>& downloads() const noexcept {
        return downloads_;
    }
    [[nodiscard]] std::vector<DownloadRecord>& downloads() noexcept { return downloads_; }
    [[nodiscard]] const std::vector<LoginRecord>& logins() const noexcept { return logins_; }
    [[nodiscard]] std::vector<LoginRecord>& logins() noexcept { return logins_; }
    [[nodiscard]] const std::vector<TransferRecord>& transfers() const noexcept {
        return transfers_;
    }
    [[nodiscard]] std::vector<TransferRecord>& transfers() noexcept { return transfers_; }
    [[nodiscard]] const std::vector<DnRegistrationRecord>& registrations() const noexcept {
        return registrations_;
    }
    [[nodiscard]] std::vector<DnRegistrationRecord>& registrations() noexcept {
        return registrations_;
    }
    [[nodiscard]] const std::vector<DegradationRecord>& degradations() const noexcept {
        return degradations_;
    }
    [[nodiscard]] std::vector<DegradationRecord>& degradations() noexcept {
        return degradations_;
    }

    /// Drops everything (used at the end of a warm-up phase: the paper's
    /// trace is a one-month window of a system that had been running for
    /// years).
    void clear() {
        downloads_.clear();
        logins_.clear();
        transfers_.clear();
        registrations_.clear();
        degradations_.clear();
    }

    /// Total log entries across record kinds (Table 1's "log entries" row).
    /// Degradation telemetry is deliberately excluded: it has no counterpart
    /// in the paper's CN log schema, and including it would shift the
    /// Table-1 comparison whenever faults are injected.
    [[nodiscard]] std::size_t total_entries() const noexcept {
        return downloads_.size() + logins_.size() + transfers_.size() + registrations_.size();
    }

    /// Emits the download log as TSV (one line per record) for offline
    /// plotting; returns the number of rows written.
    std::size_t write_downloads_tsv(const std::string& path) const;

private:
    std::vector<DownloadRecord> downloads_;
    std::vector<LoginRecord> logins_;
    std::vector<TransferRecord> transfers_;
    std::vector<DnRegistrationRecord> registrations_;
    std::vector<DegradationRecord> degradations_;
};

}  // namespace netsession::trace
