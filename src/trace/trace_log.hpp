// The trace store: append-only logs the simulated control plane writes and
// the analysis pipeline reads, mirroring the paper's one-month data set.
// Since format v6 it also carries the sampled metrics time series (the obs
// sampler's periodic registry snapshots) plus the metric-name table the
// points index into.
#pragma once

#include <cassert>
#include <string>
#include <vector>

#include "trace/records.hpp"

namespace netsession::trace {

class TraceLog {
public:
    void add(DownloadRecord r) { downloads_.push_back(r); }
    void add(const LoginRecord& r) { logins_.push_back(r); }
    void add(const TransferRecord& r) { transfers_.push_back(r); }
    void add(const DnRegistrationRecord& r) { registrations_.push_back(r); }
    void add(const DegradationRecord& r) { degradations_.push_back(r); }
    void add(const MetricPointRecord& r) {
        assert(r.metric < metric_names_.size() && "metric id must be interned first");
        metric_points_.push_back(r);
    }

    [[nodiscard]] const std::vector<DownloadRecord>& downloads() const noexcept {
        return downloads_;
    }
    [[nodiscard]] std::vector<DownloadRecord>& downloads() noexcept { return downloads_; }
    [[nodiscard]] const std::vector<LoginRecord>& logins() const noexcept { return logins_; }
    [[nodiscard]] std::vector<LoginRecord>& logins() noexcept { return logins_; }
    [[nodiscard]] const std::vector<TransferRecord>& transfers() const noexcept {
        return transfers_;
    }
    [[nodiscard]] std::vector<TransferRecord>& transfers() noexcept { return transfers_; }
    [[nodiscard]] const std::vector<DnRegistrationRecord>& registrations() const noexcept {
        return registrations_;
    }
    [[nodiscard]] std::vector<DnRegistrationRecord>& registrations() noexcept {
        return registrations_;
    }
    [[nodiscard]] const std::vector<DegradationRecord>& degradations() const noexcept {
        return degradations_;
    }
    [[nodiscard]] std::vector<DegradationRecord>& degradations() noexcept {
        return degradations_;
    }

    // --- metrics time series (format v6) ------------------------------------
    /// Interns a metric series name, returning its stable id. Ids are
    /// assigned in first-intern order, which the obs sampler keeps
    /// deterministic (registration order of the registry).
    std::uint32_t intern_metric(std::string_view name) {
        for (std::uint32_t i = 0; i < metric_names_.size(); ++i)
            if (metric_names_[i] == name) return i;
        metric_names_.emplace_back(name);
        return static_cast<std::uint32_t>(metric_names_.size() - 1);
    }
    [[nodiscard]] const std::vector<std::string>& metric_names() const noexcept {
        return metric_names_;
    }
    [[nodiscard]] const std::vector<MetricPointRecord>& metric_points() const noexcept {
        return metric_points_;
    }
    [[nodiscard]] std::vector<MetricPointRecord>& metric_points() noexcept {
        return metric_points_;
    }
    /// Restores a loaded name table (trace/serialize only).
    void set_metric_names(std::vector<std::string> names) { metric_names_ = std::move(names); }

    /// Drops every log record (used at the end of a warm-up phase: the
    /// paper's trace is a one-month window of a system that had been running
    /// for years). The metric-name table survives — it is registration
    /// state, not log content — but warm-up sample points are dropped with
    /// everything else.
    void clear() {
        downloads_.clear();
        logins_.clear();
        transfers_.clear();
        registrations_.clear();
        degradations_.clear();
        metric_points_.clear();
    }

    /// Total log entries across record kinds (Table 1's "log entries" row).
    /// Degradation telemetry and metric samples are deliberately excluded:
    /// neither has a counterpart in the paper's CN log schema, and including
    /// them would shift the Table-1 comparison whenever faults are injected
    /// or sampling cadence changes.
    [[nodiscard]] std::size_t total_entries() const noexcept {
        return downloads_.size() + logins_.size() + transfers_.size() + registrations_.size();
    }

    /// Emits the download log as TSV (one line per record) for offline
    /// plotting; returns the number of rows written.
    std::size_t write_downloads_tsv(const std::string& path) const;

private:
    std::vector<DownloadRecord> downloads_;
    std::vector<LoginRecord> logins_;
    std::vector<TransferRecord> transfers_;
    std::vector<DnRegistrationRecord> registrations_;
    std::vector<DegradationRecord> degradations_;
    std::vector<std::string> metric_names_;
    std::vector<MetricPointRecord> metric_points_;
};

}  // namespace netsession::trace
