// The trace store: append-only logs the simulated control plane writes and
// the analysis pipeline reads, mirroring the paper's one-month data set.
// Since format v6 it also carries the sampled metrics time series (the obs
// sampler's periodic registry snapshots) plus the metric-name table the
// points index into.
//
// Each record section is a Records<T>: either ordinary owned storage (the
// simulator's append path) or a zero-copy view into a memory-mapped dataset
// file (trace/serialize.cpp's load path, format v7). Views are read-only;
// the first mutating access materializes the view into owned storage, so
// writers (the anonymizer, tests) work unchanged while the ~25 fig/table
// benches that only read never pay a deserialization copy.
#pragma once

#include <cassert>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "trace/records.hpp"

namespace netsession::trace {

/// One record section: an owned vector or a borrowed view over POD records
/// (backed by `keepalive`, typically a shared memory mapping). Read access
/// is uniform; mutation materializes views first (copy-on-write).
template <typename T>
class Records {
public:
    using value_type = T;

    Records() = default;

    // --- read access (owned or view mode) -----------------------------------
    [[nodiscard]] const T* data() const noexcept {
        return view_data_ != nullptr ? view_data_ : owned_.data();
    }
    [[nodiscard]] std::size_t size() const noexcept {
        return view_data_ != nullptr ? view_size_ : owned_.size();
    }
    [[nodiscard]] bool empty() const noexcept { return size() == 0; }
    [[nodiscard]] const T* begin() const noexcept { return data(); }
    [[nodiscard]] const T* end() const noexcept { return data() + size(); }
    [[nodiscard]] const T& operator[](std::size_t i) const noexcept { return data()[i]; }
    [[nodiscard]] const T& front() const noexcept { return data()[0]; }
    [[nodiscard]] const T& back() const noexcept { return data()[size() - 1]; }

    // --- mutation (materializes a view into owned storage first) -------------
    [[nodiscard]] T* begin() {
        materialize();
        return owned_.data();
    }
    [[nodiscard]] T* end() {
        materialize();
        return owned_.data() + owned_.size();
    }
    [[nodiscard]] T& front() {
        materialize();
        return owned_.front();
    }
    [[nodiscard]] T& back() {
        materialize();
        return owned_.back();
    }
    void push_back(const T& r) {
        materialize();
        owned_.push_back(r);
    }
    void clear() noexcept {
        owned_.clear();
        drop_view();
    }
    /// Bulk-replaces the contents (the deserializer's fread fallback path).
    void assign(std::vector<T>&& v) noexcept {
        owned_ = std::move(v);
        drop_view();
    }
    /// Borrows `n` records at `p`, keeping `keepalive` alive as long as the
    /// view is in use (the zero-copy mmap path). `p` must be suitably
    /// aligned for T.
    void assign_view(const T* p, std::size_t n, std::shared_ptr<const void> keepalive) noexcept {
        owned_.clear();
        view_data_ = p;
        view_size_ = n;
        keepalive_ = std::move(keepalive);
    }
    [[nodiscard]] bool is_view() const noexcept { return view_data_ != nullptr; }

private:
    void materialize() {
        if (view_data_ == nullptr) return;
        owned_.assign(view_data_, view_data_ + view_size_);
        drop_view();
    }
    void drop_view() noexcept {
        view_data_ = nullptr;
        view_size_ = 0;
        keepalive_.reset();
    }

    std::vector<T> owned_;
    const T* view_data_ = nullptr;
    std::size_t view_size_ = 0;
    std::shared_ptr<const void> keepalive_;
};

class TraceLog {
public:
    void add(DownloadRecord r) { downloads_.push_back(r); }
    void add(const LoginRecord& r) { logins_.push_back(r); }
    void add(const TransferRecord& r) { transfers_.push_back(r); }
    void add(const DnRegistrationRecord& r) { registrations_.push_back(r); }
    void add(const DegradationRecord& r) { degradations_.push_back(r); }
    void add(const FaultRecord& r) { fault_events_.push_back(r); }
    void add(const MetricPointRecord& r) {
        assert(r.metric < metric_names_.size() && "metric id must be interned first");
        metric_points_.push_back(r);
    }

    [[nodiscard]] const Records<DownloadRecord>& downloads() const noexcept { return downloads_; }
    [[nodiscard]] Records<DownloadRecord>& downloads() noexcept { return downloads_; }
    [[nodiscard]] const Records<LoginRecord>& logins() const noexcept { return logins_; }
    [[nodiscard]] Records<LoginRecord>& logins() noexcept { return logins_; }
    [[nodiscard]] const Records<TransferRecord>& transfers() const noexcept { return transfers_; }
    [[nodiscard]] Records<TransferRecord>& transfers() noexcept { return transfers_; }
    [[nodiscard]] const Records<DnRegistrationRecord>& registrations() const noexcept {
        return registrations_;
    }
    [[nodiscard]] Records<DnRegistrationRecord>& registrations() noexcept {
        return registrations_;
    }
    [[nodiscard]] const Records<DegradationRecord>& degradations() const noexcept {
        return degradations_;
    }
    [[nodiscard]] Records<DegradationRecord>& degradations() noexcept { return degradations_; }
    [[nodiscard]] const Records<FaultRecord>& fault_events() const noexcept {
        return fault_events_;
    }
    [[nodiscard]] Records<FaultRecord>& fault_events() noexcept { return fault_events_; }

    // --- metrics time series (format v6) ------------------------------------
    /// Interns a metric series name, returning its stable id. Ids are
    /// assigned in first-intern order, which the obs sampler keeps
    /// deterministic (registration order of the registry).
    std::uint32_t intern_metric(std::string_view name) {
        for (std::uint32_t i = 0; i < metric_names_.size(); ++i)
            if (metric_names_[i] == name) return i;
        metric_names_.emplace_back(name);
        return static_cast<std::uint32_t>(metric_names_.size() - 1);
    }
    [[nodiscard]] const std::vector<std::string>& metric_names() const noexcept {
        return metric_names_;
    }
    [[nodiscard]] const Records<MetricPointRecord>& metric_points() const noexcept {
        return metric_points_;
    }
    [[nodiscard]] Records<MetricPointRecord>& metric_points() noexcept { return metric_points_; }
    /// Restores a loaded name table (trace/serialize only).
    void set_metric_names(std::vector<std::string> names) { metric_names_ = std::move(names); }

    /// Drops every log record (used at the end of a warm-up phase: the
    /// paper's trace is a one-month window of a system that had been running
    /// for years). The metric-name table survives — it is registration
    /// state, not log content — but warm-up sample points are dropped with
    /// everything else.
    void clear() {
        downloads_.clear();
        logins_.clear();
        transfers_.clear();
        registrations_.clear();
        degradations_.clear();
        fault_events_.clear();
        metric_points_.clear();
    }

    /// Total log entries across record kinds (Table 1's "log entries" row).
    /// Degradation telemetry, fault-timeline entries, and metric samples are
    /// deliberately excluded: none has a counterpart in the paper's CN log
    /// schema, and including them would shift the Table-1 comparison
    /// whenever faults are injected or sampling cadence changes.
    [[nodiscard]] std::size_t total_entries() const noexcept {
        return downloads_.size() + logins_.size() + transfers_.size() + registrations_.size();
    }

    /// Emits the download log as TSV (one line per record) for offline
    /// plotting; returns the number of rows written.
    std::size_t write_downloads_tsv(const std::string& path) const;

private:
    Records<DownloadRecord> downloads_;
    Records<LoginRecord> logins_;
    Records<TransferRecord> transfers_;
    Records<DnRegistrationRecord> registrations_;
    Records<DegradationRecord> degradations_;
    Records<FaultRecord> fault_events_;
    std::vector<std::string> metric_names_;
    Records<MetricPointRecord> metric_points_;
};

}  // namespace netsession::trace
