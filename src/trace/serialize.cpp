#include "trace/serialize.hpp"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define NS_TRACE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace netsession::trace {

namespace {

constexpr std::uint64_t kMagic = 0x4E53545243455231ULL;  // "NSTRCE" v1
// v4: padding-free record layouts — the dump of a run is now a pure function
// of the simulation (no indeterminate padding bytes), so identical runs
// produce byte-identical files.
// v5: degradation-telemetry section (fault injection / data-plane hardening).
// v6: sampled-metrics section — a metric-name table plus the obs sampler's
// time-series points (observability layer, docs/OBSERVABILITY.md).
// v7: POD record payloads start on 64-byte-aligned file offsets (zero
// padding), so a memory-mapped file can serve record sections in place as
// TraceLog views with no alignment UB and no deserialisation copy.
// v8: fault-timeline section — the FaultEngine's onset/restore records,
// which recovery analysis pairs into per-fault time-to-recover (chaos
// campaigns, docs/ROBUSTNESS.md).
constexpr std::uint32_t kVersion = 8;
constexpr std::size_t kSectionAlign = 64;

struct FileCloser {
    void operator()(std::FILE* f) const noexcept {
        if (f != nullptr) std::fclose(f);
    }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

/// Streaming writer that tracks the absolute file offset (for alignment
/// padding) and latches the first failure — callers check ok() once at the
/// end instead of threading bool through every write.
class Writer {
public:
    explicit Writer(std::FILE* f) noexcept : f_(f) {}

    [[nodiscard]] bool ok() const noexcept { return ok_; }

    template <typename T>
    void pod(const T& v) {
        bytes(&v, sizeof(T));
    }

    void bytes(const void* p, std::size_t n) {
        if (!ok_ || n == 0) return;
        if (std::fwrite(p, 1, n, f_) != n) {
            ok_ = false;
            return;
        }
        offset_ += n;
    }

    /// Pads with zeros to the next kSectionAlign boundary.
    void align() {
        static constexpr unsigned char zeros[kSectionAlign] = {};
        const std::size_t rem = offset_ % kSectionAlign;
        if (rem != 0) bytes(zeros, kSectionAlign - rem);
    }

private:
    std::FILE* f_;
    std::size_t offset_ = 0;
    bool ok_ = true;
};

template <typename T>
void write_section(Writer& w, const T* data, std::uint64_t n) {
    w.pod(n);
    w.align();
    w.bytes(data, static_cast<std::size_t>(n) * sizeof(T));
}

void write_strings(Writer& w, const std::vector<std::string>& v) {
    w.pod(static_cast<std::uint64_t>(v.size()));
    for (const auto& s : v) {
        w.pod(static_cast<std::uint64_t>(s.size()));
        w.bytes(s.data(), s.size());
    }
}

/// Bounds-checked parser over an in-memory image of the file (a mapping or a
/// buffered read — the format is identical). Scalar header fields are
/// memcpy'd (they sit at unaligned offsets); record arrays are handed out as
/// pointers into the image, which v7 guarantees are kSectionAlign-aligned
/// relative to the image base.
class Cursor {
public:
    Cursor(const unsigned char* base, std::size_t size) noexcept : base_(base), size_(size) {}

    template <typename T>
    [[nodiscard]] bool pod(T& v) noexcept {
        if (sizeof(T) > size_ - off_) return false;
        std::memcpy(&v, base_ + off_, sizeof(T));
        off_ += sizeof(T);
        return true;
    }

    [[nodiscard]] bool align() noexcept {
        const std::size_t rem = off_ % kSectionAlign;
        if (rem == 0) return true;
        const std::size_t skip = kSectionAlign - rem;
        if (skip > size_ - off_) return false;
        off_ += skip;
        return true;
    }

    /// Returns a pointer to `n` in-place records, or nullptr on overrun.
    template <typename T>
    [[nodiscard]] const T* array(std::uint64_t n) noexcept {
        if (n > (size_ - off_) / sizeof(T)) return nullptr;
        const T* p = reinterpret_cast<const T*>(base_ + off_);
        off_ += static_cast<std::size_t>(n) * sizeof(T);
        return p;
    }

    [[nodiscard]] std::size_t remaining() const noexcept { return size_ - off_; }
    [[nodiscard]] bool exhausted() const noexcept { return off_ == size_; }

private:
    const unsigned char* base_;
    std::size_t size_;
    std::size_t off_ = 0;
};

template <typename T>
[[nodiscard]] bool read_section(Cursor& c, const std::shared_ptr<const void>& keepalive,
                                Records<T>& out) {
    std::uint64_t n = 0;
    if (!c.pod(n) || !c.align()) return false;
    const T* p = c.array<T>(n);
    if (p == nullptr) return false;
    out.assign_view(p, static_cast<std::size_t>(n), keepalive);
    return true;
}

[[nodiscard]] bool read_strings(Cursor& c, std::vector<std::string>& v) {
    std::uint64_t n = 0;
    if (!c.pod(n)) return false;
    v.clear();
    // Every entry costs at least its 8-byte length prefix; capping the
    // reserve by that keeps a corrupt count from triggering a huge
    // allocation before the per-entry bounds checks reject the file.
    v.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(n, c.remaining() / 8)));
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t len = 0;
        if (!c.pod(len) || len > c.remaining()) return false;
        const char* p = reinterpret_cast<const char*>(c.array<unsigned char>(len));
        v.emplace_back(p, static_cast<std::size_t>(len));
    }
    return true;
}

/// Flat on-disk form of one geo entry.
struct GeoEntry {
    double lat = 0, lon = 0;
    std::uint32_t ip = 0;
    std::uint32_t city = 0;
    std::uint32_t asn = 0;
    std::uint16_t country = 0;
    std::uint16_t reserved = 0;
};

// The record structs are trivially copyable (ids, ints, times); guard the
// dump format against accidental changes. They must also have no padding
// bytes (unique object representations): the vectors are fwritten raw, and
// indeterminate padding would break byte-identical serialization of
// identical runs — which the determinism guard and the bench cache rely on.
static_assert(std::is_trivially_copyable_v<DownloadRecord>);
static_assert(std::is_trivially_copyable_v<LoginRecord>);
static_assert(std::is_trivially_copyable_v<TransferRecord>);
static_assert(std::is_trivially_copyable_v<DnRegistrationRecord>);
static_assert(std::is_trivially_copyable_v<DegradationRecord>);
static_assert(std::has_unique_object_representations_v<DownloadRecord>);
static_assert(std::has_unique_object_representations_v<LoginRecord>);
static_assert(std::has_unique_object_representations_v<TransferRecord>);
static_assert(std::has_unique_object_representations_v<DnRegistrationRecord>);
static_assert(std::has_unique_object_representations_v<DegradationRecord>);
// GeoEntry and MetricPointRecord hold doubles, for which the
// unique-representation trait is always false; a packed-size check still
// rules out padding.
static_assert(sizeof(GeoEntry) == 2 * sizeof(double) + 3 * sizeof(std::uint32_t) +
                                      2 * sizeof(std::uint16_t));
static_assert(std::is_trivially_copyable_v<MetricPointRecord>);
static_assert(sizeof(MetricPointRecord) ==
              sizeof(sim::SimTime) + sizeof(double) + 2 * sizeof(std::uint32_t));
// FaultRecord also holds a double; the packed-size check rules out padding.
static_assert(std::is_trivially_copyable_v<FaultRecord>);
static_assert(sizeof(FaultRecord) == sizeof(sim::SimTime) + sizeof(double) +
                                         sizeof(std::uint32_t) + sizeof(std::uint16_t) + 10);
// The zero-copy path reinterprets image bytes at kSectionAlign boundaries;
// no record may demand stricter alignment than the format provides.
static_assert(alignof(DownloadRecord) <= kSectionAlign);
static_assert(alignof(LoginRecord) <= kSectionAlign);
static_assert(alignof(TransferRecord) <= kSectionAlign);
static_assert(alignof(DnRegistrationRecord) <= kSectionAlign);
static_assert(alignof(DegradationRecord) <= kSectionAlign);
static_assert(alignof(FaultRecord) <= kSectionAlign);
static_assert(alignof(MetricPointRecord) <= kSectionAlign);
static_assert(alignof(GeoEntry) <= kSectionAlign);

/// Parses a complete file image into `out` (sections become views backed by
/// `keepalive`). Returns false — leaving `out` in an unspecified but safe
/// state — on any structural problem; load_dataset() only swaps `out` into
/// the caller's Dataset on success.
bool parse_dataset(const std::shared_ptr<const void>& keepalive, const unsigned char* base,
                   std::size_t size, Dataset& out) {
    Cursor c(base, size);
    std::uint64_t magic = 0;
    std::uint32_t version = 0;
    if (!c.pod(magic) || !c.pod(version)) return false;
    if (magic != kMagic || version != kVersion) return false;

    TraceLog& log = out.log;
    if (!read_section(c, keepalive, log.downloads())) return false;
    if (!read_section(c, keepalive, log.logins())) return false;
    if (!read_section(c, keepalive, log.transfers())) return false;
    if (!read_section(c, keepalive, log.registrations())) return false;
    if (!read_section(c, keepalive, log.degradations())) return false;
    if (!read_section(c, keepalive, log.fault_events())) return false;
    std::vector<std::string> metric_names;
    if (!read_strings(c, metric_names)) return false;
    if (!read_section(c, keepalive, log.metric_points())) return false;
    for (const auto& r : log.metric_points())
        if (r.metric >= metric_names.size()) return false;  // corrupt name table
    log.set_metric_names(std::move(metric_names));

    std::uint64_t n_geo = 0;
    if (!c.pod(n_geo) || !c.align()) return false;
    const GeoEntry* geo = c.array<GeoEntry>(n_geo);
    if (geo == nullptr) return false;
    out.geodb.reserve(static_cast<std::size_t>(n_geo));
    for (std::uint64_t i = 0; i < n_geo; ++i) {
        const GeoEntry& e = geo[i];
        net::GeoRecord rec;
        rec.location = net::Location{CountryId{e.country}, e.city, net::GeoPoint{e.lat, e.lon}};
        rec.asn = Asn{e.asn};
        out.geodb.register_ip(net::IpAddr{e.ip}, rec);
    }
    return c.exhausted();  // trailing garbage means a corrupt or foreign file
}

#ifdef NS_TRACE_HAVE_MMAP
/// Read-only whole-file mapping; Records views keep it alive via shared_ptr.
class MappedFile {
public:
    static std::shared_ptr<MappedFile> open(const std::string& path) {
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0) return nullptr;
        struct ::stat st {};
        if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
            ::close(fd);
            return nullptr;
        }
        const auto size = static_cast<std::size_t>(st.st_size);
        void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
        ::close(fd);  // the mapping keeps its own reference
        if (p == MAP_FAILED) return nullptr;
        return std::shared_ptr<MappedFile>(new MappedFile(p, size));
    }

    ~MappedFile() { ::munmap(p_, size_); }
    MappedFile(const MappedFile&) = delete;
    MappedFile& operator=(const MappedFile&) = delete;

    [[nodiscard]] const unsigned char* data() const noexcept {
        return static_cast<const unsigned char*>(p_);
    }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }

private:
    MappedFile(void* p, std::size_t size) noexcept : p_(p), size_(size) {}
    void* p_;
    std::size_t size_;
};
#endif  // NS_TRACE_HAVE_MMAP

}  // namespace

bool save_dataset(const Dataset& dataset, const std::string& path) {
    // Write to a sibling temp file and rename into place only after every
    // write (including fclose) succeeded: a crash or full disk mid-save can
    // never leave a truncated file under the real name, so the bench cache
    // is either absent, the old dataset, or the complete new one.
    const std::string tmp = path + ".tmp";
    bool ok = false;
    {
        File f(std::fopen(tmp.c_str(), "wb"));
        if (!f) return false;
        Writer w(f.get());
        w.pod(kMagic);
        w.pod(kVersion);
        const TraceLog& log = dataset.log;
        write_section(w, log.downloads().data(), log.downloads().size());
        write_section(w, log.logins().data(), log.logins().size());
        write_section(w, log.transfers().data(), log.transfers().size());
        write_section(w, log.registrations().data(), log.registrations().size());
        write_section(w, log.degradations().data(), log.degradations().size());
        write_section(w, log.fault_events().data(), log.fault_events().size());
        write_strings(w, log.metric_names());
        write_section(w, log.metric_points().data(), log.metric_points().size());

        std::vector<GeoEntry> geo;
        geo.reserve(dataset.geodb.size());
        dataset.geodb.for_each([&](net::IpAddr ip, const net::GeoRecord& rec) {
            GeoEntry e;
            e.ip = ip.value;
            e.country = rec.location.country.value;
            e.city = rec.location.city;
            e.lat = rec.location.point.lat;
            e.lon = rec.location.point.lon;
            e.asn = rec.asn.value;
            geo.push_back(e);
        });
        write_section(w, geo.data(), geo.size());

        ok = w.ok() && std::fflush(f.get()) == 0 && std::ferror(f.get()) == 0;
        std::FILE* raw = f.release();
        if (std::fclose(raw) != 0) ok = false;
    }
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool load_dataset(Dataset& dataset, const std::string& path) {
    // Assemble into a local Dataset and swap on success: a truncated or
    // corrupt file must not leave the caller's dataset partially populated.
    Dataset loaded;
#ifdef NS_TRACE_HAVE_MMAP
    // NS_TRACE_NO_MMAP=1 forces the buffered path (tests, A/B measurement).
    if (std::getenv("NS_TRACE_NO_MMAP") == nullptr) {
        if (auto map = MappedFile::open(path)) {
            const unsigned char* base = map->data();
            const std::size_t size = map->size();
            if (!parse_dataset(map, base, size, loaded)) return false;
            dataset = std::move(loaded);
            return true;
        }
        // fall through: mmap can fail on exotic filesystems; buffered read
        // accepts the identical format
    }
#endif
    File f(std::fopen(path.c_str(), "rb"));
    if (!f) return false;
    if (std::fseek(f.get(), 0, SEEK_END) != 0) return false;
    const long end = std::ftell(f.get());
    if (end <= 0 || std::fseek(f.get(), 0, SEEK_SET) != 0) return false;
    const auto size = static_cast<std::size_t>(end);
    auto buf = std::make_shared<std::vector<unsigned char>>(size);
    if (std::fread(buf->data(), 1, size, f.get()) != size) return false;
    if (!parse_dataset(buf, buf->data(), size, loaded)) return false;
    dataset = std::move(loaded);
    return true;
}

}  // namespace netsession::trace
