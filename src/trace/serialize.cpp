#include "trace/serialize.hpp"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

namespace netsession::trace {

namespace {

constexpr std::uint64_t kMagic = 0x4E53545243455231ULL;  // "NSTRCE" v1
// v4: padding-free record layouts — the dump of a run is now a pure function
// of the simulation (no indeterminate padding bytes), so identical runs
// produce byte-identical files.
// v5: degradation-telemetry section (fault injection / data-plane hardening).
// v6: sampled-metrics section — a metric-name table plus the obs sampler's
// time-series points (observability layer, docs/OBSERVABILITY.md).
constexpr std::uint32_t kVersion = 6;

struct FileCloser {
    void operator()(std::FILE* f) const noexcept {
        if (f != nullptr) std::fclose(f);
    }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool write_pod(std::FILE* f, const T& v) {
    return std::fwrite(&v, sizeof(T), 1, f) == 1;
}

template <typename T>
bool read_pod(std::FILE* f, T& v) {
    return std::fread(&v, sizeof(T), 1, f) == 1;
}

template <typename T>
bool write_vec(std::FILE* f, const std::vector<T>& v) {
    const std::uint64_t n = v.size();
    if (!write_pod(f, n)) return false;
    if (n == 0) return true;
    return std::fwrite(v.data(), sizeof(T), v.size(), f) == v.size();
}

template <typename T>
bool read_vec(std::FILE* f, std::vector<T>& v) {
    std::uint64_t n = 0;
    if (!read_pod(f, n)) return false;
    v.resize(n);
    if (n == 0) return true;
    return std::fread(v.data(), sizeof(T), v.size(), f) == v.size();
}

bool write_strings(std::FILE* f, const std::vector<std::string>& v) {
    const std::uint64_t n = v.size();
    if (!write_pod(f, n)) return false;
    for (const auto& s : v) {
        const std::uint64_t len = s.size();
        if (!write_pod(f, len)) return false;
        if (len != 0 && std::fwrite(s.data(), 1, s.size(), f) != s.size()) return false;
    }
    return true;
}

bool read_strings(std::FILE* f, std::vector<std::string>& v) {
    std::uint64_t n = 0;
    if (!read_pod(f, n)) return false;
    v.clear();
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t len = 0;
        if (!read_pod(f, len)) return false;
        std::string s(len, '\0');
        if (len != 0 && std::fread(s.data(), 1, len, f) != len) return false;
        v.push_back(std::move(s));
    }
    return true;
}

/// Flat on-disk form of one geo entry.
struct GeoEntry {
    double lat = 0, lon = 0;
    std::uint32_t ip = 0;
    std::uint32_t city = 0;
    std::uint32_t asn = 0;
    std::uint16_t country = 0;
    std::uint16_t reserved = 0;
};

// The record structs are trivially copyable (ids, ints, times); guard the
// dump format against accidental changes. They must also have no padding
// bytes (unique object representations): the vectors are fwritten raw, and
// indeterminate padding would break byte-identical serialization of
// identical runs — which the determinism guard and the bench cache rely on.
static_assert(std::is_trivially_copyable_v<DownloadRecord>);
static_assert(std::is_trivially_copyable_v<LoginRecord>);
static_assert(std::is_trivially_copyable_v<TransferRecord>);
static_assert(std::is_trivially_copyable_v<DnRegistrationRecord>);
static_assert(std::is_trivially_copyable_v<DegradationRecord>);
static_assert(std::has_unique_object_representations_v<DownloadRecord>);
static_assert(std::has_unique_object_representations_v<LoginRecord>);
static_assert(std::has_unique_object_representations_v<TransferRecord>);
static_assert(std::has_unique_object_representations_v<DnRegistrationRecord>);
static_assert(std::has_unique_object_representations_v<DegradationRecord>);
// GeoEntry and MetricPointRecord hold doubles, for which the
// unique-representation trait is always false; a packed-size check still
// rules out padding.
static_assert(sizeof(GeoEntry) == 2 * sizeof(double) + 3 * sizeof(std::uint32_t) +
                                      2 * sizeof(std::uint16_t));
static_assert(std::is_trivially_copyable_v<MetricPointRecord>);
static_assert(sizeof(MetricPointRecord) ==
              sizeof(sim::SimTime) + sizeof(double) + 2 * sizeof(std::uint32_t));

}  // namespace

bool save_dataset(const Dataset& dataset, const std::string& path) {
    File f(std::fopen(path.c_str(), "wb"));
    if (!f) return false;
    if (!write_pod(f.get(), kMagic) || !write_pod(f.get(), kVersion)) return false;
    if (!write_vec(f.get(), dataset.log.downloads())) return false;
    if (!write_vec(f.get(), dataset.log.logins())) return false;
    if (!write_vec(f.get(), dataset.log.transfers())) return false;
    if (!write_vec(f.get(), dataset.log.registrations())) return false;
    if (!write_vec(f.get(), dataset.log.degradations())) return false;
    if (!write_strings(f.get(), dataset.log.metric_names())) return false;
    if (!write_vec(f.get(), dataset.log.metric_points())) return false;

    std::vector<GeoEntry> geo;
    geo.reserve(dataset.geodb.size());
    dataset.geodb.for_each([&](net::IpAddr ip, const net::GeoRecord& rec) {
        GeoEntry e;
        e.ip = ip.value;
        e.country = rec.location.country.value;
        e.city = rec.location.city;
        e.lat = rec.location.point.lat;
        e.lon = rec.location.point.lon;
        e.asn = rec.asn.value;
        geo.push_back(e);
    });
    return write_vec(f.get(), geo);
}

bool load_dataset(Dataset& dataset, const std::string& path) {
    File f(std::fopen(path.c_str(), "rb"));
    if (!f) return false;
    std::uint64_t magic = 0;
    std::uint32_t version = 0;
    if (!read_pod(f.get(), magic) || !read_pod(f.get(), version)) return false;
    if (magic != kMagic || version != kVersion) return false;

    dataset.log.clear();
    std::vector<DownloadRecord> downloads;
    std::vector<LoginRecord> logins;
    std::vector<TransferRecord> transfers;
    std::vector<DnRegistrationRecord> registrations;
    std::vector<DegradationRecord> degradations;
    std::vector<std::string> metric_names;
    std::vector<MetricPointRecord> metric_points;
    if (!read_vec(f.get(), downloads) || !read_vec(f.get(), logins) ||
        !read_vec(f.get(), transfers) || !read_vec(f.get(), registrations) ||
        !read_vec(f.get(), degradations) || !read_strings(f.get(), metric_names) ||
        !read_vec(f.get(), metric_points))
        return false;
    for (const auto& r : metric_points)
        if (r.metric >= metric_names.size()) return false;  // corrupt name table
    for (const auto& r : downloads) dataset.log.add(r);
    for (const auto& r : logins) dataset.log.add(r);
    for (const auto& r : transfers) dataset.log.add(r);
    for (const auto& r : registrations) dataset.log.add(r);
    for (const auto& r : degradations) dataset.log.add(r);
    dataset.log.set_metric_names(std::move(metric_names));
    for (const auto& r : metric_points) dataset.log.add(r);

    std::vector<GeoEntry> geo;
    if (!read_vec(f.get(), geo)) return false;
    for (const auto& e : geo) {
        net::GeoRecord rec;
        rec.location = net::Location{CountryId{e.country}, e.city, net::GeoPoint{e.lat, e.lon}};
        rec.asn = Asn{e.asn};
        dataset.geodb.register_ip(net::IpAddr{e.ip}, rec);
    }
    return true;
}

}  // namespace netsession::trace
