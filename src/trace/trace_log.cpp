#include "trace/trace_log.hpp"

#include <cstdio>

namespace netsession::trace {

std::size_t TraceLog::write_downloads_tsv(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return 0;
    std::fprintf(f,
                 "guid\turl_hash\tcp_code\tsize\tstart_s\tend_s\tbytes_infra\tbytes_peers\t"
                 "p2p_enabled\tpeers_returned\toutcome\n");
    std::size_t rows = 0;
    for (const auto& d : downloads_) {
        std::fprintf(f, "%s\t%016llx\t%u\t%lld\t%.3f\t%.3f\t%lld\t%lld\t%d\t%d\t%s\n",
                     d.guid.to_string().c_str(), static_cast<unsigned long long>(d.url_hash),
                     d.cp_code.value, static_cast<long long>(d.object_size), d.start.seconds(),
                     d.end.seconds(), static_cast<long long>(d.bytes_from_infrastructure),
                     static_cast<long long>(d.bytes_from_peers), d.p2p_enabled ? 1 : 0,
                     d.peers_initially_returned, std::string(to_string(d.outcome)).c_str());
        ++rows;
    }
    std::fclose(f);
    return rows;
}

}  // namespace netsession::trace
