#include "trace/anonymize.hpp"

#include "common/sha256.hpp"

namespace netsession::trace {

namespace {
Digest256 keyed(const std::string& key, const void* data, std::size_t n) {
    return hmac_sha256(key, std::string_view(static_cast<const char*>(data), n));
}
}  // namespace

Guid Anonymizer::scramble(Guid g) const {
    if (g.is_nil()) return g;
    const std::uint64_t in[2] = {g.hi, g.lo};
    const Digest256 d = keyed(key_, in, sizeof(in));
    Guid out;
    out.hi = d.prefix64();
    for (int i = 8; i < 16; ++i) out.lo = (out.lo << 8) | d.bytes[static_cast<std::size_t>(i)];
    return out;
}

SecondaryGuid Anonymizer::scramble(SecondaryGuid g) const {
    if (g.is_nil()) return g;
    const Guid tmp = scramble(Guid{g.hi, g.lo});
    return SecondaryGuid{tmp.hi, tmp.lo};
}

net::IpAddr Anonymizer::scramble(net::IpAddr ip) const {
    const std::uint32_t in = ip.value;
    const Digest256 d = keyed(key_, &in, sizeof(in));
    return net::IpAddr{static_cast<std::uint32_t>(d.prefix64())};
}

std::uint64_t Anonymizer::scramble_url(std::uint64_t url_hash) const {
    const Digest256 d = keyed(key_, &url_hash, sizeof(url_hash));
    return d.prefix64();
}

void Anonymizer::anonymize(TraceLog& log) const {
    for (auto& d : log.downloads()) {
        d.guid = scramble(d.guid);
        d.url_hash = scramble_url(d.url_hash);
    }
    for (auto& r : log.logins()) {
        r.guid = scramble(r.guid);
        r.ip = scramble(r.ip);
        for (auto& s : r.secondary_guids) s = scramble(s);
    }
    for (auto& r : log.transfers()) {
        r.from_guid = scramble(r.from_guid);
        r.to_guid = scramble(r.to_guid);
        r.from_ip = scramble(r.from_ip);
        r.to_ip = scramble(r.to_ip);
    }
    for (auto& r : log.registrations()) r.guid = scramble(r.guid);
}

}  // namespace netsession::trace
