// Control-plane log records — the schema of the paper's data set (§4.1).
//
// "When a peer downloads a file from NetSession, the CN records information
// about the download, including the GUID of the peer, the name and size of
// the file, the CP code, the time the download started and ended, and the
// number of bytes downloaded from the infrastructure and from peers. [...]
// when a peer opens a connection to the control plane, the CN records the
// peer's current IP address, its software version, and whether or not
// uploads are enabled on that peer."
//
// Additional record kinds cover the DN registration log (used by Fig 5), the
// per-source transfer detail (used by the §6.1 traffic-balance study), and
// the secondary-GUID reports (§6.2 / Fig 12).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "net/ipv4.hpp"
#include "sim/time.hpp"

namespace netsession::trace {

/// Eventual outcome of a download (§5.2: complete, fail — split into
/// system-related and other causes — or aborted/paused and never resumed).
enum class DownloadOutcome : std::uint8_t {
    completed,
    failed_system,   // e.g. too many corrupted content blocks
    failed_other,    // e.g. the user's disk is full
    aborted_by_user, // paused/terminated and never resumed
    in_progress,     // still running when the trace window closed
};

[[nodiscard]] constexpr std::string_view to_string(DownloadOutcome o) noexcept {
    switch (o) {
        case DownloadOutcome::completed: return "completed";
        case DownloadOutcome::failed_system: return "failed_system";
        case DownloadOutcome::failed_other: return "failed_other";
        case DownloadOutcome::aborted_by_user: return "aborted_by_user";
        case DownloadOutcome::in_progress: return "in_progress";
    }
    return "unknown";
}

/// One download, as recorded by the CN for accounting and billing.
///
/// Field order packs the struct without implicit padding: records are dumped
/// raw by trace/serialize.cpp, and any indeterminate padding byte would make
/// otherwise-identical runs serialize to different files (the determinism
/// guard in tests/integration compares dumps byte-for-byte).
struct DownloadRecord {
    Guid guid;
    ObjectId object;
    std::uint64_t url_hash = 0;  // hashed file name/URL (logs are anonymised)
    Bytes object_size = 0;
    sim::SimTime start;
    sim::SimTime end;
    Bytes bytes_from_infrastructure = 0;
    Bytes bytes_from_peers = 0;
    CpCode cp_code;
    int peers_initially_returned = 0;  // size of the DN's first answer
    bool p2p_enabled = false;
    DownloadOutcome outcome = DownloadOutcome::in_progress;
    std::uint8_t reserved_[6] = {};  // keeps the raw dump free of padding

    /// Peer efficiency of this download (0 for infrastructure-only ones).
    [[nodiscard]] double peer_efficiency() const noexcept {
        const Bytes total = bytes_from_infrastructure + bytes_from_peers;
        return total <= 0 ? 0.0
                          : static_cast<double>(bytes_from_peers) / static_cast<double>(total);
    }
    [[nodiscard]] Bytes total_bytes() const noexcept {
        return bytes_from_infrastructure + bytes_from_peers;
    }
    /// Mean download speed over the download's lifetime, bytes/second.
    [[nodiscard]] double mean_speed() const noexcept {
        const double dt = (end - start).seconds();
        return dt <= 0.0 ? 0.0 : static_cast<double>(total_bytes()) / dt;
    }
};

/// One control-plane login.
struct LoginRecord {
    Guid guid;
    net::IpAddr ip;
    std::uint32_t software_version = 0;
    sim::SimTime time;
    CnId cn;
    bool uploads_enabled = false;
    std::uint8_t reserved_[5] = {};  // keeps the raw dump free of padding
    /// The last five secondary GUIDs, newest first; nil entries unused
    /// (§6.2: reported to the control plane upon login).
    std::array<SecondaryGuid, 5> secondary_guids{};
};

/// One peer-to-peer content transfer within a download: who sent how many
/// content bytes to whom (drives the §6.1 AS traffic matrix).
struct TransferRecord {
    ObjectId object;
    Guid from_guid;
    Guid to_guid;
    net::IpAddr from_ip;
    net::IpAddr to_ip;
    Bytes bytes = 0;
    sim::SimTime time;
};

/// One DN directory registration: a peer announced a locally cached copy
/// (Fig 5 counts these per file).
struct DnRegistrationRecord {
    ObjectId object;
    Guid guid;
    sim::SimTime time;
};

/// A client-side degradation event: the data path noticed a failure and did
/// something about it (§3.8's graceful degradation, made observable). These
/// are simulator-level telemetry — unlike the CN logs above they do not
/// require a live control-plane session, because most of them happen exactly
/// when the control plane or network is unhealthy.
enum class DegradationKind : std::uint8_t {
    edge_stall,          // edge delivery died / never started; will retry
    edge_remapped,       // client re-resolved to a different edge server
    peer_stall,          // a peer source's transfer died; source dropped
    source_blacklisted,  // a source failed repeatedly and is benched
    query_timeout,       // peer-search query went unanswered
    login_timeout,       // control-plane login went unanswered
    stun_timeout,        // STUN probe never returned; conservative NAT used
};

[[nodiscard]] constexpr std::string_view to_string(DegradationKind k) noexcept {
    switch (k) {
        case DegradationKind::edge_stall: return "edge_stall";
        case DegradationKind::edge_remapped: return "edge_remapped";
        case DegradationKind::peer_stall: return "peer_stall";
        case DegradationKind::source_blacklisted: return "source_blacklisted";
        case DegradationKind::query_timeout: return "query_timeout";
        case DegradationKind::login_timeout: return "login_timeout";
        case DegradationKind::stun_timeout: return "stun_timeout";
    }
    return "unknown";
}

/// One degradation event. Like every record above, the layout is packed so
/// the raw dump carries no indeterminate padding.
struct DegradationRecord {
    Guid guid;       // the client that observed the failure
    sim::SimTime time;
    DegradationKind kind = DegradationKind::edge_stall;
    std::uint8_t reserved_[7] = {};
};

/// One fault-timeline entry (trace format v8): the FaultEngine records when
/// each planned fault strikes and when it is restored, so recovery analysis
/// (analysis/recovery.hpp) can measure time-to-recover per fault without
/// re-deriving the timeline from a scenario file. `kind` carries the raw
/// fault::FaultKind value — trace/ sits below fault/ in the layering, so the
/// enum is not named here; analysis and tools that print names link ns_fault.
struct FaultRecord {
    sim::SimTime time;
    /// Kind-specific magnitude: affected fraction (churn / flash crowds) or
    /// capacity multiplier (AS degradation); 0 otherwise.
    double param = 0.0;
    std::uint32_t asn = 0;       // as_degradation target, else 0
    std::uint16_t index = 0;     // event position in the armed plan
    std::uint8_t kind = 0;       // fault::FaultKind value
    std::uint8_t phase = 0;      // 0 = onset, 1 = restore
    std::int8_t region = -1;     // -1 = all regions
    std::int8_t region_b = -1;   // partition second side
    std::uint8_t reserved_[6] = {};  // keeps the raw dump free of padding
};

/// One point of a sampled metric time series (trace format v6). The obs
/// sampler snapshots the metrics registry periodically; `metric` indexes the
/// trace's metric-name table (TraceLog::metric_names()). Counters sample
/// their cumulative value, gauges their level, and histograms expand into
/// two series (`<name>.count`, `<name>.sum`). Packed like every other record
/// so the raw dump carries no indeterminate padding.
struct MetricPointRecord {
    sim::SimTime time;
    double value = 0.0;
    std::uint32_t metric = 0;      // index into TraceLog::metric_names()
    std::uint32_t reserved_ = 0;
};

}  // namespace netsession::trace
