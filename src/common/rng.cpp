#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace netsession {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double Rng::uniform() noexcept {
    // 53 random mantissa bits -> uniform double in [0,1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::below(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection method for unbiased bounded draws.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
        const std::uint64_t t = -n % n;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * n;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
}

bool Rng::chance(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
}

double Rng::exponential(double mean) noexcept {
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double Rng::normal() noexcept {
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) noexcept { return std::exp(normal(mu, sigma)); }

double Rng::pareto(double xm, double alpha) noexcept {
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return xm / std::pow(u, 1.0 / alpha);
}

Rng Rng::child(std::string_view label) const noexcept {
    // FNV-1a over the label, mixed with the parent's original seed. Children
    // depend only on (seed, label), never on how much the parent has drawn.
    std::uint64_t h = 0xCBF29CE484222325ULL ^ seed_;
    for (const char c : label) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001B3ULL;
    }
    std::uint64_t sm = h;
    return Rng{splitmix64(sm)};
}

}  // namespace netsession
