// SHA-256 and HMAC-SHA256, implemented from scratch (FIPS 180-4 / RFC 2104).
//
// NetSession uses secure hashes for two things (paper §3.5): per-piece
// content hashes that let peers validate downloaded data, and
// infrastructure-issued authorization tokens. Both are built on this module.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace netsession {

/// A 256-bit digest.
struct Digest256 {
    std::array<std::uint8_t, 32> bytes{};

    friend bool operator==(const Digest256&, const Digest256&) = default;

    /// Lowercase hex rendering.
    [[nodiscard]] std::string to_hex() const;
    /// First 8 bytes as an integer, for use as a cheap fingerprint.
    [[nodiscard]] std::uint64_t prefix64() const noexcept;
};

/// Incremental SHA-256. Typical use:
///   Sha256 h; h.update(a); h.update(b); Digest256 d = h.finish();
/// finish() may be called once; the object is then spent.
class Sha256 {
public:
    Sha256() noexcept;

    void update(std::span<const std::uint8_t> data) noexcept;
    void update(std::string_view data) noexcept;

    [[nodiscard]] Digest256 finish() noexcept;

    /// One-shot convenience.
    [[nodiscard]] static Digest256 hash(std::string_view data) noexcept;
    [[nodiscard]] static Digest256 hash(std::span<const std::uint8_t> data) noexcept;

private:
    void compress(const std::uint8_t* block) noexcept;

    std::array<std::uint32_t, 8> state_;
    std::array<std::uint8_t, 64> buffer_;
    std::size_t buffered_ = 0;
    std::uint64_t total_bytes_ = 0;
};

/// HMAC-SHA256 (RFC 2104). Used for edge-server authorization tokens.
[[nodiscard]] Digest256 hmac_sha256(std::string_view key, std::string_view message) noexcept;

/// Constant-time digest comparison for MAC verification. Digest256's
/// operator== short-circuits on the first differing byte, which leaks how
/// much of a forged MAC matched; token checks must use this instead.
[[nodiscard]] bool constant_time_equal(const Digest256& a, const Digest256& b) noexcept;

}  // namespace netsession
