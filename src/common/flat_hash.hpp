// Open-addressing hash map/set with dense storage and *insertion-ordered
// iteration* — the cache-friendly replacement for std::unordered_map on the
// simulation hot paths.
//
// Layout (python-dict style, cf. the SwissTable lineage in PAPERS.md):
//
//   entries_   dense vector of {key, value} pairs in insertion order
//   buckets_   power-of-two open-addressed index table of u32 entry indices
//
// Lookups probe buckets_ (triangular probing) and land in entries_ with at
// most one extra cache line; iteration walks entries_ linearly and never
// touches buckets_ at all.
//
// Determinism contract (docs/SIMULATOR.md "Memory layout"): iteration order
// is the insertion order of the *live* keys, full stop. The hash function
// influences probe sequences — i.e. performance — but can never change the
// order in which range-for visits elements, so trace bytes and RNG draw
// order are independent of std::hash quirks across platforms and standard
// libraries. This is what lets these containers replace unordered_map in
// code whose iteration order feeds the trace.
//
// Erasure marks the dense entry dead (tombstone) and frees its bucket;
// iterators skip dead entries. Once more than kCompactMinDead entries are
// dead AND the dead outnumber the live, the table compacts in place
// (erase/remove over entries_, index rebuild) — amortized O(1) per erase.
//
// Invalidation rules are stricter than unordered_map: any insert or erase
// may invalidate iterators, pointers, and references into the table (grow,
// tombstone purge, compaction). Do not hold references across mutations.
//
// Not thread-safe; the simulation is single-threaded by design.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace netsession {

namespace flat_hash_detail {

/// Final avalanche mixer (splitmix64 tail). libstdc++'s std::hash for
/// integers is the identity; a power-of-two table needs the high bits
/// scrambled or sequential ids cluster into long probe chains.
[[nodiscard]] constexpr std::uint64_t mix(std::uint64_t h) noexcept {
    h ^= h >> 30;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 27;
    h *= 0x94D049BB133111EBULL;
    h ^= h >> 31;
    return h;
}

/// Shared core for FlatHashMap / FlatHashSet. `GetKey` projects an entry to
/// its key; map entries are std::pair<K, V>, set entries are K itself.
template <class Entry, class Key, class GetKey, class Hash, class Eq>
class Table {
public:
    static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;
    static constexpr std::uint32_t kTombstone = 0xFFFFFFFEu;
    static constexpr std::size_t kCompactMinDead = 16;

    Table() = default;

    // --- iteration (insertion order, skipping dead entries) ----------------
    template <bool Const>
    class Iter {
    public:
        using TablePtr = std::conditional_t<Const, const Table*, Table*>;
        using Ref = std::conditional_t<Const, const Entry&, Entry&>;
        using Ptr = std::conditional_t<Const, const Entry*, Entry*>;
        using value_type = Entry;
        using difference_type = std::ptrdiff_t;
        using iterator_category = std::forward_iterator_tag;

        Iter() = default;
        Iter(TablePtr t, std::size_t pos) : t_(t), pos_(pos) { skip_dead(); }
        /// const conversion
        template <bool C = Const, class = std::enable_if_t<C>>
        Iter(const Iter<false>& o) : t_(o.t_), pos_(o.pos_) {}

        Ref operator*() const { return t_->entries_[pos_]; }
        Ptr operator->() const { return &t_->entries_[pos_]; }
        Iter& operator++() {
            ++pos_;
            skip_dead();
            return *this;
        }
        Iter operator++(int) {
            Iter tmp = *this;
            ++*this;
            return tmp;
        }
        friend bool operator==(const Iter& a, const Iter& b) { return a.pos_ == b.pos_; }
        friend bool operator!=(const Iter& a, const Iter& b) { return a.pos_ != b.pos_; }

    private:
        friend class Table;
        friend class Iter<true>;
        void skip_dead() {
            while (pos_ < t_->entries_.size() && t_->dead_[pos_]) ++pos_;
        }
        TablePtr t_ = nullptr;
        std::size_t pos_ = 0;
    };

    using iterator = Iter<false>;
    using const_iterator = Iter<true>;

    [[nodiscard]] iterator begin() { return iterator(this, 0); }
    [[nodiscard]] iterator end() { return iterator(this, entries_.size()); }
    [[nodiscard]] const_iterator begin() const { return const_iterator(this, 0); }
    [[nodiscard]] const_iterator end() const { return const_iterator(this, entries_.size()); }

    // --- capacity ----------------------------------------------------------
    [[nodiscard]] std::size_t size() const noexcept { return live_; }
    [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
    [[nodiscard]] std::size_t bucket_count() const noexcept { return buckets_.size(); }
    [[nodiscard]] double load_factor() const noexcept {
        return buckets_.empty() ? 0.0
                                : static_cast<double>(live_) / static_cast<double>(buckets_.size());
    }
    /// Heap footprint of the table's own storage (for the mem.* gauges).
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return buckets_.capacity() * sizeof(std::uint32_t) + entries_.capacity() * sizeof(Entry) +
               dead_.capacity();
    }

    void reserve(std::size_t n) {
        entries_.reserve(n);
        dead_.reserve(n);
        const std::size_t want = bucket_capacity_for(n);
        if (want > buckets_.size()) rebuild(want);
    }

    /// Drops all elements but keeps the allocated storage — the arena-style
    /// "reset for reuse" the hot paths rely on.
    void clear() noexcept {
        entries_.clear();
        dead_.clear();
        buckets_.assign(buckets_.size(), kEmpty);
        live_ = 0;
        dead_count_ = 0;
        used_buckets_ = 0;
    }

    /// Releases excess capacity retained from a past peak: purges dead
    /// entries, reindexes into the smallest bucket table valid for the live
    /// count, and returns spare vector capacity to the allocator. Without
    /// this, an erase-heavy table (a hibernating client's download map, the
    /// directory after a mass logout) keeps its high-water storage forever —
    /// the amortized compaction in maybe_compact() reuses capacity but never
    /// gives it back. An empty table drops all storage. O(n); call from
    /// mass-demote paths, not per-erase.
    void shrink_to_fit() {
        if (live_ == 0) {
            entries_ = std::vector<Entry>();
            dead_ = std::vector<std::uint8_t>();
            buckets_ = std::vector<std::uint32_t>();
            dead_count_ = 0;
            used_buckets_ = 0;
            return;
        }
        rebuild(bucket_capacity_for(live_));
        entries_.shrink_to_fit();
        dead_.shrink_to_fit();
        buckets_.shrink_to_fit();
    }

    // --- lookup ------------------------------------------------------------
    template <class K2>
    [[nodiscard]] iterator find(const K2& key) {
        const std::size_t pos = find_pos(key);
        return pos == npos ? end() : iterator_at(pos);
    }
    template <class K2>
    [[nodiscard]] const_iterator find(const K2& key) const {
        const std::size_t pos = find_pos(key);
        return pos == npos ? end() : const_iterator_at(pos);
    }
    template <class K2>
    [[nodiscard]] bool contains(const K2& key) const {
        return find_pos(key) != npos;
    }
    template <class K2>
    [[nodiscard]] std::size_t count(const K2& key) const {
        return find_pos(key) != npos ? 1 : 0;
    }

    // --- erase -------------------------------------------------------------
    template <class K2>
    std::size_t erase(const K2& key) {
        if (buckets_.empty()) return 0;
        const std::uint64_t h = hash_of(key);
        std::size_t bucket = h & mask();
        std::size_t step = 0;
        while (true) {
            const std::uint32_t idx = buckets_[bucket];
            if (idx == kEmpty) return 0;
            if (idx != kTombstone && eq_(GetKey{}(entries_[idx]), key)) {
                buckets_[bucket] = kTombstone;
                dead_[idx] = 1;
                entries_[idx] = Entry{};  // release payload (strings, vectors) now
                --live_;
                ++dead_count_;
                maybe_compact();
                return 1;
            }
            bucket = (bucket + ++step) & mask();
        }
    }
    iterator erase(iterator it) { return erase(const_iterator(it)); }
    iterator erase(const_iterator it) {
        std::size_t pos = it.pos_;
        erase(GetKey{}(entries_[pos]));
        // Compaction may have shuffled positions; restart is the only safe
        // general answer, but the amortized trigger makes it rare. When no
        // compaction ran, `pos` still denotes the (now dead) entry.
        if (pos >= entries_.size() || !dead_[pos]) pos = 0;
        return iterator(this, pos);
    }

protected:
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    [[nodiscard]] iterator iterator_at(std::size_t pos) {
        iterator it;
        it.t_ = this;
        it.pos_ = pos;
        return it;
    }
    [[nodiscard]] const_iterator const_iterator_at(std::size_t pos) const {
        const_iterator it;
        it.t_ = this;
        it.pos_ = pos;
        return it;
    }

    template <class K2>
    [[nodiscard]] std::uint64_t hash_of(const K2& key) const {
        return mix(static_cast<std::uint64_t>(hash_(key)));
    }
    [[nodiscard]] std::size_t mask() const noexcept { return buckets_.size() - 1; }

    template <class K2>
    [[nodiscard]] std::size_t find_pos(const K2& key) const {
        if (buckets_.empty()) return npos;
        const std::uint64_t h = hash_of(key);
        std::size_t bucket = h & mask();
        std::size_t step = 0;
        while (true) {
            const std::uint32_t idx = buckets_[bucket];
            if (idx == kEmpty) return npos;
            if (idx != kTombstone && eq_(GetKey{}(entries_[idx]), key)) return idx;
            bucket = (bucket + ++step) & mask();
        }
    }

    /// Finds the insertion slot for `key`. Returns {entry_pos, false} when
    /// the key already exists; otherwise appends is up to the caller after
    /// claim_bucket(). Split so map and set can build their own entries.
    template <class K2>
    struct Probe {
        std::size_t entry = 0;   // existing entry position (found == true)
        std::size_t bucket = 0;  // bucket to claim (found == false)
        bool found = false;
    };

    template <class K2>
    [[nodiscard]] Probe<K2> probe_for_insert(const K2& key) {
        ensure_capacity_for_insert();
        const std::uint64_t h = hash_of(key);
        std::size_t bucket = h & mask();
        std::size_t step = 0;
        std::size_t first_tombstone = npos;
        while (true) {
            const std::uint32_t idx = buckets_[bucket];
            if (idx == kEmpty) {
                Probe<K2> p;
                p.bucket = first_tombstone != npos ? first_tombstone : bucket;
                return p;
            }
            if (idx == kTombstone) {
                if (first_tombstone == npos) first_tombstone = bucket;
            } else if (eq_(GetKey{}(entries_[idx]), key)) {
                Probe<K2> p;
                p.entry = idx;
                p.found = true;
                return p;
            }
            bucket = (bucket + ++step) & mask();
        }
    }

    /// Records a freshly appended entries_ slot in the index table.
    void claim_bucket(std::size_t bucket, std::size_t entry_pos) {
        assert(entry_pos < kTombstone);
        if (buckets_[bucket] == kEmpty) ++used_buckets_;
        buckets_[bucket] = static_cast<std::uint32_t>(entry_pos);
        ++live_;
    }

    void ensure_capacity_for_insert() {
        if (buckets_.empty()) {
            buckets_.assign(16, kEmpty);
            return;
        }
        // Grow/rebuild when the index is 7/8 occupied (live + tombstones):
        // probe chains stay short and the rebuild also purges dead entries.
        if ((used_buckets_ + 1) * 8 >= buckets_.size() * 7)
            rebuild(bucket_capacity_for(live_ + 1));
    }

    void maybe_compact() {
        if (dead_count_ > kCompactMinDead && dead_count_ > live_) rebuild(buckets_.size());
    }

    [[nodiscard]] static std::size_t bucket_capacity_for(std::size_t n) {
        // Smallest power of two with load factor <= 0.5 at n live entries —
        // doubling leaves headroom so rebuilds stay rare.
        std::size_t cap = 16;
        while (cap < n * 2) cap *= 2;
        return cap;
    }

    /// Compacts entries_ (dropping dead slots, preserving order) and
    /// reindexes into a table of `new_buckets` buckets.
    void rebuild(std::size_t new_buckets) {
        if (dead_count_ != 0) {
            std::size_t out = 0;
            for (std::size_t i = 0; i < entries_.size(); ++i) {
                if (dead_[i]) continue;
                if (out != i) entries_[out] = std::move(entries_[i]);
                ++out;
            }
            entries_.resize(out);
            dead_.assign(out, 0);
            dead_count_ = 0;
        }
        buckets_.assign(new_buckets, kEmpty);
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            const std::uint64_t h = hash_of(GetKey{}(entries_[i]));
            std::size_t bucket = h & mask();
            std::size_t step = 0;
            while (buckets_[bucket] != kEmpty) bucket = (bucket + ++step) & mask();
            buckets_[bucket] = static_cast<std::uint32_t>(i);
        }
        used_buckets_ = entries_.size();
    }

    std::vector<Entry> entries_;
    std::vector<std::uint8_t> dead_;       // parallel to entries_
    std::vector<std::uint32_t> buckets_;   // power-of-two index table
    std::size_t live_ = 0;
    std::size_t dead_count_ = 0;
    std::size_t used_buckets_ = 0;  // live + tombstoned buckets
    [[no_unique_address]] Hash hash_{};
    [[no_unique_address]] Eq eq_{};
};

struct MapGetKey {
    template <class P>
    const auto& operator()(const P& entry) const noexcept {
        return entry.first;
    }
};
struct SetGetKey {
    template <class K>
    const K& operator()(const K& entry) const noexcept {
        return entry;
    }
};

}  // namespace flat_hash_detail

/// Insertion-ordered open-addressing map. Drop-in for the unordered_map
/// subset the simulator uses (find/contains/operator[]/try_emplace/
/// insert_or_assign/erase/range-for); see file header for the iteration
/// order and invalidation contracts.
template <class K, class V, class Hash = std::hash<K>, class Eq = std::equal_to<>>
class FlatHashMap
    : public flat_hash_detail::Table<std::pair<K, V>, K, flat_hash_detail::MapGetKey, Hash, Eq> {
    using Base = flat_hash_detail::Table<std::pair<K, V>, K, flat_hash_detail::MapGetKey, Hash, Eq>;

public:
    using key_type = K;
    using mapped_type = V;
    using value_type = std::pair<K, V>;
    using iterator = typename Base::iterator;
    using const_iterator = typename Base::const_iterator;

    template <class... Args>
    std::pair<iterator, bool> try_emplace(const K& key, Args&&... args) {
        auto p = this->template probe_for_insert<K>(key);
        if (p.found) return {this->iterator_at(p.entry), false};
        const std::size_t pos = this->entries_.size();
        this->entries_.emplace_back(std::piecewise_construct, std::forward_as_tuple(key),
                                    std::forward_as_tuple(std::forward<Args>(args)...));
        this->dead_.push_back(0);
        this->claim_bucket(p.bucket, pos);
        return {this->iterator_at(pos), true};
    }

    std::pair<iterator, bool> insert(const value_type& kv) {
        return try_emplace(kv.first, kv.second);
    }
    std::pair<iterator, bool> insert(value_type&& kv) {
        return try_emplace(kv.first, std::move(kv.second));
    }

    template <class M>
    std::pair<iterator, bool> insert_or_assign(const K& key, M&& value) {
        auto [it, fresh] = try_emplace(key);
        it->second = std::forward<M>(value);
        return {it, fresh};
    }

    V& operator[](const K& key) { return try_emplace(key).first->second; }

    template <class K2>
    [[nodiscard]] V* find_value(const K2& key) {
        const std::size_t pos = this->template find_pos<K2>(key);
        return pos == Base::npos ? nullptr : &this->entries_[pos].second;
    }
    template <class K2>
    [[nodiscard]] const V* find_value(const K2& key) const {
        const std::size_t pos = this->template find_pos<K2>(key);
        return pos == Base::npos ? nullptr : &this->entries_[pos].second;
    }
    template <class K2>
    [[nodiscard]] V& at(const K2& key) {
        V* v = find_value(key);
        assert(v && "FlatHashMap::at: missing key");
        return *v;
    }
    template <class K2>
    [[nodiscard]] const V& at(const K2& key) const {
        const V* v = find_value(key);
        assert(v && "FlatHashMap::at: missing key");
        return *v;
    }
};

/// Insertion-ordered open-addressing set; same contracts as FlatHashMap.
template <class K, class Hash = std::hash<K>, class Eq = std::equal_to<>>
class FlatHashSet : public flat_hash_detail::Table<K, K, flat_hash_detail::SetGetKey, Hash, Eq> {
    using Base = flat_hash_detail::Table<K, K, flat_hash_detail::SetGetKey, Hash, Eq>;

public:
    using key_type = K;
    using value_type = K;
    using iterator = typename Base::iterator;
    using const_iterator = typename Base::const_iterator;

    std::pair<iterator, bool> insert(const K& key) {
        auto p = this->template probe_for_insert<K>(key);
        if (p.found) return {this->iterator_at(p.entry), false};
        const std::size_t pos = this->entries_.size();
        this->entries_.push_back(key);
        this->dead_.push_back(0);
        this->claim_bucket(p.bucket, pos);
        return {this->iterator_at(pos), true};
    }
    template <class... Args>
    std::pair<iterator, bool> emplace(Args&&... args) {
        return insert(K(std::forward<Args>(args)...));
    }
};

}  // namespace netsession
