#include "common/format.hpp"

#include <cmath>
#include <cstdio>

namespace netsession {

namespace {
std::string printf_string(const char* fmt, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, v);
    return buf;
}
}  // namespace

std::string format_bytes(Bytes n) {
    const double v = static_cast<double>(n);
    const double a = std::fabs(v);
    if (a >= 1e15) return printf_string("%.2f PB", v / 1e15);
    if (a >= 1e12) return printf_string("%.2f TB", v / 1e12);
    if (a >= 1e9) return printf_string("%.2f GB", v / 1e9);
    if (a >= 1e6) return printf_string("%.2f MB", v / 1e6);
    if (a >= 1e3) return printf_string("%.2f kB", v / 1e3);
    return printf_string("%.0f B", v);
}

std::string format_rate(Rate bytes_per_second) {
    return printf_string("%.2f Mbps", to_mbps(bytes_per_second));
}

std::string format_percent(double fraction) { return printf_string("%.1f%%", fraction * 100.0); }

std::string format_fixed(double v, int decimals) {
    char fmt[16];
    std::snprintf(fmt, sizeof(fmt), "%%.%df", decimals);
    return printf_string(fmt, v);
}

std::string format_count(std::int64_t n) {
    const bool neg = n < 0;
    std::string digits = std::to_string(neg ? -n : n);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3 + 1);
    const std::size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
    for (std::size_t i = 0; i < digits.size(); ++i) {
        if (i != 0 && (i - first_group) % 3 == 0 && i >= first_group) out.push_back(',');
        out.push_back(digits[i]);
    }
    if (neg) out.insert(out.begin(), '-');
    return out;
}

std::string format_duration_s(double seconds) {
    const auto total = static_cast<std::int64_t>(seconds);
    const std::int64_t days = total / 86400;
    const std::int64_t h = (total % 86400) / 3600;
    const std::int64_t m = (total % 3600) / 60;
    const std::int64_t s = total % 60;
    char buf[64];
    if (days > 0)
        std::snprintf(buf, sizeof(buf), "%ldd %02ld:%02ld:%02ld", days, h, m, s);
    else
        std::snprintf(buf, sizeof(buf), "%02ld:%02ld:%02ld", h, m, s);
    return buf;
}

}  // namespace netsession
