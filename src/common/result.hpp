// Minimal expected-style result type used across module boundaries where an
// operation can fail for a reason the caller must handle (CppCoreGuidelines
// E.x: prefer explicit error returns over exceptions on expected paths).
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace netsession {

/// Error payload: a machine-checkable code plus a human-readable message.
struct Error {
    enum class Code {
        not_found,
        unauthorized,
        unavailable,
        invalid_argument,
        integrity_failure,
        capacity_exceeded,
        conflict,
    };
    Code code = Code::invalid_argument;
    std::string message;
};

[[nodiscard]] constexpr std::string_view to_string(Error::Code c) noexcept {
    switch (c) {
        case Error::Code::not_found: return "not_found";
        case Error::Code::unauthorized: return "unauthorized";
        case Error::Code::unavailable: return "unavailable";
        case Error::Code::invalid_argument: return "invalid_argument";
        case Error::Code::integrity_failure: return "integrity_failure";
        case Error::Code::capacity_exceeded: return "capacity_exceeded";
        case Error::Code::conflict: return "conflict";
    }
    return "unknown";
}

/// Either a value or an Error. Access to the wrong alternative asserts.
template <typename T>
class Result {
public:
    Result(T value) : v_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
    Result(Error error) : v_(std::move(error)) {}       // NOLINT(google-explicit-constructor)

    [[nodiscard]] bool ok() const noexcept { return std::holds_alternative<T>(v_); }
    explicit operator bool() const noexcept { return ok(); }

    [[nodiscard]] T& value() {
        assert(ok());
        return std::get<T>(v_);
    }
    [[nodiscard]] const T& value() const {
        assert(ok());
        return std::get<T>(v_);
    }
    [[nodiscard]] const Error& error() const {
        assert(!ok());
        return std::get<Error>(v_);
    }

    [[nodiscard]] T value_or(T fallback) const {
        return ok() ? std::get<T>(v_) : std::move(fallback);
    }

private:
    std::variant<T, Error> v_;
};

/// Result for operations with no payload.
class Status {
public:
    Status() = default;
    Status(Error error) : error_(std::move(error)), ok_(false) {}  // NOLINT(google-explicit-constructor)

    [[nodiscard]] bool ok() const noexcept { return ok_; }
    explicit operator bool() const noexcept { return ok_; }
    [[nodiscard]] const Error& error() const {
        assert(!ok_);
        return error_;
    }

private:
    Error error_{};
    bool ok_ = true;
};

}  // namespace netsession
