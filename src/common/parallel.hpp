// Deterministic parallel execution for the offline analysis path.
//
// The measurement pipeline (analysis/) reduces millions of trace records into
// the paper's tables and figures; at the ROADMAP's target scale that pass,
// not the simulator, dominates figure regeneration. This layer makes it
// multi-core without giving up the byte-identity contract the whole repo is
// built on (docs/SIMULATOR.md §3, docs/PARALLELISM.md):
//
//   The result of every primitive here is a pure function of the input and
//   the input size — NEVER of the thread count, the scheduling order, or
//   which worker ran which chunk. NS_THREADS=1 and NS_THREADS=64 produce
//   bit-identical output, including float summation order.
//
// How that is achieved (the three rules, spelled out in docs/PARALLELISM.md):
//
//   1. *Chunk boundaries depend only on n.* Work over [0, n) is split into
//      chunks whose count and extents are computed from n alone
//      (detail::num_chunks). Threads race for chunk *indices*; they never
//      influence chunk *shape*.
//   2. *Partial state is per-chunk, not per-thread.* parallel_reduce gives
//      every chunk its own Partial; a worker that processes three chunks
//      fills three independent partials.
//   3. *Merges run serially in ascending chunk order* on the calling thread.
//      Non-commutative merge effects (float addition, hash-map insertion
//      order) are therefore fixed by the chunk layout, which is fixed by n.
//
// The pool itself is lazily started, process-wide, and sized by
// set_thread_count() / the NS_THREADS environment variable (default:
// hardware_concurrency). With one thread every primitive runs inline on the
// caller — but still through the same chunk decomposition, so switching
// thread counts cannot even reorder equal-element ties in parallel_sort.
//
// The simulator's event callbacks stay off this pool by default. The two
// sanctioned exceptions are engine-level and barrier-scoped: the sharded
// Simulator's optional parallel window dispatch and the FlowNetwork's
// barrier-batched per-shard refill round (docs/PARALLELISM.md "The sharded
// simulation core"). Application code in edge/, control/ and peer/ must
// never call into this header from event callbacks.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace netsession::parallel {

/// Threads the pool targets (>= 1). Resolved on first use from NS_THREADS
/// (or hardware_concurrency when unset/invalid) unless set_thread_count()
/// overrode it.
[[nodiscard]] int thread_count() noexcept;

/// Overrides the pool size. n <= 0 re-resolves the NS_THREADS/-hardware
/// default. Takes effect on the next parallel call; existing workers beyond
/// the new count go idle rather than being joined (cheap, and results do not
/// depend on worker count anyway). Not safe to call concurrently with a
/// running parallel primitive (configure, then compute).
void set_thread_count(int n);

/// Cumulative counters for the observability layer ("did the pool actually
/// run, and how was work distributed"). `chunks_stolen` counts chunks
/// executed by pool workers rather than the calling thread — the analogue of
/// a work-stealing scheduler's steal count under our chunk-racing scheme.
/// `merge_order_checks` counts ordered-merge verifications performed by
/// parallel_reduce (every merge asserts it runs in ascending chunk order).
/// Deliberately NOT registered with a Simulation's metric registry: these
/// are process-wide and analysis-driven, so sampling them into a trace would
/// make trace bytes depend on unrelated prior work in the process.
struct StatsSnapshot {
    std::uint64_t jobs = 0;            // parallel invocations that used the pool
    std::uint64_t inline_jobs = 0;     // invocations that ran fully inline
    std::uint64_t chunks = 0;          // chunks executed, total
    std::uint64_t chunks_stolen = 0;   // chunks executed by pool workers
    std::uint64_t merges = 0;          // ordered merges performed
    std::uint64_t merge_order_checks = 0;
    int threads = 1;                   // current configured thread count
};
[[nodiscard]] StatsSnapshot stats() noexcept;
void reset_stats() noexcept;

namespace detail {

/// Deterministic chunk decomposition: a function of n only. Grain keeps
/// per-chunk bookkeeping negligible; the cap bounds partial-state memory for
/// huge inputs.
inline constexpr std::size_t kGrain = 8192;
inline constexpr std::size_t kMaxChunks = 512;

[[nodiscard]] constexpr std::size_t chunk_size_for(std::size_t n) noexcept {
    const std::size_t by_cap = (n + kMaxChunks - 1) / kMaxChunks;
    return std::max(kGrain, by_cap);
}
[[nodiscard]] constexpr std::size_t num_chunks(std::size_t n) noexcept {
    return n == 0 ? 0 : (n + chunk_size_for(n) - 1) / chunk_size_for(n);
}
[[nodiscard]] constexpr std::pair<std::size_t, std::size_t> chunk_range(std::size_t n,
                                                                        std::size_t chunk) noexcept {
    const std::size_t size = chunk_size_for(n);
    const std::size_t lo = chunk * size;
    return {lo, std::min(n, lo + size)};
}

/// Executes fn(ctx, task) for every task in [0, count) across the pool (the
/// caller participates). Returns when all tasks have finished. Tasks must be
/// independent; completion of the call happens-after every task body.
void run_tasks(std::size_t count, void (*fn)(void*, std::size_t), void* ctx);

void note_merges(std::uint64_t merges, std::uint64_t checks) noexcept;

}  // namespace detail

/// Runs fn(begin, end) over disjoint subranges covering [0, n). fn must not
/// write shared state (use parallel_reduce for that).
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn) {
    if (n == 0) return;
    struct Ctx {
        Fn* fn;
        std::size_t n;
    } ctx{&fn, n};
    detail::run_tasks(detail::num_chunks(n),
                      [](void* p, std::size_t chunk) {
                          auto* c = static_cast<Ctx*>(p);
                          const auto [lo, hi] = detail::chunk_range(c->n, chunk);
                          (*c->fn)(lo, hi);
                      },
                      &ctx);
}

/// Sharded reduction over [0, n): every chunk gets a default-constructed
/// Partial, chunk(partial, begin, end) fills it, and merge(acc, partial) is
/// applied serially in ascending chunk order (chunk 0's partial seeds the
/// accumulator). Returns the accumulator. Merge effects that are not
/// commutative — float addition, container insertion order — are exactly as
/// deterministic as the chunk layout, i.e. fully.
template <typename Partial, typename ChunkFn, typename MergeFn>
[[nodiscard]] Partial parallel_reduce(std::size_t n, ChunkFn&& chunk, MergeFn&& merge) {
    if (n == 0) return Partial{};
    const std::size_t chunks = detail::num_chunks(n);
    if (chunks == 1) {
        Partial only{};
        chunk(only, std::size_t{0}, n);
        return only;
    }
    std::vector<Partial> parts(chunks);
    struct Ctx {
        ChunkFn* chunk;
        Partial* parts;
        std::size_t n;
    } ctx{&chunk, parts.data(), n};
    detail::run_tasks(chunks,
                      [](void* p, std::size_t c) {
                          auto* x = static_cast<Ctx*>(p);
                          const auto [lo, hi] = detail::chunk_range(x->n, c);
                          (*x->chunk)(x->parts[c], lo, hi);
                      },
                      &ctx);
    Partial acc = std::move(parts[0]);
    for (std::size_t i = 1; i < chunks; ++i) merge(acc, std::move(parts[i]));
    detail::note_merges(chunks - 1, chunks);
    return acc;
}

/// Deterministic parallel sort: chunk-local std::sort followed by rounds of
/// pairwise std::inplace_merge over adjacent chunk groups. The merge tree is
/// a function of v.size() only, so the resulting permutation (including the
/// order of elements that compare equal but differ bitwise, e.g. -0.0/0.0)
/// is identical for every thread count — and is the canonical result for a
/// given input regardless of how the serial std::sort would have tied.
template <typename T, typename Cmp = std::less<T>>
void parallel_sort(std::vector<T>& v, Cmp cmp = {}) {
    const std::size_t n = v.size();
    const std::size_t chunks = detail::num_chunks(n);
    if (chunks <= 1) {
        std::sort(v.begin(), v.end(), cmp);
        return;
    }
    struct SortCtx {
        T* data;
        std::size_t n;
        Cmp* cmp;
    } sctx{v.data(), n, &cmp};
    detail::run_tasks(chunks,
                      [](void* p, std::size_t c) {
                          auto* x = static_cast<SortCtx*>(p);
                          const auto [lo, hi] = detail::chunk_range(x->n, c);
                          std::sort(x->data + lo, x->data + hi, *x->cmp);
                      },
                      &sctx);
    // log2(chunks) rounds of pairwise merges; round boundaries are chunk
    // multiples, so every inplace_merge operates on a fixed, n-derived range.
    for (std::size_t width = 1; width < chunks; width *= 2) {
        const std::size_t stride = 2 * width;
        const std::size_t pairs = (chunks + stride - 1) / stride;
        struct MergeCtx {
            T* data;
            std::size_t n, chunks, width, stride;
            Cmp* cmp;
        } mctx{v.data(), n, chunks, width, stride, &cmp};
        detail::run_tasks(pairs,
                          [](void* p, std::size_t pair) {
                              auto* x = static_cast<MergeCtx*>(p);
                              const std::size_t first = pair * x->stride;
                              const std::size_t mid_chunk = first + x->width;
                              if (mid_chunk >= x->chunks) return;  // odd tail, nothing to merge
                              const std::size_t last_chunk =
                                  std::min(x->chunks, first + x->stride);
                              const std::size_t lo = detail::chunk_range(x->n, first).first;
                              const std::size_t mid = detail::chunk_range(x->n, mid_chunk).first;
                              const std::size_t hi =
                                  last_chunk == x->chunks
                                      ? x->n
                                      : detail::chunk_range(x->n, last_chunk).first;
                              std::inplace_merge(x->data + lo, x->data + mid, x->data + hi,
                                                 *x->cmp);
                          },
                          &mctx);
    }
}

}  // namespace netsession::parallel
