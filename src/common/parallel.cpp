#include "common/parallel.hpp"

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace netsession::parallel {

namespace {

struct Stats {
    std::atomic<std::uint64_t> jobs{0};
    std::atomic<std::uint64_t> inline_jobs{0};
    std::atomic<std::uint64_t> chunks{0};
    std::atomic<std::uint64_t> chunks_stolen{0};
    std::atomic<std::uint64_t> merges{0};
    std::atomic<std::uint64_t> merge_order_checks{0};
};
Stats g_stats;

int resolve_default_threads() {
    if (const char* env = std::getenv("NS_THREADS")) {
        char* end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1 && v <= 1024) return static_cast<int>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

// 0 = unresolved (first thread_count() call reads NS_THREADS).
std::atomic<int> g_thread_count{0};

/// The process-wide pool. Workers are spawned lazily on the first job that
/// wants them and race for task indices off a shared atomic; task *shape* is
/// fixed by the caller, so racing only affects who runs what, never the
/// result. One job runs at a time (the primitives are called from top-level
/// analysis code and never nest). The caller participates and does not
/// return until every worker that joined the job has detached from it — the
/// Job lives on the caller's stack.
class Pool {
public:
    static Pool& instance() {
        static Pool pool;
        return pool;
    }

    void run(std::size_t count, void (*fn)(void*, std::size_t), void* ctx, int threads) {
        Job job;
        job.fn = fn;
        job.ctx = ctx;
        job.count = count;
        job.max_workers = threads - 1;
        {
            std::lock_guard<std::mutex> lk(mutex_);
            ensure_workers(threads - 1);
            assert(job_ == nullptr && "parallel primitives must not nest");
            job_ = &job;
            ++generation_;
        }
        work_cv_.notify_all();

        // The caller is a full participant.
        std::uint64_t mine = 0;
        std::size_t task;
        while ((task = job.next.fetch_add(1, std::memory_order_relaxed)) < count) {
            fn(ctx, task);
            ++mine;
            job.done.fetch_add(1, std::memory_order_acq_rel);
        }
        {
            std::unique_lock<std::mutex> lk(mutex_);
            // Retract the job so workers that have not joined yet never will,
            // then wait for the ones that did to finish and detach. After
            // this block no thread holds a pointer to `job`.
            job_ = nullptr;
            done_cv_.wait(lk, [&] {
                return active_ == 0 && job.done.load(std::memory_order_acquire) >= count;
            });
        }
        g_stats.chunks.fetch_add(count, std::memory_order_relaxed);
        g_stats.chunks_stolen.fetch_add(count - mine, std::memory_order_relaxed);
        g_stats.jobs.fetch_add(1, std::memory_order_relaxed);
    }

private:
    struct Job {
        void (*fn)(void*, std::size_t) = nullptr;
        void* ctx = nullptr;
        std::size_t count = 0;
        int max_workers = 0;
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
    };

    Pool() = default;
    ~Pool() {
        {
            std::lock_guard<std::mutex> lk(mutex_);
            stop_ = true;
        }
        work_cv_.notify_all();
        for (auto& w : workers_) w.join();
    }

    void ensure_workers(int wanted) {  // caller holds mutex_
        while (static_cast<int>(workers_.size()) < wanted) {
            const int index = static_cast<int>(workers_.size());
            workers_.emplace_back([this, index] { worker_loop(index); });
        }
    }

    void worker_loop(int index) {
        std::uint64_t seen = 0;
        std::unique_lock<std::mutex> lk(mutex_);
        for (;;) {
            work_cv_.wait(lk, [&] { return stop_ || (job_ != nullptr && generation_ != seen); });
            if (stop_) return;
            seen = generation_;
            Job* job = job_;
            // A worker above the configured count sits this job out — the
            // result is identical either way; this just honours NS_THREADS
            // after a downward set_thread_count().
            if (index >= job->max_workers) continue;
            ++active_;
            lk.unlock();
            std::size_t task;
            while ((task = job->next.fetch_add(1, std::memory_order_relaxed)) < job->count) {
                job->fn(job->ctx, task);
                job->done.fetch_add(1, std::memory_order_acq_rel);
            }
            lk.lock();
            if (--active_ == 0) done_cv_.notify_all();
        }
    }

    std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    std::vector<std::thread> workers_;
    Job* job_ = nullptr;       // guarded by mutex_
    std::uint64_t generation_ = 0;  // guarded by mutex_
    int active_ = 0;           // workers attached to the current job
    bool stop_ = false;
};

}  // namespace

int thread_count() noexcept {
    int n = g_thread_count.load(std::memory_order_relaxed);
    if (n == 0) {
        n = resolve_default_threads();
        int expected = 0;
        if (!g_thread_count.compare_exchange_strong(expected, n, std::memory_order_relaxed))
            n = expected;
    }
    return n;
}

void set_thread_count(int n) {
    g_thread_count.store(n <= 0 ? resolve_default_threads() : n, std::memory_order_relaxed);
}

StatsSnapshot stats() noexcept {
    StatsSnapshot s;
    s.jobs = g_stats.jobs.load(std::memory_order_relaxed);
    s.inline_jobs = g_stats.inline_jobs.load(std::memory_order_relaxed);
    s.chunks = g_stats.chunks.load(std::memory_order_relaxed);
    s.chunks_stolen = g_stats.chunks_stolen.load(std::memory_order_relaxed);
    s.merges = g_stats.merges.load(std::memory_order_relaxed);
    s.merge_order_checks = g_stats.merge_order_checks.load(std::memory_order_relaxed);
    s.threads = thread_count();
    return s;
}

void reset_stats() noexcept {
    g_stats.jobs.store(0, std::memory_order_relaxed);
    g_stats.inline_jobs.store(0, std::memory_order_relaxed);
    g_stats.chunks.store(0, std::memory_order_relaxed);
    g_stats.chunks_stolen.store(0, std::memory_order_relaxed);
    g_stats.merges.store(0, std::memory_order_relaxed);
    g_stats.merge_order_checks.store(0, std::memory_order_relaxed);
}

namespace detail {

void run_tasks(std::size_t count, void (*fn)(void*, std::size_t), void* ctx) {
    if (count == 0) return;
    const int threads = thread_count();
    if (threads <= 1 || count == 1) {
        // Inline execution — same task decomposition, same task order, no
        // pool. Identical results by rule 1 (task shape is caller-fixed).
        for (std::size_t t = 0; t < count; ++t) fn(ctx, t);
        g_stats.chunks.fetch_add(count, std::memory_order_relaxed);
        g_stats.inline_jobs.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    Pool::instance().run(count, fn, ctx, threads);
}

void note_merges(std::uint64_t merges, std::uint64_t checks) noexcept {
    g_stats.merges.fetch_add(merges, std::memory_order_relaxed);
    g_stats.merge_order_checks.fetch_add(checks, std::memory_order_relaxed);
}

}  // namespace detail

}  // namespace netsession::parallel
