// Chunked object pool ("arena") with generation-checked handles — the
// allocation-free backing store for the simulation's churny objects
// (downloads, swarms, flows).
//
// Properties the hot paths rely on (docs/SIMULATOR.md "Memory layout"):
//
//   * Stable addresses. Storage is a list of fixed-size chunks, never
//     reallocated, so T* stays valid for the object's whole lifetime no
//     matter how much the pool grows.
//   * Deterministic slot order. New slots are handed out sequentially;
//     freed slots are reused LIFO. Same request sequence => same slot
//     sequence on every platform (no address-order dependence anywhere).
//   * 32-bit packed handles. A Handle is a single u32: slot in the low 20
//     bits, generation in the high 12. Halving the handle width halves the
//     footprint of everything that stores handles densely (directory
//     postings, flow adjacency lists, per-client download tables) — the
//     point of the per-peer memory diet. A pool therefore holds at most
//     2^20 slots (the simulator aborts loudly if a pool ever outgrows
//     that; at 1M peers the pooled populations — concurrent downloads,
//     flows, swarms — stay far below it).
//   * Free-list reuse keyed by generation. Every release bumps the slot's
//     generation; a Handle carries the generation it was minted with, so a
//     stale handle is detectable. With NS_ARENA_CHECKS=1 (default in debug
//     builds; forced on by the CI ASan leg) every dereference verifies the
//     generation and aborts loudly on a dangling handle.
//   * Generation wrap safety. A 12-bit generation wraps after 4095
//     releases of the same slot. Instead of wrapping (which would let a
//     stale pre-wrap handle alias a new object — silently, even under
//     NS_ARENA_CHECKS), a slot whose generation reaches the cap is
//     *retired*: removed from the free list forever. Aliasing becomes
//     structurally impossible at the cost of ~one leaked slot per 4095
//     releases. Retired slots also guarantee no live handle ever equals
//     the invalid-sentinel bit pattern.
//   * Two release flavours:
//       - destroy(h): runs ~T(), slot returns to raw storage.
//       - release(h): *parks* the object — it stays constructed and is
//         handed back as-is by the next acquire(). This retains internal
//         capacity (vectors of PeerSource, swarm Entry arrays, hash-table
//         storage) across reuse; the caller owns resetting logical state.
//
// Not thread-safe; the simulation is single-threaded by design.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <utility>
#include <vector>

// Dangling-handle detection. On by default whenever asserts are on; CI's
// ASan flavour configures with -DNS_ARENA_CHECKS=1 so the checks also run
// under the sanitizer's RelWithDebInfo build (which defines NDEBUG).
#ifndef NS_ARENA_CHECKS
#ifdef NDEBUG
#define NS_ARENA_CHECKS 0
#else
#define NS_ARENA_CHECKS 1
#endif
#endif

namespace netsession::arena {

[[noreturn]] inline void handle_check_failed(const char* what) {
    std::fprintf(stderr, "arena::Pool: %s (dangling or foreign handle)\n", what);
    std::abort();
}

[[noreturn]] inline void pool_exhausted(const char* what) {
    std::fprintf(stderr, "arena::Pool: %s\n", what);
    std::abort();
}

/// Storage accounting for the mem.* gauges (see Pool::stats()).
struct PoolStats {
    std::size_t live = 0;            ///< objects currently held out
    std::size_t parked = 0;          ///< constructed objects on the free list
    std::size_t slots = 0;           ///< total slots across all chunks
    std::size_t retired = 0;         ///< slots lost to generation-wrap retirement
    std::size_t peak_live = 0;       ///< high-water mark of live
    std::size_t bytes_reserved = 0;  ///< chunk storage owned by the pool
    std::size_t bytes_live = 0;      ///< live * sizeof(T)
};

/// Packed 32-bit pool handle: slot index in the low 20 bits, the generation
/// the slot had when the object was created in the high 12. Trivially
/// copyable; half the width of a pointer, so handle-dense structures
/// (postings lists, adjacency lists) stay compact.
template <class T>
struct PoolHandle {
    static constexpr std::uint32_t kSlotBits = 20;
    static constexpr std::uint32_t kGenBits = 12;
    static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;        // 0xFFFFF
    static constexpr std::uint32_t kGenMask = (1u << kGenBits) - 1;         // 0xFFF
    /// Last generation a handle is ever minted with. 0xFFF is reserved so
    /// slot 0xFFFFF/gen 0xFFF (== the invalid sentinel) can never be live.
    static constexpr std::uint32_t kMaxGeneration = kGenMask - 1;           // 0xFFE
    static constexpr std::uint32_t kInvalidBits = 0xFFFFFFFFu;

    std::uint32_t bits = kInvalidBits;

    constexpr PoolHandle() noexcept = default;
    constexpr PoolHandle(std::uint32_t slot, std::uint32_t generation) noexcept
        : bits((generation << kSlotBits) | slot) {}

    [[nodiscard]] constexpr std::uint32_t slot() const noexcept { return bits & kSlotMask; }
    [[nodiscard]] constexpr std::uint32_t generation() const noexcept {
        return bits >> kSlotBits;
    }
    [[nodiscard]] constexpr bool valid() const noexcept { return bits != kInvalidBits; }
    friend constexpr bool operator==(const PoolHandle&, const PoolHandle&) = default;
};

template <class T>
class Pool {
public:
    using Handle = PoolHandle<T>;

    /// Objects per chunk: ~64 KiB worth, at least 8, at most 1024. Chunks
    /// are allocated lazily; an empty pool owns no memory.
    [[nodiscard]] static constexpr std::size_t default_chunk_objects() noexcept {
        constexpr std::size_t target = 64 * 1024 / sizeof(T);
        return target < 8 ? 8 : (target > 1024 ? 1024 : target);
    }

    explicit Pool(std::size_t objects_per_chunk = default_chunk_objects())
        : per_chunk_(objects_per_chunk == 0 ? 1 : objects_per_chunk) {}

    Pool(const Pool&) = delete;
    Pool& operator=(const Pool&) = delete;

    ~Pool() {
        for (std::uint32_t s = 0; s < slot_count(); ++s)
            if (state_[s] == State::live || state_[s] == State::parked) ptr_at(s)->~T();
    }

    // --- create / destroy (construct-per-use flavour) ----------------------
    template <class... Args>
    [[nodiscard]] Handle create(Args&&... args) {
        const std::uint32_t slot = take_slot();
        if (state_[slot] == State::parked) ptr_at(slot)->~T();
        ::new (static_cast<void*>(ptr_at(slot))) T(std::forward<Args>(args)...);
        state_[slot] = State::live;
        bump_live();
        return Handle{slot, gen_[slot]};
    }

    void destroy(Handle h) {
        check(h, "destroy");
        ptr_at(h.slot())->~T();
        retire(h.slot(), State::raw);
    }

    // --- acquire / release (parked-reuse flavour) --------------------------
    /// Hands out a constructed object: default-constructed the first time a
    /// slot is used, otherwise the parked object exactly as release() left
    /// it (capacity intact). The caller resets logical state.
    [[nodiscard]] Handle acquire() {
        const std::uint32_t slot = take_slot();
        if (state_[slot] == State::raw) ::new (static_cast<void*>(ptr_at(slot))) T();
        state_[slot] = State::live;
        bump_live();
        return Handle{slot, gen_[slot]};
    }

    /// Parks the object for reuse without destroying it.
    void release(Handle h) {
        check(h, "release");
        retire(h.slot(), State::parked);
    }

    // --- access ------------------------------------------------------------
    [[nodiscard]] T& get(Handle h) {
        check(h, "get");
        return *ptr_at(h.slot());
    }
    [[nodiscard]] const T& get(Handle h) const {
        check(h, "get");
        return *ptr_at(h.slot());
    }
    /// nullptr on stale/invalid handles instead of aborting.
    [[nodiscard]] T* try_get(Handle h) noexcept {
        return valid(h) ? ptr_at(h.slot()) : nullptr;
    }
    [[nodiscard]] bool valid(Handle h) const noexcept {
        return h.slot() < slot_count() && state_[h.slot()] == State::live &&
               gen_[h.slot()] == h.generation();
    }

    /// Slot-indexed access for dense iteration (flow refill loops). The slot
    /// space is [0, slot_count()); is_live() tells which slots hold objects.
    [[nodiscard]] std::uint32_t slot_count() const noexcept {
        return static_cast<std::uint32_t>(state_.size());
    }
    [[nodiscard]] bool is_live(std::uint32_t slot) const noexcept {
        return slot < slot_count() && state_[slot] == State::live;
    }
    [[nodiscard]] T& at_slot(std::uint32_t slot) { return *ptr_at(slot); }
    [[nodiscard]] const T& at_slot(std::uint32_t slot) const { return *ptr_at(slot); }
    [[nodiscard]] std::uint32_t generation(std::uint32_t slot) const noexcept {
        return gen_[slot];
    }
    [[nodiscard]] Handle handle_at(std::uint32_t slot) const noexcept {
        return Handle{slot, gen_[slot]};
    }

    // --- stats (mem.* gauges) ----------------------------------------------
    using Stats = PoolStats;
    [[nodiscard]] Stats stats() const noexcept {
        Stats s;
        s.live = live_;
        s.parked = 0;
        for (const auto st : state_)
            if (st == State::parked) ++s.parked;
        s.slots = state_.size();
        s.retired = retired_;
        s.peak_live = peak_live_;
        s.bytes_reserved = chunks_.size() * per_chunk_ * sizeof(T);
        s.bytes_live = live_ * sizeof(T);
        return s;
    }
    [[nodiscard]] std::size_t live() const noexcept { return live_; }
    [[nodiscard]] std::size_t peak_live() const noexcept { return peak_live_; }
    [[nodiscard]] std::size_t retired_slots() const noexcept { return retired_; }
    [[nodiscard]] std::size_t bytes_reserved() const noexcept {
        return chunks_.size() * per_chunk_ * sizeof(T);
    }

private:
    // `retired` slots hit the 12-bit generation cap; they hold no object and
    // are never handed out again (see the header comment on wrap safety).
    enum class State : std::uint8_t { raw, live, parked, retired };

    struct ChunkDeleter {
        std::size_t bytes = 0;
        void operator()(std::byte* p) const {
            ::operator delete[](p, std::align_val_t{alignof(T)});
        }
    };
    using ChunkPtr = std::unique_ptr<std::byte[], ChunkDeleter>;

    [[nodiscard]] T* ptr_at(std::uint32_t slot) const noexcept {
        return reinterpret_cast<T*>(chunks_[slot / per_chunk_].get() +
                                    static_cast<std::size_t>(slot % per_chunk_) * sizeof(T));
    }

    [[nodiscard]] std::uint32_t take_slot() {
        if (!free_.empty()) {
            const std::uint32_t slot = free_.back();
            free_.pop_back();
            return slot;
        }
        const std::uint32_t slot = slot_count();
        if (slot > Handle::kSlotMask)
            pool_exhausted("slot space exhausted (2^20 slots per pool)");
        if (slot % per_chunk_ == 0) {
            auto* raw = static_cast<std::byte*>(
                ::operator new[](per_chunk_ * sizeof(T), std::align_val_t{alignof(T)}));
            chunks_.emplace_back(raw, ChunkDeleter{per_chunk_ * sizeof(T)});
        }
        state_.push_back(State::raw);
        gen_.push_back(0);
        return slot;
    }

    void retire(std::uint32_t slot, State to) {
        --live_;
        if (gen_[slot] >= Handle::kMaxGeneration) {
            // Generation cap reached: the next mint would wrap (or mint the
            // reserved 0xFFF). Retire the slot instead of reusing it — a
            // stale handle can then never alias a future object.
            if (to == State::parked) ptr_at(slot)->~T();
            state_[slot] = State::retired;
            gen_[slot] = Handle::kGenMask;
            ++retired_;
            return;
        }
        state_[slot] = to;
        ++gen_[slot];
        free_.push_back(slot);
    }

    void bump_live() {
        ++live_;
        if (live_ > peak_live_) peak_live_ = live_;
    }

    void check([[maybe_unused]] Handle h, [[maybe_unused]] const char* op) const {
#if NS_ARENA_CHECKS
        if (h.slot() >= slot_count()) handle_check_failed(op);
        if (state_[h.slot()] != State::live) handle_check_failed(op);
        if (gen_[h.slot()] != h.generation()) handle_check_failed(op);
#endif
    }

    std::size_t per_chunk_;
    std::vector<ChunkPtr> chunks_;
    std::vector<State> state_;
    std::vector<std::uint16_t> gen_;  // 12 bits used; u16 keeps the array tight
    std::vector<std::uint32_t> free_;  // LIFO
    std::size_t live_ = 0;
    std::size_t retired_ = 0;
    std::size_t peak_live_ = 0;
};

}  // namespace netsession::arena
