// Deterministic random number generation.
//
// All randomness in the simulator flows from a single seed through named
// child streams, so every experiment is reproducible bit-for-bit from the
// seed printed in its output.
#pragma once

#include <cstdint>
#include <string_view>

namespace netsession {

/// splitmix64 — used to expand seeds into xoshiro state.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** PRNG (Blackman & Vigna). Fast, high-quality, tiny state;
/// satisfies std::uniform_random_bit_generator.
class Rng {
public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

    result_type operator()() noexcept { return next(); }
    std::uint64_t next() noexcept;

    /// Uniform in [0, 1).
    double uniform() noexcept;
    /// Uniform in [lo, hi).
    double uniform(double lo, double hi) noexcept;
    /// Uniform integer in [0, n). n must be > 0.
    std::uint64_t below(std::uint64_t n) noexcept;
    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;
    /// Bernoulli trial with success probability p.
    bool chance(double p) noexcept;
    /// Exponentially distributed with the given mean (mean > 0).
    double exponential(double mean) noexcept;
    /// Standard normal via Box-Muller (one value per call; no caching so the
    /// stream stays position-independent).
    double normal() noexcept;
    /// Normal with given mean and standard deviation.
    double normal(double mean, double stddev) noexcept;
    /// Log-normal with the given *underlying* normal parameters mu/sigma.
    double lognormal(double mu, double sigma) noexcept;
    /// Pareto with scale xm and shape alpha (heavy-tailed sizes).
    double pareto(double xm, double alpha) noexcept;

    /// A child generator whose stream is independent of (and stable under
    /// changes to) draws from this one: derived from the original seed and
    /// the label only.
    [[nodiscard]] Rng child(std::string_view label) const noexcept;

    /// Full generator state, as a POD — used by peer hibernation to park a
    /// client's stream in cold storage and resume it bit-exactly.
    struct State {
        std::uint64_t s[4];
        std::uint64_t seed;
    };
    [[nodiscard]] State state() const noexcept {
        return State{{s_[0], s_[1], s_[2], s_[3]}, seed_};
    }
    void restore(const State& st) noexcept {
        s_[0] = st.s[0];
        s_[1] = st.s[1];
        s_[2] = st.s[2];
        s_[3] = st.s[3];
        seed_ = st.seed;
    }

private:
    std::uint64_t s_[4];
    std::uint64_t seed_;
};

}  // namespace netsession
