// Human-readable formatting helpers for reports, tables and benches.
#pragma once

#include <string>

#include "common/types.hpp"

namespace netsession {

/// "1.50 GB", "240 MB", "12 kB", "17 B" — decimal units, as the paper uses.
[[nodiscard]] std::string format_bytes(Bytes n);

/// "4.21 Mbps" etc.
[[nodiscard]] std::string format_rate(Rate bytes_per_second);

/// "12.3%" with one decimal.
[[nodiscard]] std::string format_percent(double fraction);

/// Fixed-point with the given number of decimals.
[[nodiscard]] std::string format_fixed(double v, int decimals);

/// Thousands separators: 1234567 -> "1,234,567".
[[nodiscard]] std::string format_count(std::int64_t n);

/// "3d 04:05:06" style duration from seconds.
[[nodiscard]] std::string format_duration_s(double seconds);

}  // namespace netsession
