// Statistical primitives for the measurement pipeline: empirical CDFs,
// percentiles, log-spaced binning, and log-log (power-law) regression.
#pragma once

#include <cstdint>
#include <vector>

namespace netsession::analysis {

/// Empirical cumulative distribution over a sample.
class Cdf {
public:
    Cdf() = default;
    explicit Cdf(std::vector<double> samples);

    [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }

    /// Fraction of samples <= x, in [0,1].
    [[nodiscard]] double at(double x) const;

    /// The q-quantile (q in [0,1]) by linear interpolation.
    [[nodiscard]] double quantile(double q) const;

    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;
    [[nodiscard]] double mean() const noexcept { return mean_; }

    /// The sorted sample array (fingerprinting, exact exports).
    [[nodiscard]] const std::vector<double>& samples() const noexcept { return sorted_; }

    /// Evaluates the CDF at `points` log-spaced positions across the sample
    /// range — the typical rendering of the paper's log-x CDF figures.
    /// Returns (x, fraction<=x) pairs.
    [[nodiscard]] std::vector<std::pair<double, double>> log_sweep(int points) const;

private:
    std::vector<double> sorted_;
    double mean_ = 0.0;
};

/// Log-spaced bin edges from lo to hi (inclusive endpoints, `bins`+1 edges).
[[nodiscard]] std::vector<double> log_edges(double lo, double hi, int bins);

/// Index of the log bin x falls into, clamped to [0, bins-1].
[[nodiscard]] int log_bin(double x, double lo, double hi, int bins);

/// Mean of a sample (0 for empty).
[[nodiscard]] double mean_of(const std::vector<double>& xs);

/// Percentile (0..100) of a sample by nearest-rank; 0 for empty.
[[nodiscard]] double percentile(std::vector<double> xs, double pct);

/// Least-squares slope/intercept of log10(y) over log10(x), skipping
/// non-positive values. Returns {slope, intercept, n_used}. The slope of a
/// rank-popularity plot is the (negative) power-law exponent (Fig 3b).
struct LogLogFit {
    double slope = 0.0;
    double intercept = 0.0;
    std::size_t n = 0;
};
[[nodiscard]] LogLogFit fit_loglog(const std::vector<std::pair<double, double>>& xy);

}  // namespace netsession::analysis
