// The paper's measurement pipeline: every analysis of §4-§6, computed from a
// TraceLog plus the geo database (EdgeScape substitute), exactly as the paper
// computes them from the production logs.
#pragma once

#include <array>
#include <map>
#include <tuple>
#include <vector>

#include "analysis/login_index.hpp"
#include "analysis/stats.hpp"
#include "net/as_graph.hpp"
#include "net/geodb.hpp"
#include "trace/trace_log.hpp"

namespace netsession::analysis {

// --- Table 1 -------------------------------------------------------------------

struct OverallStats {
    std::size_t log_entries = 0;
    std::size_t guids = 0;
    std::size_t distinct_urls = 0;
    std::size_t distinct_ips = 0;
    std::size_t downloads_initiated = 0;
    std::size_t distinct_locations = 0;
    std::size_t distinct_ases = 0;
    std::size_t distinct_countries = 0;
};

[[nodiscard]] OverallStats overall_stats(const trace::TraceLog& log,
                                         const net::GeoDatabase& geodb);

// --- Table 2 -------------------------------------------------------------------

/// The paper's nine region columns.
enum class ReportRegion : std::uint8_t {
    us_east,
    us_west,
    americas_other,
    india,
    china,
    asia_other,
    europe,
    africa,
    oceania,
};
inline constexpr int kReportRegions = 9;
[[nodiscard]] std::string_view to_string(ReportRegion r) noexcept;

/// Maps a geolocated peer to a report column.
[[nodiscard]] ReportRegion report_region(const net::GeoRecord& geo);

/// Per content provider: share of downloads per report region. Keyed by
/// CpCode value; shares sum to ~1 per provider.
[[nodiscard]] std::map<std::uint32_t, std::array<double, kReportRegions>>
downloads_by_region(const trace::TraceLog& log, const LoginIndex& logins,
                    const net::GeoDatabase& geodb);

// --- Table 3 -------------------------------------------------------------------

struct SettingChanges {
    // [0]: zero changes, [1]: one change, [2]: two or more.
    std::array<std::int64_t, 3> initially_disabled{};
    std::array<std::int64_t, 3> initially_enabled{};
};

[[nodiscard]] SettingChanges upload_setting_changes(const LoginIndex& logins);

// --- Table 4 -------------------------------------------------------------------

/// Fraction of peers with uploads enabled (last observed setting), per
/// provider; a peer is attributed to the provider of its first download.
[[nodiscard]] std::map<std::uint32_t, double> upload_enabled_by_provider(
    const trace::TraceLog& log, const LoginIndex& logins);

// --- Fig 2 ---------------------------------------------------------------------

struct CountryPeers {
    CountryId country;
    std::int64_t peers = 0;
    double fraction = 0.0;
};

/// Peers per country of first connection, descending.
[[nodiscard]] std::vector<CountryPeers> peer_distribution(const LoginIndex& logins,
                                                          const net::GeoDatabase& geodb);

/// Share of peers per continent (index = net::Continent).
[[nodiscard]] std::array<double, net::kContinentCount> continent_shares(
    const LoginIndex& logins, const net::GeoDatabase& geodb);

// --- Fig 3 ---------------------------------------------------------------------

struct WorkloadCharacteristics {
    Cdf size_all;            // request distribution by object size (bytes)
    Cdf size_infra_only;
    Cdf size_peer_assisted;
    /// (rank, downloads) pairs, rank 1 = most popular (Fig 3b).
    std::vector<std::pair<double, double>> popularity;
    LogLogFit popularity_fit;
    /// Bytes served per hour across the trace window, GMT and local time.
    std::vector<double> bytes_per_hour_gmt;
    std::vector<double> bytes_per_hour_local;
};

[[nodiscard]] WorkloadCharacteristics workload_characteristics(const trace::TraceLog& log,
                                                               const LoginIndex& logins,
                                                               const net::GeoDatabase& geodb);

// --- Fig 4 ---------------------------------------------------------------------

struct SpeedComparison {
    std::uint32_t as_x = 0;  // the AS with the most downloads
    std::uint32_t as_y = 0;  // runner-up
    Cdf edge_only_x, p2p_x;  // mean download speed, Mbps
    Cdf edge_only_y, p2p_y;
};

[[nodiscard]] SpeedComparison speed_comparison(const trace::TraceLog& log,
                                               const LoginIndex& logins,
                                               const net::GeoDatabase& geodb);

// --- Fig 5 ---------------------------------------------------------------------

struct EfficiencyVsCopies {
    struct Bin {
        double copies_lo = 0, copies_hi = 0;
        double mean = 0, p20 = 0, p80 = 0;
        int objects = 0;
    };
    std::vector<Bin> bins;
};

[[nodiscard]] EfficiencyVsCopies efficiency_vs_copies(const trace::TraceLog& log, int bins = 12);

// --- Fig 6 ---------------------------------------------------------------------

struct EfficiencyVsPeers {
    /// Index = number of peers initially returned (0..40); NaN-free: groups
    /// with no downloads have count 0.
    struct Group {
        double mean_efficiency = 0;
        int downloads = 0;
    };
    std::vector<Group> groups;
};

[[nodiscard]] EfficiencyVsPeers efficiency_vs_peers_returned(const trace::TraceLog& log,
                                                             int max_peers = 40);

// --- §5.2 outcomes + Fig 7 -------------------------------------------------------

struct OutcomeStats {
    struct Class {
        std::int64_t n = 0;
        double completed = 0, failed_system = 0, failed_other = 0, aborted = 0;
    };
    Class infra_only, peer_assisted, all;
    /// Pause/termination rate per file-size bucket (<10MB, 10-100MB,
    /// 100MB-1GB, >1GB) for each class: [class][bucket]; class order:
    /// infra-only, peer-assisted, all.
    std::array<std::array<double, 4>, 3> pause_rate_by_size{};
    std::array<std::array<std::int64_t, 4>, 3> downloads_by_size{};
};

[[nodiscard]] OutcomeStats outcome_stats(const trace::TraceLog& log);

// --- Fig 8 ---------------------------------------------------------------------

struct CountryCoverage {
    CountryId country;
    Bytes infra_bytes = 0;
    Bytes peer_bytes = 0;
    /// 0: infra > peers; 1: infra in [50%,100%] of peers; 2: infra < 50% of
    /// peers (the paper's circle / plus / square).
    int cls = 0;
};

[[nodiscard]] std::vector<CountryCoverage> coverage_by_country(const trace::TraceLog& log,
                                                               const LoginIndex& logins,
                                                               const net::GeoDatabase& geodb,
                                                               CpCode provider);

// --- §6.1 + Fig 9/10/11 -----------------------------------------------------------

struct TrafficBalance {
    Bytes total_p2p_bytes = 0;
    Bytes intra_as_bytes = 0;
    Bytes inter_as_bytes = 0;

    struct AsFlow {
        std::uint32_t asn = 0;
        Bytes sent = 0;      // inter-AS bytes uploaded to other ASes
        Bytes received = 0;  // inter-AS bytes downloaded from other ASes
        std::int64_t ips_observed = 0;
        bool heavy = false;  // in the top set responsible for 90% of uploads
    };
    std::vector<AsFlow> ases;  // sorted by sent, descending
    std::size_t ases_with_traffic = 0;
    std::size_t heavy_count = 0;
    /// Upload volume at the 98th percentile of ASes (paper: 163 GB).
    Bytes p98_upload = 0;
    /// Fraction of inter-AS traffic contributed by the bottom 98% of ASes.
    double bottom98_share = 0.0;

    /// Directly-connected heavy-uploader pairs: (as_a, as_b, a->b, b->a).
    std::vector<std::tuple<std::uint32_t, std::uint32_t, Bytes, Bytes>> heavy_pairs;
    /// Share of heavy-to-heavy inter-AS bytes on direct links (§6.1: ~35%).
    double heavy_direct_share = 0.0;
};

[[nodiscard]] TrafficBalance traffic_balance(const trace::TraceLog& log,
                                             const net::GeoDatabase& geodb,
                                             const net::AsGraph* graph);

// --- §6.2 mobility -----------------------------------------------------------------

struct MobilityStats {
    std::int64_t guids = 0;
    double frac_single_as = 0;
    double frac_two_as = 0;
    double frac_more_as = 0;
    double frac_within_10km = 0;
    double new_connections_per_minute = 0;
};

[[nodiscard]] MobilityStats mobility_stats(const trace::TraceLog& log, const LoginIndex& logins,
                                           const net::GeoDatabase& geodb);

// --- §5.1 headline numbers ----------------------------------------------------------

struct HeadlineOffload {
    double p2p_enabled_file_fraction = 0;   // paper: 1.7% of files
    double p2p_enabled_byte_fraction = 0;   // paper: 57.4% of bytes
    double mean_peer_efficiency = 0;        // paper: 71.4% (peer-assisted downloads)
    double overall_offload = 0;             // peer bytes / total bytes of p2p downloads
};

[[nodiscard]] HeadlineOffload headline_offload(const trace::TraceLog& log);

// --- §3.8 graceful degradation ------------------------------------------------------

/// Aggregated client-side degradation telemetry: what the data path noticed
/// and repaired during the window. Explains *where* offload went under a
/// fault plan — e.g. edge stalls + remaps during an edge outage, peer stalls
/// + blacklistings during mass churn.
struct DegradationStats {
    /// Degradation *incidents*. An edge_remapped record always rides on the
    /// edge_stall record of the same incident (the watchdog emits both when a
    /// stalled download re-resolves to a different server), so remaps are
    /// excluded here — counting both would double-count the incident. The
    /// per-kind fields below still count every record of their kind.
    std::int64_t total = 0;
    std::int64_t edge_stalls = 0;
    std::int64_t edge_remaps = 0;
    std::int64_t peer_stalls = 0;
    std::int64_t sources_blacklisted = 0;
    std::int64_t query_timeouts = 0;
    std::int64_t login_timeouts = 0;
    std::int64_t stun_timeouts = 0;
    /// Distinct clients that observed at least one degradation.
    std::int64_t affected_clients = 0;
};

[[nodiscard]] DegradationStats degradation_stats(const trace::TraceLog& log);

}  // namespace netsession::analysis
