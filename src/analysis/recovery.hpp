// Recovery analysis: pairs the trace's fault timeline (format v8) into
// per-fault time-to-recover measurements.
//
// For every fault the FaultEngine recorded, this module measures how the
// deployment behaved during the fault and how quickly it came back after the
// restore:
//
//   * delivery recovery — the hourly download completion rate (completed /
//     terminal attempts) dipping during the fault and climbing back above
//     the SLO threshold afterwards; `recover_hours` is the time from the
//     restore to the first healthy bucket
//   * login-storm drain (cn_outage) — a CN region restart triggers a
//     re-login storm; drained when the per-bucket login count falls back to
//     ~the pre-fault baseline
//   * RE-ADD reconvergence (dn_outage) — a DN restart triggers RE-ADD
//     fan-out from the CNs; drained when the sampled `control.readds` rate
//     falls back to ~the pre-fault baseline (needs the metrics section, i.e.
//     an NS_METRICS build with the sampler on)
//   * degradation pressure — client-observed degradations and blacklist
//     churn (source_blacklisted events) while the fault was active
//
// bench_robustness turns these into SLO gates and BENCH_headline.json's
// "recovery" section; `nstrace recovery` prints them as a table.
//
// Layering: analysis/ sits below fault/, so the fault kind stays the raw
// trace byte here, mirrored as TracedFaultKind (core/simulation.cpp
// static_asserts the two enums agree value-for-value).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/simulator.hpp"
#include "trace/trace_log.hpp"

namespace netsession::analysis {

/// Mirror of fault::FaultKind as it appears in FaultRecord::kind.
enum class TracedFaultKind : std::uint8_t {
    edge_outage,
    region_partition,
    as_degradation,
    stun_blackout,
    mass_churn,
    cn_outage,
    dn_outage,
    flash_crowd,
};

[[nodiscard]] std::string_view to_string(TracedFaultKind k) noexcept;

struct RecoveryOptions {
    /// Delivery completion rate counted as "recovered".
    double delivery_threshold = 0.95;
    /// Time-bucket width for the delivery/login/readd series.
    sim::Duration bucket = sim::hours(1.0);
    /// How long after the restore to look for recovery before declaring the
    /// fault never-recovered.
    sim::Duration horizon = sim::hours(48.0);
};

/// Recovery measurements for one fault-timeline entry.
struct FaultRecovery {
    int index = 0;  ///< position in the armed FaultPlan (FaultRecord::index)
    TracedFaultKind kind = TracedFaultKind::edge_outage;
    sim::SimTime onset{};
    /// Restore time; equals `onset` for one-shot kinds (mass_churn /
    /// flash_crowd strike instantaneously and recovery runs from the onset).
    sim::SimTime restore{};
    /// False when the trace holds no restore for a non-one-shot fault
    /// (permanent fault, or the window closed first): recovery cannot be
    /// evaluated, recover_hours stays -1, and the fault is excluded from
    /// RecoveryReport::all_recovered.
    bool evaluable = false;
    /// Lowest delivery completion rate of any non-empty bucket while the
    /// fault was active (1.0 when no download terminated during it).
    double min_delivery_during = 1.0;
    /// Hours from the restore until delivery first met the threshold again;
    /// 0 when it never dipped. Negative = not recovered within the horizon.
    double recover_hours = -1.0;
    /// Client-observed degradation events while the fault was active.
    std::int64_t degradations = 0;
    /// source_blacklisted events while the fault was active.
    std::int64_t blacklist_churn = 0;
    /// cn_outage only: hours after restore until the re-login storm drained
    /// back to ~the pre-fault rate. -1 elsewhere / never drained.
    double login_drain_hours = -1.0;
    /// dn_outage only: hours after restore until the RE-ADD rate (sampled
    /// `control.readds` metric) drained back to ~the pre-fault rate. -1
    /// elsewhere, without metrics, or never drained.
    double readd_drain_hours = -1.0;
};

struct RecoveryReport {
    std::vector<FaultRecovery> faults;  ///< onset order
    /// Max recover_hours over evaluable faults that did recover (0 if none).
    double worst_recover_hours = 0.0;
    /// Every evaluable fault recovered within the horizon.
    bool all_recovered = true;
};

/// Builds the report from a trace. Pure read; tolerates traces whose warm-up
/// clear dropped the onset of a fault (such restores are skipped).
[[nodiscard]] RecoveryReport recovery_report(const trace::TraceLog& trace,
                                             const RecoveryOptions& options = {});

}  // namespace netsession::analysis
