#include "analysis/login_index.hpp"

#include <algorithm>

namespace netsession::analysis {

LoginIndex::LoginIndex(const trace::TraceLog& log) {
    for (const auto& r : log.logins()) by_guid_[r.guid].push_back(&r);
    for (auto& [guid, records] : by_guid_)
        std::sort(records.begin(), records.end(),
                  [](const trace::LoginRecord* a, const trace::LoginRecord* b) {
                      return a->time < b->time;
                  });
}

const trace::LoginRecord* LoginIndex::at(Guid guid, sim::SimTime time) const {
    const auto it = by_guid_.find(guid);
    if (it == by_guid_.end() || it->second.empty()) return nullptr;
    const auto& records = it->second;
    const auto pos = std::upper_bound(records.begin(), records.end(), time,
                                      [](sim::SimTime t, const trace::LoginRecord* r) {
                                          return t < r->time;
                                      });
    if (pos == records.begin()) return records.front();
    return *(pos - 1);
}

const trace::LoginRecord* LoginIndex::first(Guid guid) const {
    const auto it = by_guid_.find(guid);
    return it == by_guid_.end() || it->second.empty() ? nullptr : it->second.front();
}

const std::vector<const trace::LoginRecord*>* LoginIndex::history(Guid guid) const {
    const auto it = by_guid_.find(guid);
    return it == by_guid_.end() ? nullptr : &it->second;
}

std::optional<net::GeoRecord> LoginIndex::locate(Guid guid, sim::SimTime time,
                                                 const net::GeoDatabase& geodb) const {
    const trace::LoginRecord* login = at(guid, time);
    if (login == nullptr) return std::nullopt;
    return geodb.lookup(login->ip);
}

}  // namespace netsession::analysis
