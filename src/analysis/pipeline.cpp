#include "analysis/pipeline.hpp"

#include <cstring>

namespace netsession::analysis {

PipelineResult run_full_pipeline(const trace::Dataset& dataset, const net::AsGraph* graph) {
    const trace::TraceLog& log = dataset.log;
    const net::GeoDatabase& geodb = dataset.geodb;
    const LoginIndex logins(log);

    PipelineResult r;
    r.overall = overall_stats(log, geodb);
    r.regions = downloads_by_region(log, logins, geodb);
    r.setting_changes = upload_setting_changes(logins);
    r.upload_enabled = upload_enabled_by_provider(log, logins);
    r.peers_by_country = peer_distribution(logins, geodb);
    r.continents = continent_shares(logins, geodb);
    r.workload = workload_characteristics(log, logins, geodb);
    r.speeds = speed_comparison(log, logins, geodb);
    r.efficiency_copies = efficiency_vs_copies(log);
    r.efficiency_peers = efficiency_vs_peers_returned(log);
    r.outcomes = outcome_stats(log);
    if (!r.regions.empty())
        r.coverage = coverage_by_country(log, logins, geodb, CpCode{r.regions.begin()->first});
    r.balance = traffic_balance(log, geodb, graph);
    r.mobility = mobility_stats(log, logins, geodb);
    r.headline = headline_offload(log);
    r.degradation = degradation_stats(log);
    r.guid_graphs = classify_guid_graphs(log);
    return r;
}

namespace {

/// Incremental FNV-1a over 64-bit words; scalars are widened/bitcast so the
/// hash sees exact bit patterns (a NaN or -0.0 regression would show up).
struct Fnv {
    std::uint64_t h = 1469598103934665603ull;

    void word(std::uint64_t w) {
        for (int i = 0; i < 8; ++i) {
            h ^= (w >> (8 * i)) & 0xFF;
            h *= 1099511628211ull;
        }
    }
    void f64(double v) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof bits);
        word(bits);
    }
    void u64(std::uint64_t v) { word(v); }
    void i64(std::int64_t v) { word(static_cast<std::uint64_t>(v)); }
    void size(std::size_t v) { word(static_cast<std::uint64_t>(v)); }

    void cdf(const Cdf& c) {
        size(c.size());
        for (const double v : c.samples()) f64(v);
        f64(c.mean());
    }
    void fit(const LogLogFit& f) {
        f64(f.slope);
        f64(f.intercept);
        size(f.n);
    }
};

}  // namespace

std::uint64_t fingerprint(const PipelineResult& r) {
    Fnv h;

    // Table 1
    h.size(r.overall.log_entries);
    h.size(r.overall.guids);
    h.size(r.overall.distinct_urls);
    h.size(r.overall.distinct_ips);
    h.size(r.overall.downloads_initiated);
    h.size(r.overall.distinct_locations);
    h.size(r.overall.distinct_ases);
    h.size(r.overall.distinct_countries);

    // Table 2
    h.size(r.regions.size());
    for (const auto& [cp, shares] : r.regions) {
        h.u64(cp);
        for (const double s : shares) h.f64(s);
    }

    // Table 3
    for (const auto v : r.setting_changes.initially_disabled) h.i64(v);
    for (const auto v : r.setting_changes.initially_enabled) h.i64(v);

    // Table 4
    h.size(r.upload_enabled.size());
    for (const auto& [cp, frac] : r.upload_enabled) {
        h.u64(cp);
        h.f64(frac);
    }

    // Fig 2
    h.size(r.peers_by_country.size());
    for (const auto& c : r.peers_by_country) {
        h.u64(c.country.value);
        h.i64(c.peers);
        h.f64(c.fraction);
    }
    for (const double s : r.continents) h.f64(s);

    // Fig 3
    h.cdf(r.workload.size_all);
    h.cdf(r.workload.size_infra_only);
    h.cdf(r.workload.size_peer_assisted);
    h.size(r.workload.popularity.size());
    for (const auto& [rank, downloads] : r.workload.popularity) {
        h.f64(rank);
        h.f64(downloads);
    }
    h.fit(r.workload.popularity_fit);
    h.size(r.workload.bytes_per_hour_gmt.size());
    for (const double v : r.workload.bytes_per_hour_gmt) h.f64(v);
    h.size(r.workload.bytes_per_hour_local.size());
    for (const double v : r.workload.bytes_per_hour_local) h.f64(v);

    // Fig 4
    h.u64(r.speeds.as_x);
    h.u64(r.speeds.as_y);
    h.cdf(r.speeds.edge_only_x);
    h.cdf(r.speeds.p2p_x);
    h.cdf(r.speeds.edge_only_y);
    h.cdf(r.speeds.p2p_y);

    // Fig 5
    h.size(r.efficiency_copies.bins.size());
    for (const auto& b : r.efficiency_copies.bins) {
        h.f64(b.copies_lo);
        h.f64(b.copies_hi);
        h.f64(b.mean);
        h.f64(b.p20);
        h.f64(b.p80);
        h.i64(b.objects);
    }

    // Fig 6
    h.size(r.efficiency_peers.groups.size());
    for (const auto& g : r.efficiency_peers.groups) {
        h.f64(g.mean_efficiency);
        h.i64(g.downloads);
    }

    // §5.2 / Fig 7
    const auto hash_class = [&h](const OutcomeStats::Class& c) {
        h.i64(c.n);
        h.f64(c.completed);
        h.f64(c.failed_system);
        h.f64(c.failed_other);
        h.f64(c.aborted);
    };
    hash_class(r.outcomes.infra_only);
    hash_class(r.outcomes.peer_assisted);
    hash_class(r.outcomes.all);
    for (const auto& row : r.outcomes.pause_rate_by_size)
        for (const double v : row) h.f64(v);
    for (const auto& row : r.outcomes.downloads_by_size)
        for (const auto v : row) h.i64(v);

    // Fig 8
    h.size(r.coverage.size());
    for (const auto& c : r.coverage) {
        h.u64(c.country.value);
        h.i64(c.infra_bytes);
        h.i64(c.peer_bytes);
        h.i64(c.cls);
    }

    // §6.1 / Fig 9-11
    h.i64(r.balance.total_p2p_bytes);
    h.i64(r.balance.intra_as_bytes);
    h.i64(r.balance.inter_as_bytes);
    h.size(r.balance.ases.size());
    for (const auto& a : r.balance.ases) {
        h.u64(a.asn);
        h.i64(a.sent);
        h.i64(a.received);
        h.i64(a.ips_observed);
        h.u64(a.heavy ? 1 : 0);
    }
    h.size(r.balance.ases_with_traffic);
    h.size(r.balance.heavy_count);
    h.i64(r.balance.p98_upload);
    h.f64(r.balance.bottom98_share);
    h.size(r.balance.heavy_pairs.size());
    for (const auto& [a, b, ab, ba] : r.balance.heavy_pairs) {
        h.u64(a);
        h.u64(b);
        h.i64(ab);
        h.i64(ba);
    }
    h.f64(r.balance.heavy_direct_share);

    // §6.2
    h.i64(r.mobility.guids);
    h.f64(r.mobility.frac_single_as);
    h.f64(r.mobility.frac_two_as);
    h.f64(r.mobility.frac_more_as);
    h.f64(r.mobility.frac_within_10km);
    h.f64(r.mobility.new_connections_per_minute);

    // §5.1
    h.f64(r.headline.p2p_enabled_file_fraction);
    h.f64(r.headline.p2p_enabled_byte_fraction);
    h.f64(r.headline.mean_peer_efficiency);
    h.f64(r.headline.overall_offload);

    // §3.8
    h.i64(r.degradation.total);
    h.i64(r.degradation.edge_stalls);
    h.i64(r.degradation.edge_remaps);
    h.i64(r.degradation.peer_stalls);
    h.i64(r.degradation.sources_blacklisted);
    h.i64(r.degradation.query_timeouts);
    h.i64(r.degradation.login_timeouts);
    h.i64(r.degradation.stun_timeouts);
    h.i64(r.degradation.affected_clients);

    // Fig 12
    h.i64(r.guid_graphs.graphs);
    h.i64(r.guid_graphs.linear_chains);
    h.i64(r.guid_graphs.long_plus_short);
    h.i64(r.guid_graphs.two_long_branches);
    h.i64(r.guid_graphs.several_branches);
    h.i64(r.guid_graphs.irregular);

    return h.h;
}

}  // namespace netsession::analysis
