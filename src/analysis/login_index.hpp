// GUID → login-history index.
//
// The paper repeatedly joins logs through logins: "We first used the login
// data to map each GUID to the IP address it was using at the time, and then
// we used the EdgeScape data to map the IP address to the ... AS" (§6.1).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "net/geodb.hpp"
#include "trace/trace_log.hpp"

namespace netsession::analysis {

class LoginIndex {
public:
    explicit LoginIndex(const trace::TraceLog& log);

    /// The login record in effect at `time` for this GUID: the latest login
    /// at or before `time`, or the earliest login overall if none precede it.
    [[nodiscard]] const trace::LoginRecord* at(Guid guid, sim::SimTime time) const;

    /// The peer's first login (defines "first connection location", Fig 2).
    [[nodiscard]] const trace::LoginRecord* first(Guid guid) const;

    /// All logins of a GUID in time order.
    [[nodiscard]] const std::vector<const trace::LoginRecord*>* history(Guid guid) const;

    /// Resolves the geolocation of a GUID at a time, via IP + geo database.
    [[nodiscard]] std::optional<net::GeoRecord> locate(Guid guid, sim::SimTime time,
                                                       const net::GeoDatabase& geodb) const;

    [[nodiscard]] std::size_t guid_count() const noexcept { return by_guid_.size(); }
    [[nodiscard]] auto begin() const { return by_guid_.begin(); }
    [[nodiscard]] auto end() const { return by_guid_.end(); }

private:
    std::unordered_map<Guid, std::vector<const trace::LoginRecord*>> by_guid_;
};

}  // namespace netsession::analysis
