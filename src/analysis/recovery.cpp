#include "analysis/recovery.hpp"

#include <algorithm>
#include <cstddef>

#include "trace/records.hpp"

namespace netsession::analysis {

std::string_view to_string(TracedFaultKind k) noexcept {
    switch (k) {
        case TracedFaultKind::edge_outage: return "edge_outage";
        case TracedFaultKind::region_partition: return "region_partition";
        case TracedFaultKind::as_degradation: return "as_degradation";
        case TracedFaultKind::stun_blackout: return "stun_blackout";
        case TracedFaultKind::mass_churn: return "mass_churn";
        case TracedFaultKind::cn_outage: return "cn_outage";
        case TracedFaultKind::dn_outage: return "dn_outage";
        case TracedFaultKind::flash_crowd: return "flash_crowd";
    }
    return "unknown";
}

namespace {

bool is_one_shot(TracedFaultKind k) noexcept {
    return k == TracedFaultKind::mass_churn || k == TracedFaultKind::flash_crowd;
}

/// Per-bucket terminal-download tallies.
struct DeliveryBucket {
    std::int64_t completed = 0;
    std::int64_t failed = 0;

    [[nodiscard]] bool empty() const noexcept { return completed + failed == 0; }
    [[nodiscard]] double rate() const noexcept {
        const std::int64_t total = completed + failed;
        return total == 0 ? 1.0 : static_cast<double>(completed) / static_cast<double>(total);
    }
};

std::size_t bucket_of(sim::SimTime t, sim::Duration width) noexcept {
    return t.us <= 0 ? 0 : static_cast<std::size_t>(t.us / width.us);
}

}  // namespace

RecoveryReport recovery_report(const trace::TraceLog& trace, const RecoveryOptions& options) {
    RecoveryReport report;

    // --- pair onsets with restores -----------------------------------------
    for (const trace::FaultRecord& r : trace.fault_events()) {
        const auto kind = static_cast<TracedFaultKind>(r.kind);
        if (r.phase == 0) {
            FaultRecovery f;
            f.index = r.index;
            f.kind = kind;
            f.onset = r.time;
            if (is_one_shot(kind)) {
                // Strikes instantaneously; recovery runs from the onset.
                f.restore = r.time;
                f.evaluable = true;
            }
            report.faults.push_back(f);
        } else {
            // A restore whose onset fell into the discarded warm-up trace is
            // skipped — there is no fault window to evaluate.
            const auto it = std::find_if(
                report.faults.begin(), report.faults.end(),
                [&](const FaultRecovery& f) { return f.index == r.index && !f.evaluable; });
            if (it != report.faults.end()) {
                it->restore = r.time;
                it->evaluable = true;
            }
        }
    }
    if (report.faults.empty()) return report;

    // --- shared time series -------------------------------------------------
    const sim::Duration width = options.bucket;
    sim::SimTime span_end{};
    for (const auto& d : trace.downloads()) span_end = std::max(span_end, d.end);
    for (const auto& f : report.faults)
        span_end = std::max(span_end, f.restore + options.horizon);
    const std::size_t buckets = bucket_of(span_end, width) + 1;

    std::vector<DeliveryBucket> delivery(buckets);
    for (const auto& d : trace.downloads()) {
        switch (d.outcome) {
            case trace::DownloadOutcome::completed:
                ++delivery[bucket_of(d.end, width)].completed;
                break;
            case trace::DownloadOutcome::failed_system:
            case trace::DownloadOutcome::failed_other:
                ++delivery[bucket_of(d.end, width)].failed;
                break;
            case trace::DownloadOutcome::aborted_by_user:
            case trace::DownloadOutcome::in_progress:
                break;  // user choice / window edge; not a delivery verdict
        }
    }

    std::vector<std::int64_t> logins(buckets, 0);
    for (const auto& l : trace.logins()) ++logins[bucket_of(l.time, width)];

    // Sampled cumulative control.readds series, if the trace carries metrics.
    std::vector<std::pair<sim::SimTime, double>> readds;
    {
        std::uint32_t readd_id = 0;
        bool have_readds = false;
        const auto& names = trace.metric_names();
        for (std::uint32_t i = 0; i < names.size(); ++i)
            if (names[i] == "control.readds") {
                readd_id = i;
                have_readds = true;
                break;
            }
        if (have_readds)
            for (const auto& p : trace.metric_points())
                if (p.metric == readd_id) readds.emplace_back(p.time, p.value);
    }

    // --- per-fault measurements ---------------------------------------------
    for (FaultRecovery& f : report.faults) {
        if (!f.evaluable) continue;
        const std::size_t first = bucket_of(f.onset, width);
        const std::size_t last = std::min(buckets - 1, bucket_of(f.restore, width));

        for (std::size_t b = first; b <= last; ++b)
            if (!delivery[b].empty())
                f.min_delivery_during = std::min(f.min_delivery_during, delivery[b].rate());

        // First healthy (or empty: nothing failed) bucket at/after the
        // restore ends the outage from the user's point of view.
        const std::size_t horizon_bucket =
            std::min(buckets - 1, bucket_of(f.restore + options.horizon, width));
        for (std::size_t b = last; b <= horizon_bucket; ++b) {
            if (!delivery[b].empty() && delivery[b].rate() < options.delivery_threshold) continue;
            const sim::SimTime healthy_at{static_cast<std::int64_t>(b) * width.us};
            f.recover_hours =
                std::max(0.0, (healthy_at.us - f.restore.us) / 3600e6);
            break;
        }

        for (const auto& d : trace.degradations()) {
            if (d.time < f.onset || d.time > f.restore + options.horizon) continue;
            ++f.degradations;
            if (d.kind == trace::DegradationKind::source_blacklisted) ++f.blacklist_churn;
        }

        if (f.kind == TracedFaultKind::cn_outage) {
            // Baseline login rate from the buckets fully before the onset.
            double baseline = 0.0;
            if (first > 0) {
                std::int64_t total = 0;
                for (std::size_t b = 0; b < first; ++b) total += logins[b];
                baseline = static_cast<double>(total) / static_cast<double>(first);
            }
            for (std::size_t b = last; b <= horizon_bucket; ++b) {
                if (static_cast<double>(logins[b]) > 2.0 * baseline + 1.0) continue;
                const sim::SimTime drained_at{static_cast<std::int64_t>(b) * width.us};
                f.login_drain_hours = std::max(0.0, (drained_at.us - f.restore.us) / 3600e6);
                break;
            }
        }

        if (f.kind == TracedFaultKind::dn_outage && readds.size() >= 2) {
            // Per-sample RE-ADD deltas; baseline from the pre-onset samples.
            double baseline = 0.0;
            int baseline_n = 0;
            for (std::size_t i = 1; i < readds.size(); ++i) {
                if (readds[i].first >= f.onset) break;
                baseline += readds[i].second - readds[i - 1].second;
                ++baseline_n;
            }
            if (baseline_n > 0) baseline /= baseline_n;
            for (std::size_t i = 1; i < readds.size(); ++i) {
                if (readds[i].first < f.restore) continue;
                if (readds[i].first > f.restore + options.horizon) break;
                const double delta = readds[i].second - readds[i - 1].second;
                if (delta <= 2.0 * baseline + 1.0) {
                    f.readd_drain_hours =
                        std::max(0.0, (readds[i].first.us - f.restore.us) / 3600e6);
                    break;
                }
            }
        }
    }

    for (const FaultRecovery& f : report.faults) {
        if (!f.evaluable) continue;
        if (f.recover_hours < 0.0)
            report.all_recovered = false;
        else
            report.worst_recover_hours = std::max(report.worst_recover_hours, f.recover_hours);
    }
    return report;
}

}  // namespace netsession::analysis
