// Plot-ready figure data export.
//
// Writes one whitespace-separated .dat file per paper figure (plus a gnuplot
// script that renders them all), so a saved trace can be turned into the
// actual plots offline:
//
//   nstrace export run.nstrace plots/ && (cd plots && gnuplot plot_all.gp)
#pragma once

#include <string>

#include "net/as_graph.hpp"
#include "trace/serialize.hpp"

namespace netsession::analysis {

/// Writes fig3a.dat, fig3b.dat, ... fig11.dat plus plot_all.gp into `dir`
/// (created if missing). `graph` is optional and only feeds the Fig 11
/// direct-connection filter. Returns the number of files written, 0 on I/O
/// failure.
std::size_t export_figure_data(const trace::Dataset& dataset, const net::AsGraph* graph,
                               const std::string& dir);

}  // namespace netsession::analysis
