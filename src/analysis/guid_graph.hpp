// Secondary-GUID graph analysis (paper §6.2, Fig 12).
//
// Each client start picks a fresh secondary GUID and the last five are
// reported at login. Grouping reports by primary GUID and linking successive
// secondary GUIDs yields, for a healthy installation, a linear chain
// (1 → 2 → 3 → ...). Branches indicate the installation was rolled back to an
// earlier state (failed update, restored backup) or cloned/re-imaged.
#pragma once

#include <cstdint>
#include <string_view>

#include "trace/trace_log.hpp"

namespace netsession::analysis {

enum class GuidGraphPattern : std::uint8_t {
    linear_chain,        // expected for normal installations (99.4% in the paper)
    long_plus_short,     // one long branch + a single one-vertex branch (46.2% of trees)
    two_long_branches,   // e.g. a restored backup (6.2%)
    several_branches,    // re-imaging / cloning, e.g. internet cafes (23.5%)
    irregular,           // everything else
};

[[nodiscard]] constexpr std::string_view to_string(GuidGraphPattern p) noexcept {
    switch (p) {
        case GuidGraphPattern::linear_chain: return "linear_chain";
        case GuidGraphPattern::long_plus_short: return "long_plus_short";
        case GuidGraphPattern::two_long_branches: return "two_long_branches";
        case GuidGraphPattern::several_branches: return "several_branches";
        case GuidGraphPattern::irregular: return "irregular";
    }
    return "unknown";
}

struct GuidGraphStats {
    /// Graphs with at least three vertices, as in the paper.
    std::int64_t graphs = 0;
    std::int64_t linear_chains = 0;
    std::int64_t long_plus_short = 0;
    std::int64_t two_long_branches = 0;
    std::int64_t several_branches = 0;
    std::int64_t irregular = 0;

    [[nodiscard]] std::int64_t trees() const noexcept { return graphs - linear_chains; }
    [[nodiscard]] double linear_fraction() const noexcept {
        return graphs == 0 ? 0.0
                           : static_cast<double>(linear_chains) / static_cast<double>(graphs);
    }
};

/// Builds and classifies the per-primary-GUID secondary graphs from the
/// login log.
[[nodiscard]] GuidGraphStats classify_guid_graphs(const trace::TraceLog& log);

}  // namespace netsession::analysis
