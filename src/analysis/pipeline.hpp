// One-call driver for the full measurement pipeline: every analysis of
// §4-§6 computed from a loaded Dataset, plus a bitwise fingerprint of the
// combined output. The fingerprint is the determinism oracle — the analysis
// layer promises byte-identical results for every thread count, and the
// thread-invariance tests and the bench headline's "analysis" section both
// check that promise by comparing fingerprints across NS_THREADS settings.
#pragma once

#include <cstdint>

#include "analysis/guid_graph.hpp"
#include "analysis/measurement.hpp"
#include "net/as_graph.hpp"
#include "trace/serialize.hpp"

namespace netsession::analysis {

/// Aggregated output of every measurement in the pipeline.
struct PipelineResult {
    OverallStats overall;                                              // Table 1
    std::map<std::uint32_t, std::array<double, kReportRegions>> regions;  // Table 2
    SettingChanges setting_changes;                                    // Table 3
    std::map<std::uint32_t, double> upload_enabled;                    // Table 4
    std::vector<CountryPeers> peers_by_country;                        // Fig 2
    std::array<double, net::kContinentCount> continents{};             // Fig 2
    WorkloadCharacteristics workload;                                  // Fig 3
    SpeedComparison speeds;                                            // Fig 4
    EfficiencyVsCopies efficiency_copies;                              // Fig 5
    EfficiencyVsPeers efficiency_peers;                                // Fig 6
    OutcomeStats outcomes;                                             // §5.2 / Fig 7
    std::vector<CountryCoverage> coverage;                             // Fig 8
    TrafficBalance balance;                                            // §6.1 / Fig 9-11
    MobilityStats mobility;                                            // §6.2
    HeadlineOffload headline;                                          // §5.1
    DegradationStats degradation;                                      // §3.8
    GuidGraphStats guid_graphs;                                        // Fig 12
};

/// Runs every measurement over the dataset (one shared LoginIndex).
/// Fig 8's coverage uses the provider with the lowest cp_code; `graph`
/// (when given) enables the direct-link analysis of traffic_balance.
[[nodiscard]] PipelineResult run_full_pipeline(const trace::Dataset& dataset,
                                               const net::AsGraph* graph = nullptr);

/// FNV-1a hash over every field of the result, doubles hashed by bit
/// pattern. Two results fingerprint equal iff they are bitwise identical.
[[nodiscard]] std::uint64_t fingerprint(const PipelineResult& result);

}  // namespace netsession::analysis
