#include "analysis/guid_graph.hpp"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/parallel.hpp"

namespace netsession::analysis {

namespace {

struct Graph {
    // vertex -> successors (dedup'd)
    std::unordered_map<SecondaryGuid, std::unordered_set<SecondaryGuid>> out;
    std::unordered_map<SecondaryGuid, int> in_degree;
    std::unordered_set<SecondaryGuid> vertices;

    void add_edge(SecondaryGuid a, SecondaryGuid b) {
        vertices.insert(a);
        vertices.insert(b);
        if (out[a].insert(b).second) ++in_degree[b];
    }
};

/// Depth of the longest path from v (acyclic graphs only; depth capped).
int subtree_depth(const Graph& g, SecondaryGuid v, int budget) {
    if (budget <= 0) return 0;
    const auto it = g.out.find(v);
    if (it == g.out.end() || it->second.empty()) return 0;
    int best = 0;
    for (const auto& next : it->second) best = std::max(best, 1 + subtree_depth(g, next, budget - 1));
    return best;
}

GuidGraphPattern classify(const Graph& g) {
    // Roots and structural sanity: a chain/tree has exactly one root and no
    // vertex with in-degree > 1.
    std::vector<SecondaryGuid> roots;
    int leaves = 0;
    int branch_points = 0;
    SecondaryGuid branch_vertex{};
    for (const auto& v : g.vertices) {
        const auto in_it = g.in_degree.find(v);
        const int in = in_it == g.in_degree.end() ? 0 : in_it->second;
        if (in == 0) roots.push_back(v);
        if (in > 1) return GuidGraphPattern::irregular;
        const auto out_it = g.out.find(v);
        const auto out = out_it == g.out.end() ? 0 : static_cast<int>(out_it->second.size());
        if (out == 0) ++leaves;
        if (out > 1) {
            ++branch_points;
            branch_vertex = v;
        }
    }
    if (roots.size() != 1) return GuidGraphPattern::irregular;

    if (branch_points == 0) return GuidGraphPattern::linear_chain;
    if (leaves >= 3 || branch_points >= 2) return GuidGraphPattern::several_branches;

    // Exactly one branch point with two arms: measure arm lengths.
    const auto& arms = g.out.at(branch_vertex);
    const int cap = static_cast<int>(g.vertices.size());
    int shortest = cap;
    for (const auto& arm : arms)
        shortest = std::min(shortest, 1 + subtree_depth(g, arm, cap));
    return shortest <= 1 ? GuidGraphPattern::long_plus_short
                         : GuidGraphPattern::two_long_branches;
}

}  // namespace

GuidGraphStats classify_guid_graphs(const trace::TraceLog& log) {
    // Sharded edge accumulation: each chunk of the login log builds its own
    // per-GUID graphs; partials merge in chunk order by replaying edges
    // through add_edge. The merged graph equals the serial one outright —
    // edge sets and unique-edge in-degrees are insertion-order independent.
    using GraphMap = std::unordered_map<Guid, Graph>;
    const auto& logins = log.logins();
    GraphMap graphs = parallel::parallel_reduce<GraphMap>(
        logins.size(),
        [&](GraphMap& p, std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                const auto& login = logins[i];
                Graph& g = p[login.guid];
                // secondary_guids is newest-first; edges run old -> new.
                const auto& s = login.secondary_guids;
                for (std::size_t j = 0; j + 1 < s.size(); ++j) {
                    const SecondaryGuid newer = s[j];
                    const SecondaryGuid older = s[j + 1];
                    if (newer.is_nil() || older.is_nil()) continue;
                    g.add_edge(older, newer);
                }
            }
        },
        [](GraphMap& a, GraphMap&& b) {
            for (auto& [guid, g] : b) {
                Graph& dst = a[guid];
                for (const auto& [from, succs] : g.out)
                    for (const auto& to : succs) dst.add_edge(from, to);
            }
        });

    // Classification is per-graph and pure; fan the qualifying graphs out
    // over a snapshot vector (map iteration order, fixed for a given log).
    std::vector<const Graph*> qualifying;
    qualifying.reserve(graphs.size());
    for (const auto& [guid, g] : graphs)
        if (g.vertices.size() >= 3) qualifying.push_back(&g);  // paper: graphs with >= 3 vertices

    return parallel::parallel_reduce<GuidGraphStats>(
        qualifying.size(),
        [&](GuidGraphStats& p, std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                ++p.graphs;
                switch (classify(*qualifying[i])) {
                    case GuidGraphPattern::linear_chain: ++p.linear_chains; break;
                    case GuidGraphPattern::long_plus_short: ++p.long_plus_short; break;
                    case GuidGraphPattern::two_long_branches: ++p.two_long_branches; break;
                    case GuidGraphPattern::several_branches: ++p.several_branches; break;
                    case GuidGraphPattern::irregular: ++p.irregular; break;
                }
            }
        },
        [](GuidGraphStats& a, GuidGraphStats&& b) {
            a.graphs += b.graphs;
            a.linear_chains += b.linear_chains;
            a.long_plus_short += b.long_plus_short;
            a.two_long_branches += b.two_long_branches;
            a.several_branches += b.several_branches;
            a.irregular += b.irregular;
        });
}

}  // namespace netsession::analysis
