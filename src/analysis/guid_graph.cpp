#include "analysis/guid_graph.hpp"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace netsession::analysis {

namespace {

struct Graph {
    // vertex -> successors (dedup'd)
    std::unordered_map<SecondaryGuid, std::unordered_set<SecondaryGuid>> out;
    std::unordered_map<SecondaryGuid, int> in_degree;
    std::unordered_set<SecondaryGuid> vertices;

    void add_edge(SecondaryGuid a, SecondaryGuid b) {
        vertices.insert(a);
        vertices.insert(b);
        if (out[a].insert(b).second) ++in_degree[b];
    }
};

/// Depth of the longest path from v (acyclic graphs only; depth capped).
int subtree_depth(const Graph& g, SecondaryGuid v, int budget) {
    if (budget <= 0) return 0;
    const auto it = g.out.find(v);
    if (it == g.out.end() || it->second.empty()) return 0;
    int best = 0;
    for (const auto& next : it->second) best = std::max(best, 1 + subtree_depth(g, next, budget - 1));
    return best;
}

GuidGraphPattern classify(const Graph& g) {
    // Roots and structural sanity: a chain/tree has exactly one root and no
    // vertex with in-degree > 1.
    std::vector<SecondaryGuid> roots;
    int leaves = 0;
    int branch_points = 0;
    SecondaryGuid branch_vertex{};
    for (const auto& v : g.vertices) {
        const auto in_it = g.in_degree.find(v);
        const int in = in_it == g.in_degree.end() ? 0 : in_it->second;
        if (in == 0) roots.push_back(v);
        if (in > 1) return GuidGraphPattern::irregular;
        const auto out_it = g.out.find(v);
        const auto out = out_it == g.out.end() ? 0 : static_cast<int>(out_it->second.size());
        if (out == 0) ++leaves;
        if (out > 1) {
            ++branch_points;
            branch_vertex = v;
        }
    }
    if (roots.size() != 1) return GuidGraphPattern::irregular;

    if (branch_points == 0) return GuidGraphPattern::linear_chain;
    if (leaves >= 3 || branch_points >= 2) return GuidGraphPattern::several_branches;

    // Exactly one branch point with two arms: measure arm lengths.
    const auto& arms = g.out.at(branch_vertex);
    const int cap = static_cast<int>(g.vertices.size());
    int shortest = cap;
    for (const auto& arm : arms)
        shortest = std::min(shortest, 1 + subtree_depth(g, arm, cap));
    return shortest <= 1 ? GuidGraphPattern::long_plus_short
                         : GuidGraphPattern::two_long_branches;
}

}  // namespace

GuidGraphStats classify_guid_graphs(const trace::TraceLog& log) {
    std::unordered_map<Guid, Graph> graphs;
    for (const auto& login : log.logins()) {
        Graph& g = graphs[login.guid];
        // secondary_guids is newest-first; edges run old -> new.
        const auto& s = login.secondary_guids;
        for (std::size_t i = 0; i + 1 < s.size(); ++i) {
            const SecondaryGuid newer = s[i];
            const SecondaryGuid older = s[i + 1];
            if (newer.is_nil() || older.is_nil()) continue;
            g.add_edge(older, newer);
        }
    }

    GuidGraphStats stats;
    for (const auto& [guid, g] : graphs) {
        if (g.vertices.size() < 3) continue;  // paper considers graphs with >= 3 vertices
        ++stats.graphs;
        switch (classify(g)) {
            case GuidGraphPattern::linear_chain: ++stats.linear_chains; break;
            case GuidGraphPattern::long_plus_short: ++stats.long_plus_short; break;
            case GuidGraphPattern::two_long_branches: ++stats.two_long_branches; break;
            case GuidGraphPattern::several_branches: ++stats.several_branches; break;
            case GuidGraphPattern::irregular: ++stats.irregular; break;
        }
    }
    return stats;
}

}  // namespace netsession::analysis
