#include "analysis/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/parallel.hpp"

namespace netsession::analysis {

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples)) {
    parallel::parallel_sort(sorted_);
    if (!sorted_.empty()) {
        // Chunked partial sums merged in chunk order: the float-addition
        // order is a function of the sample count only, never thread count.
        const double sum = parallel::parallel_reduce<double>(
            sorted_.size(),
            [&](double& p, std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i) p += sorted_[i];
            },
            [](double& a, double b) { a += b; });
        mean_ = sum / static_cast<double>(sorted_.size());
    }
}

double Cdf::at(double x) const {
    if (sorted_.empty()) return 0.0;
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Cdf::quantile(double q) const {
    assert(!sorted_.empty());
    if (q <= 0.0) return sorted_.front();
    if (q >= 1.0) return sorted_.back();
    const double pos = q * static_cast<double>(sorted_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= sorted_.size()) return sorted_.back();
    return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

double Cdf::min() const {
    assert(!sorted_.empty());
    return sorted_.front();
}

double Cdf::max() const {
    assert(!sorted_.empty());
    return sorted_.back();
}

std::vector<std::pair<double, double>> Cdf::log_sweep(int points) const {
    std::vector<std::pair<double, double>> out;
    if (sorted_.empty() || points < 2) return out;
    const double lo = std::max(sorted_.front(), 1e-12);
    const double hi = std::max(sorted_.back(), lo * 1.0001);
    out.reserve(static_cast<std::size_t>(points));
    for (int i = 0; i < points; ++i) {
        const double x =
            lo * std::pow(hi / lo, static_cast<double>(i) / static_cast<double>(points - 1));
        out.emplace_back(x, at(x));
    }
    return out;
}

std::vector<double> log_edges(double lo, double hi, int bins) {
    assert(lo > 0.0 && hi > lo && bins > 0);
    std::vector<double> edges;
    edges.reserve(static_cast<std::size_t>(bins) + 1);
    for (int i = 0; i <= bins; ++i)
        edges.push_back(lo * std::pow(hi / lo, static_cast<double>(i) / bins));
    return edges;
}

int log_bin(double x, double lo, double hi, int bins) {
    if (x <= lo) return 0;
    if (x >= hi) return bins - 1;
    const double t = std::log(x / lo) / std::log(hi / lo);
    return std::min(bins - 1, static_cast<int>(t * bins));
}

double mean_of(const std::vector<double>& xs) {
    if (xs.empty()) return 0.0;
    double sum = 0.0;
    for (const double v : xs) sum += v;
    return sum / static_cast<double>(xs.size());
}

double percentile(std::vector<double> xs, double pct) {
    if (xs.empty()) return 0.0;
    parallel::parallel_sort(xs);
    const auto rank = static_cast<std::size_t>(
        std::min<double>(static_cast<double>(xs.size()) - 1.0,
                         std::max(0.0, pct / 100.0 * static_cast<double>(xs.size() - 1))));
    return xs[rank];
}

LogLogFit fit_loglog(const std::vector<std::pair<double, double>>& xy) {
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    std::size_t n = 0;
    for (const auto& [x, y] : xy) {
        if (x <= 0.0 || y <= 0.0) continue;
        const double lx = std::log10(x);
        const double ly = std::log10(y);
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
        ++n;
    }
    LogLogFit fit;
    fit.n = n;
    if (n < 2) return fit;
    const double dn = static_cast<double>(n);
    const double denom = dn * sxx - sx * sx;
    if (denom == 0.0) return fit;
    fit.slope = (dn * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / dn;
    return fit;
}

}  // namespace netsession::analysis
