#include "analysis/export.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>

#include "analysis/guid_graph.hpp"
#include "analysis/measurement.hpp"

namespace netsession::analysis {

namespace {

struct FileCloser {
    void operator()(std::FILE* f) const noexcept {
        if (f != nullptr) std::fclose(f);
    }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

File open_dat(const std::string& dir, const char* name, std::size_t& written) {
    File f(std::fopen((dir + "/" + name).c_str(), "w"));
    if (f) ++written;
    return f;
}

void write_cdf(std::FILE* f, const Cdf& cdf, const char* header) {
    std::fprintf(f, "# %s\n# x  fraction\n", header);
    for (const auto& [x, y] : cdf.log_sweep(120)) std::fprintf(f, "%g %g\n", x, y);
}

constexpr char kGnuplot[] = R"(# Renders every exported figure. Usage: gnuplot plot_all.gp
set terminal pngcairo size 800,560
set grid

set output 'fig3a.png'
set logscale x
set xlabel 'Object size (bytes)'; set ylabel 'CDF of requests'
plot 'fig3a_infra.dat' u 1:2 w l t 'Infrastructure-only', \
     'fig3a_all.dat' u 1:2 w l t 'All', \
     'fig3a_p2p.dat' u 1:2 w l t 'Peer-assisted'

set output 'fig3b.png'
set logscale xy
set xlabel 'Download rank'; set ylabel '# Downloads'
plot 'fig3b.dat' u 1:2 w p pt 7 ps 0.4 t 'objects'

set output 'fig3c.png'
unset logscale
set xlabel 'Hour of trace'; set ylabel 'Bytes/hour'
plot 'fig3c.dat' u 1:2 w l t 'GMT', 'fig3c.dat' u 1:3 w l t 'Local time'

set output 'fig4.png'
set logscale x
set xlabel 'Avg download speed (Mbps)'; set ylabel 'CDF of downloads'
plot 'fig4_asx_edge.dat' u 1:2 w l t 'AS X edge-only', \
     'fig4_asx_p2p.dat' u 1:2 w l t 'AS X >50% p2p', \
     'fig4_asy_edge.dat' u 1:2 w l t 'AS Y edge-only', \
     'fig4_asy_p2p.dat' u 1:2 w l t 'AS Y >50% p2p'

set output 'fig5.png'
set logscale x
unset logscale y
set xlabel 'File copies registered'; set ylabel 'Peer efficiency (%)'
set yrange [0:100]
plot 'fig5.dat' u 1:($2*100):($3*100):($4*100) w yerrorbars t 'mean (20th/80th pct)'

set output 'fig6.png'
unset logscale
set xlabel 'Peers initially returned'; set ylabel 'Peer efficiency (%)'
plot 'fig6.dat' u 1:($2*100) w lp t 'mean efficiency'

set output 'fig7.png'
set style data histogram
set style histogram cluster gap 1
set style fill solid 0.8
set xlabel 'File size bucket'; set ylabel 'Pause rate (%)'
plot 'fig7.dat' u ($2*100):xtic(1) t 'Infrastructure-only', \
     '' u ($3*100) t 'Peer-assisted', '' u ($4*100) t 'All'

set output 'fig9a.png'
set logscale x
set xlabel 'P2P bytes uploaded by an AS'; set ylabel 'Fraction of ASes'
plot 'fig9a.dat' u 1:2 w l t 'CDF'

set output 'fig10.png'
set logscale xy
set xlabel 'Content downloaded from other ASes'; set ylabel 'Content uploaded to other ASes'
plot 'fig10.dat' u ($3+1):($2+1):($4) w p pt 7 ps 0.5 lc variable t 'ASes (red=heavy)'

set output 'fig11.png'
set logscale xy
set xlabel 'Bytes A->B'; set ylabel 'Bytes B->A'
plot 'fig11.dat' u ($1+1):($2+1) w p pt 7 ps 0.5 t 'directly connected heavy pairs', x w l lt 0 t ''
)";

}  // namespace

std::size_t export_figure_data(const trace::Dataset& dataset, const net::AsGraph* graph,
                               const std::string& dir) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) return 0;
    std::size_t written = 0;
    const LoginIndex logins(dataset.log);

    // Fig 3.
    const auto w = workload_characteristics(dataset.log, logins, dataset.geodb);
    if (auto f = open_dat(dir, "fig3a_infra.dat", written))
        write_cdf(f.get(), w.size_infra_only, "request CDF by size, infra-only");
    if (auto f = open_dat(dir, "fig3a_all.dat", written))
        write_cdf(f.get(), w.size_all, "request CDF by size, all");
    if (auto f = open_dat(dir, "fig3a_p2p.dat", written))
        write_cdf(f.get(), w.size_peer_assisted, "request CDF by size, peer-assisted");
    if (auto f = open_dat(dir, "fig3b.dat", written)) {
        std::fprintf(f.get(), "# rank downloads\n");
        for (const auto& [rank, n] : w.popularity) std::fprintf(f.get(), "%g %g\n", rank, n);
    }
    if (auto f = open_dat(dir, "fig3c.dat", written)) {
        std::fprintf(f.get(), "# hour gmt_bytes local_bytes\n");
        for (std::size_t h = 0; h < w.bytes_per_hour_gmt.size(); ++h)
            std::fprintf(f.get(), "%zu %g %g\n", h, w.bytes_per_hour_gmt[h],
                         w.bytes_per_hour_local[h]);
    }

    // Fig 4.
    const auto cmp = speed_comparison(dataset.log, logins, dataset.geodb);
    if (auto f = open_dat(dir, "fig4_asx_edge.dat", written))
        write_cdf(f.get(), cmp.edge_only_x, "AS X edge-only speed (Mbps)");
    if (auto f = open_dat(dir, "fig4_asx_p2p.dat", written))
        write_cdf(f.get(), cmp.p2p_x, "AS X >50% p2p speed (Mbps)");
    if (auto f = open_dat(dir, "fig4_asy_edge.dat", written))
        write_cdf(f.get(), cmp.edge_only_y, "AS Y edge-only speed (Mbps)");
    if (auto f = open_dat(dir, "fig4_asy_p2p.dat", written))
        write_cdf(f.get(), cmp.p2p_y, "AS Y >50% p2p speed (Mbps)");

    // Fig 5 / 6.
    if (auto f = open_dat(dir, "fig5.dat", written)) {
        std::fprintf(f.get(), "# copies_mid mean p20 p80 objects\n");
        for (const auto& bin : efficiency_vs_copies(dataset.log).bins)
            std::fprintf(f.get(), "%g %g %g %g %d\n",
                         std::sqrt(bin.copies_lo * bin.copies_hi), bin.mean, bin.p20, bin.p80,
                         bin.objects);
    }
    if (auto f = open_dat(dir, "fig6.dat", written)) {
        std::fprintf(f.get(), "# peers_returned mean_efficiency downloads\n");
        const auto fig6 = efficiency_vs_peers_returned(dataset.log);
        for (std::size_t k = 0; k < fig6.groups.size(); ++k)
            if (fig6.groups[k].downloads > 0)
                std::fprintf(f.get(), "%zu %g %d\n", k, fig6.groups[k].mean_efficiency,
                             fig6.groups[k].downloads);
    }

    // Fig 7.
    if (auto f = open_dat(dir, "fig7.dat", written)) {
        static const char* kBuckets[4] = {"<10MB", "10-100MB", "100MB-1GB", ">1GB"};
        const auto outcomes = outcome_stats(dataset.log);
        std::fprintf(f.get(), "# bucket infra p2p all\n");
        for (int b = 0; b < 4; ++b)
            std::fprintf(f.get(), "%s %g %g %g\n", kBuckets[b],
                         outcomes.pause_rate_by_size[0][static_cast<std::size_t>(b)],
                         outcomes.pause_rate_by_size[1][static_cast<std::size_t>(b)],
                         outcomes.pause_rate_by_size[2][static_cast<std::size_t>(b)]);
    }

    // Fig 9-11.
    const auto tb = traffic_balance(dataset.log, dataset.geodb, graph);
    if (auto f = open_dat(dir, "fig9a.dat", written)) {
        std::vector<double> sent;
        for (const auto& as : tb.ases) sent.push_back(static_cast<double>(as.sent));
        write_cdf(f.get(), Cdf(std::move(sent)), "inter-AS bytes uploaded per AS");
    }
    if (auto f = open_dat(dir, "fig10.dat", written)) {
        std::fprintf(f.get(), "# asn uploaded downloaded heavy(1=red,3=blue)\n");
        for (const auto& as : tb.ases)
            std::fprintf(f.get(), "%u %lld %lld %d\n", as.asn,
                         static_cast<long long>(as.sent), static_cast<long long>(as.received),
                         as.heavy ? 1 : 3);
    }
    if (auto f = open_dat(dir, "fig11.dat", written)) {
        std::fprintf(f.get(), "# a_to_b b_to_a asn_a asn_b\n");
        for (const auto& [a, b, fwd, rev] : tb.heavy_pairs)
            std::fprintf(f.get(), "%lld %lld %u %u\n", static_cast<long long>(fwd),
                         static_cast<long long>(rev), a, b);
    }

    if (auto f = open_dat(dir, "plot_all.gp", written)) std::fputs(kGnuplot, f.get());
    return written;
}

}  // namespace netsession::analysis
