#include "analysis/table.hpp"

#include <algorithm>

namespace netsession::analysis {

std::string TextTable::render() const {
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    const auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string cell = c < row.size() ? row[c] : "";
            if (c == 0) {
                out += cell;
                out.append(widths[c] - cell.size(), ' ');
            } else {
                out.append(widths[c] - cell.size(), ' ');
                out += cell;
            }
            out += c + 1 < widths.size() ? "  " : "";
        }
        out += '\n';
    };

    std::string out;
    emit_row(headers_, out);
    std::size_t total = 0;
    for (const auto w : widths) total += w + 2;
    out.append(total, '-');
    out += '\n';
    for (const auto& row : rows_) emit_row(row, out);
    return out;
}

}  // namespace netsession::analysis
