// Plain-text table rendering for bench output (paper-style rows).
#pragma once

#include <string>
#include <vector>

namespace netsession::analysis {

class TextTable {
public:
    explicit TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

    void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

    /// Renders with column alignment; first column left-aligned, the rest
    /// right-aligned.
    [[nodiscard]] std::string render() const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace netsession::analysis
