#include "analysis/measurement.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "net/geo.hpp"
#include "net/world_data.hpp"

namespace netsession::analysis {

namespace {
constexpr std::array<Bytes, 3> kSizeBucketEdges = {10 * 1000 * 1000, 100 * 1000 * 1000,
                                                   1000 * 1000 * 1000};

int size_bucket(Bytes size) noexcept {
    for (std::size_t i = 0; i < kSizeBucketEdges.size(); ++i)
        if (size < kSizeBucketEdges[i]) return static_cast<int>(i);
    return static_cast<int>(kSizeBucketEdges.size());
}
}  // namespace

// --- Table 1 -------------------------------------------------------------------

OverallStats overall_stats(const trace::TraceLog& log, const net::GeoDatabase& geodb) {
    OverallStats s;
    s.log_entries = log.total_entries();
    s.downloads_initiated = log.downloads().size();

    std::unordered_set<Guid> guids;
    std::unordered_set<net::IpAddr> ips;
    for (const auto& l : log.logins()) {
        guids.insert(l.guid);
        ips.insert(l.ip);
    }
    std::unordered_set<std::uint64_t> urls;
    for (const auto& d : log.downloads()) {
        guids.insert(d.guid);
        urls.insert(d.url_hash);
    }
    s.guids = guids.size();
    s.distinct_urls = urls.size();
    s.distinct_ips = ips.size();

    std::unordered_set<std::uint64_t> locations;
    std::unordered_set<std::uint32_t> ases;
    std::unordered_set<std::uint16_t> countries;
    for (const auto& ip : ips) {
        const auto geo = geodb.lookup(ip);
        if (!geo) continue;
        locations.insert((static_cast<std::uint64_t>(geo->location.country.value) << 32) |
                         geo->location.city);
        ases.insert(geo->asn.value);
        countries.insert(geo->location.country.value);
    }
    s.distinct_locations = locations.size();
    s.distinct_ases = ases.size();
    s.distinct_countries = countries.size();
    return s;
}

// --- Table 2 -------------------------------------------------------------------

std::string_view to_string(ReportRegion r) noexcept {
    switch (r) {
        case ReportRegion::us_east: return "US East";
        case ReportRegion::us_west: return "US West";
        case ReportRegion::americas_other: return "Am. Other";
        case ReportRegion::india: return "India";
        case ReportRegion::china: return "China";
        case ReportRegion::asia_other: return "Asia Other";
        case ReportRegion::europe: return "Europe";
        case ReportRegion::africa: return "Africa";
        case ReportRegion::oceania: return "Oceania";
    }
    return "unknown";
}

ReportRegion report_region(const net::GeoRecord& geo) {
    const net::CountryInfo& c = net::country(geo.location.country);
    if (c.alpha2 == "US") {
        // The paper splits the United States East/West; we fold the central
        // region into East (the conventional Mississippi split).
        return net::region(c.region).name == std::string_view("US-West") ? ReportRegion::us_west
                                                                         : ReportRegion::us_east;
    }
    if (c.alpha2 == "IN") return ReportRegion::india;
    if (c.alpha2 == "CN") return ReportRegion::china;
    switch (c.continent) {
        case net::Continent::north_america:
        case net::Continent::south_america: return ReportRegion::americas_other;
        case net::Continent::europe: return ReportRegion::europe;
        case net::Continent::africa: return ReportRegion::africa;
        case net::Continent::asia: return ReportRegion::asia_other;
        case net::Continent::oceania: return ReportRegion::oceania;
    }
    return ReportRegion::europe;
}

std::map<std::uint32_t, std::array<double, kReportRegions>> downloads_by_region(
    const trace::TraceLog& log, const LoginIndex& logins, const net::GeoDatabase& geodb) {
    std::map<std::uint32_t, std::array<std::int64_t, kReportRegions>> counts;
    for (const auto& d : log.downloads()) {
        const auto geo = logins.locate(d.guid, d.start, geodb);
        if (!geo) continue;
        counts[d.cp_code.value][static_cast<std::size_t>(report_region(*geo))] += 1;
    }
    std::map<std::uint32_t, std::array<double, kReportRegions>> shares;
    for (const auto& [cp, row] : counts) {
        std::int64_t total = 0;
        for (const auto v : row) total += v;
        auto& out = shares[cp];
        for (int i = 0; i < kReportRegions; ++i)
            out[static_cast<std::size_t>(i)] =
                total == 0 ? 0.0
                           : static_cast<double>(row[static_cast<std::size_t>(i)]) /
                                 static_cast<double>(total);
    }
    return shares;
}

// --- Table 3 -------------------------------------------------------------------

SettingChanges upload_setting_changes(const LoginIndex& logins) {
    SettingChanges out;
    for (const auto& [guid, history] : logins) {
        if (history.empty()) continue;
        const bool initial = history.front()->uploads_enabled;
        int changes = 0;
        for (std::size_t i = 1; i < history.size(); ++i)
            if (history[i]->uploads_enabled != history[i - 1]->uploads_enabled) ++changes;
        const std::size_t bucket = changes == 0 ? 0 : changes == 1 ? 1 : 2;
        (initial ? out.initially_enabled : out.initially_disabled)[bucket] += 1;
    }
    return out;
}

// --- Table 4 -------------------------------------------------------------------

std::map<std::uint32_t, double> upload_enabled_by_provider(const trace::TraceLog& log,
                                                           const LoginIndex& logins) {
    // Attribute each peer to the provider of its first download.
    std::unordered_map<Guid, std::pair<sim::SimTime, std::uint32_t>> first_download;
    for (const auto& d : log.downloads()) {
        const auto it = first_download.find(d.guid);
        if (it == first_download.end() || d.start < it->second.first)
            first_download[d.guid] = {d.start, d.cp_code.value};
    }
    std::map<std::uint32_t, std::pair<std::int64_t, std::int64_t>> counts;  // enabled, total
    for (const auto& [guid, attribution] : first_download) {
        const auto* history = logins.history(guid);
        if (history == nullptr || history->empty()) continue;
        auto& [enabled, total] = counts[attribution.second];
        ++total;
        if (history->back()->uploads_enabled) ++enabled;
    }
    std::map<std::uint32_t, double> out;
    for (const auto& [cp, c] : counts)
        out[cp] = c.second == 0 ? 0.0
                                : static_cast<double>(c.first) / static_cast<double>(c.second);
    return out;
}

// --- Fig 2 ---------------------------------------------------------------------

std::vector<CountryPeers> peer_distribution(const LoginIndex& logins,
                                            const net::GeoDatabase& geodb) {
    std::unordered_map<std::uint16_t, std::int64_t> counts;
    std::int64_t total = 0;
    for (const auto& [guid, history] : logins) {
        if (history.empty()) continue;
        const auto geo = geodb.lookup(history.front()->ip);
        if (!geo) continue;
        counts[geo->location.country.value] += 1;
        ++total;
    }
    std::vector<CountryPeers> out;
    out.reserve(counts.size());
    for (const auto& [country, n] : counts)
        out.push_back(CountryPeers{CountryId{country}, n,
                                   total == 0 ? 0.0
                                              : static_cast<double>(n) /
                                                    static_cast<double>(total)});
    std::sort(out.begin(), out.end(),
              [](const CountryPeers& a, const CountryPeers& b) { return a.peers > b.peers; });
    return out;
}

std::array<double, net::kContinentCount> continent_shares(const LoginIndex& logins,
                                                          const net::GeoDatabase& geodb) {
    std::array<double, net::kContinentCount> shares{};
    double total = 0;
    for (const auto& cp : peer_distribution(logins, geodb)) {
        shares[static_cast<std::size_t>(net::country(cp.country).continent)] +=
            static_cast<double>(cp.peers);
        total += static_cast<double>(cp.peers);
    }
    if (total > 0)
        for (auto& s : shares) s /= total;
    return shares;
}

// --- Fig 3 ---------------------------------------------------------------------

WorkloadCharacteristics workload_characteristics(const trace::TraceLog& log,
                                                 const LoginIndex& logins,
                                                 const net::GeoDatabase& geodb) {
    WorkloadCharacteristics w;
    std::vector<double> all, infra, p2p;
    std::unordered_map<std::uint64_t, std::int64_t> per_url;
    sim::SimTime window_end{};
    for (const auto& d : log.downloads()) {
        const auto size = static_cast<double>(d.object_size);
        all.push_back(size);
        (d.p2p_enabled ? p2p : infra).push_back(size);
        per_url[d.url_hash] += 1;
        window_end = std::max(window_end, d.end);
    }
    w.size_all = Cdf(std::move(all));
    w.size_infra_only = Cdf(std::move(infra));
    w.size_peer_assisted = Cdf(std::move(p2p));

    std::vector<std::int64_t> pops;
    pops.reserve(per_url.size());
    for (const auto& [url, n] : per_url) pops.push_back(n);
    std::sort(pops.begin(), pops.end(), std::greater<>());
    w.popularity.reserve(pops.size());
    for (std::size_t i = 0; i < pops.size(); ++i)
        w.popularity.emplace_back(static_cast<double>(i + 1), static_cast<double>(pops[i]));
    w.popularity_fit = fit_loglog(w.popularity);

    const auto hours = static_cast<std::size_t>(window_end.hours()) + 1;
    w.bytes_per_hour_gmt.assign(hours, 0.0);
    w.bytes_per_hour_local.assign(hours, 0.0);
    for (const auto& d : log.downloads()) {
        const auto bytes = static_cast<double>(d.total_bytes());
        if (bytes <= 0) continue;
        const auto gmt_hour = static_cast<std::size_t>(d.end.hours());
        if (gmt_hour < hours) w.bytes_per_hour_gmt[gmt_hour] += bytes;
        // Local time: shift by the longitude-derived timezone of the peer.
        const auto geo = logins.locate(d.guid, d.start, geodb);
        if (!geo) continue;
        const auto offset = static_cast<std::int64_t>(std::lround(geo->location.point.lon / 15.0));
        const auto local =
            static_cast<std::int64_t>(gmt_hour) + offset;
        const auto wrapped = static_cast<std::size_t>(
            ((local % static_cast<std::int64_t>(hours)) + static_cast<std::int64_t>(hours)) %
            static_cast<std::int64_t>(hours));
        w.bytes_per_hour_local[wrapped] += bytes;
    }
    return w;
}

// --- Fig 4 ---------------------------------------------------------------------

SpeedComparison speed_comparison(const trace::TraceLog& log, const LoginIndex& logins,
                                 const net::GeoDatabase& geodb) {
    // Count completed downloads per AS; pick the two largest.
    std::unordered_map<std::uint32_t, std::int64_t> per_as;
    std::vector<std::pair<std::uint32_t, const trace::DownloadRecord*>> located;
    located.reserve(log.downloads().size());
    for (const auto& d : log.downloads()) {
        if (d.outcome != trace::DownloadOutcome::completed) continue;
        const auto geo = logins.locate(d.guid, d.start, geodb);
        if (!geo) continue;
        per_as[geo->asn.value] += 1;
        located.emplace_back(geo->asn.value, &d);
    }
    SpeedComparison out;
    std::uint32_t best = 0, second = 0;
    std::int64_t best_n = -1, second_n = -1;
    for (const auto& [asn, n] : per_as) {
        if (n > best_n) {
            second = best;
            second_n = best_n;
            best = asn;
            best_n = n;
        } else if (n > second_n) {
            second = asn;
            second_n = n;
        }
    }
    out.as_x = best;
    out.as_y = second;

    std::vector<double> ex, px, ey, py;
    for (const auto& [asn, d] : located) {
        if (asn != best && asn != second) continue;
        const double mbps = d->mean_speed() * 8.0 / 1e6;
        if (mbps <= 0.0) continue;
        const bool edge_only = d->bytes_from_peers == 0;
        const bool mostly_p2p =
            d->total_bytes() > 0 &&
            static_cast<double>(d->bytes_from_peers) >= 0.5 * static_cast<double>(d->total_bytes());
        if (asn == best) {
            if (edge_only) ex.push_back(mbps);
            if (mostly_p2p) px.push_back(mbps);
        } else {
            if (edge_only) ey.push_back(mbps);
            if (mostly_p2p) py.push_back(mbps);
        }
    }
    out.edge_only_x = Cdf(std::move(ex));
    out.p2p_x = Cdf(std::move(px));
    out.edge_only_y = Cdf(std::move(ey));
    out.p2p_y = Cdf(std::move(py));
    return out;
}

// --- Fig 5 ---------------------------------------------------------------------

EfficiencyVsCopies efficiency_vs_copies(const trace::TraceLog& log, int bins) {
    // Copies per object = distinct registering peers in the DN log.
    std::unordered_map<ObjectId, std::unordered_set<Guid>> copies;
    for (const auto& r : log.registrations()) copies[r.object].insert(r.guid);

    // Mean peer efficiency per object over completed peer-assisted downloads.
    std::unordered_map<ObjectId, std::pair<double, int>> eff;
    for (const auto& d : log.downloads()) {
        if (!d.p2p_enabled || d.outcome != trace::DownloadOutcome::completed) continue;
        auto& [sum, n] = eff[d.object];
        sum += d.peer_efficiency();
        ++n;
    }

    double max_copies = 1.0;
    for (const auto& [object, who] : copies)
        max_copies = std::max(max_copies, static_cast<double>(who.size()));

    std::vector<std::vector<double>> grouped(static_cast<std::size_t>(bins));
    for (const auto& [object, e] : eff) {
        if (e.second == 0) continue;
        const auto cit = copies.find(object);
        const double c = cit == copies.end() ? 1.0 : static_cast<double>(cit->second.size());
        const int b = log_bin(std::max(1.0, c), 1.0, max_copies + 1.0, bins);
        grouped[static_cast<std::size_t>(b)].push_back(e.first / e.second);
    }

    EfficiencyVsCopies out;
    const auto edges = log_edges(1.0, max_copies + 1.0, bins);
    for (int b = 0; b < bins; ++b) {
        const auto& xs = grouped[static_cast<std::size_t>(b)];
        if (xs.empty()) continue;
        EfficiencyVsCopies::Bin bin;
        bin.copies_lo = edges[static_cast<std::size_t>(b)];
        bin.copies_hi = edges[static_cast<std::size_t>(b) + 1];
        bin.mean = mean_of(xs);
        bin.p20 = percentile(xs, 20);
        bin.p80 = percentile(xs, 80);
        bin.objects = static_cast<int>(xs.size());
        out.bins.push_back(bin);
    }
    return out;
}

// --- Fig 6 ---------------------------------------------------------------------

EfficiencyVsPeers efficiency_vs_peers_returned(const trace::TraceLog& log, int max_peers) {
    EfficiencyVsPeers out;
    out.groups.assign(static_cast<std::size_t>(max_peers) + 1, {});
    std::vector<double> sums(static_cast<std::size_t>(max_peers) + 1, 0.0);
    for (const auto& d : log.downloads()) {
        if (!d.p2p_enabled || d.outcome != trace::DownloadOutcome::completed) continue;
        const auto k = static_cast<std::size_t>(
            std::clamp(d.peers_initially_returned, 0, max_peers));
        sums[k] += d.peer_efficiency();
        out.groups[k].downloads += 1;
    }
    for (std::size_t k = 0; k < out.groups.size(); ++k)
        if (out.groups[k].downloads > 0)
            out.groups[k].mean_efficiency = sums[k] / out.groups[k].downloads;
    return out;
}

// --- outcomes + Fig 7 -------------------------------------------------------------

OutcomeStats outcome_stats(const trace::TraceLog& log) {
    OutcomeStats out;
    std::array<std::array<std::int64_t, 4>, 3> aborted_by_size{};

    const auto accumulate = [](OutcomeStats::Class& c, const trace::DownloadRecord& d) {
        ++c.n;
        switch (d.outcome) {
            case trace::DownloadOutcome::completed: c.completed += 1; break;
            case trace::DownloadOutcome::failed_system: c.failed_system += 1; break;
            case trace::DownloadOutcome::failed_other: c.failed_other += 1; break;
            case trace::DownloadOutcome::aborted_by_user: c.aborted += 1; break;
            case trace::DownloadOutcome::in_progress: break;
        }
    };

    for (const auto& d : log.downloads()) {
        if (d.outcome == trace::DownloadOutcome::in_progress) continue;
        accumulate(out.all, d);
        accumulate(d.p2p_enabled ? out.peer_assisted : out.infra_only, d);
        const int bucket = size_bucket(d.object_size);
        const int cls = d.p2p_enabled ? 1 : 0;
        for (const int c : {cls, 2}) {
            out.downloads_by_size[static_cast<std::size_t>(c)][static_cast<std::size_t>(bucket)] +=
                1;
            if (d.outcome == trace::DownloadOutcome::aborted_by_user)
                aborted_by_size[static_cast<std::size_t>(c)][static_cast<std::size_t>(bucket)] += 1;
        }
    }

    const auto finalize = [](OutcomeStats::Class& c) {
        if (c.n == 0) return;
        const auto n = static_cast<double>(c.n);
        c.completed /= n;
        c.failed_system /= n;
        c.failed_other /= n;
        c.aborted /= n;
    };
    finalize(out.all);
    finalize(out.infra_only);
    finalize(out.peer_assisted);

    for (std::size_t c = 0; c < 3; ++c)
        for (std::size_t b = 0; b < 4; ++b)
            out.pause_rate_by_size[c][b] =
                out.downloads_by_size[c][b] == 0
                    ? 0.0
                    : static_cast<double>(aborted_by_size[c][b]) /
                          static_cast<double>(out.downloads_by_size[c][b]);
    return out;
}

// --- Fig 8 ---------------------------------------------------------------------

std::vector<CountryCoverage> coverage_by_country(const trace::TraceLog& log,
                                                 const LoginIndex& logins,
                                                 const net::GeoDatabase& geodb, CpCode provider) {
    std::unordered_map<std::uint16_t, std::pair<Bytes, Bytes>> per_country;  // infra, peers
    for (const auto& d : log.downloads()) {
        if (d.cp_code != provider || d.outcome != trace::DownloadOutcome::completed) continue;
        const auto geo = logins.locate(d.guid, d.start, geodb);
        if (!geo) continue;
        auto& [infra, peers] = per_country[geo->location.country.value];
        infra += d.bytes_from_infrastructure;
        peers += d.bytes_from_peers;
    }
    std::vector<CountryCoverage> out;
    out.reserve(per_country.size());
    for (const auto& [country, bytes] : per_country) {
        CountryCoverage c;
        c.country = CountryId{country};
        c.infra_bytes = bytes.first;
        c.peer_bytes = bytes.second;
        if (bytes.second <= 0 || bytes.first > bytes.second)
            c.cls = 0;
        else if (static_cast<double>(bytes.first) >= 0.5 * static_cast<double>(bytes.second))
            c.cls = 1;
        else
            c.cls = 2;
        out.push_back(c);
    }
    std::sort(out.begin(), out.end(), [](const CountryCoverage& a, const CountryCoverage& b) {
        return a.infra_bytes + a.peer_bytes > b.infra_bytes + b.peer_bytes;
    });
    return out;
}

// --- traffic balance ---------------------------------------------------------------

TrafficBalance traffic_balance(const trace::TraceLog& log, const net::GeoDatabase& geodb,
                               const net::AsGraph* graph) {
    TrafficBalance out;
    std::unordered_map<std::uint32_t, TrafficBalance::AsFlow> flows;
    std::unordered_map<std::uint64_t, Bytes> pair_bytes;  // (from<<32|to) inter-AS only

    // Every AS that shows up in logins is part of the universe, even if it
    // never sent a byte ("roughly half of the ASes did not send any inter-AS
    // bytes at all").
    std::unordered_map<std::uint32_t, std::unordered_set<net::IpAddr>> ips_per_as;
    for (const auto& l : log.logins()) {
        const auto geo = geodb.lookup(l.ip);
        if (!geo) continue;
        ips_per_as[geo->asn.value].insert(l.ip);
        flows.try_emplace(geo->asn.value);
    }

    for (const auto& t : log.transfers()) {
        const auto from = geodb.lookup(t.from_ip);
        const auto to = geodb.lookup(t.to_ip);
        if (!from || !to) continue;
        out.total_p2p_bytes += t.bytes;
        if (from->asn == to->asn) {
            out.intra_as_bytes += t.bytes;
            continue;
        }
        out.inter_as_bytes += t.bytes;
        flows[from->asn.value].sent += t.bytes;
        flows[to->asn.value].received += t.bytes;
        pair_bytes[(static_cast<std::uint64_t>(from->asn.value) << 32) | to->asn.value] += t.bytes;
    }

    out.ases.reserve(flows.size());
    for (auto& [asn, f] : flows) {
        f.asn = asn;
        const auto it = ips_per_as.find(asn);
        f.ips_observed = it == ips_per_as.end() ? 0 : static_cast<std::int64_t>(it->second.size());
        out.ases.push_back(f);
    }
    std::sort(out.ases.begin(), out.ases.end(),
              [](const TrafficBalance::AsFlow& a, const TrafficBalance::AsFlow& b) {
                  return a.sent > b.sent;
              });
    out.ases_with_traffic = 0;
    for (const auto& f : out.ases)
        if (f.sent > 0 || f.received > 0) ++out.ases_with_traffic;

    // Heavy uploaders: the smallest top set responsible for 90% of inter-AS
    // upload bytes.
    Bytes acc = 0;
    std::unordered_set<std::uint32_t> heavy;
    for (auto& f : out.ases) {
        if (out.inter_as_bytes > 0 &&
            static_cast<double>(acc) < 0.9 * static_cast<double>(out.inter_as_bytes) &&
            f.sent > 0) {
            f.heavy = true;
            heavy.insert(f.asn);
            acc += f.sent;
        }
    }
    out.heavy_count = heavy.size();

    // p98 of per-AS upload volume and the bottom-98% share.
    if (!out.ases.empty()) {
        std::vector<Bytes> sent_sorted;
        sent_sorted.reserve(out.ases.size());
        for (const auto& f : out.ases) sent_sorted.push_back(f.sent);
        std::sort(sent_sorted.begin(), sent_sorted.end());
        const auto idx = static_cast<std::size_t>(0.98 * static_cast<double>(sent_sorted.size()));
        out.p98_upload = sent_sorted[std::min(idx, sent_sorted.size() - 1)];
        Bytes bottom = 0;
        for (std::size_t i = 0; i <= std::min(idx, sent_sorted.size() - 1); ++i)
            bottom += sent_sorted[i];
        out.bottom98_share = out.inter_as_bytes == 0
                                 ? 0.0
                                 : static_cast<double>(bottom) /
                                       static_cast<double>(out.inter_as_bytes);
    }

    // Pairwise balance among heavy uploaders (Fig 11) and the direct-link
    // share estimate (§6.1).
    Bytes heavy_total = 0;
    Bytes heavy_direct = 0;
    std::unordered_set<std::uint64_t> seen;
    for (const auto& [key, bytes] : pair_bytes) {
        const auto a = static_cast<std::uint32_t>(key >> 32);
        const auto b = static_cast<std::uint32_t>(key & 0xFFFFFFFFu);
        if (!heavy.contains(a) || !heavy.contains(b)) continue;
        heavy_total += bytes;
        const bool direct = graph != nullptr && graph->directly_connected(Asn{a}, Asn{b});
        if (direct) heavy_direct += bytes;
        const std::uint64_t canonical =
            a < b ? (static_cast<std::uint64_t>(a) << 32) | b
                  : (static_cast<std::uint64_t>(b) << 32) | a;
        if (!seen.insert(canonical).second) continue;
        if (!direct) continue;  // Fig 11 plots directly-connected pairs
        const auto fwd_it = pair_bytes.find((static_cast<std::uint64_t>(a) << 32) | b);
        const auto rev_it = pair_bytes.find((static_cast<std::uint64_t>(b) << 32) | a);
        out.heavy_pairs.emplace_back(a, b, fwd_it == pair_bytes.end() ? 0 : fwd_it->second,
                                     rev_it == pair_bytes.end() ? 0 : rev_it->second);
    }
    out.heavy_direct_share = heavy_total == 0 ? 0.0
                                              : static_cast<double>(heavy_direct) /
                                                    static_cast<double>(heavy_total);
    return out;
}

// --- mobility ---------------------------------------------------------------------

MobilityStats mobility_stats(const trace::TraceLog& log, const LoginIndex& logins,
                             const net::GeoDatabase& geodb) {
    MobilityStats out;
    sim::SimTime lo{std::numeric_limits<std::int64_t>::max()};
    sim::SimTime hi{0};
    for (const auto& l : log.logins()) {
        lo = std::min(lo, l.time);
        hi = std::max(hi, l.time);
    }

    std::int64_t single = 0, two = 0, more = 0, within10 = 0;
    for (const auto& [guid, history] : logins) {
        if (history.empty()) continue;
        ++out.guids;
        std::unordered_set<std::uint32_t> ases;
        std::vector<net::GeoPoint> points;
        for (const auto* l : history) {
            const auto geo = geodb.lookup(l->ip);
            if (!geo) continue;
            ases.insert(geo->asn.value);
            points.push_back(geo->location.point);
        }
        if (ases.size() <= 1)
            ++single;
        else if (ases.size() == 2)
            ++two;
        else
            ++more;
        double max_km = 0.0;
        for (std::size_t i = 0; i < points.size(); ++i)
            for (std::size_t j = i + 1; j < points.size(); ++j)
                max_km = std::max(max_km, net::haversine_km(points[i], points[j]));
        if (max_km <= 10.0) ++within10;
    }
    if (out.guids > 0) {
        const auto n = static_cast<double>(out.guids);
        out.frac_single_as = static_cast<double>(single) / n;
        out.frac_two_as = static_cast<double>(two) / n;
        out.frac_more_as = static_cast<double>(more) / n;
        out.frac_within_10km = static_cast<double>(within10) / n;
    }
    const double minutes = std::max(1.0, (hi - lo).seconds() / 60.0);
    out.new_connections_per_minute = static_cast<double>(log.logins().size()) / minutes;
    return out;
}

// --- headline ----------------------------------------------------------------------

HeadlineOffload headline_offload(const trace::TraceLog& log) {
    HeadlineOffload out;
    std::unordered_set<std::uint64_t> files, p2p_files;
    Bytes all_bytes = 0, p2p_file_bytes = 0, p2p_peer_bytes = 0, p2p_total_bytes = 0;
    double eff_sum = 0;
    std::int64_t eff_n = 0;
    for (const auto& d : log.downloads()) {
        files.insert(d.url_hash);
        all_bytes += d.total_bytes();
        if (!d.p2p_enabled) continue;
        p2p_files.insert(d.url_hash);
        p2p_file_bytes += d.total_bytes();
        p2p_peer_bytes += d.bytes_from_peers;
        p2p_total_bytes += d.total_bytes();
        if (d.outcome == trace::DownloadOutcome::completed) {
            eff_sum += d.peer_efficiency();
            ++eff_n;
        }
    }
    out.p2p_enabled_file_fraction =
        files.empty() ? 0.0
                      : static_cast<double>(p2p_files.size()) / static_cast<double>(files.size());
    out.p2p_enabled_byte_fraction =
        all_bytes == 0 ? 0.0
                       : static_cast<double>(p2p_file_bytes) / static_cast<double>(all_bytes);
    out.mean_peer_efficiency = eff_n == 0 ? 0.0 : eff_sum / static_cast<double>(eff_n);
    out.overall_offload = p2p_total_bytes == 0
                              ? 0.0
                              : static_cast<double>(p2p_peer_bytes) /
                                    static_cast<double>(p2p_total_bytes);
    return out;
}

// --- degradation -------------------------------------------------------------------

DegradationStats degradation_stats(const trace::TraceLog& log) {
    DegradationStats out;
    std::unordered_set<Guid> clients;
    for (const auto& r : log.degradations()) {
        // A remap record documents *how* an edge-stall incident was handled,
        // not a second incident; only its own counter sees it (see the
        // DegradationStats::total doc comment).
        if (r.kind != trace::DegradationKind::edge_remapped) ++out.total;
        clients.insert(r.guid);
        switch (r.kind) {
            case trace::DegradationKind::edge_stall: ++out.edge_stalls; break;
            case trace::DegradationKind::edge_remapped: ++out.edge_remaps; break;
            case trace::DegradationKind::peer_stall: ++out.peer_stalls; break;
            case trace::DegradationKind::source_blacklisted: ++out.sources_blacklisted; break;
            case trace::DegradationKind::query_timeout: ++out.query_timeouts; break;
            case trace::DegradationKind::login_timeout: ++out.login_timeouts; break;
            case trace::DegradationKind::stun_timeout: ++out.stun_timeouts; break;
        }
    }
    out.affected_clients = static_cast<std::int64_t>(clients.size());
    return out;
}

}  // namespace netsession::analysis
