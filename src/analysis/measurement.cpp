#include "analysis/measurement.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "common/parallel.hpp"
#include "net/geo.hpp"
#include "net/world_data.hpp"

// Every record scan below runs through parallel::parallel_reduce: chunks of
// the (contiguous) record arrays fill independent partial aggregates, which
// merge serially in ascending chunk order. That keeps each function's result
// a pure function of the log — identical for every NS_THREADS value — per
// the rules in docs/PARALLELISM.md: vector partials concatenate in chunk
// order (reproducing the serial element order exactly), map/set partials
// merge in chunk order (a deterministic insertion sequence, hence a
// deterministic iteration order downstream), and float partial sums add in
// chunk order (a fixed, n-derived summation tree).

namespace netsession::analysis {

namespace {
constexpr std::array<Bytes, 3> kSizeBucketEdges = {10 * 1000 * 1000, 100 * 1000 * 1000,
                                                   1000 * 1000 * 1000};

int size_bucket(Bytes size) noexcept {
    for (std::size_t i = 0; i < kSizeBucketEdges.size(); ++i)
        if (size < kSizeBucketEdges[i]) return static_cast<int>(i);
    return static_cast<int>(kSizeBucketEdges.size());
}

/// Stable per-GUID view of a LoginIndex for chunked scans. The order is the
/// index's iteration order — fixed for a given log, independent of thread
/// count.
std::vector<const std::vector<const trace::LoginRecord*>*> history_snapshot(
    const LoginIndex& logins) {
    std::vector<const std::vector<const trace::LoginRecord*>*> out;
    out.reserve(logins.guid_count());
    for (const auto& [guid, history] : logins) out.push_back(&history);
    return out;
}
}  // namespace

// --- Table 1 -------------------------------------------------------------------

OverallStats overall_stats(const trace::TraceLog& log, const net::GeoDatabase& geodb) {
    OverallStats s;
    s.log_entries = log.total_entries();
    s.downloads_initiated = log.downloads().size();

    const auto& logins = log.logins();
    const auto& downloads = log.downloads();

    struct IdSets {
        std::unordered_set<Guid> guids;
        std::unordered_set<net::IpAddr> ips;
        std::unordered_set<std::uint64_t> urls;
    };
    auto login_ids = parallel::parallel_reduce<IdSets>(
        logins.size(),
        [&](IdSets& p, std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                p.guids.insert(logins[i].guid);
                p.ips.insert(logins[i].ip);
            }
        },
        [](IdSets& a, IdSets&& b) {
            a.guids.merge(b.guids);
            a.ips.merge(b.ips);
        });
    auto download_ids = parallel::parallel_reduce<IdSets>(
        downloads.size(),
        [&](IdSets& p, std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                p.guids.insert(downloads[i].guid);
                p.urls.insert(downloads[i].url_hash);
            }
        },
        [](IdSets& a, IdSets&& b) {
            a.guids.merge(b.guids);
            a.urls.merge(b.urls);
        });
    login_ids.guids.merge(download_ids.guids);
    s.guids = login_ids.guids.size();
    s.distinct_urls = download_ids.urls.size();
    s.distinct_ips = login_ids.ips.size();

    const std::vector<net::IpAddr> ip_list(login_ids.ips.begin(), login_ids.ips.end());
    struct GeoSets {
        std::unordered_set<std::uint64_t> locations;
        std::unordered_set<std::uint32_t> ases;
        std::unordered_set<std::uint16_t> countries;
    };
    const auto geo_sets = parallel::parallel_reduce<GeoSets>(
        ip_list.size(),
        [&](GeoSets& p, std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                const auto geo = geodb.lookup(ip_list[i]);
                if (!geo) continue;
                p.locations.insert((static_cast<std::uint64_t>(geo->location.country.value) << 32) |
                                   geo->location.city);
                p.ases.insert(geo->asn.value);
                p.countries.insert(geo->location.country.value);
            }
        },
        [](GeoSets& a, GeoSets&& b) {
            a.locations.merge(b.locations);
            a.ases.merge(b.ases);
            a.countries.merge(b.countries);
        });
    s.distinct_locations = geo_sets.locations.size();
    s.distinct_ases = geo_sets.ases.size();
    s.distinct_countries = geo_sets.countries.size();
    return s;
}

// --- Table 2 -------------------------------------------------------------------

std::string_view to_string(ReportRegion r) noexcept {
    switch (r) {
        case ReportRegion::us_east: return "US East";
        case ReportRegion::us_west: return "US West";
        case ReportRegion::americas_other: return "Am. Other";
        case ReportRegion::india: return "India";
        case ReportRegion::china: return "China";
        case ReportRegion::asia_other: return "Asia Other";
        case ReportRegion::europe: return "Europe";
        case ReportRegion::africa: return "Africa";
        case ReportRegion::oceania: return "Oceania";
    }
    return "unknown";
}

ReportRegion report_region(const net::GeoRecord& geo) {
    const net::CountryInfo& c = net::country(geo.location.country);
    if (c.alpha2 == "US") {
        // The paper splits the United States East/West; we fold the central
        // region into East (the conventional Mississippi split).
        return net::region(c.region).name == std::string_view("US-West") ? ReportRegion::us_west
                                                                         : ReportRegion::us_east;
    }
    if (c.alpha2 == "IN") return ReportRegion::india;
    if (c.alpha2 == "CN") return ReportRegion::china;
    switch (c.continent) {
        case net::Continent::north_america:
        case net::Continent::south_america: return ReportRegion::americas_other;
        case net::Continent::europe: return ReportRegion::europe;
        case net::Continent::africa: return ReportRegion::africa;
        case net::Continent::asia: return ReportRegion::asia_other;
        case net::Continent::oceania: return ReportRegion::oceania;
    }
    return ReportRegion::europe;
}

std::map<std::uint32_t, std::array<double, kReportRegions>> downloads_by_region(
    const trace::TraceLog& log, const LoginIndex& logins, const net::GeoDatabase& geodb) {
    using CountMap = std::map<std::uint32_t, std::array<std::int64_t, kReportRegions>>;
    const auto& downloads = log.downloads();
    const CountMap counts = parallel::parallel_reduce<CountMap>(
        downloads.size(),
        [&](CountMap& p, std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                const auto& d = downloads[i];
                const auto geo = logins.locate(d.guid, d.start, geodb);
                if (!geo) continue;
                p[d.cp_code.value][static_cast<std::size_t>(report_region(*geo))] += 1;
            }
        },
        [](CountMap& a, CountMap&& b) {
            for (const auto& [cp, row] : b) {
                auto& dst = a[cp];
                for (std::size_t i = 0; i < row.size(); ++i) dst[i] += row[i];
            }
        });
    std::map<std::uint32_t, std::array<double, kReportRegions>> shares;
    for (const auto& [cp, row] : counts) {
        std::int64_t total = 0;
        for (const auto v : row) total += v;
        auto& out = shares[cp];
        for (int i = 0; i < kReportRegions; ++i)
            out[static_cast<std::size_t>(i)] =
                total == 0 ? 0.0
                           : static_cast<double>(row[static_cast<std::size_t>(i)]) /
                                 static_cast<double>(total);
    }
    return shares;
}

// --- Table 3 -------------------------------------------------------------------

SettingChanges upload_setting_changes(const LoginIndex& logins) {
    const auto histories = history_snapshot(logins);
    return parallel::parallel_reduce<SettingChanges>(
        histories.size(),
        [&](SettingChanges& p, std::size_t lo, std::size_t hi) {
            for (std::size_t g = lo; g < hi; ++g) {
                const auto& history = *histories[g];
                if (history.empty()) continue;
                const bool initial = history.front()->uploads_enabled;
                int changes = 0;
                for (std::size_t i = 1; i < history.size(); ++i)
                    if (history[i]->uploads_enabled != history[i - 1]->uploads_enabled) ++changes;
                const std::size_t bucket = changes == 0 ? 0 : changes == 1 ? 1 : 2;
                (initial ? p.initially_enabled : p.initially_disabled)[bucket] += 1;
            }
        },
        [](SettingChanges& a, SettingChanges&& b) {
            for (std::size_t i = 0; i < a.initially_enabled.size(); ++i) {
                a.initially_enabled[i] += b.initially_enabled[i];
                a.initially_disabled[i] += b.initially_disabled[i];
            }
        });
}

// --- Table 4 -------------------------------------------------------------------

std::map<std::uint32_t, double> upload_enabled_by_provider(const trace::TraceLog& log,
                                                           const LoginIndex& logins) {
    // Attribute each peer to the provider of its first download. Merge keeps
    // the accumulator's entry on equal start times (strict <): the earlier
    // chunk saw the earlier record, matching the serial first-wins rule.
    using FirstMap = std::unordered_map<Guid, std::pair<sim::SimTime, std::uint32_t>>;
    const auto& downloads = log.downloads();
    const FirstMap first_download = parallel::parallel_reduce<FirstMap>(
        downloads.size(),
        [&](FirstMap& p, std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                const auto& d = downloads[i];
                const auto it = p.find(d.guid);
                if (it == p.end() || d.start < it->second.first)
                    p[d.guid] = {d.start, d.cp_code.value};
            }
        },
        [](FirstMap& a, FirstMap&& b) {
            for (const auto& [guid, attribution] : b) {
                const auto it = a.find(guid);
                if (it == a.end() || attribution.first < it->second.first) a[guid] = attribution;
            }
        });

    std::vector<std::pair<Guid, std::uint32_t>> attributed;
    attributed.reserve(first_download.size());
    for (const auto& [guid, attribution] : first_download)
        attributed.emplace_back(guid, attribution.second);

    using CountMap = std::map<std::uint32_t, std::pair<std::int64_t, std::int64_t>>;
    const CountMap counts = parallel::parallel_reduce<CountMap>(  // enabled, total
        attributed.size(),
        [&](CountMap& p, std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                const auto* history = logins.history(attributed[i].first);
                if (history == nullptr || history->empty()) continue;
                auto& [enabled, total] = p[attributed[i].second];
                ++total;
                if (history->back()->uploads_enabled) ++enabled;
            }
        },
        [](CountMap& a, CountMap&& b) {
            for (const auto& [cp, c] : b) {
                a[cp].first += c.first;
                a[cp].second += c.second;
            }
        });
    std::map<std::uint32_t, double> out;
    for (const auto& [cp, c] : counts)
        out[cp] = c.second == 0 ? 0.0
                                : static_cast<double>(c.first) / static_cast<double>(c.second);
    return out;
}

// --- Fig 2 ---------------------------------------------------------------------

std::vector<CountryPeers> peer_distribution(const LoginIndex& logins,
                                            const net::GeoDatabase& geodb) {
    const auto histories = history_snapshot(logins);
    struct CountryCounts {
        std::unordered_map<std::uint16_t, std::int64_t> counts;
        std::int64_t total = 0;
    };
    const auto agg = parallel::parallel_reduce<CountryCounts>(
        histories.size(),
        [&](CountryCounts& p, std::size_t lo, std::size_t hi) {
            for (std::size_t g = lo; g < hi; ++g) {
                const auto& history = *histories[g];
                if (history.empty()) continue;
                const auto geo = geodb.lookup(history.front()->ip);
                if (!geo) continue;
                p.counts[geo->location.country.value] += 1;
                ++p.total;
            }
        },
        [](CountryCounts& a, CountryCounts&& b) {
            for (const auto& [country, n] : b.counts) a.counts[country] += n;
            a.total += b.total;
        });
    std::vector<CountryPeers> out;
    out.reserve(agg.counts.size());
    for (const auto& [country, n] : agg.counts)
        out.push_back(CountryPeers{CountryId{country}, n,
                                   agg.total == 0 ? 0.0
                                                  : static_cast<double>(n) /
                                                        static_cast<double>(agg.total)});
    std::sort(out.begin(), out.end(),
              [](const CountryPeers& a, const CountryPeers& b) { return a.peers > b.peers; });
    return out;
}

std::array<double, net::kContinentCount> continent_shares(const LoginIndex& logins,
                                                          const net::GeoDatabase& geodb) {
    std::array<double, net::kContinentCount> shares{};
    double total = 0;
    for (const auto& cp : peer_distribution(logins, geodb)) {
        shares[static_cast<std::size_t>(net::country(cp.country).continent)] +=
            static_cast<double>(cp.peers);
        total += static_cast<double>(cp.peers);
    }
    if (total > 0)
        for (auto& s : shares) s /= total;
    return shares;
}

// --- Fig 3 ---------------------------------------------------------------------

WorkloadCharacteristics workload_characteristics(const trace::TraceLog& log,
                                                 const LoginIndex& logins,
                                                 const net::GeoDatabase& geodb) {
    WorkloadCharacteristics w;
    const auto& downloads = log.downloads();
    struct SizePartial {
        std::vector<double> all, infra, p2p;
        std::unordered_map<std::uint64_t, std::int64_t> per_url;
        sim::SimTime window_end{};
    };
    auto sizes = parallel::parallel_reduce<SizePartial>(
        downloads.size(),
        [&](SizePartial& p, std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                const auto& d = downloads[i];
                const auto size = static_cast<double>(d.object_size);
                p.all.push_back(size);
                (d.p2p_enabled ? p.p2p : p.infra).push_back(size);
                p.per_url[d.url_hash] += 1;
                p.window_end = std::max(p.window_end, d.end);
            }
        },
        [](SizePartial& a, SizePartial&& b) {
            a.all.insert(a.all.end(), b.all.begin(), b.all.end());
            a.infra.insert(a.infra.end(), b.infra.begin(), b.infra.end());
            a.p2p.insert(a.p2p.end(), b.p2p.begin(), b.p2p.end());
            for (const auto& [url, n] : b.per_url) a.per_url[url] += n;
            a.window_end = std::max(a.window_end, b.window_end);
        });
    w.size_all = Cdf(std::move(sizes.all));
    w.size_infra_only = Cdf(std::move(sizes.infra));
    w.size_peer_assisted = Cdf(std::move(sizes.p2p));

    std::vector<std::int64_t> pops;
    pops.reserve(sizes.per_url.size());
    for (const auto& [url, n] : sizes.per_url) pops.push_back(n);
    std::sort(pops.begin(), pops.end(), std::greater<>());
    w.popularity.reserve(pops.size());
    for (std::size_t i = 0; i < pops.size(); ++i)
        w.popularity.emplace_back(static_cast<double>(i + 1), static_cast<double>(pops[i]));
    w.popularity_fit = fit_loglog(w.popularity);

    const auto hours = static_cast<std::size_t>(sizes.window_end.hours()) + 1;
    struct HourPartial {
        std::vector<double> gmt, local;
    };
    auto per_hour = parallel::parallel_reduce<HourPartial>(
        downloads.size(),
        [&](HourPartial& p, std::size_t lo, std::size_t hi) {
            p.gmt.assign(hours, 0.0);
            p.local.assign(hours, 0.0);
            for (std::size_t i = lo; i < hi; ++i) {
                const auto& d = downloads[i];
                const auto bytes = static_cast<double>(d.total_bytes());
                if (bytes <= 0) continue;
                const auto gmt_hour = static_cast<std::size_t>(d.end.hours());
                if (gmt_hour < hours) p.gmt[gmt_hour] += bytes;
                // Local time: shift by the longitude-derived timezone of the peer.
                const auto geo = logins.locate(d.guid, d.start, geodb);
                if (!geo) continue;
                const auto offset =
                    static_cast<std::int64_t>(std::lround(geo->location.point.lon / 15.0));
                const auto local = static_cast<std::int64_t>(gmt_hour) + offset;
                const auto wrapped = static_cast<std::size_t>(
                    ((local % static_cast<std::int64_t>(hours)) +
                     static_cast<std::int64_t>(hours)) %
                    static_cast<std::int64_t>(hours));
                p.local[wrapped] += bytes;
            }
        },
        [](HourPartial& a, HourPartial&& b) {
            for (std::size_t i = 0; i < a.gmt.size(); ++i) {
                a.gmt[i] += b.gmt[i];
                a.local[i] += b.local[i];
            }
        });
    if (per_hour.gmt.empty()) per_hour.gmt.assign(hours, 0.0);
    if (per_hour.local.empty()) per_hour.local.assign(hours, 0.0);
    w.bytes_per_hour_gmt = std::move(per_hour.gmt);
    w.bytes_per_hour_local = std::move(per_hour.local);
    return w;
}

// --- Fig 4 ---------------------------------------------------------------------

SpeedComparison speed_comparison(const trace::TraceLog& log, const LoginIndex& logins,
                                 const net::GeoDatabase& geodb) {
    // Count completed downloads per AS; pick the two largest.
    const auto& downloads = log.downloads();
    struct LocatedPartial {
        std::unordered_map<std::uint32_t, std::int64_t> per_as;
        std::vector<std::pair<std::uint32_t, const trace::DownloadRecord*>> located;
    };
    const auto loc = parallel::parallel_reduce<LocatedPartial>(
        downloads.size(),
        [&](LocatedPartial& p, std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                const auto& d = downloads[i];
                if (d.outcome != trace::DownloadOutcome::completed) continue;
                const auto geo = logins.locate(d.guid, d.start, geodb);
                if (!geo) continue;
                p.per_as[geo->asn.value] += 1;
                p.located.emplace_back(geo->asn.value, &d);
            }
        },
        [](LocatedPartial& a, LocatedPartial&& b) {
            for (const auto& [asn, n] : b.per_as) a.per_as[asn] += n;
            a.located.insert(a.located.end(), b.located.begin(), b.located.end());
        });
    SpeedComparison out;
    std::uint32_t best = 0, second = 0;
    std::int64_t best_n = -1, second_n = -1;
    for (const auto& [asn, n] : loc.per_as) {
        if (n > best_n) {
            second = best;
            second_n = best_n;
            best = asn;
            best_n = n;
        } else if (n > second_n) {
            second = asn;
            second_n = n;
        }
    }
    out.as_x = best;
    out.as_y = second;

    struct SpeedPartial {
        std::vector<double> ex, px, ey, py;
    };
    auto speeds = parallel::parallel_reduce<SpeedPartial>(
        loc.located.size(),
        [&](SpeedPartial& p, std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                const auto& [asn, d] = loc.located[i];
                if (asn != best && asn != second) continue;
                const double mbps = d->mean_speed() * 8.0 / 1e6;
                if (mbps <= 0.0) continue;
                const bool edge_only = d->bytes_from_peers == 0;
                const bool mostly_p2p = d->total_bytes() > 0 &&
                                        static_cast<double>(d->bytes_from_peers) >=
                                            0.5 * static_cast<double>(d->total_bytes());
                if (asn == best) {
                    if (edge_only) p.ex.push_back(mbps);
                    if (mostly_p2p) p.px.push_back(mbps);
                } else {
                    if (edge_only) p.ey.push_back(mbps);
                    if (mostly_p2p) p.py.push_back(mbps);
                }
            }
        },
        [](SpeedPartial& a, SpeedPartial&& b) {
            a.ex.insert(a.ex.end(), b.ex.begin(), b.ex.end());
            a.px.insert(a.px.end(), b.px.begin(), b.px.end());
            a.ey.insert(a.ey.end(), b.ey.begin(), b.ey.end());
            a.py.insert(a.py.end(), b.py.begin(), b.py.end());
        });
    out.edge_only_x = Cdf(std::move(speeds.ex));
    out.p2p_x = Cdf(std::move(speeds.px));
    out.edge_only_y = Cdf(std::move(speeds.ey));
    out.p2p_y = Cdf(std::move(speeds.py));
    return out;
}

// --- Fig 5 ---------------------------------------------------------------------

EfficiencyVsCopies efficiency_vs_copies(const trace::TraceLog& log, int bins) {
    // Copies per object = distinct registering peers in the DN log.
    using CopiesMap = std::unordered_map<ObjectId, std::unordered_set<Guid>>;
    const auto& registrations = log.registrations();
    CopiesMap copies = parallel::parallel_reduce<CopiesMap>(
        registrations.size(),
        [&](CopiesMap& p, std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i)
                p[registrations[i].object].insert(registrations[i].guid);
        },
        [](CopiesMap& a, CopiesMap&& b) {
            for (auto& [object, who] : b) a[object].merge(who);
        });

    // Mean peer efficiency per object over completed peer-assisted downloads.
    using EffMap = std::unordered_map<ObjectId, std::pair<double, int>>;
    const auto& downloads = log.downloads();
    const EffMap eff = parallel::parallel_reduce<EffMap>(
        downloads.size(),
        [&](EffMap& p, std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                const auto& d = downloads[i];
                if (!d.p2p_enabled || d.outcome != trace::DownloadOutcome::completed) continue;
                auto& [sum, n] = p[d.object];
                sum += d.peer_efficiency();
                ++n;
            }
        },
        [](EffMap& a, EffMap&& b) {
            for (const auto& [object, e] : b) {
                auto& dst = a[object];
                dst.first += e.first;
                dst.second += e.second;
            }
        });

    double max_copies = 1.0;
    for (const auto& [object, who] : copies)
        max_copies = std::max(max_copies, static_cast<double>(who.size()));

    std::vector<std::vector<double>> grouped(static_cast<std::size_t>(bins));
    for (const auto& [object, e] : eff) {
        if (e.second == 0) continue;
        const auto cit = copies.find(object);
        const double c = cit == copies.end() ? 1.0 : static_cast<double>(cit->second.size());
        const int b = log_bin(std::max(1.0, c), 1.0, max_copies + 1.0, bins);
        grouped[static_cast<std::size_t>(b)].push_back(e.first / e.second);
    }

    EfficiencyVsCopies out;
    const auto edges = log_edges(1.0, max_copies + 1.0, bins);
    for (int b = 0; b < bins; ++b) {
        const auto& xs = grouped[static_cast<std::size_t>(b)];
        if (xs.empty()) continue;
        EfficiencyVsCopies::Bin bin;
        bin.copies_lo = edges[static_cast<std::size_t>(b)];
        bin.copies_hi = edges[static_cast<std::size_t>(b) + 1];
        bin.mean = mean_of(xs);
        bin.p20 = percentile(xs, 20);
        bin.p80 = percentile(xs, 80);
        bin.objects = static_cast<int>(xs.size());
        out.bins.push_back(bin);
    }
    return out;
}

// --- Fig 6 ---------------------------------------------------------------------

EfficiencyVsPeers efficiency_vs_peers_returned(const trace::TraceLog& log, int max_peers) {
    EfficiencyVsPeers out;
    const auto groups = static_cast<std::size_t>(max_peers) + 1;
    const auto& downloads = log.downloads();
    struct PeerPartial {
        std::vector<double> sums;
        std::vector<int> counts;
    };
    auto agg = parallel::parallel_reduce<PeerPartial>(
        downloads.size(),
        [&](PeerPartial& p, std::size_t lo, std::size_t hi) {
            p.sums.assign(groups, 0.0);
            p.counts.assign(groups, 0);
            for (std::size_t i = lo; i < hi; ++i) {
                const auto& d = downloads[i];
                if (!d.p2p_enabled || d.outcome != trace::DownloadOutcome::completed) continue;
                const auto k = static_cast<std::size_t>(
                    std::clamp(d.peers_initially_returned, 0, max_peers));
                p.sums[k] += d.peer_efficiency();
                p.counts[k] += 1;
            }
        },
        [](PeerPartial& a, PeerPartial&& b) {
            for (std::size_t k = 0; k < a.sums.size(); ++k) {
                a.sums[k] += b.sums[k];
                a.counts[k] += b.counts[k];
            }
        });
    if (agg.sums.empty()) {
        agg.sums.assign(groups, 0.0);
        agg.counts.assign(groups, 0);
    }
    out.groups.assign(groups, {});
    for (std::size_t k = 0; k < groups; ++k) {
        out.groups[k].downloads = agg.counts[k];
        if (agg.counts[k] > 0) out.groups[k].mean_efficiency = agg.sums[k] / agg.counts[k];
    }
    return out;
}

// --- outcomes + Fig 7 -------------------------------------------------------------

OutcomeStats outcome_stats(const trace::TraceLog& log) {
    struct OutcomePartial {
        OutcomeStats::Class all, infra_only, peer_assisted;
        std::array<std::array<std::int64_t, 4>, 3> downloads_by_size{};
        std::array<std::array<std::int64_t, 4>, 3> aborted_by_size{};
    };

    const auto accumulate = [](OutcomeStats::Class& c, const trace::DownloadRecord& d) {
        ++c.n;
        switch (d.outcome) {
            case trace::DownloadOutcome::completed: c.completed += 1; break;
            case trace::DownloadOutcome::failed_system: c.failed_system += 1; break;
            case trace::DownloadOutcome::failed_other: c.failed_other += 1; break;
            case trace::DownloadOutcome::aborted_by_user: c.aborted += 1; break;
            case trace::DownloadOutcome::in_progress: break;
        }
    };
    const auto merge_class = [](OutcomeStats::Class& a, const OutcomeStats::Class& b) {
        a.n += b.n;
        a.completed += b.completed;
        a.failed_system += b.failed_system;
        a.failed_other += b.failed_other;
        a.aborted += b.aborted;
    };

    const auto& downloads = log.downloads();
    const auto agg = parallel::parallel_reduce<OutcomePartial>(
        downloads.size(),
        [&](OutcomePartial& p, std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                const auto& d = downloads[i];
                if (d.outcome == trace::DownloadOutcome::in_progress) continue;
                accumulate(p.all, d);
                accumulate(d.p2p_enabled ? p.peer_assisted : p.infra_only, d);
                const int bucket = size_bucket(d.object_size);
                const int cls = d.p2p_enabled ? 1 : 0;
                for (const int c : {cls, 2}) {
                    p.downloads_by_size[static_cast<std::size_t>(c)]
                                       [static_cast<std::size_t>(bucket)] += 1;
                    if (d.outcome == trace::DownloadOutcome::aborted_by_user)
                        p.aborted_by_size[static_cast<std::size_t>(c)]
                                         [static_cast<std::size_t>(bucket)] += 1;
                }
            }
        },
        [&](OutcomePartial& a, OutcomePartial&& b) {
            merge_class(a.all, b.all);
            merge_class(a.infra_only, b.infra_only);
            merge_class(a.peer_assisted, b.peer_assisted);
            for (std::size_t c = 0; c < 3; ++c)
                for (std::size_t s = 0; s < 4; ++s) {
                    a.downloads_by_size[c][s] += b.downloads_by_size[c][s];
                    a.aborted_by_size[c][s] += b.aborted_by_size[c][s];
                }
        });

    OutcomeStats out;
    out.all = agg.all;
    out.infra_only = agg.infra_only;
    out.peer_assisted = agg.peer_assisted;
    out.downloads_by_size = agg.downloads_by_size;

    const auto finalize = [](OutcomeStats::Class& c) {
        if (c.n == 0) return;
        const auto n = static_cast<double>(c.n);
        c.completed /= n;
        c.failed_system /= n;
        c.failed_other /= n;
        c.aborted /= n;
    };
    finalize(out.all);
    finalize(out.infra_only);
    finalize(out.peer_assisted);

    for (std::size_t c = 0; c < 3; ++c)
        for (std::size_t b = 0; b < 4; ++b)
            out.pause_rate_by_size[c][b] =
                out.downloads_by_size[c][b] == 0
                    ? 0.0
                    : static_cast<double>(agg.aborted_by_size[c][b]) /
                          static_cast<double>(out.downloads_by_size[c][b]);
    return out;
}

// --- Fig 8 ---------------------------------------------------------------------

std::vector<CountryCoverage> coverage_by_country(const trace::TraceLog& log,
                                                 const LoginIndex& logins,
                                                 const net::GeoDatabase& geodb, CpCode provider) {
    using CountryBytes = std::unordered_map<std::uint16_t, std::pair<Bytes, Bytes>>;
    const auto& downloads = log.downloads();
    const CountryBytes per_country = parallel::parallel_reduce<CountryBytes>(  // infra, peers
        downloads.size(),
        [&](CountryBytes& p, std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                const auto& d = downloads[i];
                if (d.cp_code != provider || d.outcome != trace::DownloadOutcome::completed)
                    continue;
                const auto geo = logins.locate(d.guid, d.start, geodb);
                if (!geo) continue;
                auto& [infra, peers] = p[geo->location.country.value];
                infra += d.bytes_from_infrastructure;
                peers += d.bytes_from_peers;
            }
        },
        [](CountryBytes& a, CountryBytes&& b) {
            for (const auto& [country, bytes] : b) {
                a[country].first += bytes.first;
                a[country].second += bytes.second;
            }
        });
    std::vector<CountryCoverage> out;
    out.reserve(per_country.size());
    for (const auto& [country, bytes] : per_country) {
        CountryCoverage c;
        c.country = CountryId{country};
        c.infra_bytes = bytes.first;
        c.peer_bytes = bytes.second;
        if (bytes.second <= 0 || bytes.first > bytes.second)
            c.cls = 0;
        else if (static_cast<double>(bytes.first) >= 0.5 * static_cast<double>(bytes.second))
            c.cls = 1;
        else
            c.cls = 2;
        out.push_back(c);
    }
    std::sort(out.begin(), out.end(), [](const CountryCoverage& a, const CountryCoverage& b) {
        return a.infra_bytes + a.peer_bytes > b.infra_bytes + b.peer_bytes;
    });
    return out;
}

// --- traffic balance ---------------------------------------------------------------

TrafficBalance traffic_balance(const trace::TraceLog& log, const net::GeoDatabase& geodb,
                               const net::AsGraph* graph) {
    TrafficBalance out;

    // Every AS that shows up in logins is part of the universe, even if it
    // never sent a byte ("roughly half of the ASes did not send any inter-AS
    // bytes at all").
    using IpsPerAs = std::unordered_map<std::uint32_t, std::unordered_set<net::IpAddr>>;
    const auto& logins = log.logins();
    IpsPerAs ips_per_as = parallel::parallel_reduce<IpsPerAs>(
        logins.size(),
        [&](IpsPerAs& p, std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                const auto geo = geodb.lookup(logins[i].ip);
                if (!geo) continue;
                p[geo->asn.value].insert(logins[i].ip);
            }
        },
        [](IpsPerAs& a, IpsPerAs&& b) {
            for (auto& [asn, ips] : b) a[asn].merge(ips);
        });

    struct FlowPartial {
        Bytes total = 0, intra = 0, inter = 0;
        std::unordered_map<std::uint32_t, TrafficBalance::AsFlow> flows;
        std::unordered_map<std::uint64_t, Bytes> pair_bytes;  // (from<<32|to) inter-AS only
    };
    const auto& transfers = log.transfers();
    auto flow = parallel::parallel_reduce<FlowPartial>(
        transfers.size(),
        [&](FlowPartial& p, std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                const auto& t = transfers[i];
                const auto from = geodb.lookup(t.from_ip);
                const auto to = geodb.lookup(t.to_ip);
                if (!from || !to) continue;
                p.total += t.bytes;
                if (from->asn == to->asn) {
                    p.intra += t.bytes;
                    continue;
                }
                p.inter += t.bytes;
                p.flows[from->asn.value].sent += t.bytes;
                p.flows[to->asn.value].received += t.bytes;
                p.pair_bytes[(static_cast<std::uint64_t>(from->asn.value) << 32) |
                             to->asn.value] += t.bytes;
            }
        },
        [](FlowPartial& a, FlowPartial&& b) {
            a.total += b.total;
            a.intra += b.intra;
            a.inter += b.inter;
            for (const auto& [asn, f] : b.flows) {
                a.flows[asn].sent += f.sent;
                a.flows[asn].received += f.received;
            }
            for (const auto& [key, bytes] : b.pair_bytes) a.pair_bytes[key] += bytes;
        });
    out.total_p2p_bytes = flow.total;
    out.intra_as_bytes = flow.intra;
    out.inter_as_bytes = flow.inter;
    auto& flows = flow.flows;
    const auto& pair_bytes = flow.pair_bytes;
    for (const auto& [asn, ips] : ips_per_as) flows.try_emplace(asn);

    out.ases.reserve(flows.size());
    for (auto& [asn, f] : flows) {
        f.asn = asn;
        const auto it = ips_per_as.find(asn);
        f.ips_observed = it == ips_per_as.end() ? 0 : static_cast<std::int64_t>(it->second.size());
        out.ases.push_back(f);
    }
    std::sort(out.ases.begin(), out.ases.end(),
              [](const TrafficBalance::AsFlow& a, const TrafficBalance::AsFlow& b) {
                  return a.sent > b.sent;
              });
    out.ases_with_traffic = 0;
    for (const auto& f : out.ases)
        if (f.sent > 0 || f.received > 0) ++out.ases_with_traffic;

    // Heavy uploaders: the smallest top set responsible for 90% of inter-AS
    // upload bytes.
    Bytes acc = 0;
    std::unordered_set<std::uint32_t> heavy;
    for (auto& f : out.ases) {
        if (out.inter_as_bytes > 0 &&
            static_cast<double>(acc) < 0.9 * static_cast<double>(out.inter_as_bytes) &&
            f.sent > 0) {
            f.heavy = true;
            heavy.insert(f.asn);
            acc += f.sent;
        }
    }
    out.heavy_count = heavy.size();

    // p98 of per-AS upload volume and the bottom-98% share.
    if (!out.ases.empty()) {
        std::vector<Bytes> sent_sorted;
        sent_sorted.reserve(out.ases.size());
        for (const auto& f : out.ases) sent_sorted.push_back(f.sent);
        std::sort(sent_sorted.begin(), sent_sorted.end());
        const auto idx = static_cast<std::size_t>(0.98 * static_cast<double>(sent_sorted.size()));
        out.p98_upload = sent_sorted[std::min(idx, sent_sorted.size() - 1)];
        Bytes bottom = 0;
        for (std::size_t i = 0; i <= std::min(idx, sent_sorted.size() - 1); ++i)
            bottom += sent_sorted[i];
        out.bottom98_share = out.inter_as_bytes == 0
                                 ? 0.0
                                 : static_cast<double>(bottom) /
                                       static_cast<double>(out.inter_as_bytes);
    }

    // Pairwise balance among heavy uploaders (Fig 11) and the direct-link
    // share estimate (§6.1).
    Bytes heavy_total = 0;
    Bytes heavy_direct = 0;
    std::unordered_set<std::uint64_t> seen;
    for (const auto& [key, bytes] : pair_bytes) {
        const auto a = static_cast<std::uint32_t>(key >> 32);
        const auto b = static_cast<std::uint32_t>(key & 0xFFFFFFFFu);
        if (!heavy.contains(a) || !heavy.contains(b)) continue;
        heavy_total += bytes;
        const bool direct = graph != nullptr && graph->directly_connected(Asn{a}, Asn{b});
        if (direct) heavy_direct += bytes;
        const std::uint64_t canonical =
            a < b ? (static_cast<std::uint64_t>(a) << 32) | b
                  : (static_cast<std::uint64_t>(b) << 32) | a;
        if (!seen.insert(canonical).second) continue;
        if (!direct) continue;  // Fig 11 plots directly-connected pairs
        const auto fwd_it = pair_bytes.find((static_cast<std::uint64_t>(a) << 32) | b);
        const auto rev_it = pair_bytes.find((static_cast<std::uint64_t>(b) << 32) | a);
        out.heavy_pairs.emplace_back(a, b, fwd_it == pair_bytes.end() ? 0 : fwd_it->second,
                                     rev_it == pair_bytes.end() ? 0 : rev_it->second);
    }
    out.heavy_direct_share = heavy_total == 0 ? 0.0
                                              : static_cast<double>(heavy_direct) /
                                                    static_cast<double>(heavy_total);
    return out;
}

// --- mobility ---------------------------------------------------------------------

MobilityStats mobility_stats(const trace::TraceLog& log, const LoginIndex& logins,
                             const net::GeoDatabase& geodb) {
    MobilityStats out;
    struct TimeSpan {
        sim::SimTime lo{std::numeric_limits<std::int64_t>::max()};
        sim::SimTime hi{0};
    };
    const auto& login_log = log.logins();
    const auto span = parallel::parallel_reduce<TimeSpan>(
        login_log.size(),
        [&](TimeSpan& p, std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                p.lo = std::min(p.lo, login_log[i].time);
                p.hi = std::max(p.hi, login_log[i].time);
            }
        },
        [](TimeSpan& a, TimeSpan&& b) {
            a.lo = std::min(a.lo, b.lo);
            a.hi = std::max(a.hi, b.hi);
        });

    const auto histories = history_snapshot(logins);
    struct MobilityPartial {
        std::int64_t guids = 0, single = 0, two = 0, more = 0, within10 = 0;
    };
    const auto agg = parallel::parallel_reduce<MobilityPartial>(
        histories.size(),
        [&](MobilityPartial& p, std::size_t lo, std::size_t hi) {
            for (std::size_t g = lo; g < hi; ++g) {
                const auto& history = *histories[g];
                if (history.empty()) continue;
                ++p.guids;
                std::unordered_set<std::uint32_t> ases;
                std::vector<net::GeoPoint> points;
                for (const auto* l : history) {
                    const auto geo = geodb.lookup(l->ip);
                    if (!geo) continue;
                    ases.insert(geo->asn.value);
                    points.push_back(geo->location.point);
                }
                if (ases.size() <= 1)
                    ++p.single;
                else if (ases.size() == 2)
                    ++p.two;
                else
                    ++p.more;
                double max_km = 0.0;
                for (std::size_t i = 0; i < points.size(); ++i)
                    for (std::size_t j = i + 1; j < points.size(); ++j)
                        max_km = std::max(max_km, net::haversine_km(points[i], points[j]));
                if (max_km <= 10.0) ++p.within10;
            }
        },
        [](MobilityPartial& a, MobilityPartial&& b) {
            a.guids += b.guids;
            a.single += b.single;
            a.two += b.two;
            a.more += b.more;
            a.within10 += b.within10;
        });
    out.guids = agg.guids;
    if (out.guids > 0) {
        const auto n = static_cast<double>(out.guids);
        out.frac_single_as = static_cast<double>(agg.single) / n;
        out.frac_two_as = static_cast<double>(agg.two) / n;
        out.frac_more_as = static_cast<double>(agg.more) / n;
        out.frac_within_10km = static_cast<double>(agg.within10) / n;
    }
    const double minutes = std::max(1.0, (span.hi - span.lo).seconds() / 60.0);
    out.new_connections_per_minute = static_cast<double>(log.logins().size()) / minutes;
    return out;
}

// --- headline ----------------------------------------------------------------------

HeadlineOffload headline_offload(const trace::TraceLog& log) {
    HeadlineOffload out;
    struct HeadlinePartial {
        std::unordered_set<std::uint64_t> files, p2p_files;
        Bytes all_bytes = 0, p2p_file_bytes = 0, p2p_peer_bytes = 0, p2p_total_bytes = 0;
        double eff_sum = 0;
        std::int64_t eff_n = 0;
    };
    const auto& downloads = log.downloads();
    auto agg = parallel::parallel_reduce<HeadlinePartial>(
        downloads.size(),
        [&](HeadlinePartial& p, std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                const auto& d = downloads[i];
                p.files.insert(d.url_hash);
                p.all_bytes += d.total_bytes();
                if (!d.p2p_enabled) continue;
                p.p2p_files.insert(d.url_hash);
                p.p2p_file_bytes += d.total_bytes();
                p.p2p_peer_bytes += d.bytes_from_peers;
                p.p2p_total_bytes += d.total_bytes();
                if (d.outcome == trace::DownloadOutcome::completed) {
                    p.eff_sum += d.peer_efficiency();
                    ++p.eff_n;
                }
            }
        },
        [](HeadlinePartial& a, HeadlinePartial&& b) {
            a.files.merge(b.files);
            a.p2p_files.merge(b.p2p_files);
            a.all_bytes += b.all_bytes;
            a.p2p_file_bytes += b.p2p_file_bytes;
            a.p2p_peer_bytes += b.p2p_peer_bytes;
            a.p2p_total_bytes += b.p2p_total_bytes;
            a.eff_sum += b.eff_sum;
            a.eff_n += b.eff_n;
        });
    out.p2p_enabled_file_fraction =
        agg.files.empty() ? 0.0
                          : static_cast<double>(agg.p2p_files.size()) /
                                static_cast<double>(agg.files.size());
    out.p2p_enabled_byte_fraction =
        agg.all_bytes == 0 ? 0.0
                           : static_cast<double>(agg.p2p_file_bytes) /
                                 static_cast<double>(agg.all_bytes);
    out.mean_peer_efficiency = agg.eff_n == 0 ? 0.0 : agg.eff_sum / static_cast<double>(agg.eff_n);
    out.overall_offload = agg.p2p_total_bytes == 0
                              ? 0.0
                              : static_cast<double>(agg.p2p_peer_bytes) /
                                    static_cast<double>(agg.p2p_total_bytes);
    return out;
}

// --- degradation -------------------------------------------------------------------

DegradationStats degradation_stats(const trace::TraceLog& log) {
    struct DegradationPartial {
        DegradationStats s;
        std::unordered_set<Guid> clients;
    };
    const auto& degradations = log.degradations();
    auto agg = parallel::parallel_reduce<DegradationPartial>(
        degradations.size(),
        [&](DegradationPartial& p, std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                const auto& r = degradations[i];
                // A remap record documents *how* an edge-stall incident was
                // handled, not a second incident; only its own counter sees it
                // (see the DegradationStats::total doc comment).
                if (r.kind != trace::DegradationKind::edge_remapped) ++p.s.total;
                p.clients.insert(r.guid);
                switch (r.kind) {
                    case trace::DegradationKind::edge_stall: ++p.s.edge_stalls; break;
                    case trace::DegradationKind::edge_remapped: ++p.s.edge_remaps; break;
                    case trace::DegradationKind::peer_stall: ++p.s.peer_stalls; break;
                    case trace::DegradationKind::source_blacklisted:
                        ++p.s.sources_blacklisted;
                        break;
                    case trace::DegradationKind::query_timeout: ++p.s.query_timeouts; break;
                    case trace::DegradationKind::login_timeout: ++p.s.login_timeouts; break;
                    case trace::DegradationKind::stun_timeout: ++p.s.stun_timeouts; break;
                }
            }
        },
        [](DegradationPartial& a, DegradationPartial&& b) {
            a.s.total += b.s.total;
            a.s.edge_stalls += b.s.edge_stalls;
            a.s.edge_remaps += b.s.edge_remaps;
            a.s.peer_stalls += b.s.peer_stalls;
            a.s.sources_blacklisted += b.s.sources_blacklisted;
            a.s.query_timeouts += b.s.query_timeouts;
            a.s.login_timeouts += b.s.login_timeouts;
            a.s.stun_timeouts += b.s.stun_timeouts;
            a.clients.merge(b.clients);
        });
    DegradationStats out = agg.s;
    out.affected_clients = static_cast<std::int64_t>(agg.clients.size());
    return out;
}

}  // namespace netsession::analysis
