// Runtime invariant auditor: cross-layer contract checks on a sampled
// simulated-time cadence, designed to run *while faults are active*.
//
// The chaos campaigns of src/fault/ exercise exactly the states where
// subsystem-local assertions are weakest: partitions heal mid-transfer, DNs
// restart into RE-ADD storms, whole ASes degrade and restore in layers. The
// auditor asserts the contracts that span those subsystems:
//
//   flow_capacity      the flow network never allocates more aggregate rate
//                      through a host's uplink/downlink than its capacity
//   byte_conservation  a download's accounted bytes (infra + peers) cover
//                      every piece it verified and holds, and the per-source
//                      ledger sums exactly to the peer-byte total
//   directory          each DN's postings/swarm/live-counter indexes agree
//                      (Directory::audit_consistency), and every registration
//                      points at a client that actually holds or is fetching
//                      the object — in-flight announce/withdraw messages are
//                      legal transients, but a mismatch persisting an hour of
//                      simulated time past its first observation is a real
//                      divergence, e.g. a RE-ADD resurrecting a withdrawn copy
//   stall_bound        no running, unpaused download keeps the same transfer
//                      attempt on a dead flow for longer than twice the
//                      client watchdog bound after the auditor first sees it
//                      dead — the watchdog must have noticed by then
//   arena_accounting   the registry-wide Download pool's live count equals
//                      the number of open downloads across all clients
//
// The auditor follows the obs::Sampler passivity contract: it only *reads*
// simulation state — no RNG stream is touched, no relative event ordering
// changes, no trace record is written — so enabling it cannot perturb any
// simulation record (the determinism contract of docs/SIMULATOR.md §3 holds
// with auditing on or off). The one sanctioned trace-visible difference is
// the same one the sampler itself has: its periodic tick events count into
// the sim.events_* bookkeeping gauges, and audit builds sample the audit.*
// gauges. Builds with NS_AUDIT=OFF compile the periodic checks out entirely;
// the class itself stays available in both flavours so tests can call
// audit_now() directly. Under NS_AUDIT_FATAL (tests/CI) the first violation
// prints every collected report and aborts; otherwise violations count into
// the audit.* metrics and the run continues (benches, chaos campaigns).
#pragma once

#ifndef NS_AUDIT_ENABLED
#define NS_AUDIT_ENABLED 0
#endif
#ifndef NS_AUDIT_FATAL_ENABLED
#define NS_AUDIT_FATAL_ENABLED 0
#endif

#include <cstdint>
#include <string>
#include <vector>

#include "common/flat_hash.hpp"
#include "peer/client_config.hpp"
#include "sim/simulator.hpp"

namespace netsession::net {
class World;
}
namespace netsession::control {
class ControlPlane;
}
namespace netsession::peer {
class PeerRegistry;
}
namespace netsession::workload {
class UserDriver;
}
namespace netsession::obs {
class Registry;
}

namespace netsession::audit {

struct AuditConfig {
    /// Whether the periodic auditor runs at all. With NS_AUDIT=OFF builds it
    /// never starts regardless; audit_now() works in every build.
    bool enabled = true;
    /// Audit cadence in simulated time. Six hours keeps a month-long run at
    /// ~120 full sweeps — each sweep is O(hosts + flows + registrations).
    sim::Duration interval = sim::hours(6.0);
    /// Abort the process on the first violation (defaults to the build's
    /// NS_AUDIT_FATAL flavour; tests may override per-instance).
    bool fatal = NS_AUDIT_FATAL_ENABLED != 0;
    /// Human-readable violation reports kept for diagnostics.
    int max_reports = 8;
};

/// Per-invariant violation counters, exported as audit.* computed gauges.
struct AuditCounters {
    std::int64_t audits_run = 0;
    std::int64_t flow_capacity = 0;
    std::int64_t byte_conservation = 0;
    std::int64_t directory = 0;
    std::int64_t stall_bound = 0;
    std::int64_t arena_accounting = 0;

    [[nodiscard]] std::int64_t total() const noexcept {
        return flow_capacity + byte_conservation + directory + stall_bound + arena_accounting;
    }
};

class Auditor {
public:
    /// All references must outlive the auditor. `client_config` supplies the
    /// watchdog interval/grace the stall bound is derived from.
    Auditor(sim::Simulator& sim, net::World& world, control::ControlPlane& plane,
            peer::PeerRegistry& registry, workload::UserDriver& driver,
            const peer::ClientConfig& client_config, AuditConfig config);

    Auditor(const Auditor&) = delete;
    Auditor& operator=(const Auditor&) = delete;

    /// Starts periodic auditing: one sweep every `interval`, beginning one
    /// interval from now, until `until`. No-op when the config disables it.
    void start(sim::SimTime until);

    /// Takes the closing sweep, exactly once — idempotent.
    void finish();

    /// Runs one full sweep immediately; returns violations found this pass.
    int audit_now();

    [[nodiscard]] const AuditCounters& counters() const noexcept { return counters_; }
    /// First `max_reports` violation descriptions, oldest first.
    [[nodiscard]] const std::vector<std::string>& reports() const noexcept { return reports_; }

    /// Registers the audit.* computed gauges. Callers gate this on the build
    /// flavour: in default builds nothing registers, keeping metric ids
    /// byte-identical to audit-free binaries.
    void register_metrics(obs::Registry& registry);

private:
    void tick();
    void violation(std::int64_t AuditCounters::*counter, std::string detail);

    int check_flow_capacity();
    int check_byte_conservation();
    int check_directory();
    int check_stall_bound();
    int check_arena_accounting();

    sim::Simulator* sim_;
    net::World* world_;
    control::ControlPlane* plane_;
    peer::PeerRegistry* registry_;
    workload::UserDriver* driver_;
    peer::ClientConfig client_config_;
    AuditConfig config_;
    sim::SimTime until_{};
    bool final_taken_ = false;
    AuditCounters counters_;
    int pass_violations_ = 0;
    std::vector<std::string> reports_;

    // Reusable per-host rate accumulators (flow-capacity sweep).
    std::vector<double> rate_up_;
    std::vector<double> rate_down_;
    // First-seen timestamps for conditions that are legal as transients and
    // violations only when they *persist*: a directory↔client mismatch is an
    // announce/withdraw message in flight until it outlives the message
    // round-trip by a wide margin; a transfer without a flow is merely
    // not-yet-noticed until it outlives the watchdog bound (we observe the
    // flow's absence, not the moment it died). Keyed by a mixed hash of the
    // condition's identity; carried across sweeps so persistence is measured
    // in simulated time, not sweep counts — back-to-back audit_now() calls
    // at one instant can never self-confirm.
    FlatHashMap<std::uint64_t, std::int64_t> dir_first_seen_prev_;
    FlatHashMap<std::uint64_t, std::int64_t> dir_first_seen_cur_;
    FlatHashMap<std::uint64_t, std::int64_t> stall_first_seen_prev_;
    FlatHashMap<std::uint64_t, std::int64_t> stall_first_seen_cur_;
};

}  // namespace netsession::audit
