#include "audit/auditor.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "control/control_plane.hpp"
#include "control/database_node.hpp"
#include "edge/catalog.hpp"
#include "net/world.hpp"
#include "obs/metrics.hpp"
#include "peer/netsession_client.hpp"
#include "peer/registry.hpp"
#include "workload/behavior.hpp"

namespace netsession::audit {

namespace {

std::uint64_t mix64(std::uint64_t x) noexcept {
    // splitmix64 finalizer.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t registration_key(Guid guid, ObjectId object) noexcept {
    std::uint64_t h = mix64(guid.hi);
    h = mix64(h ^ guid.lo);
    h = mix64(h ^ object.hi);
    return mix64(h ^ object.lo);
}

}  // namespace

Auditor::Auditor(sim::Simulator& sim, net::World& world, control::ControlPlane& plane,
                 peer::PeerRegistry& registry, workload::UserDriver& driver,
                 const peer::ClientConfig& client_config, AuditConfig config)
    : sim_(&sim), world_(&world), plane_(&plane), registry_(&registry), driver_(&driver),
      client_config_(client_config), config_(config) {}

void Auditor::start(sim::SimTime until) {
    if (!config_.enabled || config_.interval.us <= 0) return;
    until_ = until;
    if (sim_->now() + config_.interval > until_) return;
    sim_->schedule_after(config_.interval, [this] { tick(); });
}

void Auditor::tick() {
    audit_now();
    if (sim_->now() + config_.interval > until_) return;
    sim_->schedule_after(config_.interval, [this] { tick(); });
}

void Auditor::finish() {
    if (!config_.enabled || final_taken_) return;
    final_taken_ = true;
    audit_now();
}

int Auditor::audit_now() {
    ++counters_.audits_run;
    pass_violations_ = 0;
    check_flow_capacity();
    check_byte_conservation();
    check_directory();
    check_stall_bound();
    check_arena_accounting();
    if (pass_violations_ > 0 && config_.fatal) {
        std::fprintf(stderr, "audit: %d invariant violation(s) at t=%.3f days\n", pass_violations_,
                     sim_->now().us / 86.4e9);
        for (const std::string& r : reports_) std::fprintf(stderr, "audit:   %s\n", r.c_str());
        std::abort();
    }
    return pass_violations_;
}

void Auditor::violation(std::int64_t AuditCounters::*counter, std::string detail) {
    counters_.*counter += 1;
    ++pass_violations_;
    if (static_cast<int>(reports_.size()) < config_.max_reports)
        reports_.push_back(std::move(detail));
}

int Auditor::check_flow_capacity() {
    const int before = pass_violations_;
    const net::FlowNetwork& flows = world_->flows();
    rate_up_.assign(flows.host_count(), 0.0);
    rate_down_.assign(flows.host_count(), 0.0);
    flows.for_each_active([&](net::FlowId id, HostId src, HostId dst) {
        const Rate r = flows.current_rate(id);
        rate_up_[src.value] += r;
        rate_down_[dst.value] += r;
    });
    for (std::size_t h = 0; h < flows.host_count(); ++h) {
        const HostId host{static_cast<std::uint32_t>(h)};
        const Rate up = flows.up_capacity(host);
        const Rate down = flows.down_capacity(host);
        // Max-min fair fills allocate exactly; allow only fp summation slack.
        const auto over = [](double used, double cap) {
            return std::isfinite(cap) && used > cap * (1.0 + 1e-6) + 1.0;
        };
        if (over(rate_up_[h], up)) {
            char buf[128];
            std::snprintf(buf, sizeof(buf), "flow_capacity: host %zu uplink %.1f > cap %.1f", h,
                          rate_up_[h], up);
            violation(&AuditCounters::flow_capacity, buf);
        }
        if (over(rate_down_[h], down)) {
            char buf[128];
            std::snprintf(buf, sizeof(buf), "flow_capacity: host %zu downlink %.1f > cap %.1f", h,
                          rate_down_[h], down);
            violation(&AuditCounters::flow_capacity, buf);
        }
    }
    return pass_violations_ - before;
}

int Auditor::check_byte_conservation() {
    const int before = pass_violations_;
    for (const auto& client : driver_->clients()) {
        client->for_each_open_download([&](const peer::Download& d) {
            if (d.entry == nullptr) return;
            const swarm::ContentObject& object = d.entry->object;
            Bytes held = 0;
            for (swarm::PieceIndex i = 0; i < object.piece_count(); ++i)
                if (d.have.size() > i && d.have.has(i)) held += object.piece_length(i);
            // Every held piece was delivered and accounted; duplicates (a
            // piece paid for twice in an edge/peer race) only push the
            // accounted total *above* the held bytes, never below.
            const Bytes accounted = d.bytes_infra + d.bytes_peers;
            if (accounted < held) {
                char buf[160];
                std::snprintf(buf, sizeof(buf),
                              "byte_conservation: guid %s holds %" PRIu64
                              " bytes but accounted only %" PRIu64,
                              client->guid().to_string().c_str(), held, accounted);
                violation(&AuditCounters::byte_conservation, buf);
            }
            // The per-source ledger and the peer-byte total are incremented
            // at the same site; they must agree exactly at all times.
            Bytes per_source = 0;
            for (const auto& [guid, entry] : d.per_source_bytes) per_source += entry.second;
            if (per_source != d.bytes_peers) {
                char buf[160];
                std::snprintf(buf, sizeof(buf),
                              "byte_conservation: guid %s per-source ledger %" PRIu64
                              " != peer bytes %" PRIu64,
                              client->guid().to_string().c_str(), per_source, d.bytes_peers);
                violation(&AuditCounters::byte_conservation, buf);
            }
        });
    }
    return pass_violations_ - before;
}

int Auditor::check_directory() {
    const int before = pass_violations_;
    const sim::SimTime now = sim_->now();
    // Announce/withdraw messages are legitimately in flight for seconds;
    // one simulated hour is orders of magnitude past any message round-trip
    // or re-login storm drain, so a mismatch older than that is a real
    // divergence (e.g. a RE-ADD resurrecting a withdrawn copy).
    const sim::Duration stale_bound = sim::hours(1.0);
    dir_first_seen_cur_.clear();
    for (const auto& dn : plane_->dns()) {
        const int inconsistent = dn->directory().audit_consistency();
        if (inconsistent != 0) {
            char buf[128];
            std::snprintf(buf, sizeof(buf), "directory: DN %u indexes disagree (%d)",
                          dn->id().value, inconsistent);
            violation(&AuditCounters::directory, buf);
        }
        dn->directory().for_each_registration([&](Guid guid, ObjectId object) {
            const peer::NetSessionClient* client = registry_->find(guid);
            const bool holds = client != nullptr && (client->has_cached(object) ||
                                                     client->download_active(object));
            if (holds) return;
            const std::uint64_t key = registration_key(guid, object);
            const std::int64_t* prev = dir_first_seen_prev_.find_value(key);
            const std::int64_t first = prev != nullptr ? *prev : now.us;
            dir_first_seen_cur_[key] = first;
            if (now.us - first > stale_bound.us) {
                char buf[160];
                std::snprintf(buf, sizeof(buf),
                              "directory: DN %u registration (guid %s) stale for %.0fs",
                              dn->id().value, guid.to_string().c_str(), (now.us - first) / 1e6);
                violation(&AuditCounters::directory, buf);
            }
        });
    }
    std::swap(dir_first_seen_prev_, dir_first_seen_cur_);
    return pass_violations_ - before;
}

int Auditor::check_stall_bound() {
    const int before = pass_violations_;
    const sim::SimTime now = sim_->now();
    // The client watchdog declares a stall within interval + grace of the
    // flow dying. The auditor observes the flow's *absence*, not the moment
    // it died (a flow can run healthily for minutes before a fault cuts it),
    // so persistence is measured from the sweep that first saw the transfer
    // dead: the same attempt still dead twice the watchdog bound later means
    // the watchdog never fired.
    const sim::Duration bound =
        sim::seconds(2.0 * (client_config_.watchdog_interval_s + client_config_.stall_grace_s));
    const net::FlowNetwork& flows = world_->flows();
    stall_first_seen_cur_.clear();
    const auto dead_for = [&](std::uint64_t key) {
        const std::int64_t* prev = stall_first_seen_prev_.find_value(key);
        const std::int64_t first = prev != nullptr ? *prev : now.us;
        stall_first_seen_cur_[key] = first;
        return sim::Duration{now.us - first};
    };
    for (const auto& client : driver_->clients()) {
        if (!client->running()) continue;
        const Guid guid = client->guid();
        client->for_each_open_download([&](const peer::Download& d) {
            if (d.paused) return;
            if (d.edge_transferring && !flows.active(d.edge_flow)) {
                // started_at identifies the attempt: a retry resets it, so a
                // stale first-seen entry can never indict a fresh attempt.
                std::uint64_t key = mix64(guid.hi);
                key = mix64(key ^ guid.lo);
                key = mix64(key ^ static_cast<std::uint64_t>(d.edge_started_at.us));
                const sim::Duration dead = dead_for(key);
                if (dead > bound) {
                    char buf[160];
                    std::snprintf(buf, sizeof(buf),
                                  "stall_bound: guid %s edge transfer dead for %.0fs unnoticed",
                                  guid.to_string().c_str(), dead.us / 1e6);
                    violation(&AuditCounters::stall_bound, buf);
                }
            }
            for (const peer::PeerSource& src : d.sources) {
                if (!src.transferring || flows.active(src.flow)) continue;
                std::uint64_t key = mix64(guid.hi);
                key = mix64(key ^ guid.lo);
                key = mix64(key ^ src.desc.guid.hi);
                key = mix64(key ^ src.desc.guid.lo);
                key = mix64(key ^ static_cast<std::uint64_t>(src.started_at.us));
                const sim::Duration dead = dead_for(key);
                if (dead > bound) {
                    char buf[160];
                    std::snprintf(buf, sizeof(buf),
                                  "stall_bound: guid %s peer transfer dead for %.0fs unnoticed",
                                  guid.to_string().c_str(), dead.us / 1e6);
                    violation(&AuditCounters::stall_bound, buf);
                }
            }
        });
    }
    std::swap(stall_first_seen_prev_, stall_first_seen_cur_);
    return pass_violations_ - before;
}

int Auditor::check_arena_accounting() {
    const int before = pass_violations_;
    std::size_t open = 0;
    for (const auto& client : driver_->clients())
        open += static_cast<std::size_t>(client->open_downloads());
    const std::size_t live = registry_->downloads().live();
    if (open != live) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "arena_accounting: download pool live %zu != %zu open downloads", live, open);
        violation(&AuditCounters::arena_accounting, buf);
    }
    return pass_violations_ - before;
}

void Auditor::register_metrics(obs::Registry& registry) {
    registry.add_computed("audit.runs",
                          [this] { return static_cast<double>(counters_.audits_run); });
    registry.add_computed("audit.violations",
                          [this] { return static_cast<double>(counters_.total()); });
    registry.add_computed("audit.flow_capacity",
                          [this] { return static_cast<double>(counters_.flow_capacity); });
    registry.add_computed("audit.byte_conservation",
                          [this] { return static_cast<double>(counters_.byte_conservation); });
    registry.add_computed("audit.directory",
                          [this] { return static_cast<double>(counters_.directory); });
    registry.add_computed("audit.stall_bound",
                          [this] { return static_cast<double>(counters_.stall_bound); });
    registry.add_computed("audit.arena_accounting",
                          [this] { return static_cast<double>(counters_.arena_accounting); });
}

}  // namespace netsession::audit
