#include "fault/fault_spec.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace netsession::fault {

std::string_view to_string(FaultKind k) noexcept {
    switch (k) {
        case FaultKind::edge_outage: return "edge_outage";
        case FaultKind::region_partition: return "region_partition";
        case FaultKind::as_degradation: return "as_degradation";
        case FaultKind::stun_blackout: return "stun_blackout";
        case FaultKind::mass_churn: return "mass_churn";
        case FaultKind::cn_outage: return "cn_outage";
        case FaultKind::dn_outage: return "dn_outage";
        case FaultKind::flash_crowd: return "flash_crowd";
    }
    return "unknown";
}

namespace {

bool parse_kind(const std::string& word, FaultKind& out) {
    for (const FaultKind k :
         {FaultKind::edge_outage, FaultKind::region_partition, FaultKind::as_degradation,
          FaultKind::stun_blackout, FaultKind::mass_churn, FaultKind::cn_outage,
          FaultKind::dn_outage, FaultKind::flash_crowd}) {
        if (word == to_string(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

bool parse_double(const std::string& v, double& out) {
    try {
        std::size_t used = 0;
        out = std::stod(v, &used);
        return used == v.size();
    } catch (...) {
        return false;
    }
}

/// Region values accept "all" (meaning -1) besides plain indices.
bool parse_region(const std::string& v, int& out) {
    if (v == "all") {
        out = -1;
        return true;
    }
    double d = 0;
    if (!parse_double(v, d) || d < 0) return false;
    out = static_cast<int>(d);
    return true;
}

std::string format_g(double v) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

Error bad(const std::string& what) { return Error{Error::Code::invalid_argument, what}; }

}  // namespace

Result<FaultEvent> parse_fault_event(const std::string& text) {
    std::istringstream in(text);
    std::string word;
    if (!(in >> word)) return bad("empty fault spec");
    FaultEvent e;
    if (!parse_kind(word, e.kind)) return bad("unknown fault kind '" + word + "'");

    while (in >> word) {
        const auto eq = word.find('=');
        if (eq == std::string::npos) return bad("expected key=value, got '" + word + "'");
        const std::string key = word.substr(0, eq);
        const std::string value = word.substr(eq + 1);
        double d = 0;
        bool ok = true;
        if (key == "at") {
            ok = parse_double(value, d);
            e.at_days = d;
        } else if (key == "duration") {
            ok = parse_double(value, d);
            e.duration_days = d;
        } else if (key == "region") {
            ok = parse_region(value, e.region);
        } else if (key == "region_b") {
            ok = parse_region(value, e.region_b);
        } else if (key == "asn") {
            ok = parse_double(value, d) && d >= 0;
            e.asn = static_cast<std::uint32_t>(d);
        } else if (key == "fraction") {
            ok = parse_double(value, d) && d >= 0.0 && d <= 1.0;
            e.fraction = d;
        } else if (key == "latency_x") {
            ok = parse_double(value, d) && d >= 1.0;
            e.latency_factor = d;
        } else if (key == "rate_x") {
            ok = parse_double(value, d) && d > 0.0 && d <= 1.0;
            e.rate_factor = std::max(d, 0.01);
        } else if (key == "loss") {
            ok = parse_double(value, d) && d >= 0.0 && d < 1.0;
            e.loss = d;
        } else {
            return bad("unknown fault key '" + key + "'");
        }
        if (!ok) return bad("bad value '" + value + "' for fault key '" + key + "'");
    }

    if (e.at_days < 0) return bad("fault 'at' must be >= 0");
    if (e.kind == FaultKind::as_degradation && e.latency_factor == 1.0 && e.rate_factor == 1.0 &&
        e.loss == 0.0)
        return bad("as_degradation needs latency_x, rate_x, or loss");
    if ((e.kind == FaultKind::mass_churn || e.kind == FaultKind::flash_crowd) && e.fraction <= 0.0)
        return bad(std::string(to_string(e.kind)) + " needs fraction > 0");
    return e;
}

std::string to_string(const FaultEvent& e) {
    std::string out(to_string(e.kind));
    out += " at=" + format_g(e.at_days);
    if (e.duration_days > 0) out += " duration=" + format_g(e.duration_days);
    const auto region_str = [](int r) { return r < 0 ? std::string("all") : std::to_string(r); };
    switch (e.kind) {
        case FaultKind::edge_outage:
        case FaultKind::cn_outage:
        case FaultKind::dn_outage:
            out += " region=" + region_str(e.region);
            break;
        case FaultKind::region_partition:
            out += " region=" + region_str(e.region) + " region_b=" + region_str(e.region_b);
            break;
        case FaultKind::as_degradation:
            out += " asn=" + std::to_string(e.asn);
            if (e.latency_factor != 1.0) out += " latency_x=" + format_g(e.latency_factor);
            if (e.rate_factor != 1.0) out += " rate_x=" + format_g(e.rate_factor);
            if (e.loss != 0.0) out += " loss=" + format_g(e.loss);
            break;
        case FaultKind::mass_churn:
        case FaultKind::flash_crowd:
            out += " fraction=" + format_g(e.fraction);
            break;
        case FaultKind::stun_blackout:
            break;
    }
    return out;
}

}  // namespace netsession::fault
