// Chaos campaigns: seeded generators of overlapping fault timelines.
//
// A single `fault =` line injects one fault; a *campaign* draws a whole
// storm of them deterministically from its own seed — waves of concurrent,
// overlapping events plus correlated pairs (a flash crowd *during* an edge
// outage, a DN restart *during* mass churn), the compound-failure regimes
// the paper's graceful-degradation claim (§3.8, §5.2) is actually about.
//
// Campaigns expand to a plain FaultPlan before the engine arms, so the
// determinism contract is unchanged: expansion is a pure function of the
// CampaignSpec and a CampaignContext (region/AS candidates derived from the
// deterministic topology), never of live simulation state. Same scenario —
// campaign seed included — ⇒ byte-identical traces.
//
// Scenario syntax (`campaign = key=value ...`, repeatable; docs/ROBUSTNESS.md):
//   campaign = seed=7 waves=5 mean_concurrent=2 kinds=cn_outage,dn_outage,mass_churn
//              start=2 spacing=0.8 duration=0.2 fraction=0.15 correlated=0.5
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "fault/fault_spec.hpp"

namespace netsession::fault {

/// One campaign: `waves` clusters of overlapping faults, the first near
/// `start_days`, successive clusters ~`spacing_days` apart. Every knob is
/// part of the determinism contract.
struct CampaignSpec {
    /// Campaign seed; independent of the master simulation seed so the same
    /// storm can replay against different populations.
    std::uint64_t seed = 1;
    int waves = 3;
    /// Mean number of concurrent faults per wave (>= 1). Integer values are
    /// exact; fractional parts become a Bernoulli extra event.
    double mean_concurrent = 2.0;
    /// Kinds the generator may draw. Empty = the default storm mix
    /// (edge/cn/dn outages, mass churn, AS degradation, flash crowds).
    std::vector<FaultKind> kinds;
    /// Onset of the first wave, days from t=0 (see FaultEvent::at_days).
    double start_days = 1.0;
    /// Mean spacing between wave onsets, days (jittered ±25%).
    double spacing_days = 1.0;
    /// Mean fault duration, days (jittered ±50%; one-shot kinds ignore it).
    double duration_days = 0.25;
    /// Mean affected peer share for churn / flash crowds (jittered ±50%).
    double fraction = 0.2;
    /// Probability that a wave also draws a correlated companion fault
    /// (flash crowd during an outage, DN outage spanning mass churn).
    double correlated = 0.5;
};

/// Topology-derived candidate targets for generated events. Built by core
/// from the deterministic AS graph / region table (never from mutable run
/// state); tests pass fixed values.
struct CampaignContext {
    /// Number of world regions events may target.
    int regions = 9;
    /// Candidate ASNs for as_degradation events (typically the largest
    /// eyeball ASes). Empty = ASNs are drawn as raw small integers.
    std::vector<std::uint32_t> asns;
};

/// Parses one scenario line payload ("seed=7 waves=5 ..."). Unknown keys,
/// unknown kinds, and out-of-range values are errors, mirroring
/// parse_fault_event (typos must not silently weaken a chaos gate).
[[nodiscard]] Result<CampaignSpec> parse_campaign(const std::string& text);

/// Renders a spec in the syntax parse_campaign accepts (round-trips).
[[nodiscard]] std::string to_string(const CampaignSpec& spec);

/// Deterministically expands a campaign into concrete fault events. Pure:
/// only `spec` and `ctx` matter, and all randomness comes from child streams
/// of Rng(spec.seed).
[[nodiscard]] FaultPlan expand_campaign(const CampaignSpec& spec, const CampaignContext& ctx);

/// Appends the expansion of every campaign to `plan` (scenario load order).
void append_campaigns(FaultPlan& plan, const std::vector<CampaignSpec>& campaigns,
                      const CampaignContext& ctx);

}  // namespace netsession::fault
