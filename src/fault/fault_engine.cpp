#include "fault/fault_engine.hpp"

#include <string>

#include "control/control_plane.hpp"
#include "edge/edge_network.hpp"
#include "net/world.hpp"
#include "workload/behavior.hpp"

namespace netsession::fault {

FaultEngine::FaultEngine(sim::Simulator& sim, net::World& world, edge::EdgeNetwork& edges,
                         control::ControlPlane& plane, workload::UserDriver& driver,
                         trace::TraceLog& trace, Rng rng)
    : sim_(&sim), world_(&world), edges_(&edges), plane_(&plane), driver_(&driver),
      trace_(&trace), rng_(rng) {}

void FaultEngine::arm(const FaultPlan& plan) {
    as_tokens_.assign(plan.events.size(), 0);
    for (std::size_t i = 0; i < plan.events.size(); ++i) {
        const FaultEvent e = plan.events[i];
        const int index = static_cast<int>(i);
        sim_->schedule_at(sim::SimTime{} + sim::days(e.at_days),
                          [this, e, index] { apply(e, index); });
        // One-shot kinds have no "restore"; for the rest, duration == 0 means
        // the fault is permanent.
        const bool one_shot = e.kind == FaultKind::mass_churn || e.kind == FaultKind::flash_crowd;
        if (!one_shot && e.duration_days > 0.0) {
            sim_->schedule_at(sim::SimTime{} + sim::days(e.at_days + e.duration_days),
                              [this, e, index] { restore(e, index); });
        }
    }
}

void FaultEngine::record(const FaultEvent& e, int index, bool is_restore) {
    trace::FaultRecord r;
    r.time = sim_->now();
    r.index = static_cast<std::uint16_t>(index);
    r.kind = static_cast<std::uint8_t>(e.kind);
    r.phase = is_restore ? 1 : 0;
    r.region = static_cast<std::int8_t>(e.region);
    r.region_b = static_cast<std::int8_t>(e.region_b);
    r.asn = e.asn;
    if (e.kind == FaultKind::mass_churn || e.kind == FaultKind::flash_crowd)
        r.param = e.fraction;
    else if (e.kind == FaultKind::as_degradation)
        r.param = e.rate_factor;
    trace_->add(r);
}

void FaultEngine::apply(const FaultEvent& e, int index) {
    ++faults_applied_;
    switch (e.kind) {
        case FaultKind::edge_outage:
            edges_->fail_region(e.region);
            break;
        case FaultKind::region_partition:
            world_->partition_regions(e.region, e.region_b);
            break;
        case FaultKind::as_degradation:
            // Keep the layer token: overlapping degradations of one AS must
            // each restore exactly their own layer (docs/ROBUSTNESS.md).
            as_tokens_[static_cast<std::size_t>(index)] =
                world_->degrade_as(Asn{e.asn}, e.latency_factor, e.rate_factor, e.loss);
            break;
        case FaultKind::stun_blackout:
            plane_->set_stuns_online(false);
            break;
        case FaultKind::mass_churn: {
            // A per-event child stream keyed by the event's position in the
            // plan: two churn events draw from independent, stable streams.
            Rng churn = rng_.child("churn-" + std::to_string(index));
            driver_->crash_peers(e.fraction, churn);
            break;
        }
        case FaultKind::cn_outage:
            plane_->fail_cn_region(e.region);
            break;
        case FaultKind::dn_outage:
            plane_->fail_dn_region(e.region);
            break;
        case FaultKind::flash_crowd: {
            Rng crowd = rng_.child("crowd-" + std::to_string(index));
            driver_->flash_crowd(e.fraction, crowd);
            break;
        }
    }
    record(e, index, /*is_restore=*/false);
}

void FaultEngine::restore(const FaultEvent& e, int index) {
    ++faults_restored_;
    switch (e.kind) {
        case FaultKind::edge_outage:
            edges_->restart_region(e.region);
            break;
        case FaultKind::region_partition:
            world_->heal_partition(e.region, e.region_b);
            break;
        case FaultKind::as_degradation:
            world_->restore_as(Asn{e.asn}, as_tokens_[static_cast<std::size_t>(index)]);
            break;
        case FaultKind::stun_blackout:
            plane_->set_stuns_online(true);
            break;
        case FaultKind::cn_outage:
            plane_->restart_cn_region(e.region);
            break;
        case FaultKind::dn_outage:
            plane_->restart_dn_region(e.region);
            break;
        case FaultKind::mass_churn:
        case FaultKind::flash_crowd:
            break;  // one-shot; never scheduled
    }
    record(e, index, /*is_restore=*/true);
}

}  // namespace netsession::fault
