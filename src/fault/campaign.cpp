#include "fault/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/rng.hpp"

namespace netsession::fault {

namespace {

bool parse_double(const std::string& v, double& out) {
    try {
        std::size_t used = 0;
        out = std::stod(v, &used);
        return used == v.size();
    } catch (...) {
        return false;
    }
}

bool parse_kind_word(const std::string& word, FaultKind& out) {
    for (const FaultKind k :
         {FaultKind::edge_outage, FaultKind::region_partition, FaultKind::as_degradation,
          FaultKind::stun_blackout, FaultKind::mass_churn, FaultKind::cn_outage,
          FaultKind::dn_outage, FaultKind::flash_crowd}) {
        if (word == to_string(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

bool parse_kinds(const std::string& value, std::vector<FaultKind>& out) {
    out.clear();
    std::string item;
    std::istringstream in(value);
    while (std::getline(in, item, ',')) {
        FaultKind k{};
        if (item.empty() || !parse_kind_word(item, k)) return false;
        out.push_back(k);
    }
    return !out.empty();
}

std::string format_g(double v) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

Error bad(const std::string& what) { return Error{Error::Code::invalid_argument, what}; }

/// The default storm mix: every kind the paper's availability story covers,
/// minus region partitions (whose two-sided scope reads better when chosen
/// explicitly) and STUN blackouts (global and binary — better as a `fault =`
/// line than a random draw).
const std::vector<FaultKind>& default_kinds() {
    static const std::vector<FaultKind> kinds = {
        FaultKind::edge_outage, FaultKind::cn_outage,  FaultKind::dn_outage,
        FaultKind::mass_churn,  FaultKind::flash_crowd, FaultKind::as_degradation,
    };
    return kinds;
}

/// Draws one event of `kind` for a wave starting at `onset` days.
FaultEvent draw_event(FaultKind kind, double onset, const CampaignSpec& spec,
                      const CampaignContext& ctx, Rng& rng) {
    FaultEvent e;
    e.kind = kind;
    e.at_days = onset;
    const bool one_shot = kind == FaultKind::mass_churn || kind == FaultKind::flash_crowd;
    if (!one_shot) e.duration_days = spec.duration_days * rng.uniform(0.5, 1.5);
    switch (kind) {
        case FaultKind::edge_outage:
        case FaultKind::cn_outage:
        case FaultKind::dn_outage:
            // Mostly regional; occasionally the whole tier goes dark.
            e.region = rng.chance(0.1) ? -1
                                       : static_cast<int>(rng.below(
                                             static_cast<std::uint64_t>(std::max(ctx.regions, 1))));
            break;
        case FaultKind::region_partition: {
            const int r = std::max(ctx.regions, 2);
            e.region = static_cast<int>(rng.below(static_cast<std::uint64_t>(r)));
            e.region_b = rng.chance(0.25)
                             ? -1
                             : static_cast<int>(rng.below(static_cast<std::uint64_t>(r)));
            if (e.region_b == e.region) e.region_b = (e.region + 1) % r;
            break;
        }
        case FaultKind::as_degradation:
            e.asn = ctx.asns.empty()
                        ? static_cast<std::uint32_t>(1 + rng.below(4096))
                        : ctx.asns[rng.below(ctx.asns.size())];
            e.latency_factor = rng.uniform(2.0, 6.0);
            e.rate_factor = rng.uniform(0.1, 0.5);
            e.loss = rng.uniform(0.0, 0.05);
            break;
        case FaultKind::stun_blackout:
            break;
        case FaultKind::mass_churn:
        case FaultKind::flash_crowd:
            e.fraction = std::clamp(spec.fraction * rng.uniform(0.5, 1.5), 0.01, 1.0);
            break;
    }
    return e;
}

/// The correlated companion of a wave's anchor fault — the compound regimes
/// the paper's robustness story is really tested by. An outage anchor gets a
/// flash crowd landing while it is still dark; a one-shot churn/crowd anchor
/// gets a DN outage spanning the shock (restart mid-churn ⇒ RE-ADD fan-out
/// while the directory is stale); anything else gets mass churn on top.
FaultEvent companion_for(const FaultEvent& anchor, const CampaignSpec& spec,
                         const CampaignContext& ctx, Rng& rng) {
    const bool anchor_one_shot =
        anchor.kind == FaultKind::mass_churn || anchor.kind == FaultKind::flash_crowd;
    FaultKind kind;
    double onset;
    if (anchor_one_shot) {
        kind = FaultKind::dn_outage;
        // Starts just before the shock so the restart happens mid-churn.
        onset = std::max(0.0, anchor.at_days - 0.25 * spec.duration_days);
    } else if (anchor.kind == FaultKind::edge_outage || anchor.kind == FaultKind::cn_outage ||
               anchor.kind == FaultKind::dn_outage) {
        kind = FaultKind::flash_crowd;
        onset = anchor.at_days + 0.25 * anchor.duration_days;
    } else {
        kind = FaultKind::mass_churn;
        onset = anchor.at_days + 0.25 * anchor.duration_days;
    }
    FaultEvent e = draw_event(kind, onset, spec, ctx, rng);
    if (kind == FaultKind::dn_outage) {
        // Span the anchor's moment, and prefer its scope when it has one.
        e.duration_days = std::max(e.duration_days, 0.5 * spec.duration_days);
        if (anchor.region >= 0) e.region = anchor.region;
    }
    return e;
}

}  // namespace

Result<CampaignSpec> parse_campaign(const std::string& text) {
    std::istringstream in(text);
    std::string word;
    CampaignSpec spec;
    bool any = false;
    while (in >> word) {
        any = true;
        const auto eq = word.find('=');
        if (eq == std::string::npos) return bad("expected key=value, got '" + word + "'");
        const std::string key = word.substr(0, eq);
        const std::string value = word.substr(eq + 1);
        double d = 0;
        bool ok = true;
        if (key == "seed") {
            ok = parse_double(value, d) && d >= 0;
            spec.seed = static_cast<std::uint64_t>(d);
        } else if (key == "waves") {
            ok = parse_double(value, d) && d >= 1;
            spec.waves = static_cast<int>(d);
        } else if (key == "mean_concurrent") {
            ok = parse_double(value, d) && d >= 1.0;
            spec.mean_concurrent = d;
        } else if (key == "kinds") {
            ok = parse_kinds(value, spec.kinds);
        } else if (key == "start") {
            ok = parse_double(value, d) && d >= 0.0;
            spec.start_days = d;
        } else if (key == "spacing") {
            ok = parse_double(value, d) && d > 0.0;
            spec.spacing_days = d;
        } else if (key == "duration") {
            ok = parse_double(value, d) && d > 0.0;
            spec.duration_days = d;
        } else if (key == "fraction") {
            ok = parse_double(value, d) && d > 0.0 && d <= 1.0;
            spec.fraction = d;
        } else if (key == "correlated") {
            ok = parse_double(value, d) && d >= 0.0 && d <= 1.0;
            spec.correlated = d;
        } else {
            return bad("unknown campaign key '" + key + "'");
        }
        if (!ok) return bad("bad value '" + value + "' for campaign key '" + key + "'");
    }
    if (!any) return bad("empty campaign spec");
    return spec;
}

std::string to_string(const CampaignSpec& spec) {
    std::string out = "seed=" + std::to_string(spec.seed);
    out += " waves=" + std::to_string(spec.waves);
    out += " mean_concurrent=" + format_g(spec.mean_concurrent);
    if (!spec.kinds.empty()) {
        out += " kinds=";
        for (std::size_t i = 0; i < spec.kinds.size(); ++i) {
            if (i != 0) out += ",";
            out += to_string(spec.kinds[i]);
        }
    }
    out += " start=" + format_g(spec.start_days);
    out += " spacing=" + format_g(spec.spacing_days);
    out += " duration=" + format_g(spec.duration_days);
    out += " fraction=" + format_g(spec.fraction);
    out += " correlated=" + format_g(spec.correlated);
    return out;
}

FaultPlan expand_campaign(const CampaignSpec& spec, const CampaignContext& ctx) {
    FaultPlan plan;
    const std::vector<FaultKind>& kinds = spec.kinds.empty() ? default_kinds() : spec.kinds;
    const Rng root(spec.seed);
    for (int w = 0; w < spec.waves; ++w) {
        // One child stream per wave, keyed by position: editing the wave
        // count changes later waves only, and every wave's draws are stable.
        Rng rng = root.child("wave-" + std::to_string(w));
        const double onset =
            spec.start_days + static_cast<double>(w) * spec.spacing_days * rng.uniform(0.75, 1.25);
        // Concurrency: the integer part is exact, the fraction a Bernoulli
        // extra — mean_concurrent=2 really means two faults per wave.
        int concurrent = static_cast<int>(spec.mean_concurrent);
        if (rng.chance(spec.mean_concurrent - concurrent)) ++concurrent;
        const std::size_t anchor_index = plan.events.size();
        for (int j = 0; j < concurrent; ++j) {
            const FaultKind kind = kinds[rng.below(kinds.size())];
            // Stagger inside the wave so the faults overlap rather than
            // coincide: each later event lands while the anchor is active.
            const double stagger =
                j == 0 ? 0.0 : rng.uniform(0.0, 0.5) * spec.duration_days;
            plan.events.push_back(draw_event(kind, onset + stagger, spec, ctx, rng));
        }
        if (rng.chance(spec.correlated))
            plan.events.push_back(companion_for(plan.events[anchor_index], spec, ctx, rng));
    }
    return plan;
}

void append_campaigns(FaultPlan& plan, const std::vector<CampaignSpec>& campaigns,
                      const CampaignContext& ctx) {
    for (const CampaignSpec& spec : campaigns) {
        const FaultPlan expanded = expand_campaign(spec, ctx);
        plan.events.insert(plan.events.end(), expanded.events.begin(), expanded.events.end());
    }
}

}  // namespace netsession::fault
