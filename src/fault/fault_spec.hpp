// FaultPlan: a deterministic, scenario-configurable timeline of fault events.
//
// The paper claims NetSession "degrades gracefully" under infrastructure
// failure (§3.8) and quantifies the resulting failure taxonomy (§5.2: 0.1%
// infrastructure- vs 0.2% p2p-system-related failures). A FaultPlan makes
// those regimes first-class: a list of timed events — edge-server outages,
// regional network partitions, per-AS link degradation, STUN blackouts, mass
// peer crash churn, control-plane outages, flash crowds — that the
// FaultEngine schedules against the simulator. Plans parse from scenario INI
// lines (`fault = <kind> key=value ...`, see docs/ROBUSTNESS.md) and are part
// of the determinism contract: same seed + same plan ⇒ byte-identical traces.
//
// This header is pure data (no dependency on the components the events act
// on) so SimulationConfig can embed a plan without layering cycles; the
// machinery that applies events lives in fault/fault_engine.*.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace netsession::fault {

enum class FaultKind : std::uint8_t {
    edge_outage,       // edge servers of one region (or all) go down
    region_partition,  // the network between two regions (or one vs all) breaks
    as_degradation,    // one AS's links degrade: latency x, rate x, message loss
    stun_blackout,     // every STUN component stops answering probes
    mass_churn,        // a fraction of running peers crash abruptly (no goodbye)
    cn_outage,         // connection nodes of one region (or all) fail
    dn_outage,         // database nodes of one region (or all) fail (+ RE-ADD on restart)
    flash_crowd,       // a fraction of online peers request the same object at once
};

[[nodiscard]] std::string_view to_string(FaultKind k) noexcept;

/// One timed fault. Times are in days of simulated time measured from the
/// start of the run (t = 0 is the start of warm-up; the measurement window
/// begins at `warmup_days`). `duration_days == 0` means the fault is
/// permanent (never restored).
struct FaultEvent {
    FaultKind kind = FaultKind::edge_outage;
    double at_days = 0.0;
    double duration_days = 0.0;
    /// Region scope: -1 = all regions (edge/cn/dn outages), or the first
    /// side of a partition.
    int region = -1;
    /// Second side of a partition; -1 partitions `region` from every other.
    int region_b = -1;
    /// Target AS for as_degradation.
    std::uint32_t asn = 0;
    /// Affected share of peers (mass_churn, flash_crowd), in [0, 1].
    double fraction = 0.0;
    /// as_degradation parameters: one-way latency multiplier, capacity
    /// multiplier (clamped to >= 0.01 so flows cannot freeze at rate zero),
    /// and per-message loss probability.
    double latency_factor = 1.0;
    double rate_factor = 1.0;
    double loss = 0.0;
};

/// The full timeline; events may appear in any order.
struct FaultPlan {
    std::vector<FaultEvent> events;
    [[nodiscard]] bool empty() const noexcept { return events.empty(); }
};

/// Parses one scenario line payload, e.g.
///   "edge_outage at=12 duration=1 region=2"
///   "region_partition at=12 duration=0.5 region=0 region_b=3"
///   "as_degradation at=12 duration=1 asn=7 latency_x=5 rate_x=0.2 loss=0.05"
///   "stun_blackout at=12 duration=2"
///   "mass_churn at=12 fraction=0.3"
///   "flash_crowd at=12 fraction=0.2"
/// Unknown kinds, unknown keys, and malformed values are errors (typos must
/// not silently become no-op faults).
[[nodiscard]] Result<FaultEvent> parse_fault_event(const std::string& text);

/// Renders an event in the syntax parse_fault_event accepts (round-trips).
[[nodiscard]] std::string to_string(const FaultEvent& event);

}  // namespace netsession::fault
