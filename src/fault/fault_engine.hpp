// FaultEngine: applies a FaultPlan against the live deployment.
//
// For every FaultEvent the engine schedules an onset event (and, unless the
// fault is permanent, a matching restore event) on the simulator, then calls
// the corresponding availability hook on the affected component:
//
//   edge_outage       edge::EdgeNetwork::fail_region / restart_region
//   region_partition  net::World::partition_regions / heal_partition
//   as_degradation    net::World::degrade_as / restore_as (layer token)
//   stun_blackout     control::ControlPlane::set_stuns_online
//   mass_churn        workload::UserDriver::crash_peers
//   cn_outage         control::ControlPlane::fail_cn_region / restart_cn_region
//   dn_outage         control::ControlPlane::fail_dn_region / restart_dn_region
//   flash_crowd       workload::UserDriver::flash_crowd
//
// Each onset and restore is also written to the trace as a FaultRecord
// (format v8), so recovery analysis can pair them into per-fault
// time-to-recover without a scenario file. AS degradations remember the
// World layer token per event, so overlapping degradations of one AS
// restore exactly the layer they created (see net::World::degrade_as).
//
// The engine deliberately takes references to the individual components, not
// to core::Simulation, so it sits beside the other mid-level subsystems in
// the layering (core wires it up; nothing below core depends on it).
//
// Determinism: the only randomness is the engine's own child Rng streams
// handed to crash_peers/flash_crowd, derived from the master seed by stable
// labels — the same seed and the same plan replay the same faults exactly.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "fault/fault_spec.hpp"
#include "sim/simulator.hpp"
#include "trace/trace_log.hpp"

namespace netsession::net {
class World;
}
namespace netsession::edge {
class EdgeNetwork;
}
namespace netsession::control {
class ControlPlane;
}
namespace netsession::workload {
class UserDriver;
}

namespace netsession::fault {

class FaultEngine {
public:
    FaultEngine(sim::Simulator& sim, net::World& world, edge::EdgeNetwork& edges,
                control::ControlPlane& plane, workload::UserDriver& driver,
                trace::TraceLog& trace, Rng rng);

    FaultEngine(const FaultEngine&) = delete;
    FaultEngine& operator=(const FaultEngine&) = delete;

    /// Schedules every event of `plan` on the simulator. Call once, before
    /// the run starts; events whose time has already passed fire immediately
    /// on the next dispatch.
    void arm(const FaultPlan& plan);

    /// Faults whose onset has fired so far (restores don't count).
    [[nodiscard]] int faults_applied() const noexcept { return faults_applied_; }
    /// Restores fired so far.
    [[nodiscard]] int faults_restored() const noexcept { return faults_restored_; }

private:
    void apply(const FaultEvent& e, int index);
    void restore(const FaultEvent& e, int index);
    void record(const FaultEvent& e, int index, bool is_restore);

    sim::Simulator* sim_;
    net::World* world_;
    edge::EdgeNetwork* edges_;
    control::ControlPlane* plane_;
    workload::UserDriver* driver_;
    trace::TraceLog* trace_;
    Rng rng_;
    int faults_applied_ = 0;
    int faults_restored_ = 0;
    /// Per armed event: the World AS-degradation layer token (0 = none).
    std::vector<std::uint32_t> as_tokens_;
};

}  // namespace netsession::fault
