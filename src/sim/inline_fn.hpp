// Small-buffer callable for simulator events.
//
// The event engine stores one callback per scheduled event, and nearly all of
// them are tiny lambdas ([this, slot]-style captures from the flow network and
// peer logic). std::function would fit many of these in its own SSO buffer,
// but its 16-byte budget misses the multi-capture callbacks the peer layer
// schedules, and its type-erased move goes through a manager call. InlineFn
// widens the inline buffer to 48 bytes (64-byte slab entries together with the
// vtable pointer and the slab's seq field), relocates with a direct call, and
// reports whether it had to fall back to the heap so the engine can count
// callback allocations.
//
// Move-only and void() only — exactly what the Simulator needs, nothing more.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace netsession::sim {

class InlineFn {
public:
    /// Callables up to this size (and max_align_t alignment) are stored
    /// inline; larger ones are heap-allocated.
    static constexpr std::size_t kInlineSize = 48;

    InlineFn() = default;

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                          std::is_invocable_r_v<void, D&>>>
    InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
        if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<D>) {
            ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
            vt_ = &kInlineVTable<D>;
        } else {
            ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
            vt_ = &kHeapVTable<D>;
        }
    }

    InlineFn(InlineFn&& other) noexcept { move_from(other); }

    InlineFn& operator=(InlineFn&& other) noexcept {
        if (this != &other) {
            reset();
            move_from(other);
        }
        return *this;
    }

    InlineFn(const InlineFn&) = delete;
    InlineFn& operator=(const InlineFn&) = delete;

    ~InlineFn() { reset(); }

    void operator()() { vt_->invoke(storage_); }

    [[nodiscard]] explicit operator bool() const noexcept { return vt_ != nullptr; }

    /// True if the wrapped callable did not fit the inline buffer.
    [[nodiscard]] bool heap_allocated() const noexcept { return vt_ != nullptr && vt_->heap; }

    /// Destroys the wrapped callable (releasing captures immediately).
    void reset() noexcept {
        if (vt_ != nullptr) {
            vt_->destroy(storage_);
            vt_ = nullptr;
        }
    }

private:
    struct VTable {
        void (*invoke)(void*);
        void (*relocate)(void* dst, void* src) noexcept;  // move-construct dst, destroy src
        void (*destroy)(void*) noexcept;
        bool heap;
    };

    template <typename D>
    static void inline_invoke(void* p) {
        (*static_cast<D*>(p))();
    }
    template <typename D>
    static void inline_relocate(void* dst, void* src) noexcept {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
    }
    template <typename D>
    static void inline_destroy(void* p) noexcept {
        static_cast<D*>(p)->~D();
    }

    template <typename D>
    static void heap_invoke(void* p) {
        (**static_cast<D**>(p))();
    }
    static void heap_relocate(void* dst, void* src) noexcept {
        ::new (dst) void*(*static_cast<void**>(src));
    }
    template <typename D>
    static void heap_destroy(void* p) noexcept {
        delete *static_cast<D**>(p);
    }

    template <typename D>
    static constexpr VTable kInlineVTable{&inline_invoke<D>, &inline_relocate<D>,
                                          &inline_destroy<D>, false};
    template <typename D>
    static constexpr VTable kHeapVTable{&heap_invoke<D>, &heap_relocate, &heap_destroy<D>, true};

    void move_from(InlineFn& other) noexcept {
        if (other.vt_ != nullptr) {
            vt_ = other.vt_;
            vt_->relocate(storage_, other.storage_);
            other.vt_ = nullptr;
        }
    }

    const VTable* vt_ = nullptr;
    alignas(std::max_align_t) std::byte storage_[kInlineSize];
};

}  // namespace netsession::sim
