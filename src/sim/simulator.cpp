#include "sim/simulator.hpp"

#include <algorithm>

namespace netsession::sim {

EventHandle Simulator::schedule_at(SimTime at, Callback cb) {
    if (at < now_) at = now_;
    const std::uint64_t seq = next_seq_++;
    queue_.push(Event{at, seq, std::move(cb)});
    ++live_;
    return EventHandle{seq};
}

bool Simulator::cancel(EventHandle h) {
    if (!h.valid() || h.id_ >= next_seq_) return false;
    // We cannot remove from the middle of a binary heap; record the seq and
    // skip the event when it surfaces. Entries drain out of the set as their
    // events reach the top of the heap.
    if (!cancelled_.insert(h.id_).second) return false;
    if (live_ > 0) --live_;
    return true;
}

void Simulator::dispatch(Event& e) {
    now_ = e.at;
    ++dispatched_;
    if (live_ > 0) --live_;
    Callback cb = std::move(e.cb);
    cb();
}

bool Simulator::purge_cancelled_top() {
    while (!queue_.empty()) {
        if (!cancelled_.empty() && cancelled_.erase(queue_.top().seq) > 0) {
            queue_.pop();
            continue;
        }
        return true;
    }
    return false;
}

bool Simulator::step() {
    if (!purge_cancelled_top()) return false;
    Event e = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    dispatch(e);
    return true;
}

void Simulator::run() {
    while (step()) {
    }
}

void Simulator::run_until(SimTime until) {
    // The bound must be checked against the next *live* event — a cancelled
    // event at the top must not let a far-future event slip through.
    while (purge_cancelled_top() && queue_.top().at <= until) step();
    if (now_ < until) now_ = until;
}

}  // namespace netsession::sim
