#include "sim/simulator.hpp"

namespace netsession::sim {

EventHandle Simulator::schedule_at(SimTime at, Callback cb) {
    if (at < now_) at = now_;
    const std::uint64_t seq = next_seq_++;
    std::uint32_t slot;
    if (!free_slots_.empty()) {
        slot = free_slots_.back();
        free_slots_.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
    }
    Slot& s = slots_[slot];
    s.cb = std::move(cb);
    s.seq = seq;
    queue_.push(HeapEntry{at, seq, slot});
    ++live_;
    ++stats_.scheduled;
    if (s.cb.heap_allocated()) ++stats_.callback_heap_allocs;
    return EventHandle{seq, slot};
}

bool Simulator::cancel(EventHandle h) {
    if (!h.valid() || h.slot_ >= slots_.size()) return false;
    Slot& s = slots_[h.slot_];
    // A dispatched, cancelled, or recycled slot no longer carries the
    // handle's seq, so stale cancels fall out here without any bookkeeping.
    if (s.seq != h.seq_) return false;
    s.seq = 0;
    s.cb.reset();  // release captures now; the heap entry drains lazily
    --live_;
    ++stats_.cancelled;
    return true;
}

bool Simulator::purge_cancelled_top() {
    while (!queue_.empty()) {
        const HeapEntry& e = queue_.top();
        if (slots_[e.slot].seq == e.seq) return true;
        // Stale entry: its event was cancelled. The slot could not be reused
        // while this entry was queued; recycle it now.
        free_slots_.push_back(e.slot);
        queue_.pop();
    }
    return false;
}

bool Simulator::step() {
    if (!purge_cancelled_top()) return false;
    const HeapEntry e = queue_.top();
    queue_.pop();
    Slot& s = slots_[e.slot];
    Callback cb = std::move(s.cb);
    s.seq = 0;
    free_slots_.push_back(e.slot);
    now_ = e.at;
    ++stats_.dispatched;
    --live_;
    cb();
    return true;
}

void Simulator::run() {
    while (step()) {
    }
}

void Simulator::run_until(SimTime until) {
    // The bound must be checked against the next *live* event — a cancelled
    // event at the top must not let a far-future event slip through.
    while (purge_cancelled_top() && queue_.top().at <= until) step();
    if (now_ < until) now_ = until;
}

}  // namespace netsession::sim
