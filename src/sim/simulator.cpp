#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>

#include "common/parallel.hpp"

namespace netsession::sim {

namespace {

/// Thread-local dispatch context. Lane execution — serial or on the pool —
/// publishes (simulator, lane, event timestamp) here so that now(),
/// current_shard() and the schedule_* lane inheritance work identically
/// whichever thread runs the callback. Keyed by simulator pointer so nested
/// or test-local simulators never read another engine's context.
struct DispatchCtx {
    const void* sim = nullptr;
    int lane = 0;
    SimTime now{};
};
thread_local DispatchCtx tl_dispatch;

constexpr SimTime kEndOfTime{std::numeric_limits<std::int64_t>::max()};

}  // namespace

void Simulator::configure_shards(int shards, Duration lookahead) {
    assert(shards >= 1);
    assert(lookahead.us > 0);
    // Re-sharding a populated engine would orphan scheduled events; the
    // shard layout is fixed before the world is built.
    assert(pending() == 0 && events_dispatched() == 0);
    lanes_.clear();
    lanes_.resize(static_cast<std::size_t>(shards));
    outboxes_.clear();
    outboxes_.resize(static_cast<std::size_t>(shards));
    lookahead_ = lookahead;
    shard_stats_ = {};
    window_dispatched_.assign(static_cast<std::size_t>(shards), 0);
}

int Simulator::current_shard() const noexcept {
    const DispatchCtx& ctx = tl_dispatch;
    return ctx.sim == this ? ctx.lane : 0;
}

SimTime Simulator::now() const noexcept {
    const DispatchCtx& ctx = tl_dispatch;
    return ctx.sim == this ? ctx.now : now_;
}

EventHandle Simulator::push_into(Lane& lane, std::uint32_t lane_index, SimTime at, Callback cb) {
    const std::uint64_t seq = lane.next_seq++;
    std::uint32_t slot;
    if (!lane.free_slots.empty()) {
        slot = lane.free_slots.back();
        lane.free_slots.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(lane.slots.size());
        lane.slots.emplace_back();
    }
    Slot& s = lane.slots[slot];
    s.cb = std::move(cb);
    s.seq = seq;
    lane.queue.push(HeapEntry{at, seq, slot});
    ++lane.live;
    ++lane.stats.scheduled;
    if (s.cb.heap_allocated()) ++lane.stats.callback_heap_allocs;
    return EventHandle{seq, slot, lane_index};
}

EventHandle Simulator::schedule_at(SimTime at, Callback cb) {
    const DispatchCtx& ctx = tl_dispatch;
    if (ctx.sim == this) {
        // Inside a dispatching callback: stay in the executing lane, clamp
        // against the executing event's timestamp.
        if (at < ctx.now) at = ctx.now;
        return push_into(lanes_[static_cast<std::size_t>(ctx.lane)],
                         static_cast<std::uint32_t>(ctx.lane), at, std::move(cb));
    }
    if (at < now_) at = now_;
    return push_into(lanes_[0], 0, at, std::move(cb));
}

EventHandle Simulator::schedule_in_shard(int shard, SimTime at, Callback cb) {
    assert(shard >= 0 && shard < shards());
    const DispatchCtx& ctx = tl_dispatch;
    const SimTime local_now = (ctx.sim == this) ? ctx.now : now_;
    if (at < local_now) at = local_now;
    if (in_window_ && ctx.sim == this && ctx.lane != shard) {
        // Cross-shard send from inside a window: park it in the sender's
        // outbox. The barrier merges outboxes in ascending source-lane order,
        // so the destination seq — and therefore same-timestamp ordering —
        // is a pure function of (window, source shard, send order).
        outboxes_[static_cast<std::size_t>(ctx.lane)].push_back(
            CrossEntry{at, static_cast<std::uint32_t>(shard), std::move(cb)});
        return EventHandle{};
    }
    return push_into(lanes_[static_cast<std::size_t>(shard)], static_cast<std::uint32_t>(shard),
                     at, std::move(cb));
}

bool Simulator::cancel(EventHandle h) {
    if (!h.valid() || h.shard_ >= lanes_.size()) return false;
    Lane& lane = lanes_[h.shard_];
    if (h.slot_ >= lane.slots.size()) return false;
    Slot& s = lane.slots[h.slot_];
    // A dispatched, cancelled, or recycled slot no longer carries the
    // handle's seq, so stale cancels fall out here without any bookkeeping.
    if (s.seq != h.seq_) return false;
    s.seq = 0;
    s.cb.reset();  // release captures now; the heap entry drains lazily
    --lane.live;
    ++lane.stats.cancelled;
    return true;
}

bool Simulator::purge_cancelled_top(Lane& lane) {
    while (!lane.queue.empty()) {
        const HeapEntry& e = lane.queue.top();
        if (lane.slots[e.slot].seq == e.seq) return true;
        // Stale entry: its event was cancelled. The slot could not be reused
        // while this entry was queued; recycle it now.
        lane.free_slots.push_back(e.slot);
        lane.queue.pop();
    }
    return false;
}

bool Simulator::step() {
    assert(lanes_.size() == 1 && "step() is single-queue only; sharded mode runs in windows");
    Lane& lane = lanes_[0];
    if (!purge_cancelled_top(lane)) return false;
    const HeapEntry e = lane.queue.top();
    lane.queue.pop();
    Slot& s = lane.slots[e.slot];
    Callback cb = std::move(s.cb);
    s.seq = 0;
    lane.free_slots.push_back(e.slot);
    now_ = e.at;
    ++lane.stats.dispatched;
    --lane.live;
    cb();
    return true;
}

std::uint64_t Simulator::drain_lane_window(int lane_index, SimTime w_end, SimTime until) {
    Lane& lane = lanes_[static_cast<std::size_t>(lane_index)];
    DispatchCtx& ctx = tl_dispatch;
    const DispatchCtx saved = ctx;
    ctx.sim = this;
    ctx.lane = lane_index;
    std::uint64_t dispatched = 0;
    // Events scheduled by an in-window callback for a time still inside the
    // window run in this same pass — the loop re-reads the heap top, exactly
    // like the serial engine would.
    while (purge_cancelled_top(lane)) {
        const HeapEntry e = lane.queue.top();
        if (e.at >= w_end || e.at > until) break;
        lane.queue.pop();
        Slot& s = lane.slots[e.slot];
        Callback cb = std::move(s.cb);
        s.seq = 0;
        lane.free_slots.push_back(e.slot);
        ctx.now = e.at;
        ++lane.stats.dispatched;
        --lane.live;
        ++dispatched;
        cb();
    }
    ctx = saved;
    return dispatched;
}

void Simulator::drain_outboxes(SimTime w_end) {
    // Ascending source-lane order; within a source lane, send order. Both are
    // deterministic under serial *and* parallel dispatch (each outbox is
    // appended to only by its own lane), so the destination seqs assigned
    // here are reproducible for a fixed shard count.
    for (auto& outbox : outboxes_) {
        for (CrossEntry& e : outbox) {
            SimTime at = e.at;
            if (at < w_end) {
                // Lookahead contract violation (a cross-shard latency below
                // the configured window). Clamp to keep the next window
                // conservative; the counter makes the violation visible.
                at = w_end;
                ++shard_stats_.cross_clamped;
            }
            push_into(lanes_[e.dst], e.dst, at, std::move(e.cb));
            ++shard_stats_.cross_messages;
        }
        outbox.clear();
    }
}

void Simulator::run_windows(SimTime until) {
    const int shards = this->shards();
    for (;;) {
        // Window start: the globally earliest pending timestamp. Windows jump
        // — an idle stretch costs one scan, not lookahead-sized ticks.
        SimTime t0 = kEndOfTime;
        for (Lane& lane : lanes_) {
            if (purge_cancelled_top(lane) && lane.queue.top().at < t0) t0 = lane.queue.top().at;
        }
        if (t0 == kEndOfTime || t0 > until) break;
        const SimTime w_end = t0 + lookahead_;
        ++shard_stats_.windows;
        in_window_ = true;
        if (parallel_dispatch_ && shards > 1) {
            struct Ctx {
                Simulator* self;
                SimTime w_end, until;
            } ctx{this, w_end, until};
            parallel::detail::run_tasks(
                static_cast<std::size_t>(shards),
                [](void* p, std::size_t lane) {
                    auto* c = static_cast<Ctx*>(p);
                    c->self->window_dispatched_[lane] =
                        c->self->drain_lane_window(static_cast<int>(lane), c->w_end, c->until);
                },
                &ctx);
        } else {
            for (int k = 0; k < shards; ++k) {
                window_dispatched_[static_cast<std::size_t>(k)] =
                    drain_lane_window(k, w_end, until);
            }
        }
        in_window_ = false;
        for (int k = 0; k < shards; ++k) {
            if (window_dispatched_[static_cast<std::size_t>(k)] == 0) {
                ++shard_stats_.window_stalls;
            }
        }
        // Barrier time: the window end, clamped to the run bound so
        // run_until() never advances the clock past its caller's horizon.
        now_ = std::max(now_, std::min(w_end, until));
        if (barrier_hook_) barrier_hook_();
        drain_outboxes(w_end);
    }
}

void Simulator::run() {
    if (lanes_.size() == 1) {
        while (step()) {
        }
        return;
    }
    run_windows(kEndOfTime);
}

void Simulator::run_until(SimTime until) {
    if (lanes_.size() == 1) {
        Lane& lane = lanes_[0];
        // The bound must be checked against the next *live* event — a
        // cancelled event at the top must not let a far-future event slip
        // through.
        while (purge_cancelled_top(lane) && lane.queue.top().at <= until) step();
        if (now_ < until) now_ = until;
        return;
    }
    run_windows(until);
    if (now_ < until) now_ = until;
}

std::uint64_t Simulator::events_dispatched() const noexcept {
    std::uint64_t total = 0;
    for (const Lane& lane : lanes_) total += lane.stats.dispatched;
    return total;
}

std::size_t Simulator::pending() const noexcept {
    std::size_t total = 0;
    for (const Lane& lane : lanes_) total += lane.live;
    return total;
}

Simulator::Stats Simulator::stats() const noexcept {
    Stats total;
    for (const Lane& lane : lanes_) {
        total.scheduled += lane.stats.scheduled;
        total.dispatched += lane.stats.dispatched;
        total.cancelled += lane.stats.cancelled;
        total.callback_heap_allocs += lane.stats.callback_heap_allocs;
    }
    return total;
}

}  // namespace netsession::sim
