// Simulated time. Microsecond resolution, 64-bit — enough for centuries.
#pragma once

#include <cstdint>

namespace netsession::sim {

/// A point in simulated time, microseconds since simulation start.
struct SimTime {
    std::int64_t us = 0;

    friend constexpr auto operator<=>(const SimTime&, const SimTime&) = default;

    [[nodiscard]] constexpr double seconds() const noexcept { return static_cast<double>(us) / 1e6; }
    [[nodiscard]] constexpr double hours() const noexcept { return seconds() / 3600.0; }
    [[nodiscard]] constexpr double days() const noexcept { return seconds() / 86400.0; }
};

/// A span of simulated time.
struct Duration {
    std::int64_t us = 0;

    friend constexpr auto operator<=>(const Duration&, const Duration&) = default;
    [[nodiscard]] constexpr double seconds() const noexcept { return static_cast<double>(us) / 1e6; }
};

constexpr Duration microseconds(std::int64_t v) noexcept { return Duration{v}; }
constexpr Duration milliseconds(double v) noexcept { return Duration{static_cast<std::int64_t>(v * 1e3)}; }
constexpr Duration seconds(double v) noexcept { return Duration{static_cast<std::int64_t>(v * 1e6)}; }
constexpr Duration minutes(double v) noexcept { return seconds(v * 60.0); }
constexpr Duration hours(double v) noexcept { return seconds(v * 3600.0); }
constexpr Duration days(double v) noexcept { return seconds(v * 86400.0); }

constexpr SimTime operator+(SimTime t, Duration d) noexcept { return SimTime{t.us + d.us}; }
constexpr SimTime operator-(SimTime t, Duration d) noexcept { return SimTime{t.us - d.us}; }
constexpr Duration operator-(SimTime a, SimTime b) noexcept { return Duration{a.us - b.us}; }
constexpr Duration operator+(Duration a, Duration b) noexcept { return Duration{a.us + b.us}; }
constexpr Duration operator*(Duration d, double k) noexcept {
    return Duration{static_cast<std::int64_t>(static_cast<double>(d.us) * k)};
}

}  // namespace netsession::sim
