// Discrete-event simulation engine.
//
// A binary-heap event queue with cancellable events and deterministic
// FIFO tie-breaking for same-timestamp events. Everything in the NetSession
// reproduction — control-plane messages, flow completions, user behaviour —
// runs as events on one Simulator.
//
// Hot-path layout (see docs/SIMULATOR.md): callbacks live in a stable slab
// indexed by slot; the priority queue holds small {at, seq, slot} PODs, so
// heap sifts are integer moves rather than std::function relocations.
// Cancellation clears the slab entry's seq in O(1) — the queue entry drains
// lazily when it reaches the top — and cancelling an already-dispatched or
// already-cancelled event is structurally a no-op because the slab seq no
// longer matches the handle.
//
// Region sharding (docs/PARALLELISM.md "The sharded simulation core"):
// configure_shards(S, lookahead) splits the engine into S independent lanes,
// each with its own heap + slab + seq stream. Execution proceeds in
// conservative-lookahead windows: every window starts at the globally
// earliest pending timestamp T0 and covers [T0, T0 + lookahead); lanes drain
// their in-window events one lane at a time in ascending shard order (or on
// the parallel pool when parallel dispatch is enabled — lanes must then be
// isolated), and cross-shard messages land in per-source-lane outboxes that
// are merged at the window barrier in ascending source-shard order. The
// lookahead must not exceed the minimum cross-shard message latency
// (net::kLatencyFloor for the deployment), which is what makes the window
// conservative: nothing another lane does inside the current window can
// schedule work into it.
//
// Ordering contract (pinned by tests/sim/test_sharded_simulator.cpp):
//   - within a lane: (timestamp, lane-local seq) — FIFO on ties, exactly the
//     single-queue engine's contract;
//   - across lanes: window-batched, ascending shard id within a window;
//   - cross-shard messages: merged at barriers by (source shard, send order),
//     then ordered by (timestamp, destination-lane seq) like any event.
// Slot indices NEVER participate in ordering — slots are recycled storage,
// so any comparator falling back on them would make dispatch order depend on
// allocation history (see SameTimestampOrderIsIndependentOfSlotReuse).
//
// With shards == 1 (the default) every call takes the exact legacy
// single-queue path, byte-for-byte.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "sim/inline_fn.hpp"
#include "sim/time.hpp"

namespace netsession::sim {

/// Handle to a scheduled event; can be used to cancel it. Default-constructed
/// handles are inert. Cross-shard sends routed through a window outbox return
/// an inert handle: their destination seq is only assigned at the barrier, so
/// they cannot be cancelled (callers that need cancellable timers schedule
/// them in their own shard).
class EventHandle {
public:
    EventHandle() = default;

    [[nodiscard]] bool valid() const noexcept { return seq_ != 0; }
    /// Slab slot this handle points at (observable so tests can assert slot
    /// reuse; the seq is what actually validates a handle).
    [[nodiscard]] std::uint32_t slot() const noexcept { return slot_; }
    /// Lane the event was scheduled into (0 on the single-queue engine).
    [[nodiscard]] std::uint32_t shard() const noexcept { return shard_; }

private:
    friend class Simulator;
    EventHandle(std::uint64_t seq, std::uint32_t slot, std::uint32_t shard) noexcept
        : seq_(seq), slot_(slot), shard_(shard) {}
    std::uint64_t seq_ = 0;  // unique per schedule call within its lane, never reused
    std::uint32_t slot_ = 0;
    std::uint32_t shard_ = 0;
};

/// The event loop. Serial by default; configure_shards() turns on the
/// region-sharded windowed mode described above. Even in sharded mode all
/// *control* methods (run, schedule from outside a window, cancel) must be
/// called from one thread; only in-window lane execution may fan out, and
/// only when the caller guarantees lane isolation.
class Simulator {
public:
    using Callback = InlineFn;

    /// Lifetime counters for the perf surface (core/simulation, benches).
    /// Aggregated over every lane in sharded mode.
    struct Stats {
        std::uint64_t scheduled = 0;
        std::uint64_t dispatched = 0;
        std::uint64_t cancelled = 0;
        /// Callbacks too large for the InlineFn small buffer.
        std::uint64_t callback_heap_allocs = 0;
    };

    /// Sharded-mode counters (all zero on the single-queue engine).
    struct ShardStats {
        /// Conservative windows executed.
        std::uint64_t windows = 0;
        /// Lane-window slots that had no event to run (idle lanes summed
        /// over windows) — the "how parallel is this workload" signal.
        std::uint64_t window_stalls = 0;
        /// Cross-shard messages routed through window outboxes.
        std::uint64_t cross_messages = 0;
        /// Cross-shard messages whose timestamp violated the lookahead
        /// contract and had to be clamped to the window barrier. Always 0
        /// when every cross-shard latency >= the configured lookahead.
        std::uint64_t cross_clamped = 0;
    };

    Simulator() : lanes_(1), outboxes_(1) {}

    /// Splits the engine into `shards` lanes with the given conservative
    /// lookahead. Must be called before anything is scheduled; shards == 1
    /// (with any lookahead) is exactly the legacy single-queue engine.
    void configure_shards(int shards, Duration lookahead);

    [[nodiscard]] int shards() const noexcept { return static_cast<int>(lanes_.size()); }
    [[nodiscard]] Duration lookahead() const noexcept { return lookahead_; }
    /// Lane of the currently dispatching event (0 outside dispatch) —
    /// schedule_at/schedule_after stay in this lane, so an entity's local
    /// timers follow it automatically.
    [[nodiscard]] int current_shard() const noexcept;

    /// Runs in-window lane batches on the parallel pool instead of serially.
    /// Callers must guarantee lanes only touch lane-local state (the full
    /// deployment does not — it keeps serial dispatch; the engine tests and
    /// lane-isolated workloads use this). Dispatch *results* are identical in
    /// both modes by construction — that equivalence is itself a test.
    void set_parallel_dispatch(bool on) noexcept { parallel_dispatch_ = on; }
    [[nodiscard]] bool parallel_dispatch() const noexcept { return parallel_dispatch_; }

    /// Invoked at every window barrier (after lanes drained, before the
    /// cross-shard outboxes merge). The flow network hooks its batched
    /// cross-shard rate exchange here.
    void set_barrier_hook(std::function<void()> hook) { barrier_hook_ = std::move(hook); }

    /// Current simulated time: the timestamp of the dispatching event, the
    /// barrier time inside a barrier hook, or the last run_until() bound.
    [[nodiscard]] SimTime now() const noexcept;

    /// Schedules `cb` to run at absolute time `at` (clamped to now()) in the
    /// current lane.
    EventHandle schedule_at(SimTime at, Callback cb);

    /// Schedules `cb` to run after `delay` in the current lane.
    EventHandle schedule_after(Duration delay, Callback cb) {
        return schedule_at(now() + delay, std::move(cb));
    }

    /// Schedules into an explicit lane. From inside a window, scheduling into
    /// a *different* lane routes through the sender lane's outbox (merged at
    /// the barrier; returns an inert handle). Everywhere else — setup,
    /// barrier hooks, same-lane — it is a direct push and returns a live
    /// handle. On a single-queue engine shard must be 0.
    EventHandle schedule_in_shard(int shard, SimTime at, Callback cb);

    /// Cancels a pending event. Returns true if it was still pending.
    /// Cancelling an already-run or already-cancelled event is a no-op.
    bool cancel(EventHandle h);

    /// Runs events until every queue is empty.
    void run();

    /// Runs events with timestamp <= `until`, then sets now() to `until`.
    void run_until(SimTime until);

    /// Runs at most one event. Returns false if the queue was empty.
    /// Single-queue engine only (sharded mode advances window-by-window
    /// through run/run_until).
    bool step();

    /// Number of events dispatched so far (for tests and stats).
    [[nodiscard]] std::uint64_t events_dispatched() const noexcept;
    /// Number of live (scheduled, not yet dispatched or cancelled) events.
    [[nodiscard]] std::size_t pending() const noexcept;

    [[nodiscard]] Stats stats() const noexcept;
    [[nodiscard]] const ShardStats& shard_stats() const noexcept { return shard_stats_; }
    /// Events dispatched by one lane (sim.shard.<k>.dispatched gauges).
    [[nodiscard]] std::uint64_t shard_dispatched(int shard) const noexcept {
        return lanes_[static_cast<std::size_t>(shard)].stats.dispatched;
    }

private:
    /// What the priority queue sifts: a POD. `seq` is the lane-local schedule
    /// order — it breaks same-timestamp ties FIFO and pins each entry to the
    /// slab occupant it was created for. The slot is storage, not identity:
    /// it must never participate in ordering (slots are recycled, so slot
    /// order is allocation history, not schedule order).
    struct HeapEntry {
        SimTime at;
        std::uint64_t seq;
        std::uint32_t slot;
    };
    struct Later {
        bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
            if (a.at != b.at) return a.at > b.at;
            return a.seq > b.seq;
        }
    };
    /// Slab entry: the callback plus the seq of the event occupying the slot
    /// (0 = cancelled or dispatched; the heap entry is stale). 64 bytes.
    struct Slot {
        Callback cb;
        std::uint64_t seq = 0;
    };

    /// One shard's queue: heap + slab + seq stream + per-lane counters.
    /// In-window execution touches exactly one lane per thread, so lanes
    /// need no synchronization beyond the window barrier.
    struct Lane {
        std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later> queue;
        std::vector<Slot> slots;
        std::vector<std::uint32_t> free_slots;
        std::uint64_t next_seq = 1;
        std::size_t live = 0;
        Stats stats;
    };

    /// A cross-shard message parked in its sender's outbox until the window
    /// barrier merges it into the destination lane.
    struct CrossEntry {
        SimTime at;
        std::uint32_t dst;
        Callback cb;
    };

    /// Pops stale (cancelled) entries off the top, recycling their slots;
    /// returns true if a live event remains.
    static bool purge_cancelled_top(Lane& lane);
    EventHandle push_into(Lane& lane, std::uint32_t lane_index, SimTime at, Callback cb);
    /// Dispatches lane events with timestamp < w_end (and <= until);
    /// returns the number dispatched.
    std::uint64_t drain_lane_window(int lane_index, SimTime w_end, SimTime until);
    void run_windows(SimTime until);
    void drain_outboxes(SimTime w_end);

    std::vector<Lane> lanes_;
    std::vector<std::vector<CrossEntry>> outboxes_;  // indexed by source lane
    std::vector<std::uint64_t> window_dispatched_;   // per-lane scratch for stall accounting
    Duration lookahead_{1000};  // conservative window width (sharded mode)
    SimTime now_{};             // serial-mode / control-thread clock
    bool in_window_ = false;
    bool parallel_dispatch_ = false;
    std::function<void()> barrier_hook_;
    ShardStats shard_stats_;
};

}  // namespace netsession::sim
