// Discrete-event simulation engine.
//
// A binary-heap event queue with cancellable events and deterministic
// FIFO tie-breaking for same-timestamp events. Everything in the NetSession
// reproduction — control-plane messages, flow completions, user behaviour —
// runs as events on one Simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace netsession::sim {

/// Handle to a scheduled event; can be used to cancel it. Default-constructed
/// handles are inert.
class EventHandle {
public:
    EventHandle() = default;

    [[nodiscard]] bool valid() const noexcept { return id_ != 0; }

private:
    friend class Simulator;
    explicit EventHandle(std::uint64_t id) noexcept : id_(id) {}
    std::uint64_t id_ = 0;
};

/// The event loop. Not thread-safe by design — simulations are
/// single-threaded and deterministic.
class Simulator {
public:
    using Callback = std::function<void()>;

    /// Current simulated time.
    [[nodiscard]] SimTime now() const noexcept { return now_; }

    /// Schedules `cb` to run at absolute time `at` (clamped to now()).
    EventHandle schedule_at(SimTime at, Callback cb);

    /// Schedules `cb` to run after `delay`.
    EventHandle schedule_after(Duration delay, Callback cb) {
        return schedule_at(now_ + delay, std::move(cb));
    }

    /// Cancels a pending event. Returns true if it was still pending.
    /// Cancelling an already-run or already-cancelled event is a no-op.
    bool cancel(EventHandle h);

    /// Runs events until the queue is empty.
    void run();

    /// Runs events with timestamp <= `until`, then sets now() to `until`.
    void run_until(SimTime until);

    /// Runs at most one event. Returns false if the queue was empty.
    bool step();

    /// Number of events dispatched so far (for tests and stats).
    [[nodiscard]] std::uint64_t events_dispatched() const noexcept { return dispatched_; }
    /// Number of events currently pending (including cancelled-but-queued).
    [[nodiscard]] std::size_t pending() const noexcept { return live_; }

private:
    struct Event {
        SimTime at;
        std::uint64_t seq;  // FIFO tie-break and cancellation id
        Callback cb;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const noexcept {
            if (a.at != b.at) return a.at > b.at;
            return a.seq > b.seq;
        }
    };

    void dispatch(Event& e);
    /// Pops cancelled events off the top; returns true if a live event remains.
    bool purge_cancelled_top();

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    std::unordered_set<std::uint64_t> cancelled_;  // seqs of cancelled, still-queued events
    SimTime now_{};
    std::uint64_t next_seq_ = 1;
    std::uint64_t dispatched_ = 0;
    std::size_t live_ = 0;
};

}  // namespace netsession::sim
