// Discrete-event simulation engine.
//
// A binary-heap event queue with cancellable events and deterministic
// FIFO tie-breaking for same-timestamp events. Everything in the NetSession
// reproduction — control-plane messages, flow completions, user behaviour —
// runs as events on one Simulator.
//
// Hot-path layout (see docs/SIMULATOR.md): callbacks live in a stable slab
// indexed by slot; the priority queue holds small {at, seq, slot} PODs, so
// heap sifts are integer moves rather than std::function relocations.
// Cancellation clears the slab entry's seq in O(1) — the queue entry drains
// lazily when it reaches the top — and cancelling an already-dispatched or
// already-cancelled event is structurally a no-op because the slab seq no
// longer matches the handle.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/inline_fn.hpp"
#include "sim/time.hpp"

namespace netsession::sim {

/// Handle to a scheduled event; can be used to cancel it. Default-constructed
/// handles are inert.
class EventHandle {
public:
    EventHandle() = default;

    [[nodiscard]] bool valid() const noexcept { return seq_ != 0; }
    /// Slab slot this handle points at (observable so tests can assert slot
    /// reuse; the seq is what actually validates a handle).
    [[nodiscard]] std::uint32_t slot() const noexcept { return slot_; }

private:
    friend class Simulator;
    EventHandle(std::uint64_t seq, std::uint32_t slot) noexcept : seq_(seq), slot_(slot) {}
    std::uint64_t seq_ = 0;  // unique per schedule call, never reused
    std::uint32_t slot_ = 0;
};

/// The event loop. Not thread-safe by design — simulations are
/// single-threaded and deterministic.
class Simulator {
public:
    using Callback = InlineFn;

    /// Lifetime counters for the perf surface (core/simulation, benches).
    struct Stats {
        std::uint64_t scheduled = 0;
        std::uint64_t dispatched = 0;
        std::uint64_t cancelled = 0;
        /// Callbacks too large for the InlineFn small buffer.
        std::uint64_t callback_heap_allocs = 0;
    };

    /// Current simulated time.
    [[nodiscard]] SimTime now() const noexcept { return now_; }

    /// Schedules `cb` to run at absolute time `at` (clamped to now()).
    EventHandle schedule_at(SimTime at, Callback cb);

    /// Schedules `cb` to run after `delay`.
    EventHandle schedule_after(Duration delay, Callback cb) {
        return schedule_at(now_ + delay, std::move(cb));
    }

    /// Cancels a pending event. Returns true if it was still pending.
    /// Cancelling an already-run or already-cancelled event is a no-op.
    bool cancel(EventHandle h);

    /// Runs events until the queue is empty.
    void run();

    /// Runs events with timestamp <= `until`, then sets now() to `until`.
    void run_until(SimTime until);

    /// Runs at most one event. Returns false if the queue was empty.
    bool step();

    /// Number of events dispatched so far (for tests and stats).
    [[nodiscard]] std::uint64_t events_dispatched() const noexcept { return stats_.dispatched; }
    /// Number of live (scheduled, not yet dispatched or cancelled) events.
    [[nodiscard]] std::size_t pending() const noexcept { return live_; }

    [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

private:
    /// What the priority queue sifts: a POD. `seq` is the global schedule
    /// order — it breaks same-timestamp ties FIFO and pins each entry to the
    /// slab occupant it was created for.
    struct HeapEntry {
        SimTime at;
        std::uint64_t seq;
        std::uint32_t slot;
    };
    struct Later {
        bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
            if (a.at != b.at) return a.at > b.at;
            return a.seq > b.seq;
        }
    };
    /// Slab entry: the callback plus the seq of the event occupying the slot
    /// (0 = cancelled or dispatched; the heap entry is stale). 64 bytes.
    struct Slot {
        Callback cb;
        std::uint64_t seq = 0;
    };

    /// Pops stale (cancelled) entries off the top, recycling their slots;
    /// returns true if a live event remains.
    bool purge_cancelled_top();

    std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later> queue_;
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> free_slots_;
    SimTime now_{};
    std::uint64_t next_seq_ = 1;
    std::size_t live_ = 0;
    Stats stats_;
};

}  // namespace netsession::sim
