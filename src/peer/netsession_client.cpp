#include "peer/netsession_client.hpp"

#include <algorithm>
#include <cassert>

namespace netsession::peer {

namespace {
std::uint64_t intro_key(Guid guid, ObjectId object) noexcept {
    return (guid.hi ^ guid.lo) * 0x9E3779B97F4A7C15ULL ^ (object.hi ^ object.lo);
}

Digest256 corrupted(Digest256 d) noexcept {
    d.bytes[0] ^= 0xFF;  // any bit flip fails verification
    return d;
}
}  // namespace

NetSessionClient::NetSessionClient(net::World& world, control::ControlPlane& plane,
                                   edge::EdgeNetwork& edges, const edge::Catalog& catalog,
                                   PeerRegistry& registry, Guid guid, HostId host,
                                   ClientConfig config, Rng rng)
    : world_(&world),
      plane_(&plane),
      edges_(&edges),
      catalog_(&catalog),
      registry_(&registry),
      guid_(guid),
      host_(host),
      config_(registry.intern_config(config)),
      uploads_enabled_(config.uploads_enabled),
      version_(config.software_version),
      reconnect_delay_s_(config.reconnect_base_s),
      base_up_(world.flows().up_capacity(host)),
      res_(std::make_unique<Resident>()) {
    res_->rng = rng;
    registry_->add(guid_, this);
    // Clients are born offline; with hibernation on, the (nearly empty)
    // resident block is demoted immediately, so constructing a 1M-peer
    // population never holds more than one resident client at a time.
    if (config_->hibernate_offline) hibernate();
}

NetSessionClient::~NetSessionClient() {
    registry_->cold().free(cold_blob_);
    if (registry_->find(guid_) == this) registry_->remove(guid_);
}

// --- hibernation -------------------------------------------------------------
//
// Cold blob layout, in write order (all fields trivially copyable; counts are
// u32; raw pointers are stored verbatim — this is an in-memory snapshot, not
// a disk format). The cache section comes first so the auditor's per-tick
// has_cached() probes stay O(cache entries):
//   Rng::State
//   cache:              n × { ObjectId, SimTime cached_at }
//   chain:              n × SecondaryGuid
//   source_failures:    n × { Guid, int strikes }
//   blacklist:          n × { Guid, SimTime expiry }
//   uploaded_per_object n × { ObjectId, Bytes }
//   pending reports:    n × { DownloadRecord, m × TransferRecord }
//   downloads:          n × { ObjectId, CatalogEntry*, EdgeServer*, epoch,
//                             edge_attempt, bytes_infra, bytes_peers,
//                             start_time, peers_initially_returned,
//                             corrupt_pieces, u8 sequential, u32 piece_count,
//                             ⌈pieces/64⌉ × u64 have-bitmap,
//                             m × { Guid, IpAddr, Bytes } per-source ledger }
// Everything stop()/crash() already cleared (sources, attempted handshakes,
// tokens, watchdogs) is omitted: hibernation only happens while offline, and
// every download is paused with its transfers torn down.

namespace {

void skip_counted(ColdReader& rd, std::size_t elem_bytes) {
    const auto n = rd.get<std::uint32_t>();
    rd.skip<std::uint8_t>(static_cast<std::size_t>(n) * elem_bytes);
}

/// Positions a fresh blob reader at the downloads section.
void skip_to_cold_downloads(ColdReader& rd) {
    rd.skip<Rng::State>(1);
    skip_counted(rd, sizeof(ObjectId) + sizeof(sim::SimTime));      // cache
    skip_counted(rd, sizeof(SecondaryGuid));                        // chain
    skip_counted(rd, sizeof(Guid) + sizeof(int));                   // source_failures
    skip_counted(rd, sizeof(Guid) + sizeof(sim::SimTime));          // blacklist
    skip_counted(rd, sizeof(ObjectId) + sizeof(Bytes));             // uploaded_per_object
    const auto pending = rd.get<std::uint32_t>();
    for (std::uint32_t i = 0; i < pending; ++i) {
        rd.skip<trace::DownloadRecord>(1);
        skip_counted(rd, sizeof(trace::TransferRecord));
    }
}

/// The fixed POD prefix of one cold download entry.
struct ColdDownloadHead {
    ObjectId object;
    const edge::CatalogEntry* entry;
    edge::EdgeServer* edge;
    std::uint32_t epoch;
    std::uint32_t edge_attempt;
    Bytes bytes_infra;
    Bytes bytes_peers;
    sim::SimTime start_time;
    int peers_initially_returned;
    int corrupt_pieces;
    bool sequential;
};

ColdDownloadHead read_cold_download_head(ColdReader& rd) {
    ColdDownloadHead h;
    h.object = rd.get<ObjectId>();
    h.entry = rd.get<const edge::CatalogEntry*>();
    h.edge = rd.get<edge::EdgeServer*>();
    h.epoch = rd.get<std::uint32_t>();
    h.edge_attempt = rd.get<std::uint32_t>();
    h.bytes_infra = rd.get<Bytes>();
    h.bytes_peers = rd.get<Bytes>();
    h.start_time = rd.get<sim::SimTime>();
    h.peers_initially_returned = rd.get<int>();
    h.corrupt_pieces = rd.get<int>();
    h.sequential = rd.get<std::uint8_t>() != 0;
    return h;
}

}  // namespace

void NetSessionClient::write_cold(ColdWriter& w) const {
    const Resident& r = *res_;
    w.put(r.rng.state());
    w.put(static_cast<std::uint32_t>(r.cache.size()));
    for (const auto& [object, when] : r.cache) {
        w.put(object);
        w.put(when);
    }
    w.put_counted(r.chain.data(), r.chain.size());
    w.put(static_cast<std::uint32_t>(r.source_failures.size()));
    for (const auto& [guid, strikes] : r.source_failures) {
        w.put(guid);
        w.put(strikes);
    }
    w.put(static_cast<std::uint32_t>(r.blacklist.size()));
    for (const auto& [guid, expiry] : r.blacklist) {
        w.put(guid);
        w.put(expiry);
    }
    w.put(static_cast<std::uint32_t>(r.uploaded_per_object.size()));
    for (const auto& [object, bytes] : r.uploaded_per_object) {
        w.put(object);
        w.put(bytes);
    }
    w.put(static_cast<std::uint32_t>(r.pending.size()));
    for (const auto& [record, transfers] : r.pending) {
        w.put(record);
        w.put_counted(transfers.data(), transfers.size());
    }
    w.put(static_cast<std::uint32_t>(r.downloads.size()));
    for (const auto& [object, handle] : r.downloads) {
        const Download& d = registry_->downloads().get(handle);
        // Offline invariants stop()/crash() established; the blob relies on
        // them (nothing transfer-related is serialized).
        assert(d.paused && !d.edge_transferring && d.sources.empty() &&
               d.open_attempts.empty() && d.pending_attempts == 0);
        w.put(object);
        w.put(d.entry);
        w.put(d.edge);
        w.put(d.epoch);
        w.put(d.edge_attempt);
        w.put(d.bytes_infra);
        w.put(d.bytes_peers);
        w.put(d.start_time);
        w.put(d.peers_initially_returned);
        w.put(d.corrupt_pieces);
        w.put(static_cast<std::uint8_t>(d.options.sequential ? 1 : 0));
        const auto pieces = static_cast<std::uint32_t>(d.have.size());
        w.put(pieces);
        std::uint64_t word = 0;
        for (std::uint32_t i = 0; i < pieces; ++i) {
            if (d.have.has(i)) word |= std::uint64_t{1} << (i % 64);
            if (i % 64 == 63) {
                w.put(word);
                word = 0;
            }
        }
        if (pieces % 64 != 0) w.put(word);
        w.put(static_cast<std::uint32_t>(d.per_source_bytes.size()));
        for (const auto& [from, detail] : d.per_source_bytes) {
            w.put(from);
            w.put(detail.first);
            w.put(detail.second);
        }
    }
}

void NetSessionClient::hibernate() {
    if (running_ || res_ == nullptr) return;
    if (!config_->hibernate_offline) return;  // NS_NO_HIBERNATE escape hatch

    // Park the per-download callbacks shell-side (non-POD; the blob holds
    // raw bytes only), in downloads-map insertion order.
    cold_aux_.clear();
    for (const auto& [object, handle] : res_->downloads) {
        Download& d = registry_->downloads().get(handle);
        cold_aux_.push_back(ColdAux{std::move(d.on_finish), std::move(d.options.on_piece)});
    }

    ColdWriter& w = registry_->cold_writer();
    w.clear();
    write_cold(w);
    cold_blob_ = registry_->cold().store(w.data(), w.size());

    // The pooled Download slots go back to the pool — a hibernated client
    // holds no arena slots (the auditor's accounting depends on this).
    for (const auto& [object, handle] : res_->downloads) registry_->downloads().release(handle);
    res_.reset();
}

void NetSessionClient::ensure_resident() {
    if (res_ != nullptr) return;
    res_ = std::make_unique<Resident>();
    Resident& r = *res_;
    ColdReader rd(registry_->cold().data(cold_blob_), cold_blob_.size);
    r.rng.restore(rd.get<Rng::State>());
    const auto ncache = rd.get<std::uint32_t>();
    for (std::uint32_t i = 0; i < ncache; ++i) {
        const auto object = rd.get<ObjectId>();
        const auto when = rd.get<sim::SimTime>();
        r.cache[object] = when;
    }
    const auto nchain = rd.get<std::uint32_t>();
    r.chain.reserve(nchain);
    for (std::uint32_t i = 0; i < nchain; ++i) r.chain.push_back(rd.get<SecondaryGuid>());
    const auto nfail = rd.get<std::uint32_t>();
    for (std::uint32_t i = 0; i < nfail; ++i) {
        const auto guid = rd.get<Guid>();
        const auto strikes = rd.get<int>();
        r.source_failures[guid] = strikes;
    }
    const auto nban = rd.get<std::uint32_t>();
    for (std::uint32_t i = 0; i < nban; ++i) {
        const auto guid = rd.get<Guid>();
        const auto expiry = rd.get<sim::SimTime>();
        r.blacklist[guid] = expiry;
    }
    const auto nup = rd.get<std::uint32_t>();
    for (std::uint32_t i = 0; i < nup; ++i) {
        const auto object = rd.get<ObjectId>();
        const auto bytes = rd.get<Bytes>();
        r.uploaded_per_object[object] = bytes;
    }
    const auto npending = rd.get<std::uint32_t>();
    r.pending.reserve(npending);
    for (std::uint32_t i = 0; i < npending; ++i) {
        const auto record = rd.get<trace::DownloadRecord>();
        const auto ntr = rd.get<std::uint32_t>();
        std::vector<trace::TransferRecord> transfers;
        transfers.reserve(ntr);
        for (std::uint32_t t = 0; t < ntr; ++t)
            transfers.push_back(rd.get<trace::TransferRecord>());
        r.pending.emplace_back(record, std::move(transfers));
    }
    const auto ndl = rd.get<std::uint32_t>();
    auto& pool = registry_->downloads();
    for (std::uint32_t i = 0; i < ndl; ++i) {
        const ColdDownloadHead head = read_cold_download_head(rd);
        const DownloadHandle handle = pool.acquire();
        Download& d = pool.get(handle);
        d.reset();
        d.entry = head.entry;
        d.edge = head.edge;
        d.epoch = head.epoch;  // stale pre-hibernation callbacks must still miss
        d.edge_attempt = head.edge_attempt;
        d.bytes_infra = head.bytes_infra;
        d.bytes_peers = head.bytes_peers;
        d.start_time = head.start_time;
        d.peers_initially_returned = head.peers_initially_returned;
        d.corrupt_pieces = head.corrupt_pieces;
        d.options.sequential = head.sequential;
        d.on_finish = std::move(cold_aux_[i].on_finish);
        d.options.on_piece = std::move(cold_aux_[i].on_piece);
        const auto pieces = rd.get<std::uint32_t>();
        d.have.reset(pieces);
        d.full.reset_full(pieces);
        d.picker.reset(pieces);
        for (std::uint32_t base = 0; base < pieces; base += 64) {
            const auto word = rd.get<std::uint64_t>();
            const std::uint32_t top = std::min(pieces - base, 64u);
            for (std::uint32_t b = 0; b < top; ++b)
                if ((word >> b) & 1u) d.have.set(base + b);
        }
        d.paused = true;
        const auto nsrc = rd.get<std::uint32_t>();
        for (std::uint32_t s = 0; s < nsrc; ++s) {
            const auto from = rd.get<Guid>();
            const auto ip = rd.get<net::IpAddr>();
            const auto bytes = rd.get<Bytes>();
            auto& [slot_ip, slot_total] = d.per_source_bytes[from];
            slot_ip = ip;
            slot_total = bytes;
        }
        r.downloads[head.object] = handle;
    }
    assert(rd.done());
    cold_aux_.clear();
    registry_->cold().free(cold_blob_);
    cold_blob_ = ColdStore::BlobRef{};
    // Upload-ledger deltas that raced hibernation (the ledger is lookup-only,
    // so folding them in late is unobservable).
    for (const auto& [object, bytes] : cold_uploaded_) r.uploaded_per_object[object] += bytes;
    cold_uploaded_.clear();
}

control::PeerDescriptor NetSessionClient::descriptor() const {
    const net::Attachment& a = world_->host(host_).attach;
    const net::CountryInfo& c = net::country(a.location.country);
    return control::PeerDescriptor{guid_, host_,      a.ip,     a.nat,
                                   a.asn, c.id,       c.continent, c.region};
}

control::LoginInfo NetSessionClient::make_login_info() const {
    control::LoginInfo info;
    info.desc = descriptor();
    info.software_version = version_;
    info.uploads_enabled = uploads_enabled_;
    // Last five secondary GUIDs, newest first (§6.2).
    for (std::size_t i = 0; i < info.secondary_guids.size() && i < res_->chain.size(); ++i)
        info.secondary_guids[i] = res_->chain[res_->chain.size() - 1 - i];
    info.cached_objects = cached_objects();
    return info;
}

std::vector<ObjectId> NetSessionClient::cached_objects() const {
    std::vector<ObjectId> out;
    if (res_ != nullptr) {
        out.reserve(res_->cache.size());
        for (const auto& [object, when] : res_->cache) out.push_back(object);
        return out;
    }
    if (!cold_blob_.valid()) return out;
    ColdReader rd(registry_->cold().data(cold_blob_), cold_blob_.size);
    rd.skip<Rng::State>(1);
    const auto n = rd.get<std::uint32_t>();
    const sim::SimTime now = world_->simulator().now();
    for (std::uint32_t i = 0; i < n; ++i) {
        const auto object = rd.get<ObjectId>();
        const auto when = rd.get<sim::SimTime>();
        // Retention expiry is applied lazily on cold entries (their eviction
        // timers no-op while hibernated), mirroring the timer's cutoff.
        if (now - when < config_->cache_retention) out.push_back(object);
    }
    return out;
}

bool NetSessionClient::has_cached(ObjectId object) const {
    if (res_ != nullptr) return res_->cache.contains(object);
    if (!cold_blob_.valid()) return false;
    ColdReader rd(registry_->cold().data(cold_blob_), cold_blob_.size);
    rd.skip<Rng::State>(1);
    const auto n = rd.get<std::uint32_t>();
    const sim::SimTime now = world_->simulator().now();
    for (std::uint32_t i = 0; i < n; ++i) {
        const auto cached = rd.get<ObjectId>();
        const auto when = rd.get<sim::SimTime>();
        if (cached == object) return now - when < config_->cache_retention;
    }
    return false;
}

// --- lifecycle ---------------------------------------------------------------

void NetSessionClient::start() {
    if (running_) return;
    ensure_resident();
    running_ = true;
    // A fresh secondary GUID is chosen every time the software starts (§6.2).
    res_->chain.push_back(SecondaryGuid{res_->rng.next(), res_->rng.next()});

    // Lazy cache eviction for retention that elapsed while offline. The >=
    // mirrors the eviction timer's cutoff exactly (the timer fires at
    // cached_at + retention and evicts there), so a hibernated client — whose
    // timers no-op while it is demoted — converges to the same cache content
    // as a resident one the moment it comes back.
    const auto now = world_->simulator().now();
    res_->evict_scratch.clear();
    for (const auto& [object, when] : res_->cache)
        if (now - when >= config_->cache_retention) res_->evict_scratch.push_back(object);
    for (const auto object : res_->evict_scratch) res_->cache.erase(object);

    // Connectivity discovery, then the persistent control connection. The
    // probe can be silently lost (STUN blackout, partition); a timeout makes
    // sure startup never wedges on it — the client then proceeds with a
    // conservative NAT classification (§3.8 degraded mode).
    const std::uint32_t attempt = ++stun_attempt_;
    stun_pending_ = true;
    plane_->closest_stun(host_).probe(host_, [this, attempt](control::ConnectivityReport) {
        if (!running_ || attempt != stun_attempt_) return;
        const bool was_pending = stun_pending_;
        stun_pending_ = false;
        conservative_nat_ = false;  // fresh, authoritative classification
        if (was_pending) connect_control_plane();
    });
    world_->simulator().schedule_after(sim::seconds(config_->stun_timeout_s), [this, attempt] {
        if (!running_ || attempt != stun_attempt_ || !stun_pending_) return;
        stun_pending_ = false;
        conservative_nat_ = true;
        note_degradation(trace::DegradationKind::stun_timeout);
        connect_control_plane();
    });

    if (config_->resume_on_start)
        for (const auto& [object, handle] : res_->downloads)
            if (registry_->downloads().get(handle).paused) resume_download(object);
}

void NetSessionClient::stop() {
    if (!running_) return;
    running_ = false;

    // Active downloads pause; they can be continued later (§3.3).
    for (const auto& [object, handle] : res_->downloads) {
        Download& d = registry_->downloads().get(handle);
        if (!d.paused) {
            d.paused = true;
            stop_transfers(d, /*notify_remotes=*/true);
        }
    }
    // Downloads we were serving break off.
    for (const auto& [downloader, object] : res_->upload_conns) {
        if (NetSessionClient* remote = registry_->find(downloader)) {
            const Guid self = guid_;
            world_->send(host_, remote->host(),
                         [remote, self, object] { remote->on_source_lost(self, object); });
        }
    }
    res_->upload_conns.clear();
    res_->introductions.clear();

    if (cn_ != nullptr) {
        control::ConnectionNode* cn = cn_;
        const Guid self = guid_;
        world_->send(host_, cn->host(), [cn, self] { cn->logout(self); });
        cn_ = nullptr;
    }
    login_in_flight_ = false;
    stun_pending_ = false;
}

void NetSessionClient::crash() {
    if (!running_) return;
    running_ = false;
    // Downloads pause exactly as on a clean stop (resumable on disk), but
    // nothing is announced: no goodbyes to transfer partners, no CN logout —
    // the session just goes stale server-side.
    for (const auto& [object, handle] : res_->downloads) {
        Download& d = registry_->downloads().get(handle);
        if (!d.paused) {
            d.paused = true;
            stop_transfers(d, /*notify_remotes=*/false);
        }
    }
    res_->upload_conns.clear();
    res_->introductions.clear();
    // Everything still moving through this host — chiefly uploads we were
    // serving — dies with the machine; downloaders' watchdogs must notice.
    world_->drop_host_flows(host_);
    cn_ = nullptr;
    login_in_flight_ = false;
    stun_pending_ = false;
}

// --- control-plane connectivity ------------------------------------------------

void NetSessionClient::connect_control_plane() {
    if (!running_ || cn_ != nullptr || login_in_flight_) return;
    control::ConnectionNode* cn = plane_->closest_cn(host_);
    if (cn == nullptr) {
        // Entire control plane unreachable; keep retrying in the background.
        // Downloads keep working straight off the edge servers (§3.8).
        schedule_reconnect();
        return;
    }
    login_in_flight_ = true;
    const std::uint32_t attempt = ++login_attempt_;
    const control::LoginInfo info = make_login_info();
    world_->send(host_, cn->host(), [this, cn, info, attempt] {
        if (!cn->login(*this, info)) {
            // CN down or its admission limiter deferred us; back off.
            world_->send(cn->host(), host_, [this, attempt] { on_login_failed(attempt); });
            return;
        }
        world_->send(cn->host(), host_, [this, cn, attempt] { on_login_ok(cn, attempt); });
    });
    // Request or reply may be lost outright (CN died mid-handshake, network
    // partition); without this timeout login_in_flight_ would wedge forever.
    world_->simulator().schedule_after(sim::seconds(config_->login_timeout_s), [this, attempt] {
        if (attempt != login_attempt_ || !login_in_flight_) return;
        login_in_flight_ = false;
        note_degradation(trace::DegradationKind::login_timeout);
        schedule_reconnect();
    });
}

void NetSessionClient::on_login_ok(control::ConnectionNode* cn, std::uint32_t attempt) {
    if (attempt != login_attempt_ || cn_ != nullptr || !running_) {
        // Stale success (timed out, superseded, or the client stopped): the
        // CN-side session is a duplicate; close it — unless a newer attempt
        // landed on the very same CN, whose live session must survive.
        if (cn != cn_) {
            const Guid self = guid_;
            world_->send(host_, cn->host(), [cn, self] { cn->logout(self); });
        }
        return;
    }
    login_in_flight_ = false;
    cn_ = cn;
    reconnect_delay_s_ = config_->reconnect_base_s;
    flush_pending_reports();
    kick_downloads();
}

void NetSessionClient::on_login_failed(std::uint32_t attempt) {
    if (attempt != login_attempt_ || !login_in_flight_) return;
    login_in_flight_ = false;
    schedule_reconnect();
}

void NetSessionClient::schedule_reconnect() {
    if (!running_) return;
    // Exponential backoff with jitter keeps reconnection storms smooth when
    // a CN dies with >150k peers attached (§3.8).
    const double delay = reconnect_delay_s_ * (1.0 + res_->rng.uniform());
    reconnect_delay_s_ = std::min(reconnect_delay_s_ * 2.0, config_->reconnect_max_s);
    world_->simulator().schedule_after(sim::seconds(delay), [this] {
        if (running_ && cn_ == nullptr) connect_control_plane();
    });
}

void NetSessionClient::on_disconnected() {
    cn_ = nullptr;
    if (running_) schedule_reconnect();
}

void NetSessionClient::on_re_add_request() {
    if (!running_ || cn_ == nullptr || !uploads_enabled_) return;
    for (const auto& [object, when] : res_->cache) announce_object(object, /*readd=*/true);
}

void NetSessionClient::on_introduction(const control::PeerDescriptor& downloader,
                                       ObjectId object) {
    if (!running_) return;
    res_->introductions.insert(intro_key(downloader.guid, object));
}

void NetSessionClient::on_upgrade_available(std::uint32_t version) {
    if (version <= version_) return;
    // Automated background upgrade, spread over several minutes so the
    // whole population does not restart at once (§3.8).
    const double delay_s = res_->rng.uniform(30.0, 900.0);
    world_->simulator().schedule_after(sim::seconds(delay_s), [this, version] {
        if (version > version_) version_ = version;
    });
}

// --- downloads ------------------------------------------------------------------

void NetSessionClient::begin_download(ObjectId object, DownloadCallback on_finish,
                                      DownloadOptions options) {
    const edge::CatalogEntry* entry = catalog_->find(object);
    assert(entry != nullptr && "download of unpublished object");

    if (Download* known = find_download(object)) {
        // Already known (paused or running): treat as user-initiated resume.
        known->on_finish = std::move(on_finish);
        resume_download(object);
        return;
    }
    if (res_->cache.contains(object)) {
        // Stale copy: the DLM re-downloads (versions must not mix, §3.5).
        res_->cache.erase(object);
        withdraw_object(object);
    }

    NS_OBS_INC_P(metrics_, downloads_started);
    // Pool acquisition: a parked Download (from any client on this host set)
    // is reused with its arrays at capacity; reset() wipes the carried state.
    auto& pool = registry_->downloads();
    const DownloadHandle handle = pool.acquire();
    Download& d = pool.get(handle);
    d.reset();
    d.entry = entry;
    d.have.reset(entry->object.piece_count());
    d.full.reset_full(entry->object.piece_count());
    d.picker.reset(entry->object.piece_count());
    d.edge = &edges_->nearest(host_);
    d.start_time = world_->simulator().now();
    d.on_finish = std::move(on_finish);
    d.options = std::move(options);
    const std::uint32_t epoch = d.epoch;
    res_->downloads[object] = handle;

    request_from_edge(object);
    schedule_watchdog(object);

    // Authenticate to the edge for the p2p search token (§3.5), then query.
    // (`d` stays valid across the map insert: pool slots have stable
    // addresses.)
    const sim::Duration rtt =
        world_->latency(host_, d.edge->host()) + world_->latency(d.edge->host(), host_);
    world_->simulator().schedule_after(rtt, [this, object, epoch] {
        Download* dl = find_download(object);
        if (dl == nullptr || dl->epoch != epoch || dl->paused) return;
        dl->token = dl->edge->authorize(guid_, object);
        dl->has_token = true;
        if (dl->entry->policy.p2p_enabled) query_for_peers(object);
    });
}

std::vector<ObjectId> NetSessionClient::paused_downloads() const {
    std::vector<ObjectId> out;
    if (res_ != nullptr) {
        for (const auto& [object, handle] : res_->downloads)
            if (registry_->downloads().get(handle).paused) out.push_back(object);
        return out;
    }
    // Hibernated: every cold download is paused by construction.
    if (!cold_blob_.valid()) return out;
    ColdReader rd(registry_->cold().data(cold_blob_), cold_blob_.size);
    skip_to_cold_downloads(rd);
    const auto n = rd.get<std::uint32_t>();
    for (std::uint32_t i = 0; i < n; ++i) {
        const ColdDownloadHead head = read_cold_download_head(rd);
        const auto pieces = rd.get<std::uint32_t>();
        rd.skip<std::uint64_t>((pieces + 63) / 64);
        skip_counted(rd, sizeof(Guid) + sizeof(net::IpAddr) + sizeof(Bytes));
        out.push_back(head.object);
    }
    return out;
}

bool NetSessionClient::download_active(ObjectId object) const {
    const Download* d = find_download(object);
    return d != nullptr && !d->paused;
}

void NetSessionClient::pause_download(ObjectId object) {
    Download* d = find_download(object);
    if (d == nullptr || d->paused) return;
    d->paused = true;
    stop_transfers(*d, /*notify_remotes=*/true);
}

void NetSessionClient::resume_download(ObjectId object) {
    Download* dp = find_download(object);
    if (dp == nullptr) return;
    Download& d = *dp;
    if (running_ && !d.paused && !d.edge_transferring) {
        // Not paused, but possibly idle (e.g. freshly re-begun): kick it.
        request_from_edge(object);
        return;
    }
    if (!running_ || !d.paused) return;
    d.paused = false;
    d.has_token = false;
    const std::uint32_t epoch = d.epoch;
    request_from_edge(object);
    schedule_watchdog(object);
    const sim::Duration rtt =
        world_->latency(host_, d.edge->host()) + world_->latency(d.edge->host(), host_);
    world_->simulator().schedule_after(rtt, [this, object, epoch] {
        Download* dl = find_download(object);
        if (dl == nullptr || dl->epoch != epoch || dl->paused) return;
        dl->token = dl->edge->authorize(guid_, object);
        dl->has_token = true;
        if (dl->entry->policy.p2p_enabled) query_for_peers(object);
    });
}

void NetSessionClient::abort_download(ObjectId object, trace::DownloadOutcome outcome) {
    // Aborting while hibernated (a workload cancel event landing on an
    // offline user) wakes the client just long enough to finish the record,
    // then demotes it again.
    const bool was_hibernated = hibernated();
    ensure_resident();
    if (res_->downloads.contains(object)) finish_download(object, outcome);
    if (was_hibernated) hibernate();
}

void NetSessionClient::kick_downloads() {
    std::vector<ObjectId> objects;
    objects.reserve(res_->downloads.size());
    for (const auto& [object, handle] : res_->downloads)
        if (!registry_->downloads().get(handle).paused) objects.push_back(object);
    for (const auto object : objects) {
        Download* d = find_download(object);
        if (d == nullptr) continue;
        if (!d->edge_transferring) request_from_edge(object);
        if (d->entry->policy.p2p_enabled && d->has_token && d->sources.empty())
            query_for_peers(object);
    }
}

// --- edge transfer loop -----------------------------------------------------------

void NetSessionClient::request_from_edge(ObjectId object) {
    Download* dp = find_download(object);
    if (dp == nullptr) return;
    Download& d = *dp;
    if (!running_ || d.paused || d.edge_transferring) return;
    std::optional<swarm::PieceIndex> piece;
    if (d.options.sequential) {
        // Streaming: the edge owns the urgent window and may *duplicate* a
        // piece a slow peer is still transferring — the first verified copy
        // wins, so the play head never blocks on a peer's uplink.
        for (swarm::PieceIndex i = 0; i < d.have.size(); ++i)
            if (!d.have.has(i)) {
                piece = i;
                break;
            }
    } else {
        piece = d.picker.pick_from_edge(d.have, res_->rng);
    }
    if (!piece) return;  // everything left is in flight from peers
    if (!d.options.sequential) d.picker.set_in_flight(*piece, true);
    d.edge_piece = *piece;
    d.edge_transferring = true;
    d.edge_started_at = world_->simulator().now();
    const std::uint32_t epoch = d.epoch;
    const std::uint32_t attempt = ++d.edge_attempt;
    edge::EdgeServer* edge = d.edge;
    // The HTTP request crosses the network before the transfer starts. Both
    // the request and the completion validate the attempt generation: if the
    // watchdog declared a stall (and possibly remapped) while this request
    // was in flight, the stale request must not start a competing flow.
    world_->send(host_, edge->host(), [this, object, epoch, attempt, edge, piece = *piece] {
        Download* dl = find_download(object);
        if (dl == nullptr || dl->epoch != epoch || dl->edge_attempt != attempt) return;
        dl->edge_flow = edge->serve_piece(
            host_, guid_, dl->entry->object, piece,
            [this, object, epoch, attempt, piece](Digest256 digest) {
                on_edge_piece(object, epoch, attempt, piece, digest);
            });
    });
}

void NetSessionClient::on_edge_piece(ObjectId object, std::uint32_t epoch, std::uint32_t attempt,
                                     swarm::PieceIndex piece, Digest256 digest) {
    Download* dp = find_download(object);
    if (dp == nullptr || dp->epoch != epoch || dp->edge_attempt != attempt) return;
    Download& d = *dp;
    d.edge_transferring = false;
    d.edge_flow = net::FlowId{};
    d.edge_retry_delay_s = 0;  // the edge path works again; reset the backoff
    if (!d.options.sequential) d.picker.set_in_flight(piece, false);

    if (res_->rng.chance(config_->corruption_prob_edge)) digest = corrupted(digest);
    if (!d.entry->object.verify(piece, digest)) {
        ++d.corrupt_pieces;
        NS_OBS_INC_P(metrics_, corrupt_pieces);
        plane_->monitoring().report_problem(guid_, control::ProblemKind::piece_corruption);
        if (d.corrupt_pieces > config_->max_corrupt_pieces) {
            finish_download(object, trace::DownloadOutcome::failed_system);
            return;
        }
        request_from_edge(object);
        return;
    }

    const Bytes len = d.entry->object.piece_length(piece);
    d.bytes_infra += len;
    NS_OBS_ADD_P(metrics_, bytes_from_edge, len);
    if (d.have.set(piece)) {
        // (A duplicate of a piece a peer delivered meanwhile is paid for but
        // announced only once.)
        if (d.options.on_piece) d.options.on_piece(piece);
    }
    if (d.have.complete()) {
        finish_download(object, trace::DownloadOutcome::completed);
        return;
    }
    request_from_edge(object);
}

// --- p2p side -----------------------------------------------------------------------

void NetSessionClient::query_for_peers(ObjectId object) {
    Download* dp = find_download(object);
    if (dp == nullptr) return;
    Download& d = *dp;
    if (!running_ || d.paused || cn_ == nullptr || !d.has_token || d.query_outstanding) return;
    d.query_outstanding = true;
    const std::uint32_t epoch = d.epoch;
    control::ConnectionNode* cn = cn_;
    const Guid self = guid_;
    const edge::AuthToken token = d.token;
    world_->send(host_, cn->host(), [this, cn, self, object, token, epoch] {
        cn->query(self, object, token, /*want=*/40,
                  [this, object, epoch](std::vector<control::PeerDescriptor> peers) {
                      on_query_reply(object, epoch, std::move(peers));
                  });
    });
    // The query or its reply can be lost (CN failure mid-request, partition);
    // clear the outstanding flag so later re-queries are not blocked forever.
    world_->simulator().schedule_after(sim::seconds(config_->query_timeout_s),
                                       [this, object, epoch] {
                                           Download* dl = find_download(object);
                                           if (dl == nullptr || dl->epoch != epoch ||
                                               !dl->query_outstanding)
                                               return;
                                           dl->query_outstanding = false;
                                           note_degradation(trace::DegradationKind::query_timeout);
                                       });
}

void NetSessionClient::on_query_reply(ObjectId object, std::uint32_t epoch,
                                      std::vector<control::PeerDescriptor> peers) {
    Download* dp = find_download(object);
    if (dp == nullptr || dp->epoch != epoch) return;
    Download& d = *dp;
    d.query_outstanding = false;
    if (d.peers_initially_returned < 0)
        d.peers_initially_returned = static_cast<int>(peers.size());
    if (d.paused) return;
    for (const auto& remote : peers) attempt_connection(object, remote);

    // Swarms warm up over time; keep looking while under-sourced
    // ("additional queries are issued until a sufficient number of peer
    // connections succeed", §3.7). `d` is still valid — pool addresses are
    // stable and attempt_connection never finishes a download synchronously.
    if (static_cast<int>(d.sources.size()) + d.pending_attempts < config_->target_peer_sources &&
        d.additional_queries < config_->max_additional_queries) {
        ++d.additional_queries;
        const std::uint32_t requery_epoch = d.epoch;
        world_->simulator().schedule_after(sim::seconds(config_->requery_interval_s),
                                           [this, object, requery_epoch] {
                                               Download* dl = find_download(object);
                                               if (dl == nullptr || dl->epoch != requery_epoch)
                                                   return;
                                               // Allow previously-failed peers another try.
                                               dl->attempted.clear();
                                               query_for_peers(object);
                                           });
    }
}

void NetSessionClient::attempt_connection(ObjectId object, const control::PeerDescriptor& remote) {
    Download* dp = find_download(object);
    if (dp == nullptr) return;
    Download& d = *dp;
    if (static_cast<int>(d.sources.size()) + d.pending_attempts >= config_->max_peer_sources)
        return;
    if (remote.guid == guid_) return;
    if (std::find(d.attempted.begin(), d.attempted.end(), remote.guid) != d.attempted.end())
        return;
    if (std::find_if(d.sources.begin(), d.sources.end(), [&](const PeerSource& s) {
            return s.desc.guid == remote.guid;
        }) != d.sources.end())
        return;
    d.attempted.push_back(remote.guid);

    // A source that failed repeatedly is benched; do not retry it yet.
    if (source_blacklisted(remote.guid)) {
        maybe_need_more_sources(object);
        return;
    }

    NetSessionClient* target = registry_->find(remote.guid);
    if (target == nullptr) {
        maybe_need_more_sources(object);
        return;
    }

    // Coordinated NAT traversal: the CN told both endpoints to connect
    // (§3.7); the punch itself still fails with some probability. Under a
    // STUN outage the client never learned its own NAT type and must assume
    // a conservative one (hole punching still usually works, just worse).
    const net::NatType my_nat = conservative_nat_ ? net::NatType::port_restricted
                                                  : world_->host(host_).attach.nat;
    if (!res_->rng.chance(net::traversal_success_probability(my_nat, remote.nat))) {
        plane_->monitoring().report_problem(guid_, control::ProblemKind::connect_failure);
        maybe_need_more_sources(object);
        return;
    }

    ++d.pending_attempts;
    const std::uint64_t seq = ++attempt_seq_;
    d.open_attempts.insert(seq);
    const std::uint32_t epoch = d.epoch;
    const control::PeerDescriptor me = descriptor();
    world_->send(host_, remote.host, [this, target, me, object, remote, epoch, seq] {
        target->handle_upload_request(me, object,
                                      [this, object, remote, epoch, seq](bool accepted) {
                                          on_connection_result(object, epoch, remote, seq,
                                                               accepted);
                                      });
    });
    // The handshake (or its answer) can be lost; reclaim the pending slot so
    // source accounting does not leak and re-queries stay possible.
    world_->simulator().schedule_after(sim::seconds(config_->query_timeout_s),
                                       [this, object, epoch, seq] {
                                           Download* dl = find_download(object);
                                           if (dl == nullptr || dl->epoch != epoch) return;
                                           if (dl->open_attempts.erase(seq) == 0) return;
                                           if (dl->pending_attempts > 0) --dl->pending_attempts;
                                           maybe_need_more_sources(object);
                                       });
}

void NetSessionClient::on_connection_result(ObjectId object, std::uint32_t epoch,
                                            const control::PeerDescriptor& remote,
                                            std::uint64_t seq, bool accepted) {
    Download* dp = find_download(object);
    if (dp == nullptr || dp->epoch != epoch || dp->open_attempts.erase(seq) == 0) {
        // The download moved on (or the attempt already timed out); release
        // the remote's upload slot.
        if (accepted) {
            if (NetSessionClient* target = registry_->find(remote.guid)) {
                const Guid self = guid_;
                world_->send(host_, remote.host,
                             [target, self, object] { target->on_upload_closed(self, object); });
            }
        }
        return;
    }
    Download& d = *dp;
    if (d.pending_attempts > 0) --d.pending_attempts;
    if (!accepted) {
        maybe_need_more_sources(object);
        return;
    }
    if (d.paused || static_cast<int>(d.sources.size()) >= config_->max_peer_sources) {
        if (NetSessionClient* target = registry_->find(remote.guid)) {
            const Guid self = guid_;
            world_->send(host_, remote.host,
                         [target, self, object] { target->on_upload_closed(self, object); });
        }
        return;
    }
    d.sources.push_back(PeerSource{remote, net::FlowId{}, 0, false, 0, 0, sim::SimTime{}});
    request_from_source(object, remote.guid);
}

void NetSessionClient::maybe_need_more_sources(ObjectId object) {
    Download* dp = find_download(object);
    if (dp == nullptr) return;
    Download& d = *dp;
    if (!running_ || d.paused || cn_ == nullptr || !d.entry->policy.p2p_enabled) return;
    const int live = static_cast<int>(d.sources.size()) + d.pending_attempts;
    if (live >= config_->target_peer_sources) return;
    if (d.additional_queries >= config_->max_additional_queries) return;
    if (d.query_outstanding) return;
    ++d.additional_queries;
    query_for_peers(object);
}

void NetSessionClient::request_from_source(ObjectId object, Guid source_guid) {
    Download* dp = find_download(object);
    if (dp == nullptr) return;
    Download& d = *dp;
    if (!running_ || d.paused) return;
    const auto sit = std::find_if(d.sources.begin(), d.sources.end(),
                                  [&](const PeerSource& s) { return s.desc.guid == source_guid; });
    if (sit == d.sources.end() || sit->transferring) return;
    PeerSource& src = *sit;

    // A partition may have opened since the source connected; a flow across
    // the cut could never deliver. Treat it like a stalled source.
    if (!world_->reachable(host_, src.desc.host)) {
        note_degradation(trace::DegradationKind::peer_stall);
        note_source_failure(source_guid);
        drop_source(d, source_guid, /*notify_remote=*/false);
        maybe_need_more_sources(object);
        if (!d.edge_transferring) request_from_edge(object);
        return;
    }

    // Streaming: peers prefetch ahead of the urgent window, which belongs to
    // the (fast, reliable) edge connection.
    auto piece = d.options.sequential
                     ? d.picker.pick_sequential(d.have, &d.full, /*skip_urgent=*/2)
                     : d.picker.pick_from_peer(d.have, d.full, res_->rng);
    if (!piece && d.options.sequential) piece = d.picker.pick_sequential(d.have, &d.full);
    if (!piece) return;  // all remaining pieces are in flight; source idles
    d.picker.set_in_flight(*piece, true);
    src.piece = *piece;
    src.transferring = true;
    src.started_at = world_->simulator().now();
    const Bytes len = d.entry->object.piece_length(*piece);
    const Digest256 digest = d.entry->object.correct_transfer_digest(*piece);
    const std::uint32_t epoch = d.epoch;
    const Guid from = src.desc.guid;
    src.flow = world_->flows().start_flow(
        src.desc.host, host_, len, d.entry->policy.upload_rate_cap,
        [this, object, epoch, from, piece = *piece, digest](net::FlowId) {
            on_peer_piece(object, epoch, from, piece, digest);
        });
}

void NetSessionClient::on_peer_piece(ObjectId object, std::uint32_t epoch, Guid from,
                                     swarm::PieceIndex piece, Digest256 digest) {
    Download* dp = find_download(object);
    if (dp == nullptr || dp->epoch != epoch) return;
    Download& d = *dp;
    const auto sit = std::find_if(d.sources.begin(), d.sources.end(),
                                  [&](const PeerSource& s) { return s.desc.guid == from; });
    if (sit == d.sources.end()) return;
    PeerSource& src = *sit;
    src.transferring = false;
    src.flow = net::FlowId{};
    d.picker.set_in_flight(piece, false);

    const Bytes len = d.entry->object.piece_length(piece);
    NetSessionClient* uploader = registry_->find(from);
    if (uploader != nullptr && uploader->corrupt_uploads()) digest = corrupted(digest);
    if (res_->rng.chance(config_->corruption_prob_peer)) digest = corrupted(digest);
    if (!d.entry->object.verify(piece, digest)) {
        // Discard the piece; it is never passed on to other peers (§3.5).
        ++d.corrupt_pieces;
        ++src.corrupt_pieces;
        NS_OBS_INC_P(metrics_, corrupt_pieces);
        plane_->monitoring().report_problem(guid_, control::ProblemKind::piece_corruption);
        if (d.corrupt_pieces > config_->max_corrupt_pieces) {
            finish_download(object, trace::DownloadOutcome::failed_system);
            return;
        }
        if (src.corrupt_pieces >= 3) {
            // A source that repeatedly fails verification has bad data;
            // disconnect it and fill in from elsewhere. It counts toward the
            // blacklist like any other repeated source failure.
            note_source_failure(from);
            drop_source(d, from, /*notify_remote=*/true);
            maybe_need_more_sources(object);
            if (!d.edge_transferring) request_from_edge(object);
            return;
        }
        request_from_source(object, from);
        return;
    }

    d.bytes_peers += len;
    NS_OBS_ADD_P(metrics_, bytes_from_peers, len);
    src.bytes += len;
    res_->source_failures.erase(from);  // a delivered piece clears the strike count
    auto& [ip, total] = d.per_source_bytes[from];
    ip = src.desc.ip;
    total += len;
    if (uploader != nullptr) uploader->note_uploaded(object, len);
    if (d.have.set(piece)) {
        if (d.options.on_piece) d.options.on_piece(piece);
    }

    if (d.have.complete()) {
        finish_download(object, trace::DownloadOutcome::completed);
        return;
    }
    request_from_source(object, from);
    // A completed piece may unblock idle connections (the piece they were
    // waiting on is no longer the only one missing).
    if (!d.edge_transferring) request_from_edge(object);
}

// --- upload side ---------------------------------------------------------------------

void NetSessionClient::handle_upload_request(const control::PeerDescriptor& downloader,
                                             ObjectId object, std::function<void(bool)> reply) {
    bool accept = running_ && uploads_enabled_ && res_->cache.contains(object);
    // Connections come through CN coordination only (hole punching needs it).
    if (accept && !res_->introductions.contains(intro_key(downloader.guid, object))) accept = false;
    if (accept &&
        static_cast<int>(res_->upload_conns.size()) >= config_->max_upload_connections)
        accept = false;
    // "peers upload each object at most a limited number of times" (§3.9):
    // the budget is full-object equivalents of uploaded bytes.
    if (accept) {
        const edge::CatalogEntry* entry = catalog_->find(object);
        const Bytes budget =
            entry == nullptr ? 0
                             : entry->object.size() *
                                   static_cast<Bytes>(config_->max_uploads_per_object);
        if (res_->uploaded_per_object[object] >= budget) {
            accept = false;
            withdraw_object(object);
        }
    }
    if (accept) res_->upload_conns.emplace_back(downloader.guid, object);
    world_->send(host_, downloader.host, [reply = std::move(reply), accept] { reply(accept); });
}

void NetSessionClient::on_upload_closed(Guid downloader, ObjectId object) {
    if (res_ == nullptr) return;  // hibernated: connections were already torn down
    const auto it = std::find(res_->upload_conns.begin(), res_->upload_conns.end(),
                              std::make_pair(downloader, object));
    if (it != res_->upload_conns.end()) res_->upload_conns.erase(it);
}

void NetSessionClient::drop_source(Download& d, Guid source_guid, bool notify_remote) {
    const auto sit = std::find_if(d.sources.begin(), d.sources.end(),
                                  [&](const PeerSource& s) { return s.desc.guid == source_guid; });
    if (sit == d.sources.end()) return;
    if (sit->transferring) {
        world_->flows().cancel_flow(sit->flow);
        d.picker.set_in_flight(sit->piece, false);
    }
    if (notify_remote) {
        if (NetSessionClient* remote = registry_->find(source_guid)) {
            const Guid self = guid_;
            const ObjectId object = d.entry->object.id();
            world_->send(host_, sit->desc.host, [remote, self, object] {
                remote->on_upload_closed(self, object);
            });
        }
    }
    d.sources.erase(sit);
}

void NetSessionClient::on_source_lost(Guid uploader, ObjectId object) {
    Download* dp = find_download(object);
    if (dp == nullptr) return;
    Download& d = *dp;
    const auto sit = std::find_if(d.sources.begin(), d.sources.end(),
                                  [&](const PeerSource& s) { return s.desc.guid == uploader; });
    if (sit == d.sources.end()) return;
    if (sit->transferring) {
        world_->flows().cancel_flow(sit->flow);  // partial piece is lost
        d.picker.set_in_flight(sit->piece, false);
    }
    d.sources.erase(sit);
    if (!d.paused) {
        maybe_need_more_sources(object);
        if (!d.edge_transferring) request_from_edge(object);
    }
}

// --- failure hardening -------------------------------------------------------------------

void NetSessionClient::note_degradation(trace::DegradationKind kind) {
    switch (kind) {
        case trace::DegradationKind::edge_stall: NS_OBS_INC_P(metrics_, edge_stalls); break;
        case trace::DegradationKind::edge_remapped: NS_OBS_INC_P(metrics_, edge_remaps); break;
        case trace::DegradationKind::peer_stall: NS_OBS_INC_P(metrics_, peer_stalls); break;
        case trace::DegradationKind::source_blacklisted:
            NS_OBS_INC_P(metrics_, blacklists);
            break;
        case trace::DegradationKind::query_timeout: NS_OBS_INC_P(metrics_, query_timeouts); break;
        case trace::DegradationKind::login_timeout: NS_OBS_INC_P(metrics_, login_timeouts); break;
        case trace::DegradationKind::stun_timeout: NS_OBS_INC_P(metrics_, stun_timeouts); break;
    }
    // Simulator-level telemetry (not part of the CN log schema): recorded
    // directly, because most degradations happen exactly when the control
    // plane is unreachable.
    trace::DegradationRecord rec;
    rec.guid = guid_;
    rec.time = world_->simulator().now();
    rec.kind = kind;
    plane_->trace_log().add(rec);
}

void NetSessionClient::note_source_failure(Guid source) {
    const int failures = ++res_->source_failures[source];
    if (failures < config_->blacklist_failures) return;
    res_->source_failures.erase(source);
    res_->blacklist[source] =
        world_->simulator().now() + sim::seconds(config_->blacklist_duration_s);
    note_degradation(trace::DegradationKind::source_blacklisted);
}

bool NetSessionClient::source_blacklisted(Guid source) {
    const auto it = res_->blacklist.find(source);
    if (it == res_->blacklist.end()) return false;
    if (world_->simulator().now() >= it->second) {
        res_->blacklist.erase(it);  // ban served; lazily expire
        return false;
    }
    return true;
}

void NetSessionClient::sweep_blacklist(sim::SimTime now) {
    // Lazy expiry in source_blacklisted() only fires when the same GUID is
    // looked up again; sources that never come back would accumulate forever
    // at 200k-peer scale. The watchdog ticks call this to keep the table
    // bounded by the set of bans that are actually still in force.
    if (res_->blacklist.empty()) return;
    res_->blacklist_scratch.clear();
    for (const auto& [source, expiry] : res_->blacklist)
        if (now >= expiry) res_->blacklist_scratch.push_back(source);
    for (const Guid source : res_->blacklist_scratch) res_->blacklist.erase(source);
}

void NetSessionClient::for_each_open_download(
    const std::function<void(const Download&)>& fn) const {
    if (res_ == nullptr) return;  // hibernated state is frozen; nothing live to visit
    for (const auto& [object, handle] : res_->downloads) fn(registry_->downloads().get(handle));
}

void NetSessionClient::schedule_watchdog(ObjectId object) {
    Download* dp = find_download(object);
    if (dp == nullptr) return;
    Download& d = *dp;
    const std::uint32_t epoch = d.epoch;
    d.watchdog = world_->simulator().schedule_after(
        sim::seconds(config_->watchdog_interval_s),
        [this, object, epoch] { watchdog_tick(object, epoch); });
}

void NetSessionClient::watchdog_tick(ObjectId object, std::uint32_t epoch) {
    Download* dp = find_download(object);
    if (dp == nullptr || dp->epoch != epoch || dp->paused) return;
    Download& d = *dp;
    const sim::SimTime now = world_->simulator().now();
    const sim::Duration grace = sim::seconds(config_->stall_grace_s);

    sweep_blacklist(now);

    // Stall detection is liveness-based: a transfer is healthy while its flow
    // exists, however slow it runs. A missing flow past the grace period
    // means the request was refused, lost, or the connection was cut.
    if (d.edge_transferring && !world_->flows().active(d.edge_flow) &&
        now - d.edge_started_at > grace) {
        note_degradation(trace::DegradationKind::edge_stall);
        if (!d.options.sequential) d.picker.set_in_flight(d.edge_piece, false);
        d.edge_transferring = false;
        d.edge_flow = net::FlowId{};
        // The abandoned request may still be crossing the network (its send
        // latency can exceed the grace period); invalidate it so it cannot
        // start a second flow racing the retry and double-counting bytes.
        ++d.edge_attempt;
        // Re-resolve DNS: a failed or partitioned edge maps to the
        // next-nearest live server.
        edge::EdgeServer* fresh = &edges_->nearest(host_);
        if (fresh != d.edge) {
            d.edge = fresh;
            note_degradation(trace::DegradationKind::edge_remapped);
        }
        schedule_edge_retry(object);
    }

    // Dead peer sources: flow gone without a completion (uploader crashed,
    // server cut the cross-partition flow, ...).
    std::vector<Guid> stalled;
    for (const PeerSource& src : d.sources)
        if (src.transferring && !world_->flows().active(src.flow) &&
            now - src.started_at > grace)
            stalled.push_back(src.desc.guid);
    for (const Guid source : stalled) {
        note_degradation(trace::DegradationKind::peer_stall);
        note_source_failure(source);
        drop_source(d, source, /*notify_remote=*/true);
    }
    if (!stalled.empty()) {
        maybe_need_more_sources(object);
        Download* after = find_download(object);
        if (after == nullptr) return;  // re-query finished it? be safe
        if (!after->edge_transferring && after->edge_retry_delay_s == 0)
            request_from_edge(object);
    }

    schedule_watchdog(object);
}

void NetSessionClient::schedule_edge_retry(ObjectId object) {
    Download* dp = find_download(object);
    if (dp == nullptr) return;
    Download& d = *dp;
    NS_OBS_INC_P(metrics_, edge_retries);
    // Capped exponential backoff: no hammering a dead edge every tick, quick
    // recovery once something changes (reset on the next delivered piece).
    d.edge_retry_delay_s = d.edge_retry_delay_s == 0
                               ? config_->edge_retry_base_s
                               : std::min(d.edge_retry_delay_s * 2.0, config_->edge_retry_max_s);
    const std::uint32_t epoch = d.epoch;
    world_->simulator().schedule_after(sim::seconds(d.edge_retry_delay_s),
                                       [this, object, epoch] {
                                           Download* dl = find_download(object);
                                           if (dl == nullptr || dl->epoch != epoch || dl->paused)
                                               return;
                                           if (!dl->edge_transferring) request_from_edge(object);
                                       });
}

// --- terminal handling ------------------------------------------------------------------

void NetSessionClient::stop_transfers(Download& d, bool notify_remotes) {
    ++d.epoch;  // invalidates every async callback of this download
    world_->simulator().cancel(d.watchdog);
    d.watchdog = sim::EventHandle{};
    d.open_attempts.clear();
    d.edge_retry_delay_s = 0;
    if (d.edge_transferring) {
        if (d.edge_flow.valid()) d.edge->abort(d.edge_flow);
        if (!d.options.sequential) d.picker.set_in_flight(d.edge_piece, false);
        d.edge_transferring = false;
        d.edge_flow = net::FlowId{};
    }
    for (PeerSource& src : d.sources) {
        if (src.transferring) {
            world_->flows().cancel_flow(src.flow);
            d.picker.set_in_flight(src.piece, false);
            src.transferring = false;
        }
        if (notify_remotes) {
            if (NetSessionClient* remote = registry_->find(src.desc.guid)) {
                const Guid self = guid_;
                const ObjectId object = d.entry->object.id();
                world_->send(host_, src.desc.host, [remote, self, object] {
                    remote->on_upload_closed(self, object);
                });
            }
        }
    }
    d.sources.clear();
    d.attempted.clear();
    d.pending_attempts = 0;
    d.additional_queries = 0;
    d.query_outstanding = false;
    d.has_token = false;
}

void NetSessionClient::finish_download(ObjectId object, trace::DownloadOutcome outcome) {
    const DownloadHandle* hp = res_->downloads.find_value(object);
    assert(hp != nullptr);
    const DownloadHandle handle = *hp;
    Download& d = registry_->downloads().get(handle);
    stop_transfers(d, /*notify_remotes=*/true);  // also cancels the watchdog

    trace::DownloadRecord rec;
    rec.guid = guid_;
    rec.object = object;
    rec.url_hash = d.entry->object.url_hash();
    rec.cp_code = d.entry->object.provider();
    rec.object_size = d.entry->object.size();
    rec.start = d.start_time;
    rec.end = world_->simulator().now();
    rec.bytes_from_infrastructure = d.bytes_infra;
    rec.bytes_from_peers = d.bytes_peers;
    rec.p2p_enabled = d.entry->policy.p2p_enabled;
    rec.peers_initially_returned = std::max(0, d.peers_initially_returned);
    rec.outcome = outcome;

    if (outcome == trace::DownloadOutcome::completed)
        NS_OBS_INC_P(metrics_, downloads_completed);
    else
        NS_OBS_INC_P(metrics_, downloads_failed);
    NS_OBS_OBSERVE_P(metrics_, download_bytes, d.bytes_infra + d.bytes_peers);
    NS_OBS_OBSERVE_P(metrics_, download_duration_s, (rec.end - rec.start).seconds());

    std::vector<trace::TransferRecord> transfers;
    const net::IpAddr my_ip = world_->host(host_).attach.ip;
    transfers.reserve(d.per_source_bytes.size());
    for (const auto& [from, detail] : d.per_source_bytes) {
        if (detail.second <= 0) continue;
        transfers.push_back(
            trace::TransferRecord{object, from, guid_, detail.first, my_ip, detail.second, rec.end});
    }

    DownloadCallback cb = std::move(d.on_finish);
    res_->downloads.erase(object);
    // Park the state for reuse; `d` must not be touched past this point.
    registry_->downloads().release(handle);

    if (outcome == trace::DownloadOutcome::completed) cache_object(object);
    if (tamper_) tamper_(rec);
    submit_report(rec, std::move(transfers));
    if (cb) cb(rec);
}

void NetSessionClient::submit_report(trace::DownloadRecord record,
                                     std::vector<trace::TransferRecord> transfers) {
    if (cn_ == nullptr) {
        // Usage statistics are batched and uploaded on the next login.
        res_->pending.emplace_back(record, std::move(transfers));
        return;
    }
    control::ConnectionNode* cn = cn_;
    world_->send(host_, cn->host(), [cn, record, transfers = std::move(transfers)] {
        cn->report_download(record);
        for (const auto& t : transfers) cn->report_transfer(t);
    });
}

void NetSessionClient::flush_pending_reports() {
    if (cn_ == nullptr) return;
    auto pending = std::move(res_->pending);
    res_->pending.clear();
    for (auto& [record, transfers] : pending) submit_report(record, std::move(transfers));
}

void NetSessionClient::flush_unfinished() {
    if (res_ != nullptr) {
        for (const auto& [object, handle] : res_->downloads) {
            const Download& d = registry_->downloads().get(handle);
            trace::DownloadRecord rec;
            rec.guid = guid_;
            rec.object = object;
            rec.url_hash = d.entry->object.url_hash();
            rec.cp_code = d.entry->object.provider();
            rec.object_size = d.entry->object.size();
            rec.start = d.start_time;
            rec.end = world_->simulator().now();
            rec.bytes_from_infrastructure = d.bytes_infra;
            rec.bytes_from_peers = d.bytes_peers;
            rec.p2p_enabled = d.entry->policy.p2p_enabled;
            rec.peers_initially_returned = std::max(0, d.peers_initially_returned);
            rec.outcome = d.paused ? trace::DownloadOutcome::aborted_by_user
                                   : trace::DownloadOutcome::in_progress;
            plane_->trace_log().add(rec);
        }
        return;
    }
    // Hibernated: read the downloads straight out of the cold blob. At 1M
    // peers the terminal flush must not rehydrate the (mostly offline)
    // population just to write a few records.
    if (!cold_blob_.valid()) return;
    ColdReader rd(registry_->cold().data(cold_blob_), cold_blob_.size);
    skip_to_cold_downloads(rd);
    const auto n = rd.get<std::uint32_t>();
    for (std::uint32_t i = 0; i < n; ++i) {
        const ColdDownloadHead head = read_cold_download_head(rd);
        const auto pieces = rd.get<std::uint32_t>();
        rd.skip<std::uint64_t>((pieces + 63) / 64);
        skip_counted(rd, sizeof(Guid) + sizeof(net::IpAddr) + sizeof(Bytes));
        trace::DownloadRecord rec;
        rec.guid = guid_;
        rec.object = head.object;
        rec.url_hash = head.entry->object.url_hash();
        rec.cp_code = head.entry->object.provider();
        rec.object_size = head.entry->object.size();
        rec.start = head.start_time;
        rec.end = world_->simulator().now();
        rec.bytes_from_infrastructure = head.bytes_infra;
        rec.bytes_from_peers = head.bytes_peers;
        rec.p2p_enabled = head.entry->policy.p2p_enabled;
        rec.peers_initially_returned = std::max(0, head.peers_initially_returned);
        // Cold downloads are paused by construction (hibernation only
        // happens offline, with every download paused).
        rec.outcome = trace::DownloadOutcome::aborted_by_user;
        plane_->trace_log().add(rec);
    }
}

// --- cache -----------------------------------------------------------------------------

void NetSessionClient::cache_object(ObjectId object) {
    res_->cache[object] = world_->simulator().now();
    res_->uploaded_per_object[object] = 0;  // a fresh copy resets the upload budget
    announce_object(object, /*readd=*/false);
    schedule_eviction(object);

    // Disk budget: evict the oldest copies beyond the cap.
    while (static_cast<int>(res_->cache.size()) > config_->max_cached_objects) {
        auto oldest = res_->cache.begin();
        for (auto it = res_->cache.begin(); it != res_->cache.end(); ++it)
            if (it->second < oldest->second) oldest = it;
        const ObjectId victim = oldest->first;
        res_->cache.erase(victim);
        withdraw_object(victim);
    }
}

void NetSessionClient::schedule_eviction(ObjectId object) {
    world_->simulator().schedule_after(config_->cache_retention, [this, object] {
        // Hibernated: the timer is lost, but start()'s lazy sweep (and the
        // cold-query retention cutoff) apply the same expiry rule.
        if (res_ == nullptr) return;
        const auto it = res_->cache.find(object);
        if (it == res_->cache.end()) return;
        if (world_->simulator().now() - it->second < config_->cache_retention) return;  // renewed
        res_->cache.erase(it);
        withdraw_object(object);
    });
}

void NetSessionClient::announce_object(ObjectId object, bool readd) {
    if (cn_ == nullptr || !uploads_enabled_) return;
    control::ConnectionNode* cn = cn_;
    const Guid self = guid_;
    world_->send(host_, cn->host(),
                 [cn, self, object, readd] { cn->register_copy(self, object, readd); });
}

void NetSessionClient::withdraw_object(ObjectId object) {
    if (cn_ == nullptr) return;
    control::ConnectionNode* cn = cn_;
    const Guid self = guid_;
    world_->send(host_, cn->host(), [cn, self, object] { cn->unregister_copy(self, object); });
}

// --- settings, traffic, mobility, install state -------------------------------------------

void NetSessionClient::set_uploads_enabled(bool enabled) {
    if (uploads_enabled_ == enabled) return;
    uploads_enabled_ = enabled;
    if (cn_ == nullptr) return;
    if (enabled) {
        for (const auto& [object, when] : res_->cache) announce_object(object, /*readd=*/false);
    } else {
        for (const auto& [object, when] : res_->cache) withdraw_object(object);
    }
}

void NetSessionClient::set_user_traffic(bool active) {
    if (user_traffic_ == active) return;
    user_traffic_ = active;
    // Uploads back off while the user's own traffic needs the link (§3.9);
    // downloads are user-initiated and keep their full share. Routed through
    // the world so an active AS degradation stays applied on top.
    world_->set_host_up_capacity(host_, active ? base_up_ * config_->user_traffic_upload_factor
                                               : base_up_);
}

void NetSessionClient::move_to(net::Location location, Asn asn, net::NatType nat) {
    world_->reattach(host_, location, asn, nat);
    if (cn_ != nullptr) {
        // The TCP connection does not survive the move; log in again so the
        // control plane sees the new address.
        control::ConnectionNode* cn = cn_;
        const Guid self = guid_;
        world_->send(host_, cn->host(), [cn, self] { cn->logout(self); });
        cn_ = nullptr;
    }
    if (running_) connect_control_plane();
}

NetSessionClient::InstallState NetSessionClient::snapshot_state() {
    ensure_resident();
    return InstallState{guid_, res_->chain, uploads_enabled_};
}

void NetSessionClient::restore_state(InstallState state) {
    ensure_resident();
    if (registry_->find(guid_) == this) registry_->remove(guid_);
    guid_ = state.guid;
    res_->chain = std::move(state.chain);
    uploads_enabled_ = state.uploads_enabled;
    registry_->add(guid_, this);
}

}  // namespace netsession::peer
