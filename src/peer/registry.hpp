// Data-plane peer registry.
//
// The simulator needs to route a p2p connection attempt to the remote
// client object. In the real system this is the downloader opening a TCP/UDP
// connection to the address the control plane handed it; here it is a lookup
// by GUID. (Control-plane routing uses control::ControlPlane::find_endpoint;
// this registry is the *data-plane* equivalent and also covers peers that
// are currently not connected to any CN.)
//
// The registry also owns the host-wide Download pool: per-download state is
// arena-allocated and *parked* on completion, so a 200k-peer run recycles a
// bounded working set of Download objects (with their source arrays, piece
// maps and hash tables at capacity) instead of churning the heap.
#pragma once

#include "common/arena.hpp"
#include "common/flat_hash.hpp"
#include "common/types.hpp"
#include "peer/download_state.hpp"

namespace netsession::peer {

class NetSessionClient;

class PeerRegistry {
public:
    void add(Guid guid, NetSessionClient* client) { clients_[guid] = client; }
    void remove(Guid guid) { clients_.erase(guid); }

    [[nodiscard]] NetSessionClient* find(Guid guid) const {
        NetSessionClient* const* slot = clients_.find_value(guid);
        return slot == nullptr ? nullptr : *slot;
    }

    [[nodiscard]] std::size_t size() const noexcept { return clients_.size(); }

    /// Shared per-download state pool (see peer/download_state.hpp).
    [[nodiscard]] arena::Pool<Download>& downloads() noexcept { return download_pool_; }
    [[nodiscard]] const arena::Pool<Download>& downloads() const noexcept {
        return download_pool_;
    }

    /// Storage accounting for the mem.* gauges.
    [[nodiscard]] double table_load_factor() const noexcept { return clients_.load_factor(); }

private:
    FlatHashMap<Guid, NetSessionClient*> clients_;
    arena::Pool<Download> download_pool_;
};

}  // namespace netsession::peer
