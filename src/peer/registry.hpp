// Data-plane peer registry.
//
// The simulator needs to route a p2p connection attempt to the remote
// client object. In the real system this is the downloader opening a TCP/UDP
// connection to the address the control plane handed it; here it is a lookup
// by GUID. (Control-plane routing uses control::ControlPlane::find_endpoint;
// this registry is the *data-plane* equivalent and also covers peers that
// are currently not connected to any CN.)
//
// The registry also owns the host-wide Download pool: per-download state is
// arena-allocated and *parked* on completion, so a 200k-peer run recycles a
// bounded working set of Download objects (with their source arrays, piece
// maps and hash tables at capacity) instead of churning the heap.
#pragma once

#include <cstring>
#include <memory>
#include <vector>

#include "common/arena.hpp"
#include "common/flat_hash.hpp"
#include "common/types.hpp"
#include "peer/client_config.hpp"
#include "peer/cold_store.hpp"
#include "peer/download_state.hpp"

namespace netsession::peer {

class NetSessionClient;

class PeerRegistry {
public:
    void add(Guid guid, NetSessionClient* client) { clients_[guid] = client; }
    void remove(Guid guid) { clients_.erase(guid); }

    [[nodiscard]] NetSessionClient* find(Guid guid) const {
        NetSessionClient* const* slot = clients_.find_value(guid);
        return slot == nullptr ? nullptr : *slot;
    }

    [[nodiscard]] std::size_t size() const noexcept { return clients_.size(); }

    /// Shared per-download state pool (see peer/download_state.hpp).
    [[nodiscard]] arena::Pool<Download>& downloads() noexcept { return download_pool_; }
    [[nodiscard]] const arena::Pool<Download>& downloads() const noexcept {
        return download_pool_;
    }

    /// Storage accounting for the mem.* gauges.
    [[nodiscard]] double table_load_factor() const noexcept { return clients_.load_factor(); }

    /// Chunked arena holding hibernated clients' serialized state (see
    /// peer/cold_store.hpp).
    [[nodiscard]] ColdStore& cold() noexcept { return cold_; }
    [[nodiscard]] const ColdStore& cold() const noexcept { return cold_; }
    /// Shared serialization scratch buffer (capacity warm across the whole
    /// population's hibernations).
    [[nodiscard]] ColdWriter& cold_writer() noexcept { return cold_writer_; }

    /// Deduplicates client configurations. A 200k..1M-peer population uses a
    /// handful of distinct configs (one per content-provider binary in the
    /// workload), so clients hold a pointer instead of a ~200-byte copy.
    /// Trivially-copyable bytewise comparison; a padding mismatch costs at
    /// worst one extra stored copy.
    [[nodiscard]] const ClientConfig* intern_config(const ClientConfig& config) {
        static_assert(std::is_trivially_copyable_v<ClientConfig>);
        for (const auto& known : configs_)
            if (std::memcmp(known.get(), &config, sizeof(ClientConfig)) == 0) return known.get();
        configs_.push_back(std::make_unique<ClientConfig>(config));
        return configs_.back().get();
    }

private:
    FlatHashMap<Guid, NetSessionClient*> clients_;
    arena::Pool<Download> download_pool_;
    ColdStore cold_;
    ColdWriter cold_writer_;
    std::vector<std::unique_ptr<ClientConfig>> configs_;
};

}  // namespace netsession::peer
