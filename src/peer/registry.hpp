// Data-plane peer registry.
//
// The simulator needs to route a p2p connection attempt to the remote
// client object. In the real system this is the downloader opening a TCP/UDP
// connection to the address the control plane handed it; here it is a lookup
// by GUID. (Control-plane routing uses control::ControlPlane::find_endpoint;
// this registry is the *data-plane* equivalent and also covers peers that
// are currently not connected to any CN.)
#pragma once

#include <unordered_map>

#include "common/types.hpp"

namespace netsession::peer {

class NetSessionClient;

class PeerRegistry {
public:
    void add(Guid guid, NetSessionClient* client) { clients_[guid] = client; }
    void remove(Guid guid) { clients_.erase(guid); }

    [[nodiscard]] NetSessionClient* find(Guid guid) const {
        const auto it = clients_.find(guid);
        return it == clients_.end() ? nullptr : it->second;
    }

    [[nodiscard]] std::size_t size() const noexcept { return clients_.size(); }

private:
    std::unordered_map<Guid, NetSessionClient*> clients_;
};

}  // namespace netsession::peer
