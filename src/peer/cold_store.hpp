// Cold storage for hibernated peers.
//
// A NetSession install spends most of the simulated week offline (diurnal
// sessions, churn faults). Keeping a full client object resident for every
// offline peer is what capped earlier builds at ~200k peers; at 1M peers the
// hot working set must be proportional to *online* peers only. ColdStore is
// a chunked byte arena holding one compact serialized blob per hibernated
// client — a few hundred bytes instead of several KiB of hash tables and
// vectors — with 32-byte size-class free lists so demote/rehydrate cycles
// at steady-state churn recycle storage instead of growing it.
//
// The blobs are in-memory snapshots, not a disk format: raw pointers
// (catalog entries, edge servers) are stored verbatim, and layout matches
// the writing build only. ColdWriter/ColdReader are the (trivial) byte-level
// serializer pair used by NetSessionClient::hibernate()/ensure_resident().
#pragma once

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace netsession::peer {

class ColdStore {
public:
    /// Bytes per pooled chunk. Blobs are contiguous; blobs larger than this
    /// get a dedicated exactly-sized chunk.
    static constexpr std::uint32_t kChunkSize = 256u * 1024u;
    /// Allocation granularity; free lists are per rounded-size class.
    static constexpr std::uint32_t kGranularity = 32;

    /// Handle to one stored blob. POD; default-constructed refs are invalid.
    struct BlobRef {
        static constexpr std::uint32_t kInvalidChunk = 0xFFFFFFFFu;
        std::uint32_t chunk = kInvalidChunk;
        std::uint32_t offset = 0;
        std::uint32_t size = 0;  ///< exact payload size (unrounded)
        [[nodiscard]] bool valid() const noexcept { return chunk != kInvalidChunk; }
    };

    /// Copies `size` bytes into the store and returns a handle.
    BlobRef store(const void* bytes, std::size_t size) {
        assert(size > 0);
        const auto rounded = rounded_size(size);
        BlobRef ref;
        ref.size = static_cast<std::uint32_t>(size);
        if (rounded > kChunkSize) {
            ref.chunk = dedicated_chunk(rounded);
            ref.offset = 0;
        } else {
            const std::uint32_t cls = rounded / kGranularity;
            if (cls < free_.size() && !free_[cls].empty()) {
                const Loc loc = free_[cls].back();
                free_[cls].pop_back();
                ref.chunk = loc.chunk;
                ref.offset = loc.offset;
            } else {
                if (open_ == kNoChunk || kChunkSize - open_used_ < rounded) {
                    // The tail fragment of the previous open chunk (if any)
                    // stays unused; at a few hundred bytes per blob that is
                    // well under 0.2% of reserved storage.
                    open_ = pooled_chunk();
                    open_used_ = 0;
                }
                ref.chunk = open_;
                ref.offset = open_used_;
                open_used_ += rounded;
            }
        }
        std::memcpy(chunks_[ref.chunk].bytes.data() + ref.offset, bytes, size);
        bytes_live_ += rounded;
        ++records_;
        return ref;
    }

    /// Pointer to a stored blob's bytes (valid until the ref is freed).
    [[nodiscard]] const std::uint8_t* data(BlobRef ref) const {
        assert(ref.valid());
        return chunks_[ref.chunk].bytes.data() + ref.offset;
    }

    /// Returns a blob's storage to the free lists.
    void free(BlobRef ref) {
        if (!ref.valid()) return;
        const auto rounded = rounded_size(ref.size);
        assert(records_ > 0 && bytes_live_ >= rounded);
        bytes_live_ -= rounded;
        --records_;
        if (rounded > kChunkSize) {
            // Dedicated chunk: release its buffer, recycle the index slot.
            bytes_reserved_ -= chunks_[ref.chunk].bytes.size();
            chunks_[ref.chunk].bytes = std::vector<std::uint8_t>();
            spare_slots_.push_back(ref.chunk);
            return;
        }
        const std::uint32_t cls = rounded / kGranularity;
        if (free_.size() <= cls) free_.resize(cls + 1);
        free_[cls].push_back(Loc{ref.chunk, ref.offset});
    }

    // --- storage accounting (mem.cold_* gauges) -----------------------------
    [[nodiscard]] std::size_t bytes_reserved() const noexcept { return bytes_reserved_; }
    [[nodiscard]] std::size_t bytes_live() const noexcept { return bytes_live_; }
    [[nodiscard]] std::size_t records() const noexcept { return records_; }

private:
    static constexpr std::uint32_t kNoChunk = 0xFFFFFFFFu;

    struct Chunk {
        std::vector<std::uint8_t> bytes;
    };
    struct Loc {
        std::uint32_t chunk;
        std::uint32_t offset;
    };

    [[nodiscard]] static std::uint32_t rounded_size(std::size_t size) noexcept {
        return static_cast<std::uint32_t>((size + kGranularity - 1) / kGranularity * kGranularity);
    }

    std::uint32_t new_chunk(std::size_t bytes) {
        std::uint32_t idx;
        if (!spare_slots_.empty()) {
            idx = spare_slots_.back();
            spare_slots_.pop_back();
        } else {
            idx = static_cast<std::uint32_t>(chunks_.size());
            chunks_.emplace_back();
        }
        chunks_[idx].bytes.resize(bytes);
        bytes_reserved_ += bytes;
        return idx;
    }

    std::uint32_t pooled_chunk() { return new_chunk(kChunkSize); }
    std::uint32_t dedicated_chunk(std::size_t bytes) { return new_chunk(bytes); }

    std::vector<Chunk> chunks_;
    std::vector<std::uint32_t> spare_slots_;  ///< released dedicated-chunk indices
    std::vector<std::vector<Loc>> free_;      ///< per size class (rounded/32)
    std::uint32_t open_ = kNoChunk;           ///< chunk taking bump allocations
    std::uint32_t open_used_ = 0;
    std::size_t bytes_reserved_ = 0;
    std::size_t bytes_live_ = 0;
    std::size_t records_ = 0;
};

/// Appends trivially-copyable values to a growing byte buffer. Reused across
/// hibernations (the buffer keeps its capacity) by clear().
class ColdWriter {
public:
    void clear() noexcept { buf_.clear(); }

    template <typename T>
    void put(const T& v) {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
        buf_.insert(buf_.end(), p, p + sizeof(T));
    }

    template <typename T>
    void put_span(const T* p, std::size_t n) {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto* b = reinterpret_cast<const std::uint8_t*>(p);
        buf_.insert(buf_.end(), b, b + n * sizeof(T));
    }

    /// Convenience: u32 element count followed by the elements.
    template <typename T>
    void put_counted(const T* p, std::size_t n) {
        put(static_cast<std::uint32_t>(n));
        put_span(p, n);
    }

    [[nodiscard]] const std::uint8_t* data() const noexcept { return buf_.data(); }
    [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

private:
    std::vector<std::uint8_t> buf_;
};

/// Reads trivially-copyable values back out of a blob, in write order.
class ColdReader {
public:
    ColdReader(const std::uint8_t* p, std::size_t size) noexcept : p_(p), end_(p + size) {}

    template <typename T>
    [[nodiscard]] T get() {
        static_assert(std::is_trivially_copyable_v<T>);
        assert(p_ + sizeof(T) <= end_);
        T v;
        std::memcpy(&v, p_, sizeof(T));
        p_ += sizeof(T);
        return v;
    }

    /// Skips n elements of type T without materializing them.
    template <typename T>
    void skip(std::size_t n) noexcept {
        p_ += n * sizeof(T);
        assert(p_ <= end_);
    }

    [[nodiscard]] bool done() const noexcept { return p_ == end_; }

private:
    const std::uint8_t* p_;
    const std::uint8_t* end_;
};

}  // namespace netsession::peer
