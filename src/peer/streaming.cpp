#include "peer/streaming.hpp"

#include <algorithm>
#include <cassert>

namespace netsession::peer {

StreamingSession::StreamingSession(net::World& world, NetSessionClient& client,
                                   const swarm::ContentObject& object, StreamingConfig config,
                                   DoneCallback on_done)
    : world_(&world),
      client_(&client),
      object_(&object),
      config_(config),
      on_done_(std::move(on_done)),
      have_(object.piece_count(), false) {}

void StreamingSession::start() {
    assert(!started_);
    started_ = true;
    session_start_ = world_->simulator().now();
    stalled_ = true;  // "stalled" until the startup buffer fills
    stall_start_ = session_start_;

    NetSessionClient::DownloadOptions options;
    options.sequential = true;
    options.on_piece = [this](swarm::PieceIndex piece) { on_piece(piece); };
    client_->begin_download(
        object_->id(),
        [this](const trace::DownloadRecord& record) { on_finished(record); },
        std::move(options));
}

void StreamingSession::on_finished(const trace::DownloadRecord& record) {
    download_done_ = true;
    metrics_.bytes_from_peers = record.bytes_from_peers;
    metrics_.bytes_from_infrastructure = record.bytes_from_infrastructure;
    if (record.outcome != trace::DownloadOutcome::completed) {
        // The download died under the player; report what we have.
        download_failed_ = true;
        finish_session(/*completed=*/false);
        return;
    }
    // Playback may still be waiting on the startup buffer (tiny objects).
    maybe_start_playback();
}

void StreamingSession::on_piece(swarm::PieceIndex piece) {
    have_[piece] = true;
    while (contiguous_ < have_.size() && have_[contiguous_]) ++contiguous_;
    maybe_start_playback();
}

double StreamingSession::piece_duration_s(swarm::PieceIndex piece) const {
    return 8.0 * static_cast<double>(object_->piece_length(piece)) / config_.bitrate_bps;
}

void StreamingSession::finish_session(bool completed) {
    metrics_.completed = completed;
    if (on_done_ == nullptr) return;
    auto cb = std::move(on_done_);
    on_done_ = nullptr;
    cb(metrics_);
}

void StreamingSession::maybe_start_playback() {
    if (playing_ || download_failed_ || on_done_ == nullptr) return;
    const auto buffer_target = static_cast<swarm::PieceIndex>(
        std::min<std::size_t>(have_.size(),
                              play_head_ + static_cast<std::size_t>(config_.startup_buffer_pieces)));
    if (contiguous_ < buffer_target) return;
    playing_ = true;
    if (stalled_) {
        const double waited = (world_->simulator().now() - stall_start_).seconds();
        if (play_head_ == 0)
            metrics_.startup_delay_s = waited;
        else
            metrics_.rebuffer_time_s += waited;
        stalled_ = false;
    }
    play_next();
}

void StreamingSession::play_next() {
    if (download_failed_ || on_done_ == nullptr) return;
    if (play_head_ >= have_.size()) {
        finish_session(/*completed=*/true);
        return;
    }
    if (play_head_ < contiguous_) {
        const double dt = piece_duration_s(play_head_);
        ++play_head_;
        world_->simulator().schedule_after(sim::seconds(dt), [this] { play_next(); });
        return;
    }
    // The play head caught up with the buffer: rebuffer.
    playing_ = false;
    stalled_ = true;
    stall_start_ = world_->simulator().now();
    ++metrics_.rebuffer_events;
}

}  // namespace netsession::peer
