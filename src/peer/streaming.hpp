// Video streaming on NetSession (paper §3.4: "NetSession also supports
// video streaming", little used in the 2012 trace because of the
// install-a-client requirement — implemented here as the paper's named
// extension).
//
// A StreamingSession runs a sequential peer-assisted download and plays it
// back at the media bitrate: playback starts once a startup buffer is
// contiguous, stalls (rebuffers) whenever the play head catches up with the
// contiguous prefix, and resumes when the buffer refills. The session
// reports the standard QoE metrics: startup delay, rebuffer count/time, and
// delivery mix.
#pragma once

#include <functional>
#include <vector>

#include "peer/netsession_client.hpp"
#include "swarm/content.hpp"

namespace netsession::peer {

struct StreamingConfig {
    /// Media bitrate (bits per second of playback).
    double bitrate_bps = 4e6;
    /// Contiguous pieces required before playback starts / resumes.
    int startup_buffer_pieces = 2;
};

/// QoE summary of one viewing session.
struct StreamingMetrics {
    double startup_delay_s = 0;
    int rebuffer_events = 0;
    double rebuffer_time_s = 0;
    bool completed = false;
    Bytes bytes_from_peers = 0;
    Bytes bytes_from_infrastructure = 0;
};

class StreamingSession {
public:
    using DoneCallback = std::function<void(const StreamingMetrics&)>;

    /// `client` must outlive the session; `object` must be the published
    /// content the session will stream.
    StreamingSession(net::World& world, NetSessionClient& client,
                     const swarm::ContentObject& object, StreamingConfig config,
                     DoneCallback on_done);

    /// Begins the download and the playback state machine.
    void start();

    [[nodiscard]] const StreamingMetrics& metrics() const noexcept { return metrics_; }
    [[nodiscard]] bool playing() const noexcept { return playing_; }
    [[nodiscard]] swarm::PieceIndex play_head() const noexcept { return play_head_; }
    /// Seconds of media one piece carries at the configured bitrate.
    [[nodiscard]] double piece_duration_s(swarm::PieceIndex piece) const;

private:
    void on_piece(swarm::PieceIndex piece);
    void on_finished(const trace::DownloadRecord& record);
    void maybe_start_playback();
    void play_next();
    void finish_session(bool completed);

    net::World* world_;
    NetSessionClient* client_;
    const swarm::ContentObject* object_;
    StreamingConfig config_;
    DoneCallback on_done_;
    StreamingMetrics metrics_;

    swarm::PieceIndex contiguous_ = 0;  // pieces [0, contiguous_) are buffered
    swarm::PieceIndex play_head_ = 0;   // next piece to play
    std::vector<bool> have_;
    bool started_ = false;
    bool playing_ = false;
    bool download_done_ = false;
    bool download_failed_ = false;
    sim::SimTime session_start_{};
    sim::SimTime stall_start_{};
    bool stalled_ = false;
};

}  // namespace netsession::peer
