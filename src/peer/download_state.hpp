// Per-download state of the client's Download Manager (paper §3.3/§3.4).
//
// `Download` objects live in a PeerRegistry-wide arena::Pool<Download>
// (docs/SIMULATOR.md "Memory layout"): a finished download is *parked*, not
// destroyed, so the next download started anywhere on the host reuses its
// source arrays, piece maps and hash tables at full capacity. Everything a
// parked object may carry over is wiped by reset().
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/types.hpp"
#include "control/peer_descriptor.hpp"
#include "edge/auth.hpp"
#include "net/flow.hpp"
#include "sim/simulator.hpp"
#include "swarm/picker.hpp"
#include "trace/records.hpp"

namespace netsession::edge {
struct CatalogEntry;
class EdgeServer;
}  // namespace netsession::edge

namespace netsession::peer {

/// Invoked when a download reaches a terminal state, with the usage record
/// the client reported (or tried to report) to the control plane.
using DownloadCallback = std::function<void(const trace::DownloadRecord&)>;

/// Per-download delivery options.
struct DownloadOptions {
    /// In-order piece delivery (video streaming mode, §3.4). Bulk downloads
    /// use rarest-first/gap-filling selection instead.
    bool sequential = false;
    /// Fires for every piece that verifies (streaming playback hooks).
    std::function<void(swarm::PieceIndex)> on_piece;
};

/// One remote peer we are (or were) fetching pieces from.
struct PeerSource {
    control::PeerDescriptor desc;
    net::FlowId flow;
    swarm::PieceIndex piece = 0;
    bool transferring = false;
    Bytes bytes = 0;          // completed-piece bytes received from this source
    int corrupt_pieces = 0;   // repeated offenders get disconnected
    sim::SimTime started_at;  // when the current transfer was requested
};

struct Download {
    const edge::CatalogEntry* entry = nullptr;
    swarm::PieceMap have;
    swarm::PieceMap full;  // remote seeds' map (uploaders hold complete copies)
    swarm::PiecePicker picker;
    edge::EdgeServer* edge = nullptr;
    edge::AuthToken token{};
    bool has_token = false;
    net::FlowId edge_flow;
    swarm::PieceIndex edge_piece = 0;
    bool edge_transferring = false;
    std::vector<PeerSource> sources;
    std::vector<Guid> attempted;  // peers we already tried this epoch
    Bytes bytes_infra = 0;
    Bytes bytes_peers = 0;
    FlatHashMap<Guid, std::pair<net::IpAddr, Bytes>> per_source_bytes;
    sim::SimTime start_time;
    int peers_initially_returned = -1;
    int additional_queries = 0;
    int corrupt_pieces = 0;
    int pending_attempts = 0;                  // connection handshakes in flight
    FlatHashSet<std::uint64_t> open_attempts;  // seq of in-flight handshakes
    bool query_outstanding = false;
    bool paused = false;
    std::uint32_t epoch = 0;  // invalidates in-flight async callbacks
    /// Generation counter for the edge request/delivery path. The epoch
    /// only moves on pause/stop, so a stall declared while the HTTP
    /// request is still crossing the network would leave that stale
    /// request valid — it would later start a *second* concurrent edge
    /// flow and double-count the piece into bytes_infra. Every edge
    /// request bumps this and validates against it; the watchdog's stall
    /// branch bumps it again when abandoning a transfer.
    std::uint32_t edge_attempt = 0;
    sim::SimTime edge_started_at;   // when the current edge request went out
    double edge_retry_delay_s = 0;  // capped exponential backoff state
    sim::EventHandle watchdog;
    DownloadCallback on_finish;
    DownloadOptions options;

    /// Returns a parked (pool-reused) object to its freshly-constructed
    /// state while keeping container capacity. The watchdog handle must
    /// already be cancelled (stop_transfers does) — reset only forgets it.
    void reset() {
        entry = nullptr;
        edge = nullptr;
        token = edge::AuthToken{};
        has_token = false;
        edge_flow = net::FlowId{};
        edge_piece = 0;
        edge_transferring = false;
        sources.clear();
        attempted.clear();
        bytes_infra = 0;
        bytes_peers = 0;
        per_source_bytes.clear();
        start_time = sim::SimTime{};
        peers_initially_returned = -1;
        additional_queries = 0;
        corrupt_pieces = 0;
        pending_attempts = 0;
        open_attempts.clear();
        query_outstanding = false;
        paused = false;
        epoch = 0;
        edge_attempt = 0;
        edge_started_at = sim::SimTime{};
        edge_retry_delay_s = 0;
        watchdog = sim::EventHandle{};
        on_finish = nullptr;
        options = DownloadOptions{};
        // have/full/picker are re-initialised in place by begin_download
        // (PieceMap::reset / PiecePicker::reset) once the entry is known.
    }
};

}  // namespace netsession::peer
