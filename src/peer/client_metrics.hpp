// Client-tier metrics. Thousands of NetSessionClients share one block owned
// by the population driver (workload::UserDriver); each client holds a
// possibly-null pointer and increments through the NS_OBS_*_P macros, so a
// client wired up directly in a unit test (no driver, no block) pays nothing
// and changes no behaviour. See docs/OBSERVABILITY.md for the naming scheme.
#pragma once

#include "obs/metrics.hpp"

namespace netsession::peer {

struct ClientMetrics {
    // Download lifecycle.
    obs::Counter downloads_started;
    obs::Counter downloads_completed;
    obs::Counter downloads_failed;  ///< any terminal outcome except completed

    // Degradation events (mirrors trace::DegradationKind, but live).
    obs::Counter edge_stalls;
    obs::Counter edge_remaps;
    obs::Counter peer_stalls;
    obs::Counter blacklists;
    obs::Counter query_timeouts;
    obs::Counter login_timeouts;
    obs::Counter stun_timeouts;

    // Recovery machinery.
    obs::Counter edge_retries;    ///< backoff-scheduled edge re-requests
    obs::Counter corrupt_pieces;  ///< pieces that failed hash verification

    // Per-source byte split (verified pieces only, both delivery paths).
    obs::Counter bytes_from_edge;
    obs::Counter bytes_from_peers;

    // Shape of terminal downloads.
    obs::Histogram download_bytes;       ///< delivered bytes per terminal download
    obs::Histogram download_duration_s;  ///< wall time per terminal download

    /// Registers every series under the `client.` prefix.
    void register_with(obs::Registry& registry) const {
        registry.add_counter("client.downloads_started", &downloads_started);
        registry.add_counter("client.downloads_completed", &downloads_completed);
        registry.add_counter("client.downloads_failed", &downloads_failed);
        registry.add_counter("client.edge_stalls", &edge_stalls);
        registry.add_counter("client.edge_remaps", &edge_remaps);
        registry.add_counter("client.peer_stalls", &peer_stalls);
        registry.add_counter("client.blacklists", &blacklists);
        registry.add_counter("client.query_timeouts", &query_timeouts);
        registry.add_counter("client.login_timeouts", &login_timeouts);
        registry.add_counter("client.stun_timeouts", &stun_timeouts);
        registry.add_counter("client.edge_retries", &edge_retries);
        registry.add_counter("client.corrupt_pieces", &corrupt_pieces);
        registry.add_counter("client.bytes_from_edge", &bytes_from_edge);
        registry.add_counter("client.bytes_from_peers", &bytes_from_peers);
        registry.add_histogram("client.download_bytes", &download_bytes);
        registry.add_histogram("client.download_duration_s", &download_duration_s);
    }
};

}  // namespace netsession::peer
