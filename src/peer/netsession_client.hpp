// The NetSession Interface — the client software installed on user machines
// (paper §3.4). A persistent background application that maintains a control
// connection to a CN, runs the Download Manager (parallel edge + p2p
// delivery, §3.3), verifies piece hashes, caches completed objects and
// serves them to other peers (subject to the user's upload setting and the
// §3.9 best-practice limits), reports usage statistics, and survives control
// plane failures by falling back to edge-only delivery (§3.8).
//
// Memory layout (docs/SIMULATOR.md): the object itself is a slim *shell* —
// identity, connectivity flags, and the async-callback anchor (in-flight
// lambdas capture the raw `this`). Everything that scales with activity
// (hash tables, the secondary-GUID chain, pending reports, per-download
// state) lives in a heap Resident block. While the user is offline the
// driver calls hibernate(): the Resident block is serialized into the
// registry's ColdStore (a few hundred bytes) and destroyed; the next start
// rehydrates it byte-identically. Queries that must answer while hibernated
// (auditor consistency checks, terminal flush) read the cold blob directly
// and never wake the client.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/arena.hpp"
#include "common/flat_hash.hpp"
#include "common/rng.hpp"
#include "control/control_plane.hpp"
#include "edge/edge_network.hpp"
#include "peer/client_config.hpp"
#include "peer/client_metrics.hpp"
#include "peer/cold_store.hpp"
#include "peer/download_state.hpp"
#include "peer/registry.hpp"
#include "swarm/picker.hpp"
#include "trace/records.hpp"

namespace netsession::peer {

class NetSessionClient final : public control::PeerEndpoint {
public:
    /// Per-download types live in peer/download_state.hpp (the state itself
    /// is pool-allocated via PeerRegistry::downloads()); aliases keep the
    /// historical nested names working.
    using DownloadCallback = peer::DownloadCallback;
    using DownloadOptions = peer::DownloadOptions;

    NetSessionClient(net::World& world, control::ControlPlane& plane, edge::EdgeNetwork& edges,
                     const edge::Catalog& catalog, PeerRegistry& registry, Guid guid, HostId host,
                     ClientConfig config, Rng rng);
    ~NetSessionClient() override;

    NetSessionClient(const NetSessionClient&) = delete;
    NetSessionClient& operator=(const NetSessionClient&) = delete;

    // --- lifecycle (driven by the user-session model) -----------------------
    /// The user logged in / the machine came up: fresh secondary GUID, STUN
    /// probe, CN connect, paused downloads resume. Rehydrates first.
    void start();
    /// The user logged out: active downloads pause (resumable), uploads stop.
    void stop();
    /// Abrupt failure (power loss, kill -9): like stop() but nothing is
    /// announced — no logout, no goodbye to transfer partners; every flow
    /// touching this host is cut. Remote peers must detect the loss via
    /// their own stall watchdogs. Used by the fault engine's mass churn.
    void crash();
    [[nodiscard]] bool running() const noexcept { return running_; }
    [[nodiscard]] bool connected() const noexcept { return cn_ != nullptr; }
    /// True while operating on a conservative NAT assumption because the
    /// STUN probe timed out (§3.8 degraded mode).
    [[nodiscard]] bool conservative_nat() const noexcept { return conservative_nat_; }

    // --- hibernation (the driver calls this when the user goes offline) -----
    /// Demotes the Resident block to a compact serialized record in the
    /// registry's ColdStore. No-op while running or already hibernated.
    /// Purely a memory-layout transition: rehydration restores the exact
    /// state, so traces are byte-identical with hibernation off.
    void hibernate();
    [[nodiscard]] bool hibernated() const noexcept { return res_ == nullptr; }

    // --- identity ------------------------------------------------------------
    [[nodiscard]] Guid guid() const noexcept override { return guid_; }
    [[nodiscard]] HostId host() const noexcept override { return host_; }
    [[nodiscard]] const std::vector<SecondaryGuid>& secondary_chain() {
        ensure_resident();
        return res_->chain;
    }

    // --- user actions ----------------------------------------------------------
    void begin_download(ObjectId object, DownloadCallback on_finish, DownloadOptions options);
    void begin_download(ObjectId object, DownloadCallback on_finish = {}) {
        begin_download(object, std::move(on_finish), DownloadOptions());
    }
    [[nodiscard]] bool download_active(ObjectId object) const;
    void pause_download(ObjectId object);
    void resume_download(ObjectId object);
    void abort_download(ObjectId object, trace::DownloadOutcome outcome);
    /// Number of downloads in any non-terminal state (incl. paused) holding a
    /// slot in the shared pool. Hibernated downloads live in the cold blob,
    /// not the pool, so they intentionally do not count here (the auditor
    /// cross-checks this sum against the pool's live count).
    [[nodiscard]] int open_downloads() const noexcept {
        return res_ == nullptr ? 0 : static_cast<int>(res_->downloads.size());
    }
    /// Currently blacklisted sources, expired entries included until the next
    /// watchdog sweep. Bounded: the watchdog drops entries past their expiry.
    [[nodiscard]] std::size_t blacklist_size() const noexcept {
        return res_ == nullptr ? 0 : res_->blacklist.size();
    }
    /// Read-only visit of every open download (audit layer, tests). Visits
    /// resident state only; a hibernated client's downloads are frozen and
    /// were checked while it was live.
    void for_each_open_download(const std::function<void(const Download&)>& fn) const;
    /// Objects whose downloads are currently paused (resumable). Answers
    /// from the cold blob without rehydrating.
    [[nodiscard]] std::vector<ObjectId> paused_downloads() const;

    /// The GUI preference toggle (§3.4: users can turn uploads off
    /// "permanently or temporarily ... without adverse effects").
    void set_uploads_enabled(bool enabled);
    [[nodiscard]] bool uploads_enabled() const noexcept { return uploads_enabled_; }

    /// The user's own applications started/stopped using the connection;
    /// NetSession throttles its uploads accordingly (§3.9).
    void set_user_traffic(bool active);

    // --- cache -----------------------------------------------------------------
    /// Whether a fresh (retention not yet elapsed) copy is cached. Answers
    /// from the cold blob without rehydrating.
    [[nodiscard]] bool has_cached(ObjectId object) const;
    [[nodiscard]] std::vector<ObjectId> cached_objects() const;

    // --- mobility & install-state modelling (§6.2) ------------------------------
    /// The machine moved: new attachment, fresh IP, re-login.
    void move_to(net::Location location, Asn asn, net::NatType nat);

    /// Install state that cloning/re-imaging duplicates or rolls back.
    struct InstallState {
        Guid guid;
        std::vector<SecondaryGuid> chain;
        bool uploads_enabled = false;
    };
    [[nodiscard]] InstallState snapshot_state();
    void restore_state(InstallState state);

    // --- PeerEndpoint (control-plane callbacks) ---------------------------------
    void on_disconnected() override;
    void on_re_add_request() override;
    void on_introduction(const control::PeerDescriptor& downloader, ObjectId object) override;
    void on_upgrade_available(std::uint32_t version) override;

    /// The currently installed client version (starts at
    /// ClientConfig::software_version; centrally-released upgrades move it).
    [[nodiscard]] std::uint32_t software_version() const noexcept { return version_; }

    // --- data-plane, called by other clients (after transport latency) ----------
    /// A downloader (introduced by the CN) asks to fetch `object` from us.
    void handle_upload_request(const control::PeerDescriptor& downloader, ObjectId object,
                               std::function<void(bool)> reply);
    /// A downloader closed its connection to us.
    void on_upload_closed(Guid downloader, ObjectId object);
    /// An uploader we were fetching from went offline.
    void on_source_lost(Guid uploader, ObjectId object);
    /// Byte accounting on the uploading side (drives the per-object upload
    /// cap, §3.9). Can race hibernation — a downloader's piece completes
    /// while the notification is in flight and we already demoted — so the
    /// per-object ledger update is parked shell-side and folded in on the
    /// next rehydrate (the ledger is only ever looked up, never iterated,
    /// so the deferred insertion order is unobservable).
    void note_uploaded(ObjectId object, Bytes bytes) {
        uploaded_bytes_ += bytes;
        if (res_ != nullptr)
            res_->uploaded_per_object[object] += bytes;
        else
            cold_uploaded_.emplace_back(object, bytes);
    }

    // --- experimentation hooks ---------------------------------------------------
    /// Tamper with outgoing usage reports (accounting-attack experiments).
    void set_report_tamper(std::function<void(trace::DownloadRecord&)> fn) {
        tamper_ = std::move(fn);
    }

    /// Points the client at a shared metrics block (normally the driver's).
    /// Null (the default) disables client metrics for this instance.
    void set_metrics(ClientMetrics* metrics) noexcept { metrics_ = metrics; }

    /// Marks this peer's cached data as silently corrupted (bad disk/RAM):
    /// every piece it uploads fails hash verification at the downloader.
    /// Receivers discard such pieces and never pass them on (§3.5).
    void set_corrupt_uploads(bool v) noexcept { corrupt_uploads_ = v; }
    [[nodiscard]] bool corrupt_uploads() const noexcept { return corrupt_uploads_; }

    [[nodiscard]] Bytes uploaded_bytes() const noexcept { return uploaded_bytes_; }
    [[nodiscard]] int active_upload_connections() const noexcept {
        return res_ == nullptr ? 0 : static_cast<int>(res_->upload_conns.size());
    }

    /// Terminal flush at the end of a measurement window: emits records for
    /// never-finished downloads (outcome aborted_by_user for paused ones,
    /// in_progress for live ones) directly into the trace. Reads hibernated
    /// clients' downloads straight out of the cold blob — flushing a 1M-peer
    /// run must not rehydrate the whole population.
    void flush_unfinished();

private:
    using DownloadHandle = arena::PoolHandle<Download>;

    /// Everything whose footprint scales with client activity. Destroyed on
    /// hibernate (after serialization into the ColdStore), rebuilt
    /// byte-identically by ensure_resident().
    struct Resident {
        Rng rng;
        FlatHashMap<Guid, int> source_failures;
        FlatHashMap<Guid, sim::SimTime> blacklist;  // guid -> ban expiry
        std::vector<Guid> blacklist_scratch;        // reusable sweep buffer
        std::vector<SecondaryGuid> chain;
        FlatHashMap<ObjectId, sim::SimTime> cache;  // object -> cached_at
        /// Live downloads; the state itself lives in the registry-wide pool.
        FlatHashMap<ObjectId, DownloadHandle> downloads;
        FlatHashMap<ObjectId, Bytes> uploaded_per_object;
        std::vector<std::pair<Guid, ObjectId>> upload_conns;  // active upload connections
        FlatHashSet<std::uint64_t> introductions;  // CN-coordinated (guid, object) pairs
        std::vector<ObjectId> evict_scratch;       // reusable cache-sweep buffer
        std::vector<std::pair<trace::DownloadRecord, std::vector<trace::TransferRecord>>> pending;
    };

    /// Non-POD per-download residue that cannot live in the cold byte blob:
    /// the finish callback and the streaming piece hook. Kept shell-side in
    /// downloads-map insertion order across hibernation.
    struct ColdAux {
        DownloadCallback on_finish;
        std::function<void(swarm::PieceIndex)> on_piece;
    };

    /// Rebuilds the Resident block from the cold blob (no-op when already
    /// resident).
    void ensure_resident();
    /// Serializes the Resident block into `w` (layout documented at the
    /// definition; ColdReader consumers must match it exactly).
    void write_cold(ColdWriter& w) const;

    /// Looks up the live Download for `object`, or nullptr (hibernated
    /// clients have no live downloads). Pool slots have stable addresses,
    /// so the pointer stays valid across map growth.
    [[nodiscard]] Download* find_download(ObjectId object) {
        if (res_ == nullptr) return nullptr;
        const DownloadHandle* h = res_->downloads.find_value(object);
        return h == nullptr ? nullptr : &registry_->downloads().get(*h);
    }
    [[nodiscard]] const Download* find_download(ObjectId object) const {
        if (res_ == nullptr) return nullptr;
        const DownloadHandle* h = res_->downloads.find_value(object);
        return h == nullptr ? nullptr : &registry_->downloads().get(*h);
    }

    [[nodiscard]] control::PeerDescriptor descriptor() const;
    [[nodiscard]] control::LoginInfo make_login_info() const;
    void connect_control_plane();
    void on_login_ok(control::ConnectionNode* cn, std::uint32_t attempt);
    void on_login_failed(std::uint32_t attempt);
    void schedule_reconnect();
    void kick_downloads();

    // --- failure hardening ---
    void schedule_watchdog(ObjectId object);
    void watchdog_tick(ObjectId object, std::uint32_t epoch);
    void schedule_edge_retry(ObjectId object);
    void note_degradation(trace::DegradationKind kind);
    void note_source_failure(Guid source);
    [[nodiscard]] bool source_blacklisted(Guid source);
    void sweep_blacklist(sim::SimTime now);

    void request_from_edge(ObjectId object);
    void on_edge_piece(ObjectId object, std::uint32_t epoch, std::uint32_t attempt,
                       swarm::PieceIndex piece, Digest256 digest);
    void query_for_peers(ObjectId object);
    void on_query_reply(ObjectId object, std::uint32_t epoch,
                        std::vector<control::PeerDescriptor> peers);
    void attempt_connection(ObjectId object, const control::PeerDescriptor& remote);
    void on_connection_result(ObjectId object, std::uint32_t epoch,
                              const control::PeerDescriptor& remote, std::uint64_t seq,
                              bool accepted);
    void request_from_source(ObjectId object, Guid source_guid);
    void on_peer_piece(ObjectId object, std::uint32_t epoch, Guid from, swarm::PieceIndex piece,
                       Digest256 digest);
    void drop_source(Download& d, Guid source_guid, bool notify_remote);
    void maybe_need_more_sources(ObjectId object);
    void stop_transfers(Download& d, bool notify_remotes);
    void finish_download(ObjectId object, trace::DownloadOutcome outcome);
    void submit_report(trace::DownloadRecord record, std::vector<trace::TransferRecord> transfers);
    void flush_pending_reports();
    void cache_object(ObjectId object);
    void schedule_eviction(ObjectId object);
    void announce_object(ObjectId object, bool readd);
    void withdraw_object(ObjectId object);

    net::World* world_;
    control::ControlPlane* plane_;
    edge::EdgeNetwork* edges_;
    const edge::Catalog* catalog_;
    PeerRegistry* registry_;
    Guid guid_;
    HostId host_;
    /// Interned in the registry: a population shares a handful of distinct
    /// configurations, so the shell holds 8 bytes instead of ~200.
    const ClientConfig* config_;

    bool running_ = false;
    bool uploads_enabled_ = false;
    std::uint32_t version_ = 0;
    bool user_traffic_ = false;
    control::ConnectionNode* cn_ = nullptr;
    bool login_in_flight_ = false;
    std::uint32_t login_attempt_ = 0;  // invalidates stale login replies/timeouts
    bool stun_pending_ = false;
    std::uint32_t stun_attempt_ = 0;
    bool conservative_nat_ = false;
    std::uint64_t attempt_seq_ = 0;  // unique ids for connection handshakes
    double reconnect_delay_s_;
    Bytes uploaded_bytes_ = 0;
    bool corrupt_uploads_ = false;
    Rate base_up_;
    std::function<void(trace::DownloadRecord&)> tamper_;
    ClientMetrics* metrics_ = nullptr;  // shared, driver-owned; may be null

    /// Fat state; null while hibernated.
    std::unique_ptr<Resident> res_;
    /// Serialized Resident while hibernated; invalid while resident.
    ColdStore::BlobRef cold_blob_;
    /// Per-download callbacks parked across hibernation (insertion order).
    std::vector<ColdAux> cold_aux_;
    /// note_uploaded() deltas that arrived while hibernated.
    std::vector<std::pair<ObjectId, Bytes>> cold_uploaded_;
};

}  // namespace netsession::peer
