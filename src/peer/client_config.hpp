// Tunables of the NetSession Interface client.
#pragma once

#include "common/types.hpp"
#include "sim/time.hpp"

namespace netsession::peer {

struct ClientConfig {
    std::uint32_t software_version = 80;  // centrally controlled (§3.8)

    /// Initial upload setting, chosen by the content provider whose binary
    /// the user installed (§5.1).
    bool uploads_enabled = false;

    /// How many peer sources a download uses concurrently. The DLM
    /// "downloads from multiple sources simultaneously" (§3.9).
    int max_peer_sources = 12;

    /// Minimum established peer connections before the client stops issuing
    /// additional queries ("additional queries are issued until a sufficient
    /// number of peer connections succeed", §3.7).
    int target_peer_sources = 9;
    int max_additional_queries = 20;
    /// Periodic re-query interval while a download runs below its source
    /// target (swarms warm up over time).
    double requery_interval_s = 180.0;

    /// Upload-side limits (§3.4, §3.9). "Peers upload each object at most a
    /// limited number of times": the cap is in full-object equivalents of
    /// uploaded bytes, after which the peer withdraws the object from the
    /// directory.
    int max_upload_connections = 6;
    int max_uploads_per_object = 20;

    /// How long a downloaded object stays in the local cache and is offered
    /// for upload ("keeps it in a local cache for a certain amount of time",
    /// §5.2).
    sim::Duration cache_retention = sim::days(30.0);

    /// Disk budget: at most this many objects stay cached; the oldest copy
    /// is evicted (and withdrawn from the directory) beyond it. NetSession
    /// "stays in the background as much as possible" (§3.9) — that includes
    /// not eating the user's disk.
    int max_cached_objects = 24;

    /// Per-piece probability that a transfer arrives corrupted and fails
    /// hash verification (§3.5). Peer copies are dirtier than edge ones.
    double corruption_prob_peer = 2e-3;
    double corruption_prob_edge = 1e-4;
    /// Corrupt pieces tolerated before the download fails with a
    /// system-related cause ("too many corrupted content blocks", §5.2).
    int max_corrupt_pieces = 30;

    /// While the user's own traffic needs the link, NetSession throttles its
    /// uploads to this fraction of the uplink (§3.9).
    double user_traffic_upload_factor = 0.2;

    /// Reconnect backoff after losing the CN connection (§3.8 rate-limits
    /// reconnections for smooth recovery).
    double reconnect_base_s = 2.0;
    double reconnect_max_s = 120.0;

    /// Whether paused downloads resume automatically at the next client
    /// start (the user can also resume explicitly, §3.3).
    bool resume_on_start = false;

    /// Whether an offline client demotes its state into the registry's
    /// ColdStore (a few hundred bytes) instead of staying fully resident.
    /// Purely a memory-layout knob — traces are byte-identical either way
    /// (NS_NO_HIBERNATE=1 clears it; the differential suite relies on that).
    bool hibernate_offline = true;

    // --- failure hardening (§3.8: graceful degradation) ---------------------

    /// Stall-watchdog period per active download. Stalls are detected by
    /// *liveness* — a transfer whose flow no longer exists after the grace
    /// period — never by duration, so legitimately slow multi-hour transfers
    /// are not killed.
    double watchdog_interval_s = 30.0;
    /// Grace after issuing a request before a missing flow counts as a stall
    /// (covers request/response messages still crossing the network).
    double stall_grace_s = 10.0;

    /// Capped exponential backoff between edge retries after a stall.
    double edge_retry_base_s = 2.0;
    double edge_retry_max_s = 60.0;

    /// Stalls/failures from one peer source before it is blacklisted, and
    /// how long the bench lasts.
    int blacklist_failures = 3;
    double blacklist_duration_s = 600.0;

    /// Timeouts for control-plane interactions whose replies can be lost
    /// (server died mid-request, network partition, STUN blackout).
    double login_timeout_s = 30.0;
    double query_timeout_s = 30.0;
    /// After this long without a STUN answer the client proceeds with a
    /// conservative NAT classification instead of wedging forever.
    double stun_timeout_s = 10.0;
};

}  // namespace netsession::peer
