// arena::Pool: stable addresses across growth, LIFO slot reuse, generation
// invalidation, parked-object capacity retention, stats accounting.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/arena.hpp"

namespace netsession::arena {
namespace {

struct Payload {
    int value = 0;
    std::vector<int> data;
};

TEST(ArenaPool, CreateGetDestroy) {
    Pool<Payload> pool;
    auto h = pool.create();
    pool.get(h).value = 42;
    EXPECT_EQ(pool.get(h).value, 42);
    EXPECT_TRUE(pool.valid(h));
    EXPECT_EQ(pool.live(), 1u);
    pool.destroy(h);
    EXPECT_FALSE(pool.valid(h));
    EXPECT_EQ(pool.live(), 0u);
    EXPECT_EQ(pool.try_get(h), nullptr);
}

TEST(ArenaPool, AddressesStableAcrossGrowth) {
    Pool<Payload> pool(4);  // tiny chunks: force many chunk allocations
    std::vector<Pool<Payload>::Handle> handles;
    std::vector<Payload*> ptrs;
    for (int i = 0; i < 1000; ++i) {
        auto h = pool.create();
        pool.get(h).value = i;
        handles.push_back(h);
        ptrs.push_back(&pool.get(h));
    }
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(&pool.get(handles[static_cast<std::size_t>(i)]),
                  ptrs[static_cast<std::size_t>(i)])
            << "chunk growth must not move objects";
        EXPECT_EQ(ptrs[static_cast<std::size_t>(i)]->value, i);
    }
}

TEST(ArenaPool, SlotReuseIsLifoAndSequentialGrowth) {
    Pool<int> pool;
    auto a = pool.create(1);  // slot 0
    auto b = pool.create(2);  // slot 1
    auto c = pool.create(3);  // slot 2
    EXPECT_EQ(a.slot(), 0u);
    EXPECT_EQ(b.slot(), 1u);
    EXPECT_EQ(c.slot(), 2u);
    pool.destroy(b);
    pool.destroy(a);
    // LIFO: last freed (a = slot 0) comes back first.
    auto d = pool.create(4);
    EXPECT_EQ(d.slot(), 0u);
    auto e = pool.create(5);
    EXPECT_EQ(e.slot(), 1u);
    auto f = pool.create(6);
    EXPECT_EQ(f.slot(), 3u) << "fresh slots are sequential";
}

TEST(ArenaPool, GenerationInvalidatesStaleHandles) {
    Pool<int> pool;
    auto h1 = pool.create(1);
    pool.destroy(h1);
    auto h2 = pool.create(2);
    ASSERT_EQ(h1.slot(), h2.slot()) << "test requires slot reuse";
    EXPECT_NE(h1.generation(), h2.generation());
    EXPECT_FALSE(pool.valid(h1));
    EXPECT_TRUE(pool.valid(h2));
    EXPECT_EQ(pool.try_get(h1), nullptr);
    EXPECT_EQ(*pool.try_get(h2), 2);
}

#if NS_ARENA_CHECKS
TEST(ArenaPoolDeathTest, StaleHandleDereferenceAborts) {
    Pool<int> pool;
    auto h = pool.create(1);
    pool.destroy(h);
    auto fresh = pool.create(2);
    (void)fresh;
    EXPECT_DEATH((void)pool.get(h), "dangling");
}
#endif

TEST(ArenaPool, AcquireParksAndRetainsCapacity) {
    Pool<Payload> pool;
    auto h = pool.acquire();
    pool.get(h).data.assign(4096, 7);
    const int* stable = pool.get(h).data.data();
    pool.release(h);  // parked, not destroyed
    auto h2 = pool.acquire();
    EXPECT_EQ(h2.slot(), h.slot());
    EXPECT_NE(h2.generation(), h.generation());
    // The parked object comes back exactly as released: same buffer, caller
    // resets logical state.
    EXPECT_EQ(pool.get(h2).data.data(), stable);
    pool.get(h2).data.clear();
    EXPECT_GE(pool.get(h2).data.capacity(), 4096u) << "capacity survives reuse";
}

TEST(ArenaPool, MixedDestroyAndReleaseOnSameSlot) {
    Pool<Payload> pool;
    auto h = pool.acquire();
    pool.release(h);
    auto h2 = pool.create();  // create over a parked slot must reconstruct
    EXPECT_EQ(h2.slot(), h.slot());
    EXPECT_TRUE(pool.get(h2).data.empty());
    EXPECT_EQ(pool.get(h2).data.capacity(), 0u);
    pool.destroy(h2);
    auto h3 = pool.acquire();  // acquire over a raw slot default-constructs
    EXPECT_EQ(h3.slot(), h.slot());
    EXPECT_TRUE(pool.get(h3).data.empty());
}

TEST(ArenaPool, StatsTrackLiveParkedAndBytes) {
    Pool<int> pool(8);
    EXPECT_EQ(pool.stats().bytes_reserved, 0u) << "empty pool owns no memory";
    std::vector<Pool<int>::Handle> hs;
    for (int i = 0; i < 20; ++i) hs.push_back(pool.create(i));
    auto s = pool.stats();
    EXPECT_EQ(s.live, 20u);
    EXPECT_EQ(s.slots, 20u);
    EXPECT_EQ(s.peak_live, 20u);
    EXPECT_EQ(s.bytes_reserved, 3u * 8u * sizeof(int));
    EXPECT_EQ(s.bytes_live, 20u * sizeof(int));

    pool.destroy(hs[0]);
    auto parked = pool.acquire();
    pool.release(parked);
    s = pool.stats();
    EXPECT_EQ(s.live, 19u);
    EXPECT_EQ(s.parked, 1u);
    EXPECT_EQ(s.peak_live, 20u);
}

TEST(ArenaPool, SlotIterationSeesLiveOnly) {
    Pool<int> pool;
    auto a = pool.create(10);
    auto b = pool.create(20);
    auto c = pool.create(30);
    pool.destroy(b);
    int sum = 0, count = 0;
    for (std::uint32_t s = 0; s < pool.slot_count(); ++s) {
        if (!pool.is_live(s)) continue;
        sum += pool.at_slot(s);
        ++count;
    }
    EXPECT_EQ(count, 2);
    EXPECT_EQ(sum, 40);
    pool.destroy(a);
    pool.destroy(c);
}

TEST(ArenaPool, GenerationWrapRetiresSlotInsteadOfAliasing) {
    // 12-bit generations: after kMaxGeneration releases of one slot the slot
    // is retired, never reused — a stale pre-wrap handle can then never alias
    // a fresh object, and no live handle ever equals the invalid sentinel.
    Pool<int> pool;
    using Handle = Pool<int>::Handle;
    Handle last{};
    for (std::uint32_t gen = 0; gen <= Handle::kMaxGeneration; ++gen) {
        last = pool.acquire();
        ASSERT_EQ(last.slot(), 0u);
        ASSERT_EQ(last.generation(), gen);
        ASSERT_NE(last.bits, Handle::kInvalidBits) << "live handle aliases the sentinel";
        pool.release(last);
    }
    EXPECT_EQ(pool.retired_slots(), 1u);
    EXPECT_FALSE(pool.valid(last)) << "handles into a retired slot are dead";
    EXPECT_EQ(pool.try_get(last), nullptr);

    // The slot is gone from the free list: the next acquire opens slot 1 at
    // generation 0 — a bit pattern no stale handle can ever carry.
    const Handle fresh = pool.acquire();
    EXPECT_EQ(fresh.slot(), 1u);
    EXPECT_EQ(fresh.generation(), 0u);
    EXPECT_EQ(pool.stats().retired, 1u);
    pool.release(fresh);
}

TEST(ArenaPool, RetirementDestructsTheParkedObject) {
    static int alive = 0;
    struct Counted {
        std::vector<int> padding;
        Counted() { ++alive; }
        ~Counted() { --alive; }
    };
    Pool<Counted> pool;
    for (std::uint32_t gen = 0; gen <= Pool<Counted>::Handle::kMaxGeneration; ++gen) {
        auto h = pool.acquire();
        pool.release(h);
    }
    EXPECT_EQ(pool.retired_slots(), 1u);
    EXPECT_EQ(alive, 0) << "a retired slot must not leak its parked object";
}

#if NS_ARENA_CHECKS
TEST(ArenaPoolDeathTest, HandleIntoRetiredSlotAborts) {
    Pool<int> pool;
    Pool<int>::Handle stale{};
    for (std::uint32_t gen = 0; gen <= Pool<int>::Handle::kMaxGeneration; ++gen) {
        stale = pool.acquire();
        pool.release(stale);
    }
    ASSERT_EQ(pool.retired_slots(), 1u);
    EXPECT_DEATH((void)pool.get(stale), "dangling");
}
#endif

TEST(ArenaPool, DestructorRunsDtorsOfLiveAndParked) {
    static int alive = 0;
    struct Counted {
        Counted() { ++alive; }
        ~Counted() { --alive; }
    };
    {
        Pool<Counted> pool;
        auto a = pool.create();
        auto b = pool.create();
        (void)a;
        pool.release(b);  // parked: still constructed
        EXPECT_EQ(alive, 2);
    }
    EXPECT_EQ(alive, 0) << "pool destructor must destroy live and parked objects";
}

}  // namespace
}  // namespace netsession::arena
