// The deterministic parallel runtime: chunk decomposition, merge ordering,
// and the bit-identity-across-thread-counts contract (docs/PARALLELISM.md).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace netsession::parallel {
namespace {

/// Restores the default thread count when a test that overrides it exits.
struct ThreadCountGuard {
    ~ThreadCountGuard() { set_thread_count(0); }
};

TEST(Parallel, ChunkDecompositionCoversRangeExactly) {
    for (const std::size_t n : {std::size_t{0}, std::size_t{1}, detail::kGrain - 1,
                                detail::kGrain, detail::kGrain + 1, std::size_t{100'000},
                                std::size_t{10'000'000}}) {
        const std::size_t chunks = detail::num_chunks(n);
        if (n == 0) {
            EXPECT_EQ(chunks, 0u);
            continue;
        }
        EXPECT_LE(chunks, detail::kMaxChunks);
        std::size_t covered = 0;
        std::size_t expected_lo = 0;
        for (std::size_t c = 0; c < chunks; ++c) {
            const auto [lo, hi] = detail::chunk_range(n, c);
            EXPECT_EQ(lo, expected_lo) << "chunks must tile the range";
            EXPECT_LT(lo, hi);
            covered += hi - lo;
            expected_lo = hi;
        }
        EXPECT_EQ(covered, n);
        EXPECT_EQ(expected_lo, n);
    }
}

TEST(Parallel, SmallInputsAreOneChunk) {
    // Everything below the grain is a single chunk, so parallel primitives
    // over small inputs are exactly the serial computation.
    EXPECT_EQ(detail::num_chunks(1), 1u);
    EXPECT_EQ(detail::num_chunks(detail::kGrain), 1u);
    EXPECT_EQ(detail::num_chunks(detail::kGrain + 1), 2u);
}

TEST(Parallel, ParallelForVisitsEveryIndexOnce) {
    ThreadCountGuard guard;
    set_thread_count(4);
    const std::size_t n = 3 * detail::kGrain + 17;
    std::vector<std::atomic<int>> hits(n);
    parallel_for(n, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Parallel, ReduceMergesInAscendingChunkOrder) {
    ThreadCountGuard guard;
    set_thread_count(8);
    const std::size_t n = 10 * detail::kGrain;  // 10 chunks
    // Each chunk records its own lower bound; the merged vector must list
    // them in ascending chunk order no matter which worker ran what.
    for (int round = 0; round < 20; ++round) {
        const auto order = parallel_reduce<std::vector<std::size_t>>(
            n,
            [](std::vector<std::size_t>& p, std::size_t lo, std::size_t) { p.push_back(lo); },
            [](std::vector<std::size_t>& a, std::vector<std::size_t>&& b) {
                a.insert(a.end(), b.begin(), b.end());
            });
        ASSERT_EQ(order.size(), detail::num_chunks(n));
        for (std::size_t c = 0; c + 1 < order.size(); ++c)
            EXPECT_LT(order[c], order[c + 1]) << "merge order must follow chunk order";
    }
}

TEST(Parallel, FloatSumIsBitIdenticalAcrossThreadCounts) {
    ThreadCountGuard guard;
    const std::size_t n = 5 * detail::kGrain + 123;
    std::vector<double> xs(n);
    Rng rng(42);
    for (auto& x : xs) x = rng.uniform(-1e9, 1e9);

    const auto sum_at = [&](int threads) {
        set_thread_count(threads);
        return parallel_reduce<double>(
            xs.size(),
            [&](double& p, std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i) p += xs[i];
            },
            [](double& a, double b) { a += b; });
    };
    const double at1 = sum_at(1);
    EXPECT_EQ(at1, sum_at(2));
    EXPECT_EQ(at1, sum_at(3));
    EXPECT_EQ(at1, sum_at(8));
}

TEST(Parallel, VectorConcatPreservesElementOrder) {
    ThreadCountGuard guard;
    const std::size_t n = 4 * detail::kGrain + 7;
    const auto collect_at = [&](int threads) {
        set_thread_count(threads);
        return parallel_reduce<std::vector<std::size_t>>(
            n,
            [](std::vector<std::size_t>& p, std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i) p.push_back(i);
            },
            [](std::vector<std::size_t>& a, std::vector<std::size_t>&& b) {
                a.insert(a.end(), b.begin(), b.end());
            });
    };
    const auto serial = collect_at(1);
    ASSERT_EQ(serial.size(), n);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(serial[i], i);
    EXPECT_EQ(serial, collect_at(6));
}

TEST(Parallel, SortMatchesSerialAndIsThreadCountInvariant) {
    ThreadCountGuard guard;
    const std::size_t n = 7 * detail::kGrain + 999;
    std::vector<std::uint64_t> base(n);
    Rng rng(7);
    for (auto& v : base) v = rng.next() % 1000;  // plenty of duplicate keys

    set_thread_count(1);
    auto one = base;
    parallel_sort(one);
    auto ref = base;
    std::sort(ref.begin(), ref.end());
    EXPECT_EQ(one, ref);

    for (const int threads : {2, 4, 8}) {
        set_thread_count(threads);
        auto many = base;
        parallel_sort(many);
        EXPECT_EQ(many, one) << "threads=" << threads;
    }
}

TEST(Parallel, SortTiesAreCanonicalAcrossThreadCounts) {
    ThreadCountGuard guard;
    // Sort pairs by first only: the final order of tied elements (distinct
    // .second) must not depend on the thread count.
    const std::size_t n = 6 * detail::kGrain;
    std::vector<std::pair<int, std::size_t>> base(n);
    Rng rng(11);
    for (std::size_t i = 0; i < n; ++i) base[i] = {static_cast<int>(rng.next() % 8), i};
    const auto by_first = [](const auto& a, const auto& b) { return a.first < b.first; };

    set_thread_count(1);
    auto one = base;
    parallel_sort(one, by_first);
    for (const int threads : {2, 8}) {
        set_thread_count(threads);
        auto many = base;
        parallel_sort(many, by_first);
        EXPECT_EQ(many, one) << "threads=" << threads;
    }
}

TEST(Parallel, StatsCountJobsAndMerges) {
    ThreadCountGuard guard;
    set_thread_count(2);
    reset_stats();
    const std::size_t n = 3 * detail::kGrain;
    (void)parallel_reduce<std::uint64_t>(
        n,
        [](std::uint64_t& p, std::size_t lo, std::size_t hi) { p += hi - lo; },
        [](std::uint64_t& a, std::uint64_t b) { a += b; });
    const StatsSnapshot st = stats();
    EXPECT_EQ(st.threads, 2);
    EXPECT_EQ(st.jobs, 1u);
    EXPECT_EQ(st.chunks, detail::num_chunks(n));
    EXPECT_EQ(st.merges, detail::num_chunks(n) - 1);

    reset_stats();
    // Single-chunk inputs run inline, no pool involvement.
    (void)parallel_reduce<std::uint64_t>(
        10,
        [](std::uint64_t& p, std::size_t lo, std::size_t hi) { p += hi - lo; },
        [](std::uint64_t& a, std::uint64_t b) { a += b; });
    EXPECT_EQ(stats().jobs, 0u);
}

TEST(Parallel, SetThreadCountZeroRestoresDefault) {
    ThreadCountGuard guard;
    set_thread_count(5);
    EXPECT_EQ(thread_count(), 5);
    set_thread_count(0);
    EXPECT_GE(thread_count(), 1);
}

}  // namespace
}  // namespace netsession::parallel
