// Deterministic RNG: reproducibility, stream independence, and first-moment
// sanity for every distribution.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"

namespace netsession {
namespace {

TEST(Rng, DeterministicBySeed) {
    Rng a(123), b(123), c(124);
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        EXPECT_EQ(va, b.next());
        (void)c.next();
    }
    Rng a2(123), c2(124);
    EXPECT_NE(a2.next(), c2.next());
}

TEST(Rng, UniformInUnitInterval) {
    Rng r(7);
    double sum = 0;
    for (int i = 0; i < 20000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000, 0.5, 0.01);
}

TEST(Rng, BelowIsBoundedAndCoversRange) {
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.below(7);
        ASSERT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
    Rng r(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceEdgeCases) {
    Rng r(13);
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    int hits = 0;
    for (int i = 0; i < 10000; ++i) hits += r.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
    Rng r(17);
    double sum = 0;
    for (int i = 0; i < 50000; ++i) sum += r.exponential(4.0);
    EXPECT_NEAR(sum / 50000, 4.0, 0.1);
}

TEST(Rng, NormalMoments) {
    Rng r(19);
    double sum = 0, sq = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double v = r.normal(10.0, 2.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 2.0, 0.05);
}

TEST(Rng, LognormalMedian) {
    Rng r(23);
    std::vector<double> xs;
    for (int i = 0; i < 20001; ++i) xs.push_back(r.lognormal(std::log(5.0), 0.8));
    std::nth_element(xs.begin(), xs.begin() + 10000, xs.end());
    EXPECT_NEAR(xs[10000], 5.0, 0.25);
}

TEST(Rng, ParetoBoundedBelow) {
    Rng r(29);
    for (int i = 0; i < 1000; ++i) ASSERT_GE(r.pareto(2.0, 1.1), 2.0);
}

TEST(Rng, ChildStreamsAreIndependentOfParentDraws) {
    Rng parent1(42);
    const auto c1 = parent1.child("stream");
    Rng parent2(42);
    for (int i = 0; i < 10; ++i) (void)parent2.next();  // drain the parent
    auto c2 = parent2.child("stream");
    Rng c1_copy = c1;
    EXPECT_EQ(c1_copy.next(), c2.next()) << "children depend only on (seed, label)";
}

TEST(Rng, ChildStreamsDifferByLabel) {
    Rng parent(42);
    auto a = parent.child("a");
    auto b = parent.child("b");
    EXPECT_NE(a.next(), b.next());
}

}  // namespace
}  // namespace netsession
