#include <gtest/gtest.h>

#include <unordered_set>

#include "common/result.hpp"
#include "common/types.hpp"

namespace netsession {
namespace {

TEST(Uid128, NilAndComparison) {
    Guid nil;
    EXPECT_TRUE(nil.is_nil());
    Guid a{1, 2}, b{1, 3};
    EXPECT_FALSE(a.is_nil());
    EXPECT_LT(a, b);
    EXPECT_NE(a, b);
    EXPECT_EQ(a, (Guid{1, 2}));
}

TEST(Uid128, ToStringIsStableHex) {
    const Guid g{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
    EXPECT_EQ(g.to_string(), "0123456789abcdeffedcba9876543210");
}

TEST(Uid128, TagTypesAreDistinct) {
    static_assert(!std::is_same_v<Guid, ObjectId>);
    static_assert(!std::is_same_v<Guid, SecondaryGuid>);
}

TEST(Uid128, HashableDistinct) {
    std::unordered_set<Guid> set;
    for (std::uint64_t i = 0; i < 1000; ++i) set.insert(Guid{i, i * 31});
    EXPECT_EQ(set.size(), 1000u);
}

TEST(IntId, ComparisonAndHash) {
    Asn a{7}, b{8};
    EXPECT_LT(a, b);
    std::unordered_set<Asn> set{a, b, Asn{7}};
    EXPECT_EQ(set.size(), 2u);
}

TEST(Units, ByteLiterals) {
    EXPECT_EQ(5_KB, 5000);
    EXPECT_EQ(2_MB, 2'000'000);
    EXPECT_EQ(3_GB, 3'000'000'000LL);
}

TEST(Units, MbpsConversion) {
    EXPECT_DOUBLE_EQ(mbps(8.0), 1e6);  // 8 Mbit/s == 1 MB/s
}

TEST(Result, ValueAndError) {
    Result<int> ok(42);
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.value(), 42);

    Result<int> err(Error{Error::Code::not_found, "missing"});
    EXPECT_FALSE(err.ok());
    EXPECT_EQ(err.error().code, Error::Code::not_found);
    EXPECT_EQ(err.value_or(-1), -1);
    EXPECT_EQ(ok.value_or(-1), 42);
}

TEST(Result, StatusDefaultsOk) {
    Status s;
    EXPECT_TRUE(s.ok());
    Status bad{Error{Error::Code::unauthorized, "nope"}};
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(to_string(bad.error().code), "unauthorized");
}

}  // namespace
}  // namespace netsession
