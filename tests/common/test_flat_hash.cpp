// FlatHashMap/FlatHashSet: insertion-ordered iteration survives growth,
// erasure, tombstone compaction; lookups stay correct throughout.
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace netsession {
namespace {

TEST(FlatHashMap, InsertFindErase) {
    FlatHashMap<int, std::string> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(1), m.end());

    m[1] = "one";
    m[2] = "two";
    auto [it, fresh] = m.try_emplace(3, "three");
    EXPECT_TRUE(fresh);
    EXPECT_EQ(it->second, "three");
    EXPECT_EQ(m.size(), 3u);

    EXPECT_TRUE(m.contains(2));
    EXPECT_EQ(m.at(2), "two");
    EXPECT_EQ(m.find(2)->second, "two");

    EXPECT_EQ(m.erase(2), 1u);
    EXPECT_EQ(m.erase(2), 0u);
    EXPECT_FALSE(m.contains(2));
    EXPECT_EQ(m.size(), 2u);
}

TEST(FlatHashMap, TryEmplaceDoesNotOverwrite) {
    FlatHashMap<int, int> m;
    m.try_emplace(7, 1);
    auto [it, fresh] = m.try_emplace(7, 2);
    EXPECT_FALSE(fresh);
    EXPECT_EQ(it->second, 1);
    m.insert_or_assign(7, 3);
    EXPECT_EQ(m.at(7), 3);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatHashMap, IterationIsInsertionOrdered) {
    FlatHashMap<std::uint64_t, int> m;
    std::vector<std::uint64_t> keys;
    // Keys chosen adversarially for a power-of-two table: identical low bits.
    for (std::uint64_t i = 0; i < 100; ++i) {
        const std::uint64_t k = i << 32;
        m[k] = static_cast<int>(i);
        keys.push_back(k);
    }
    std::size_t pos = 0;
    for (const auto& [k, v] : m) {
        ASSERT_LT(pos, keys.size());
        EXPECT_EQ(k, keys[pos]) << "iteration must follow insertion order";
        EXPECT_EQ(v, static_cast<int>(pos));
        ++pos;
    }
    EXPECT_EQ(pos, keys.size());
}

TEST(FlatHashMap, OrderPreservedAcrossEraseAndCompaction) {
    FlatHashMap<int, int> m;
    for (int i = 0; i < 300; ++i) m[i] = i;
    // Erase every even key — far past the compaction trigger.
    for (int i = 0; i < 300; i += 2) EXPECT_EQ(m.erase(i), 1u);
    EXPECT_EQ(m.size(), 150u);

    int expect = 1;
    for (const auto& [k, v] : m) {
        EXPECT_EQ(k, expect);
        EXPECT_EQ(v, expect);
        expect += 2;
    }
    EXPECT_EQ(expect, 301);
    // Survivors still findable, evictees gone.
    for (int i = 0; i < 300; ++i) EXPECT_EQ(m.contains(i), i % 2 == 1) << i;
}

TEST(FlatHashMap, ReinsertAfterEraseAppendsAtEnd) {
    FlatHashMap<int, int> m;
    m[1] = 1;
    m[2] = 2;
    m[3] = 3;
    m.erase(2);
    m[2] = 22;  // erased key re-inserted: new insertion position
    std::vector<int> order;
    for (const auto& [k, v] : m) order.push_back(k);
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
    EXPECT_EQ(m.at(2), 22);
}

TEST(FlatHashMap, GrowthKeepsAllEntries) {
    FlatHashMap<std::uint64_t, std::uint64_t> m;
    Rng rng(99);
    std::unordered_map<std::uint64_t, std::uint64_t> oracle;
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t k = rng.below(30000);
        if (rng.chance(0.3)) {
            const bool erased_o = oracle.erase(k) > 0;
            EXPECT_EQ(m.erase(k) > 0, erased_o);
        } else {
            oracle[k] = static_cast<std::uint64_t>(i);
            m.insert_or_assign(k, static_cast<std::uint64_t>(i));
        }
        ASSERT_EQ(m.size(), oracle.size());
    }
    for (const auto& [k, v] : oracle) {
        const auto* found = m.find_value(k);
        ASSERT_NE(found, nullptr) << k;
        EXPECT_EQ(*found, v);
    }
    std::size_t seen = 0;
    for ([[maybe_unused]] const auto& kv : m) ++seen;
    EXPECT_EQ(seen, oracle.size());
}

TEST(FlatHashMap, UidKeysAndClearKeepsStorage) {
    FlatHashMap<Guid, int> m;
    for (std::uint64_t i = 1; i <= 50; ++i) m[Guid{i, i}] = static_cast<int>(i);
    EXPECT_EQ(m.size(), 50u);
    const std::size_t buckets = m.bucket_count();
    const std::size_t bytes = m.memory_bytes();
    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.bucket_count(), buckets) << "clear() must retain capacity";
    EXPECT_EQ(m.memory_bytes(), bytes);
    m[Guid{7, 7}] = 7;
    EXPECT_EQ(m.at((Guid{7, 7})), 7);
}

TEST(FlatHashMap, LoadFactorBounded) {
    FlatHashMap<int, int> m;
    for (int i = 0; i < 5000; ++i) {
        m[i] = i;
        ASSERT_LE(m.load_factor(), 0.875) << "index table over-full at " << i;
    }
    EXPECT_GT(m.load_factor(), 0.1);
}

TEST(FlatHashSet, BasicAndOrdered) {
    FlatHashSet<std::uint64_t> s;
    EXPECT_TRUE(s.insert(5).second);
    EXPECT_FALSE(s.insert(5).second);
    EXPECT_TRUE(s.insert(1).second);
    EXPECT_TRUE(s.insert(9).second);
    EXPECT_EQ(s.size(), 3u);
    EXPECT_TRUE(s.contains(9));
    EXPECT_FALSE(s.contains(2));

    std::vector<std::uint64_t> order(s.begin(), s.end());
    EXPECT_EQ(order, (std::vector<std::uint64_t>{5, 1, 9}));

    EXPECT_EQ(s.erase(5), 1u);
    EXPECT_FALSE(s.contains(5));
    order.assign(s.begin(), s.end());
    EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 9}));
}

TEST(FlatHashMap, ShrinkToFitReleasesPeakStorageAndPreservesOrder) {
    FlatHashMap<int, std::string> m;
    for (int i = 0; i < 4096; ++i) m[i] = std::to_string(i);
    // Erase-heavy demotion: keep a sparse survivor set, out of insertion order.
    for (int i = 0; i < 4096; ++i)
        if (i % 97 != 0) m.erase(i);
    ASSERT_EQ(m.size(), 43u);
    const std::size_t peak_bytes = m.memory_bytes();

    m.shrink_to_fit();
    EXPECT_LT(m.memory_bytes(), peak_bytes / 8)
        << "post-shrink storage must be proportional to survivors, not the peak";
    EXPECT_EQ(m.size(), 43u);

    // Contents and insertion-ordered iteration survive the reindex.
    std::vector<int> order;
    for (const auto& [k, v] : m) {
        EXPECT_EQ(v, std::to_string(k));
        order.push_back(k);
    }
    std::vector<int> expected;
    for (int i = 0; i < 4096; i += 97) expected.push_back(i);
    EXPECT_EQ(order, expected);
    for (int i = 0; i < 4096; ++i) EXPECT_EQ(m.contains(i), i % 97 == 0) << i;

    // The table stays fully usable after shrinking.
    m[100000] = "big";
    EXPECT_EQ(m.at(100000), "big");
    EXPECT_EQ(m.size(), 44u);
}

TEST(FlatHashMap, ShrinkToFitOnEmptyTableDropsAllStorage) {
    FlatHashMap<std::uint64_t, std::uint64_t> m;
    for (std::uint64_t i = 0; i < 1000; ++i) m[i] = i;
    for (std::uint64_t i = 0; i < 1000; ++i) m.erase(i);
    EXPECT_TRUE(m.empty());
    EXPECT_GT(m.memory_bytes(), 0u);
    m.shrink_to_fit();
    EXPECT_EQ(m.memory_bytes(), 0u) << "an empty table should own no memory";
    m[7] = 7;  // still usable from scratch
    EXPECT_EQ(m.at(7), 7u);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatHashSet, ChurnAgainstOracle) {
    FlatHashSet<std::uint64_t> s;
    Rng rng(3);
    std::unordered_map<std::uint64_t, bool> oracle;
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t k = rng.below(4000);
        if (rng.chance(0.4)) {
            s.erase(k);
            oracle[k] = false;
        } else {
            s.insert(k);
            oracle[k] = true;
        }
    }
    for (const auto& [k, present] : oracle) EXPECT_EQ(s.contains(k), present) << k;
}

}  // namespace
}  // namespace netsession
