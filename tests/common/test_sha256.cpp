// SHA-256 / HMAC-SHA256 against FIPS-180-4 and RFC 4231 test vectors.
#include <gtest/gtest.h>

#include <string>

#include "common/sha256.hpp"

namespace netsession {
namespace {

TEST(Sha256, EmptyString) {
    EXPECT_EQ(Sha256::hash("").to_hex(),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
    EXPECT_EQ(Sha256::hash("abc").to_hex(),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
    EXPECT_EQ(Sha256::hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
    Sha256 h;
    const std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) h.update(chunk);
    EXPECT_EQ(h.finish().to_hex(),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
    const std::string msg = "The quick brown fox jumps over the lazy dog";
    for (std::size_t split = 0; split <= msg.size(); ++split) {
        Sha256 h;
        h.update(msg.substr(0, split));
        h.update(msg.substr(split));
        EXPECT_EQ(h.finish(), Sha256::hash(msg)) << "split at " << split;
    }
}

TEST(Sha256, ExactBlockBoundaries) {
    // 55/56/64/65 bytes straddle the padding boundary cases.
    for (const std::size_t n : {55u, 56u, 63u, 64u, 65u, 119u, 128u}) {
        const std::string msg(n, 'x');
        Sha256 a;
        a.update(msg);
        Sha256 b;
        for (const char c : msg) b.update(std::string(1, c));
        EXPECT_EQ(a.finish(), b.finish()) << "length " << n;
    }
}

TEST(Sha256, Prefix64IsBigEndianPrefix) {
    const Digest256 d = Sha256::hash("abc");
    EXPECT_EQ(d.prefix64(), 0xba7816bf8f01cfeaULL);
}

TEST(HmacSha256, Rfc4231Case1) {
    const std::string key(20, '\x0b');
    EXPECT_EQ(hmac_sha256(key, "Hi There").to_hex(),
              "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
    EXPECT_EQ(hmac_sha256("Jefe", "what do ya want for nothing?").to_hex(),
              "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231LongKey) {
    const std::string key(131, '\xaa');
    EXPECT_EQ(hmac_sha256(key, "Test Using Larger Than Block-Size Key - Hash Key First").to_hex(),
              "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(ConstantTimeEqual, MatchesOperatorEqForEveryBitFlip) {
    const Digest256 base = Sha256::hash("token");
    EXPECT_TRUE(constant_time_equal(base, base));
    // Flipping any single bit anywhere in the digest must be detected — the
    // comparison may not early-exit on a prefix match (that timing leak is
    // the whole reason this function exists; see TokenAuthority::validate).
    for (std::size_t byte = 0; byte < base.bytes.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            Digest256 flipped = base;
            flipped.bytes[byte] = static_cast<std::uint8_t>(flipped.bytes[byte] ^ (1u << bit));
            EXPECT_FALSE(constant_time_equal(base, flipped)) << "byte " << byte << " bit " << bit;
            EXPECT_FALSE(constant_time_equal(flipped, base)) << "byte " << byte << " bit " << bit;
        }
    }
}

TEST(HmacSha256, KeySensitivity) {
    EXPECT_NE(hmac_sha256("key1", "message"), hmac_sha256("key2", "message"));
    EXPECT_NE(hmac_sha256("key", "message1"), hmac_sha256("key", "message2"));
    EXPECT_EQ(hmac_sha256("key", "message"), hmac_sha256("key", "message"));
}

}  // namespace
}  // namespace netsession
