#include <gtest/gtest.h>

#include "common/format.hpp"

namespace netsession {
namespace {

TEST(Format, Bytes) {
    EXPECT_EQ(format_bytes(17), "17 B");
    EXPECT_EQ(format_bytes(12'000), "12.00 kB");
    EXPECT_EQ(format_bytes(240'000'000), "240.00 MB");
    EXPECT_EQ(format_bytes(1'500'000'000), "1.50 GB");
    EXPECT_EQ(format_bytes(34'200'000'000'000), "34.20 TB");
    EXPECT_EQ(format_bytes(2'000'000'000'000'000), "2.00 PB");
}

TEST(Format, Rate) { EXPECT_EQ(format_rate(mbps(4.21)), "4.21 Mbps"); }

TEST(Format, Percent) {
    EXPECT_EQ(format_percent(0.714), "71.4%");
    EXPECT_EQ(format_percent(0.0), "0.0%");
    EXPECT_EQ(format_percent(1.0), "100.0%");
}

TEST(Format, Count) {
    EXPECT_EQ(format_count(0), "0");
    EXPECT_EQ(format_count(999), "999");
    EXPECT_EQ(format_count(1000), "1,000");
    EXPECT_EQ(format_count(25'941'122), "25,941,122");
    EXPECT_EQ(format_count(-1234567), "-1,234,567");
}

TEST(Format, Duration) {
    EXPECT_EQ(format_duration_s(3661), "01:01:01");
    EXPECT_EQ(format_duration_s(3 * 86400 + 4 * 3600 + 5 * 60 + 6), "3d 04:05:06");
}

TEST(Format, RateRoundTrip) {
    EXPECT_DOUBLE_EQ(to_mbps(mbps(17.5)), 17.5);
}

}  // namespace
}  // namespace netsession
