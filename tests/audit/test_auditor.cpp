// Runtime invariant auditor: the cross-layer contracts hold across the
// chaos matrix (zero violations, faults or not), the counters account for
// every sweep, and enabling the auditor cannot perturb trace bytes — it is
// a reader with no RNG, same passivity contract as obs::Sampler.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "analysis/measurement.hpp"
#include "core/simulation.hpp"
#include "fault/fault_spec.hpp"
#include "trace/serialize.hpp"

namespace netsession {
namespace {

SimulationConfig audit_config(std::uint64_t seed) {
    SimulationConfig config;
    config.seed = seed;
    config.peers = 500;
    config.behavior.warmup = sim::days(1.0);
    config.behavior.window = sim::days(3.0);
    config.behavior.downloads_per_peer_per_month = 25.0;
    config.as_graph.total_ases = 200;
    // Non-fatal in-process: the test asserts on the counters instead of
    // relying on abort() (the CI audit flavour runs the fatal build).
    config.audit.fatal = false;
    config.audit.interval = sim::hours(3.0);
    return config;
}

void add_fault(SimulationConfig& config, const std::string& spec) {
    auto event = fault::parse_fault_event(spec);
    ASSERT_TRUE(event.ok()) << spec << ": " << (event.ok() ? "" : event.error().message);
    config.faults.events.push_back(event.value());
}

TEST(Auditor, CleanRunHasNoViolations) {
    auto config = audit_config(601);
    Simulation s(config);
    s.run();
    // Two same-instant sweeps: persistence windows (directory, stall) are
    // measured in simulated time, so back-to-back calls must not self-confirm.
    s.auditor().audit_now();
    s.auditor().audit_now();
    EXPECT_GE(s.auditor().counters().audits_run, 2);
    EXPECT_EQ(s.auditor().counters().total(), 0)
        << (s.auditor().reports().empty() ? "" : s.auditor().reports().front());
}

TEST(Auditor, FullChaosMatrixAuditsClean) {
    // Every fault class in one run — partitions healing mid-transfer, a DN
    // restart RE-ADD storm, layered AS degradations, churn, a crowd — and
    // the cross-layer invariants must hold at the end-state sweep.
    auto config = audit_config(602);
    add_fault(config, "edge_outage at=1.5 duration=0.2 region=all");
    add_fault(config, "region_partition at=1.6 duration=0.2 region=6");
    add_fault(config, "as_degradation at=1.5 duration=1 asn=3 latency_x=4 rate_x=0.25 loss=0.02");
    add_fault(config, "as_degradation at=2 duration=1 asn=3 latency_x=2 rate_x=0.5 loss=0");
    add_fault(config, "stun_blackout at=2 duration=0.5");
    add_fault(config, "mass_churn at=2.2 fraction=0.3");
    add_fault(config, "cn_outage at=2.5 duration=0.2 region=all");
    add_fault(config, "dn_outage at=3 duration=0.2 region=all");
    add_fault(config, "flash_crowd at=3.3 fraction=0.2");
    Simulation s(config);
    s.run();
    EXPECT_EQ(s.faults().faults_applied(), 9);

    s.auditor().audit_now();
    s.auditor().audit_now();
    EXPECT_EQ(s.auditor().counters().total(), 0)
        << (s.auditor().reports().empty() ? "" : s.auditor().reports().front());
    const auto outcomes = analysis::outcome_stats(s.trace());
    EXPECT_GT(outcomes.all.n, 50) << "the audited run must still be a real workload";
}

TEST(Auditor, CampaignRunAuditsClean) {
    auto config = audit_config(603);
    auto spec = fault::parse_campaign(
        "seed=7 waves=2 mean_concurrent=2 start=1.5 spacing=1 duration=0.1 fraction=0.15");
    ASSERT_TRUE(spec.ok()) << spec.error().message;
    config.campaigns.push_back(spec.value());
    Simulation s(config);
    s.run();
    EXPECT_GT(s.faults().faults_applied(), 0) << "the campaign must have expanded into faults";

    s.auditor().audit_now();
    s.auditor().audit_now();
    EXPECT_EQ(s.auditor().counters().total(), 0)
        << (s.auditor().reports().empty() ? "" : s.auditor().reports().front());
}

TEST(Auditor, CountersAccountForEverySweep) {
    auto config = audit_config(604);
    config.peers = 200;
    config.behavior.window = sim::days(1.0);
    Simulation s(config);
    s.run();
    const std::int64_t before = s.auditor().counters().audits_run;
    s.auditor().audit_now();
    s.auditor().audit_now();
    s.auditor().audit_now();
    EXPECT_EQ(s.auditor().counters().audits_run, before + 3);
}

TEST(Auditor, EnablingAuditorDoesNotChangeTraceBytes) {
    // Passivity: the same scenario serialized with the periodic auditor on
    // and off must produce identical bytes — every login, download, transfer
    // and fault record untouched. Metric sampling is off for the comparison:
    // the sim.events_* bookkeeping gauges count the auditor's own tick events
    // (exactly as they count the sampler's), which is the one sanctioned
    // difference. In NS_AUDIT=OFF builds both runs simply never audit — the
    // comparison still pins determinism.
    const auto run_once = [](bool audit_on, const std::string& path) {
        auto config = audit_config(605);
        config.peers = 300;
        add_fault(config, "edge_outage at=1.5 duration=0.2 region=all");
        add_fault(config, "mass_churn at=2 fraction=0.3");
        config.metrics.enabled = false;
        config.audit.enabled = audit_on;
        config.audit.interval = sim::hours(1.0);
        Simulation s(config);
        s.run();
        trace::Dataset dataset;
        dataset.log = s.trace();
        s.geodb().for_each([&](net::IpAddr ip, const net::GeoRecord& rec) {
            dataset.geodb.register_ip(ip, rec);
        });
        ASSERT_TRUE(trace::save_dataset(dataset, path));
    };
    const auto dir = std::filesystem::temp_directory_path();
    const std::string path_on = (dir / "ns_audit_passivity_on.nstrace").string();
    const std::string path_off = (dir / "ns_audit_passivity_off.nstrace").string();
    run_once(true, path_on);
    run_once(false, path_off);
    const auto read_all = [](const std::string& p) {
        std::ifstream in(p, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(in), {});
    };
    const std::string bytes_on = read_all(path_on);
    ASSERT_GT(bytes_on.size(), 1000u);
    EXPECT_TRUE(bytes_on == read_all(path_off))
        << "the auditor perturbed the simulation it was only meant to observe";
    std::filesystem::remove(path_on);
    std::filesystem::remove(path_off);
}

}  // namespace
}  // namespace netsession
