// FaultPlan parsing: every kind parses, renders, and round-trips; typos are
// hard errors (a misspelled fault must not silently become a no-op run).
#include <gtest/gtest.h>

#include "fault/fault_spec.hpp"

namespace netsession::fault {
namespace {

FaultEvent parse_ok(const std::string& text) {
    auto result = parse_fault_event(text);
    EXPECT_TRUE(result.ok()) << text << ": " << (result.ok() ? "" : result.error().message);
    return result.ok() ? result.value() : FaultEvent{};
}

TEST(FaultPlan, ParsesEdgeOutage) {
    const FaultEvent e = parse_ok("edge_outage at=12 duration=1 region=2");
    EXPECT_EQ(e.kind, FaultKind::edge_outage);
    EXPECT_DOUBLE_EQ(e.at_days, 12.0);
    EXPECT_DOUBLE_EQ(e.duration_days, 1.0);
    EXPECT_EQ(e.region, 2);
}

TEST(FaultPlan, RegionAllMeansEveryRegion) {
    EXPECT_EQ(parse_ok("edge_outage at=0 region=all").region, -1);
    EXPECT_EQ(parse_ok("cn_outage at=0").region, -1) << "default scope is all regions";
}

TEST(FaultPlan, ParsesPartition) {
    const FaultEvent e = parse_ok("region_partition at=3 duration=0.5 region=0 region_b=3");
    EXPECT_EQ(e.kind, FaultKind::region_partition);
    EXPECT_EQ(e.region, 0);
    EXPECT_EQ(e.region_b, 3);
}

TEST(FaultPlan, ParsesAsDegradation) {
    const FaultEvent e =
        parse_ok("as_degradation at=1 duration=2 asn=7 latency_x=5 rate_x=0.2 loss=0.05");
    EXPECT_EQ(e.kind, FaultKind::as_degradation);
    EXPECT_EQ(e.asn, 7u);
    EXPECT_DOUBLE_EQ(e.latency_factor, 5.0);
    EXPECT_DOUBLE_EQ(e.rate_factor, 0.2);
    EXPECT_DOUBLE_EQ(e.loss, 0.05);
}

TEST(FaultPlan, ParsesChurnAndCrowd) {
    EXPECT_DOUBLE_EQ(parse_ok("mass_churn at=6 fraction=0.3").fraction, 0.3);
    EXPECT_DOUBLE_EQ(parse_ok("flash_crowd at=6 fraction=0.2").fraction, 0.2);
    EXPECT_EQ(parse_ok("stun_blackout at=6 duration=2").kind, FaultKind::stun_blackout);
}

TEST(FaultPlan, PermanentFaultHasZeroDuration) {
    EXPECT_DOUBLE_EQ(parse_ok("stun_blackout at=0").duration_days, 0.0);
}

TEST(FaultPlan, RejectsTyposAndBadValues) {
    EXPECT_FALSE(parse_fault_event("").ok());
    EXPECT_FALSE(parse_fault_event("edge_outge at=1").ok()) << "unknown kind";
    EXPECT_FALSE(parse_fault_event("edge_outage att=1").ok()) << "unknown key";
    EXPECT_FALSE(parse_fault_event("edge_outage at").ok()) << "key without value";
    EXPECT_FALSE(parse_fault_event("edge_outage at=-1").ok()) << "negative time";
    EXPECT_FALSE(parse_fault_event("edge_outage at=soon").ok()) << "non-numeric";
    EXPECT_FALSE(parse_fault_event("mass_churn at=1").ok()) << "churn without fraction";
    EXPECT_FALSE(parse_fault_event("mass_churn at=1 fraction=1.5").ok()) << "fraction > 1";
    EXPECT_FALSE(parse_fault_event("as_degradation at=1 asn=3").ok())
        << "degradation that degrades nothing";
    EXPECT_FALSE(parse_fault_event("as_degradation at=1 asn=3 rate_x=0").ok())
        << "rate zero would freeze flows invisibly";
    EXPECT_FALSE(parse_fault_event("as_degradation at=1 asn=3 latency_x=0.5").ok())
        << "latency speedup is not a fault";
    EXPECT_FALSE(parse_fault_event("as_degradation at=1 asn=3 loss=1").ok())
        << "loss=1 drops everything forever";
}

TEST(FaultPlan, EveryKindRoundTrips) {
    const char* specs[] = {
        "edge_outage at=12 duration=1 region=2",
        "edge_outage at=0.25 region=all",
        "region_partition at=3 duration=0.5 region=0 region_b=3",
        "region_partition at=3 region=6 region_b=all",
        "as_degradation at=1 duration=2 asn=7 latency_x=5 rate_x=0.2 loss=0.05",
        "stun_blackout at=6 duration=2",
        "mass_churn at=6 fraction=0.3",
        "cn_outage at=6 duration=0.5 region=all",
        "dn_outage at=6 duration=0.5 region=1",
        "flash_crowd at=6 fraction=0.2",
    };
    for (const char* spec : specs) {
        const FaultEvent e = parse_ok(spec);
        const std::string rendered = to_string(e);
        EXPECT_EQ(rendered, spec) << "render must reproduce the canonical spelling";
        auto again = parse_fault_event(rendered);
        ASSERT_TRUE(again.ok()) << rendered;
        EXPECT_EQ(to_string(again.value()), rendered);
    }
}

}  // namespace
}  // namespace netsession::fault
