// Campaign grammar + expansion: the spec parses and round-trips, typos are
// hard errors, and expansion is a pure function of (spec, context) — the
// determinism contract chaos-fuzz relies on (docs/ROBUSTNESS.md §2a).
#include <gtest/gtest.h>

#include "fault/campaign.hpp"

namespace netsession::fault {
namespace {

CampaignContext test_context() {
    CampaignContext ctx;
    ctx.regions = 9;
    ctx.asns = {101, 202, 303, 404};
    return ctx;
}

CampaignSpec parse_ok(const std::string& text) {
    auto result = parse_campaign(text);
    EXPECT_TRUE(result.ok()) << text << ": " << (result.ok() ? "" : result.error().message);
    return result.ok() ? result.value() : CampaignSpec{};
}

std::string plan_fingerprint(const FaultPlan& plan) {
    std::string out;
    for (const FaultEvent& e : plan.events) {
        out += to_string(e);
        out += '\n';
    }
    return out;
}

TEST(Campaign, ParsesFullSpec) {
    const CampaignSpec spec = parse_ok(
        "seed=7 waves=5 mean_concurrent=2.5 kinds=cn_outage,dn_outage,mass_churn "
        "start=2 spacing=1.5 duration=0.25 fraction=0.3 correlated=0.75");
    EXPECT_EQ(spec.seed, 7u);
    EXPECT_EQ(spec.waves, 5);
    EXPECT_DOUBLE_EQ(spec.mean_concurrent, 2.5);
    ASSERT_EQ(spec.kinds.size(), 3u);
    EXPECT_EQ(spec.kinds[0], FaultKind::cn_outage);
    EXPECT_EQ(spec.kinds[2], FaultKind::mass_churn);
    EXPECT_DOUBLE_EQ(spec.start_days, 2.0);
    EXPECT_DOUBLE_EQ(spec.spacing_days, 1.5);
    EXPECT_DOUBLE_EQ(spec.duration_days, 0.25);
    EXPECT_DOUBLE_EQ(spec.fraction, 0.3);
    EXPECT_DOUBLE_EQ(spec.correlated, 0.75);
}

TEST(Campaign, SpecRoundTrips) {
    const char* specs[] = {
        "seed=7 waves=5 mean_concurrent=2.5 kinds=cn_outage,dn_outage,mass_churn "
        "start=2 spacing=1.5 duration=0.25 fraction=0.3 correlated=0.75",
        "seed=1 waves=3 mean_concurrent=2 start=1 spacing=1 duration=0.25 fraction=0.2 "
        "correlated=0.5",
    };
    for (const char* text : specs) {
        const CampaignSpec spec = parse_ok(text);
        EXPECT_EQ(to_string(spec), text) << "render must reproduce the canonical spelling";
        auto again = parse_campaign(to_string(spec));
        ASSERT_TRUE(again.ok());
        EXPECT_EQ(to_string(again.value()), to_string(spec));
    }
}

TEST(Campaign, RejectsTyposAndBadValues) {
    EXPECT_FALSE(parse_campaign("").ok()) << "empty spec";
    EXPECT_FALSE(parse_campaign("sede=7").ok()) << "unknown key";
    EXPECT_FALSE(parse_campaign("seed").ok()) << "key without value";
    EXPECT_FALSE(parse_campaign("waves=0").ok()) << "zero waves";
    EXPECT_FALSE(parse_campaign("mean_concurrent=0.5").ok()) << "sub-single concurrency";
    EXPECT_FALSE(parse_campaign("kinds=edge_outge").ok()) << "misspelled kind";
    EXPECT_FALSE(parse_campaign("kinds=").ok()) << "empty kind list";
    EXPECT_FALSE(parse_campaign("spacing=0").ok()) << "zero spacing";
    EXPECT_FALSE(parse_campaign("fraction=1.5").ok()) << "fraction > 1";
    EXPECT_FALSE(parse_campaign("correlated=2").ok()) << "probability > 1";
    EXPECT_FALSE(parse_campaign("start=soon").ok()) << "non-numeric";
}

TEST(Campaign, ExpansionIsDeterministic) {
    const CampaignSpec spec = parse_ok("seed=7 waves=5 mean_concurrent=2");
    const CampaignContext ctx = test_context();
    const std::string a = plan_fingerprint(expand_campaign(spec, ctx));
    const std::string b = plan_fingerprint(expand_campaign(spec, ctx));
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.empty());

    CampaignSpec other = spec;
    other.seed = 8;
    EXPECT_NE(plan_fingerprint(expand_campaign(other, ctx)), a)
        << "different seed must draw a different storm";
}

TEST(Campaign, IntegerConcurrencyIsExactAndKindsAreRespected) {
    // correlated=0 and an integer mean: every wave draws exactly that many
    // events, all from the requested kind list.
    CampaignSpec spec = parse_ok("seed=3 waves=4 mean_concurrent=2 correlated=0");
    spec.kinds = {FaultKind::mass_churn};
    const FaultPlan plan = expand_campaign(spec, test_context());
    EXPECT_EQ(plan.events.size(), 8u);
    for (const FaultEvent& e : plan.events) EXPECT_EQ(e.kind, FaultKind::mass_churn);
}

TEST(Campaign, CorrelatedCompanionOverlapsItsAnchor) {
    // correlated=1: every wave carries a companion. An outage anchor's
    // companion is a flash crowd landing while the outage is still active;
    // a one-shot anchor's companion is a DN outage spanning the shock.
    CampaignSpec spec = parse_ok("seed=5 waves=6 mean_concurrent=1 correlated=1 duration=0.5");
    spec.kinds = {FaultKind::edge_outage};
    const FaultPlan plan = expand_campaign(spec, test_context());
    ASSERT_EQ(plan.events.size(), 12u);
    for (std::size_t w = 0; w < 6; ++w) {
        const FaultEvent& anchor = plan.events[2 * w];
        const FaultEvent& companion = plan.events[2 * w + 1];
        EXPECT_EQ(anchor.kind, FaultKind::edge_outage);
        EXPECT_EQ(companion.kind, FaultKind::flash_crowd);
        EXPECT_GE(companion.at_days, anchor.at_days);
        EXPECT_LT(companion.at_days, anchor.at_days + anchor.duration_days)
            << "the crowd must land while the outage is still dark";
    }

    spec.kinds = {FaultKind::mass_churn};
    const FaultPlan shocks = expand_campaign(spec, test_context());
    ASSERT_EQ(shocks.events.size(), 12u);
    for (std::size_t w = 0; w < 6; ++w) {
        const FaultEvent& anchor = shocks.events[2 * w];
        const FaultEvent& companion = shocks.events[2 * w + 1];
        EXPECT_EQ(anchor.kind, FaultKind::mass_churn);
        EXPECT_EQ(companion.kind, FaultKind::dn_outage);
        EXPECT_LE(companion.at_days, anchor.at_days) << "restart must begin before the shock";
        EXPECT_GT(companion.at_days + companion.duration_days, anchor.at_days)
            << "and still be down when the churn hits";
    }
}

TEST(Campaign, EditingWaveCountKeepsEarlierWavesStable) {
    // Per-wave child RNG streams: adding waves appends, never reshuffles.
    CampaignSpec spec = parse_ok("seed=11 waves=2 mean_concurrent=2 correlated=0");
    const CampaignContext ctx = test_context();
    const std::string two = plan_fingerprint(expand_campaign(spec, ctx));
    spec.waves = 3;
    const std::string three = plan_fingerprint(expand_campaign(spec, ctx));
    EXPECT_EQ(three.substr(0, two.size()), two);
    EXPECT_GT(three.size(), two.size());
}

TEST(Campaign, AppendLayersOnExplicitPlan) {
    FaultPlan plan;
    plan.events.push_back(parse_fault_event("stun_blackout at=1 duration=2").value());
    const CampaignSpec spec = parse_ok("seed=7 waves=2 mean_concurrent=1 correlated=0");
    append_campaigns(plan, {spec}, test_context());
    ASSERT_GE(plan.events.size(), 3u);
    EXPECT_EQ(plan.events[0].kind, FaultKind::stun_blackout)
        << "explicit events stay first; campaigns append";
}

TEST(Campaign, DrawsUseContextTargets) {
    CampaignSpec spec = parse_ok("seed=13 waves=8 mean_concurrent=2 correlated=0");
    spec.kinds = {FaultKind::as_degradation};
    const CampaignContext ctx = test_context();
    const FaultPlan plan = expand_campaign(spec, ctx);
    ASSERT_FALSE(plan.events.empty());
    for (const FaultEvent& e : plan.events) {
        EXPECT_TRUE(std::find(ctx.asns.begin(), ctx.asns.end(), e.asn) != ctx.asns.end())
            << "degradations must target the context's eyeball ASes, got asn=" << e.asn;
        EXPECT_GE(e.latency_factor, 1.0);
        EXPECT_GT(e.rate_factor, 0.0);
        EXPECT_LE(e.rate_factor, 1.0);
    }
}

}  // namespace
}  // namespace netsession::fault
