// Golden-metrics regression: the full metric registry of a fixed small
// scenario, compared byte-for-byte against a checked-in JSON snapshot.
//
// Any intentional change to instrumentation (new metric, renamed series,
// different sampling semantics) or to the simulation itself shows up as a
// diff of tests/data/golden_metrics_small.json — review it, then regenerate
// with:
//
//     NS_REGEN_GOLDEN=1 ./build/tests/test_fidelity --gtest_filter='GoldenMetrics.*'
//
// and commit the updated snapshot alongside the change. The comparison is
// exact (obs::to_json formats doubles deterministically), so an unintended
// diff here means real nondeterminism or an accidental behaviour change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>

#include "audit/auditor.hpp"
#include "core/simulation.hpp"
#include "obs/export.hpp"

namespace netsession {
namespace {

const char* kGoldenPath = NS_SOURCE_DIR "/tests/data/golden_metrics_small.json";

TEST(GoldenMetrics, RegistryJsonMatchesSnapshot) {
#if !NS_METRICS_ENABLED
    GTEST_SKIP() << "metrics compiled out (NS_METRICS=OFF); nothing to snapshot";
#endif
#if NS_AUDIT_ENABLED
    GTEST_SKIP() << "audit builds register audit.* gauges and the auditor's tick "
                    "events shift sim.events_*; the snapshot pins the default build";
#endif
    SimulationConfig config;
    config.seed = 7;
    config.peers = 300;
    config.behavior.warmup = sim::days(1.0);
    config.behavior.window = sim::days(2.0);
    config.behavior.downloads_per_peer_per_month = 25.0;
    config.as_graph.total_ases = 200;
    Simulation sim(config);
    sim.run();
    const std::string actual = obs::to_json(sim.metrics());

    if (std::getenv("NS_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(kGoldenPath, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << kGoldenPath;
        out << actual;
        GTEST_SKIP() << "regenerated " << kGoldenPath << " — review and commit the diff";
    }

    std::ifstream in(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing golden snapshot " << kGoldenPath
                           << " (regenerate with NS_REGEN_GOLDEN=1)";
    const std::string expected(std::istreambuf_iterator<char>(in), {});
    EXPECT_TRUE(actual == expected)
        << "metrics diverge from tests/data/golden_metrics_small.json.\n"
        << "If the change is intentional, regenerate with NS_REGEN_GOLDEN=1 and commit.\n"
        << "--- actual ---\n"
        << actual;
}

}  // namespace
}  // namespace netsession
