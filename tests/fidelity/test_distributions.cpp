// Statistical paper-fidelity harness: runs the small standard scenario and
// asserts that the simulator's *distributions* — not just its totals — match
// the shapes the paper measures in production (Zhao et al., IMC 2013).
//
// Tolerances, and why they are where they are:
//
//  * KS distance (max CDF gap) between two independently-seeded runs of the
//    same scenario must be <= 0.12 for download sizes and speeds. The
//    distributions are a property of the model, not of one seed; at ~1-2k
//    download samples per run, the two-sample KS 99% critical value is
//    ~0.08-0.10, so 0.12 leaves headroom for the smallest runs while still
//    failing on any real distributional drift.
//  * The Zipf exponent of content popularity (Fig 3b) must land in
//    [-1.8, -0.45]. The paper's production fit is ~-1.26 over 26M peers; a
//    ~10^3-smaller population flattens the tail substantially (the small
//    scenario measures ~-0.64), so we assert the power-law band rather than
//    the point estimate, with margin on the flat side for seed noise.
//  * Upload/download balance (Fig 10, §6.1): per-AS log10(uploaded/
//    downloaded) over inter-AS p2p traffic. The paper reports median
//    |log-ratio| 0.25 (heavy ASes) and 0.46 (all); we assert the scatter's
//    median magnitude <= 1.0 (same order of magnitude up as down) and its
//    mean in [-0.75, 0.75] (no systematic tilt toward upload or download).
//
// Every bound here is asserted, not skipped: a regression in any sampling
// path (workload draws, peer selection, flow scheduling) shows up as a
// distribution shift long before it breaks a count-level invariant.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cmath>
#include <vector>

#include "analysis/measurement.hpp"
#include "analysis/stats.hpp"
#include "core/simulation.hpp"

namespace netsession {
namespace {

SimulationConfig small_config(std::uint64_t seed) {
    SimulationConfig config;
    config.seed = seed;
    config.peers = 800;
    config.behavior.warmup = sim::days(2.0);
    config.behavior.window = sim::days(4.0);
    config.behavior.downloads_per_peer_per_month = 25.0;  // dense demand at tiny scale
    config.as_graph.total_ases = 200;
    return config;
}

/// Two independently-seeded runs of the same scenario, shared across every
/// test in this file (the runs dominate the suite's wall time).
struct FidelityRun : ::testing::Test {
    static Simulation& sim_a() { return instance(0); }
    static Simulation& sim_b() { return instance(1); }

    static Simulation& instance(int which) {
        static Simulation* sims[2] = {nullptr, nullptr};
        if (sims[which] == nullptr) {
            sims[which] = new Simulation(small_config(which == 0 ? 2013 : 4096));
            sims[which]->run();
        }
        return *sims[which];
    }
};

/// Two-sample Kolmogorov-Smirnov distance: max CDF gap, evaluated across the
/// pooled log-swept support of both samples.
double ks_distance(const analysis::Cdf& a, const analysis::Cdf& b) {
    double ks = 0.0;
    for (const auto& cdf : {&a, &b})
        for (const auto& [x, unused] : cdf->log_sweep(256))
            ks = std::max(ks, std::abs(a.at(x) - b.at(x)));
    return ks;
}

analysis::Cdf speed_cdf(const trace::TraceLog& log) {
    std::vector<double> mbps;
    for (const auto& d : log.downloads()) {
        if (d.outcome != trace::DownloadOutcome::completed) continue;
        const double secs = (d.end - d.start).seconds();
        if (secs <= 0.0) continue;
        mbps.push_back(static_cast<double>(d.total_bytes()) * 8.0 / secs / 1e6);
    }
    return analysis::Cdf(std::move(mbps));
}

TEST_F(FidelityRun, DownloadSizeDistributionIsStableAndPaperShaped) {
    const analysis::LoginIndex logins_a(sim_a().trace());
    const analysis::LoginIndex logins_b(sim_b().trace());
    const auto wa = analysis::workload_characteristics(sim_a().trace(), logins_a, sim_a().geodb());
    const auto wb = analysis::workload_characteristics(sim_b().trace(), logins_b, sim_b().geodb());
    ASSERT_GT(wa.size_all.size(), 300u) << "need a real sample for a KS bound";
    ASSERT_GT(wb.size_all.size(), 300u);

    const double ks_size = ks_distance(wa.size_all, wb.size_all);
    std::printf("[fidelity] size KS=%.4f median_a=%.3g median_b=%.3g\n", ks_size,
                wa.size_all.quantile(0.5), wb.size_all.quantile(0.5));
    EXPECT_LE(ks_size, 0.12) << "request-size distribution drifts across seeds";

    // Fig 3a shape anchors: the request mass sits in the tens-of-MB to GB
    // band, and p2p-enabled (software-download) objects are much larger than
    // the infra-only tail.
    for (const auto* w : {&wa, &wb}) {
        EXPECT_GE(w->size_all.quantile(0.5), 1e6) << "median request under a megabyte";
        EXPECT_LE(w->size_all.quantile(0.5), 2e9) << "median request above 2 GB";
        ASSERT_FALSE(w->size_peer_assisted.empty());
        ASSERT_FALSE(w->size_infra_only.empty());
        EXPECT_GT(w->size_peer_assisted.quantile(0.5), w->size_infra_only.quantile(0.5))
            << "peer-assisted objects must skew larger (Fig 3a)";
    }
}

TEST_F(FidelityRun, DownloadSpeedDistributionIsStableAndPlausible) {
    const analysis::Cdf sa = speed_cdf(sim_a().trace());
    const analysis::Cdf sb = speed_cdf(sim_b().trace());
    ASSERT_GT(sa.size(), 300u);
    ASSERT_GT(sb.size(), 300u);

    const double ks_speed = ks_distance(sa, sb);
    std::printf("[fidelity] speed KS=%.4f median_a=%.3f median_b=%.3f Mbps\n", ks_speed,
                sa.quantile(0.5), sb.quantile(0.5));
    EXPECT_LE(ks_speed, 0.12) << "speed distribution drifts across seeds";

    for (const auto* s : {&sa, &sb}) {
        // Speeds live inside the configured access-link band: above a dial-up
        // floor, below the fastest last-mile tier (Fig 4's axis spans
        // ~0.1..100 Mbps).
        EXPECT_GE(s->quantile(0.5), 0.1);
        EXPECT_LE(s->quantile(0.5), 100.0);
        EXPECT_LE(s->max(), 1000.0) << "faster than any modelled link";
    }
}

TEST_F(FidelityRun, ContentPopularityFollowsAPowerLaw) {
    const analysis::LoginIndex logins(sim_a().trace());
    const auto w = analysis::workload_characteristics(sim_a().trace(), logins, sim_a().geodb());
    ASSERT_GT(w.popularity_fit.n, 20u) << "need enough distinct objects for a fit";
    std::printf("[fidelity] popularity slope=%.3f over %zu points\n", w.popularity_fit.slope,
                w.popularity_fit.n);
    // Paper Fig 3b: straight line on log-log axes with slope ~-1.26. The
    // synthetic catalogue keeps the power law; the tiny population flattens
    // it (~-0.64 here) and widens the confidence band.
    EXPECT_LE(w.popularity_fit.slope, -0.45) << "popularity tail too flat to be Zipf";
    EXPECT_GE(w.popularity_fit.slope, -1.8) << "popularity tail implausibly steep";
}

TEST_F(FidelityRun, UploadDownloadBalanceScatterMatchesFig10) {
    const auto balance =
        analysis::traffic_balance(sim_a().trace(), sim_a().geodb(), &sim_a().as_graph());
    ASSERT_GT(balance.total_p2p_bytes, 0);
    std::vector<double> log_ratios;
    for (const auto& as : balance.ases)
        if (as.sent > 0 && as.received > 0)
            log_ratios.push_back(
                std::log10(static_cast<double>(as.sent) / static_cast<double>(as.received)));
    ASSERT_GT(log_ratios.size(), 10u) << "need a populated Fig 10 scatter";

    std::vector<double> magnitudes;
    magnitudes.reserve(log_ratios.size());
    double mean = 0.0;
    for (const double r : log_ratios) {
        magnitudes.push_back(std::abs(r));
        mean += r;
    }
    mean /= static_cast<double>(log_ratios.size());
    const double median_magnitude = analysis::percentile(magnitudes, 50.0);

    std::printf("[fidelity] balance scatter: n=%zu median|log10|=%.3f mean=%.3f\n",
                log_ratios.size(), median_magnitude, mean);
    EXPECT_LE(median_magnitude, 1.0)
        << "typical AS ships an order of magnitude more than it receives (paper: 0.25-0.46)";
    EXPECT_GE(mean, -0.75);
    EXPECT_LE(mean, 0.75) << "systematic upload/download tilt across ASes";
}

}  // namespace
}  // namespace netsession
