// Accounting attack filter and billing rollups.
#include <gtest/gtest.h>

#include <unordered_map>

#include "accounting/accounting.hpp"

namespace netsession::accounting {
namespace {

trace::DownloadRecord honest_record() {
    trace::DownloadRecord r;
    r.guid = Guid{1, 1};
    r.object = ObjectId{2, 2};
    r.cp_code = CpCode{1000};
    r.object_size = 100_MB;
    r.bytes_from_infrastructure = 30_MB;
    r.bytes_from_peers = 70_MB;
    r.outcome = trace::DownloadOutcome::completed;
    return r;
}

struct Fixture {
    trace::TraceLog log;
    AccountingService service{log};
    std::unordered_map<std::uint64_t, Bytes> truth;  // guid.hi -> served bytes

    Fixture() {
        service.set_ground_truth([this](Guid guid, ObjectId) {
            const auto it = truth.find(guid.hi);
            return it == truth.end() ? 0 : it->second;
        });
    }
};

TEST(Accounting, AcceptsHonestReport) {
    Fixture f;
    f.truth[1] = 30_MB;
    EXPECT_EQ(f.service.submit(honest_record()), RejectReason::none);
    EXPECT_EQ(f.service.accepted(), 1);
    EXPECT_EQ(f.service.rejected(), 0);
    EXPECT_EQ(f.log.downloads().size(), 1u);
}

TEST(Accounting, RejectsInflatedInfraBytes) {
    Fixture f;
    f.truth[1] = 30_MB;
    auto r = honest_record();
    r.bytes_from_infrastructure = 90_MB;  // claims 3x the edge's count
    EXPECT_EQ(f.service.submit(r), RejectReason::infra_bytes_exceed_ground_truth);
    EXPECT_EQ(f.service.rejected(), 1);
    EXPECT_TRUE(f.log.downloads().empty()) << "rejected reports never reach the billing log";
}

TEST(Accounting, ToleranceAllowsMinorOverrun) {
    Fixture f;
    f.truth[1] = 30_MB;
    auto r = honest_record();
    r.bytes_from_infrastructure = 30_MB + 1_MB;  // re-fetched corrupt piece
    EXPECT_EQ(f.service.submit(r), RejectReason::none);
}

TEST(Accounting, RejectsNegativeBytes) {
    Fixture f;
    auto r = honest_record();
    r.bytes_from_peers = -5;
    EXPECT_EQ(f.service.submit(r), RejectReason::negative_bytes);
}

TEST(Accounting, RejectsImplausiblyLargeTotal) {
    Fixture f;
    f.truth[1] = 200_MB;
    auto r = honest_record();
    r.bytes_from_infrastructure = 150_MB;
    r.bytes_from_peers = 150_MB;  // 3x the object size in total
    EXPECT_EQ(f.service.submit(r), RejectReason::total_exceeds_plausible_size);
}

TEST(Accounting, NoGroundTruthSkipsInfraCheck) {
    trace::TraceLog log;
    AccountingService service(log);  // no ground truth installed
    auto r = honest_record();
    r.bytes_from_infrastructure = 99_MB;
    r.bytes_from_peers = 0;
    EXPECT_EQ(service.submit(r), RejectReason::none);
}

TEST(Accounting, BillingAggregatesPerProvider) {
    Fixture f;
    f.truth[1] = 30_MB;
    f.service.submit(honest_record());
    f.service.submit(honest_record());
    auto other = honest_record();
    other.cp_code = CpCode{2000};
    other.outcome = trace::DownloadOutcome::aborted_by_user;
    f.service.submit(other);

    const auto& billing = f.service.billing();
    ASSERT_TRUE(billing.contains(1000));
    ASSERT_TRUE(billing.contains(2000));
    EXPECT_EQ(billing.at(1000).downloads, 2);
    EXPECT_EQ(billing.at(1000).completed, 2);
    EXPECT_EQ(billing.at(1000).infra_bytes, 60_MB);
    EXPECT_EQ(billing.at(1000).peer_bytes, 140_MB);
    EXPECT_EQ(billing.at(2000).completed, 0);
}

TEST(Accounting, ToleranceIsConfigurable) {
    Fixture f;
    f.truth[1] = 30_MB;
    f.service.set_tolerance(2.0);
    auto r = honest_record();
    r.bytes_from_infrastructure = 55_MB;  // < 2x truth
    EXPECT_EQ(f.service.submit(r), RejectReason::none);
}

TEST(Accounting, ZeroSizeRecordSkipsPlausibilityCheck) {
    Fixture f;
    f.truth[1] = 1_MB;
    auto r = honest_record();
    r.object_size = 0;
    r.bytes_from_infrastructure = 1_MB;
    r.bytes_from_peers = 0;
    EXPECT_EQ(f.service.submit(r), RejectReason::none);
}

}  // namespace
}  // namespace netsession::accounting
