// Scenario file parsing and round trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/scenario_io.hpp"

namespace netsession {
namespace {

TEST(ScenarioIo, ParsesKnobsAndComments) {
    const auto result = parse_scenario(R"(
# a comment line
peers = 1234          # trailing comment
window_days = 7.5
disable_p2p = true
random_selection = yes
seed = 99
max_peer_sources = 4
)");
    ASSERT_TRUE(result.ok()) << result.error().message;
    const SimulationConfig& c = result.value();
    EXPECT_EQ(c.peers, 1234);
    EXPECT_DOUBLE_EQ(c.behavior.window.seconds(), 7.5 * 86400);
    EXPECT_TRUE(c.disable_p2p);
    EXPECT_EQ(c.control.selection.strategy, control::SelectionPolicy::Strategy::random);
    EXPECT_EQ(c.seed, 99u);
    EXPECT_EQ(c.client.max_peer_sources, 4);
}

TEST(ScenarioIo, EmptyTextGivesDefaults) {
    const auto result = parse_scenario("");
    ASSERT_TRUE(result.ok());
    const SimulationConfig defaults;
    EXPECT_EQ(result.value().peers, defaults.peers);
    EXPECT_EQ(result.value().seed, defaults.seed);
    EXPECT_FALSE(result.value().disable_p2p);
}

TEST(ScenarioIo, UnknownKeyIsAnError) {
    const auto result = parse_scenario("peerz = 100\n");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().message.find("unknown key"), std::string::npos);
    EXPECT_NE(result.error().message.find("line 1"), std::string::npos);
}

TEST(ScenarioIo, BadValueIsAnError) {
    EXPECT_FALSE(parse_scenario("peers = lots\n").ok());
    EXPECT_FALSE(parse_scenario("disable_p2p = maybe\n").ok());
    EXPECT_FALSE(parse_scenario("peers 100\n").ok()) << "missing '='";
}

TEST(ScenarioIo, DescribeRoundTrips) {
    SimulationConfig config;
    config.peers = 777;
    config.seed = 31337;
    config.behavior.warmup = sim::days(3.25);
    config.disable_p2p = true;
    config.control.cross_region_threshold = 0;
    const auto result = parse_scenario(describe_scenario(config));
    ASSERT_TRUE(result.ok()) << result.error().message;
    EXPECT_EQ(result.value().peers, 777);
    EXPECT_EQ(result.value().seed, 31337u);
    EXPECT_DOUBLE_EQ(result.value().behavior.warmup.seconds(), 3.25 * 86400);
    EXPECT_TRUE(result.value().disable_p2p);
    EXPECT_EQ(result.value().control.cross_region_threshold, 0);
}

TEST(ScenarioIo, ShardsKnobParsesPrintsAndDefaults) {
    // Parse.
    const auto four = parse_scenario("shards = 4\n");
    ASSERT_TRUE(four.ok()) << four.error().message;
    EXPECT_EQ(four.value().shards, 4);

    // Defaulting: an unset config keeps the in-memory sentinel 0 ("ask
    // NS_SIM_SHARDS, else 1")...
    const auto unset = parse_scenario("");
    ASSERT_TRUE(unset.ok());
    EXPECT_EQ(unset.value().shards, 0);
    // ...but a *written* scenario pins its engine: unset prints as 1.
    EXPECT_NE(describe_scenario(SimulationConfig{}).find("shards = 1"), std::string::npos);

    // Round trip of an explicit count.
    SimulationConfig config;
    config.shards = 8;
    const auto round = parse_scenario(describe_scenario(config));
    ASSERT_TRUE(round.ok()) << round.error().message;
    EXPECT_EQ(round.value().shards, 8);
}

TEST(ScenarioIo, ShardsKnobRejectsInvalidCounts) {
    // 0 is only an in-memory sentinel, never a valid scenario value.
    EXPECT_FALSE(parse_scenario("shards = 0\n").ok());
    EXPECT_FALSE(parse_scenario("shards = -2\n").ok());
    EXPECT_FALSE(parse_scenario("shards = 65\n").ok()) << "engine caps lanes at 64";
    EXPECT_FALSE(parse_scenario("shards = 2.5\n").ok()) << "whole lanes only";
    EXPECT_FALSE(parse_scenario("shards = four\n").ok());
    const auto zero = parse_scenario("shards = 0\n");
    ASSERT_FALSE(zero.ok());
    EXPECT_NE(zero.error().message.find("bad value"), std::string::npos);
}

TEST(ScenarioIo, TemplateIsLoadable) {
    const std::string path = ::testing::TempDir() + "/scenario.ini";
    ASSERT_TRUE(write_scenario_template(path));
    const auto result = load_scenario(path);
    ASSERT_TRUE(result.ok()) << result.error().message;
    EXPECT_EQ(result.value().peers, SimulationConfig{}.peers);
    std::remove(path.c_str());
}

TEST(ScenarioIo, MissingFileReportsNotFound) {
    const auto result = load_scenario("/definitely/not/here.ini");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, Error::Code::not_found);
}

TEST(ScenarioIo, ShippedPresetsAllParse) {
    // The scenarios/ presets are part of the release; a template-format
    // change must not silently break them.
    for (const char* name :
         {"paper_standard.ini", "infrastructure_only.ini", "random_selection.ini",
          "under_attack.ini", "strict_local_dns.ini"}) {
        const std::string path = std::string(NS_SOURCE_DIR) + "/scenarios/" + name;
        const auto result = load_scenario(path);
        EXPECT_TRUE(result.ok()) << name << ": "
                                 << (result.ok() ? "" : result.error().message);
    }
    const auto attack =
        load_scenario(std::string(NS_SOURCE_DIR) + "/scenarios/under_attack.ini");
    ASSERT_TRUE(attack.ok());
    EXPECT_DOUBLE_EQ(attack.value().behavior.attacker_fraction, 0.1);
    const auto infra =
        load_scenario(std::string(NS_SOURCE_DIR) + "/scenarios/infrastructure_only.ini");
    ASSERT_TRUE(infra.ok());
    EXPECT_TRUE(infra.value().disable_p2p);
}

TEST(ScenarioIo, LoadedScenarioActuallyRuns) {
    const auto result = parse_scenario(R"(
peers = 150
window_days = 1
warmup_days = 0.2
downloads_per_peer_per_month = 40
seed = 5
)");
    ASSERT_TRUE(result.ok());
    Simulation sim(result.value());
    sim.run();
    EXPECT_GT(sim.trace().downloads().size(), 10u);
}

}  // namespace
}  // namespace netsession
