// DN directory: locality-ordered selection, fairness rotation, diversity,
// NAT filtering, registration lifecycle.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "control/directory.hpp"

namespace netsession::control {
namespace {

PeerDescriptor peer(std::uint64_t id, std::uint32_t asn, std::uint16_t country,
                    net::Continent continent, net::NatType nat = net::NatType::open) {
    PeerDescriptor d;
    d.guid = Guid{id, id};
    d.host = HostId{static_cast<std::uint32_t>(id)};
    d.ip = net::IpAddr{static_cast<std::uint32_t>(id)};
    d.nat = nat;
    d.asn = Asn{asn};
    d.country = CountryId{country};
    d.continent = continent;
    d.region = RegionId{0};
    return d;
}

const ObjectId kObj{1, 1};

TEST(Directory, AddRemoveAndCopies) {
    Directory dir;
    EXPECT_EQ(dir.copies(kObj), 0);
    dir.add(kObj, peer(1, 10, 1, net::Continent::europe));
    dir.add(kObj, peer(2, 10, 1, net::Continent::europe));
    EXPECT_EQ(dir.copies(kObj), 2);
    dir.remove(kObj, Guid{1, 1});
    EXPECT_EQ(dir.copies(kObj), 1);
    dir.remove(kObj, Guid{1, 1});  // idempotent
    EXPECT_EQ(dir.copies(kObj), 1);
}

TEST(Directory, ReregistrationDoesNotDuplicate) {
    Directory dir;
    dir.add(kObj, peer(1, 10, 1, net::Continent::europe));
    dir.add(kObj, peer(1, 10, 1, net::Continent::europe));
    EXPECT_EQ(dir.copies(kObj), 1);
    EXPECT_EQ(dir.registration_count(), 1u);
}

TEST(Directory, ReregistrationAfterMoveUpdatesBuckets) {
    Directory dir;
    dir.add(kObj, peer(1, 10, 1, net::Continent::europe));
    // Same GUID, new AS + country (the peer moved).
    dir.add(kObj, peer(1, 20, 2, net::Continent::asia));
    EXPECT_EQ(dir.copies(kObj), 1);

    SelectionPolicy policy;
    Rng rng(1);
    // Requester in the old AS no longer finds it at AS level but does at
    // world level.
    const auto result = dir.select(kObj, peer(99, 10, 1, net::Continent::europe), 5, policy, rng);
    ASSERT_EQ(result.size(), 1u);
    EXPECT_EQ(result[0].asn.value, 20u);
}

TEST(Directory, RemovePeerClearsAllObjects) {
    Directory dir;
    const ObjectId other{2, 2};
    dir.add(kObj, peer(1, 10, 1, net::Continent::europe));
    dir.add(other, peer(1, 10, 1, net::Continent::europe));
    dir.remove_peer(Guid{1, 1});
    EXPECT_EQ(dir.copies(kObj), 0);
    EXPECT_EQ(dir.copies(other), 0);
    EXPECT_EQ(dir.object_count(), 0u);
}

TEST(Directory, SelectPrefersSameAsThenCountryThenContinent) {
    Directory dir;
    dir.add(kObj, peer(1, 10, 1, net::Continent::europe));  // same AS
    dir.add(kObj, peer(2, 11, 1, net::Continent::europe));  // same country
    dir.add(kObj, peer(3, 12, 2, net::Continent::europe));  // same continent
    dir.add(kObj, peer(4, 13, 3, net::Continent::asia));    // world

    SelectionPolicy policy;
    for (auto& d : policy.diversity) d = 0.0;  // deterministic ordering
    Rng rng(1);
    const auto result = dir.select(kObj, peer(99, 10, 1, net::Continent::europe), 4, policy, rng);
    ASSERT_EQ(result.size(), 4u);
    EXPECT_EQ(result[0].guid, (Guid{1, 1})) << "most specific set first (§3.7)";
    EXPECT_EQ(result[1].guid, (Guid{2, 2}));
    EXPECT_EQ(result[2].guid, (Guid{3, 3}));
    EXPECT_EQ(result[3].guid, (Guid{4, 4}));
}

TEST(Directory, SelectNeverReturnsRequesterOrDuplicates) {
    Directory dir;
    for (std::uint64_t i = 1; i <= 20; ++i)
        dir.add(kObj, peer(i, 10, 1, net::Continent::europe));
    SelectionPolicy policy;
    Rng rng(2);
    const auto requester = peer(5, 10, 1, net::Continent::europe);
    const auto result = dir.select(kObj, requester, 40, policy, rng);
    EXPECT_EQ(result.size(), 19u);
    std::set<Guid> guids;
    for (const auto& p : result) {
        EXPECT_NE(p.guid, requester.guid);
        EXPECT_TRUE(guids.insert(p.guid).second);
    }
}

TEST(Directory, NatFilterExcludesUntraversablePairs) {
    Directory dir;
    dir.add(kObj, peer(1, 10, 1, net::Continent::europe, net::NatType::symmetric));
    dir.add(kObj, peer(2, 10, 1, net::Continent::europe, net::NatType::open));
    SelectionPolicy policy;
    Rng rng(3);
    const auto requester = peer(99, 10, 1, net::Continent::europe, net::NatType::symmetric);
    const auto result = dir.select(kObj, requester, 10, policy, rng);
    ASSERT_EQ(result.size(), 1u);
    EXPECT_EQ(result[0].nat, net::NatType::open)
        << "symmetric-symmetric cannot punch; the DN pre-filters (§3.7)";

    policy.nat_compatibility_filter = false;
    const auto unfiltered = dir.select(kObj, requester, 10, policy, rng);
    EXPECT_EQ(unfiltered.size(), 2u);
}

TEST(Directory, FairnessRotatesThroughSwarm) {
    Directory dir;
    for (std::uint64_t i = 1; i <= 12; ++i)
        dir.add(kObj, peer(i, 10, 1, net::Continent::europe));
    SelectionPolicy policy;
    for (auto& d : policy.diversity) d = 0.0;
    Rng rng(4);
    const auto requester = peer(99, 10, 1, net::Continent::europe);

    // Three queries of 4 should cycle all 12 peers before repeating anyone
    // ("when a peer is selected, it is placed at the end of a peer selection
    // list for fairness", §3.7).
    std::set<Guid> seen;
    for (int q = 0; q < 3; ++q) {
        const auto result = dir.select(kObj, requester, 4, policy, rng);
        ASSERT_EQ(result.size(), 4u);
        for (const auto& p : result) EXPECT_TRUE(seen.insert(p.guid).second) << "premature repeat";
    }
    EXPECT_EQ(seen.size(), 12u);
}

TEST(Directory, DiversityOccasionallyPullsFromLessSpecificSet) {
    Directory dir;
    for (std::uint64_t i = 1; i <= 30; ++i)
        dir.add(kObj, peer(i, 10, 1, net::Continent::europe));  // same-AS pool
    for (std::uint64_t i = 31; i <= 60; ++i)
        dir.add(kObj, peer(i, 11, 1, net::Continent::europe));  // same-country pool
    SelectionPolicy policy;  // default diversity: 15% at AS level
    Rng rng(5);
    const auto requester = peer(99, 10, 1, net::Continent::europe);
    int foreign_as = 0, total = 0;
    for (int q = 0; q < 50; ++q) {
        const auto result = dir.select(kObj, requester, 10, policy, rng);
        for (const auto& p : result) {
            ++total;
            if (p.asn.value != 10) ++foreign_as;
        }
    }
    const double frac = static_cast<double>(foreign_as) / total;
    EXPECT_GT(frac, 0.05) << "diversity draws from less specific sets";
    EXPECT_LT(frac, 0.35) << "but locality still dominates";
}

TEST(Directory, RandomStrategyIgnoresLocality) {
    Directory dir;
    for (std::uint64_t i = 1; i <= 10; ++i)
        dir.add(kObj, peer(i, 10, 1, net::Continent::europe));
    for (std::uint64_t i = 11; i <= 400; ++i)
        dir.add(kObj, peer(i, 99, 9, net::Continent::asia));
    SelectionPolicy policy;
    policy.strategy = SelectionPolicy::Strategy::random;
    Rng rng(6);
    const auto requester = peer(999, 10, 1, net::Continent::europe);
    int same_as = 0, total = 0;
    for (int q = 0; q < 30; ++q) {
        for (const auto& p : dir.select(kObj, requester, 10, policy, rng)) {
            ++total;
            if (p.asn.value == 10) ++same_as;
        }
    }
    // Same-AS peers are 10/409 of the swarm; random selection should pick
    // them rarely (locality-aware would pick them always).
    EXPECT_LT(static_cast<double>(same_as) / total, 0.15);
}

TEST(Directory, ClearDropsEverything) {
    Directory dir;
    dir.add(kObj, peer(1, 10, 1, net::Continent::europe));
    dir.clear();
    EXPECT_EQ(dir.copies(kObj), 0);
    EXPECT_EQ(dir.registration_count(), 0u);
}

TEST(Directory, CompactionPreservesLiveEntries) {
    Directory dir;
    for (std::uint64_t i = 1; i <= 300; ++i)
        dir.add(kObj, peer(i, 10, 1, net::Continent::europe));
    for (std::uint64_t i = 1; i <= 200; ++i) dir.remove(kObj, Guid{i, i});
    EXPECT_EQ(dir.copies(kObj), 100);
    SelectionPolicy policy;
    Rng rng(7);
    const auto result = dir.select(kObj, peer(999, 10, 1, net::Continent::europe), 40, policy, rng);
    EXPECT_EQ(result.size(), 40u);
    for (const auto& p : result) EXPECT_GT(p.guid.hi, 200u) << "removed peers must not reappear";
}

TEST(Directory, FairnessCursorWrapsAroundAfterCompaction) {
    Directory dir;
    for (std::uint64_t i = 1; i <= 200; ++i)
        dir.add(kObj, peer(i, 10, 1, net::Continent::europe));
    SelectionPolicy policy;
    for (auto& d : policy.diversity) d = 0.0;
    Rng rng(11);
    const auto requester = peer(999, 10, 1, net::Continent::europe);

    // Park the fairness cursor mid-list, then remove enough to force a
    // compaction (dead > 64 and dead > half the entry array), which rebuilds
    // the buckets and resets the cursors. The rotation must survive that:
    // every remaining peer is handed out exactly once per full cycle, and the
    // cursor wraps cleanly at the new (shorter) bucket length.
    (void)dir.select(kObj, requester, 70, policy, rng);
    for (std::uint64_t i = 1; i <= 150; ++i) dir.remove(kObj, Guid{i, i});
    EXPECT_EQ(dir.copies(kObj), 50);

    for (int cycle = 0; cycle < 2; ++cycle) {
        std::set<Guid> seen;
        for (int q = 0; q < 5; ++q) {
            const auto result = dir.select(kObj, requester, 10, policy, rng);
            ASSERT_EQ(result.size(), 10u);
            for (const auto& p : result) {
                EXPECT_GT(p.guid.hi, 150u) << "compaction resurrected a removed peer";
                EXPECT_TRUE(seen.insert(p.guid).second) << "repeat before the cycle finished";
            }
        }
        EXPECT_EQ(seen.size(), 50u) << "a full cycle must cover every live peer";
    }
}

TEST(Directory, RemovePeerRacingSelectNeverReturnsRemovedGuid) {
    Directory dir;
    const ObjectId other{2, 2};
    for (std::uint64_t i = 1; i <= 30; ++i) {
        dir.add(kObj, peer(i, 10, 1, net::Continent::europe));
        dir.add(other, peer(i, 10, 1, net::Continent::europe));
    }
    SelectionPolicy policy;
    for (auto& d : policy.diversity) d = 0.0;
    Rng rng(12);
    const auto requester = peer(999, 10, 1, net::Continent::europe);

    // Advance the cursor so it points at guid 6, then remove exactly that
    // peer (full logout, both objects). The next draw must skip the dead
    // entry the cursor is parked on, not return it or crash.
    (void)dir.select(kObj, requester, 5, policy, rng);
    dir.remove_peer(Guid{6, 6});
    const auto after = dir.select(kObj, requester, 5, policy, rng);
    ASSERT_EQ(after.size(), 5u);
    for (const auto& p : after) EXPECT_NE(p.guid, (Guid{6, 6}));
    EXPECT_EQ(dir.copies(other), 29) << "remove_peer drops every object registration";

    // Drain loop: each query races a logout of the peer it just received.
    // No removed GUID may ever be selected again, and the swarm must empty
    // out exactly (no entry lost, none returned twice).
    std::set<Guid> drained;
    while (true) {
        const auto result = dir.select(kObj, requester, 1, policy, rng);
        if (result.empty()) break;
        ASSERT_EQ(result.size(), 1u);
        EXPECT_TRUE(drained.insert(result[0].guid).second)
            << "selected a peer whose remove_peer already ran";
        dir.remove_peer(result[0].guid);
    }
    EXPECT_EQ(drained.size(), 29u);
    EXPECT_EQ(dir.copies(kObj), 0);
    EXPECT_EQ(dir.copies(other), 0);
    EXPECT_EQ(dir.object_count(), 0u);
}

class DirectoryPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DirectoryPropertyTest, SelectionInvariants) {
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    Directory dir;
    std::map<std::uint64_t, PeerDescriptor> added;
    for (std::uint64_t i = 1; i <= 150; ++i) {
        const auto d = peer(i, 10 + static_cast<std::uint32_t>(rng.below(6)),
                            static_cast<std::uint16_t>(rng.below(4)),
                            static_cast<net::Continent>(rng.below(6)),
                            static_cast<net::NatType>(rng.below(net::kNatTypeCount)));
        dir.add(kObj, d);
        added[i] = d;
    }
    // Random removals.
    for (std::uint64_t i = 1; i <= 150; ++i)
        if (rng.chance(0.3)) {
            dir.remove(kObj, Guid{i, i});
            added.erase(i);
        }

    SelectionPolicy policy;
    const auto requester = peer(999, 12, 1, net::Continent::europe,
                                static_cast<net::NatType>(rng.below(net::kNatTypeCount)));
    for (int q = 0; q < 10; ++q) {
        const int want = static_cast<int>(1 + rng.below(40));
        const auto result = dir.select(kObj, requester, want, policy, rng);
        EXPECT_LE(static_cast<int>(result.size()), want);
        std::set<Guid> seen;
        for (const auto& p : result) {
            EXPECT_TRUE(seen.insert(p.guid).second);
            EXPECT_TRUE(added.contains(p.guid.hi)) << "only live registrations returned";
            EXPECT_TRUE(net::can_traverse(requester.nat, p.nat));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectoryPropertyTest, ::testing::Range(1, 11));

}  // namespace
}  // namespace netsession::control
