// Control plane: CN sessions, authorized queries, introductions, usage
// reporting, STUN, monitoring, and the §3.8 failure/recovery behaviours.
#include <gtest/gtest.h>

#include "accounting/accounting.hpp"
#include "control/control_plane.hpp"
#include "edge/edge_network.hpp"

namespace netsession::control {
namespace {

/// Minimal scripted peer endpoint for control-plane tests.
class FakePeer final : public PeerEndpoint {
public:
    FakePeer(Guid guid, HostId host) : guid_(guid), host_(host) {}

    [[nodiscard]] Guid guid() const noexcept override { return guid_; }
    [[nodiscard]] HostId host() const noexcept override { return host_; }
    void on_disconnected() override { ++disconnects; }
    void on_re_add_request() override { ++re_adds; }
    void on_introduction(const PeerDescriptor& downloader, ObjectId object) override {
        ++introductions;
        last_downloader = downloader.guid;
        last_object = object;
    }
    void on_upgrade_available(std::uint32_t version) override { upgraded_to = version; }

    int disconnects = 0;
    int re_adds = 0;
    int introductions = 0;
    std::uint32_t upgraded_to = 0;
    Guid last_downloader;
    ObjectId last_object;

private:
    Guid guid_;
    HostId host_;
};

struct Fixture {
    sim::Simulator sim;
    net::World world;
    edge::Catalog catalog;
    ObjectId oid{4, 4};  // must precede `edges`: publish() reads it
    edge::EdgeNetwork edges;
    trace::TraceLog log;
    accounting::AccountingService accounting{log};
    ControlPlane plane;
    Rng rng{99};

    static net::AsGraph graph() {
        net::AsGraphConfig config;
        config.total_ases = 200;
        return net::AsGraph::generate(config, Rng(2));
    }

    explicit Fixture(ControlPlaneConfig config = {})
        : world(sim, graph()),
          edges((publish(catalog, oid), world), catalog, edge::EdgeNetworkConfig{}),
          plane(world, edges.authority(), log, accounting, config, Rng(5)) {}

    static edge::Catalog& publish(edge::Catalog& catalog, ObjectId oid) {
        swarm::ContentObject object(oid, CpCode{1000}, 7, 50_MB, 8);
        edge::ObjectPolicy policy;
        policy.p2p_enabled = true;
        catalog.publish(std::move(object), policy);
        return catalog;
    }

    HostId host_in(std::string_view alpha2) {
        const net::CountryInfo* c = net::find_country(alpha2);
        net::HostInfo info;
        info.attach.location = net::Location{c->id, 0, c->center};
        info.attach.asn = world.as_graph().pick_for_country(c->id, rng);
        info.up = mbps(2.0);
        info.down = mbps(16.0);
        return world.create_host(info);
    }

    LoginInfo login_info(const FakePeer& peer, bool uploads, std::vector<ObjectId> cached = {}) {
        LoginInfo info;
        const auto& attach = world.host(peer.host()).attach;
        const net::CountryInfo& c = net::country(attach.location.country);
        info.desc = PeerDescriptor{peer.guid(), peer.host(), attach.ip, attach.nat,
                                   attach.asn,  c.id,        c.continent, c.region};
        info.uploads_enabled = uploads;
        info.software_version = 80;
        info.cached_objects = std::move(cached);
        return info;
    }
};

TEST(ControlPlane, PlacesServersPerRegion) {
    Fixture f;
    EXPECT_EQ(f.plane.cns().size(), net::regions().size());
    EXPECT_EQ(f.plane.dns().size(), net::regions().size());
    EXPECT_EQ(f.plane.stuns().size(), net::regions().size());
}

TEST(ControlPlane, ClosestCnSkipsFailedOnes) {
    Fixture f;
    const HostId client = f.host_in("DE");
    ConnectionNode* first = f.plane.closest_cn(client);
    ASSERT_NE(first, nullptr);
    f.plane.fail_cn(first->id());
    ConnectionNode* second = f.plane.closest_cn(client);
    ASSERT_NE(second, nullptr);
    EXPECT_NE(second, first);

    for (auto& cn : f.plane.cns()) cn->fail();
    EXPECT_EQ(f.plane.closest_cn(client), nullptr);
}

TEST(ConnectionNode, LoginRecordsAndRegistersCachedContent) {
    Fixture f;
    FakePeer peer(Guid{1, 1}, f.host_in("DE"));
    ConnectionNode* cn = f.plane.closest_cn(peer.host());
    cn->login(peer, f.login_info(peer, /*uploads=*/true, {f.oid}));

    EXPECT_TRUE(cn->has_session(peer.guid()));
    ASSERT_EQ(f.log.logins().size(), 1u);
    EXPECT_EQ(f.log.logins()[0].guid, peer.guid());
    EXPECT_TRUE(f.log.logins()[0].uploads_enabled);

    DatabaseNode* dn = f.plane.local_dn(cn->region());
    ASSERT_NE(dn, nullptr);
    EXPECT_EQ(dn->copies(f.oid), 1);
    EXPECT_EQ(f.log.registrations().size(), 1u);
}

TEST(ConnectionNode, UploadsDisabledPeersNeverEnterTheDirectory) {
    Fixture f;
    FakePeer peer(Guid{1, 1}, f.host_in("DE"));
    ConnectionNode* cn = f.plane.closest_cn(peer.host());
    cn->login(peer, f.login_info(peer, /*uploads=*/false, {f.oid}));
    DatabaseNode* dn = f.plane.local_dn(cn->region());
    EXPECT_EQ(dn->copies(f.oid), 0) << "§3.6: only uploads-enabled peers appear";
}

TEST(ConnectionNode, QueryReturnsPeersAndIntroducesBothSides) {
    Fixture f;
    FakePeer uploader(Guid{1, 1}, f.host_in("DE"));
    FakePeer downloader(Guid{2, 2}, f.host_in("FR"));
    ConnectionNode* cn_u = f.plane.closest_cn(uploader.host());
    ConnectionNode* cn_d = f.plane.closest_cn(downloader.host());
    cn_u->login(uploader, f.login_info(uploader, true, {f.oid}));
    cn_d->login(downloader, f.login_info(downloader, false));

    const auto token = f.edges.nearest(downloader.host()).authorize(downloader.guid(), f.oid);
    std::vector<PeerDescriptor> got;
    cn_d->query(downloader.guid(), f.oid, token, 40,
                [&](std::vector<PeerDescriptor> peers) { got = std::move(peers); });
    f.sim.run();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].guid, uploader.guid());
    EXPECT_EQ(uploader.introductions, 1);
    EXPECT_EQ(uploader.last_downloader, downloader.guid());
    EXPECT_EQ(uploader.last_object, f.oid);
}

TEST(ConnectionNode, QueryWithBadTokenReturnsNothing) {
    Fixture f;
    FakePeer uploader(Guid{1, 1}, f.host_in("DE"));
    FakePeer downloader(Guid{2, 2}, f.host_in("DE"));
    ConnectionNode* cn = f.plane.closest_cn(downloader.host());
    cn->login(uploader, f.login_info(uploader, true, {f.oid}));
    cn->login(downloader, f.login_info(downloader, false));

    // A token for a different peer: the authorization check (§3.5) rejects.
    const auto stolen = f.edges.nearest(downloader.host()).authorize(Guid{9, 9}, f.oid);
    bool replied = false;
    std::vector<PeerDescriptor> got{PeerDescriptor{}};
    cn->query(downloader.guid(), f.oid, stolen, 40, [&](std::vector<PeerDescriptor> peers) {
        replied = true;
        got = std::move(peers);
    });
    f.sim.run();
    EXPECT_TRUE(replied);
    EXPECT_TRUE(got.empty());
    EXPECT_EQ(uploader.introductions, 0);
}

TEST(ConnectionNode, CrossRegionWideningFindsRemotePeers) {
    Fixture f;
    FakePeer uploader(Guid{1, 1}, f.host_in("JP"));
    FakePeer downloader(Guid{2, 2}, f.host_in("DE"));
    ConnectionNode* cn_u = f.plane.closest_cn(uploader.host());
    ConnectionNode* cn_d = f.plane.closest_cn(downloader.host());
    ASSERT_NE(cn_u->region(), cn_d->region());
    cn_u->login(uploader, f.login_info(uploader, true, {f.oid}));
    cn_d->login(downloader, f.login_info(downloader, false));

    const auto token = f.edges.nearest(downloader.host()).authorize(downloader.guid(), f.oid);
    std::vector<PeerDescriptor> got;
    cn_d->query(downloader.guid(), f.oid, token, 40,
                [&](std::vector<PeerDescriptor> peers) { got = std::move(peers); });
    f.sim.run();
    ASSERT_EQ(got.size(), 1u) << "interconnected CN/DN system searches other regions (§3.7)";
}

TEST(ConnectionNode, LocalOnlyConfigDisablesWidening) {
    ControlPlaneConfig config;
    config.cross_region_threshold = 0;
    Fixture f(config);
    FakePeer uploader(Guid{1, 1}, f.host_in("JP"));
    FakePeer downloader(Guid{2, 2}, f.host_in("DE"));
    ConnectionNode* cn_u = f.plane.closest_cn(uploader.host());
    ConnectionNode* cn_d = f.plane.closest_cn(downloader.host());
    cn_u->login(uploader, f.login_info(uploader, true, {f.oid}));
    cn_d->login(downloader, f.login_info(downloader, false));
    const auto token = f.edges.nearest(downloader.host()).authorize(downloader.guid(), f.oid);
    std::vector<PeerDescriptor> got{PeerDescriptor{}};
    cn_d->query(downloader.guid(), f.oid, token, 40,
                [&](std::vector<PeerDescriptor> peers) { got = std::move(peers); });
    f.sim.run();
    EXPECT_TRUE(got.empty());
}

TEST(ConnectionNode, FailDropsSessionsAndNotifiesPeers) {
    Fixture f;
    FakePeer peer(Guid{1, 1}, f.host_in("DE"));
    ConnectionNode* cn = f.plane.closest_cn(peer.host());
    cn->login(peer, f.login_info(peer, true, {f.oid}));
    EXPECT_EQ(cn->session_count(), 1u);

    f.plane.fail_cn(cn->id());
    f.sim.run();
    EXPECT_EQ(cn->session_count(), 0u);
    EXPECT_EQ(peer.disconnects, 1);
    EXPECT_FALSE(cn->up());
    EXPECT_EQ(f.plane.find_endpoint(peer.guid()), nullptr);
}

TEST(ControlPlane, DnRestartTriggersReAddThroughCns) {
    Fixture f;
    FakePeer peer(Guid{1, 1}, f.host_in("DE"));
    ConnectionNode* cn = f.plane.closest_cn(peer.host());
    cn->login(peer, f.login_info(peer, true, {f.oid}));
    DatabaseNode* dn = f.plane.local_dn(cn->region());
    EXPECT_EQ(dn->copies(f.oid), 1);

    f.plane.fail_dn(dn->id());
    EXPECT_EQ(dn->copies(f.oid), 0) << "DN soft state is lost on failure (§3.8)";
    f.plane.restart_dn(dn->id());
    f.sim.run();
    EXPECT_EQ(peer.re_adds, 1) << "CNs send RE-ADD to their peers (§3.8)";
    // The FakePeer does not re-announce; the real client does (see peer tests).
}

TEST(ControlPlane, ReAddRegistrationDoesNotInflateDnLog) {
    Fixture f;
    FakePeer peer(Guid{1, 1}, f.host_in("DE"));
    ConnectionNode* cn = f.plane.closest_cn(peer.host());
    cn->login(peer, f.login_info(peer, true, {f.oid}));
    const auto logged_before = f.log.registrations().size();
    cn->register_copy(peer.guid(), f.oid, /*readd=*/true);
    EXPECT_EQ(f.log.registrations().size(), logged_before)
        << "RE-ADD restores soft state without new DN log entries";
    cn->register_copy(peer.guid(), f.oid, /*readd=*/false);
    EXPECT_EQ(f.log.registrations().size(), logged_before + 1);
}

TEST(ConnectionNode, ReportsFlowIntoAccountingAndTrace) {
    Fixture f;
    FakePeer peer(Guid{1, 1}, f.host_in("DE"));
    ConnectionNode* cn = f.plane.closest_cn(peer.host());
    cn->login(peer, f.login_info(peer, false));

    trace::DownloadRecord record;
    record.guid = peer.guid();
    record.object = f.oid;
    record.cp_code = CpCode{1000};
    record.object_size = 50_MB;
    record.bytes_from_infrastructure = 50_MB;
    record.outcome = trace::DownloadOutcome::completed;
    cn->report_download(record);
    EXPECT_EQ(f.accounting.accepted(), 1);
    EXPECT_EQ(f.log.downloads().size(), 1u);

    trace::TransferRecord transfer;
    transfer.object = f.oid;
    transfer.bytes = 1_MB;
    cn->report_transfer(transfer);
    EXPECT_EQ(f.log.transfers().size(), 1u);
}

TEST(StunService, ReportsAttachmentAfterTwoRoundTrips) {
    Fixture f;
    const HostId client = f.host_in("BR");
    StunService& stun = f.plane.closest_stun(client);
    bool got = false;
    stun.probe(client, [&](ConnectivityReport report) {
        got = true;
        EXPECT_EQ(report.public_ip, f.world.host(client).attach.ip);
        EXPECT_EQ(report.nat, f.world.host(client).attach.nat);
    });
    f.sim.run();
    EXPECT_TRUE(got);
    EXPECT_EQ(stun.probes_served(), 1);
    EXPECT_GT(f.sim.now().us, 0);
}

TEST(ControlPlane, VersionReleasePushedToConnectedPeers) {
    Fixture f;
    FakePeer peer(Guid{1, 1}, f.host_in("DE"));
    ConnectionNode* cn = f.plane.closest_cn(peer.host());
    ASSERT_TRUE(cn->login(peer, f.login_info(peer, false)));
    f.plane.release_client_version(81);
    f.sim.run();
    EXPECT_EQ(peer.upgraded_to, 81u);
    EXPECT_EQ(f.plane.current_client_version(), 81u);
}

TEST(ControlPlane, VersionDeliveredAtNextLoginForOfflinePeers) {
    Fixture f;
    f.plane.release_client_version(81);
    FakePeer late(Guid{2, 2}, f.host_in("FR"));
    ConnectionNode* cn = f.plane.closest_cn(late.host());
    auto info = f.login_info(late, false);
    info.software_version = 80;  // still on the old version
    ASSERT_TRUE(cn->login(late, info));
    f.sim.run();
    EXPECT_EQ(late.upgraded_to, 81u);
}

TEST(ControlPlane, UpToDatePeerGetsNoUpgradeNotice) {
    Fixture f;
    f.plane.release_client_version(81);
    FakePeer fresh(Guid{3, 3}, f.host_in("FR"));
    ConnectionNode* cn = f.plane.closest_cn(fresh.host());
    auto info = f.login_info(fresh, false);
    info.software_version = 81;
    ASSERT_TRUE(cn->login(fresh, info));
    f.sim.run();
    EXPECT_EQ(fresh.upgraded_to, 0u);
}

TEST(ConnectionNode, LoginRateLimiterDefersStorms) {
    ControlPlaneConfig config;
    config.login_rate_per_s = 10.0;
    config.login_burst = 5.0;
    Fixture f(config);
    ConnectionNode* cn = f.plane.cns().front().get();
    std::vector<std::unique_ptr<FakePeer>> peers;
    int admitted = 0;
    for (std::uint64_t i = 1; i <= 20; ++i) {
        peers.push_back(std::make_unique<FakePeer>(Guid{i, i}, f.host_in("DE")));
        if (cn->login(*peers.back(), f.login_info(*peers.back(), false))) ++admitted;
    }
    // All 20 arrive at the same instant: only the burst depth gets through.
    EXPECT_EQ(admitted, 5);
    EXPECT_EQ(cn->logins_deferred(), 15);

    // A second later the bucket has refilled, capped at the burst depth.
    f.sim.run_until(f.sim.now() + sim::seconds(1.0));
    int admitted_later = 0;
    for (std::uint64_t i = 21; i <= 40; ++i) {
        peers.push_back(std::make_unique<FakePeer>(Guid{i, i}, f.host_in("DE")));
        if (cn->login(*peers.back(), f.login_info(*peers.back(), false))) ++admitted_later;
    }
    EXPECT_EQ(admitted_later, 5);
}

TEST(ConnectionNode, RateLimiterDisabledByDefaultZero) {
    ControlPlaneConfig config;
    config.login_rate_per_s = 0.0;
    Fixture f(config);
    ConnectionNode* cn = f.plane.cns().front().get();
    std::vector<std::unique_ptr<FakePeer>> peers;
    for (std::uint64_t i = 1; i <= 50; ++i) {
        peers.push_back(std::make_unique<FakePeer>(Guid{i, i}, f.host_in("DE")));
        EXPECT_TRUE(cn->login(*peers.back(), f.login_info(*peers.back(), false)));
    }
}

TEST(Monitoring, AlertsOnLowSuccessRate) {
    MonitoringNode mon(0.5);
    int alerts = 0;
    mon.set_alert_handler([&] { ++alerts; });
    for (int i = 0; i < 200; ++i) mon.report_download_outcome(i % 10 == 0);  // 10% success
    EXPECT_EQ(alerts, 1);
    EXPECT_EQ(mon.alerts_raised(), 1);
    for (int i = 0; i < 200; ++i) mon.report_download_outcome(true);
    EXPECT_EQ(alerts, 1) << "healthy window raises no alert";
}

TEST(Monitoring, CountsProblemsByKind) {
    MonitoringNode mon;
    mon.report_problem(Guid{1, 1}, ProblemKind::crash);
    mon.report_problem(Guid{1, 1}, ProblemKind::piece_corruption);
    mon.report_problem(Guid{2, 2}, ProblemKind::piece_corruption);
    EXPECT_EQ(mon.problems(ProblemKind::crash), 1);
    EXPECT_EQ(mon.problems(ProblemKind::piece_corruption), 2);
    EXPECT_EQ(mon.problems(ProblemKind::disk_full), 0);
}

}  // namespace
}  // namespace netsession::control
