// The determinism contract of the parallel analysis runtime, end to end:
// the full measurement pipeline must produce bitwise-identical results for
// every thread count (docs/PARALLELISM.md), and the simulator's golden
// metrics must be untouched by the `threads` knob (the simulation itself is
// single-threaded by design).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/pipeline.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/simulation.hpp"
#include "obs/export.hpp"
#include "obs/parallel_metrics.hpp"

namespace netsession {
namespace {

struct ThreadCountGuard {
    ~ThreadCountGuard() { parallel::set_thread_count(0); }
};

/// A dataset big enough that every record scan spans multiple chunks (the
/// regime where a merge-order bug would actually change results).
trace::Dataset synthetic_dataset() {
    trace::Dataset dataset;
    Rng rng(23);
    const int peers = 1500;
    const int downloads_per_peer = 20;  // 30k downloads >> kGrain
    std::vector<net::IpAddr> ips;
    for (int p = 0; p < peers; ++p) {
        const auto u = static_cast<std::uint64_t>(p + 1);
        const Guid guid{u, 3};
        const net::IpAddr ip{0x0A000000u + static_cast<std::uint32_t>(u)};
        ips.push_back(ip);
        dataset.geodb.register_ip(
            ip, net::GeoRecord{net::Location{CountryId{static_cast<std::uint16_t>(p % 30)},
                                             static_cast<std::uint32_t>(p % 5),
                                             {rng.uniform(-60.0, 60.0), rng.uniform(-180.0, 180.0)}},
                               Asn{static_cast<std::uint32_t>(100 + p % 40)}});

        trace::LoginRecord login;
        login.guid = guid;
        login.ip = ip;
        login.time = sim::SimTime{static_cast<std::int64_t>(p) * 1000};
        login.uploads_enabled = (p % 3) != 0;
        for (std::size_t i = 0; i < 5; ++i) login.secondary_guids[i] = SecondaryGuid{u, 5 - i};
        dataset.log.add(login);

        for (int d = 0; d < downloads_per_peer; ++d) {
            trace::DownloadRecord rec;
            rec.guid = guid;
            rec.object = ObjectId{1 + rng.next() % 400, 1};
            rec.url_hash = rec.object.hi;
            rec.object_size = static_cast<Bytes>(rng.range(1'000'000, 500'000'000));
            rec.start = login.time;
            rec.end = rec.start + sim::seconds(rng.uniform(5.0, 1000.0));
            rec.p2p_enabled = (d % 4) != 0;
            rec.bytes_from_peers = rec.p2p_enabled ? rec.object_size / 3 : 0;
            rec.bytes_from_infrastructure = rec.object_size - rec.bytes_from_peers;
            rec.cp_code = CpCode{static_cast<std::uint32_t>(1 + d % 4)};
            rec.peers_initially_returned = static_cast<int>(rng.below(41));
            rec.outcome = trace::DownloadOutcome::completed;
            dataset.log.add(rec);

            if (rec.p2p_enabled && p > 0) {
                trace::TransferRecord t;
                t.object = rec.object;
                t.from_guid = Guid{1 + rng.next() % u, 3};
                t.to_guid = guid;
                t.from_ip = ips[static_cast<std::size_t>(t.from_guid.hi - 1)];
                t.to_ip = ip;
                t.bytes = rec.bytes_from_peers;
                t.time = rec.end;
                dataset.log.add(t);
            }
        }
    }
    return dataset;
}

TEST(ThreadInvariance, PipelineFingerprintIdenticalAcrossThreadCounts) {
    ThreadCountGuard guard;
    const trace::Dataset dataset = synthetic_dataset();
    ASSERT_GT(dataset.log.downloads().size(), 2 * parallel::detail::kGrain)
        << "dataset must span multiple chunks for this test to mean anything";

    parallel::set_thread_count(1);
    const analysis::PipelineResult serial = analysis::run_full_pipeline(dataset);
    const std::uint64_t serial_fp = analysis::fingerprint(serial);

    for (const int threads : {2, 8}) {
        parallel::set_thread_count(threads);
        const analysis::PipelineResult result = analysis::run_full_pipeline(dataset);
        EXPECT_EQ(analysis::fingerprint(result), serial_fp) << "threads=" << threads;
        // Spot-check a float-heavy output directly so a fingerprint bug
        // can't mask a real divergence.
        EXPECT_EQ(result.workload.size_all.samples(), serial.workload.size_all.samples())
            << "threads=" << threads;
        EXPECT_EQ(result.headline.mean_peer_efficiency, serial.headline.mean_peer_efficiency)
            << "threads=" << threads;
    }
}

TEST(ThreadInvariance, FingerprintDetectsChangedResults) {
    ThreadCountGuard guard;
    parallel::set_thread_count(2);
    const trace::Dataset dataset = synthetic_dataset();
    analysis::PipelineResult a = analysis::run_full_pipeline(dataset);
    const std::uint64_t fp = analysis::fingerprint(a);
    a.headline.mean_peer_efficiency += 1e-12;
    EXPECT_NE(analysis::fingerprint(a), fp) << "fingerprint must see single-bit changes";
}

TEST(ThreadInvariance, SimulationTraceUnaffectedByThreadsKnob) {
    // The `threads` scenario knob configures the *analysis* runtime only;
    // trace bytes and the metric registry must not move.
    ThreadCountGuard guard;
    const auto run = [](int threads) {
        SimulationConfig config;
        config.seed = 7;
        config.peers = 120;
        config.behavior.warmup = sim::days(0.5);
        config.behavior.window = sim::days(1.0);
        config.behavior.downloads_per_peer_per_month = 25.0;
        config.as_graph.total_ases = 200;
        config.threads = threads;
        Simulation sim(config);
        sim.run();
        return std::pair{obs::to_json(sim.metrics()), sim.trace().total_entries()};
    };
    const auto [json1, entries1] = run(1);
    const auto [json8, entries8] = run(8);
    EXPECT_EQ(parallel::thread_count(), 8) << "the knob must reach the runtime";
    EXPECT_EQ(json1, json8);
    EXPECT_EQ(entries1, entries8);
}

TEST(ThreadInvariance, ParallelMetricsRegisterAndRead) {
    ThreadCountGuard guard;
    parallel::set_thread_count(3);
    parallel::reset_stats();
    obs::Registry registry;
    obs::register_parallel_metrics(registry);
    const obs::Registry::Entry* threads = registry.find("parallel.threads");
    ASSERT_NE(threads, nullptr);
    EXPECT_EQ(obs::Registry::scalar_value(*threads), 3.0);

    const trace::Dataset dataset = synthetic_dataset();
    (void)analysis::run_full_pipeline(dataset);
    const obs::Registry::Entry* jobs = registry.find("parallel.jobs");
    const obs::Registry::Entry* merges = registry.find("parallel.merges");
    ASSERT_NE(jobs, nullptr);
    ASSERT_NE(merges, nullptr);
    EXPECT_GT(obs::Registry::scalar_value(*jobs), 0.0);
    EXPECT_GT(obs::Registry::scalar_value(*merges), 0.0);
}

}  // namespace
}  // namespace netsession
