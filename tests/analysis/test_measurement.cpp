// Measurement pipeline on hand-crafted logs with known answers.
#include <gtest/gtest.h>

#include "analysis/login_index.hpp"
#include "analysis/measurement.hpp"

namespace netsession::analysis {
namespace {

struct LogBuilder {
    trace::TraceLog log;
    net::GeoDatabase geodb;
    std::uint32_t next_ip = 100;

    /// Registers an IP located in `alpha2`, AS `asn`.
    net::IpAddr ip_in(std::string_view alpha2, std::uint32_t asn, std::uint32_t city = 0) {
        const net::CountryInfo* c = net::find_country(alpha2);
        EXPECT_NE(c, nullptr);
        const net::IpAddr ip{next_ip++};
        geodb.register_ip(ip, net::GeoRecord{net::Location{c->id, city, c->center}, Asn{asn}});
        return ip;
    }

    void login(Guid guid, net::IpAddr ip, sim::SimTime at, bool uploads = false) {
        trace::LoginRecord r;
        r.guid = guid;
        r.ip = ip;
        r.uploads_enabled = uploads;
        r.time = at;
        log.add(r);
    }

    trace::DownloadRecord& download(Guid guid, std::uint64_t url, std::uint32_t cp, Bytes size,
                                    Bytes infra, Bytes peers, bool p2p,
                                    trace::DownloadOutcome outcome,
                                    sim::SimTime start = sim::SimTime{0},
                                    sim::Duration dur = sim::seconds(100)) {
        trace::DownloadRecord d;
        d.guid = guid;
        d.object = ObjectId{url, url};
        d.url_hash = url;
        d.cp_code = CpCode{cp};
        d.object_size = size;
        d.start = start;
        d.end = start + dur;
        d.bytes_from_infrastructure = infra;
        d.bytes_from_peers = peers;
        d.p2p_enabled = p2p;
        d.outcome = outcome;
        log.add(d);
        return log.downloads().back();
    }

    void transfer(Guid from, Guid to, net::IpAddr from_ip, net::IpAddr to_ip, Bytes bytes) {
        trace::TransferRecord t;
        t.object = ObjectId{1, 1};
        t.from_guid = from;
        t.to_guid = to;
        t.from_ip = from_ip;
        t.to_ip = to_ip;
        t.bytes = bytes;
        log.add(t);
    }
};

constexpr auto kDone = trace::DownloadOutcome::completed;
constexpr auto kAborted = trace::DownloadOutcome::aborted_by_user;

TEST(Measurement, OverallStatsCountDistinctEntities) {
    LogBuilder b;
    const auto ip1 = b.ip_in("DE", 10, 0);
    const auto ip2 = b.ip_in("DE", 10, 1);
    const auto ip3 = b.ip_in("FR", 11);
    b.login(Guid{1, 1}, ip1, sim::SimTime{0});
    b.login(Guid{1, 1}, ip2, sim::SimTime{10});  // same GUID, new IP
    b.login(Guid{2, 2}, ip3, sim::SimTime{20});
    b.download(Guid{1, 1}, 100, 1000, 1_MB, 1_MB, 0, false, kDone);
    b.download(Guid{1, 1}, 101, 1000, 1_MB, 1_MB, 0, false, kDone);
    b.download(Guid{2, 2}, 100, 1000, 1_MB, 1_MB, 0, false, kDone);

    const auto stats = overall_stats(b.log, b.geodb);
    EXPECT_EQ(stats.guids, 2u);
    EXPECT_EQ(stats.distinct_ips, 3u);
    EXPECT_EQ(stats.distinct_urls, 2u);
    EXPECT_EQ(stats.downloads_initiated, 3u);
    EXPECT_EQ(stats.distinct_countries, 2u);
    EXPECT_EQ(stats.distinct_ases, 2u);
    EXPECT_EQ(stats.distinct_locations, 3u);
    EXPECT_EQ(stats.log_entries, 6u);
}

TEST(Measurement, ReportRegionMapping) {
    const auto geo = [](std::string_view alpha2) {
        const net::CountryInfo* c = net::find_country(alpha2);
        return net::GeoRecord{net::Location{c->id, 0, c->center}, Asn{1}};
    };
    EXPECT_EQ(report_region(geo("DE")), ReportRegion::europe);
    EXPECT_EQ(report_region(geo("IN")), ReportRegion::india);
    EXPECT_EQ(report_region(geo("CN")), ReportRegion::china);
    EXPECT_EQ(report_region(geo("BR")), ReportRegion::americas_other);
    EXPECT_EQ(report_region(geo("JP")), ReportRegion::asia_other);
    EXPECT_EQ(report_region(geo("EG")), ReportRegion::africa);
    EXPECT_EQ(report_region(geo("AU")), ReportRegion::oceania);
    EXPECT_EQ(report_region(geo("CA")), ReportRegion::americas_other);
}

TEST(Measurement, DownloadsByRegionSharesSumToOne) {
    LogBuilder b;
    const auto de = b.ip_in("DE", 10);
    const auto in = b.ip_in("IN", 11);
    b.login(Guid{1, 1}, de, sim::SimTime{0});
    b.login(Guid{2, 2}, in, sim::SimTime{0});
    for (int i = 0; i < 3; ++i)
        b.download(Guid{1, 1}, 100, 1000, 1_MB, 1_MB, 0, false, kDone, sim::SimTime{100});
    b.download(Guid{2, 2}, 100, 1000, 1_MB, 1_MB, 0, false, kDone, sim::SimTime{100});

    const LoginIndex logins(b.log);
    const auto shares = downloads_by_region(b.log, logins, b.geodb);
    ASSERT_TRUE(shares.contains(1000));
    const auto& row = shares.at(1000);
    EXPECT_DOUBLE_EQ(row[static_cast<int>(ReportRegion::europe)], 0.75);
    EXPECT_DOUBLE_EQ(row[static_cast<int>(ReportRegion::india)], 0.25);
    double sum = 0;
    for (const double v : row) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Measurement, SettingChangesTable3) {
    LogBuilder b;
    const auto ip = b.ip_in("DE", 10);
    // GUID 1: disabled, never changes (two logins).
    b.login(Guid{1, 1}, ip, sim::SimTime{0}, false);
    b.login(Guid{1, 1}, ip, sim::SimTime{10}, false);
    // GUID 2: enabled -> disabled (one change).
    b.login(Guid{2, 2}, ip, sim::SimTime{0}, true);
    b.login(Guid{2, 2}, ip, sim::SimTime{10}, false);
    // GUID 3: disabled -> enabled -> disabled (two changes).
    b.login(Guid{3, 3}, ip, sim::SimTime{0}, false);
    b.login(Guid{3, 3}, ip, sim::SimTime{10}, true);
    b.login(Guid{3, 3}, ip, sim::SimTime{20}, false);

    const LoginIndex logins(b.log);
    const auto t3 = upload_setting_changes(logins);
    EXPECT_EQ(t3.initially_disabled[0], 1);
    EXPECT_EQ(t3.initially_disabled[2], 1);
    EXPECT_EQ(t3.initially_enabled[1], 1);
    EXPECT_EQ(t3.initially_enabled[0], 0);
}

TEST(Measurement, UploadEnabledByProviderAttributesFirstDownload) {
    LogBuilder b;
    const auto ip = b.ip_in("DE", 10);
    b.login(Guid{1, 1}, ip, sim::SimTime{0}, true);
    b.login(Guid{2, 2}, ip, sim::SimTime{0}, false);
    // GUID 1's first download is provider 1000; a later one is 2000.
    b.download(Guid{1, 1}, 100, 1000, 1_MB, 1_MB, 0, false, kDone, sim::SimTime{10});
    b.download(Guid{1, 1}, 101, 2000, 1_MB, 1_MB, 0, false, kDone, sim::SimTime{99});
    b.download(Guid{2, 2}, 100, 1000, 1_MB, 1_MB, 0, false, kDone, sim::SimTime{10});

    const LoginIndex logins(b.log);
    const auto t4 = upload_enabled_by_provider(b.log, logins);
    ASSERT_TRUE(t4.contains(1000));
    EXPECT_DOUBLE_EQ(t4.at(1000), 0.5);  // guid1 enabled, guid2 disabled
    EXPECT_FALSE(t4.contains(2000)) << "only first downloads attribute peers";
}

TEST(Measurement, PeerDistributionUsesFirstConnection) {
    LogBuilder b;
    const auto de = b.ip_in("DE", 10);
    const auto jp = b.ip_in("JP", 11);
    b.login(Guid{1, 1}, de, sim::SimTime{0});
    b.login(Guid{1, 1}, jp, sim::SimTime{100});  // moved later; counted as DE
    b.login(Guid{2, 2}, de, sim::SimTime{50});
    const LoginIndex logins(b.log);
    const auto dist = peer_distribution(logins, b.geodb);
    ASSERT_EQ(dist.size(), 1u);
    EXPECT_EQ(net::country(dist[0].country).alpha2, "DE");
    EXPECT_EQ(dist[0].peers, 2);
    EXPECT_DOUBLE_EQ(dist[0].fraction, 1.0);
}

TEST(Measurement, SpeedComparisonSplitsEdgeOnlyAndMostlyP2p) {
    LogBuilder b;
    const auto as_x_ip = b.ip_in("DE", 10);
    const auto as_y_ip = b.ip_in("FR", 20);
    b.login(Guid{1, 1}, as_x_ip, sim::SimTime{0});
    b.login(Guid{2, 2}, as_y_ip, sim::SimTime{0});
    // AS 10 gets 3 downloads (the top AS), AS 20 gets 2.
    b.download(Guid{1, 1}, 1, 1000, 10_MB, 10_MB, 0, false, kDone);      // edge-only
    b.download(Guid{1, 1}, 2, 1000, 10_MB, 2_MB, 8_MB, true, kDone);     // 80% p2p
    b.download(Guid{1, 1}, 3, 1000, 10_MB, 6_MB, 4_MB, true, kDone);     // 40% p2p: neither class
    b.download(Guid{2, 2}, 4, 1000, 10_MB, 10_MB, 0, false, kDone);
    b.download(Guid{2, 2}, 5, 1000, 10_MB, 5_MB, 5_MB, true, kDone);     // 50% p2p counts

    const LoginIndex logins(b.log);
    const auto cmp = speed_comparison(b.log, logins, b.geodb);
    EXPECT_EQ(cmp.as_x, 10u);
    EXPECT_EQ(cmp.as_y, 20u);
    EXPECT_EQ(cmp.edge_only_x.size(), 1u);
    EXPECT_EQ(cmp.p2p_x.size(), 1u);
    EXPECT_EQ(cmp.edge_only_y.size(), 1u);
    EXPECT_EQ(cmp.p2p_y.size(), 1u);
    // 10 MB in 100 s = 0.8 Mbps.
    EXPECT_NEAR(cmp.edge_only_x.mean(), 0.8, 1e-9);
}

TEST(Measurement, EfficiencyVsPeersGroups) {
    LogBuilder b;
    auto& d0 = b.download(Guid{1, 1}, 1, 1000, 10_MB, 10_MB, 0, true, kDone);
    d0.peers_initially_returned = 0;
    auto& d1 = b.download(Guid{1, 1}, 2, 1000, 10_MB, 2_MB, 8_MB, true, kDone);
    d1.peers_initially_returned = 10;
    auto& d2 = b.download(Guid{1, 1}, 3, 1000, 10_MB, 4_MB, 6_MB, true, kDone);
    d2.peers_initially_returned = 10;
    const auto fig6 = efficiency_vs_peers_returned(b.log);
    EXPECT_EQ(fig6.groups[0].downloads, 1);
    EXPECT_DOUBLE_EQ(fig6.groups[0].mean_efficiency, 0.0);
    EXPECT_EQ(fig6.groups[10].downloads, 2);
    EXPECT_NEAR(fig6.groups[10].mean_efficiency, 0.7, 1e-9);
}

TEST(Measurement, EfficiencyVsCopiesBinsByDistinctRegistrants) {
    LogBuilder b;
    // Object A: 4 distinct registrants; object B: 1.
    for (std::uint64_t i = 1; i <= 4; ++i)
        b.log.add(trace::DnRegistrationRecord{ObjectId{1, 1}, Guid{i, i}, sim::SimTime{0}});
    b.log.add(trace::DnRegistrationRecord{ObjectId{1, 1}, Guid{1, 1}, sim::SimTime{9}});  // dup
    b.log.add(trace::DnRegistrationRecord{ObjectId{2, 2}, Guid{9, 9}, sim::SimTime{0}});
    b.download(Guid{5, 5}, 1, 1000, 10_MB, 2_MB, 8_MB, true, kDone);
    b.download(Guid{5, 5}, 2, 1000, 10_MB, 10_MB, 0, true, kDone);

    const auto fig5 = efficiency_vs_copies(b.log, 4);
    int objects = 0;
    for (const auto& bin : fig5.bins) objects += bin.objects;
    EXPECT_EQ(objects, 2);
    // The high-copy bin should hold the high-efficiency object.
    EXPECT_GT(fig5.bins.back().copies_lo, fig5.bins.front().copies_lo);
    EXPECT_NEAR(fig5.bins.back().mean, 0.8, 1e-9);
    EXPECT_NEAR(fig5.bins.front().mean, 0.0, 1e-9);
}

TEST(Measurement, OutcomeStatsAndPauseRates) {
    LogBuilder b;
    // Small infra-only downloads: 3 complete, 1 aborted.
    for (int i = 0; i < 3; ++i) b.download(Guid{1, 1}, 1, 1000, 5_MB, 5_MB, 0, false, kDone);
    b.download(Guid{1, 1}, 1, 1000, 5_MB, 1_MB, 0, false, kAborted);
    // Huge p2p downloads: 1 complete, 1 aborted.
    b.download(Guid{1, 1}, 2, 1000, 2_GB, 1_GB, 1_GB, true, kDone);
    b.download(Guid{1, 1}, 2, 1000, 2_GB, 100_MB, 0, true, kAborted);
    // An in-progress record is excluded everywhere.
    b.download(Guid{1, 1}, 3, 1000, 1_MB, 0, 0, false, trace::DownloadOutcome::in_progress);

    const auto stats = outcome_stats(b.log);
    EXPECT_EQ(stats.all.n, 6);
    EXPECT_NEAR(stats.infra_only.completed, 0.75, 1e-9);
    EXPECT_NEAR(stats.infra_only.aborted, 0.25, 1e-9);
    EXPECT_NEAR(stats.peer_assisted.completed, 0.5, 1e-9);
    // Pause rate by size: bucket 0 (<10MB) infra-only = 1/4; bucket 3 (>1GB)
    // peer-assisted = 1/2.
    EXPECT_NEAR(stats.pause_rate_by_size[0][0], 0.25, 1e-9);
    EXPECT_NEAR(stats.pause_rate_by_size[1][3], 0.5, 1e-9);
    EXPECT_EQ(stats.downloads_by_size[2][0], 4);
}

TEST(Measurement, CoverageClassifiesCountries) {
    LogBuilder b;
    const auto de = b.ip_in("DE", 10);
    const auto br = b.ip_in("BR", 11);
    const auto jp = b.ip_in("JP", 12);
    b.login(Guid{1, 1}, de, sim::SimTime{0});
    b.login(Guid{2, 2}, br, sim::SimTime{0});
    b.login(Guid{3, 3}, jp, sim::SimTime{0});
    // DE: infra-dominated; BR: peers dominate strongly; JP: in between.
    b.download(Guid{1, 1}, 1, 1000, 10_MB, 8_MB, 2_MB, true, kDone, sim::SimTime{10});
    b.download(Guid{2, 2}, 1, 1000, 10_MB, 2_MB, 8_MB, true, kDone, sim::SimTime{10});
    b.download(Guid{3, 3}, 1, 1000, 10_MB, 4_MB, 6_MB, true, kDone, sim::SimTime{10});

    const LoginIndex logins(b.log);
    const auto cov = coverage_by_country(b.log, logins, b.geodb, CpCode{1000});
    ASSERT_EQ(cov.size(), 3u);
    for (const auto& c : cov) {
        const auto alpha2 = net::country(c.country).alpha2;
        if (alpha2 == "DE") { EXPECT_EQ(c.cls, 0); }
        if (alpha2 == "BR") { EXPECT_EQ(c.cls, 2); }
        if (alpha2 == "JP") { EXPECT_EQ(c.cls, 1); }
    }
}

TEST(Measurement, TrafficBalanceSeparatesIntraAndInterAs) {
    LogBuilder b;
    const auto a1 = b.ip_in("DE", 10);
    const auto a2 = b.ip_in("DE", 10);
    const auto b1 = b.ip_in("FR", 20);
    b.login(Guid{1, 1}, a1, sim::SimTime{0});
    b.login(Guid{2, 2}, a2, sim::SimTime{0});
    b.login(Guid{3, 3}, b1, sim::SimTime{0});
    b.transfer(Guid{1, 1}, Guid{2, 2}, a1, a2, 100);  // intra-AS
    b.transfer(Guid{1, 1}, Guid{3, 3}, a1, b1, 300);  // AS10 -> AS20
    b.transfer(Guid{3, 3}, Guid{1, 1}, b1, a1, 200);  // AS20 -> AS10

    const auto tb = traffic_balance(b.log, b.geodb, nullptr);
    EXPECT_EQ(tb.total_p2p_bytes, 600);
    EXPECT_EQ(tb.intra_as_bytes, 100);
    EXPECT_EQ(tb.inter_as_bytes, 500);
    ASSERT_GE(tb.ases.size(), 2u);
    EXPECT_EQ(tb.ases[0].asn, 10u);  // biggest sender first
    EXPECT_EQ(tb.ases[0].sent, 300);
    EXPECT_EQ(tb.ases[0].received, 200);
    EXPECT_EQ(tb.ases[0].ips_observed, 2);
    EXPECT_EQ(tb.ases_with_traffic, 2u);
}

TEST(Measurement, MobilityStats) {
    LogBuilder b;
    const auto de1 = b.ip_in("DE", 10);
    const auto de2 = b.ip_in("DE", 10, 1);
    const auto jp = b.ip_in("JP", 20);
    // GUID 1: one AS, within 10 km (same city point).
    b.login(Guid{1, 1}, de1, sim::SimTime{0});
    b.login(Guid{1, 1}, de1, sim::SimTime{60'000'000});
    // GUID 2: two ASes, far apart.
    b.login(Guid{2, 2}, de2, sim::SimTime{0});
    b.login(Guid{2, 2}, jp, sim::SimTime{60'000'000});

    const LoginIndex logins(b.log);
    const auto m = mobility_stats(b.log, logins, b.geodb);
    EXPECT_EQ(m.guids, 2);
    EXPECT_DOUBLE_EQ(m.frac_single_as, 0.5);
    EXPECT_DOUBLE_EQ(m.frac_two_as, 0.5);
    EXPECT_DOUBLE_EQ(m.frac_within_10km, 0.5);
    EXPECT_NEAR(m.new_connections_per_minute, 4.0, 1e-9);
}

TEST(Measurement, HeadlineOffload) {
    LogBuilder b;
    // 1 p2p file of 3 distinct files; p2p download carries most bytes.
    b.download(Guid{1, 1}, 1, 1000, 1_GB, 300_MB, 700_MB, true, kDone);
    b.download(Guid{1, 1}, 2, 1000, 50_MB, 50_MB, 0, false, kDone);
    b.download(Guid{1, 1}, 3, 1000, 50_MB, 50_MB, 0, false, kDone);

    const auto h = headline_offload(b.log);
    EXPECT_NEAR(h.p2p_enabled_file_fraction, 1.0 / 3.0, 1e-9);
    EXPECT_NEAR(h.p2p_enabled_byte_fraction, 10.0 / 11.0, 1e-9);
    EXPECT_NEAR(h.mean_peer_efficiency, 0.7, 1e-9);
    EXPECT_NEAR(h.overall_offload, 0.7, 1e-9);
}

TEST(Measurement, StallPlusRemapCountsAsOneIncident) {
    // Regression: a download that stalls AND re-maps emits two degradation
    // records (edge_stall + edge_remapped) for the same incident — the
    // watchdog always re-resolves after a stall and logs the remap when the
    // answer changes. `total` used to add both, double-counting every
    // remapped stall; it must count incidents, while the per-kind fields
    // still count every record.
    trace::TraceLog log;
    const auto at = [](std::int64_t s) { return sim::SimTime{s * 1'000'000}; };
    log.add(trace::DegradationRecord{Guid{1, 1}, at(10), trace::DegradationKind::edge_stall, {}});
    log.add(
        trace::DegradationRecord{Guid{1, 1}, at(10), trace::DegradationKind::edge_remapped, {}});
    log.add(trace::DegradationRecord{Guid{2, 2}, at(20), trace::DegradationKind::peer_stall, {}});

    const auto d = degradation_stats(log);
    EXPECT_EQ(d.edge_stalls, 1);
    EXPECT_EQ(d.edge_remaps, 1) << "the remap is still visible per kind";
    EXPECT_EQ(d.peer_stalls, 1);
    EXPECT_EQ(d.total, 2) << "stall+remap is one incident, not two";
    EXPECT_EQ(d.affected_clients, 2);
}

TEST(LoginIndex, AtPicksLatestBeforeTime) {
    LogBuilder b;
    const auto ip1 = b.ip_in("DE", 10);
    const auto ip2 = b.ip_in("FR", 11);
    b.login(Guid{1, 1}, ip1, sim::SimTime{100});
    b.login(Guid{1, 1}, ip2, sim::SimTime{200});
    const LoginIndex logins(b.log);
    EXPECT_EQ(logins.at(Guid{1, 1}, sim::SimTime{150})->ip, ip1);
    EXPECT_EQ(logins.at(Guid{1, 1}, sim::SimTime{250})->ip, ip2);
    EXPECT_EQ(logins.at(Guid{1, 1}, sim::SimTime{50})->ip, ip1) << "earliest as fallback";
    EXPECT_EQ(logins.at(Guid{9, 9}, sim::SimTime{0}), nullptr);
    EXPECT_EQ(logins.first(Guid{1, 1})->ip, ip1);
}

}  // namespace
}  // namespace netsession::analysis
