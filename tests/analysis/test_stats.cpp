// Statistical primitives: CDFs, binning, regression.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "common/rng.hpp"

namespace netsession::analysis {
namespace {

TEST(Cdf, BasicProperties) {
    const Cdf cdf({1, 2, 3, 4, 5});
    EXPECT_EQ(cdf.size(), 5u);
    EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.at(3.0), 0.6);
    EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.mean(), 3.0);
    EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
    EXPECT_DOUBLE_EQ(cdf.max(), 5.0);
}

TEST(Cdf, IsMonotone) {
    Rng rng(3);
    std::vector<double> xs;
    for (int i = 0; i < 500; ++i) xs.push_back(rng.lognormal(0, 2));
    const Cdf cdf(xs);
    double prev = -1;
    for (double x = 0.01; x < 100; x *= 1.3) {
        const double v = cdf.at(x);
        EXPECT_GE(v, prev);
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
        prev = v;
    }
}

TEST(Cdf, QuantileInterpolates) {
    const Cdf cdf({0, 10});
    EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 10.0);
}

TEST(Cdf, QuantileAndAtAreConsistent) {
    Rng rng(5);
    std::vector<double> xs;
    for (int i = 0; i < 1000; ++i) xs.push_back(rng.uniform(0, 100));
    const Cdf cdf(xs);
    for (double q = 0.1; q < 1.0; q += 0.2)
        EXPECT_NEAR(cdf.at(cdf.quantile(q)), q, 0.01);
}

TEST(Cdf, LogSweepCoversRange) {
    const Cdf cdf({1, 10, 100, 1000});
    const auto sweep = cdf.log_sweep(10);
    ASSERT_EQ(sweep.size(), 10u);
    EXPECT_NEAR(sweep.front().first, 1.0, 1e-9);
    EXPECT_NEAR(sweep.back().first, 1000.0, 1e-6);
    EXPECT_DOUBLE_EQ(sweep.back().second, 1.0);
    for (std::size_t i = 1; i < sweep.size(); ++i) {
        EXPECT_GT(sweep[i].first, sweep[i - 1].first);
        EXPECT_GE(sweep[i].second, sweep[i - 1].second);
    }
}

TEST(Cdf, EmptyIsSafe) {
    const Cdf cdf;
    EXPECT_TRUE(cdf.empty());
    EXPECT_DOUBLE_EQ(cdf.at(5.0), 0.0);
    EXPECT_TRUE(cdf.log_sweep(5).empty());
}

TEST(LogBins, EdgesAndBinning) {
    const auto edges = log_edges(1.0, 1000.0, 3);
    ASSERT_EQ(edges.size(), 4u);
    EXPECT_NEAR(edges[0], 1.0, 1e-9);
    EXPECT_NEAR(edges[1], 10.0, 1e-9);
    EXPECT_NEAR(edges[2], 100.0, 1e-9);
    EXPECT_NEAR(edges[3], 1000.0, 1e-9);
    EXPECT_EQ(log_bin(5.0, 1.0, 1000.0, 3), 0);
    EXPECT_EQ(log_bin(50.0, 1.0, 1000.0, 3), 1);
    EXPECT_EQ(log_bin(500.0, 1.0, 1000.0, 3), 2);
    EXPECT_EQ(log_bin(0.1, 1.0, 1000.0, 3), 0) << "clamped below";
    EXPECT_EQ(log_bin(1e9, 1.0, 1000.0, 3), 2) << "clamped above";
}

TEST(Stats, MeanAndPercentile) {
    EXPECT_DOUBLE_EQ(mean_of({1, 2, 3}), 2.0);
    EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
    std::vector<double> xs;
    for (int i = 1; i <= 100; ++i) xs.push_back(i);
    EXPECT_NEAR(percentile(xs, 20), 20, 1.5);
    EXPECT_NEAR(percentile(xs, 80), 80, 1.5);
    EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(LogLogFit, RecoversPowerLawExponent) {
    // y = 100 * x^-0.9 — the Fig 3b shape.
    std::vector<std::pair<double, double>> xy;
    for (double x = 1; x < 10000; x *= 1.5) xy.emplace_back(x, 100.0 * std::pow(x, -0.9));
    const auto fit = fit_loglog(xy);
    EXPECT_NEAR(fit.slope, -0.9, 1e-6);
    EXPECT_NEAR(fit.intercept, 2.0, 1e-6);
}

TEST(LogLogFit, SkipsNonPositiveValues) {
    const auto fit = fit_loglog({{1, 10}, {0, 5}, {10, 1}, {5, -2}});
    EXPECT_EQ(fit.n, 2u);
    EXPECT_NEAR(fit.slope, -1.0, 1e-9);
}

TEST(LogLogFit, DegenerateInputs) {
    EXPECT_EQ(fit_loglog({}).n, 0u);
    EXPECT_EQ(fit_loglog({{1, 1}}).n, 1u);
    EXPECT_DOUBLE_EQ(fit_loglog({{1, 1}}).slope, 0.0);
}

TEST(TextTable, RendersAlignedColumns) {
    TextTable table({"name", "value"});
    table.add_row({"alpha", "1"});
    table.add_row({"b", "20000"});
    const std::string out = table.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("20000"), std::string::npos);
    // Header, separator, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

}  // namespace
}  // namespace netsession::analysis
