// Figure-data exporter.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "analysis/export.hpp"

namespace netsession::analysis {
namespace {

trace::Dataset tiny_dataset() {
    trace::Dataset d;
    const net::IpAddr ip{0x0A000001};
    d.geodb.register_ip(ip, net::GeoRecord{net::Location{CountryId{17}, 0, {48.1, 11.5}}, Asn{5}});
    trace::LoginRecord login;
    login.guid = Guid{1, 1};
    login.ip = ip;
    login.time = sim::SimTime{0};
    d.log.add(login);
    for (int i = 0; i < 5; ++i) {
        trace::DownloadRecord dl;
        dl.guid = Guid{1, 1};
        dl.object = ObjectId{static_cast<std::uint64_t>(i), 1};
        dl.url_hash = static_cast<std::uint64_t>(i % 2);
        dl.cp_code = CpCode{1000};
        dl.object_size = (i + 1) * 10_MB;
        dl.start = sim::SimTime{0};
        dl.end = sim::SimTime{100'000'000};
        dl.bytes_from_infrastructure = dl.object_size / 2;
        dl.bytes_from_peers = dl.object_size / 2;
        dl.p2p_enabled = true;
        dl.peers_initially_returned = i;
        dl.outcome = trace::DownloadOutcome::completed;
        d.log.add(dl);
    }
    trace::TransferRecord t;
    t.from_ip = ip;
    t.to_ip = ip;
    t.from_guid = Guid{2, 2};
    t.to_guid = Guid{1, 1};
    t.bytes = 1000;
    d.log.add(t);
    return d;
}

TEST(Export, WritesAllFigureFilesAndScript) {
    const std::string dir = ::testing::TempDir() + "/export_test";
    std::filesystem::remove_all(dir);
    const auto files = export_figure_data(tiny_dataset(), nullptr, dir);
    EXPECT_GE(files, 15u);
    for (const char* name :
         {"fig3a_all.dat", "fig3b.dat", "fig3c.dat", "fig4_asx_edge.dat", "fig5.dat", "fig6.dat",
          "fig7.dat", "fig9a.dat", "fig10.dat", "fig11.dat", "plot_all.gp"}) {
        EXPECT_TRUE(std::filesystem::exists(dir + "/" + name)) << name;
    }
    // Data files have a header comment and parseable rows.
    std::ifstream fig6(dir + "/fig6.dat");
    std::string line;
    ASSERT_TRUE(std::getline(fig6, line));
    EXPECT_EQ(line[0], '#');
    int rows = 0;
    while (std::getline(fig6, line))
        if (!line.empty() && line[0] != '#') ++rows;
    EXPECT_GT(rows, 0);
    std::filesystem::remove_all(dir);
}

TEST(Export, FailsCleanlyOnUnwritableDir) {
    EXPECT_EQ(export_figure_data(tiny_dataset(), nullptr, "/proc/definitely/not/writable"), 0u);
}

}  // namespace
}  // namespace netsession::analysis
