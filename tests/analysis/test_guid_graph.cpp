// Fig 12: secondary-GUID graph construction and pattern classification.
#include <gtest/gtest.h>

#include "analysis/guid_graph.hpp"

namespace netsession::analysis {
namespace {

SecondaryGuid sg(std::uint64_t v) { return SecondaryGuid{v, v}; }

/// Builds a login record reporting the last-5 window ending at chain
/// position `end` (newest first), for chain values `chain`.
trace::LoginRecord login_at(Guid guid, const std::vector<std::uint64_t>& chain, std::size_t end) {
    trace::LoginRecord r;
    r.guid = guid;
    for (std::size_t i = 0; i < 5 && i < end; ++i) r.secondary_guids[i] = sg(chain[end - 1 - i]);
    return r;
}

/// Simulates a client whose chain evolves; report after every start.
void report_chain(trace::TraceLog& log, Guid guid, const std::vector<std::uint64_t>& chain,
                  std::size_t from = 1) {
    for (std::size_t end = from; end <= chain.size(); ++end)
        log.add(login_at(guid, chain, end));
}

TEST(GuidGraph, LinearChainClassified) {
    trace::TraceLog log;
    report_chain(log, Guid{1, 1}, {1, 2, 3, 4, 5, 6});
    const auto stats = classify_guid_graphs(log);
    EXPECT_EQ(stats.graphs, 1);
    EXPECT_EQ(stats.linear_chains, 1);
    EXPECT_EQ(stats.trees(), 0);
}

TEST(GuidGraph, TwoVertexGraphsAreIgnored) {
    trace::TraceLog log;
    report_chain(log, Guid{1, 1}, {1, 2});
    const auto stats = classify_guid_graphs(log);
    EXPECT_EQ(stats.graphs, 0) << "the paper considers graphs with >= 3 vertices";
}

TEST(GuidGraph, OverlappingWindowsStillLinear) {
    trace::TraceLog log;
    // 5 4 3 2 1 then 6 5 4 3 2 etc — exactly the paper's example.
    report_chain(log, Guid{1, 1}, {1, 2, 3, 4, 5, 6, 7, 8}, /*from=*/5);
    const auto stats = classify_guid_graphs(log);
    EXPECT_EQ(stats.graphs, 1);
    EXPECT_EQ(stats.linear_chains, 1);
}

TEST(GuidGraph, RollbackByOneGivesLongPlusShortBranch) {
    trace::TraceLog log;
    const Guid g{2, 2};
    // Chain 1-2-3, then rollback to after 2 and continue 4-5-6:
    // 2 -> {3, 4}, with the 3-branch one vertex long.
    report_chain(log, g, {1, 2, 3});
    report_chain(log, g, {1, 2, 4, 5, 6}, /*from=*/3);
    const auto stats = classify_guid_graphs(log);
    EXPECT_EQ(stats.graphs, 1);
    EXPECT_EQ(stats.long_plus_short, 1) << "failed-update pattern (46.2% of trees)";
}

TEST(GuidGraph, DeepRollbackGivesTwoLongBranches) {
    trace::TraceLog log;
    const Guid g{3, 3};
    report_chain(log, g, {1, 2, 3, 4, 5});
    report_chain(log, g, {1, 2, 6, 7, 8}, /*from=*/3);
    const auto stats = classify_guid_graphs(log);
    EXPECT_EQ(stats.graphs, 1);
    EXPECT_EQ(stats.two_long_branches, 1) << "restored-backup pattern (6.2% of trees)";
}

TEST(GuidGraph, RepeatedReimagingGivesSeveralBranches) {
    trace::TraceLog log;
    const Guid g{4, 4};
    // Golden image ends at 2; every night a fresh start branches off it.
    report_chain(log, g, {1, 2, 3});
    report_chain(log, g, {1, 2, 4}, /*from=*/3);
    report_chain(log, g, {1, 2, 5}, /*from=*/3);
    report_chain(log, g, {1, 2, 6}, /*from=*/3);
    const auto stats = classify_guid_graphs(log);
    EXPECT_EQ(stats.graphs, 1);
    EXPECT_EQ(stats.several_branches, 1) << "internet-cafe / cloning pattern";
}

TEST(GuidGraph, MergedLineageIsIrregular) {
    trace::TraceLog log;
    const Guid g{5, 5};
    // Two parents converging on one child (in-degree 2): impossible from
    // rollbacks alone; classified irregular.
    trace::LoginRecord a;
    a.guid = g;
    a.secondary_guids[0] = sg(3);
    a.secondary_guids[1] = sg(1);
    log.add(a);
    trace::LoginRecord b;
    b.guid = g;
    b.secondary_guids[0] = sg(3);
    b.secondary_guids[1] = sg(2);
    log.add(b);
    trace::LoginRecord c;
    c.guid = g;
    c.secondary_guids[0] = sg(4);
    c.secondary_guids[1] = sg(3);
    log.add(c);
    const auto stats = classify_guid_graphs(log);
    EXPECT_EQ(stats.graphs, 1);
    EXPECT_EQ(stats.irregular, 1);
}

TEST(GuidGraph, GraphsGroupedByPrimaryGuid) {
    trace::TraceLog log;
    report_chain(log, Guid{1, 1}, {1, 2, 3, 4});
    report_chain(log, Guid{2, 2}, {10, 11, 12});
    const auto stats = classify_guid_graphs(log);
    EXPECT_EQ(stats.graphs, 2);
    EXPECT_EQ(stats.linear_chains, 2);
    EXPECT_DOUBLE_EQ(stats.linear_fraction(), 1.0);
}

TEST(GuidGraph, NilEntriesIgnored) {
    trace::TraceLog log;
    trace::LoginRecord r;
    r.guid = Guid{6, 6};
    r.secondary_guids[0] = sg(2);
    r.secondary_guids[1] = sg(1);
    // entries 2..4 nil (fresh install, short history)
    log.add(r);
    const auto stats = classify_guid_graphs(log);
    EXPECT_EQ(stats.graphs, 0);
}

}  // namespace
}  // namespace netsession::analysis
