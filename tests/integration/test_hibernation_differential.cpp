// Differential oracle for client hibernation at full-system scale: the same
// scenario — churn faults and a flash crowd included, so mass demotions and
// wake-on-abort paths all fire — must serialize byte-identical traces with
// hibernation on and off, at shard counts 1 and 4. Hibernation is a memory
// layout, not a behaviour.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "core/simulation.hpp"
#include "fault/fault_spec.hpp"
#include "trace/serialize.hpp"

namespace netsession {
namespace {

SimulationConfig differential_config() {
    SimulationConfig config;
    config.seed = 909;
    config.peers = 400;
    config.as_graph.total_ases = 200;
    config.behavior.warmup = sim::days(1.0);
    config.behavior.window = sim::days(2.5);
    config.behavior.downloads_per_peer_per_month = 25.0;
    // The mem.cold_* gauges legitimately differ between the two builds (that
    // is the point of the diet); everything else in the trace must not.
    config.metrics.enabled = false;
    for (const char* spec : {"flash_crowd at=1.2 fraction=0.3", "mass_churn at=1.5 fraction=0.4",
                             "mass_churn at=2.1 fraction=0.25"}) {
        auto event = fault::parse_fault_event(spec);
        if (event.ok()) config.faults.events.push_back(event.value());
        EXPECT_TRUE(event.ok()) << spec;
    }
    return config;
}

std::string run_and_serialize(SimulationConfig config, bool hibernate_offline,
                              const std::string& tag) {
    config.client.hibernate_offline = hibernate_offline;
    Simulation s(config);
    s.run();
    trace::Dataset dataset;
    dataset.log = s.trace();
    s.geodb().for_each(
        [&](net::IpAddr ip, const net::GeoRecord& rec) { dataset.geodb.register_ip(ip, rec); });
    const auto path =
        (std::filesystem::temp_directory_path() / ("ns_hib_diff_" + tag + ".nstrace")).string();
    EXPECT_TRUE(trace::save_dataset(dataset, path));
    std::ifstream in(path, std::ios::binary);
    std::string bytes(std::istreambuf_iterator<char>(in), {});
    in.close();
    std::filesystem::remove(path);
    return bytes;
}

TEST(HibernationDifferential, TracesAreByteIdenticalWithHibernationOnAndOff) {
    for (const int shards : {1, 4}) {
        SCOPED_TRACE("shards=" + std::to_string(shards));
        SimulationConfig config = differential_config();
        config.shards = shards;
        const std::string tag = std::to_string(shards);
        const std::string hibernating = run_and_serialize(config, true, "h" + tag);
        const std::string resident = run_and_serialize(config, false, "n" + tag);
        ASSERT_GT(hibernating.size(), 1000u);
        EXPECT_TRUE(hibernating == resident)
            << "hibernation changed trace bytes at shards=" << shards;
        // And the hibernating build is itself repeat-deterministic.
        const std::string repeat = run_and_serialize(config, true, "r" + tag);
        EXPECT_TRUE(hibernating == repeat) << "hibernating run not deterministic";
    }
}

TEST(HibernationDifferential, ChurnedPopulationActuallyHibernates) {
    // Guard against the differential test passing vacuously: with the knob on
    // (the default), offline clients really are demoted at the end of a run.
    SimulationConfig config = differential_config();
    Simulation s(config);
    s.run();
    std::size_t cold = 0, total = 0;
    for (const auto& client : s.driver().clients()) {
        ++total;
        if (client->hibernated()) ++cold;
    }
    ASSERT_GT(total, 0u);
    EXPECT_GT(cold, total / 2) << "most of a diurnal population is offline, hence cold";
    EXPECT_GT(s.registry().cold().records(), 0u);
}

TEST(HibernationDifferential, EnvHatchForcesResidentClients) {
    ::setenv("NS_NO_HIBERNATE", "1", 1);
    SimulationConfig config = differential_config();
    config.behavior.window = sim::days(1.5);  // keep the hatch check cheap
    Simulation s(config);
    s.run();
    ::unsetenv("NS_NO_HIBERNATE");
    for (const auto& client : s.driver().clients())
        ASSERT_FALSE(client->hibernated()) << "NS_NO_HIBERNATE=1 must keep every client resident";
    EXPECT_EQ(s.registry().cold().records(), 0u);
}

}  // namespace
}  // namespace netsession
